// Tests for the multi-core reconfigurable cluster (ARCHITECTURE.md
// §18): K=1 bit-identity with the scalar machine, the arbiter's
// no-double-lease safety property under randomized multi-core request
// streams, allocation-vector structural validity every cycle, per-core
// telemetry labelling against the schema goldens, zero-allocation
// steady-state stepping, and the 2-core throughput benchmark.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/workload"
)

// clusterPhased builds a phase-changing synthetic workload; distinct
// seeds give sibling cores genuinely different demand streams.
func clusterPhased(seed int64) repro.Program {
	return workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
		{Mix: workload.MixMemHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: seed})
}

// scalarRun executes prog on the plain scalar machine and returns its
// stats, report and telemetry JSONL stream.
func scalarRun(t *testing.T, prog repro.Program, opt repro.Options, setup *workload.Kernel) (repro.Stats, string, []byte) {
	t.Helper()
	m := repro.NewMachine(prog, opt)
	if setup != nil && setup.Setup != nil {
		setup.Setup(m.Processor().Memory(), m.Processor().SetReg)
	}
	var buf bytes.Buffer
	if _, err := m.EnableTelemetry(&buf, "jsonl", 50); err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return stats, m.Report(), buf.Bytes()
}

// clusterRun executes prog on a K=1 cluster and returns the same view.
func clusterRun(t *testing.T, prog repro.Program, opt repro.Options, setup *workload.Kernel) (repro.Stats, string, []byte) {
	t.Helper()
	c := cluster.New(prog, opt)
	if setup != nil && setup.Setup != nil {
		p := c.Core(0).Processor()
		setup.Setup(p.Memory(), p.SetReg)
	}
	var buf bytes.Buffer
	if err := c.EnableTelemetry(&buf, "jsonl", 50); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Cores) != 1 {
		t.Fatalf("K=1 cluster reported %d cores", len(stats.Cores))
	}
	if stats.Cycles != stats.Cores[0].Cycles {
		t.Errorf("cluster cycles %d != core cycles %d", stats.Cycles, stats.Cores[0].Cycles)
	}
	return stats.Cores[0], c.Core(0).Report(), buf.Bytes()
}

// TestClusterK1MatchesScalar pins the degenerate-cluster contract: a
// one-core cluster is bit-identical to the scalar machine — same final
// statistics, same human report, byte-identical telemetry JSONL — in
// both fabric-sharing modes, under both dynamic policies, with and
// without fault injection, across the kernel library and a phased
// synthetic workload.
func TestClusterK1MatchesScalar(t *testing.T) {
	type load struct {
		name   string
		prog   repro.Program
		kernel *workload.Kernel
	}
	loads := []load{{name: "phased", prog: clusterPhased(7)}}
	for _, name := range []string{"saxpy", "matmul", "memcpy", "vecmax", "histogram", "newton"} {
		k := workload.KernelByName(name)
		if k == nil {
			t.Fatalf("kernel %s missing", name)
		}
		loads = append(loads, load{name: name, prog: repro.Program(k.Program()), kernel: k})
	}
	for _, w := range loads {
		for _, policy := range []repro.Policy{repro.PolicySteering, repro.PolicyPrefetch} {
			for _, faults := range []bool{false, true} {
				for _, mode := range []string{"merged", "split"} {
					name := fmt.Sprintf("%s/%s/faults=%v/%s", w.name, policy, faults, mode)
					t.Run(name, func(t *testing.T) {
						params := repro.DefaultParams()
						if faults {
							params.FaultTransientRate = 0.001
							params.FaultPermanentRate = 0.0001
							params.FaultSeed = 1234
							params.FaultScrubInterval = 32
						}
						opt := repro.Options{Params: params, Policy: policy}
						sStats, sReport, sJSONL := scalarRun(t, w.prog, opt, w.kernel)
						opt.Params.Cores = 1
						opt.Params.ClusterMode = mode
						cStats, cReport, cJSONL := clusterRun(t, w.prog, opt, w.kernel)
						if !reflect.DeepEqual(sStats, cStats) {
							t.Errorf("stats diverge:\nscalar  %+v\ncluster %+v", sStats, cStats)
						}
						if sReport != cReport {
							t.Errorf("reports diverge:\n--- scalar\n%s--- cluster\n%s", sReport, cReport)
						}
						if !bytes.Equal(sJSONL, cJSONL) {
							t.Error("telemetry JSONL streams diverge between scalar and K=1 cluster")
						}
					})
				}
			}
		}
	}
}

// checkLeaseInvariants asserts the arbiter safety properties at one
// cluster cycle: the per-core lease masks are pairwise disjoint (no
// slot leased to two cores), they cover the whole fabric, and every
// core's allocation vector is structurally valid (unit heads followed
// by exactly their continuation slots).
func checkLeaseInvariants(t *testing.T, c *cluster.Machine, cycle int) {
	t.Helper()
	leases := c.Leases()
	var union, overlap uint8
	for _, m := range leases {
		overlap |= union & m
		union |= m
	}
	if overlap != 0 {
		t.Fatalf("cycle %d: slots %08b leased to two cores (leases %v)", cycle, overlap, leases)
	}
	if union != 1<<arch.NumRFUSlots-1 {
		t.Fatalf("cycle %d: leases %v do not cover the fabric", cycle, leases)
	}
	for k := 0; k < c.Cores(); k++ {
		alloc := c.Core(k).Processor().Fabric().Allocation()
		cfg := config.Configuration{Layout: alloc.Slots}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("cycle %d: core %d allocation vector invalid: %v (%v)", cycle, k, err, alloc)
		}
	}
}

// TestClusterNoDoubleLease drives K ∈ {2, 3, 4} clusters with
// heterogeneous workloads, fault injection (so repair traffic contends
// with demand and prefetch reconfiguration cross-core), both arbiter
// policies and randomized mode-switch requests, and asserts the lease
// safety invariants every cycle. CI runs this under -race as well.
func TestClusterNoDoubleLease(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for _, arb := range []string{"round-robin", "demand-weighted"} {
			t.Run(fmt.Sprintf("K=%d/%s", k, arb), func(t *testing.T) {
				params := repro.DefaultParams()
				params.Cores = k
				params.ClusterArbiter = arb
				params.FaultTransientRate = 0.002
				params.FaultPermanentRate = 0.0002
				params.FaultSeed = 42
				params.FaultScrubInterval = 32
				progs := make([]repro.Program, k)
				for i := range progs {
					progs[i] = clusterPhased(int64(100*k + i))
				}
				c := cluster.NewMulti(progs, repro.Options{Params: params, Policy: repro.PolicySteering})
				rng := rand.New(rand.NewSource(int64(k)))
				for cycle := 0; cycle < 30_000 && !c.Halted(); cycle++ {
					if rng.Intn(500) == 0 {
						if rng.Intn(2) == 0 {
							c.RequestMode(cluster.ModeMerged)
						} else {
							c.RequestMode(cluster.ModeSplit)
						}
					}
					c.Step()
					checkLeaseInvariants(t, c, cycle)
				}
				stats := c.Stats()
				total := 0
				for _, cs := range stats.Cores {
					total += cs.Retired
				}
				if total == 0 {
					t.Error("no instructions retired; the property test exercised nothing")
				}
			})
		}
	}
}

// TestClusterModeSwitchAndFairness checks the phase-boundary mode
// machinery end to end: a K=2 cluster with periodic auto-switching
// actually switches modes, both cores make progress, and the Jain
// fairness index is sane (in (0, 1]).
func TestClusterModeSwitchAndFairness(t *testing.T) {
	params := repro.DefaultParams()
	params.Cores = 2
	progs := []repro.Program{clusterPhased(11), clusterPhased(12)}
	c := cluster.NewMulti(progs, repro.Options{Params: params, Policy: repro.PolicySteering})
	c.SetSwitchEvery(1000)
	stats, err := c.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModeSwitches == 0 {
		t.Error("periodic switching never applied a mode switch")
	}
	for k, cs := range stats.Cores {
		if cs.Retired == 0 {
			t.Errorf("core %d retired nothing", k)
		}
	}
	if f := stats.Fairness(); f <= 0 || f > 1 {
		t.Errorf("Jain fairness = %v, want (0, 1]", f)
	}
	if ipc := stats.AggregateIPC(); ipc <= 0 {
		t.Errorf("aggregate IPC = %v, want > 0", ipc)
	}
}

// TestClusterTelemetryCoreLabels pins the per-core telemetry contract:
// a K=2 cluster's shared JSONL stream contains records from both cores,
// and every record matches the field schema pinned in
// testdata/telemetry_schema.golden (the cluster adds no out-of-schema
// fields — "core" is part of the pinned schema).
func TestClusterTelemetryCoreLabels(t *testing.T) {
	params := repro.DefaultParams()
	params.Cores = 2
	params.ClusterMode = "split"
	params.FaultTransientRate = 0.002
	params.FaultSeed = 5
	progs := []repro.Program{clusterPhased(21), clusterPhased(22)}
	c := cluster.NewMulti(progs, repro.Options{Params: params, Policy: repro.PolicySteering})
	var buf bytes.Buffer
	if err := c.EnableTelemetry(&buf, "jsonl", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	goldenSchemas := loadGoldenSchemas(t, "testdata/telemetry_schema.golden")
	coresSeen := map[int]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		kind, _ := rec["record"].(string)
		core, ok := rec["core"].(float64)
		if !ok {
			t.Fatalf("%s record missing core label: %s", kind, line)
		}
		coresSeen[int(core)] = true
		want, ok := goldenSchemas[kind]
		if !ok {
			t.Fatalf("record kind %q not in the telemetry schema golden", kind)
		}
		if got := schemaOfRecord(rec); got != want {
			t.Fatalf("%s record schema drifted from golden:\ngot:\n%s\nwant:\n%s", kind, got, want)
		}
	}
	for k := 0; k < 2; k++ {
		if !coresSeen[k] {
			t.Errorf("no telemetry records labelled core %d", k)
		}
	}
}

// loadGoldenSchemas parses a schema golden file into kind -> "field:
// type" blocks.
func loadGoldenSchemas(t *testing.T, path string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	schemas := map[string]string{}
	var kind string
	var sb strings.Builder
	flush := func() {
		if kind != "" {
			schemas[kind] = sb.String()
		}
		sb.Reset()
	}
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "#") || line == "":
		case strings.HasPrefix(line, "["):
			flush()
			kind = strings.Trim(line, "[]")
		default:
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	flush()
	return schemas
}

// schemaOfRecord mirrors golden_test.go's schemaOf: sorted "field:
// type" lines for one decoded JSON record.
func schemaOfRecord(rec map[string]any) string {
	fields := make([]string, 0, len(rec))
	for name := range rec {
		fields = append(fields, name)
	}
	sort.Strings(fields)
	var sb strings.Builder
	for _, name := range fields {
		ty := "any"
		switch vv := rec[name].(type) {
		case nil:
			ty = "null"
		case bool:
			ty = "bool"
		case string:
			ty = "string"
		case float64:
			ty = "number"
		case map[string]any:
			ty = "object"
		case []any:
			elem := "any"
			if len(vv) > 0 {
				if _, isNum := vv[0].(float64); isNum {
					elem = "number"
				}
			}
			ty = "array of " + elem
		}
		fmt.Fprintf(&sb, "%s: %s\n", name, ty)
	}
	return sb.String()
}

// TestClusterChromeTraceMulti checks the combined span export: a K=2
// cluster renders one Chrome Trace document with each core under its
// own process lane.
func TestClusterChromeTraceMulti(t *testing.T) {
	params := repro.DefaultParams()
	params.Cores = 2
	params.FaultTransientRate = 0.002
	params.FaultSeed = 9
	progs := []repro.Program{clusterPhased(31), clusterPhased(32)}
	c := cluster.NewMulti(progs, repro.Options{Params: params, Policy: repro.PolicyPrefetch})
	c.EnableSpans(repro.SpanConfig{})
	if _, err := c.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			PID  int    `json:"pid"`
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.PID] = true
	}
	for _, want := range []int{1, 11} {
		if !pids[want] {
			t.Errorf("combined trace missing process lane pid=%d (got %v)", want, pids)
		}
	}
}

// TestZeroAllocClusterCycle pins the cluster stepping fast path: with
// K=4 cores in each mode (faults armed, so cross-core repair
// arbitration runs too), a steady-state Step must not allocate.
func TestZeroAllocClusterCycle(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	prog, err := isa.Assemble(steadyLoop)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"merged", "split"} {
		t.Run(mode, func(t *testing.T) {
			params := repro.DefaultParams()
			params.Cores = 4
			params.ClusterMode = mode
			params.ClusterArbiter = "demand-weighted"
			params.FaultTransientRate = 0.001
			params.FaultSeed = 9
			c := cluster.New(repro.Program(prog), repro.Options{Params: params, Policy: repro.PolicySteering})
			for i := 0; i < 50_000 && !c.Halted(); i++ {
				c.Step()
			}
			if c.Halted() {
				t.Fatal("workload halted during warm-up; steady-state cycles unmeasurable")
			}
			if allocs := testing.AllocsPerRun(2000, c.Step); allocs != 0 {
				t.Errorf("steady-state cluster Step (%s, K=4): %.2f allocs/op, want 0", mode, allocs)
			}
		})
	}
}

// BenchmarkCluster2Core measures the 2-core cluster's stepping
// throughput in each fabric-sharing mode, reporting aggregate IPC and
// simulated Mcycles/s. CI's benchdiff gate tracks the merged variant.
func BenchmarkCluster2Core(b *testing.B) {
	progs := []repro.Program{clusterPhased(41), clusterPhased(42)}
	for _, mode := range []string{"merged", "split"} {
		b.Run(mode, func(b *testing.B) {
			params := repro.DefaultParams()
			params.Cores = 2
			params.ClusterMode = mode
			var last cluster.Stats
			totalCycles := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := cluster.NewMulti(progs, repro.Options{Params: params, Policy: repro.PolicySteering})
				st, err := c.Run(20_000_000)
				if err != nil {
					b.Fatal(err)
				}
				last = st
				totalCycles += st.Cycles * 2
			}
			b.ReportMetric(last.AggregateIPC(), "IPC")
			b.ReportMetric(float64(totalCycles)/1e6/b.Elapsed().Seconds(), "Mcycles/s")
		})
	}
}
