// Kernels: run the built-in benchmark kernel library — each kernel
// validates its own outputs — under the steering policy and a mismatched
// static machine, printing the comparison.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Printf("%-10s %-46s %10s %15s %9s\n",
		"kernel", "description", repro.PolicySteering, repro.PolicyStaticInteger, "speedup")
	for _, k := range repro.Kernels() {
		steering, err := repro.RunKernel(k, repro.Options{Policy: repro.PolicySteering}, 50_000_000)
		if err != nil {
			log.Fatalf("%s under %s: %v", k.Name, repro.PolicySteering, err)
		}
		static, err := repro.RunKernel(k, repro.Options{Policy: repro.PolicyStaticInteger}, 50_000_000)
		if err != nil {
			log.Fatalf("%s under %s: %v", k.Name, repro.PolicyStaticInteger, err)
		}
		fmt.Printf("%-10s %-46s %10.3f %15.3f %8.2fx\n",
			k.Name, k.Description, steering.IPC(), static.IPC(),
			steering.IPC()/static.IPC())
	}
	fmt.Println("\nall kernel outputs validated against their reference results")
}
