// Quickstart: assemble a small program, run it on the steering machine,
// and read results back out of registers and memory.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A little program that mixes integer, memory and floating-point
	// work: sum the squares of 1..10, convert to float, take the square
	// root, and store both results.
	prog, err := repro.Assemble(`
		li r1, 0        ; i
		li r2, 10
		li r3, 0        ; sum
	loop:
		addi r1, r1, 1
		mul r4, r1, r1
		add r3, r3, r4
		bne r1, r2, loop

		li r5, 0x100
		sw r3, 0(r5)    ; store the integer sum

		fcvt.s.w f1, r3
		fsqrt f2, f1
		fsw f2, 4(r5)   ; store sqrt(sum) as float bits
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}

	m := repro.NewMachine(prog, repro.Options{Policy: repro.PolicySteering})
	stats, err := m.Run(1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sum of squares 1..10 = %d (expected 385)\n", m.Reg(3))
	words := m.ReadWords(0x100, 2)
	fmt.Printf("stored: sum=%d sqrtBits=%#x\n", words[0], words[1])
	fmt.Printf("\nrun summary:\n%s", m.Report())
	_ = stats
}
