; Self-contained histogram program for rsssim:
;
;   go run ./cmd/rsssim -asm examples/programs/histogram.s
;
; Buckets the 32 values in `samples` by their low 3 bits into `counts`,
; then sums the counts into r9 as a sanity value (must equal 32).

	.data 0x1000
samples:
	.word 3, 17, 8, 12, 5, 5, 9, 30
	.word 2, 11, 24, 7, 19, 1, 6, 28
	.word 15, 4, 22, 10, 13, 29, 0, 18
	.word 26, 21, 14, 27, 16, 23, 25, 20
counts:
	.space 32          ; 8 buckets x 4 bytes

	.text
	la r10, samples
	la r11, counts
	li r12, 32
	li r1, 0           ; i
loop:
	slli r5, r1, 2
	add r6, r5, r10
	lw r3, 0(r6)       ; sample
	andi r3, r3, 7     ; bucket = sample & 7
	slli r3, r3, 2
	add r7, r3, r11
	lw r4, 0(r7)
	addi r4, r4, 1
	sw r4, 0(r7)
	addi r1, r1, 1
	bne r1, r12, loop

	; sum the buckets
	li r1, 0
	li r9, 0
sum:
	slli r5, r1, 2
	add r7, r5, r11
	lw r4, 0(r7)
	add r9, r9, r4
	addi r1, r1, 1
	li r2, 8
	bne r1, r2, sum
	halt
