; Horner evaluation of p(x) = 2x^3 - 3x^2 + 4x - 5 over the float
; samples in `xs`, storing results to `ys`:
;
;   go run ./cmd/rsssim -asm examples/programs/polynomial.s -policy steering
;
; An FP-heavy loop: watch the steering manager pull in the floating
; configuration (compare -policy static-integer).

	.data 0x1000
xs:
	.float 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0
	.float 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0
ys:
	.space 64
coeffs:
	.float 2.0, -3.0, 4.0, -5.0

	.text
	la r10, xs
	la r11, ys
	la r12, coeffs
	flw f1, 0(r12)     ; c3
	flw f2, 4(r12)     ; c2
	flw f3, 8(r12)     ; c1
	flw f4, 12(r12)    ; c0
	li r13, 16
	li r1, 0
loop:
	slli r5, r1, 2
	add r6, r5, r10
	flw f5, 0(r6)      ; x
	; Horner: ((c3*x + c2)*x + c1)*x + c0
	fmul f6, f1, f5
	fadd f6, f6, f2
	fmul f6, f6, f5
	fadd f6, f6, f3
	fmul f6, f6, f5
	fadd f6, f6, f4
	add r7, r5, r11
	fsw f6, 0(r7)
	addi r1, r1, 1
	bne r1, r13, loop
	halt
