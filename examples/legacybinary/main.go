// Legacybinary: the paper's motivation is executing *binary* legacy code
// on a reconfigurable processor with no recompilation or hardware
// extraction step. This example assembles a program, serialises it to raw
// 32-bit machine words (the "legacy binary"), throws the source away,
// decodes the binary back, and runs it — on a machine whose fabric starts
// empty except for the fixed units, so every RFU the program ends up
// using was configured at run time by the steering manager.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	source := `
		; 16-tap FIR-like accumulation: y += c*x[i] with varying work mix
		li r10, 0x1000
		li r11, 16
		li r1, 0
		li r2, 3        ; coefficient
		li r3, 0        ; acc
		fcvt.s.w f1, r2
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		lw r4, 0(r6)
		mul r7, r4, r2
		add r3, r3, r7
		fcvt.s.w f2, r4
		fmul f3, f1, f2
		fadd f4, f4, f3
		addi r1, r1, 1
		bne r1, r11, loop
		fcvt.w.s r8, f4
		halt
	`
	prog, err := repro.Assemble(source)
	if err != nil {
		log.Fatal(err)
	}

	// Serialise to the binary legacy format...
	binary, err := repro.EncodeProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legacy binary: %d words, first four: %08x %08x %08x %08x\n",
		len(binary), binary[0], binary[1], binary[2], binary[3])

	// ...and from here on, only the binary exists.
	decoded, err := repro.DecodeProgram(binary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndisassembly of the decoded binary (first 6 instructions):\n")
	full := repro.Disassemble(decoded)
	for i, line := 0, 0; i < len(full) && line < 6; i++ {
		fmt.Print(string(full[i]))
		if full[i] == '\n' {
			line++
		}
	}

	m := repro.NewMachine(decoded, repro.Options{Policy: repro.PolicySteering})
	for i := 0; i < 16; i++ {
		m.WriteWords(0x1000+uint32(4*i), []uint32{uint32(i + 1)})
	}
	stats, err := m.Run(1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// acc = 3 * (1+2+...+16) = 408; fp sum identical -> r8 = 408.
	fmt.Printf("\ninteger result r3 = %d (expected 408)\n", m.Reg(3))
	fmt.Printf("floating result r8 = %d (expected 408)\n", m.Reg(8))
	fmt.Printf("run: %d cycles, IPC %.3f, %d reconfigurations\n",
		stats.Cycles, stats.IPC(), m.Reconfigurations())
}
