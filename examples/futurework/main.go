// Futurework: the paper's §5 closes with two open problems — designing
// an orthogonal steering basis, and reconfiguring dynamically *without*
// predefined configurations. This example exercises both extensions the
// library implements: a custom user-defined basis (JSON) driving the
// standard steering manager, and the demand-driven synthesis policy with
// its hysteresis knob, compared on the same phase-shifting workload.
package main

import (
	"fmt"
	"log"

	"repro"
)

const basisJSON = `[
  {"name": "scalar",  "units": ["IntALU","IntALU","IntALU","LSU","LSU","IntMDU","IntALU"]},
  {"name": "vector",  "units": ["FPALU","FPMDU","LSU","IntALU"]},
  {"name": "streams", "units": ["LSU","LSU","LSU","LSU","IntALU","IntALU","IntALU","IntALU"]}
]`

func main() {
	prog := repro.Synthesize([]repro.Phase{
		{Mix: repro.MixIntHeavy, Instructions: 800},
		{Mix: repro.MixFPHeavy, Instructions: 800},
		{Mix: repro.MixMemHeavy, Instructions: 800},
	}, 21)

	run := func(name string, opt repro.Options) {
		m := repro.NewMachine(prog, opt)
		stats, err := m.Run(50_000_000)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-28s IPC %.3f  cycles %6d  reconfigs %4d\n",
			name, stats.IPC(), stats.Cycles, m.Reconfigurations())
	}

	fmt.Println("§5 future work, implemented:")
	fmt.Println()

	// Default Table-1 basis for reference.
	run("steering (default basis)", repro.Options{Policy: repro.PolicySteering})

	// A user-defined basis loaded from JSON.
	basis, err := repro.ParseBasis([]byte(basisJSON))
	if err != nil {
		log.Fatal(err)
	}
	run("steering (custom basis)", repro.Options{Policy: repro.PolicySteering, Basis: &basis})

	// No basis at all: demand-driven synthesis.
	run("demand-driven (no basis)", repro.Options{Policy: repro.PolicyDemand})

	fmt.Println()
	fmt.Println("The predefined basis acts as a stabiliser: demand-driven synthesis")
	fmt.Println("matches demand more literally but reconfigures far more often.")
}
