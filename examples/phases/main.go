// Phases: the paper's motivating scenario — a workload whose unit demand
// shifts between integer, floating-point and memory phases. The example
// runs the same program under every configuration policy and shows how
// the steering manager adapts (configuration residency, reconfigurations)
// while static machines pay for their mismatch.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prog := repro.Synthesize([]repro.Phase{
		{Mix: repro.MixIntHeavy, Instructions: 1000},
		{Mix: repro.MixFPHeavy, Instructions: 1000},
		{Mix: repro.MixMemHeavy, Instructions: 1000},
		{Mix: repro.MixFPHeavy, Instructions: 1000},
	}, 42)
	fmt.Printf("workload: %d instructions in 4 phases (int -> fp -> mem -> fp)\n\n", len(prog))

	policies := []repro.Policy{
		repro.PolicySteering,
		repro.PolicyStaticInteger,
		repro.PolicyStaticMemory,
		repro.PolicyStaticFloating,
		repro.PolicyNone,
		repro.PolicyFullReconfig,
		repro.PolicyOracle,
	}

	fmt.Printf("%-16s %8s %8s %10s\n", "policy", "cycles", "IPC", "reconfigs")
	var steeringIPC, bestStaticIPC float64
	for _, pol := range policies {
		params := repro.DefaultParams()
		if pol == repro.PolicyOracle {
			params.ReconfigLatency = 1
		}
		m := repro.NewMachine(prog, repro.Options{Params: params, Policy: pol})
		stats, err := m.Run(50_000_000)
		if err != nil {
			log.Fatalf("%v: %v", pol, err)
		}
		fmt.Printf("%-16s %8d %8.3f %10d\n", pol, stats.Cycles, stats.IPC(), m.Reconfigurations())
		switch pol {
		case repro.PolicySteering:
			steeringIPC = stats.IPC()
		case repro.PolicyStaticInteger, repro.PolicyStaticMemory, repro.PolicyStaticFloating:
			if stats.IPC() > bestStaticIPC {
				bestStaticIPC = stats.IPC()
			}
		}
	}

	// Show the steering manager's view of the run.
	m := repro.NewMachine(prog, repro.Options{Policy: repro.PolicySteering})
	if _, err := m.Run(50_000_000); err != nil {
		log.Fatal(err)
	}
	sel, hybrid, _ := m.ConfigurationResidency()
	fmt.Printf("\nsteering selections: current=%d integer=%d memory=%d floating=%d\n",
		sel[0], sel[1], sel[2], sel[3])
	fmt.Printf("hybrid-configuration cycles: %d\n", hybrid)
	fmt.Printf("\nsteering vs best single static configuration: %.3f vs %.3f IPC\n",
		steeringIPC, bestStaticIPC)
}
