// Package repro is the public API of the reconfigurable superscalar
// processor simulator reproducing "Configuration Steering for a
// Reconfigurable Superscalar Processor" (Veale, Antonio, Tull, IPDPS
// 2005).
//
// The simulator models the paper's machine: a superscalar core with five
// fixed functional units and eight reconfigurable slots, scheduled by a
// select-free wake-up array, whose configuration manager steers the
// reconfigurable fabric toward the unit mix the queued instructions need
// using partial, idle-only reconfiguration.
//
// Quick start:
//
//	prog, _ := repro.Assemble(`
//	        li r1, 10
//	        li r2, 32
//	        mul r3, r1, r2
//	        halt
//	`)
//	m := repro.NewMachine(prog, repro.Options{Policy: repro.PolicySteering})
//	stats, err := m.Run(1_000_000)
//	fmt.Println(stats.IPC(), m.Reg(3), err)
//
// Deeper control — custom steering bases, gate-level circuit models, the
// wake-up array, the fabric — lives in the internal packages; this facade
// covers the workflows the experiments and examples use.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/predict"
	"repro/internal/queue"
	"repro/internal/rfu"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Program is a decoded instruction sequence (see Assemble).
type Program = isa.Program

// Params sizes the simulated machine; the zero value selects the
// reference machine of the paper's architecture (7-entry window, 8 RFU
// slots, 4-wide issue/retire, 8-cycle span reconfiguration).
type Params = cpu.Params

// Stats is the per-run statistics bundle (cycles, retired instructions,
// IPC, mispredictions, per-unit issue counts, ...).
type Stats = cpu.Stats

// DefaultParams returns the reference machine parameters.
func DefaultParams() Params { return cpu.DefaultParams() }

// Assemble translates assembly source into a Program. See internal/isa
// for the full syntax; the quick version: RISC-style three-operand
// mnemonics, integer registers r0-r31 (r0 reads zero), FP registers
// f0-f31, labels, and li/mv/j/ret pseudo-instructions. Failures are
// *AsmError values carrying the offending source line.
func Assemble(src string) (Program, error) { return isa.Assemble(src) }

// MustAssemble is Assemble for known-good sources; it panics on error.
func MustAssemble(src string) Program { return isa.MustAssemble(src) }

// EncodeProgram serialises a program to its 32-bit binary form — the
// "legacy machine code" representation the architecture executes.
func EncodeProgram(p Program) ([]uint32, error) { return isa.EncodeProgram(p) }

// DecodeProgram parses 32-bit binary instruction words into a Program.
func DecodeProgram(words []uint32) (Program, error) { return isa.DecodeProgram(words) }

// Disassemble renders a program one instruction per line.
func Disassemble(p Program) string { return isa.Disassemble(p) }

// Unit is a fully assembled translation unit: instructions plus the
// initial data image declared by .data sections.
type Unit = isa.Unit

// AssembleUnit assembles a source file that may mix code with .data
// sections (.word/.half/.byte/.float/.space) and the la pseudo. Use
// NewMachineFromUnit to run the result with its data image applied.
func AssembleUnit(src string) (*Unit, error) { return isa.AssembleUnit(src) }

// NewMachineFromUnit builds a machine for the unit's program and writes
// its data segments into the machine's memory.
func NewMachineFromUnit(u *Unit, opt Options) *Machine {
	m := NewMachine(u.Program, opt)
	u.Apply(m.proc.Memory())
	return m
}

// Policy selects the configuration-management strategy of a Machine.
// The type (and its canonical name table) lives in internal/cpu; this
// alias re-exports it, along with each strategy constant. A Policy
// marshals to and from its name as JSON/text, so request schemas can
// carry policy fields directly.
type Policy = cpu.Policy

const (
	// PolicySteering is the paper's configuration manager: per-cycle
	// selection over the steering basis, partial idle-only loading.
	PolicySteering = cpu.PolicySteering
	// PolicyStaticInteger fixes the fabric to the integer steering
	// configuration and never reconfigures.
	PolicyStaticInteger = cpu.PolicyStaticInteger
	// PolicyStaticMemory fixes the fabric to the memory configuration.
	PolicyStaticMemory = cpu.PolicyStaticMemory
	// PolicyStaticFloating fixes the fabric to the floating-point
	// configuration.
	PolicyStaticFloating = cpu.PolicyStaticFloating
	// PolicyNone leaves the fabric empty: only the five fixed units
	// execute instructions (a conventional single-unit-per-type core).
	PolicyNone = cpu.PolicyNone
	// PolicyFullReconfig swaps whole configurations, waiting for the
	// fabric to drain — the predecessor architecture the paper extends.
	PolicyFullReconfig = cpu.PolicyFullReconfig
	// PolicyOracle selects with the exact divider metric; pair it with
	// a small ReconfigLatency for an idealised upper bound.
	PolicyOracle = cpu.PolicyOracle
	// PolicyRandom loads a random basis configuration periodically.
	PolicyRandom = cpu.PolicyRandom
	// PolicyDemand synthesises configurations directly from the queue's
	// demand every cycle, with no predefined basis — the paper's §5
	// future-work direction.
	PolicyDemand = cpu.PolicyDemand
	// PolicyPrefetch is the steering manager plus the phase-aware
	// prediction subsystem: demand-history phase detection and a Markov
	// transition model drive speculative partial reconfigurations on
	// otherwise-unused configuration-bus spans.
	PolicyPrefetch = cpu.PolicyPrefetch
)

// ParsePolicy resolves a policy name (the Policy.String round-trip); the
// error wraps ErrUnknownPolicy.
func ParsePolicy(s string) (Policy, error) { return cpu.ParsePolicy(s) }

// Policies returns every defined policy in declaration order.
func Policies() []Policy { return cpu.Policies() }

// Sentinel errors of the facade. Classify failures with errors.Is —
// formatted messages are not part of the API.
var (
	// ErrCycleLimit: Run/RunContext exhausted its cycle budget before
	// the program's HALT retired.
	ErrCycleLimit = cpu.ErrCycleLimit
	// ErrInvalidParams: a Params field is out of range (see
	// Params.Validate).
	ErrInvalidParams = cpu.ErrInvalidParams
	// ErrUnknownPolicy: ParsePolicy did not recognise the name.
	ErrUnknownPolicy = cpu.ErrUnknownPolicy
)

// AsmError is the error type of Assemble and AssembleUnit: the offending
// 1-based source line plus the underlying cause. Retrieve it with
// errors.As to report source positions.
type AsmError = isa.AsmError

// Basis is a set of three predefined steering configurations.
type Basis = [3]config.Configuration

// DefaultBasis returns the calibrated Table 1 steering basis
// (integer / memory / floating).
func DefaultBasis() Basis { return config.DefaultBasis() }

// ParseBasis parses a steering basis from JSON: an array of exactly three
// configurations, each {"name": ..., "units": ["IntALU", ...]}. Units are
// packed into the eight slots in order.
func ParseBasis(data []byte) (Basis, error) { return config.ParseBasis(data) }

// MarshalBasis serialises a steering basis to indented JSON.
func MarshalBasis(b Basis) ([]byte, error) { return config.MarshalBasis(b) }

// Options configures a Machine beyond its sizing parameters.
type Options struct {
	// Params sizes the machine; zero fields take defaults.
	Params Params
	// Policy selects configuration management (default PolicySteering).
	Policy Policy
	// Seed feeds PolicyRandom.
	Seed int64
	// Basis overrides the predefined steering configurations for the
	// steering, full-reconfig, oracle and static policies (nil uses the
	// default Table 1 basis).
	Basis *Basis
	// MinResidency suppresses configuration reloads for this many
	// cycles after each load — the X11 thrash damper. Applies to
	// PolicySteering and PolicyOracle.
	MinResidency int
}

// Machine is one simulated processor instance bound to a program.
type Machine struct {
	proc      *cpu.Processor
	policy    Policy
	policyObj cpu.Manager   // the installed manager object, for telemetry wiring
	steering  *core.Manager // non-nil for steering-family policies
	tracer    *trace.Buffer
	probe     *telemetry.Probe
	spans     *span.Recorder
}

// NewMachine builds a machine for the program under the given options.
func NewMachine(prog Program, opt Options) *Machine {
	p := cpu.New(prog, opt.Params, nil)
	m := &Machine{proc: p, policy: opt.Policy}
	basis := config.DefaultBasis()
	if opt.Basis != nil {
		basis = *opt.Basis
	}
	switch opt.Policy {
	case PolicySteering:
		s := baseline.NewSteeringBasis(p.Fabric(), basis)
		s.M.MinResidency = opt.MinResidency
		m.steering = s.M
		m.policyObj = s
		p.SetManager(s)
	case PolicyStaticInteger:
		p.Fabric().Install(basis[0])
	case PolicyStaticMemory:
		p.Fabric().Install(basis[1])
	case PolicyStaticFloating:
		p.Fabric().Install(basis[2])
	case PolicyNone:
		// Empty fabric, FFUs only.
	case PolicyFullReconfig:
		fr := baseline.NewFullReconfigBasis(p.Fabric(), basis)
		m.policyObj = fr
		p.SetManager(fr)
	case PolicyOracle:
		o := baseline.NewOracleBasis(p.Fabric(), basis)
		m.policyObj = o
		p.SetManager(o)
	case PolicyRandom:
		r := baseline.NewRandom(p.Fabric(), opt.Seed)
		m.policyObj = r
		p.SetManager(r)
	case PolicyDemand:
		d := core.NewDemandManager(p.Fabric())
		m.policyObj = d
		p.SetManager(d)
	case PolicyPrefetch:
		pf := predict.NewManagerBasis(p.Fabric(), basis, predict.Config{
			HistoryDepth: opt.Params.PrefetchHistoryDepth,
			Confidence:   opt.Params.PrefetchConfidence,
		})
		pf.Core().MinResidency = opt.MinResidency
		m.steering = pf.Core()
		m.policyObj = pf
		p.SetManager(pf)
	default:
		panic(fmt.Sprintf("repro: unknown policy %d", opt.Policy))
	}
	return m
}

// Estimate is the analytic queueing model's prediction for one program
// under one policy and parameter set — see internal/queue for the model
// and its validity envelope.
type Estimate = queue.Estimate

// EstimateIPC answers the question a simulated run answers — "what IPC
// does this program achieve under this configuration?" — analytically,
// in microseconds instead of simulated cycles, using the M/M/c queueing
// model of the FFU/RFU pool. The estimate carries a documented validity
// envelope and a mean error against the simulator under 10% on the
// X1–X6 reference workloads (EXPERIMENTS.md X21): rank configurations
// with EstimateIPC, certify the survivors with Machine.Run. Invalid
// parameters return an error wrapping ErrInvalidParams.
func EstimateIPC(prog Program, opt Options) (Estimate, error) {
	var basis *[3]config.Configuration
	if opt.Basis != nil {
		b := *opt.Basis
		basis = &b
	}
	m, err := queue.New(opt.Policy, opt.Params, basis)
	if err != nil {
		return Estimate{}, err
	}
	return m.Estimate(prog)
}

// Run executes until HALT retires or maxCycles elapse; it returns the run
// statistics and an error wrapping ErrCycleLimit when the budget ran
// out. When telemetry is enabled the exporter is flushed at the end of
// the run, and a telemetry export error surfaces here if the run itself
// succeeded. Run is RunContext without cancellation.
func (m *Machine) Run(maxCycles int) (Stats, error) {
	return m.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cancellation: the context is polled every
// cpu.CtxCheckInterval simulated cycles, and on cancellation the run
// stops within one interval, returning the statistics so far and the
// context's error (match it with errors.Is against context.Canceled or
// context.DeadlineExceeded). The machine stays consistent, so a
// cancelled run may be resumed by calling RunContext again.
func (m *Machine) RunContext(ctx context.Context, maxCycles int) (Stats, error) {
	stats, err := m.proc.RunContext(ctx, maxCycles)
	if ferr := m.probe.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("telemetry: %w", ferr)
	}
	if m.spans != nil && m.proc.Halted() {
		// Close trailing epochs (phase, cache, speculation, repairs)
		// once the program is done. A cancelled or budget-exhausted run
		// leaves them open so a resumed RunContext keeps recording.
		m.spans.Finish()
	}
	return stats, err
}

// Cycle advances the machine one clock.
func (m *Machine) Cycle() { m.proc.Cycle() }

// Advance runs up to n cycles, stopping early when HALT retires, and
// returns the number of cycles consumed — the chunked-stepping primitive
// the lane-parallel wide machine (internal/wide) drives lanes with.
// Unlike RunContext it neither flushes telemetry nor closes span epochs;
// finish a chunked run with a final RunContext call to get the scalar
// path's end-of-run behaviour (and its exact ErrCycleLimit error).
func (m *Machine) Advance(n int) int { return m.proc.Advance(n) }

// Halted reports whether the program's HALT has retired.
func (m *Machine) Halted() bool { return m.proc.Halted() }

// Stats returns the statistics so far.
func (m *Machine) Stats() Stats { return m.proc.Stats() }

// Reg reads integer register rN.
func (m *Machine) Reg(n uint8) uint32 { return m.proc.Reg(n) }

// FReg reads floating-point register fN.
func (m *Machine) FReg(n uint8) uint32 { return m.proc.Reg(n + isa.FPBase) }

// SetReg presets integer register rN before a run.
func (m *Machine) SetReg(n uint8, v uint32) { m.proc.SetReg(n, v) }

// WriteWords stores words into data memory starting at addr.
func (m *Machine) WriteWords(addr uint32, words []uint32) {
	m.proc.Memory().WriteWords(addr, words)
}

// ReadWords loads n words from data memory starting at addr.
func (m *Machine) ReadWords(addr uint32, n int) []uint32 {
	return m.proc.Memory().ReadWords(addr, n)
}

// Reconfigurations returns how many RFU span rewrites occurred.
func (m *Machine) Reconfigurations() int { return m.proc.Fabric().Reconfigurations() }

// ConfigurationResidency returns, for steering-family policies, how many
// management cycles each candidate won (current, then the three basis
// configurations) and how many cycles the fabric held a hybrid layout. It
// returns ok=false for non-steering policies.
func (m *Machine) ConfigurationResidency() (selections [arch.NumConfigs]int, hybrid int, ok bool) {
	if m.steering == nil {
		return selections, 0, false
	}
	st := m.steering.Stats()
	return st.Selections, st.HybridCycles, true
}

// SteeringCacheStats returns, for steering-family policies, the packed-
// key steering cache's hit and miss counts over the run. It returns
// ok=false for policies without a core.Manager.
func (m *Machine) SteeringCacheStats() (hits, misses int, ok bool) {
	if m.steering == nil {
		return 0, 0, false
	}
	st := m.steering.Stats()
	return st.CacheHits, st.CacheMisses, true
}

// PrefetchStats is the speculative-prefetch accounting of the prefetch
// policy: spans speculatively loaded, how the speculations ended, the
// configuration-bus spans wasted on wrong guesses, and the workload
// phase boundaries the predictor detected.
type PrefetchStats struct {
	Issued       int `json:"issued"`
	Confirmed    int `json:"confirmed"`
	Mispredicted int `json:"mispredicted"`
	Cancelled    int `json:"cancelled"`
	WastedSpans  int `json:"wastedSpans"`
	PhaseChanges int `json:"phaseChanges"`
}

// PrefetchStats returns the run's speculative-prefetch counters. It
// returns ok=false for policies other than PolicyPrefetch.
func (m *Machine) PrefetchStats() (PrefetchStats, bool) {
	if m.policy != PolicyPrefetch || m.steering == nil {
		return PrefetchStats{}, false
	}
	st := m.steering.Stats()
	return PrefetchStats{
		Issued:       st.PrefetchIssued,
		Confirmed:    st.PrefetchConfirmed,
		Mispredicted: st.PrefetchMispredicted,
		Cancelled:    st.PrefetchCancelled,
		WastedSpans:  st.PrefetchWastedSpans,
		PhaseChanges: st.PhaseChanges,
	}, true
}

// FaultStats is the fabric's cumulative fault-injection accounting (see
// Params.FaultTransientRate and friends).
type FaultStats = rfu.FaultStats

// FaultStats returns the run's fault-injection counters. It returns
// ok=false when fault injection was not enabled for this machine.
func (m *Machine) FaultStats() (st FaultStats, ok bool) {
	f := m.proc.Fabric()
	if !f.FaultsEnabled() {
		return FaultStats{}, false
	}
	return f.FaultStats(), true
}

// Report renders a human-readable run summary.
func (m *Machine) Report() string {
	s := m.proc.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "policy:          %s\n", m.policy)
	fmt.Fprintf(&b, "cycles:          %d\n", s.Cycles)
	fmt.Fprintf(&b, "retired:         %d\n", s.Retired)
	fmt.Fprintf(&b, "IPC:             %.3f\n", s.IPC())
	fmt.Fprintf(&b, "issued by type:  %v\n", s.IssuedByType)
	if s.Cycles > 0 {
		frac := func(n int) float64 { return 100 * float64(n) / float64(s.Cycles) }
		fmt.Fprintf(&b, "cycle buckets:   issuing %.1f%%, unit-bound %.1f%%, dep-bound %.1f%%, frontend %.1f%%\n",
			frac(s.CyclesIssued), frac(s.CyclesUnits), frac(s.CyclesDeps), frac(s.CyclesFrontend))
	}
	fmt.Fprintf(&b, "branches:        %d resolved, %d mispredicted, %d flushed\n",
		s.BranchesResolved, s.Mispredicts, s.Flushed)
	acc, n := m.proc.Predictor().Accuracy()
	if n > 0 {
		fmt.Fprintf(&b, "predictor:       %.1f%% over %d branches\n", 100*acc, n)
	}
	fmt.Fprintf(&b, "dcache:          %d hits, %d misses\n", m.proc.DCache().Hits(), m.proc.DCache().Misses())
	tcr, tn := m.proc.TraceCache().HitRate()
	if tn > 0 {
		fmt.Fprintf(&b, "trace cache:     %.1f%% hit rate over %d lookups\n", 100*tcr, tn)
	}
	fmt.Fprintf(&b, "reconfigs:       %d spans (%d slot-cycles)\n",
		m.proc.Fabric().Reconfigurations(), m.proc.Fabric().ReconfigurationCycles())
	if s.Cycles > 0 {
		// 13 unit positions: 8 RFU slots + 5 FFUs.
		util := float64(m.proc.Fabric().BusyCycles()) / float64(s.Cycles*13)
		fmt.Fprintf(&b, "unit utilisation: %.1f%% of slot+FFU cycles executing\n", 100*util)
	}
	if sel, hybrid, ok := m.ConfigurationResidency(); ok {
		fmt.Fprintf(&b, "selections:      current=%d integer=%d memory=%d floating=%d (hybrid cycles: %d)\n",
			sel[0], sel[1], sel[2], sel[3], hybrid)
	}
	if hits, misses, ok := m.SteeringCacheStats(); ok && hits+misses > 0 {
		fmt.Fprintf(&b, "steering cache:  %.1f%% hit rate over %d lookups\n",
			100*float64(hits)/float64(hits+misses), hits+misses)
	}
	if ps, ok := m.PrefetchStats(); ok {
		fmt.Fprintf(&b, "prefetch:        %d spans issued, %d confirmed, %d mispredicted, %d cancelled (%d wasted spans)\n",
			ps.Issued, ps.Confirmed, ps.Mispredicted, ps.Cancelled, ps.WastedSpans)
		fmt.Fprintf(&b, "phase changes:   %d detected\n", ps.PhaseChanges)
	}
	if fs, ok := m.FaultStats(); ok {
		fmt.Fprintf(&b, "faults:          %d transient + %d permanent injected, %d detected (%d scrubs)\n",
			fs.InjectedTransient, fs.InjectedPermanent, fs.Detected, fs.ScrubScans)
		fmt.Fprintf(&b, "repairs:         %d started, %d completed, %d healed by steering, %d slots dead\n",
			fs.RepairsStarted, fs.Repaired, fs.HealedByLoad, fs.DeadSlots)
		if s.Cycles > 0 {
			fmt.Fprintf(&b, "degraded:        %.2f%% of slot-cycles masked\n",
				100*float64(fs.MaskedSlotCycles)/float64(s.Cycles*arch.NumRFUSlots))
		}
	}
	fmt.Fprintf(&b, "final fabric:    %v\n", m.proc.Fabric().Allocation().Slots)
	return b.String()
}

// Processor exposes the underlying simulator for advanced use (custom
// policies, direct fabric access).
func (m *Machine) Processor() *cpu.Processor { return m.proc }

// ReportJSON renders the run's statistics as JSON for downstream
// tooling: the cpu.Stats fields plus derived rates and subsystem
// counters.
func (m *Machine) ReportJSON() ([]byte, error) {
	s := m.proc.Stats()
	acc, lookups := m.proc.Predictor().Accuracy()
	tcRate, tcLookups := m.proc.TraceCache().HitRate()
	sel, hybrid, steering := m.ConfigurationResidency()
	doc := struct {
		Policy string    `json:"policy"`
		Stats  cpu.Stats `json:"stats"`
		IPC    float64   `json:"ipc"`

		PredictorAccuracy float64 `json:"predictorAccuracy"`
		PredictorLookups  int     `json:"predictorLookups"`
		TraceCacheHitRate float64 `json:"traceCacheHitRate"`
		TraceCacheLookups int     `json:"traceCacheLookups"`
		DCacheHits        int     `json:"dcacheHits"`
		DCacheMisses      int     `json:"dcacheMisses"`

		Reconfigurations      int    `json:"reconfigurations"`
		ReconfigurationCycles int    `json:"reconfigurationCycles"`
		Steering              bool   `json:"steering"`
		Selections            [4]int `json:"selections,omitempty"`
		HybridCycles          int    `json:"hybridCycles,omitempty"`

		SteeringCacheHits   int `json:"steeringCacheHits,omitempty"`
		SteeringCacheMisses int `json:"steeringCacheMisses,omitempty"`

		Prefetch *PrefetchStats `json:"prefetch,omitempty"`
		Faults   *FaultStats    `json:"faults,omitempty"`
	}{
		Policy:                m.policy.String(),
		Stats:                 s,
		IPC:                   s.IPC(),
		PredictorAccuracy:     acc,
		PredictorLookups:      lookups,
		TraceCacheHitRate:     tcRate,
		TraceCacheLookups:     tcLookups,
		DCacheHits:            m.proc.DCache().Hits(),
		DCacheMisses:          m.proc.DCache().Misses(),
		Reconfigurations:      m.proc.Fabric().Reconfigurations(),
		ReconfigurationCycles: m.proc.Fabric().ReconfigurationCycles(),
		Steering:              steering,
		Selections:            sel,
		HybridCycles:          hybrid,
	}
	doc.SteeringCacheHits, doc.SteeringCacheMisses, _ = m.SteeringCacheStats()
	if ps, ok := m.PrefetchStats(); ok {
		doc.Prefetch = &ps
	}
	if fs, ok := m.FaultStats(); ok {
		doc.Faults = &fs
	}
	return json.MarshalIndent(doc, "", "  ")
}

// DefaultMetricsInterval is the sampling interval EnableTelemetry uses
// when none is given.
const DefaultMetricsInterval = 100

// EnableTelemetry attaches a telemetry probe sampling the machine every
// interval cycles (0 selects DefaultMetricsInterval) and streaming to w
// in the given format: "jsonl" (samples + steering decisions, one JSON
// object per line), "csv" (sample time series), or "prom" (Prometheus
// text snapshot of the cumulative counters, written at flush). Call
// before Run; Run flushes the exporter when it finishes. The returned
// probe exposes the metrics registry for programmatic reads.
func (m *Machine) EnableTelemetry(w io.Writer, format string, interval int) (*telemetry.Probe, error) {
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	if interval < 0 {
		return nil, fmt.Errorf("repro: metrics interval must be positive, got %d", interval)
	}
	probe := telemetry.NewProbe(interval)
	var exp telemetry.Exporter
	switch format {
	case "jsonl":
		exp = telemetry.NewJSONL(w)
	case "csv":
		exp = telemetry.NewCSV(w)
	case "prom":
		exp = telemetry.NewProm(w, probe.Registry())
	default:
		return nil, fmt.Errorf("repro: unknown metrics format %q (known: jsonl, csv, prom)", format)
	}
	probe.SetExporter(exp)
	m.attachProbe(probe)
	return probe, nil
}

// EnableTelemetryExporter attaches a telemetry probe with a custom
// exporter (e.g. a telemetry.Collector for in-memory post-processing).
func (m *Machine) EnableTelemetryExporter(e telemetry.Exporter, interval int) *telemetry.Probe {
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	probe := telemetry.NewProbe(interval)
	probe.SetExporter(e)
	m.attachProbe(probe)
	return probe
}

// attachProbe wires a probe into the processor and, when the policy
// supports it, the configuration-management stack.
func (m *Machine) attachProbe(probe *telemetry.Probe) {
	m.probe = probe
	m.proc.SetTelemetry(probe)
	if ts, ok := m.policyObj.(interface{ SetTelemetry(*telemetry.Probe) }); ok {
		ts.SetTelemetry(probe)
	}
}

// Telemetry returns the attached probe, or nil when telemetry is off.
func (m *Machine) Telemetry() *telemetry.Probe { return m.probe }

// SpanConfig sizes the span recorder and its flight-recorder triggers;
// the zero value selects the defaults (see internal/span.Config).
type SpanConfig = span.Config

// EnableSpans attaches a span recorder capturing duration-bearing
// epochs — reconfiguration bus transactions, repair windows, prefetch
// speculations, detected workload phases, steering-cache flush epochs
// — plus fault instants and flight-recorder anomaly triggers. Call
// before Run; export the trace afterwards with the recorder's
// WriteChromeTrace / WriteJSONL, or dump the flight ring with
// DumpFlight. The recorder is a pure observer: runs are bit-identical
// with it attached or not.
func (m *Machine) EnableSpans(cfg SpanConfig) *span.Recorder {
	r := span.NewRecorder(cfg, arch.NumRFUSlots)
	m.attachSpans(r)
	return r
}

// attachSpans wires a recorder into the processor (and through it the
// fabric) and, when the policy supports it, the configuration-
// management stack.
func (m *Machine) attachSpans(r *span.Recorder) {
	m.spans = r
	m.proc.SetSpans(r)
	if ss, ok := m.policyObj.(interface{ SetSpans(*span.Recorder) }); ok {
		ss.SetSpans(r)
	}
}

// Spans returns the attached span recorder, or nil when span tracing
// is off.
func (m *Machine) Spans() *span.Recorder { return m.spans }

// FlushTelemetry flushes the telemetry exporter and reports the first
// export error of the run — useful when driving the machine with Cycle
// instead of Run.
func (m *Machine) FlushTelemetry() error { return m.probe.Flush() }

// EnableTracing records up to limit pipeline events (fetch, dispatch,
// issue, retire, flush, reconfiguration) for TraceLog and Pipeview. Call
// before Run. When the run produces more events than the limit, the
// oldest are dropped.
func (m *Machine) EnableTracing(limit int) {
	m.tracer = trace.NewBuffer(limit)
	m.proc.SetTracer(m.tracer)
}

// EnableTracingUntil is EnableTracing restricted to events at or before
// lastCycle, so the beginning of a long run survives the buffer limit.
func (m *Machine) EnableTracingUntil(limit, lastCycle int) {
	m.tracer = trace.NewBuffer(limit)
	m.proc.SetTracer(trace.Until{R: m.tracer, LastCycle: lastCycle})
}

// TraceLog renders the recorded pipeline events one per line. Empty when
// tracing was not enabled.
func (m *Machine) TraceLog() string {
	if m.tracer == nil {
		return ""
	}
	return trace.Log(m.tracer.Events())
}

// Pipeview renders the recorded events as a pipeline chart (one row per
// instruction, one column per cycle) clipped to [fromCycle, toCycle].
func (m *Machine) Pipeview(fromCycle, toCycle int) string {
	if m.tracer == nil {
		return ""
	}
	return trace.Pipeview(m.tracer.Events(), fromCycle, toCycle)
}

// Workload re-exports: the kernel library and synthetic generator.

// Kernel is one benchmark program with setup and validation.
type Kernel = workload.Kernel

// Kernels returns the benchmark kernel library.
func Kernels() []*Kernel { return workload.Kernels() }

// KernelByName returns the named kernel or nil.
func KernelByName(name string) *Kernel { return workload.KernelByName(name) }

// Mix is a unit-type demand profile for synthetic workloads.
type Mix = workload.Mix

// Phase is one segment of a synthetic workload.
type Phase = workload.Phase

// Standard synthetic mixes.
var (
	MixIntHeavy = workload.MixIntHeavy
	MixFPHeavy  = workload.MixFPHeavy
	MixMemHeavy = workload.MixMemHeavy
	MixMDUHeavy = workload.MixMDUHeavy
	MixUniform  = workload.MixUniform
)

// Synthesize generates a phase-structured synthetic program.
func Synthesize(phases []Phase, seed int64) Program {
	return workload.Synthesize(phases, workload.SynthParams{Seed: seed})
}

// AlternatingPhases builds a phase list switching between the
// integer-heavy and FP-heavy mixes every period instructions — the
// phase-shifting workload shape the prefetch policy's predictor is
// designed to exploit.
func AlternatingPhases(total, period int) []Phase {
	return workload.AlternatingPhases(total, period)
}

// RunKernel builds a machine for the kernel (setup applied), runs it, and
// validates the outcome.
func RunKernel(k *Kernel, opt Options, maxCycles int) (Stats, error) {
	m := NewMachine(k.Program(), opt)
	if k.Setup != nil {
		k.Setup(m.proc.Memory(), m.proc.SetReg)
	}
	stats, err := m.Run(maxCycles)
	if err != nil {
		return stats, err
	}
	if k.Validate != nil {
		if err := k.Validate(m.proc.Reg, m.proc.Memory()); err != nil {
			return stats, fmt.Errorf("kernel %s validation: %w", k.Name, err)
		}
	}
	return stats, nil
}
