// Package wide is the lane-parallel "wide machine": up to 64 independent
// simulations advanced per pass in lockstep, the batch-execution layer
// the ISSUE-8 structure-of-arrays refactor builds toward.
//
// The data-layout half of the refactor lives in the scalar substrates —
// the wake-up array keeps its used/scheduled/result-available columns and
// per-row dependency vectors as uint64 bitboards (internal/wakeup), and
// the fabric keeps busy/reconfiguring/health/unit-head state as packed
// masks (internal/rfu) — so every lane's cycle step is already a pass of
// boolean logic over uint64 boards. This package adds the lane dimension
// on top: a Machine holds up to 64 lanes, each a full scalar simulator,
// and advances the still-active set in bounded lockstep chunks. Lane
// divergence (halt, cycle-budget exhaustion, cancellation) is tracked in
// uint64 lane masks; a lane that finishes is retired from the active
// mask without stalling the rest of the batch.
//
// Because each lane runs the same scalar cycle loop over the same board
// substrates, wide results are bit-identical to scalar runs by
// construction — the equivalence suite (widemachine_test.go at the repo
// root) pins stats, steering/fault/prefetch counters and report JSON
// across X1–X6, and the batch layer is what sweep.RunBatch, the rssd
// executor and rsssim -lanes route homogeneous point groups through.
//
// Eligibility rules for batching (enforced by the callers that group
// points, documented here as the contract): every lane of one Machine
// must share the same cpu.Params, Policy, Basis and MinResidency — the
// knobs that select code paths — while Seed, workload/program, memory
// image and MaxCycles may differ per lane. Heterogeneous points take the
// scalar per-point path instead.
package wide

import (
	"context"
	"math/bits"

	"repro"
)

// MaxLanes is the lane capacity of one wide machine: the width of the
// uint64 lane masks.
const MaxLanes = 64

// DefaultChunk is the lockstep chunk size: how many cycles each active
// lane advances per pass. It matches cpu.CtxCheckInterval so a wide run
// observes cancellation with the same latency as a scalar RunContext.
const DefaultChunk = 1024

// Lane is one slot of the wide machine: a fully constructed scalar
// machine plus its cycle budget. Construction (program, seed, memory
// image, telemetry) stays with the caller — the wide machine only
// schedules.
type Lane struct {
	M         *repro.Machine
	MaxCycles int
}

// Result is one lane's outcome, exactly what the scalar
// Machine.RunContext would have returned for the same run.
type Result struct {
	Stats repro.Stats
	Err   error
}

// Machine advances up to MaxLanes independent simulations in lockstep
// chunks, retiring finished lanes from the active mask without stalling
// the rest.
type Machine struct {
	lanes []Lane
	// Lane masks: active is the set still running; halted and limited
	// record how each retired lane left (HALT retired vs. cycle budget
	// exhausted vs. context cancelled).
	active    uint64
	halted    uint64
	limited   uint64
	cancelled uint64
	// Chunk is the lockstep pass length in cycles (0 = DefaultChunk).
	Chunk int
}

// New builds a wide machine over the given lanes. It panics when the
// lane count exceeds MaxLanes or a lane is missing its machine —
// programming errors of the batching layer, not data-dependent
// conditions.
func New(lanes []Lane) *Machine {
	if len(lanes) > MaxLanes {
		panic("wide: more lanes than MaxLanes")
	}
	w := &Machine{lanes: lanes}
	for i, l := range lanes {
		if l.M == nil {
			panic("wide: lane without a machine")
		}
		if l.MaxCycles > 0 && !l.M.Halted() {
			w.active |= 1 << uint(i)
		}
	}
	return w
}

// Lanes returns the lane count.
func (w *Machine) Lanes() int { return len(w.lanes) }

// ActiveMask returns the lanes still running as a bitboard.
func (w *Machine) ActiveMask() uint64 { return w.active }

// HaltedMask returns the lanes whose HALT retired.
func (w *Machine) HaltedMask() uint64 { return w.halted }

// LimitedMask returns the lanes that exhausted their cycle budget.
func (w *Machine) LimitedMask() uint64 { return w.limited }

// CancelledMask returns the lanes stopped mid-run by cancellation.
func (w *Machine) CancelledMask() uint64 { return w.cancelled }

// Lane returns lane i's machine, for per-lane stat demux after a run.
func (w *Machine) Lane(i int) *repro.Machine { return w.lanes[i].M }

// Step advances every active lane by at most one chunk of cycles and
// retires lanes that halt or exhaust their budget inside the pass. It
// returns the number of lanes still active.
func (w *Machine) Step() int {
	chunk := w.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	for m := w.active; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		l := &w.lanes[i]
		n := l.MaxCycles - l.M.Stats().Cycles
		if n > chunk {
			n = chunk
		}
		l.M.Advance(n)
		if l.M.Halted() {
			w.active &^= 1 << uint(i)
			w.halted |= 1 << uint(i)
		} else if l.M.Stats().Cycles >= l.MaxCycles {
			w.active &^= 1 << uint(i)
			w.limited |= 1 << uint(i)
		}
	}
	return bits.OnesCount64(w.active)
}

// Run advances all lanes to completion and returns per-lane results in
// lane order. See RunContext.
func (w *Machine) Run() []Result {
	res, _ := w.RunContext(context.Background())
	return res
}

// RunContext advances all lanes to completion (HALT retired or cycle
// budget exhausted), checking the context between lockstep passes, and
// returns per-lane results in lane order plus the context's error if it
// was cancelled. Each lane's Result carries exactly what the scalar
// Machine.RunContext(ctx, MaxCycles) would have produced for the same
// run — the same Stats, the same wrapped ErrCycleLimit or context error
// — because finalisation is that very call: once a lane leaves the
// active mask (or cancellation stops the batch), one RunContext call per
// lane replays the scalar path's end-of-run behaviour (error
// formatting, telemetry flush, span-epoch close) on the already-advanced
// machine.
func (w *Machine) RunContext(ctx context.Context) ([]Result, error) {
	for w.active != 0 && ctx.Err() == nil {
		w.Step()
	}
	if w.active != 0 {
		// Cancelled mid-batch: the still-active lanes finalise below
		// with the context's error, like an interrupted scalar run.
		w.cancelled = w.active
		w.active = 0
	}
	out := make([]Result, len(w.lanes))
	for i := range w.lanes {
		l := &w.lanes[i]
		out[i].Stats, out[i].Err = l.M.RunContext(ctx, l.MaxCycles)
	}
	return out, ctx.Err()
}
