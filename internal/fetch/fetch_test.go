package fetch

import (
	"testing"

	"repro/internal/isa"
)

func newTestUnit(src string) *Unit {
	prog := isa.MustAssemble(src)
	return NewUnit(prog, NewPredictor(64), NewTraceCache(16, 8))
}

func TestPredictorSaturatingCounters(t *testing.T) {
	p := NewPredictor(16)
	pc := uint32(5)
	if p.PredictTaken(pc) {
		t.Error("reset state predicts taken; want weakly not-taken")
	}
	p.UpdateTaken(pc, true)
	if !p.PredictTaken(pc) {
		t.Error("one taken update should flip a weakly-not-taken counter")
	}
	// Saturate taken, then require two not-taken updates to flip.
	for i := 0; i < 5; i++ {
		p.UpdateTaken(pc, true)
	}
	p.UpdateTaken(pc, false)
	if !p.PredictTaken(pc) {
		t.Error("single not-taken flipped a saturated counter")
	}
	p.UpdateTaken(pc, false)
	p.UpdateTaken(pc, false)
	if p.PredictTaken(pc) {
		t.Error("counter did not train toward not-taken")
	}
}

func TestPredictorBTB(t *testing.T) {
	p := NewPredictor(16)
	if _, ok := p.PredictTarget(7); ok {
		t.Error("cold BTB hit")
	}
	p.UpdateTarget(7, 42)
	target, ok := p.PredictTarget(7)
	if !ok || target != 42 {
		t.Errorf("BTB = %d,%v want 42,true", target, ok)
	}
	// Aliasing entry with a different tag must miss.
	if _, ok := p.PredictTarget(7 + 16); ok {
		t.Error("aliased BTB entry hit with wrong tag")
	}
}

func TestPredictorAccuracyAccounting(t *testing.T) {
	p := NewPredictor(16)
	p.RecordOutcome(true)
	p.RecordOutcome(true)
	p.RecordOutcome(false)
	acc, n := p.Accuracy()
	if n != 3 || acc < 0.66 || acc > 0.67 {
		t.Errorf("accuracy = %v over %d", acc, n)
	}
}

// TestGshareLearnsCorrelatedPattern: a branch whose outcome copies the
// previous branch's direction alternating each iteration is perfectly
// history-correlated: gshare learns it (distinct counters per history)
// while bimodal's single alternating counter cannot exceed chance.
func TestGshareLearnsCorrelatedPattern(t *testing.T) {
	accuracy := func(p *Predictor) float64 {
		correct, total := 0, 0
		for i := 0; i < 200; i++ {
			b := i%2 == 0
			p.UpdateTaken(100, b) // leading branch writes the history
			if i >= 100 {         // measure after warmup
				if p.PredictTaken(200) == b {
					correct++
				}
				total++
			}
			p.UpdateTaken(200, b) // correlated branch
		}
		return float64(correct) / float64(total)
	}
	gshare := accuracy(NewGsharePredictor(256, 4))
	bimodal := accuracy(NewPredictor(256))
	if gshare < 0.95 {
		t.Errorf("gshare accuracy %.2f on a perfectly correlated pattern", gshare)
	}
	if bimodal > 0.7 {
		t.Errorf("bimodal accuracy %.2f, expected near chance on alternation", bimodal)
	}
	if gshare <= bimodal {
		t.Errorf("gshare %.2f not above bimodal %.2f", gshare, bimodal)
	}
}

func TestBimodalIgnoresHistory(t *testing.T) {
	p := NewPredictor(64)
	pc := uint32(9)
	p.UpdateTaken(pc, true)
	p.UpdateTaken(pc, true)
	for i := 0; i < 8; i++ {
		p.UpdateTaken(3, i%2 == 0) // churn other branches
	}
	if !p.PredictTaken(pc) {
		t.Error("bimodal prediction changed with unrelated history")
	}
}

func TestPredictorRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewPredictor(3)
}

func TestTraceCacheFillLookup(t *testing.T) {
	tc := NewTraceCache(8, 4)
	if _, ok := tc.Lookup(10); ok {
		t.Error("cold lookup hit")
	}
	tc.Fill(10, []uint32{10, 11, 12, 13, 14, 15})
	pcs, ok := tc.Lookup(10)
	if !ok {
		t.Fatal("filled line missed")
	}
	if len(pcs) != 4 { // truncated to line length
		t.Errorf("line length %d, want 4", len(pcs))
	}
	rate, n := tc.HitRate()
	if n != 2 || rate != 0.5 {
		t.Errorf("hit rate %v over %d", rate, n)
	}
}

func TestFetchSequentialGroup(t *testing.T) {
	u := newTestUnit(`
		add r1, r1, r1
		add r2, r2, r2
		add r3, r3, r3
		halt
	`)
	group := u.Fetch()
	if len(group) != u.MemWidth {
		t.Fatalf("first group size %d, want mem width %d", len(group), u.MemWidth)
	}
	if group[0].PC != 0 || group[1].PC != 1 {
		t.Errorf("group PCs %d,%d", group[0].PC, group[1].PC)
	}
	if group[0].PredNext != 1 {
		t.Errorf("sequential PredNext = %d", group[0].PredNext)
	}
}

func TestFetchStopsAtHalt(t *testing.T) {
	u := newTestUnit(`
		halt
		add r1, r1, r1
	`)
	group := u.Fetch()
	if len(group) != 1 || group[0].Inst.Op != isa.HALT {
		t.Fatalf("group = %v", group)
	}
	if u.PC() != 0 {
		t.Errorf("fetch did not park on HALT: pc=%d", u.PC())
	}
	// Subsequent fetches supply nothing until a redirect (the HALT may
	// have been wrong-path and be flushed).
	if group = u.Fetch(); group != nil {
		t.Errorf("parked fetch group = %v, want nil", group)
	}
	u.Redirect(1)
	if group = u.Fetch(); len(group) != 1 || group[0].Inst.Op != isa.ADD {
		t.Errorf("post-redirect group = %v", group)
	}
}

func TestFetchFollowsJAL(t *testing.T) {
	u := newTestUnit(`
		j target
		add r1, r1, r1
		add r2, r2, r2
	target:
		halt
	`)
	group := u.Fetch()
	if len(group) != 1 {
		t.Fatalf("group size %d, want 1 (cut at taken jump)", len(group))
	}
	if group[0].PredNext != 3 || !group[0].PredTaken {
		t.Errorf("JAL prediction = %d,%v", group[0].PredNext, group[0].PredTaken)
	}
	if u.PC() != 3 {
		t.Errorf("fetch pc after jump = %d, want 3", u.PC())
	}
}

func TestFetchConditionalPrediction(t *testing.T) {
	u := newTestUnit(`
	loop:
		addi r1, r1, 1
		bne r1, r2, loop
		halt
	`)
	// Cold counters predict not-taken: fetch falls through.
	u.Fetch() // pcs 0,1
	if u.PC() != 2 {
		t.Fatalf("cold fetch pc = %d, want fall-through 2", u.PC())
	}
	// Train the branch taken and redirect to the loop head.
	for i := 0; i < 2; i++ {
		u.pred.UpdateTaken(1, true)
	}
	u.Redirect(0)
	group := u.Fetch()
	if len(group) != 2 {
		t.Fatalf("trained group size %d", len(group))
	}
	if !group[1].PredTaken || group[1].PredNext != 0 {
		t.Errorf("trained branch prediction = %v,%d", group[1].PredTaken, group[1].PredNext)
	}
	if u.PC() != 0 {
		t.Errorf("fetch pc after predicted-taken = %d, want 0", u.PC())
	}
}

func TestFetchJALRUsesBTB(t *testing.T) {
	u := newTestUnit(`
		jalr r31, r5, 0
		add r1, r1, r1
		halt
	`)
	// Cold BTB: fall through.
	group := u.Fetch()
	if group[0].PredTaken {
		t.Error("cold JALR predicted taken")
	}
	// Train the BTB to target 2.
	u.pred.UpdateTarget(0, 2)
	u.Redirect(0)
	group = u.Fetch()
	if !group[0].PredTaken || group[0].PredNext != 2 {
		t.Errorf("JALR prediction = %v,%d want true,2", group[0].PredTaken, group[0].PredNext)
	}
	if u.PC() != 2 {
		t.Errorf("pc = %d, want 2", u.PC())
	}
}

// TestTraceCacheWidensFetch: the second visit to a straight-line run hits
// the trace cache and fetches TCWidth instructions.
func TestTraceCacheWidensFetch(t *testing.T) {
	u := newTestUnit(`
		add r1, r1, r1
		add r2, r2, r2
		add r3, r3, r3
		add r4, r4, r4
		add r5, r5, r5
		halt
	`)
	first := u.Fetch()
	if len(first) != u.MemWidth {
		t.Fatalf("cold fetch width %d", len(first))
	}
	u.Redirect(0)
	second := u.Fetch()
	if len(second) != u.TCWidth {
		t.Fatalf("warm fetch width %d, want %d", len(second), u.TCWidth)
	}
	if u.TraceSupplied() != 1 {
		t.Errorf("TraceSupplied = %d", u.TraceSupplied())
	}
}

func TestFetchStallsOutsideProgram(t *testing.T) {
	u := newTestUnit("halt")
	u.Redirect(50)
	if group := u.Fetch(); group != nil {
		t.Errorf("out-of-range fetch returned %v", group)
	}
	if u.StallCycles() != 1 {
		t.Errorf("StallCycles = %d", u.StallCycles())
	}
}

func TestFetchedCounter(t *testing.T) {
	u := newTestUnit(`
		add r1, r1, r1
		add r2, r2, r2
		halt
	`)
	u.Fetch()
	u.Fetch()
	if u.Fetched() != 3 {
		t.Errorf("Fetched = %d, want 3", u.Fetched())
	}
}
