// Package fetch implements the front end of Fig. 1: an instruction fetch
// unit driven by a bimodal branch predictor with a branch target buffer,
// accelerated by a trace cache that supplies wider fetch for frequently
// executed instruction runs. Fetched instructions carry their predicted
// next PC so the back end can detect mispredictions at branch resolution.
package fetch

import (
	"fmt"

	"repro/internal/isa"
)

// Predictor is a conditional branch predictor (2-bit saturating
// counters, indexed either bimodally by PC or gshare-style by PC XOR a
// global history register) plus a direct-mapped BTB for register-target
// jumps (JALR). Direct branches and JAL compute their targets statically
// from the immediate, so the BTB is consulted only for JALR.
type Predictor struct {
	counters []uint8 // 2-bit saturating counters, weakly taken at reset
	btbTag   []uint32
	btbDst   []uint32
	btbValid []bool
	mask     uint32

	// gshare state: historyBits == 0 selects plain bimodal indexing.
	// History is maintained non-speculatively (updated at resolution),
	// a documented simplification relative to checkpointed history.
	historyBits uint
	history     uint32

	lookups, hits int
}

// NewPredictor builds a predictor with the given power-of-two table size.
func NewPredictor(entries int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("fetch: predictor entries %d not a positive power of two", entries))
	}
	p := &Predictor{
		counters: make([]uint8, entries),
		btbTag:   make([]uint32, entries),
		btbDst:   make([]uint32, entries),
		btbValid: make([]bool, entries),
		mask:     uint32(entries - 1),
	}
	for i := range p.counters {
		p.counters[i] = 1 // weakly not-taken
	}
	return p
}

// NewGsharePredictor builds a gshare predictor: the counter table is
// indexed by PC XOR the low historyBits bits of a global branch history
// register.
func NewGsharePredictor(entries int, historyBits uint) *Predictor {
	p := NewPredictor(entries)
	p.historyBits = historyBits
	return p
}

// index computes the counter-table index for pc.
func (p *Predictor) index(pc uint32) uint32 {
	if p.historyBits == 0 {
		return pc & p.mask
	}
	return (pc ^ (p.history & (1<<p.historyBits - 1))) & p.mask
}

// PredictTaken predicts a conditional branch at pc.
func (p *Predictor) PredictTaken(pc uint32) bool {
	return p.counters[p.index(pc)] >= 2
}

// UpdateTaken trains the counter for the conditional branch at pc and,
// for gshare, shifts the outcome into the global history.
func (p *Predictor) UpdateTaken(pc uint32, taken bool) {
	c := &p.counters[p.index(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	if p.historyBits > 0 {
		p.history <<= 1
		if taken {
			p.history |= 1
		}
	}
}

// PredictTarget predicts an indirect (JALR) target from the BTB; ok is
// false on a BTB miss.
func (p *Predictor) PredictTarget(pc uint32) (uint32, bool) {
	i := pc & p.mask
	if p.btbValid[i] && p.btbTag[i] == pc {
		return p.btbDst[i], true
	}
	return 0, false
}

// UpdateTarget records an indirect branch's resolved target.
func (p *Predictor) UpdateTarget(pc, target uint32) {
	i := pc & p.mask
	p.btbValid[i] = true
	p.btbTag[i] = pc
	p.btbDst[i] = target
}

// RecordOutcome tallies prediction accuracy for statistics.
func (p *Predictor) RecordOutcome(correct bool) {
	p.lookups++
	if correct {
		p.hits++
	}
}

// Accuracy returns fraction of correct predictions and the sample count.
func (p *Predictor) Accuracy() (float64, int) {
	if p.lookups == 0 {
		return 0, 0
	}
	return float64(p.hits) / float64(p.lookups), p.lookups
}

// Fetched is one instruction leaving the front end.
type Fetched struct {
	PC        uint32
	Inst      isa.Inst
	PredNext  uint32 // predicted next PC (what fetch followed)
	PredTaken bool   // prediction for conditional branches
}

// traceLine is one trace-cache entry: a run of instruction PCs recorded
// along the predicted path. Decoded instructions are immutable, so a line
// never goes stale; only the path can diverge, which fetch re-checks
// against live predictions.
type traceLine struct {
	startPC uint32
	pcs     []uint32
	valid   bool
}

// TraceCache caches instruction runs keyed by start PC, widening fetch on
// a hit (§2: "the trace cache is used to hold instructions that are
// frequently executed").
type TraceCache struct {
	lines   []traceLine
	lineLen int
	mask    uint32

	hits, misses int
}

// NewTraceCache builds a trace cache with a power-of-two number of lines,
// each holding up to lineLen instructions.
func NewTraceCache(lines, lineLen int) *TraceCache {
	if lines <= 0 || lines&(lines-1) != 0 || lineLen <= 0 {
		panic(fmt.Sprintf("fetch: bad trace cache geometry lines=%d len=%d", lines, lineLen))
	}
	return &TraceCache{lines: make([]traceLine, lines), lineLen: lineLen, mask: uint32(lines - 1)}
}

// Lookup returns the cached PC run starting at pc, or ok=false.
func (t *TraceCache) Lookup(pc uint32) ([]uint32, bool) {
	l := &t.lines[pc&t.mask]
	if l.valid && l.startPC == pc {
		t.hits++
		return l.pcs, true
	}
	t.misses++
	return nil, false
}

// Fill records a PC run starting at pc, truncated to the line length.
func (t *TraceCache) Fill(pc uint32, pcs []uint32) {
	if len(pcs) == 0 {
		return
	}
	if len(pcs) > t.lineLen {
		pcs = pcs[:t.lineLen]
	}
	l := &t.lines[pc&t.mask]
	l.valid = true
	l.startPC = pc
	l.pcs = append(l.pcs[:0], pcs...)
}

// HitRate returns the fraction of lookups that hit, and the lookup count.
func (t *TraceCache) HitRate() (float64, int) {
	n := t.hits + t.misses
	if n == 0 {
		return 0, 0
	}
	return float64(t.hits) / float64(n), n
}

// Unit is the instruction fetch unit. Each cycle it supplies up to
// MemWidth instructions from instruction memory, or up to TCWidth when
// the trace cache holds a run starting at the current PC. It follows
// predicted control flow and stops at predicted-taken branches' targets
// only on the next cycle (one fetch group per cycle is contiguous along
// the predicted path).
type Unit struct {
	prog isa.Program
	pred *Predictor
	tc   *TraceCache

	pc       uint32
	parked   bool // a HALT was supplied; no further fetch until redirect
	MemWidth int  // fetch width on a trace-cache miss
	TCWidth  int  // fetch width on a trace-cache hit

	fetched  int
	tcSupply int
	stalled  int // cycles with no instruction supplied (PC out of range)

	// walked is the reusable per-cycle PC-run scratch for trace-cache
	// fills (its capacity converges to the fetch width).
	walked []uint32
}

// NewUnit builds a fetch unit over a decoded program. pred and tc may not
// be nil.
func NewUnit(prog isa.Program, pred *Predictor, tc *TraceCache) *Unit {
	if pred == nil || tc == nil {
		panic("fetch: predictor and trace cache are required")
	}
	return &Unit{prog: prog, pred: pred, tc: tc, MemWidth: 2, TCWidth: 4}
}

// PC returns the next fetch address.
func (u *Unit) PC() uint32 { return u.pc }

// Redirect steers fetch to pc — used at reset and on misprediction
// recovery. It unparks a front end stopped at a HALT (the halt may have
// been wrong-path).
func (u *Unit) Redirect(pc uint32) {
	u.pc = pc
	u.parked = false
}

// predictNext computes the predicted next PC for the instruction at pc.
func (u *Unit) predictNext(pc uint32, in isa.Inst) (next uint32, taken bool) {
	switch {
	case in.Op == isa.JAL:
		return pc + uint32(in.Imm), true
	case in.Op == isa.JALR:
		if target, ok := u.pred.PredictTarget(pc); ok {
			return target, true
		}
		return pc + 1, false // no BTB entry: fall through, will mispredict
	case in.Op.IsBranch(): // conditional
		if u.pred.PredictTaken(pc) {
			return pc + uint32(in.Imm), true
		}
		return pc + 1, false
	case in.Op == isa.HALT:
		return pc, false // fetch parks on HALT
	default:
		return pc + 1, false
	}
}

// Fetch supplies one cycle's fetch group along the predicted path. The
// group is cut at the width limit, at HALT, and after a predicted-taken
// branch (the redirect costs the rest of the group, as in a real front
// end). On a trace-cache miss the walked run is filled into the cache.
func (u *Unit) Fetch() []Fetched {
	return u.AppendFetch(nil)
}

// AppendFetch is Fetch appending into a caller-owned buffer: the cycle's
// group is appended to dst and the extended slice returned. The
// processor passes a reusable scratch slice so steady-state fetch
// allocates nothing (the internal PC-run scratch is reused too).
func (u *Unit) AppendFetch(dst []Fetched) []Fetched {
	if u.parked {
		u.stalled++
		return dst
	}
	width := u.MemWidth
	if _, ok := u.tc.Lookup(u.pc); ok {
		width = u.TCWidth
		u.tcSupply++
	}

	n := 0
	u.walked = u.walked[:0]
	pc := u.pc
	for n < width {
		if pc >= uint32(len(u.prog)) {
			u.stalled++
			break
		}
		in := u.prog[pc]
		next, taken := u.predictNext(pc, in)
		dst = append(dst, Fetched{PC: pc, Inst: in, PredNext: next, PredTaken: taken})
		n++
		u.walked = append(u.walked, pc)
		if in.Op == isa.HALT {
			u.parked = true
			pc = next
			break
		}
		if taken && next != pc+1 {
			pc = next
			break
		}
		pc = next
	}
	u.pc = pc
	u.fetched += n
	if len(u.walked) > 0 {
		u.tc.Fill(u.walked[0], u.walked)
	}
	return dst
}

// Fetched returns the total number of instructions supplied.
func (u *Unit) Fetched() int { return u.fetched }

// TraceSupplied returns the number of cycles the trace cache widened
// fetch.
func (u *Unit) TraceSupplied() int { return u.tcSupply }

// StallCycles returns the number of fetch attempts cut short by the PC
// leaving the program.
func (u *Unit) StallCycles() int { return u.stalled }
