package telemetry

import (
	"repro/internal/arch"
)

// Sample is one row of the per-cycle time series: the machine state at a
// sampling boundary plus the event activity accumulated since the
// previous sample. Interval* fields cover (prevSampleCycle, cycle];
// everything else is the instantaneous or cumulative state at cycle.
//
// The JSON field set is a stable schema, pinned by a golden test: add
// fields freely, but renaming or retyping one is a breaking change for
// downstream tooling.
type Sample struct {
	Cycle int `json:"cycle"`
	// Core labels which cluster core emitted the row; 0 for a scalar
	// machine, so single-core streams are unchanged apart from the
	// explicit label.
	Core            int     `json:"core"`
	Retired         int     `json:"retired"`
	IntervalRetired int     `json:"intervalRetired"`
	IntervalIPC     float64 `json:"intervalIPC"`

	// Occupancy is the number of in-flight window (RUU) entries.
	Occupancy int `json:"occupancy"`
	// Demand counts the unit requirements of the unscheduled window
	// instructions, per unit type — the selection unit's input vector.
	Demand arch.Counts `json:"demand"`
	// IntervalIssued counts grants per unit type since the last sample.
	IntervalIssued arch.Counts `json:"intervalIssued"`

	// RFUUnits / RFUBusy count configured and currently-executing
	// reconfigurable units per type; FFUBusy the executing fixed units.
	RFUUnits arch.Counts `json:"rfuUnits"`
	RFUBusy  arch.Counts `json:"rfuBusy"`
	FFUBusy  arch.Counts `json:"ffuBusy"`
	// Slots is the live resource allocation vector.
	Slots [arch.NumRFUSlots]arch.Encoding `json:"slots"`

	// CEMValid reports whether a steering-family policy supplied
	// selection data this interval; when false the CEM fields are zero.
	CEMValid bool `json:"cemValid"`
	// CEMErrors holds the four configuration error metrics of the most
	// recent selection pass (current, then the three basis configs).
	CEMErrors [arch.NumConfigs]int `json:"cemErrors"`
	// CEMChoice is the winning candidate index of that pass.
	CEMChoice int `json:"cemChoice"`

	// ReconfigSlots counts slots mid-reconfiguration right now;
	// IntervalReconfigs counts span rewrites started this interval.
	ReconfigSlots     int `json:"reconfigSlots"`
	IntervalReconfigs int `json:"intervalReconfigs"`

	IntervalFlushed        int `json:"intervalFlushed"`
	IntervalDispatchStalls int `json:"intervalDispatchStalls"`

	// Steering-cache lookups this interval: hits replay a memoized
	// selection, misses run the CEM generators.
	IntervalSteerCacheHits   int `json:"intervalSteerCacheHits"`
	IntervalSteerCacheMisses int `json:"intervalSteerCacheMisses"`

	// Speculative-prefetch activity this interval (zero unless the
	// prefetch policy is active): spans speculatively loaded, and
	// speculation outcomes resolved.
	IntervalPrefetchIssued       int `json:"intervalPrefetchIssued"`
	IntervalPrefetchConfirmed    int `json:"intervalPrefetchConfirmed"`
	IntervalPrefetchMispredicted int `json:"intervalPrefetchMispredicted"`
	IntervalPrefetchCancelled    int `json:"intervalPrefetchCancelled"`

	// Fault-injection activity this interval (zero when the injector
	// is disabled): upsets struck, corrupt slots the scrub scan
	// detected, slots repaired, and scrub scans run.
	IntervalFaultsInjected int `json:"intervalFaultsInjected"`
	IntervalFaultsDetected int `json:"intervalFaultsDetected"`
	IntervalFaultsRepaired int `json:"intervalFaultsRepaired"`
	IntervalScrubScans     int `json:"intervalScrubScans"`
	// MaskedSlots counts slots currently unavailable to steering and
	// dispatch because of faults (corrupt, detected, repairing or
	// dead) at the sampling boundary.
	MaskedSlots int `json:"maskedSlots"`

	// Interval bottleneck classification: every cycle of the interval
	// falls into exactly one of the four buckets.
	BucketIssued   int `json:"bucketIssued"`
	BucketUnits    int `json:"bucketUnits"`
	BucketDeps     int `json:"bucketDeps"`
	BucketFrontend int `json:"bucketFrontend"`
}

// Decision is one steering-decision log record: a configuration switch
// the loader actually started (selection alone, with nothing loadable,
// does not log).
type Decision struct {
	Cycle int `json:"cycle"`
	// Core labels the cluster core whose manager made the decision (0
	// for a scalar machine).
	Core int `json:"core"`
	// From classifies the allocation before the switch: a basis
	// configuration name, "(empty)", or "hybrid".
	From string `json:"from"`
	// To is the selected target configuration's name.
	To string `json:"to"`
	// Choice is the selection unit's two-bit output (1..3).
	Choice int `json:"choice"`
	// DiffSlots is the XOR-diff between the live allocation vector and
	// the target layout: how many slot encodings differ at switch time.
	DiffSlots int `json:"diffSlots"`
	// Spans and SlotsLoading count the span rewrites started now and the
	// slots they cover; DeferredSlots the busy slots §3.2 skipped.
	Spans         int `json:"spans"`
	SlotsLoading  int `json:"slotsLoading"`
	DeferredSlots int `json:"deferredSlots"`
	// StallSlotCycles is the loading overhead started by this switch:
	// slots being rewritten times the per-span reconfiguration latency —
	// the slot-cycles during which those slots cannot execute.
	StallSlotCycles int `json:"stallSlotCycles"`
}

// Fault-event names, the closed vocabulary of FaultEvent.Event.
const (
	FaultInjectedTransient = "injected-transient"
	FaultInjectedPermanent = "injected-permanent"
	FaultDetected          = "detected"
	FaultRepairStart       = "repair-start"
	FaultRepaired          = "repaired"
	FaultDead              = "dead"
)

// FaultEvent is one fault-injection log record: an upset striking a
// slot, the scrub scan detecting it, a repair starting or completing,
// or a slot being declared permanently dead. Like steering decisions,
// fault events are not sampled — every transition is logged.
type FaultEvent struct {
	Cycle int `json:"cycle"`
	// Core labels the cluster core whose fabric view logged the event
	// (0 for a scalar machine; in merged mode the master core owns the
	// shared fabric's fault machinery).
	Core int `json:"core"`
	// Slot is the reconfigurable slot the event concerns.
	Slot int `json:"slot"`
	// Event is one of the Fault* constants above.
	Event string `json:"event"`
}

// Prefetch-event names, the closed vocabulary of PrefetchEvent.Event.
const (
	PrefetchIssue       = "issue"
	PrefetchConfirm     = "confirm"
	PrefetchMispredict  = "mispredict"
	PrefetchCancel      = "cancel"
	PrefetchPhaseChange = "phase-change"
)

// PrefetchEvent is one speculative-prefetch log record from the
// prediction subsystem (internal/predict): spans speculatively loaded
// for a predicted configuration, the speculation's outcome (confirm /
// mispredict / cancel), or a detected workload phase change. Like
// steering decisions and fault events, prefetch events are not sampled
// — every transition is logged.
type PrefetchEvent struct {
	Cycle int `json:"cycle"`
	// Core labels the cluster core whose predictor logged the event (0
	// for a scalar machine).
	Core int `json:"core"`
	// Event is one of the Prefetch* constants above.
	Event string `json:"event"`
	// Config names the predicted target configuration (empty for
	// phase-change events).
	Config string `json:"config"`
	// Spans counts the speculative span rewrites the event covers: for
	// issue events the spans loaded this cycle, for mispredict/cancel
	// the speculation's total spans — the bus bandwidth wasted.
	Spans int `json:"spans"`
	// ConfidencePct is the Markov-predictor confidence behind the
	// speculation, in percent.
	ConfidencePct int `json:"confidencePct"`
}

// CoreState is the snapshot the processor hands the Probe at a sampling
// boundary — the fields the Probe cannot see through its event hooks.
type CoreState struct {
	Cycle     int
	Retired   int
	Occupancy int
	Demand    arch.Counts
	RFUUnits  arch.Counts
	RFUBusy   arch.Counts
	FFUBusy   arch.Counts
	Slots     [arch.NumRFUSlots]arch.Encoding

	ReconfigSlots int
	// MaskedSlots counts slots fault-masked away from steering and
	// dispatch right now.
	MaskedSlots int

	// Cumulative bottleneck buckets (issued, units, deps, frontend).
	Buckets [4]int
}

// Probe is the instrumentation hub wired into one machine: the
// processor, configuration manager and fabric feed it events; a Sampler
// interval drains it into an Exporter. Every method is safe on a nil
// receiver so instrumentation call sites cost one branch when telemetry
// is off.
type Probe struct {
	interval int
	exp      Exporter
	reg      *Registry
	err      error // first exporter error; surfaced by Flush

	cycle int
	// core stamps every emitted record with the owning cluster core's
	// index (0 for scalar machines — see SetCore).
	core int

	// Registry-backed cumulative metrics.
	cCycles         *Counter
	cRetired        *Counter
	cDispatched     *Counter
	cFlushed        *Counter
	cDispatchStalls *Counter
	cIssued         [arch.NumUnitTypes]*Counter
	cSelections     [arch.NumConfigs]*Counter
	cDecisions      *Counter
	cReconfigSpans  *Counter
	cReconfigSlotCy *Counter
	cSteerHits      *Counter
	cSteerMisses    *Counter
	cPrefIssued     *Counter
	cPrefConfirmed  *Counter
	cPrefMispred    *Counter
	cPrefCancelled  *Counter
	cPrefWasted     *Counter
	cPhaseChanges   *Counter
	cFaultsTrans    *Counter
	cFaultsPerm     *Counter
	cFaultsDetected *Counter
	cFaultsRepaired *Counter
	cScrubScans     *Counter
	cMaskedSlotCy   *Counter
	gOccupancy      *Gauge
	gReconfigSlots  *Gauge
	gCEMError       [arch.NumConfigs]*Gauge
	hOccupancy      *Histogram

	// Interval accumulators, reset at each sample.
	ivIssued    arch.Counts
	ivRetired   int
	ivFlushed   int
	ivStalls    int
	ivReconfigs int
	ivSteerHits int
	ivSteerMiss int
	ivFaultsInj int
	ivFaultsDet int
	ivFaultsRep int
	ivScrubs    int
	ivPrefIss   int
	ivPrefConf  int
	ivPrefMisp  int
	ivPrefCanc  int

	// Latest selection-unit pass (steering-family policies only).
	selSeen   bool
	selErrors [arch.NumConfigs]int
	selChoice int

	// Cumulative values at the previous sample, for interval deltas.
	lastRetired int
	lastBuckets [4]int
}

// NewProbe builds a probe sampling every interval cycles (interval must
// be positive). Attach an exporter with SetExporter before the run; a
// probe without an exporter still maintains its registry.
func NewProbe(interval int) *Probe {
	if interval <= 0 {
		panic("telemetry: sampling interval must be positive")
	}
	reg := NewRegistry()
	p := &Probe{interval: interval, reg: reg}
	p.cCycles = reg.NewCounter("rsssim_cycles_total", "simulated cycles")
	p.cRetired = reg.NewCounter("rsssim_retired_total", "retired instructions")
	p.cDispatched = reg.NewCounter("rsssim_dispatched_total", "dispatched instructions")
	p.cFlushed = reg.NewCounter("rsssim_flushed_total", "instructions squashed by misprediction recovery")
	p.cDispatchStalls = reg.NewCounter("rsssim_dispatch_stalls_total", "dispatch attempts blocked by a full window")
	for t := 0; t < arch.NumUnitTypes; t++ {
		p.cIssued[t] = reg.NewCounter("rsssim_issued_total", "instructions granted per unit type",
			Label{"unit", arch.UnitType(t).String()})
	}
	for i := 0; i < arch.NumConfigs; i++ {
		p.cSelections[i] = reg.NewCounter("rsssim_selections_total", "selection-unit wins per candidate configuration",
			Label{"config", configLabel(i)})
		p.gCEMError[i] = reg.NewGauge("rsssim_cem_error", "latest configuration error metric per candidate",
			Label{"config", configLabel(i)})
	}
	p.cDecisions = reg.NewCounter("rsssim_steering_decisions_total", "configuration switches the loader started")
	p.cReconfigSpans = reg.NewCounter("rsssim_reconfig_spans_total", "RFU span rewrites started")
	p.cReconfigSlotCy = reg.NewCounter("rsssim_reconfig_slot_cycles_total", "slot-cycles of reconfiguration started")
	p.cSteerHits = reg.NewCounter("rsssim_steering_cache_hits_total", "steering-cache lookups served from the packed-key table")
	p.cSteerMisses = reg.NewCounter("rsssim_steering_cache_misses_total", "steering-cache lookups that ran the CEM generators")
	p.cPrefIssued = reg.NewCounter("rsssim_prefetch_issued_total", "speculative span rewrites the prefetch policy started")
	p.cPrefConfirmed = reg.NewCounter("rsssim_prefetch_confirmed_total", "speculations confirmed by a matching demand shift")
	p.cPrefMispred = reg.NewCounter("rsssim_prefetch_mispredicted_total", "speculations ended by demand selecting a different configuration")
	p.cPrefCancelled = reg.NewCounter("rsssim_prefetch_cancelled_total", "speculations abandoned without a demand shift")
	p.cPrefWasted = reg.NewCounter("rsssim_prefetch_wasted_spans_total", "configuration-bus spans charged to mispredicted or cancelled speculations")
	p.cPhaseChanges = reg.NewCounter("rsssim_phase_changes_total", "workload phase boundaries the demand-history detector flagged")
	p.cFaultsTrans = reg.NewCounter("rsssim_faults_injected_total", "configuration upsets injected per kind",
		Label{"kind", "transient"})
	p.cFaultsPerm = reg.NewCounter("rsssim_faults_injected_total", "configuration upsets injected per kind",
		Label{"kind", "permanent"})
	p.cFaultsDetected = reg.NewCounter("rsssim_faults_detected_total", "corrupt slots the readback scrub detected")
	p.cFaultsRepaired = reg.NewCounter("rsssim_faults_repaired_total", "slots restored by repair reconfiguration")
	p.cScrubScans = reg.NewCounter("rsssim_scrub_scans_total", "readback scrub scans run")
	p.cMaskedSlotCy = reg.NewCounter("rsssim_masked_slot_cycles_total", "slot-cycles lost to fault masking")
	p.gOccupancy = reg.NewGauge("rsssim_window_occupancy", "in-flight window entries at the last sample")
	p.gReconfigSlots = reg.NewGauge("rsssim_reconfiguring_slots", "slots mid-reconfiguration at the last sample")
	p.hOccupancy = reg.NewHistogram("rsssim_window_occupancy_sampled", "window occupancy distribution over samples",
		[]int64{0, 1, 2, 3, 4, 5, 6, 7, 15, 31})
	return p
}

// configLabel names candidate i for metric labels.
func configLabel(i int) string {
	if i == 0 {
		return "current"
	}
	return "basis" + string(rune('0'+i))
}

// SetExporter attaches the sample/decision destination.
func (p *Probe) SetExporter(e Exporter) { p.exp = e }

// SetCore sets the cluster-core index stamped onto every record this
// probe emits. Scalar machines leave it at 0; the cluster layer gives
// each core its own probe (often sharing one exporter) so streams stay
// attributable after interleaving.
func (p *Probe) SetCore(core int) {
	if p == nil {
		return
	}
	p.core = core
}

// Registry exposes the probe's metric registry (for the Prometheus
// exporter and report code).
func (p *Probe) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Interval returns the sampling interval in cycles.
func (p *Probe) Interval() int {
	if p == nil {
		return 0
	}
	return p.interval
}

// --- Hot-path hooks (all nil-safe, allocation-free) --------------------

// BeginCycle marks the start of simulated cycle c; decision and sample
// records carry this cycle number.
func (p *Probe) BeginCycle(c int) {
	if p == nil {
		return
	}
	p.cycle = c
	p.cCycles.Inc()
}

// Dispatch records one instruction entering the window.
func (p *Probe) Dispatch() {
	if p == nil {
		return
	}
	p.cDispatched.Inc()
}

// DispatchStall records a dispatch attempt blocked by a full window.
func (p *Probe) DispatchStall() {
	if p == nil {
		return
	}
	p.cDispatchStalls.Inc()
	p.ivStalls++
}

// Issue records one grant to a unit of type t.
func (p *Probe) Issue(t arch.UnitType) {
	if p == nil {
		return
	}
	p.cIssued[t].Inc()
	p.ivIssued[t]++
}

// Retire records one instruction committing.
func (p *Probe) Retire() {
	if p == nil {
		return
	}
	p.cRetired.Inc()
	p.ivRetired++
}

// Flushed records n instructions squashed by a misprediction flush.
func (p *Probe) Flushed(n int) {
	if p == nil || n == 0 {
		return
	}
	p.cFlushed.Add(uint64(n))
	p.ivFlushed += n
}

// Selection records one selection-unit pass: the four CEM scores and the
// winning candidate.
func (p *Probe) Selection(errors [arch.NumConfigs]int, choice int) {
	if p == nil {
		return
	}
	p.selSeen = true
	p.selErrors = errors
	p.selChoice = choice
	p.cSelections[choice].Inc()
	for i, e := range errors {
		p.gCEMError[i].Set(int64(e))
	}
}

// SteeringCacheLookup records one steering-cache probe: a hit replays a
// memoized selection, a miss runs the CEM generators and fills the line.
func (p *Probe) SteeringCacheLookup(hit bool) {
	if p == nil {
		return
	}
	if hit {
		p.cSteerHits.Inc()
		p.ivSteerHits++
	} else {
		p.cSteerMisses.Inc()
		p.ivSteerMiss++
	}
}

// ConfigSwitch logs one steering decision: the loader started rewriting
// spans toward a new configuration. The probe stamps the cycle and
// forwards the record to the exporter immediately (decisions are not
// sampled — every switch is logged).
func (p *Probe) ConfigSwitch(d Decision) {
	if p == nil {
		return
	}
	d.Cycle = p.cycle
	d.Core = p.core
	p.cDecisions.Inc()
	if p.exp != nil {
		if err := p.exp.Decision(&d); err != nil && p.err == nil {
			p.err = err
		}
	}
}

// Fault logs one fault-injection state transition for slot. The probe
// stamps the cycle, counts the event on the registry and forwards the
// record to the exporter immediately (fault events are not sampled).
func (p *Probe) Fault(slot int, event string) {
	if p == nil {
		return
	}
	switch event {
	case FaultInjectedTransient:
		p.cFaultsTrans.Inc()
		p.ivFaultsInj++
	case FaultInjectedPermanent:
		p.cFaultsPerm.Inc()
		p.ivFaultsInj++
	case FaultDetected:
		p.cFaultsDetected.Inc()
		p.ivFaultsDet++
	case FaultRepaired:
		p.cFaultsRepaired.Inc()
		p.ivFaultsRep++
	}
	if p.exp != nil {
		f := FaultEvent{Cycle: p.cycle, Core: p.core, Slot: slot, Event: event}
		if err := p.exp.Fault(&f); err != nil && p.err == nil {
			p.err = err
		}
	}
}

// Prefetch logs one speculative-prefetch event. The probe stamps the
// cycle, counts the event on the registry (mispredict/cancel events
// also charge their spans as wasted bus bandwidth) and forwards the
// record to the exporter immediately (prefetch events are not sampled).
func (p *Probe) Prefetch(ev PrefetchEvent) {
	if p == nil {
		return
	}
	ev.Cycle = p.cycle
	ev.Core = p.core
	switch ev.Event {
	case PrefetchIssue:
		p.cPrefIssued.Add(uint64(ev.Spans))
		p.ivPrefIss += ev.Spans
	case PrefetchConfirm:
		p.cPrefConfirmed.Inc()
		p.ivPrefConf++
	case PrefetchMispredict:
		p.cPrefMispred.Inc()
		p.cPrefWasted.Add(uint64(ev.Spans))
		p.ivPrefMisp++
	case PrefetchCancel:
		p.cPrefCancelled.Inc()
		p.cPrefWasted.Add(uint64(ev.Spans))
		p.ivPrefCanc++
	case PrefetchPhaseChange:
		p.cPhaseChanges.Inc()
	}
	if p.exp != nil {
		if err := p.exp.Prefetch(&ev); err != nil && p.err == nil {
			p.err = err
		}
	}
}

// ScrubScan records one readback scrub pass over the fabric.
func (p *Probe) ScrubScan() {
	if p == nil {
		return
	}
	p.cScrubScans.Inc()
	p.ivScrubs++
}

// MaskedSlotCycles accumulates n slot-cycles lost to fault masking this
// cycle (called once per cycle by the fabric when faults are enabled).
func (p *Probe) MaskedSlotCycles(n int) {
	if p == nil || n == 0 {
		return
	}
	p.cMaskedSlotCy.Add(uint64(n))
}

// ReconfigStart records one span rewrite beginning: a unit of type t at
// some head slot, covering slots slots, taking latency cycles per slot
// span.
func (p *Probe) ReconfigStart(t arch.UnitType, slots, latency int) {
	if p == nil {
		return
	}
	p.cReconfigSpans.Inc()
	p.cReconfigSlotCy.Add(uint64(slots * latency))
	p.ivReconfigs++
}

// --- Sampling path ------------------------------------------------------

// SampleDue reports whether the cycle most recently begun is a sampling
// boundary. The caller gathers a CoreState snapshot only when it is, so
// disabled or off-boundary cycles never pay the snapshot cost.
func (p *Probe) SampleDue() bool {
	return p != nil && p.cycle%p.interval == 0
}

// EmitSample merges the core snapshot with the accumulated event counts
// into a Sample, updates the sampled gauges/histograms, hands the sample
// to the exporter and resets the interval accumulators.
func (p *Probe) EmitSample(cs CoreState) {
	if p == nil {
		return
	}
	s := Sample{
		Cycle:           cs.Cycle,
		Core:            p.core,
		Retired:         cs.Retired,
		IntervalRetired: cs.Retired - p.lastRetired,
		Occupancy:       cs.Occupancy,
		Demand:          cs.Demand,
		IntervalIssued:  p.ivIssued,
		RFUUnits:        cs.RFUUnits,
		RFUBusy:         cs.RFUBusy,
		FFUBusy:         cs.FFUBusy,
		Slots:           cs.Slots,
		CEMValid:        p.selSeen,
		CEMErrors:       p.selErrors,
		CEMChoice:       p.selChoice,
		ReconfigSlots:   cs.ReconfigSlots,

		IntervalReconfigs:      p.ivReconfigs,
		IntervalFlushed:        p.ivFlushed,
		IntervalDispatchStalls: p.ivStalls,

		IntervalSteerCacheHits:   p.ivSteerHits,
		IntervalSteerCacheMisses: p.ivSteerMiss,

		IntervalPrefetchIssued:       p.ivPrefIss,
		IntervalPrefetchConfirmed:    p.ivPrefConf,
		IntervalPrefetchMispredicted: p.ivPrefMisp,
		IntervalPrefetchCancelled:    p.ivPrefCanc,

		IntervalFaultsInjected: p.ivFaultsInj,
		IntervalFaultsDetected: p.ivFaultsDet,
		IntervalFaultsRepaired: p.ivFaultsRep,
		IntervalScrubScans:     p.ivScrubs,
		MaskedSlots:            cs.MaskedSlots,

		BucketIssued:   cs.Buckets[0] - p.lastBuckets[0],
		BucketUnits:    cs.Buckets[1] - p.lastBuckets[1],
		BucketDeps:     cs.Buckets[2] - p.lastBuckets[2],
		BucketFrontend: cs.Buckets[3] - p.lastBuckets[3],
	}
	s.IntervalIPC = float64(s.IntervalRetired) / float64(p.interval)

	p.gOccupancy.Set(int64(cs.Occupancy))
	p.gReconfigSlots.Set(int64(cs.ReconfigSlots))
	p.hOccupancy.Observe(int64(cs.Occupancy))

	p.lastRetired = cs.Retired
	p.lastBuckets = cs.Buckets
	p.ivIssued = arch.Counts{}
	p.ivRetired = 0
	p.ivFlushed = 0
	p.ivStalls = 0
	p.ivReconfigs = 0
	p.ivSteerHits = 0
	p.ivSteerMiss = 0
	p.ivFaultsInj = 0
	p.ivFaultsDet = 0
	p.ivFaultsRep = 0
	p.ivScrubs = 0
	p.ivPrefIss = 0
	p.ivPrefConf = 0
	p.ivPrefMisp = 0
	p.ivPrefCanc = 0

	if p.exp != nil {
		if err := p.exp.Sample(&s); err != nil && p.err == nil {
			p.err = err
		}
	}
}

// Flush flushes the exporter and returns the first error the telemetry
// pipeline encountered during the run (export errors are deferred to
// here so the hot path never checks them).
func (p *Probe) Flush() error {
	if p == nil {
		return nil
	}
	if p.exp != nil {
		if err := p.exp.Flush(); err != nil && p.err == nil {
			p.err = err
		}
	}
	return p.err
}
