package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
)

// Exporter receives the sampler's output. Samples arrive every probe
// interval; decisions, fault events and prefetch events arrive the
// cycle they happen. Flush is called once at end of run.
type Exporter interface {
	Sample(*Sample) error
	Decision(*Decision) error
	Fault(*FaultEvent) error
	Prefetch(*PrefetchEvent) error
	Flush() error
}

// sampleRecord / decisionRecord wrap a row with a "record" discriminator
// so the two row types can share one stream. (Two separate wrapper types:
// embedding both in one struct would make the shared "cycle" field
// ambiguous and encoding/json would drop it.)
type sampleRecord struct {
	Record string `json:"record"`
	*Sample
}

type decisionRecord struct {
	Record string `json:"record"`
	*Decision
}

type faultRecord struct {
	Record string `json:"record"`
	*FaultEvent
}

type prefetchRecord struct {
	Record string `json:"record"`
	*PrefetchEvent
}

// JSONL streams samples and decisions as one JSON object per line, each
// tagged with "record":"sample" or "record":"decision".
type JSONL struct {
	w *bufio.Writer
}

// NewJSONL wraps w in a buffered JSON-lines exporter.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

func (e *JSONL) write(rec any) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	return e.w.WriteByte('\n')
}

// Sample writes one sample row.
func (e *JSONL) Sample(s *Sample) error { return e.write(sampleRecord{Record: "sample", Sample: s}) }

// Decision writes one decision row.
func (e *JSONL) Decision(d *Decision) error {
	return e.write(decisionRecord{Record: "decision", Decision: d})
}

// Fault writes one fault-event row.
func (e *JSONL) Fault(f *FaultEvent) error {
	return e.write(faultRecord{Record: "fault", FaultEvent: f})
}

// Prefetch writes one prefetch-event row.
func (e *JSONL) Prefetch(p *PrefetchEvent) error {
	return e.write(prefetchRecord{Record: "prefetch", PrefetchEvent: p})
}

// Flush drains the buffer.
func (e *JSONL) Flush() error { return e.w.Flush() }

// CSV writes the sample time series as comma-separated rows with a
// header. Decision records have a different shape and are omitted from
// CSV output — use the JSONL exporter when the steering log matters.
type CSV struct {
	w      *bufio.Writer
	header bool
}

// NewCSV wraps w in a buffered CSV exporter.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: bufio.NewWriter(w)}
}

// csvHeader lists the sample columns; per-unit-type vectors expand into
// one column per type, slots join into one quoted string.
func csvHeader() string {
	cols := []string{"cycle", "core", "retired", "intervalRetired", "intervalIPC", "occupancy"}
	for _, group := range []string{"demand", "issued", "rfuUnits", "rfuBusy", "ffuBusy"} {
		for _, t := range arch.UnitTypes() {
			cols = append(cols, group+"_"+t.String())
		}
	}
	cols = append(cols, "slots", "cemValid")
	for i := 0; i < arch.NumConfigs; i++ {
		cols = append(cols, fmt.Sprintf("cemError%d", i))
	}
	cols = append(cols, "cemChoice", "reconfigSlots", "intervalReconfigs",
		"intervalFlushed", "intervalDispatchStalls",
		"bucketIssued", "bucketUnits", "bucketDeps", "bucketFrontend")
	return strings.Join(cols, ",")
}

// Sample writes one CSV row (and the header before the first row).
func (e *CSV) Sample(s *Sample) error {
	if !e.header {
		e.header = true
		if _, err := fmt.Fprintln(e.w, csvHeader()); err != nil {
			return err
		}
	}
	fields := []string{
		itoa(s.Cycle), itoa(s.Core), itoa(s.Retired), itoa(s.IntervalRetired),
		fmt.Sprintf("%.4f", s.IntervalIPC), itoa(s.Occupancy),
	}
	for _, counts := range []arch.Counts{s.Demand, s.IntervalIssued, s.RFUUnits, s.RFUBusy, s.FFUBusy} {
		for _, v := range counts {
			fields = append(fields, itoa(v))
		}
	}
	slot := make([]string, len(s.Slots))
	for i, enc := range s.Slots {
		slot[i] = itoa(int(enc))
	}
	fields = append(fields, "\""+strings.Join(slot, " ")+"\"")
	if s.CEMValid {
		fields = append(fields, "1")
	} else {
		fields = append(fields, "0")
	}
	for _, e := range s.CEMErrors {
		fields = append(fields, itoa(e))
	}
	fields = append(fields, itoa(s.CEMChoice), itoa(s.ReconfigSlots), itoa(s.IntervalReconfigs),
		itoa(s.IntervalFlushed), itoa(s.IntervalDispatchStalls),
		itoa(s.BucketIssued), itoa(s.BucketUnits), itoa(s.BucketDeps), itoa(s.BucketFrontend))
	_, err := fmt.Fprintln(e.w, strings.Join(fields, ","))
	return err
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// Decision is a no-op: decisions do not fit the sample row shape.
func (e *CSV) Decision(*Decision) error { return nil }

// Fault is a no-op: fault events do not fit the sample row shape — use
// the JSONL exporter when the fault log matters.
func (e *CSV) Fault(*FaultEvent) error { return nil }

// Prefetch is a no-op: prefetch events do not fit the sample row shape
// either; their interval aggregates ride the sample rows.
func (e *CSV) Prefetch(*PrefetchEvent) error { return nil }

// Flush drains the buffer.
func (e *CSV) Flush() error { return e.w.Flush() }

// Prom renders the probe's registry in Prometheus text exposition format
// once, at Flush — a snapshot of the cumulative counters at end of run.
// Per-sample rows and decisions are not part of the exposition format
// and are dropped.
type Prom struct {
	w   io.Writer
	reg *Registry
}

// NewProm builds a Prometheus snapshot exporter over the registry.
func NewProm(w io.Writer, reg *Registry) *Prom {
	return &Prom{w: w, reg: reg}
}

// Sample is a no-op; the registry's gauges already track sampled state.
func (e *Prom) Sample(*Sample) error { return nil }

// Decision is a no-op; switches are counted by rsssim_steering_decisions_total.
func (e *Prom) Decision(*Decision) error { return nil }

// Fault is a no-op; upsets are counted by the rsssim_faults_* counters.
func (e *Prom) Fault(*FaultEvent) error { return nil }

// Prefetch is a no-op; speculation is counted by the rsssim_prefetch_*
// counters.
func (e *Prom) Prefetch(*PrefetchEvent) error { return nil }

// Flush renders the registry.
func (e *Prom) Flush() error { return e.reg.Render(e.w) }

// Collector retains samples, decisions and fault events in memory, for
// studies and tests that post-process the series instead of streaming it.
type Collector struct {
	Samples    []Sample
	Decisions  []Decision
	Faults     []FaultEvent
	Prefetches []PrefetchEvent
}

// Sample appends a copy of s.
func (c *Collector) Sample(s *Sample) error {
	c.Samples = append(c.Samples, *s)
	return nil
}

// Decision appends a copy of d.
func (c *Collector) Decision(d *Decision) error {
	c.Decisions = append(c.Decisions, *d)
	return nil
}

// Fault appends a copy of f.
func (c *Collector) Fault(f *FaultEvent) error {
	c.Faults = append(c.Faults, *f)
	return nil
}

// Prefetch appends a copy of p.
func (c *Collector) Prefetch(p *PrefetchEvent) error {
	c.Prefetches = append(c.Prefetches, *p)
	return nil
}

// Flush is a no-op.
func (c *Collector) Flush() error { return nil }
