package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := reg.NewGauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	h := reg.NewHistogram("h", "a histogram", []int64{1, 4})
	for _, v := range []int64{0, 1, 2, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 8 {
		t.Errorf("histogram count=%d sum=%d, want 4/8", h.Count(), h.Sum())
	}
	if got := h.counts; got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Errorf("bucket counts = %v, want [2 1 1]", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("dup", "second")
}

func TestRegistryLabelsDistinguish(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("issued", "per unit", Label{"unit", "IntALU"})
	b := reg.NewCounter("issued", "per unit", Label{"unit", "LSU"})
	a.Inc()
	b.Add(2)
	if v, ok := reg.CounterValue("issued", Label{"unit", "LSU"}); !ok || v != 2 {
		t.Errorf("CounterValue(LSU) = %d,%v, want 2,true", v, ok)
	}
	if _, ok := reg.CounterValue("issued", Label{"unit", "FPALU"}); ok {
		t.Error("CounterValue on unregistered labels reported ok")
	}
}

func TestRenderPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("sim_events_total", "events", Label{"kind", "x"})
	c.Add(3)
	h := reg.NewHistogram("sim_occ", "occupancy", []int64{1, 2})
	h.Observe(0)
	h.Observe(2)
	h.Observe(9)
	var buf bytes.Buffer
	if err := reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP sim_events_total events",
		"# TYPE sim_events_total counter",
		`sim_events_total{kind="x"} 3`,
		"# TYPE sim_occ histogram",
		`sim_occ_bucket{le="1"} 1`,
		`sim_occ_bucket{le="2"} 2`,
		`sim_occ_bucket{le="+Inf"} 3`,
		"sim_occ_sum 11",
		"sim_occ_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q\n%s", want, out)
		}
	}
}

func TestProbeNilReceiverSafe(t *testing.T) {
	var p *Probe
	p.BeginCycle(1)
	p.Dispatch()
	p.DispatchStall()
	p.Issue(arch.IntALU)
	p.Retire()
	p.Flushed(3)
	p.Selection([arch.NumConfigs]int{1, 2, 3, 4}, 2)
	p.ConfigSwitch(Decision{})
	p.ReconfigStart(arch.FPALU, 2, 8)
	if p.SampleDue() {
		t.Error("nil probe reported SampleDue")
	}
	p.EmitSample(CoreState{})
	if err := p.Flush(); err != nil {
		t.Errorf("nil probe Flush = %v", err)
	}
	if p.Registry() != nil || p.Interval() != 0 {
		t.Error("nil probe accessors not zero")
	}
}

func TestProbeSamplingAndCounters(t *testing.T) {
	p := NewProbe(10)
	col := &Collector{}
	p.SetExporter(col)

	for c := 1; c <= 20; c++ {
		p.BeginCycle(c)
		p.Dispatch()
		p.Issue(arch.LSU)
		p.Retire()
		if p.SampleDue() {
			p.EmitSample(CoreState{Cycle: c, Retired: c, Occupancy: 3,
				Buckets: [4]int{c, 0, 0, 0}})
		}
	}
	if len(col.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(col.Samples))
	}
	s := col.Samples[1]
	if s.Cycle != 20 || s.IntervalRetired != 10 || s.IntervalIPC != 1.0 {
		t.Errorf("sample = %+v, want cycle 20, intervalRetired 10, IPC 1.0", s)
	}
	if s.IntervalIssued[arch.LSU] != 10 {
		t.Errorf("interval issued LSU = %d, want 10", s.IntervalIssued[arch.LSU])
	}
	if s.BucketIssued != 10 {
		t.Errorf("bucketIssued = %d, want 10 (interval delta)", s.BucketIssued)
	}
	if v, _ := p.Registry().CounterValue("rsssim_cycles_total"); v != 20 {
		t.Errorf("cycles counter = %d, want 20", v)
	}
	if v, _ := p.Registry().CounterValue("rsssim_issued_total", Label{"unit", "LSU"}); v != 20 {
		t.Errorf("issued{LSU} counter = %d, want 20", v)
	}
}

func TestProbeDecisionStampedAndExported(t *testing.T) {
	p := NewProbe(100)
	col := &Collector{}
	p.SetExporter(col)
	p.BeginCycle(42)
	p.Selection([arch.NumConfigs]int{9, 1, 5, 7}, 1)
	p.ConfigSwitch(Decision{From: "memory", To: "floating", Choice: 1,
		DiffSlots: 6, Spans: 2, SlotsLoading: 4, StallSlotCycles: 32})
	if len(col.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(col.Decisions))
	}
	d := col.Decisions[0]
	if d.Cycle != 42 {
		t.Errorf("decision cycle = %d, want 42 (stamped by probe)", d.Cycle)
	}
	if d.From != "memory" || d.To != "floating" || d.StallSlotCycles != 32 {
		t.Errorf("decision = %+v", d)
	}
	if v, _ := p.Registry().CounterValue("rsssim_steering_decisions_total"); v != 1 {
		t.Errorf("decisions counter = %d, want 1", v)
	}
}

func TestJSONLExporterRecords(t *testing.T) {
	var buf bytes.Buffer
	e := NewJSONL(&buf)
	if err := e.Sample(&Sample{Cycle: 100, Occupancy: 4}); err != nil {
		t.Fatal(err)
	}
	if err := e.Decision(&Decision{Cycle: 101, From: "(empty)", To: "memory"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var sample map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &sample); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if sample["record"] != "sample" || sample["cycle"] != float64(100) {
		t.Errorf("sample row = %v", sample)
	}
	if _, ok := sample["from"]; ok {
		t.Error("sample row leaked decision fields")
	}
	var dec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &dec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if dec["record"] != "decision" || dec["to"] != "memory" {
		t.Errorf("decision row = %v", dec)
	}
}

func TestCSVExporterShape(t *testing.T) {
	var buf bytes.Buffer
	e := NewCSV(&buf)
	s := &Sample{Cycle: 10, Retired: 5, IntervalRetired: 5, IntervalIPC: 0.5,
		Occupancy: 3, CEMValid: true, CEMErrors: [arch.NumConfigs]int{4, 3, 2, 1}}
	if err := e.Sample(s); err != nil {
		t.Fatal(err)
	}
	if err := e.Sample(s); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", len(lines))
	}
	nCols := len(strings.Split(lines[0], ","))
	for i, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != nCols {
			t.Errorf("row %d has %d columns, header has %d", i, got, nCols)
		}
	}
	if !strings.HasPrefix(lines[0], "cycle,core,retired,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestPromExporterSnapshot(t *testing.T) {
	p := NewProbe(10)
	var buf bytes.Buffer
	e := NewProm(&buf, p.Registry())
	p.SetExporter(e)
	p.BeginCycle(1)
	p.Retire()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rsssim_retired_total 1") {
		t.Errorf("prom snapshot missing retired counter:\n%s", out)
	}
	if !strings.Contains(out, "rsssim_cycles_total 1") {
		t.Errorf("prom snapshot missing cycles counter:\n%s", out)
	}
}

func TestProbeInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewProbe(0) did not panic")
		}
	}()
	NewProbe(0)
}
