// Package telemetry is the simulator's observability layer: a
// zero-allocation-on-hot-path metrics registry (counters, gauges,
// fixed-bucket histograms), a per-cycle sampler that turns the machine's
// state into a time series, a steering-decision log capturing every
// configuration switch, and exporters for JSON-lines, CSV and
// Prometheus text format.
//
// The design splits cost between two paths:
//
//   - the hot path — one method call per pipeline event, each a plain
//     field increment on a pre-registered metric, no allocation, no
//     locking (a Probe belongs to exactly one machine);
//   - the sampling path — every Interval cycles the processor hands the
//     Probe a CoreState snapshot, which is merged with the event
//     accumulators into a Sample and handed to the Exporter.
//
// Every Probe hook is safe on a nil receiver, so uninstrumented
// machines pay one nil-check branch per event and nothing else (see
// BenchmarkTelemetryOverhead).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counter is a monotonically increasing metric. Not goroutine-safe: a
// counter belongs to the single goroutine driving its machine (the sweep
// harness builds one registry per worker machine).
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a metric that can go up and down (occupancy, in-flight
// reconfiguration slots, the latest CEM score).
type Gauge struct {
	v int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// Histogram counts integer observations into fixed buckets chosen at
// registration time. Buckets are cumulative in the export (Prometheus
// `le` semantics); observation is two array writes, no allocation.
type Histogram struct {
	bounds []int64  // upper bounds, ascending; implicit +Inf bucket last
	counts []uint64 // len(bounds)+1
	sum    int64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Label is one fixed name="value" pair attached to a metric at
// registration; the simulator uses it for per-unit-type series.
type Label struct {
	Key, Value string
}

// kind tags a registered metric for rendering.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// metric is one registry entry.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// key returns the uniqueness key (name plus rendered labels).
func (m *metric) key() string { return m.name + renderLabels(m.labels) }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds the registered metrics of one machine. Registration
// happens at setup time and may allocate; after that the registry is
// only read (by exporters) or written through the metric handles.
type Registry struct {
	metrics []*metric
	byKey   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]bool{}}
}

// register adds a metric, panicking on a duplicate (name, labels) pair —
// a duplicate is always a wiring bug.
func (r *Registry) register(m *metric) {
	k := m.key()
	if r.byKey[k] {
		panic(fmt.Sprintf("telemetry: duplicate metric %s", k))
	}
	r.byKey[k] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, c: c})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, g: g})
	return g
}

// NewHistogram registers and returns a histogram with the given
// ascending upper bucket bounds (an implicit +Inf bucket is added).
func (r *Registry) NewHistogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, h: h})
	return h
}

// CounterValue returns the value of the counter with the given name and
// labels, for tests and report code; ok is false when no such counter
// exists.
func (r *Registry) CounterValue(name string, labels ...Label) (uint64, bool) {
	k := name + renderLabels(labels)
	for _, m := range r.metrics {
		if m.kind == kindCounter && m.key() == k {
			return m.c.Value(), true
		}
	}
	return 0, false
}

// Render writes the registry in Prometheus text exposition format:
// "# HELP"/"# TYPE" headers per metric family (grouped by name, in
// registration order), then one line per series. Histograms render
// cumulative le-buckets plus _sum and _count.
func (r *Registry) Render(w io.Writer) error {
	seenHeader := map[string]bool{}
	// Stable family grouping: emit in registration order but print the
	// header only the first time each family name appears.
	for _, m := range r.metrics {
		if !seenHeader[m.name] {
			seenHeader[m.name] = true
			typ := "counter"
			switch m.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, typ); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, renderLabels(m.labels), m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, renderLabels(m.labels), m.g.Value())
		case kindHistogram:
			err = renderHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// renderHistogram writes one histogram's bucket, sum and count series.
func renderHistogram(w io.Writer, m *metric) error {
	cum := uint64(0)
	for i, bound := range m.h.bounds {
		cum += m.h.counts[i]
		labels := append(append([]Label(nil), m.labels...), Label{"le", fmt.Sprint(bound)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(labels), cum); err != nil {
			return err
		}
	}
	cum += m.h.counts[len(m.h.bounds)]
	labels := append(append([]Label(nil), m.labels...), Label{"le", "+Inf"})
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, renderLabels(labels), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, renderLabels(m.labels), m.h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, renderLabels(m.labels), m.h.Count())
	return err
}

// Names returns the distinct metric family names, sorted — a test and
// documentation helper.
func (r *Registry) Names() []string {
	seen := map[string]bool{}
	var names []string
	for _, m := range r.metrics {
		if !seen[m.name] {
			seen[m.name] = true
			names = append(names, m.name)
		}
	}
	sort.Strings(names)
	return names
}
