// Package avail implements the resource-availability computation of §4.2:
// Equation 1 and the circuit of Figure 7. A functional unit of type t is
// available when some entry of the resource allocation vector carries t's
// encoding and that entry's availability signal is asserted. Continuation
// slots of multi-slot units carry arch.EncCont and therefore never match,
// so a multi-slot unit is counted exactly once — through its head slot.
//
// Both a behavioural form (Available) and a gate-level reconstruction of
// Fig. 7 (CircuitAvailable) are provided; tests prove them equivalent
// exhaustively.
package avail

import (
	"repro/internal/arch"
	"repro/internal/logic"
)

// Available evaluates Equation 1: it reports whether a unit of type t is
// available given the allocation vector entries and the per-entry
// availability signals. The two slices must have equal length (one entry
// per reconfigurable slot followed by one per fixed unit); mismatched
// lengths panic, as that is a wiring error.
func Available(t arch.UnitType, alloc []arch.Encoding, availability []bool) bool {
	if len(alloc) != len(availability) {
		panic("avail: allocation vector and availability signals differ in length")
	}
	want := arch.Encode(t)
	for i, e := range alloc {
		if e == want && availability[i] {
			return true
		}
	}
	return false
}

// Count returns how many units of type t are currently available — the
// multi-unit generalisation the scheduler's grant logic needs when
// several instructions request the same type in one cycle.
func Count(t arch.UnitType, alloc []arch.Encoding, availability []bool) int {
	if len(alloc) != len(availability) {
		panic("avail: allocation vector and availability signals differ in length")
	}
	want := arch.Encode(t)
	n := 0
	for i, e := range alloc {
		if e == want && availability[i] {
			n++
		}
	}
	return n
}

// AllAvailable evaluates Available for every unit type at once, the form
// the wake-up array consumes each cycle.
func AllAvailable(alloc []arch.Encoding, availability []bool) [arch.NumUnitTypes]bool {
	var out [arch.NumUnitTypes]bool
	for _, t := range arch.UnitTypes() {
		out[t] = Available(t, alloc, availability)
	}
	return out
}

// CircuitAvailable is the gate-level reconstruction of Fig. 7: for each
// vector entry, a 3-bit equality comparator between the entry's encoding
// and type(t) feeds an AND with the entry's availability signal; an OR
// tree over all product terms produces available(t).
func CircuitAvailable(t arch.UnitType, alloc []arch.Encoding, availability []bool) bool {
	if len(alloc) != len(availability) {
		panic("avail: allocation vector and availability signals differ in length")
	}
	want := logic.BusFromUint(uint64(arch.Encode(t)), arch.EncodingBits)
	products := make([]logic.Bit, len(alloc))
	for i, e := range alloc {
		entry := logic.BusFromUint(uint64(e), arch.EncodingBits)
		products[i] = logic.And(logic.Equal(entry, want), logic.Bit(availability[i]))
	}
	return bool(logic.Or(products...))
}
