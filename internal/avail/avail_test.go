package avail

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
)

// fullVector builds the 13-entry allocation vector (8 slots + 5 FFUs)
// from a slot layout.
func fullVector(slots [arch.NumRFUSlots]arch.Encoding) []arch.Encoding {
	v := config.NewAllocationVector()
	v.Slots = slots
	return v.Entries()
}

func TestAvailableFindsConfiguredIdleUnit(t *testing.T) {
	var slots [arch.NumRFUSlots]arch.Encoding
	slots[2] = arch.EncFPALU
	slots[3] = arch.EncCont
	slots[4] = arch.EncCont
	alloc := fullVector(slots)
	sig := make([]bool, len(alloc))
	sig[2] = true // FPALU head slot idle

	if !Available(arch.FPALU, alloc, sig) {
		t.Error("idle configured FPALU reported unavailable")
	}
	if Available(arch.IntMDU, alloc, sig) {
		t.Error("IntMDU reported available with no idle unit")
	}
}

// TestContinuationSlotsNeverMatch pins the §4.2 rule that a multi-slot
// unit is considered exactly once: asserting availability on a
// continuation slot must not make any type available.
func TestContinuationSlotsNeverMatch(t *testing.T) {
	var slots [arch.NumRFUSlots]arch.Encoding
	slots[0] = arch.EncFPMDU
	slots[1] = arch.EncCont
	slots[2] = arch.EncCont
	alloc := fullVector(slots)
	sig := make([]bool, len(alloc))
	sig[1] = true // continuation asserted, head not
	sig[2] = true
	for _, ty := range arch.UnitTypes() {
		if Available(ty, alloc, sig) {
			t.Errorf("%v available via a continuation slot", ty)
		}
	}
}

func TestFFUPortionSupportsAllTypes(t *testing.T) {
	alloc := fullVector([arch.NumRFUSlots]arch.Encoding{})
	sig := make([]bool, len(alloc))
	// Only the fixed units are idle.
	for i := arch.NumRFUSlots; i < len(sig); i++ {
		sig[i] = true
	}
	got := AllAvailable(alloc, sig)
	for _, ty := range arch.UnitTypes() {
		if !got[ty] {
			t.Errorf("FFU for %v not found available", ty)
		}
	}
}

func TestBusyUnitIsUnavailable(t *testing.T) {
	alloc := fullVector([arch.NumRFUSlots]arch.Encoding{})
	sig := make([]bool, len(alloc)) // everything busy
	for _, ty := range arch.UnitTypes() {
		if Available(ty, alloc, sig) {
			t.Errorf("%v available while all signals deasserted", ty)
		}
	}
}

func TestCount(t *testing.T) {
	var slots [arch.NumRFUSlots]arch.Encoding
	slots[0] = arch.EncIntALU
	slots[1] = arch.EncIntALU
	slots[2] = arch.EncIntALU
	alloc := fullVector(slots)
	sig := make([]bool, len(alloc))
	sig[0], sig[2] = true, true  // two of three RFU IntALUs idle
	sig[arch.NumRFUSlots] = true // the IntALU FFU idle
	if got := Count(arch.IntALU, alloc, sig); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := Count(arch.LSU, alloc, sig); got != 0 {
		t.Errorf("Count(LSU) = %d, want 0", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Available(arch.IntALU, make([]arch.Encoding, 3), make([]bool, 4))
}

// TestCircuitEquivalenceExhaustive proves the Fig. 7 gate network equals
// Equation 1 over every encoding value and both signal levels for a
// 1-entry vector, then over randomized full 13-entry vectors. Together
// with OR-tree linearity this covers the construction.
func TestAvailabilityCircuitEquivalence(t *testing.T) {
	// Single entry: exhaustive over 8 encodings x 2 signals x 5 types.
	for enc := 0; enc < 8; enc++ {
		for _, sig := range []bool{false, true} {
			alloc := []arch.Encoding{arch.Encoding(enc)}
			sigs := []bool{sig}
			for _, ty := range arch.UnitTypes() {
				want := Available(ty, alloc, sigs)
				got := CircuitAvailable(ty, alloc, sigs)
				if got != want {
					t.Fatalf("enc=%d sig=%v type=%v: circuit=%v behaviour=%v", enc, sig, ty, got, want)
				}
			}
		}
	}
	// Randomised full vectors.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		var slots [arch.NumRFUSlots]arch.Encoding
		for i := range slots {
			slots[i] = arch.Encoding(rng.Intn(8))
		}
		alloc := fullVector(slots)
		sigs := make([]bool, len(alloc))
		for i := range sigs {
			sigs[i] = rng.Intn(2) == 1
		}
		for _, ty := range arch.UnitTypes() {
			if CircuitAvailable(ty, alloc, sigs) != Available(ty, alloc, sigs) {
				t.Fatalf("trial %d type %v: circuit and behaviour disagree\nalloc=%v sigs=%v", trial, ty, alloc, sigs)
			}
		}
	}
}

// TestAvailableMonotone property: asserting one more availability signal
// can never make a previously available type unavailable.
func TestAvailableMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		var slots [arch.NumRFUSlots]arch.Encoding
		for i := range slots {
			slots[i] = arch.Encoding(rng.Intn(8))
		}
		alloc := fullVector(slots)
		sigs := make([]bool, len(alloc))
		for i := range sigs {
			sigs[i] = rng.Intn(2) == 1
		}
		before := AllAvailable(alloc, sigs)
		// Assert one more signal.
		idx := rng.Intn(len(sigs))
		sigs[idx] = true
		after := AllAvailable(alloc, sigs)
		for _, ty := range arch.UnitTypes() {
			if before[ty] && !after[ty] {
				t.Fatalf("availability lost by asserting a signal (type %v)", ty)
			}
		}
	}
}
