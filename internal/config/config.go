// Package config models processor configurations: the contents of the
// eight reconfigurable slots as a typed slot layout, the predefined
// steering basis of Table 1, and the resource allocation vector the
// configuration loader maintains (§3.2 of the paper).
package config

import (
	"fmt"
	"strings"

	"repro/internal/arch"
)

// Configuration is a named assignment of functional units to the
// reconfigurable slots. Multi-slot units occupy a contiguous span: the
// first slot holds the unit's encoding and the rest hold arch.EncCont.
type Configuration struct {
	Name   string
	Layout [arch.NumRFUSlots]arch.Encoding
}

// New builds a configuration by packing the given units into slots in
// order. It returns an error when the units do not fit the fabric.
func New(name string, units ...arch.UnitType) (Configuration, error) {
	c := Configuration{Name: name}
	slot := 0
	for _, u := range units {
		cost := arch.SlotCost(u)
		if slot+cost > arch.NumRFUSlots {
			return Configuration{}, fmt.Errorf("config %q: units need more than %d slots", name, arch.NumRFUSlots)
		}
		c.Layout[slot] = arch.Encode(u)
		for k := 1; k < cost; k++ {
			c.Layout[slot+k] = arch.EncCont
		}
		slot += cost
	}
	return c, nil
}

// MustNew is New for static configuration tables; it panics on error.
func MustNew(name string, units ...arch.UnitType) Configuration {
	c, err := New(name, units...)
	if err != nil {
		panic(err)
	}
	return c
}

// Counts returns how many units of each type the configuration provides
// in the reconfigurable fabric (continuation slots are not counted).
func (c Configuration) Counts() arch.Counts {
	var n arch.Counts
	for _, e := range c.Layout {
		if t, ok := arch.DecodeUnit(e); ok {
			n[t]++
		}
	}
	return n
}

// Units returns the units of the configuration in slot order, with the
// starting slot of each.
func (c Configuration) Units() []PlacedUnit {
	return c.AppendUnits(nil)
}

// AppendUnits appends the units of the configuration in slot order to
// dst and returns the extended slice. Callers on the per-cycle path pass
// a reusable scratch slice (dst[:0]) to avoid allocating; a nil dst
// behaves like Units.
func (c Configuration) AppendUnits(dst []PlacedUnit) []PlacedUnit {
	for slot := 0; slot < arch.NumRFUSlots; {
		t, ok := arch.DecodeUnit(c.Layout[slot])
		if !ok {
			slot++
			continue
		}
		dst = append(dst, PlacedUnit{Type: t, Slot: slot, Span: arch.SlotCost(t)})
		slot += arch.SlotCost(t)
	}
	return dst
}

// Validate checks the structural invariants of the layout: every unit
// head is followed by exactly SlotCost-1 continuation slots, and no
// continuation slot appears without a head.
func (c Configuration) Validate() error {
	slot := 0
	for slot < arch.NumRFUSlots {
		e := c.Layout[slot]
		switch {
		case e == arch.EncEmpty:
			slot++
		case e == arch.EncCont:
			return fmt.Errorf("config %q: orphan continuation at slot %d", c.Name, slot)
		default:
			t, ok := arch.DecodeUnit(e)
			if !ok {
				return fmt.Errorf("config %q: invalid encoding %d at slot %d", c.Name, e, slot)
			}
			span := arch.SlotCost(t)
			if slot+span > arch.NumRFUSlots {
				return fmt.Errorf("config %q: %v at slot %d overruns the fabric", c.Name, t, slot)
			}
			for k := 1; k < span; k++ {
				if c.Layout[slot+k] != arch.EncCont {
					return fmt.Errorf("config %q: %v at slot %d missing continuation at slot %d", c.Name, t, slot, slot+k)
				}
			}
			slot += span
		}
	}
	return nil
}

// String renders the layout, e.g. "int: [IntALU IntALU IntALU IntALU IntMDU cont LSU LSU]".
func (c Configuration) String() string {
	parts := make([]string, len(c.Layout))
	for i, e := range c.Layout {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s: [%s]", c.Name, strings.Join(parts, " "))
}

// PlacedUnit is one unit of a configuration with its slot placement.
type PlacedUnit struct {
	Type arch.UnitType
	Slot int // first slot of the unit's span
	Span int // number of slots occupied
}

// DefaultBasis returns the three predefined steering configurations used
// throughout the experiments (DESIGN.md §4, calibrated from the paper's
// Table 1):
//
//	1 "integer":  4×IntALU + 1×IntMDU + 2×LSU  (8 slots)
//	2 "memory":   2×IntALU + 1×IntMDU + 4×LSU  (8 slots)
//	3 "floating": 1×IntALU + 1×LSU + 1×FPALU + 1×FPMDU (8 slots)
//
// The configuration manager additionally scores the *current*
// configuration (config 0), which is whatever hybrid the loader has
// produced and is not part of the basis.
func DefaultBasis() [3]Configuration {
	return [3]Configuration{
		MustNew("integer",
			arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU,
			arch.IntMDU, arch.LSU, arch.LSU),
		MustNew("memory",
			arch.IntALU, arch.IntALU, arch.IntMDU,
			arch.LSU, arch.LSU, arch.LSU, arch.LSU),
		MustNew("floating",
			arch.IntALU, arch.LSU, arch.FPALU, arch.FPMDU),
	}
}

// FFUCounts returns the unit mix of the fixed functional units: one of
// each type (Fig. 1).
func FFUCounts() arch.Counts {
	var n arch.Counts
	for t := range n {
		n[t] = 1
	}
	return n
}

// AllocationVector is the configuration loader's record of what is
// configured where (§3.2): one 3-bit encoding per reconfigurable slot
// followed by one per fixed functional unit. The fixed portion never
// changes; it exists because the availability circuit of Fig. 7 consults
// both portions.
type AllocationVector struct {
	Slots [arch.NumRFUSlots]arch.Encoding
	FFUs  [arch.NumFFUs]arch.Encoding
}

// NewAllocationVector returns the reset-state vector: all reconfigurable
// slots empty, fixed units one per type.
func NewAllocationVector() AllocationVector {
	var v AllocationVector
	for i, t := range arch.UnitTypes() {
		v.FFUs[i] = arch.Encode(t)
	}
	return v
}

// Entries returns the full vector — reconfigurable slots first, then
// fixed units — as the flat sequence Eq. 1 ranges over.
func (v AllocationVector) Entries() []arch.Encoding {
	out := make([]arch.Encoding, 0, arch.NumRFUSlots+arch.NumFFUs)
	out = append(out, v.Slots[:]...)
	out = append(out, v.FFUs[:]...)
	return out
}

// RFUCounts returns the unit mix currently configured in the
// reconfigurable fabric.
func (v AllocationVector) RFUCounts() arch.Counts {
	return Configuration{Layout: v.Slots}.Counts()
}

// TotalCounts returns the unit mix of the whole processor: RFU contents
// plus the fixed units.
func (v AllocationVector) TotalCounts() arch.Counts {
	return v.RFUCounts().Add(FFUCounts())
}

// Diff returns the indices of reconfigurable slots whose encoding differs
// from the target configuration — the XOR step the loader performs when a
// new configuration is chosen (§3.2).
func (v AllocationVector) Diff(target Configuration) []int {
	var out []int
	for i := range v.Slots {
		if v.Slots[i] != target.Layout[i] {
			out = append(out, i)
		}
	}
	return out
}

// Distance is the number of differing reconfigurable slots; the minimal
// error selector uses it to break ties toward the configuration needing
// the least reconfiguration. It is allocation-free, unlike Diff.
func (v AllocationVector) Distance(target Configuration) int {
	n := 0
	for i := range v.Slots {
		if v.Slots[i] != target.Layout[i] {
			n++
		}
	}
	return n
}

// String renders both portions of the vector.
func (v AllocationVector) String() string {
	parts := make([]string, 0, arch.NumRFUSlots+arch.NumFFUs)
	for _, e := range v.Slots {
		parts = append(parts, e.String())
	}
	ffu := make([]string, 0, arch.NumFFUs)
	for _, e := range v.FFUs {
		ffu = append(ffu, e.String())
	}
	return fmt.Sprintf("RFU[%s] FFU[%s]", strings.Join(parts, " "), strings.Join(ffu, " "))
}
