package config

import (
	"encoding/json"
	"fmt"

	"repro/internal/arch"
)

// configJSON is the on-disk form of a configuration: a name and the unit
// list in placement order. The slot layout is derived by packing the
// units left to right, exactly as New does.
type configJSON struct {
	Name  string   `json:"name"`
	Units []string `json:"units"`
}

// MarshalJSON serialises the configuration as its name and unit list.
func (c Configuration) MarshalJSON() ([]byte, error) {
	units := c.Units()
	names := make([]string, len(units))
	for i, u := range units {
		names[i] = u.Type.String()
	}
	return json.Marshal(configJSON{Name: c.Name, Units: names})
}

// UnmarshalJSON parses the name/unit-list form and packs the units into
// slots, validating slot capacity and unit names.
func (c *Configuration) UnmarshalJSON(data []byte) error {
	var j configJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	units := make([]arch.UnitType, len(j.Units))
	for i, name := range j.Units {
		t, ok := arch.ParseUnit(name)
		if !ok {
			return fmt.Errorf("config %q: unknown unit type %q", j.Name, name)
		}
		units[i] = t
	}
	parsed, err := New(j.Name, units...)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// ParseBasis parses a steering basis — a JSON array of exactly three
// configurations — and validates each one. Example:
//
//	[
//	  {"name": "integer",  "units": ["IntALU","IntALU","IntALU","IntALU","IntMDU","LSU","LSU"]},
//	  {"name": "memory",   "units": ["IntALU","IntALU","IntMDU","LSU","LSU","LSU","LSU"]},
//	  {"name": "floating", "units": ["IntALU","LSU","FPALU","FPMDU"]}
//	]
func ParseBasis(data []byte) ([3]Configuration, error) {
	var list []Configuration
	if err := json.Unmarshal(data, &list); err != nil {
		return [3]Configuration{}, err
	}
	if len(list) != 3 {
		return [3]Configuration{}, fmt.Errorf("a steering basis needs exactly 3 configurations, got %d", len(list))
	}
	var basis [3]Configuration
	copy(basis[:], list)
	for i, c := range basis {
		if err := c.Validate(); err != nil {
			return [3]Configuration{}, fmt.Errorf("configuration %d: %w", i, err)
		}
	}
	return basis, nil
}

// MarshalBasis serialises a steering basis to indented JSON.
func MarshalBasis(basis [3]Configuration) ([]byte, error) {
	return json.MarshalIndent(basis[:], "", "  ")
}
