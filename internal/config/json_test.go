package config

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestConfigurationJSONRoundTrip(t *testing.T) {
	for _, cfg := range DefaultBasis() {
		data, err := cfg.MarshalJSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", cfg.Name, err)
		}
		var back Configuration
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("%s: unmarshal: %v", cfg.Name, err)
		}
		if back.Name != cfg.Name || back.Layout != cfg.Layout {
			t.Errorf("%s: round trip changed configuration:\n%v\n%v", cfg.Name, cfg, back)
		}
	}
}

func TestBasisRoundTrip(t *testing.T) {
	basis := DefaultBasis()
	data, err := MarshalBasis(basis)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBasis(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != basis {
		t.Errorf("basis round trip changed:\n%v\n%v", basis, back)
	}
}

func TestParseBasisFromHandWrittenJSON(t *testing.T) {
	src := `[
	  {"name": "a", "units": ["IntALU","IntALU","LSU"]},
	  {"name": "b", "units": ["FPALU","IntALU"]},
	  {"name": "c", "units": ["IntMDU","IntMDU","LSU"]}
	]`
	basis, err := ParseBasis([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if basis[0].Counts() != (arch.Counts{2, 0, 1, 0, 0}) {
		t.Errorf("basis[0] counts = %v", basis[0].Counts())
	}
	if basis[1].Layout[0] != arch.EncFPALU {
		t.Errorf("basis[1] layout = %v", basis[1].Layout)
	}
	if basis[2].Counts() != (arch.Counts{0, 2, 1, 0, 0}) {
		t.Errorf("basis[2] counts = %v", basis[2].Counts())
	}
}

func TestParseBasisErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"not json", `nope`, ""},
		{"wrong count", `[{"name":"a","units":["IntALU"]}]`, "exactly 3"},
		{"unknown unit", `[
			{"name":"a","units":["Bogus"]},
			{"name":"b","units":["IntALU"]},
			{"name":"c","units":["IntALU"]}]`, "unknown unit"},
		{"overflow", `[
			{"name":"a","units":["FPALU","FPALU","FPALU"]},
			{"name":"b","units":["IntALU"]},
			{"name":"c","units":["IntALU"]}]`, "slots"},
	}
	for _, c := range cases {
		_, err := ParseBasis([]byte(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
