package config

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

func TestNewPacksUnitsContiguously(t *testing.T) {
	c, err := New("t", arch.IntALU, arch.IntMDU, arch.FPALU)
	if err != nil {
		t.Fatal(err)
	}
	want := [arch.NumRFUSlots]arch.Encoding{
		arch.EncIntALU,
		arch.EncIntMDU, arch.EncCont,
		arch.EncFPALU, arch.EncCont, arch.EncCont,
		arch.EncEmpty, arch.EncEmpty,
	}
	if c.Layout != want {
		t.Errorf("layout = %v, want %v", c.Layout, want)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewRejectsOverflow(t *testing.T) {
	if _, err := New("t", arch.FPALU, arch.FPALU, arch.FPALU); err == nil {
		t.Error("9 slots of FP units accepted into an 8-slot fabric")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on overflow")
		}
	}()
	MustNew("t", arch.FPMDU, arch.FPMDU, arch.FPMDU)
}

func TestCounts(t *testing.T) {
	c := MustNew("t", arch.IntALU, arch.IntALU, arch.IntMDU, arch.LSU, arch.FPALU)
	want := arch.Counts{2, 1, 1, 1, 0}
	if got := c.Counts(); got != want {
		t.Errorf("Counts = %v, want %v", got, want)
	}
}

func TestUnitsPlacement(t *testing.T) {
	c := MustNew("t", arch.LSU, arch.FPMDU, arch.IntMDU)
	units := c.Units()
	want := []PlacedUnit{
		{arch.LSU, 0, 1},
		{arch.FPMDU, 1, 3},
		{arch.IntMDU, 4, 2},
	}
	if len(units) != len(want) {
		t.Fatalf("Units = %v, want %v", units, want)
	}
	for i := range want {
		if units[i] != want[i] {
			t.Errorf("unit %d = %v, want %v", i, units[i], want[i])
		}
	}
}

func TestValidateRejectsMalformedLayouts(t *testing.T) {
	cases := []struct {
		name   string
		layout [arch.NumRFUSlots]arch.Encoding
	}{
		{"orphan continuation", [arch.NumRFUSlots]arch.Encoding{arch.EncCont}},
		{"missing continuation", [arch.NumRFUSlots]arch.Encoding{arch.EncIntMDU, arch.EncIntALU}},
		{"span overrun", [arch.NumRFUSlots]arch.Encoding{0, 0, 0, 0, 0, 0, arch.EncFPALU, arch.EncCont}},
		{"invalid code", [arch.NumRFUSlots]arch.Encoding{6}},
	}
	for _, c := range cases {
		cfg := Configuration{Name: c.name, Layout: c.layout}
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed layout %v", c.name, c.layout)
		}
	}
}

// TestDefaultBasisInvariants pins DESIGN.md §4: each steering
// configuration is structurally valid and fills exactly the 8-slot
// fabric.
func TestDefaultBasisInvariants(t *testing.T) {
	basis := DefaultBasis()
	wantCounts := []arch.Counts{
		{4, 1, 2, 0, 0},
		{2, 1, 4, 0, 0},
		{1, 0, 1, 1, 1},
	}
	for i, cfg := range basis {
		if err := cfg.Validate(); err != nil {
			t.Errorf("basis[%d]: %v", i, err)
		}
		if got := cfg.Counts(); got != wantCounts[i] {
			t.Errorf("basis[%d] counts = %v, want %v", i, got, wantCounts[i])
		}
		if got := cfg.Counts().Slots(); got != arch.NumRFUSlots {
			t.Errorf("basis[%d] uses %d slots, want %d", i, got, arch.NumRFUSlots)
		}
		for _, e := range cfg.Layout {
			if e == arch.EncEmpty {
				t.Errorf("basis[%d] leaves a slot empty", i)
				break
			}
		}
	}
}

// TestBasisCoversAllUnitTypes checks the basis plus FFUs offers every
// unit type somewhere — the forward-progress property of §3.2 relies on
// the FFUs alone, but a useful basis should cover FP and integer mixes.
func TestBasisCoversAllUnitTypes(t *testing.T) {
	var total arch.Counts
	for _, cfg := range DefaultBasis() {
		total = total.Add(cfg.Counts())
	}
	for _, ty := range arch.UnitTypes() {
		if total[ty] == 0 {
			t.Errorf("no steering configuration provides %v", ty)
		}
	}
}

func TestFFUCounts(t *testing.T) {
	want := arch.Counts{1, 1, 1, 1, 1}
	if got := FFUCounts(); got != want {
		t.Errorf("FFUCounts = %v, want %v", got, want)
	}
}

func TestNewAllocationVector(t *testing.T) {
	v := NewAllocationVector()
	for i, e := range v.Slots {
		if e != arch.EncEmpty {
			t.Errorf("slot %d = %v, want empty", i, e)
		}
	}
	for i, ty := range arch.UnitTypes() {
		if v.FFUs[i] != arch.Encode(ty) {
			t.Errorf("FFU %d = %v, want %v", i, v.FFUs[i], arch.Encode(ty))
		}
	}
	if got := v.TotalCounts(); got != FFUCounts() {
		t.Errorf("reset TotalCounts = %v, want FFUs only", got)
	}
}

func TestEntriesOrderAndLength(t *testing.T) {
	v := NewAllocationVector()
	v.Slots[0] = arch.EncLSU
	e := v.Entries()
	if len(e) != arch.NumRFUSlots+arch.NumFFUs {
		t.Fatalf("Entries length %d", len(e))
	}
	if e[0] != arch.EncLSU {
		t.Error("Entries does not start with the reconfigurable portion")
	}
	if e[arch.NumRFUSlots] != arch.EncIntALU {
		t.Error("fixed portion not appended after slots")
	}
}

func TestDiffAndDistance(t *testing.T) {
	v := NewAllocationVector()
	target := DefaultBasis()[0]
	// Empty fabric differs from a full configuration in every slot.
	if got := v.Distance(target); got != arch.NumRFUSlots {
		t.Errorf("Distance from empty = %d, want %d", got, arch.NumRFUSlots)
	}
	// Loading the configuration exactly zeroes the distance.
	v.Slots = target.Layout
	if got := v.Distance(target); got != 0 {
		t.Errorf("Distance after load = %d, want 0", got)
	}
	if d := v.Diff(target); d != nil {
		t.Errorf("Diff after load = %v, want nil", d)
	}
	// A single changed slot is reported precisely.
	v.Slots[3] = arch.EncEmpty
	if d := v.Diff(target); len(d) != 1 || d[0] != 3 {
		t.Errorf("Diff = %v, want [3]", d)
	}
}

func TestRFUAndTotalCounts(t *testing.T) {
	v := NewAllocationVector()
	v.Slots = DefaultBasis()[2].Layout // floating config
	rfu := v.RFUCounts()
	if rfu != (arch.Counts{1, 0, 1, 1, 1}) {
		t.Errorf("RFUCounts = %v", rfu)
	}
	total := v.TotalCounts()
	if total != (arch.Counts{2, 1, 2, 2, 2}) {
		t.Errorf("TotalCounts = %v", total)
	}
}

// TestDistanceIsMetricLike property-checks symmetry-like behaviour of the
// slot diff: distance to self is zero and distance is bounded by the slot
// count.
func TestDistanceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	basis := DefaultBasis()
	for trial := 0; trial < 500; trial++ {
		v := NewAllocationVector()
		for i := range v.Slots {
			v.Slots[i] = arch.Encoding(rng.Intn(8))
		}
		for _, cfg := range basis {
			d := v.Distance(cfg)
			if d < 0 || d > arch.NumRFUSlots {
				t.Fatalf("Distance out of bounds: %d", d)
			}
		}
		self := Configuration{Layout: v.Slots}
		if v.Distance(self) != 0 {
			t.Fatal("Distance to own layout nonzero")
		}
	}
}

func TestStringRendering(t *testing.T) {
	c := MustNew("demo", arch.IntALU, arch.IntMDU)
	if got := c.String(); got != "demo: [IntALU IntMDU cont empty empty empty empty empty]" {
		t.Errorf("Configuration.String = %q", got)
	}
	v := NewAllocationVector()
	got := v.String()
	want := "RFU[empty empty empty empty empty empty empty empty] FFU[IntALU IntMDU LSU FPALU FPMDU]"
	if got != want {
		t.Errorf("AllocationVector.String = %q", got)
	}
}
