package cpu

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
)

// kernels used across the differential tests: each exercises a different
// mix of units, dependencies and control flow.
var kernels = map[string]string{
	"straightline": `
		li r1, 3
		li r2, 4
		add r3, r1, r2
		mul r4, r3, r3
		sub r5, r4, r1
		xor r6, r5, r2
		halt
	`,
	"sumloop": `
		li r1, 200
		li r2, 0
		li r3, 0
	loop:
		addi r2, r2, 1
		add r3, r3, r2
		bne r2, r1, loop
		halt
	`,
	"memory": `
		li r1, 0
		li r2, 32
		li r4, 2048
	store:
		mul r3, r1, r1
		slli r5, r1, 2
		add r5, r5, r4
		sw r3, 0(r5)
		addi r1, r1, 1
		bne r1, r2, store
		li r1, 0
		li r6, 0
	load:
		slli r5, r1, 2
		add r5, r5, r4
		lw r3, 0(r5)
		add r6, r6, r3
		addi r1, r1, 1
		bne r1, r2, load
		halt
	`,
	"forwarding": `
		li r1, 1024
		li r2, 77
		sw r2, 0(r1)
		lw r3, 0(r1)        ; must forward from the in-flight store
		addi r2, r2, 1
		sw r2, 0(r1)
		lw r4, 0(r1)        ; forward the newer value
		sb r2, 1(r1)        ; partial overlap
		lw r5, 0(r1)
		halt
	`,
	"float": `
		li r1, 25
		fcvt.s.w f1, r1
		fsqrt f2, f1
		li r2, 3
		fcvt.s.w f3, r2
		fmul f4, f2, f3
		fadd f5, f4, f2
		fdiv f6, f5, f3
		fcvt.w.s r5, f6
		fle r6, f3, f4
		halt
	`,
	"gcd": `
		li r1, 1071
		li r2, 462
	loop:
		beq r2, r0, done
		rem r3, r1, r2
		mv r1, r2
		mv r2, r3
		j loop
	done:
		halt
	`,
	"branchy": `
		li r1, 0       ; i
		li r2, 100
		li r3, 0       ; even sum
		li r4, 0       ; odd sum
	loop:
		andi r5, r1, 1
		beq r5, r0, even
		add r4, r4, r1
		j next
	even:
		add r3, r3, r1
	next:
		addi r1, r1, 1
		bne r1, r2, loop
		halt
	`,
	"phases": `
		; integer phase
		li r1, 60
		li r2, 0
		li r3, 1
	iphase:
		addi r2, r2, 3
		xor r3, r3, r2
		addi r1, r1, -1
		bne r1, r0, iphase
		; fp phase
		li r1, 40
		fcvt.s.w f1, r3
		fcvt.s.w f2, r1
	fphase:
		fmul f3, f1, f2
		fadd f1, f3, f2
		fsub f2, f1, f3
		addi r1, r1, -1
		bne r1, r0, fphase
		fcvt.w.s r7, f1
		; memory phase
		li r1, 20
		li r4, 4096
	mphase:
		sw r7, 0(r4)
		lw r8, 0(r4)
		addi r4, r4, 4
		addi r1, r1, -1
		bne r1, r0, mphase
		halt
	`,
}

// scenarioNames enumerates the machine scenarios the differential tests
// cover — policy names plus ablation variants like "no-ffu-steering".
var scenarioNames = []string{"none", "steering", "full-reconfig", "oracle", "random", "static-int", "no-ffu-steering"}

// buildProcessor constructs a processor with the named policy installed.
func buildProcessor(prog isa.Program, params Params, policy string) *Processor {
	if policy == "oracle" {
		params.ReconfigLatency = 1 // effectively instant (0 means default)
	}
	if policy == "no-ffu-steering" {
		params.DisableFFUs = true
	}
	p := New(prog, params, nil)
	switch policy {
	case "none":
	case "steering", "no-ffu-steering":
		p.SetManager(baseline.NewSteering(p.Fabric()))
	case "full-reconfig":
		p.SetManager(baseline.NewFullReconfig(p.Fabric()))
	case "oracle":
		p.SetManager(baseline.NewOracle(p.Fabric()))
	case "random":
		p.SetManager(baseline.NewRandom(p.Fabric(), 1))
	case "static-int":
		p.Fabric().Install(config.DefaultBasis()[0])
	default:
		panic("unknown policy " + policy)
	}
	return p
}

// reference runs the program on the functional interpreter and returns
// its final state and instruction count.
func reference(t *testing.T, prog isa.Program, memBytes int) (*isa.State, int) {
	t.Helper()
	s := &isa.State{Mem: mem.NewMemory(memBytes)}
	steps, err := isa.Run(prog, s, 10_000_000)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return s, steps
}

// TestDifferentialAgainstFunctionalReference is the master correctness
// test: every kernel under every policy must produce architectural state
// bit-identical to the functional interpreter — all 64 registers, the
// data memory, and the retired instruction count.
func TestDifferentialAgainstFunctionalReference(t *testing.T) {
	const memBytes = 1 << 16
	for name, src := range kernels {
		prog := isa.MustAssemble(src)
		ref, steps := reference(t, prog, memBytes)
		refMem := ref.Mem.(*mem.Memory)
		for _, policy := range scenarioNames {
			if policy == "no-ffu-steering" {
				// Without FFUs only the kernels the floating basis
				// config covers can run; skip kernels needing IntMDU.
				if strings.Contains(src, "mul r") || strings.Contains(src, "rem ") {
					continue
				}
			}
			t.Run(name+"/"+policy, func(t *testing.T) {
				params := DefaultParams()
				params.MemBytes = memBytes
				p := buildProcessor(prog, params, policy)
				stats, err := p.Run(5_000_000)
				if err != nil {
					t.Fatalf("pipelined run: %v", err)
				}
				for r := uint8(0); r < isa.NumRegs; r++ {
					if p.Reg(r) != ref.ReadReg(r) {
						t.Errorf("register %s = %#x, reference %#x",
							isa.RegName(r), p.Reg(r), ref.ReadReg(r))
					}
				}
				for addr := uint32(0); addr < memBytes; addr += 4 {
					if got, want := p.Memory().LoadWord(addr), refMem.LoadWord(addr); got != want {
						t.Fatalf("memory[%#x] = %#x, reference %#x", addr, got, want)
					}
				}
				if stats.Retired != steps {
					t.Errorf("retired %d instructions, reference executed %d", stats.Retired, steps)
				}
				if stats.IPC() <= 0 {
					t.Errorf("IPC = %v", stats.IPC())
				}
			})
		}
	}
}

// TestDifferentialAcrossMachineShapes re-runs one branchy kernel across
// window sizes, widths and latencies — timing parameters must never
// change architectural results.
func TestDifferentialAcrossMachineShapes(t *testing.T) {
	prog := isa.MustAssemble(kernels["phases"])
	const memBytes = 1 << 16
	ref, steps := reference(t, prog, memBytes)

	shapes := []Params{
		{WindowSize: 4, IssueWidth: 1, DispatchWidth: 1, RetireWidth: 1},
		{WindowSize: 7},
		{WindowSize: 16, IssueWidth: 8, DispatchWidth: 8, RetireWidth: 8},
		{WindowSize: 7, ReconfigLatency: 64},
		{WindowSize: 7, CacheSets: 1, CacheLineBytes: 4, CacheMissPenalty: 50},
		{WindowSize: 7, FetchWidthMem: 1, FetchWidthTC: 1},
	}
	for i, shape := range shapes {
		shape.MemBytes = memBytes
		p := buildProcessor(prog, shape, "steering")
		stats, err := p.Run(5_000_000)
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		if stats.Retired != steps {
			t.Errorf("shape %d: retired %d, want %d", i, stats.Retired, steps)
		}
		for r := uint8(0); r < isa.NumRegs; r++ {
			if p.Reg(r) != ref.ReadReg(r) {
				t.Errorf("shape %d: register %s = %#x, want %#x",
					i, isa.RegName(r), p.Reg(r), ref.ReadReg(r))
			}
		}
	}
}

// TestPCEscapeStallsAndTimesOut: a jump beyond the program parks fetch
// forever; the machine makes no progress and the budget reports it.
func TestPCEscapeStallsAndTimesOut(t *testing.T) {
	prog := isa.MustAssemble("jal r0, 100\nhalt")
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	if _, err := p.Run(500); err == nil {
		t.Error("PC escape did not exhaust the budget")
	}
	if p.FetchUnit().StallCycles() == 0 {
		t.Error("escaped PC produced no fetch stalls")
	}
}

func TestRunReportsCycleBudgetExhaustion(t *testing.T) {
	prog := isa.MustAssemble("loop:\n j loop\n")
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	if _, err := p.Run(1000); err == nil {
		t.Error("infinite loop did not exhaust the budget")
	}
}

func TestHaltStopsTheClock(t *testing.T) {
	p := New(isa.MustAssemble("halt"), Params{MemBytes: 1 << 12}, nil)
	stats, err := p.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Halted() || !stats.Halted {
		t.Error("machine not halted")
	}
	cycles := stats.Cycles
	p.Cycle() // must be a no-op
	if p.Stats().Cycles != cycles {
		t.Error("clock advanced after HALT retired")
	}
	if stats.Retired != 1 {
		t.Errorf("retired = %d, want 1", stats.Retired)
	}
}

// TestFFUOnlyMachineStarvesWithoutPolicy pins the forward-progress story:
// with FFUs disabled and no configuration policy, nothing can execute.
func TestFFUOnlyMachineStarvesWithoutPolicy(t *testing.T) {
	prog := isa.MustAssemble("li r1, 1\nhalt")
	params := Params{MemBytes: 1 << 12, DisableFFUs: true}
	p := New(prog, params, nil)
	if _, err := p.Run(2000); err == nil {
		t.Error("machine made progress with no units at all")
	}
	if p.Stats().Retired != 0 {
		t.Errorf("retired %d instructions with no units", p.Stats().Retired)
	}
}

// TestSteeringRescuesFFUlessMachine: with steering the manager configures
// RFUs to match demand, so the same machine completes.
func TestSteeringRescuesFFUlessMachine(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 5
		li r2, 7
		add r3, r1, r2
		halt
	`)
	params := Params{MemBytes: 1 << 12, DisableFFUs: true, ReconfigLatency: 2}
	p := New(prog, params, nil)
	p.SetManager(baseline.NewSteering(p.Fabric()))
	if _, err := p.Run(10000); err != nil {
		t.Fatalf("steering did not rescue the FFU-less machine: %v", err)
	}
	if p.Reg(3) != 12 {
		t.Errorf("r3 = %d, want 12", p.Reg(3))
	}
}

// TestMispredictionAccounting: an input-dependent alternating branch on a
// bimodal predictor must mispredict and still compute correctly.
func TestMispredictionAccounting(t *testing.T) {
	prog := isa.MustAssemble(kernels["branchy"])
	p := buildProcessor(prog, Params{MemBytes: 1 << 12}, "steering")
	stats, err := p.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mispredicts == 0 {
		t.Error("alternating branch never mispredicted on a bimodal predictor")
	}
	if stats.Flushed == 0 {
		t.Error("mispredictions flushed nothing")
	}
	if stats.BranchesResolved == 0 {
		t.Error("no branches resolved")
	}
	// 0+2+..+98 = 2450, 1+3+..+99 = 2500.
	if p.Reg(3) != 2450 || p.Reg(4) != 2500 {
		t.Errorf("sums = %d,%d want 2450,2500", p.Reg(3), p.Reg(4))
	}
}

// TestSteeringBeatsMismatchedStatic: on the FP-heavy phase kernel, the
// steering machine should outperform a machine statically configured for
// integer work. This is the paper's central motivation (X1).
func TestSteeringBeatsMismatchedStatic(t *testing.T) {
	src := `
		li r1, 300
		fcvt.s.w f1, r1
		fcvt.s.w f2, r1
	loop:
		fmul f3, f1, f2
		fadd f4, f3, f1
		fsub f5, f4, f2
		fmul f6, f5, f3
		fadd f1, f6, f4
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`
	prog := isa.MustAssemble(src)
	params := Params{MemBytes: 1 << 12}

	steer := buildProcessor(prog, params, "steering")
	ss, err := steer.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	static := buildProcessor(prog, params, "static-int")
	st, err := static.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ss.IPC() <= st.IPC() {
		t.Errorf("steering IPC %.3f not above integer-static IPC %.3f on FP workload",
			ss.IPC(), st.IPC())
	}
	if steer.Fabric().Reconfigurations() == 0 {
		t.Error("steering never reconfigured on an FP workload")
	}
}

// TestStatsAreInternallyConsistent: issued instructions per type sum to
// at least the retired count (flushed instructions may also have issued),
// and cycles bound retirement.
func TestStatsAreInternallyConsistent(t *testing.T) {
	prog := isa.MustAssemble(kernels["phases"])
	p := buildProcessor(prog, Params{MemBytes: 1 << 16}, "steering")
	stats, err := p.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	issued := 0
	for _, n := range stats.IssuedByType {
		issued += n
	}
	if issued < stats.Retired {
		t.Errorf("issued %d < retired %d", issued, stats.Retired)
	}
	if issued > stats.Retired+stats.Flushed {
		t.Errorf("issued %d > retired %d + flushed %d", issued, stats.Retired, stats.Flushed)
	}
	if stats.Retired > stats.Cycles*p.params.RetireWidth {
		t.Error("retired more than retire bandwidth allows")
	}
}

// TestIssueOrdersArchitecturallyEquivalent: grant priority is a timing
// policy only; every order must produce identical architectural results.
func TestIssueOrdersArchitecturallyEquivalent(t *testing.T) {
	prog := isa.MustAssemble(kernels["phases"])
	const memBytes = 1 << 16
	ref, steps := reference(t, prog, memBytes)
	for _, order := range []IssueOrder{OrderOldest, OrderYoungest, OrderRotate} {
		params := DefaultParams()
		params.MemBytes = memBytes
		params.IssueOrder = order
		p := buildProcessor(prog, params, "steering")
		stats, err := p.Run(5_000_000)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if stats.Retired != steps {
			t.Errorf("order %d: retired %d, want %d", order, stats.Retired, steps)
		}
		for r := uint8(0); r < isa.NumRegs; r++ {
			if p.Reg(r) != ref.ReadReg(r) {
				t.Errorf("order %d: register %s differs", order, isa.RegName(r))
			}
		}
	}
}

// TestGshareMachineCorrect: the gshare predictor changes only timing.
func TestGshareMachineCorrect(t *testing.T) {
	prog := isa.MustAssemble(kernels["branchy"])
	const memBytes = 1 << 12
	ref, steps := reference(t, prog, memBytes)
	params := DefaultParams()
	params.MemBytes = memBytes
	params.GshareHistoryBits = 8
	p := buildProcessor(prog, params, "steering")
	stats, err := p.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retired != steps {
		t.Errorf("retired %d, want %d", stats.Retired, steps)
	}
	if p.Reg(3) != ref.ReadReg(3) || p.Reg(4) != ref.ReadReg(4) {
		t.Error("gshare machine computed wrong sums")
	}
}

// TestSelectFreeModeCorrectAndPilesUp: the literal select-free scheduler
// of reference [9] must produce identical architectural results while
// recording pileup replays under same-type contention.
func TestSelectFreeModeCorrectAndPilesUp(t *testing.T) {
	prog := isa.MustAssemble(kernels["memory"])
	const memBytes = 1 << 16
	ref, steps := reference(t, prog, memBytes)

	params := DefaultParams()
	params.MemBytes = memBytes
	params.SelectFree = true
	p := buildProcessor(prog, params, "steering")
	stats, err := p.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retired != steps {
		t.Errorf("retired %d, want %d", stats.Retired, steps)
	}
	for r := uint8(0); r < isa.NumRegs; r++ {
		if p.Reg(r) != ref.ReadReg(r) {
			t.Errorf("register %s = %#x, want %#x", isa.RegName(r), p.Reg(r), ref.ReadReg(r))
		}
	}
	if stats.Pileups == 0 {
		t.Error("memory kernel produced no pileups under select-free scheduling")
	}
	// The idealised machine never piles up.
	params.SelectFree = false
	q := buildProcessor(prog, params, "steering")
	qs, err := q.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Pileups != 0 {
		t.Errorf("ideal select recorded %d pileups", qs.Pileups)
	}
}

// TestCacheMissesExtendLoadLatency: a pointer-chasing loop over a range
// larger than the cache must record misses; shrinking the penalty must
// not change results but must change cycles.
func TestCacheMissesExtendLoadLatency(t *testing.T) {
	src := `
		li r1, 0
		li r2, 256
		li r4, 0
	loop:
		slli r5, r1, 7   ; stride 128 bytes: a new line every access
		lw r3, 0(r5)
		add r4, r4, r3
		addi r1, r1, 1
		bne r1, r2, loop
		halt
	`
	prog := isa.MustAssemble(src)
	slow := buildProcessor(prog, Params{MemBytes: 1 << 16, CacheMissPenalty: 40}, "none")
	sstats, err := slow.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if slow.DCache().Misses() == 0 {
		t.Fatal("strided loads never missed")
	}
	fast := buildProcessor(prog, Params{MemBytes: 1 << 16, CacheMissPenalty: 1}, "none")
	fstats, err := fast.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Cycles <= fstats.Cycles {
		t.Errorf("40-cycle penalty (%d cycles) not slower than 1-cycle penalty (%d cycles)",
			sstats.Cycles, fstats.Cycles)
	}
	if fast.Reg(4) != slow.Reg(4) {
		t.Error("cache penalty changed architectural results")
	}
}

// TestSetRegAndMemoryPresets: inputs written before the run flow through.
func TestSetRegAndMemoryPresets(t *testing.T) {
	prog := isa.MustAssemble(`
		lw r2, 0(r1)
		addi r2, r2, 5
		halt
	`)
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	p.SetReg(1, 64)
	p.Memory().StoreWord(64, 37)
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if p.Reg(2) != 42 {
		t.Errorf("r2 = %d, want 42", p.Reg(2))
	}
}

func TestDefaultParamsFillZeroFields(t *testing.T) {
	p := Params{}.withDefaults()
	if p != DefaultParams() {
		t.Errorf("withDefaults() = %+v", p)
	}
	// Non-zero fields survive.
	p = Params{WindowSize: 16}.withDefaults()
	if p.WindowSize != 16 || p.IssueWidth != 4 {
		t.Errorf("override lost: %+v", p)
	}
}

// TestWindowNeverExceedsSize: instrument a run and check in-flight count.
func TestWindowNeverExceedsSize(t *testing.T) {
	prog := isa.MustAssemble(kernels["sumloop"])
	p := buildProcessor(prog, Params{MemBytes: 1 << 12, WindowSize: 5}, "steering")
	for !p.Halted() && p.Stats().Cycles < 100000 {
		p.Cycle()
		if p.count > 5 {
			t.Fatalf("window holds %d instructions, size 5", p.count)
		}
	}
	if !p.Halted() {
		t.Fatal("did not halt")
	}
}

// TestArchitecturalZeroRegister: x0 stays zero even when targeted.
func TestArchitecturalZeroRegister(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 9
		add r0, r1, r1
		add r2, r0, r1
		halt
	`)
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if p.Reg(0) != 0 || p.Reg(2) != 9 {
		t.Errorf("r0=%d r2=%d", p.Reg(0), p.Reg(2))
	}
}
