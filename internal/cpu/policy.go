package cpu

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/arch"
)

// Manager is a configuration-management strategy invoked once per cycle
// with the unit requirements of the unscheduled window instructions. The
// paper's steering manager is one Manager; package baseline provides the
// comparison strategies. A nil Manager never reconfigures (a purely
// static machine).
type Manager interface {
	Manage(required arch.Counts)
}

// Policy names a configuration-management strategy. It is the typed
// identity of a strategy — the single place policy names live — as
// opposed to Manager, which is a strategy's per-machine instance. The
// zero value is PolicySteering.
type Policy int

const (
	// PolicySteering is the paper's configuration manager: per-cycle
	// selection over the steering basis, partial idle-only loading.
	PolicySteering Policy = iota
	// PolicyStaticInteger fixes the fabric to the integer steering
	// configuration and never reconfigures.
	PolicyStaticInteger
	// PolicyStaticMemory fixes the fabric to the memory configuration.
	PolicyStaticMemory
	// PolicyStaticFloating fixes the fabric to the floating-point
	// configuration.
	PolicyStaticFloating
	// PolicyNone leaves the fabric empty: only the five fixed units
	// execute instructions (a conventional single-unit-per-type core).
	PolicyNone
	// PolicyFullReconfig swaps whole configurations, waiting for the
	// fabric to drain — the predecessor architecture the paper extends.
	PolicyFullReconfig
	// PolicyOracle selects with the exact divider metric; pair it with
	// a small ReconfigLatency for an idealised upper bound.
	PolicyOracle
	// PolicyRandom loads a random basis configuration periodically.
	PolicyRandom
	// PolicyDemand synthesises configurations directly from the queue's
	// demand every cycle, with no predefined basis — the paper's §5
	// future-work direction.
	PolicyDemand
	// PolicyPrefetch is the steering manager plus the phase-aware
	// prediction subsystem (internal/predict): demand-history phase
	// detection and a Markov transition model drive speculative partial
	// reconfigurations on otherwise-unused configuration-bus spans.
	PolicyPrefetch

	numPolicies // sentinel: count of defined policies
)

// policyNames is the canonical name table — the only place policy names
// are spelled. ParsePolicy and String round-trip through it.
var policyNames = [numPolicies]string{
	PolicySteering:       "steering",
	PolicyStaticInteger:  "static-integer",
	PolicyStaticMemory:   "static-memory",
	PolicyStaticFloating: "static-floating",
	PolicyNone:           "ffu-only",
	PolicyFullReconfig:   "full-reconfig",
	PolicyOracle:         "oracle",
	PolicyRandom:         "random",
	PolicyDemand:         "demand",
	PolicyPrefetch:       "prefetch",
}

// Valid reports whether p is one of the defined policies.
func (p Policy) Valid() bool { return p >= 0 && p < numPolicies }

// String names the policy as the experiment tables and CLI flags do.
func (p Policy) String() string {
	if p.Valid() {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ErrUnknownPolicy is wrapped by ParsePolicy and Policy.UnmarshalText
// failures, so callers can classify them with errors.Is.
var ErrUnknownPolicy = errors.New("unknown policy")

// Policies returns every defined policy in declaration order.
func Policies() []Policy {
	out := make([]Policy, numPolicies)
	for i := range out {
		out[i] = Policy(i)
	}
	return out
}

// PolicyNames returns every policy name in declaration order.
func PolicyNames() []string {
	return append([]string(nil), policyNames[:]...)
}

// ParsePolicy resolves a policy name; the error wraps ErrUnknownPolicy.
func ParsePolicy(s string) (Policy, error) {
	for p, name := range policyNames {
		if name == s {
			return Policy(p), nil
		}
	}
	return 0, fmt.Errorf("%w %q (known: %s)", ErrUnknownPolicy, s, strings.Join(policyNames[:], ", "))
}

// MarshalText implements encoding.TextMarshaler, so a Policy field
// serialises as its name in JSON documents (the rssd request schema).
func (p Policy) MarshalText() ([]byte, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("%w Policy(%d)", ErrUnknownPolicy, int(p))
	}
	return []byte(policyNames[p]), nil
}

// UnmarshalText implements encoding.TextUnmarshaler for the reverse
// direction; the error wraps ErrUnknownPolicy.
func (p *Policy) UnmarshalText(text []byte) error {
	parsed, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
