// Package cpu ties the substrates into the full processor of Fig. 1: a
// fetch unit with branch prediction and a trace cache feeds a register
// update unit (dispatch, dependency tracking, in-order retirement with a
// store buffer) whose scheduling window is the select-free wake-up array;
// execution units come from the reconfigurable fabric, and a pluggable
// configuration policy — the paper's steering manager, or one of the
// baselines — observes the queue each cycle and reconfigures idle RFUs.
//
// The simulator is cycle-level for timing and functionally exact for
// semantics: instructions execute through isa.Exec at issue, with operand
// forwarding from the in-flight window and store-to-load forwarding from
// the store buffer, so a run's architectural outcome is bit-identical to
// the functional reference interpreter.
package cpu

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/fetch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rfu"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wakeup"
)

// Sentinel errors for run and construction failures, so callers (the
// rssd server in particular) can classify outcomes with errors.Is
// instead of string matching.
var (
	// ErrCycleLimit is wrapped by Run/RunContext when the cycle budget
	// elapses before the program's HALT retires.
	ErrCycleLimit = errors.New("cycle limit exceeded")
	// ErrInvalidParams is wrapped by Params.Validate failures.
	ErrInvalidParams = errors.New("invalid machine parameters")
)

// Params sizes the machine. Zero values select the defaults of
// DefaultParams.
type Params struct {
	WindowSize    int // wake-up array rows / in-flight instructions (7)
	DispatchWidth int // instructions dispatched per cycle (4)
	IssueWidth    int // instructions granted per cycle (4)
	RetireWidth   int // instructions retired per cycle (4)

	ReconfigLatency int // cycles to rewrite one RFU span (8)
	ConfigBusWidth  int // max spans reconfiguring at once; 0 = unlimited (Fig. 1 bus model)

	Latencies isa.Latencies

	MemBytes         int // data memory size, power of two (1 MiB)
	CacheSets        int // direct-mapped data cache sets (64)
	CacheLineBytes   int // cache line size (32)
	CacheMissPenalty int // extra cycles on a load miss (10)

	PredictorEntries  int  // predictor / BTB entries (256)
	GshareHistoryBits uint // >0 selects gshare indexing with this much history
	TraceCacheLines   int  // trace cache lines (64)
	TraceCacheLineLen int  // instructions per trace line (8)
	FetchWidthMem     int  // fetch width from instruction memory (2)
	FetchWidthTC      int  // fetch width on a trace cache hit (4)

	DisableFFUs bool // X4 ablation: hide the fixed functional units

	// IssueOrder selects which requesting instructions win issue slots:
	// OrderOldest (default, age priority), OrderYoungest, or
	// OrderRotate (rotating-priority arbiter) — the X15 scheduler
	// ablation.
	IssueOrder IssueOrder

	// ManagerLookahead feeds the configuration manager the unit demands
	// of fetched-but-not-yet-dispatched instructions in addition to the
	// scheduling window — the §2 reading of the architecture, where the
	// fetch unit's pre-decoders supply the manager directly. The default
	// (false) is the §3.1 reading: the manager sees only the
	// instruction queue.
	ManagerLookahead bool

	// SelectFree models the scheduling logic of the paper's reference
	// [9] (Brown/Stark/Patt) literally: requesters are granted without
	// a select stage, so when more instructions request a unit type
	// than units exist, the overflow "pileup" instructions burn their
	// issue slot and are rescheduled — they replay on a later cycle.
	// The default (false) is an idealised select stage that never
	// wastes slots on colliding requesters.
	SelectFree bool

	// FaultTransientRate and FaultPermanentRate enable the
	// configuration-upset model: each is a per-slot per-cycle
	// probability in [0,1] (their sum at most 1) of a transient or
	// permanent upset in that slot's configuration frames. Both zero
	// (the default) disables fault injection entirely — the fabric
	// then runs the exact pre-fault fast path.
	FaultTransientRate float64
	FaultPermanentRate float64
	// FaultSeed seeds the fault injector's private PRNG stream;
	// identical seeds and workloads reproduce identical upset
	// sequences bit-for-bit.
	FaultSeed int64
	// FaultScrubInterval is the cycle period of the readback scrub
	// that detects corrupt slots; 0 selects the default
	// (fault.DefaultScrubInterval).
	FaultScrubInterval int

	// PrefetchHistoryDepth sizes the demand-history ring of the
	// prefetch policy's predictor; 0 selects the default
	// (predict.DefaultHistoryDepth). Ignored by other policies.
	PrefetchHistoryDepth int
	// PrefetchConfidence is the Markov confidence threshold in (0,1]
	// the prefetch policy requires before issuing speculative loads; 0
	// selects the default (predict.DefaultConfidence).
	PrefetchConfidence float64

	// Cores lifts the machine to a K-core cluster sharing one fabric
	// and one configuration bus (internal/cluster). 0 and 1 both mean
	// the scalar machine; K=1 through the cluster layer is bit-identical
	// to it. At most cluster.MaxCores (8).
	Cores int
	// ClusterMode selects how cluster cores share the 8 RFU slots:
	// "merged" (the default) gang-shares one wide configuration steered
	// by core 0; "split" partitions the slots into private per-core
	// sub-fabrics via ownership leases. Ignored when Cores <= 1. The
	// names are parsed by cluster.ParseMode; cpu keeps them as strings
	// so it need not import the layer above it.
	ClusterMode string
	// ClusterArbiter selects the cross-core arbitration policy:
	// "round-robin" (the default) rotates priority each cycle;
	// "demand-weighted" orders cores by their current unit demand.
	// Ignored when Cores <= 1; parsed by cluster.ParseArbiter.
	ClusterArbiter string
}

// DefaultParams returns the reference machine of the experiments.
func DefaultParams() Params {
	return Params{
		WindowSize:        arch.QueueSize,
		DispatchWidth:     4,
		IssueWidth:        4,
		RetireWidth:       4,
		ReconfigLatency:   8,
		Latencies:         isa.DefaultLatencies(),
		MemBytes:          mem.DefaultSize,
		CacheSets:         64,
		CacheLineBytes:    32,
		CacheMissPenalty:  10,
		PredictorEntries:  256,
		TraceCacheLines:   64,
		TraceCacheLineLen: 8,
		FetchWidthMem:     2,
		FetchWidthTC:      4,
	}
}

// WithDefaults returns the parameter set with every zero field filled
// from DefaultParams — the exact resolution cpu.New applies before
// building a machine. Analytic consumers (internal/queue) use it so the
// model and the simulator agree on effective sizes.
func (p Params) WithDefaults() Params { return p.withDefaults() }

// withDefaults fills zero fields from DefaultParams.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.WindowSize == 0 {
		p.WindowSize = d.WindowSize
	}
	if p.DispatchWidth == 0 {
		p.DispatchWidth = d.DispatchWidth
	}
	if p.IssueWidth == 0 {
		p.IssueWidth = d.IssueWidth
	}
	if p.RetireWidth == 0 {
		p.RetireWidth = d.RetireWidth
	}
	// A zero ReconfigLatency selects the default; near-instant
	// reconfiguration is modelled with latency 1.
	if p.ReconfigLatency == 0 {
		p.ReconfigLatency = d.ReconfigLatency
	}
	if p.Latencies == (isa.Latencies{}) {
		p.Latencies = d.Latencies
	}
	if p.MemBytes == 0 {
		p.MemBytes = d.MemBytes
	}
	if p.CacheSets == 0 {
		p.CacheSets = d.CacheSets
	}
	if p.CacheLineBytes == 0 {
		p.CacheLineBytes = d.CacheLineBytes
	}
	if p.CacheMissPenalty == 0 {
		p.CacheMissPenalty = d.CacheMissPenalty
	}
	if p.PredictorEntries == 0 {
		p.PredictorEntries = d.PredictorEntries
	}
	if p.TraceCacheLines == 0 {
		p.TraceCacheLines = d.TraceCacheLines
	}
	if p.TraceCacheLineLen == 0 {
		p.TraceCacheLineLen = d.TraceCacheLineLen
	}
	if p.FetchWidthMem == 0 {
		p.FetchWidthMem = d.FetchWidthMem
	}
	if p.FetchWidthTC == 0 {
		p.FetchWidthTC = d.FetchWidthTC
	}
	return p
}

// Validate checks a parameter set before machine construction: every
// sizing field must be non-negative (zero selects the default), and the
// memory/cache geometries must be powers of two where the substrates
// require it. Errors wrap ErrInvalidParams; cpu.New panics on the same
// conditions, so servers validate request-supplied parameters here
// first and map the failure to a 4xx.
func (p Params) Validate() error {
	bad := func(field string, v int) error {
		return fmt.Errorf("%w: %s must be non-negative, got %d", ErrInvalidParams, field, v)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"WindowSize", p.WindowSize},
		{"DispatchWidth", p.DispatchWidth},
		{"IssueWidth", p.IssueWidth},
		{"RetireWidth", p.RetireWidth},
		{"ReconfigLatency", p.ReconfigLatency},
		{"ConfigBusWidth", p.ConfigBusWidth},
		{"MemBytes", p.MemBytes},
		{"CacheSets", p.CacheSets},
		{"CacheLineBytes", p.CacheLineBytes},
		{"CacheMissPenalty", p.CacheMissPenalty},
		{"PredictorEntries", p.PredictorEntries},
		{"TraceCacheLines", p.TraceCacheLines},
		{"TraceCacheLineLen", p.TraceCacheLineLen},
		{"FetchWidthMem", p.FetchWidthMem},
		{"FetchWidthTC", p.FetchWidthTC},
		{"PrefetchHistoryDepth", p.PrefetchHistoryDepth},
	} {
		if f.v < 0 {
			return bad(f.name, f.v)
		}
	}
	powerOfTwo := func(v int) bool { return v&(v-1) == 0 }
	if p.MemBytes > 0 && !powerOfTwo(p.MemBytes) {
		return fmt.Errorf("%w: MemBytes %d is not a power of two", ErrInvalidParams, p.MemBytes)
	}
	if p.CacheLineBytes > 0 && !powerOfTwo(p.CacheLineBytes) {
		return fmt.Errorf("%w: CacheLineBytes %d is not a power of two", ErrInvalidParams, p.CacheLineBytes)
	}
	if p.IssueOrder < OrderOldest || p.IssueOrder > OrderRotate {
		return fmt.Errorf("%w: unknown issue order %d", ErrInvalidParams, int(p.IssueOrder))
	}
	if err := p.faultPlan().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	// A spec that enables fault injection must size the scrub loop
	// explicitly: without it the plan silently falls back to
	// fault.DefaultScrubInterval, and a negative value used to surface
	// only deep inside fault.Plan at run time. Reject both here so
	// request-supplied specs fail with a structured 4xx instead.
	if (p.FaultTransientRate > 0 || p.FaultPermanentRate > 0) && p.FaultScrubInterval <= 0 {
		return fmt.Errorf("%w: fault rates are set but FaultScrubInterval is %d (want > 0)",
			ErrInvalidParams, p.FaultScrubInterval)
	}
	// NaN fails this comparison too, which is the point.
	if !(p.PrefetchConfidence >= 0 && p.PrefetchConfidence <= 1) {
		return fmt.Errorf("%w: PrefetchConfidence must be in [0, 1], got %v", ErrInvalidParams, p.PrefetchConfidence)
	}
	if p.Cores < 0 || p.Cores > MaxClusterCores {
		return fmt.Errorf("%w: Cores must be in [0, %d], got %d", ErrInvalidParams, MaxClusterCores, p.Cores)
	}
	// The canonical name tables live in internal/cluster (which imports
	// this package); Validate pins the same spellings so request-supplied
	// specs fail here with a structured error.
	switch p.ClusterMode {
	case "", "merged", "split":
	default:
		return fmt.Errorf("%w: unknown cluster mode %q (want merged or split)", ErrInvalidParams, p.ClusterMode)
	}
	switch p.ClusterArbiter {
	case "", "round-robin", "demand-weighted":
	default:
		return fmt.Errorf("%w: unknown cluster arbiter %q (want round-robin or demand-weighted)", ErrInvalidParams, p.ClusterArbiter)
	}
	return nil
}

// MaxClusterCores bounds Params.Cores: eight cores over eight slots is
// already one slot per core in split mode, the point of diminishing
// fabric shares.
const MaxClusterCores = 8

// faultPlan assembles the fault-injection plan from the parameter set.
func (p Params) faultPlan() fault.Plan {
	return fault.Plan{
		Seed:          p.FaultSeed,
		TransientRate: p.FaultTransientRate,
		PermanentRate: p.FaultPermanentRate,
		ScrubInterval: p.FaultScrubInterval,
	}
}

// IssueOrder names a scheduler grant-priority policy.
type IssueOrder int

const (
	// OrderOldest grants the oldest requesters first (the default).
	OrderOldest IssueOrder = iota
	// OrderYoungest grants the youngest requesters first.
	OrderYoungest
	// OrderRotate grants round-robin: the starting priority position
	// rotates by one each cycle, as in rotating-priority arbiters.
	OrderRotate
)

// newPredictor builds the configured branch predictor.
func newPredictor(params Params) *fetch.Predictor {
	if params.GshareHistoryBits > 0 {
		return fetch.NewGsharePredictor(params.PredictorEntries, params.GshareHistoryBits)
	}
	return fetch.NewPredictor(params.PredictorEntries)
}

// robEntry is one register-update-unit entry. The RUU doubles as reorder
// buffer and store buffer; its rows map one-to-one onto wake-up array
// rows.
type robEntry struct {
	valid bool
	seq   uint64
	inst  isa.Inst
	pc    uint32
	row   int // wake-up array row

	predNext  uint32
	predTaken bool

	issued   bool
	executed bool

	hasDest bool
	dest    uint8
	value   uint32

	isStore   bool
	storeAddr uint32
	storeSize int
	storeVal  uint32

	actualNext uint32
	halts      bool
}

// Stats accumulates machine activity over a run.
type Stats struct {
	Cycles  int
	Retired int
	Flushed int // instructions squashed by misprediction recovery

	Mispredicts      int
	BranchesResolved int

	IssuedByType arch.Counts // instructions granted, per unit type

	DispatchStallFull int // dispatch attempts blocked by a full window
	IssueContention   int // requests unserved because units ran out
	Pileups           int // select-free mode: grants rescheduled on unit collision

	// Per-cycle bottleneck classification: every simulated cycle falls
	// into exactly one bucket.
	CyclesIssued   int // at least one instruction was granted
	CyclesFrontend int // window empty: waiting on fetch/dispatch
	CyclesUnits    int // ready instructions existed but no unit of their type was free
	CyclesDeps     int // in-flight work only waiting on results (or draining)

	Halted bool // the program retired its HALT
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// Processor is one simulated machine instance bound to a program.
type Processor struct {
	params Params
	prog   isa.Program

	memory  *mem.Memory
	dcache  *mem.Cache
	front   *fetch.Unit
	pred    *fetch.Predictor
	tcache  *fetch.TraceCache
	fabric  *rfu.Fabric
	array   *wakeup.Array
	manager Manager

	reg    [isa.NumRegs]uint32
	halted bool

	rob   []robEntry
	head  int
	count int
	seq   uint64

	// regProducer maps each register to the RUU slot of its youngest
	// in-flight producer, or -1.
	regProducer [isa.NumRegs]int

	// fetchBuf is the decoded-instruction buffer between fetch and
	// dispatch. Entries are consumed by advancing fetchHead (not by
	// re-slicing, which would strand capacity and force the append in
	// fill to reallocate); fill compacts the consumed prefix away before
	// topping up, so the buffer's backing array is allocated once.
	fetchBuf  []fetchedEntry
	fetchHead int

	tracer        trace.Recorder
	probe         *telemetry.Probe
	spans         *span.Recorder
	lastReconfigs int

	// manageHook, when set, intercepts the demand vector on its way to
	// the manager: the cluster layer uses it to substitute cross-core
	// combined demand (merged mode) or to suppress steering on cores
	// that do not own the fabric. Returning proceed=false skips Manage
	// this cycle.
	manageHook func(required arch.Counts) (arch.Counts, bool)

	// Per-cycle scratch reused across cycles so the steady-state loop
	// does not allocate: execShim is the speculative-memory adapter
	// execute hands to isa.Exec (heap-resident so the interface value
	// needs no boxing), depsScratch backs collectDeps' row list (the
	// wake-up array copies it at Allocate), fetchScratch receives the
	// front end's fetch group.
	execShim     execMem
	depsScratch  []int
	fetchScratch []fetch.Fetched

	stats Stats
}

// fetchedEntry pairs a fetched instruction with the cycle it left the
// front end, for tracing.
type fetchedEntry struct {
	f     fetch.Fetched
	cycle int
}

// New builds a processor for prog with the given parameters and
// configuration manager (nil for a static machine). The fabric starts
// empty: only the FFUs exist until a manager loads RFU configurations;
// use Fabric().Install to preset a static machine.
func New(prog isa.Program, params Params, manager Manager) *Processor {
	params = params.withDefaults()
	if params.WindowSize < 1 {
		panic("cpu: window size must be positive")
	}
	p := &Processor{
		params:  params,
		prog:    prog,
		memory:  mem.NewMemory(params.MemBytes),
		dcache:  mem.NewCache(params.CacheSets, params.CacheLineBytes, params.CacheMissPenalty),
		pred:    newPredictor(params),
		tcache:  fetch.NewTraceCache(params.TraceCacheLines, params.TraceCacheLineLen),
		fabric:  rfu.New(params.ReconfigLatency),
		array:   wakeup.New(params.WindowSize),
		manager: manager,
		rob:     make([]robEntry, params.WindowSize),
	}
	p.execShim.p = p
	p.depsScratch = make([]int, 0, params.WindowSize)
	p.front = fetch.NewUnit(prog, p.pred, p.tcache)
	p.front.MemWidth = params.FetchWidthMem
	p.front.TCWidth = params.FetchWidthTC
	if params.DisableFFUs {
		p.fabric.SetFFUsEnabled(false)
	}
	p.fabric.SetConfigBusWidth(params.ConfigBusWidth)
	if plan := params.faultPlan(); plan.Enabled() {
		p.fabric.EnableFaults(plan)
	}
	for i := range p.regProducer {
		p.regProducer[i] = -1
	}
	return p
}

// Fabric exposes the execution fabric (for policies, presets and stats).
func (p *Processor) Fabric() *rfu.Fabric { return p.fabric }

// SetManager installs the configuration manager. Managers usually need
// the fabric, which exists only after New, so the common pattern is:
//
//	p := cpu.New(prog, params, nil)
//	p.SetManager(baseline.NewSteering(p.Fabric()))
func (p *Processor) SetManager(manager Manager) { p.manager = manager }

// SetManageHook installs an interceptor on the demand vector fed to the
// configuration manager each cycle (nil disables, the default). The
// hook may rewrite the demand — the cluster layer injects cross-core
// combined demand on the fabric-owning core — or return false to skip
// the manager entirely this cycle (cores that do not own the shared
// fabric in merged mode). The manager itself is unaware of the cluster.
func (p *Processor) SetManageHook(hook func(required arch.Counts) (arch.Counts, bool)) {
	p.manageHook = hook
}

// SetTracer installs a pipeline event recorder (nil disables tracing).
func (p *Processor) SetTracer(t trace.Recorder) { p.tracer = t }

// SetTelemetry installs a telemetry probe (nil disables instrumentation;
// the instrumented paths then cost one branch per event). The probe also
// reaches into the fabric for reconfiguration-start events.
func (p *Processor) SetTelemetry(probe *telemetry.Probe) {
	p.probe = probe
	p.fabric.SetTelemetry(probe)
}

// SetSpans installs a span recorder (nil disables; the hot loop then
// costs one branch per cycle). The recorder also reaches into the
// fabric for reconfiguration, repair and fault spans. The recorder is
// a pure observer: runs are bit-identical with it attached or not.
func (p *Processor) SetSpans(r *span.Recorder) {
	p.spans = r
	p.fabric.SetSpans(r)
}

// telemetryState snapshots the machine for the sampler. Called only on
// sampling boundaries, so its cost is off the per-cycle hot path.
func (p *Processor) telemetryState() telemetry.CoreState {
	rfuBusy, rfuUnits, ffuBusy := p.fabric.UnitStates()
	return telemetry.CoreState{
		Cycle:         p.stats.Cycles,
		Retired:       p.stats.Retired,
		Occupancy:     p.count,
		Demand:        p.array.RequiredCounts(),
		RFUUnits:      rfuUnits,
		RFUBusy:       rfuBusy,
		FFUBusy:       ffuBusy,
		Slots:         p.fabric.Allocation().Slots,
		ReconfigSlots: p.fabric.ReconfiguringSlots(),
		MaskedSlots:   p.fabric.MaskedSlots(),
		Buckets: [4]int{p.stats.CyclesIssued, p.stats.CyclesUnits,
			p.stats.CyclesDeps, p.stats.CyclesFrontend},
	}
}

// sampleTelemetry emits a sample when the probe's interval is due.
func (p *Processor) sampleTelemetry() {
	if p.probe != nil && p.probe.SampleDue() {
		p.probe.EmitSample(p.telemetryState())
	}
}

// emit records a pipeline event when tracing is enabled.
func (p *Processor) emit(kind trace.Kind, seq uint64, pc uint32, latency int, text string) {
	if p.tracer == nil {
		return
	}
	p.tracer.Record(trace.Event{
		Cycle:   p.stats.Cycles,
		Kind:    kind,
		Seq:     uint32(seq),
		PC:      pc,
		Latency: latency,
		Text:    text,
	})
}

// Memory exposes the data memory for input/output setup.
func (p *Processor) Memory() *mem.Memory { return p.memory }

// DCache exposes the data cache statistics.
func (p *Processor) DCache() *mem.Cache { return p.dcache }

// Predictor exposes the branch predictor statistics.
func (p *Processor) Predictor() *fetch.Predictor { return p.pred }

// TraceCache exposes the trace cache statistics.
func (p *Processor) TraceCache() *fetch.TraceCache { return p.tcache }

// FetchUnit exposes the fetch unit statistics.
func (p *Processor) FetchUnit() *fetch.Unit { return p.front }

// Window exposes the wake-up array (read-only use intended).
func (p *Processor) Window() *wakeup.Array { return p.array }

// Reg returns architectural register r (unified index).
func (p *Processor) Reg(r uint8) uint32 {
	if r == isa.RegZero {
		return 0
	}
	return p.reg[r]
}

// SetReg presets architectural register r before a run.
func (p *Processor) SetReg(r uint8, v uint32) {
	if r != isa.RegZero {
		p.reg[r] = v
	}
}

// Halted reports whether the program's HALT has retired.
func (p *Processor) Halted() bool { return p.halted }

// Stats returns a copy of the run statistics so far.
func (p *Processor) Stats() Stats {
	s := p.stats
	s.Halted = p.halted
	return s
}

// slotAt returns the ROB slot holding the i-th oldest in-flight
// instruction. i is always < len(rob), so the wrap is a single
// conditional subtract rather than a hardware divide.
func (p *Processor) slotAt(i int) int {
	s := p.head + i
	if s >= len(p.rob) {
		s -= len(p.rob)
	}
	return s
}

// Cycle advances the machine one clock: timers tick, the oldest complete
// instructions retire, the configuration policy observes the queue and
// steers the fabric, ready instructions issue and execute, decoded
// instructions dispatch into the window, and the front end fetches.
func (p *Processor) Cycle() {
	if p.halted {
		return
	}
	p.stats.Cycles++
	if p.probe != nil {
		p.probe.BeginCycle(p.stats.Cycles)
	}
	if p.spans != nil {
		// Advances the recorder clock and, at window boundaries, the
		// flight-recorder anomaly triggers (fault storm, IPC collapse).
		p.spans.BeginCycle(p.stats.Cycles, p.stats.Retired)
	}
	p.array.Tick()
	p.fabric.Tick()
	p.retire()
	if p.halted {
		// The final cycle retired the HALT; count it with the useful
		// cycles so the bottleneck buckets partition the run exactly.
		p.stats.CyclesIssued++
		p.sampleTelemetry()
		return
	}
	if p.manager != nil {
		required := p.array.RequiredCounts()
		if p.params.ManagerLookahead {
			for i := p.fetchHead; i < len(p.fetchBuf); i++ {
				required[p.fetchBuf[i].f.Inst.Unit()]++
			}
		}
		proceed := true
		if p.manageHook != nil {
			required, proceed = p.manageHook(required)
		}
		if proceed {
			p.manager.Manage(required)
			if p.tracer != nil {
				if n := p.fabric.Reconfigurations(); n > p.lastReconfigs {
					p.emit(trace.KindReconfig, 0, 0, 0,
						fmt.Sprintf("%d span(s) -> %v", n-p.lastReconfigs, p.fabric.Allocation().Slots))
					p.lastReconfigs = n
				}
			}
		}
	}
	p.issue()
	p.dispatch()
	p.fill()
	p.sampleTelemetry()
}

// Advance runs up to n cycles, stopping early when HALT retires, and
// returns the number of cycles consumed. It is the lockstep-stepping
// primitive of the lane-parallel wide machine: the batch scheduler
// advances each lane one chunk at a time, and a lane that halts inside
// its chunk hands the remainder of the pass to the other lanes.
func (p *Processor) Advance(n int) int {
	start := p.stats.Cycles
	for i := 0; i < n && !p.halted; i++ {
		p.Cycle()
	}
	return p.stats.Cycles - start
}

// Run executes until HALT retires or maxCycles elapse. It returns the
// stats and an error wrapping ErrCycleLimit when the cycle budget ran
// out — which, with FFUs enabled, indicates a genuine simulator bug, and
// with FFUs disabled is the expected starvation outcome of the X4
// ablation.
func (p *Processor) Run(maxCycles int) (Stats, error) {
	return p.RunContext(context.Background(), maxCycles)
}

// CtxCheckInterval is how many cycles RunContext simulates between
// context polls: cancellation takes effect within one interval.
const CtxCheckInterval = 1024

// RunContext is Run with cancellation: the context is checked every
// CtxCheckInterval cycles, and on cancellation the run stops with the
// context's error (context.Canceled or context.DeadlineExceeded) and
// the statistics accumulated so far. The machine stays consistent — a
// cancelled run can be resumed with another RunContext call.
func (p *Processor) RunContext(ctx context.Context, maxCycles int) (Stats, error) {
	for !p.halted && p.stats.Cycles < maxCycles {
		if err := ctx.Err(); err != nil {
			return p.Stats(), err
		}
		limit := p.stats.Cycles + CtxCheckInterval
		if limit > maxCycles {
			limit = maxCycles
		}
		for !p.halted && p.stats.Cycles < limit {
			p.Cycle()
		}
	}
	if !p.halted {
		return p.Stats(), fmt.Errorf("cpu: no HALT within %d cycles (retired %d): %w",
			maxCycles, p.stats.Retired, ErrCycleLimit)
	}
	return p.Stats(), nil
}

// retire commits the oldest complete instructions in order.
func (p *Processor) retire() {
	for n := 0; n < p.params.RetireWidth && p.count > 0; n++ {
		slot := p.head
		e := &p.rob[slot]
		if !e.issued || !p.array.ResultAvailable(e.row) {
			return
		}
		if e.isStore {
			p.commitStore(e)
		}
		if e.hasDest {
			p.reg[e.dest] = e.value
			if p.regProducer[e.dest] == slot {
				p.regProducer[e.dest] = -1
			}
		}
		p.array.Release(e.row)
		e.valid = false
		p.head = (p.head + 1) % len(p.rob)
		p.count--
		p.stats.Retired++
		if p.probe != nil {
			p.probe.Retire()
		}
		p.emit(trace.KindRetire, e.seq, e.pc, 0, "")
		if e.halts {
			p.halted = true
			return
		}
	}
}

// commitStore applies a retiring store to memory.
func (p *Processor) commitStore(e *robEntry) {
	switch e.storeSize {
	case 1:
		p.memory.StoreByte(e.storeAddr, uint8(e.storeVal))
	case 2:
		p.memory.StoreHalf(e.storeAddr, uint16(e.storeVal))
	case 4:
		p.memory.StoreWord(e.storeAddr, e.storeVal)
	default:
		panic(fmt.Sprintf("cpu: store of size %d", e.storeSize))
	}
}

// issue grants execution to the oldest requesting instructions that can
// claim a unit, and executes them functionally.
func (p *Processor) issue() {
	// Requests are computed combinationally at the start of the cycle —
	// a grant this cycle cannot wake a consumer until the next cycle —
	// then served in age order (oldest first). The request lines come
	// back as one bitboard: a grant or flush mid-loop does not refresh
	// the snapshot, matching the combinational semantics.
	reqMask := p.array.RequestMask(p.fabric.AvailableSet())
	if reqMask == 0 {
		p.classifyCycle(0)
		return
	}
	granted := 0
	initialCount := p.count
	for n := 0; n < initialCount && granted < p.params.IssueWidth; n++ {
		i := n // OrderOldest: age position == visit order
		switch p.params.IssueOrder {
		case OrderYoungest:
			i = initialCount - 1 - n
		case OrderRotate:
			i = (n + p.stats.Cycles) % initialCount
		}
		slot := p.slotAt(i)
		e := &p.rob[slot]
		if !e.valid || e.issued || reqMask>>uint(e.row)&1 == 0 {
			continue
		}
		latency := p.params.Latencies.Of(e.inst.Op)
		ref, ok := p.fabric.Acquire(e.inst.Unit(), latency)
		if !ok {
			p.stats.IssueContention++
			if p.params.SelectFree {
				// No select stage: the colliding requester was granted
				// anyway, wastes its issue slot and replays later.
				p.array.Grant(e.row)
				p.array.Reschedule(e.row)
				p.stats.Pileups++
				granted++
			}
			continue
		}
		p.array.Grant(e.row)
		e.issued = true
		granted++
		p.stats.IssuedByType[e.inst.Unit()]++
		if p.probe != nil {
			p.probe.Issue(e.inst.Unit())
		}
		p.execute(slot, ref)
		if p.halted {
			return
		}
		// execute may have flushed younger entries; the loop re-checks
		// validity and the requesting set each iteration, so squashed
		// rows are skipped naturally.
	}
	p.classifyCycle(granted)
}

// classifyCycle buckets the cycle by its bottleneck for the X14 study.
func (p *Processor) classifyCycle(granted int) {
	switch {
	case granted > 0:
		p.stats.CyclesIssued++
	case p.count == 0:
		p.stats.CyclesFrontend++
	default:
		// Ready work blocked only by unit availability? Unissued entries
		// are exactly the unscheduled rows (a pileup grant reschedules),
		// so the ready bitboard answers this in one mask op.
		if p.array.ReadyMask() != 0 {
			p.stats.CyclesUnits++
		} else {
			p.stats.CyclesDeps++
		}
	}
}

// execute runs the instruction at the given ROB slot functionally,
// recording its result, store effect, memory timing and branch outcome.
func (p *Processor) execute(slot int, ref rfu.UnitRef) {
	e := &p.rob[slot]
	// Reset the shim field-by-field: assigning a fresh execMem would
	// rewrite the pointer field (set once at construction) and drag the
	// write barrier into the hottest loop.
	p.execShim.seq = e.seq
	p.execShim.loaded = false
	p.execShim.stored = false
	shim := &p.execShim
	var st isa.State
	st.PC = e.pc
	st.Mem = shim
	st.Reg[e.inst.Rs1] = p.operand(e.inst.Rs1, e.seq)
	st.Reg[e.inst.Rs2] = p.operand(e.inst.Rs2, e.seq)
	if err := isa.Exec(e.inst, &st); err != nil {
		panic(fmt.Sprintf("cpu: execute %v at pc %d: %v", e.inst, e.pc, err))
	}
	if dest, ok := e.inst.Dest(); ok {
		e.hasDest = true
		e.dest = dest
		e.value = st.Reg[dest]
	}
	if shim.stored {
		e.isStore = true
		e.storeAddr = shim.storeAddr
		e.storeSize = shim.storeSize
		e.storeVal = shim.storeVal
	}
	latency := p.params.Latencies.Of(e.inst.Op)
	if shim.loaded {
		if extra := p.dcache.Access(shim.loadAddr); extra > 0 {
			p.array.ExtendTimer(e.row, extra)
			p.fabric.ExtendBusy(ref, extra)
			latency += extra
		}
	}
	e.actualNext = st.PC
	e.halts = st.Halted
	e.executed = true
	if p.tracer != nil {
		p.emit(trace.KindIssue, e.seq, e.pc, latency, e.inst.String())
	}

	if e.inst.Op.IsBranch() {
		p.resolveBranch(slot)
	}
}

// resolveBranch trains the predictor and recovers from mispredictions by
// squashing younger instructions and redirecting fetch.
func (p *Processor) resolveBranch(slot int) {
	e := &p.rob[slot]
	p.stats.BranchesResolved++
	taken := e.actualNext != e.pc+1
	switch e.inst.Op {
	case isa.JAL:
		// Static target, always taken: never mispredicts.
	case isa.JALR:
		p.pred.UpdateTarget(e.pc, e.actualNext)
	default:
		p.pred.UpdateTaken(e.pc, taken)
	}
	correct := e.actualNext == e.predNext
	p.pred.RecordOutcome(correct)
	if correct {
		return
	}
	p.stats.Mispredicts++
	p.flushYoungerThan(e.seq)
	p.fetchBuf = p.fetchBuf[:0]
	p.fetchHead = 0
	p.front.Redirect(e.actualNext)
}

// flushYoungerThan squashes every in-flight instruction younger than seq
// and rebuilds the register producer map from the survivors.
func (p *Processor) flushYoungerThan(seq uint64) {
	flushedBefore := p.stats.Flushed
	for p.count > 0 {
		tail := p.slotAt(p.count - 1)
		e := &p.rob[tail]
		if e.seq <= seq {
			break
		}
		p.array.Release(e.row)
		e.valid = false
		p.count--
		p.stats.Flushed++
		if p.tracer != nil {
			p.emit(trace.KindFlush, e.seq, e.pc, 0, e.inst.String())
		}
	}
	if p.probe != nil {
		p.probe.Flushed(p.stats.Flushed - flushedBefore)
	}
	for i := range p.regProducer {
		p.regProducer[i] = -1
	}
	for i := 0; i < p.count; i++ {
		slot := p.slotAt(i)
		e := &p.rob[slot]
		if d, ok := e.inst.Dest(); ok {
			p.regProducer[d] = slot
		}
	}
}

// operand returns the value register r holds for an instruction with the
// given sequence number: the youngest older in-flight producer's result,
// or the architectural register file. The wake-up dependencies guarantee
// the producer has executed by issue time; a violation panics.
func (p *Processor) operand(r uint8, seq uint64) uint32 {
	if r == isa.RegZero {
		return 0
	}
	best := -1
	var bestSeq uint64
	for i := 0; i < p.count; i++ {
		slot := p.slotAt(i)
		e := &p.rob[slot]
		if e.seq >= seq {
			break
		}
		if d, ok := e.inst.Dest(); ok && d == r {
			if best < 0 || e.seq > bestSeq {
				best, bestSeq = slot, e.seq
			}
		}
	}
	if best >= 0 {
		e := &p.rob[best]
		if !e.executed {
			panic(fmt.Sprintf("cpu: operand %s read before producer executed (seq %d -> %d)",
				isa.RegName(r), seq, e.seq))
		}
		return e.value
	}
	return p.reg[r]
}

// specByte returns the value memory byte addr holds for a load with the
// given sequence number: architectural memory overlaid, in program order,
// with older in-flight stores (store-to-load forwarding through the store
// buffer).
func (p *Processor) specByte(addr uint32, seq uint64) uint8 {
	v := p.memory.LoadByte(addr)
	for i := 0; i < p.count; i++ {
		slot := p.slotAt(i)
		e := &p.rob[slot]
		if e.seq >= seq {
			break
		}
		if !e.valid || !e.isStore || !e.executed {
			continue
		}
		if addr >= e.storeAddr && addr < e.storeAddr+uint32(e.storeSize) {
			shift := 8 * (addr - e.storeAddr)
			v = uint8(e.storeVal >> shift)
		}
	}
	return v
}

// dispatch moves decoded instructions from the fetch buffer into the
// window, recording register and memory-ordering dependencies.
func (p *Processor) dispatch() {
	for n := 0; n < p.params.DispatchWidth && p.fetchHead < len(p.fetchBuf); n++ {
		if p.count == len(p.rob) || p.array.Free() == 0 {
			p.stats.DispatchStallFull++
			if p.probe != nil {
				p.probe.DispatchStall()
			}
			return
		}
		entry := p.fetchBuf[p.fetchHead]
		f := entry.f

		deps := p.collectDeps(f.Inst)
		latency := p.params.Latencies.Of(f.Inst.Op)
		slot := p.slotAt(p.count)
		row, ok := p.array.Allocate(f.Inst.Unit(), deps, latency, uint64(slot))
		if !ok {
			p.stats.DispatchStallFull++
			if p.probe != nil {
				p.probe.DispatchStall()
			}
			return
		}
		p.fetchHead++

		p.seq++
		p.rob[slot] = robEntry{
			valid:     true,
			seq:       p.seq,
			inst:      f.Inst,
			pc:        f.PC,
			row:       row,
			predNext:  f.PredNext,
			predTaken: f.PredTaken,
		}
		p.count++
		if p.probe != nil {
			p.probe.Dispatch()
		}
		if d, ok := f.Inst.Dest(); ok {
			p.regProducer[d] = slot
		}
		if p.tracer != nil {
			p.tracer.Record(trace.Event{
				Cycle: entry.cycle, Kind: trace.KindFetch,
				Seq: uint32(p.seq), PC: f.PC, Text: f.Inst.String(),
			})
			p.emit(trace.KindDispatch, p.seq, f.PC, 0, f.Inst.String())
		}
	}
}

// collectDeps returns the wake-up rows the instruction must wait for:
// the youngest in-flight producer of each source register, plus — for
// loads — every older in-flight store (conservative memory
// disambiguation, so store-to-load forwarding always sees resolved
// addresses).
func (p *Processor) collectDeps(in isa.Inst) []int {
	deps := p.depsScratch[:0]
	regs, nsrc := in.SourceRegs()
	for si := 0; si < nsrc; si++ {
		r := regs[si]
		if r == isa.RegZero {
			continue
		}
		if slot := p.regProducer[r]; slot >= 0 && p.rob[slot].valid {
			deps = appendDep(deps, p.rob[slot].row)
		}
	}
	if in.Op.IsLoad() {
		for i := 0; i < p.count; i++ {
			slot := p.slotAt(i)
			e := &p.rob[slot]
			if e.valid && e.inst.Op.IsStore() {
				deps = appendDep(deps, e.row)
			}
		}
	}
	p.depsScratch = deps
	return deps
}

// appendDep appends row to deps unless it is already present.
func appendDep(deps []int, row int) []int {
	for _, d := range deps {
		if d == row {
			return deps
		}
	}
	return append(deps, row)
}

// fill tops up the fetch buffer from the front end.
func (p *Processor) fill() {
	const bufCap = 16
	if len(p.fetchBuf)-p.fetchHead >= bufCap {
		return
	}
	if p.fetchHead > 0 {
		// Compact the consumed prefix away so append reuses the backing
		// array instead of growing past stranded capacity.
		n := copy(p.fetchBuf, p.fetchBuf[p.fetchHead:])
		p.fetchBuf = p.fetchBuf[:n]
		p.fetchHead = 0
	}
	p.fetchScratch = p.front.AppendFetch(p.fetchScratch[:0])
	for _, f := range p.fetchScratch {
		p.fetchBuf = append(p.fetchBuf, fetchedEntry{f: f, cycle: p.stats.Cycles})
	}
}

// execMem adapts the processor's speculative memory view to
// isa.DataMemory for functional execution at issue: loads read through
// the store buffer overlay, stores are recorded for the buffer instead of
// being applied.
type execMem struct {
	p   *Processor
	seq uint64

	loaded   bool
	loadAddr uint32

	stored    bool
	storeAddr uint32
	storeSize int
	storeVal  uint32
}

func (m *execMem) noteLoad(addr uint32) {
	if !m.loaded {
		m.loaded = true
		m.loadAddr = addr
	}
}

func (m *execMem) LoadByte(addr uint32) uint8 {
	m.noteLoad(addr)
	return m.p.specByte(addr, m.seq)
}

func (m *execMem) LoadHalf(addr uint32) uint16 {
	m.noteLoad(addr)
	return uint16(m.p.specByte(addr, m.seq)) | uint16(m.p.specByte(addr+1, m.seq))<<8
}

func (m *execMem) LoadWord(addr uint32) uint32 {
	m.noteLoad(addr)
	return uint32(m.LoadHalf(addr)) | uint32(m.LoadHalf(addr+2))<<16
}

func (m *execMem) record(addr uint32, size int, v uint32) {
	if m.stored {
		panic("cpu: instruction performed two stores")
	}
	m.stored = true
	m.storeAddr = addr
	m.storeSize = size
	m.storeVal = v
}

func (m *execMem) StoreByte(addr uint32, v uint8)  { m.record(addr, 1, uint32(v)) }
func (m *execMem) StoreHalf(addr uint32, v uint16) { m.record(addr, 2, uint32(v)) }
func (m *execMem) StoreWord(addr uint32, v uint32) { m.record(addr, 4, v) }
