package cpu

import (
	"testing"

	"repro/internal/isa"
)

// TestSubWordStoreLoadForwarding stresses the byte-granular store buffer:
// overlapping byte/half/word stores followed by loads of every width must
// forward exactly, matching the functional reference.
func TestSubWordStoreLoadForwarding(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 512
		li r2, 0x12345678
		sw r2, 0(r1)       ; word underneath
		li r3, 0xab
		sb r3, 1(r1)       ; byte overlay in the middle
		li r4, 0xcdef
		sh r4, 2(r1)       ; half overlay on top
		lw r5, 0(r1)       ; word read through all three
		lbu r6, 1(r1)      ; the byte overlay
		lh r7, 2(r1)       ; the half overlay (sign extended)
		lb r8, 3(r1)       ; sign-extended byte of the half
		halt
	`)
	const memBytes = 1 << 12
	ref, _ := reference(t, prog, memBytes)

	p := New(prog, Params{MemBytes: memBytes}, nil)
	if _, err := p.Run(10000); err != nil {
		t.Fatal(err)
	}
	for _, r := range []uint8{5, 6, 7, 8} {
		if p.Reg(r) != ref.ReadReg(r) {
			t.Errorf("r%d = %#x, reference %#x", r, p.Reg(r), ref.ReadReg(r))
		}
	}
	// Pin the actual composite: word 0x12345678, byte ab at +1, half
	// cdef at +2 -> bytes 78 ab ef cd -> word 0xcdefab78.
	if got := p.Reg(5); got != 0xcdefab78 {
		t.Errorf("composite word = %#x, want 0xcdefab78", got)
	}
	if got := p.Reg(6); got != 0xab {
		t.Errorf("byte overlay = %#x, want 0xab", got)
	}
}

// TestPartialOverlapAcrossWords: a store straddling a word boundary is
// forwarded byte-by-byte to loads of both words.
func TestPartialOverlapAcrossWords(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 512
		li r2, 0x11111111
		li r3, 0x22222222
		sw r2, 0(r1)
		sw r3, 4(r1)
		li r4, 0xbeef
		sh r4, 3(r1)       ; straddles the two words
		lw r5, 0(r1)
		lw r6, 4(r1)
		halt
	`)
	const memBytes = 1 << 12
	ref, _ := reference(t, prog, memBytes)
	p := New(prog, Params{MemBytes: memBytes}, nil)
	if _, err := p.Run(10000); err != nil {
		t.Fatal(err)
	}
	if p.Reg(5) != ref.ReadReg(5) || p.Reg(6) != ref.ReadReg(6) {
		t.Errorf("straddling store: got %#x %#x, reference %#x %#x",
			p.Reg(5), p.Reg(6), ref.ReadReg(5), ref.ReadReg(6))
	}
	if p.Reg(5) != 0xef111111 {
		t.Errorf("low word = %#x, want 0xef111111", p.Reg(5))
	}
	if p.Reg(6) != 0x222222be {
		t.Errorf("high word = %#x, want 0x222222be", p.Reg(6))
	}
}

// TestWrongPathStoreNeverCommits: a store on a mispredicted path must
// leave memory untouched.
func TestWrongPathStoreNeverCommits(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 512
		li r2, 99
		li r3, 1
		; train the predictor toward taken, then surprise it
		li r4, 8
	loop:
		beq r3, r0, poison   ; never actually taken (r3 = 1)
		addi r4, r4, -1
		bne r4, r0, loop
		j out
	poison:
		sw r2, 0(r1)         ; must never commit
	out:
		lw r5, 0(r1)
		halt
	`)
	const memBytes = 1 << 12
	p := New(prog, Params{MemBytes: memBytes}, nil)
	if _, err := p.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := p.Reg(5); got != 0 {
		t.Errorf("wrong-path store leaked into memory: loaded %d", got)
	}
	if got := p.Memory().LoadWord(512); got != 0 {
		t.Errorf("memory[512] = %d after wrong-path store", got)
	}
}

// TestMachineInvariantsDuringRun drives a branchy workload and checks
// structural invariants every cycle: the ROB occupancy matches the
// wake-up array occupancy, every in-flight entry's row tag points back at
// its slot, and regProducer entries reference live producers of the right
// register.
func TestMachineInvariantsDuringRun(t *testing.T) {
	prog := isa.MustAssemble(kernels["branchy"])
	p := buildProcessor(prog, Params{MemBytes: 1 << 12}, "steering")
	for !p.Halted() && p.Stats().Cycles < 200000 {
		p.Cycle()
		used := p.params.WindowSize - p.array.Free()
		if used != p.count {
			t.Fatalf("cycle %d: wake-up rows used %d != ROB count %d",
				p.Stats().Cycles, used, p.count)
		}
		for i := 0; i < p.count; i++ {
			slot := p.slotAt(i)
			e := &p.rob[slot]
			if !e.valid {
				t.Fatalf("cycle %d: invalid entry inside window", p.Stats().Cycles)
			}
			if p.array.Tag(e.row) != uint64(slot) {
				t.Fatalf("cycle %d: row %d tag %d != slot %d",
					p.Stats().Cycles, e.row, p.array.Tag(e.row), slot)
			}
		}
		for r, slot := range p.regProducer {
			if slot < 0 {
				continue
			}
			e := &p.rob[slot]
			if !e.valid {
				t.Fatalf("cycle %d: regProducer[%d] points at invalid slot", p.Stats().Cycles, r)
			}
			if d, ok := e.inst.Dest(); !ok || d != uint8(r) {
				t.Fatalf("cycle %d: regProducer[%d] producer writes %v", p.Stats().Cycles, r, d)
			}
		}
	}
	if !p.Halted() {
		t.Fatal("did not halt")
	}
}
