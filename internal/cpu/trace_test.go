package cpu

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/isa"
	"repro/internal/trace"
)

// TestTraceLifecycleEvents checks every dispatched instruction leaves a
// complete fetch->dispatch->issue->retire record, in causal order.
func TestTraceLifecycleEvents(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 3
		li r2, 4
		mul r3, r1, r2
		halt
	`)
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	buf := trace.NewBuffer(1000)
	p.SetTracer(buf)
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}

	type life struct{ fetch, dispatch, issue, retire int }
	lives := map[uint32]*life{}
	for _, e := range buf.Events() {
		l, ok := lives[e.Seq]
		if !ok {
			l = &life{fetch: -1, dispatch: -1, issue: -1, retire: -1}
			lives[e.Seq] = l
		}
		switch e.Kind {
		case trace.KindFetch:
			l.fetch = e.Cycle
		case trace.KindDispatch:
			l.dispatch = e.Cycle
		case trace.KindIssue:
			l.issue = e.Cycle
		case trace.KindRetire:
			l.retire = e.Cycle
		}
	}
	if len(lives) != 4 {
		t.Fatalf("traced %d instructions, want 4", len(lives))
	}
	for seq, l := range lives {
		if l.fetch < 0 || l.dispatch < 0 || l.issue < 0 || l.retire < 0 {
			t.Errorf("seq %d incomplete lifecycle: %+v", seq, l)
			continue
		}
		if !(l.fetch <= l.dispatch && l.dispatch < l.issue && l.issue <= l.retire) {
			t.Errorf("seq %d events out of order: %+v", seq, l)
		}
	}
}

// TestTraceRecordsFlushesAndReconfigs: a mispredicting branch with a
// steering policy produces flush and reconfiguration events.
func TestTraceRecordsFlushesAndReconfigs(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 0
		li r2, 50
	loop:
		andi r3, r1, 1
		beq r3, r0, skip
		fcvt.s.w f1, r1
		fadd f2, f2, f1
	skip:
		addi r1, r1, 1
		bne r1, r2, loop
		halt
	`)
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	p.SetManager(baseline.NewSteering(p.Fabric()))
	buf := trace.NewBuffer(100000)
	p.SetTracer(buf)
	if _, err := p.Run(100000); err != nil {
		t.Fatal(err)
	}
	var flushes, reconfigs int
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.KindFlush:
			flushes++
		case trace.KindReconfig:
			reconfigs++
		}
	}
	if flushes == 0 {
		t.Error("no flush events traced despite an alternating branch")
	}
	if reconfigs == 0 {
		t.Error("no reconfiguration events traced despite steering")
	}
	if flushes != p.Stats().Flushed {
		t.Errorf("traced %d flushes, stats say %d", flushes, p.Stats().Flushed)
	}
}

// TestTraceRetireCountMatchesStats: retire events equal retired
// instructions exactly.
func TestTraceRetireCountMatchesStats(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 20
	loop:
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	buf := trace.NewBuffer(100000)
	p.SetTracer(buf)
	st, err := p.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	retires := 0
	for _, e := range buf.Events() {
		if e.Kind == trace.KindRetire {
			retires++
		}
	}
	if retires != st.Retired {
		t.Errorf("traced %d retires, stats %d", retires, st.Retired)
	}
}

// TestPipeviewFromRealRun: the rendered chart contains the program's
// instructions with issue markers.
func TestPipeviewFromRealRun(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 6
		mul r2, r1, r1
		halt
	`)
	p := New(prog, Params{MemBytes: 1 << 12}, nil)
	buf := trace.NewBuffer(1000)
	p.SetTracer(buf)
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	view := trace.Pipeview(buf.Events(), 0, p.Stats().Cycles)
	if !strings.Contains(view, "mul r2, r1, r1") {
		t.Errorf("pipeview missing instruction:\n%s", view)
	}
	if !strings.Contains(view, "I") || !strings.Contains(view, "R") {
		t.Errorf("pipeview missing markers:\n%s", view)
	}
	// The 4-cycle multiply must show executing cycles.
	if !strings.Contains(view, "=") {
		t.Errorf("pipeview missing execution span for the multiply:\n%s", view)
	}
}

// TestTracingDoesNotChangeResults: tracing is observation only.
func TestTracingDoesNotChangeResults(t *testing.T) {
	prog := isa.MustAssemble(`
		li r1, 100
		li r3, 0
	loop:
		add r3, r3, r1
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	run := func(traced bool) (uint32, int) {
		p := New(prog, Params{MemBytes: 1 << 12}, nil)
		p.SetManager(baseline.NewSteering(p.Fabric()))
		if traced {
			p.SetTracer(trace.NewBuffer(10))
		}
		st, err := p.Run(100000)
		if err != nil {
			t.Fatal(err)
		}
		return p.Reg(3), st.Cycles
	}
	r1, c1 := run(false)
	r2, c2 := run(true)
	if r1 != r2 || c1 != c2 {
		t.Errorf("tracing changed the run: (%d,%d) vs (%d,%d)", r1, c1, r2, c2)
	}
}
