package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/workload"
)

// TestDifferentialFuzzBranchy generates random control-flow-heavy
// programs and checks that the pipelined simulator's architectural
// outcome — registers, memory, dynamic instruction count — is
// bit-identical to the functional interpreter under several policies and
// machine shapes. This is the main speculation/squash/store-buffer fuzz.
func TestDifferentialFuzzBranchy(t *testing.T) {
	const memBytes = 1 << 16
	policies := []string{"steering", "none", "full-reconfig", "static-int"}
	shapes := []Params{
		{},
		{WindowSize: 4, IssueWidth: 2, DispatchWidth: 2, RetireWidth: 2},
		{WindowSize: 16, IssueWidth: 8, DispatchWidth: 8, RetireWidth: 8, SelectFree: true},
		{CacheSets: 2, CacheLineBytes: 8, CacheMissPenalty: 25},
		{ManagerLookahead: true, ConfigBusWidth: 1},
		{IssueOrder: OrderRotate, GshareHistoryBits: 6},
		{IssueOrder: OrderYoungest, ReconfigLatency: 32},
	}
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		prog := workload.SynthesizeBranchy(20, workload.SynthParams{Seed: int64(seed)})
		ref := &isa.State{Mem: mem.NewMemory(memBytes)}
		steps, err := isa.Run(prog, ref, 10_000_000)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		refMem := ref.Mem.(*mem.Memory)

		policy := policies[seed%len(policies)]
		shape := shapes[seed%len(shapes)]
		shape.MemBytes = memBytes
		p := buildProcessor(prog, shape, policy)
		stats, err := p.Run(10_000_000)
		if err != nil {
			t.Fatalf("seed %d policy %s: %v", seed, policy, err)
		}
		if stats.Retired != steps {
			t.Errorf("seed %d policy %s: retired %d, reference %d", seed, policy, stats.Retired, steps)
		}
		for r := uint8(0); r < isa.NumRegs; r++ {
			if p.Reg(r) != ref.ReadReg(r) {
				t.Errorf("seed %d policy %s: register %s = %#x, reference %#x",
					seed, policy, isa.RegName(r), p.Reg(r), ref.ReadReg(r))
			}
		}
		for addr := uint32(0); addr < memBytes; addr += 4 {
			if got, want := p.Memory().LoadWord(addr), refMem.LoadWord(addr); got != want {
				t.Fatalf("seed %d policy %s: memory[%#x] = %#x, reference %#x",
					seed, policy, addr, got, want)
			}
		}
	}
}

// TestDifferentialFuzzStraightline runs the straight-line synthesizer
// across many seeds as a lighter-weight complement.
func TestDifferentialFuzzStraightline(t *testing.T) {
	const memBytes = 1 << 16
	seeds := 15
	if testing.Short() {
		seeds = 3
	}
	for seed := 100; seed < 100+seeds; seed++ {
		prog := workload.Synthesize([]workload.Phase{
			{Mix: workload.MixUniform, Instructions: 400},
		}, workload.SynthParams{Seed: int64(seed), DepDensity: 0.7})
		ref := &isa.State{Mem: mem.NewMemory(memBytes)}
		steps, err := isa.Run(prog, ref, 10_000_000)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		p := buildProcessor(prog, Params{MemBytes: memBytes}, "steering")
		stats, err := p.Run(10_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.Retired != steps {
			t.Errorf("seed %d: retired %d, reference %d", seed, stats.Retired, steps)
		}
		for r := uint8(0); r < isa.NumRegs; r++ {
			if p.Reg(r) != ref.ReadReg(r) {
				t.Errorf("seed %d: register %s differs", seed, isa.RegName(r))
			}
		}
	}
}
