package cpu

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
)

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
		if !p.Valid() {
			t.Errorf("%v.Valid() = false", p)
		}
	}
}

func TestParsePolicyUnknown(t *testing.T) {
	_, err := ParsePolicy("bogus")
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("err = %v, want ErrUnknownPolicy", err)
	}
	// The error must name the valid spellings, so CLI and API users get
	// the menu, not just a rejection.
	if !strings.Contains(err.Error(), "steering") {
		t.Errorf("error %q does not list known policies", err)
	}
}

func TestPolicyZeroValueIsSteering(t *testing.T) {
	var p Policy
	if p != PolicySteering || p.String() != "steering" {
		t.Fatalf("zero Policy = %v (%q), want steering", p, p)
	}
}

func TestPolicyJSON(t *testing.T) {
	var doc struct {
		Policy Policy `json:"policy"`
	}
	if err := json.Unmarshal([]byte(`{"policy": "full-reconfig"}`), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.Policy != PolicyFullReconfig {
		t.Errorf("policy = %v, want full-reconfig", doc.Policy)
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(out) != `{"policy":"full-reconfig"}` {
		t.Errorf("marshal = %s", out)
	}
	if err := json.Unmarshal([]byte(`{"policy": "bogus"}`), &doc); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unmarshal bogus: err = %v, want ErrUnknownPolicy", err)
	}
}

func TestPolicyStringOutOfRange(t *testing.T) {
	if s := Policy(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range String() = %q", s)
	}
	if Policy(99).Valid() {
		t.Errorf("Policy(99).Valid() = true")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero params invalid: %v", err)
	}
	good := []Params{
		{ConfigBusWidth: 0}, // zero = unlimited bus, valid
		{ConfigBusWidth: 1},
		{FaultTransientRate: 0.5, FaultPermanentRate: 0.5, FaultScrubInterval: 64}, // sum exactly 1
		{FaultScrubInterval: 1},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good[%d]: unexpected error %v", i, err)
		}
	}
	bad := []Params{
		{WindowSize: -1},
		{ReconfigLatency: -8},
		{ConfigBusWidth: -1},
		{MemBytes: 1000}, // not a power of two
		{CacheLineBytes: 48},
		{IssueOrder: IssueOrder(99)},
		{FaultTransientRate: -0.1},
		{FaultPermanentRate: 1.5},
		{FaultTransientRate: 0.7, FaultPermanentRate: 0.7}, // sum > 1
		{FaultTransientRate: math.NaN()},
		{FaultScrubInterval: -1},
		{FaultTransientRate: 0.5, FaultPermanentRate: 0.5}, // rates without a scrub interval
		{FaultTransientRate: 0.002},                        // ditto, transient only
		{FaultPermanentRate: 0.001, FaultScrubInterval: 0}, // explicit zero scrub
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("bad[%d]: err = %v, want ErrInvalidParams", i, err)
		}
	}
}

// spinProgram never halts — the RunContext tests race it against a
// deadline or cancellation.
func spinProgram(t *testing.T) isa.Program {
	t.Helper()
	prog, err := isa.Assemble("loop: j loop\n")
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func TestRunContextDeadline(t *testing.T) {
	p := New(spinProgram(t), Params{}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	stats, err := p.RunContext(ctx, 1<<40)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if stats.Cycles == 0 {
		t.Errorf("no cycles simulated before the deadline")
	}
	if p.Halted() {
		t.Errorf("spin program halted")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	p := New(spinProgram(t), Params{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := p.RunContext(ctx, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// The context is checked before each interval, so a pre-cancelled
	// run stops within one CtxCheckInterval of cycles — here, before
	// simulating anything at all.
	if stats.Cycles != 0 {
		t.Errorf("pre-cancelled run simulated %d cycles", stats.Cycles)
	}
}

func TestRunContextResume(t *testing.T) {
	// A cancelled run leaves the machine consistent: resuming it with a
	// live context completes the program.
	prog := isa.MustAssemble(`
		li r1, 5
		li r2, 7
		add r3, r1, r2
		halt
	`)
	p := New(prog, Params{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: err = %v, want Canceled", err)
	}
	stats, err := p.Run(1_000_000)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !p.Halted() || stats.Retired < 4 {
		t.Errorf("resumed run did not complete: halted=%v retired=%d", p.Halted(), stats.Retired)
	}
	if got := p.Reg(3); got != 12 {
		t.Errorf("r3 = %d, want 12", got)
	}
}

func TestRunContextCancelBounded(t *testing.T) {
	// Cancellation mid-run stops the simulation within one check
	// interval: after the cancel is visible, at most CtxCheckInterval
	// more cycles may elapse (the interval in flight when it landed).
	p := New(spinProgram(t), Params{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var stats Stats
	var err error
	go func() {
		defer close(done)
		stats, err = p.RunContext(ctx, 1<<40)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	cyclesAtReturn := stats.Cycles
	// The machine must not have advanced past the interval boundary the
	// cancellation landed in: its final cycle count is what RunContext
	// reported, aligned to the check interval.
	if got := p.Stats().Cycles; got != cyclesAtReturn {
		t.Errorf("machine advanced after return: %d != %d", got, cyclesAtReturn)
	}
	if cyclesAtReturn%CtxCheckInterval != 0 {
		t.Errorf("stopped mid-interval at cycle %d (interval %d)", cyclesAtReturn, CtxCheckInterval)
	}
}
