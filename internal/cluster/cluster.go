// Package cluster lifts the simulator from one processor to K cores
// sharing the eight-slot reconfigurable fabric and the configuration
// bus — the merge/split cluster organisation of Spatzformer
// (arXiv:2407.05447) applied to the paper's steering architecture.
//
// Each core is a full repro.Machine (its own window, front end, memory
// and steering manager); the cluster layer arbitrates their
// reconfiguration traffic:
//
//   - In merged mode the cores gang-share one wide configuration. Core
//     0 owns the physical fabric; its steering manager serves the
//     cross-core combined demand the arbiter policy selects, and the
//     remaining cores execute on configuration mirrors of core 0's
//     fabric (private execution ports, shared layout — the Spatzformer
//     reading, where the merged cluster acts as one wide machine).
//   - In split mode the eight slots partition into contiguous private
//     sub-fabrics via per-slot ownership leases. A slot leased to core
//     A is health-masked out of core B's availability — the PR 4
//     degraded-mode masks reused as the lease mechanism — so each
//     core's steering manager sees only its own sub-fabric, and the
//     per-core fault injectors each own exactly their partition.
//
// All reconfiguration still flows through one configuration bus: in
// split mode every fabric's bus-capacity check adds the sibling
// fabrics' active spans, so repairs > demand > prefetch priority
// extends across cores, ordered by the arbiter (round-robin rotation
// or demand-weighted) each cycle.
//
// Modes are switchable at phase boundaries: a requested switch applies
// at the first cycle where every fabric is quiescent (no execution on
// RFU slots, no reconfiguration in flight), so configurations never
// change under an executing span.
//
// K=1 is bit-identical to the scalar repro.Machine — every hook
// degenerates to a no-op — which TestClusterK1MatchesScalar pins.
package cluster

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/rfu"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// MaxCores bounds the cluster width (eight cores over eight slots is
// one slot per core in split mode). It equals cpu.MaxClusterCores so
// Params.Validate and the cluster agree.
const MaxCores = cpu.MaxClusterCores

// allSlots is the packed mask of the whole reconfigurable fabric.
const allSlots = uint8(1<<arch.NumRFUSlots - 1)

// Mode selects how the cores share the reconfigurable fabric.
type Mode int

const (
	// ModeMerged gang-shares one wide configuration steered by core 0
	// against the arbiter-combined demand of every core.
	ModeMerged Mode = iota
	// ModeSplit partitions the slots into private per-core sub-fabrics
	// through ownership leases.
	ModeSplit
)

var modeNames = [...]string{ModeMerged: "merged", ModeSplit: "split"}

// String returns the canonical mode name.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return modeNames[m]
}

// ParseMode resolves a mode name; the empty string selects ModeMerged
// (the default, matching cpu.Params.ClusterMode semantics).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "merged":
		return ModeMerged, nil
	case "split":
		return ModeSplit, nil
	}
	return 0, fmt.Errorf("cluster: unknown mode %q (known: merged, split)", s)
}

// Arbiter selects the cross-core arbitration policy ordering fabric
// access each cycle.
type Arbiter int

const (
	// ArbiterRoundRobin rotates priority by one core each cycle: in
	// merged mode the master steers toward the rotating core's demand,
	// in split mode the stepping (and thus bus) order rotates.
	ArbiterRoundRobin Arbiter = iota
	// ArbiterDemandWeighted orders by unit demand: merged-mode steering
	// serves the element-wise demand sum, split-mode stepping order
	// puts the hungriest core first.
	ArbiterDemandWeighted
)

var arbiterNames = [...]string{ArbiterRoundRobin: "round-robin", ArbiterDemandWeighted: "demand-weighted"}

// String returns the canonical arbiter name.
func (a Arbiter) String() string {
	if a < 0 || int(a) >= len(arbiterNames) {
		return fmt.Sprintf("Arbiter(%d)", int(a))
	}
	return arbiterNames[a]
}

// ParseArbiter resolves an arbiter name; the empty string selects
// ArbiterRoundRobin (the default).
func ParseArbiter(s string) (Arbiter, error) {
	switch s {
	case "", "round-robin":
		return ArbiterRoundRobin, nil
	case "demand-weighted":
		return ArbiterDemandWeighted, nil
	}
	return 0, fmt.Errorf("cluster: unknown arbiter %q (known: round-robin, demand-weighted)", s)
}

// Machine steps K cores in lockstep against the shared fabric.
type Machine struct {
	cores   []*repro.Machine
	procs   []*cpu.Processor
	fabrics []*rfu.Fabric

	mode    Mode
	pending Mode
	arb     Arbiter

	// lease holds each core's owned-slot mask: the full fabric for the
	// master in merged mode, the private partition in split mode.
	lease [MaxCores]uint8

	cycle        int
	switchEvery  int
	modeSwitches int

	// demand caches each core's latest manager-input vector (recorded
	// by the manage hook); the arbiter reads it for demand-weighted
	// ordering and merged-mode demand combining.
	demand [MaxCores]arch.Counts
	order  [MaxCores]int // split-mode stepping order scratch

	probes [MaxCores]*telemetry.Probe
	spans  [MaxCores]*span.Recorder
}

// New builds a cluster of opt.Params.Cores cores (minimum 1), each
// running its own copy of prog. Mode and arbiter come from
// opt.Params.ClusterMode / ClusterArbiter; invalid values panic, so
// validate request-supplied parameters with Params.Validate first.
func New(prog repro.Program, opt repro.Options) *Machine {
	k := opt.Params.Cores
	if k < 1 {
		k = 1
	}
	progs := make([]repro.Program, k)
	for i := range progs {
		progs[i] = prog
	}
	return NewMulti(progs, opt)
}

// NewMulti is New with one program per core (heterogeneous workloads);
// the core count is len(progs), which must agree with opt.Params.Cores
// when that is set.
func NewMulti(progs []repro.Program, opt repro.Options) *Machine {
	k := len(progs)
	if k < 1 || k > MaxCores {
		panic(fmt.Sprintf("cluster: core count %d out of range [1, %d]", k, MaxCores))
	}
	if opt.Params.Cores > 1 && opt.Params.Cores != k {
		panic(fmt.Sprintf("cluster: %d programs for Params.Cores=%d", k, opt.Params.Cores))
	}
	mode, err := ParseMode(opt.Params.ClusterMode)
	if err != nil {
		panic(err)
	}
	arb, err := ParseArbiter(opt.Params.ClusterArbiter)
	if err != nil {
		panic(err)
	}
	c := &Machine{mode: mode, pending: mode, arb: arb}
	for i := 0; i < k; i++ {
		o := opt
		// Each core draws its own fault stream: in split mode the
		// injectors cover disjoint partitions (external-lease immunity
		// skips foreign slots after the draw, keeping every stream a
		// pure function of seed), in merged mode only the master's
		// machinery runs — mirrors pause their streams. Core 0 keeps
		// the caller's seed so K=1 reproduces the scalar run exactly.
		o.Params.FaultSeed = opt.Params.FaultSeed + int64(i)
		m := repro.NewMachine(progs[i], o)
		c.cores = append(c.cores, m)
		c.procs = append(c.procs, m.Processor())
		c.fabrics = append(c.fabrics, m.Processor().Fabric())
	}
	for i := range c.procs {
		i := i
		c.procs[i].SetManageHook(func(required arch.Counts) (arch.Counts, bool) {
			return c.manage(i, required)
		})
	}
	c.applyMode(mode)
	return c
}

// manage intercepts core i's demand vector on its way to the steering
// manager (installed as the cpu manage hook). Every core's latest
// demand is recorded for the arbiter; in split mode each core then
// steers its own partition, while in merged mode only the master
// steers — against the arbiter-combined cross-core demand.
func (c *Machine) manage(i int, required arch.Counts) (arch.Counts, bool) {
	c.demand[i] = required
	if c.mode == ModeSplit {
		return required, true
	}
	if i != 0 {
		return required, false // mirrors never steer the shared fabric
	}
	k := len(c.procs)
	switch c.arb {
	case ArbiterDemandWeighted:
		// Element-wise demand sum. No clamp: the selection unit's
		// packed key clamps to its 3-bit range itself, and for K=1 the
		// sum is the untouched scalar vector.
		sum := required
		for j := 1; j < k; j++ {
			sum = sum.Add(c.demand[j])
		}
		return sum, true
	default:
		// Round-robin: serve one core's demand per cycle. The master's
		// own vector is current; the others' are one cycle stale (they
		// step after the master).
		return c.demand[c.cycle%k], true
	}
}

// applyMode installs the fabric-sharing contract for mode m: mirror
// wiring and combined-demand steering for merged, leases and shared-bus
// accounting for split. Callers ensure every fabric is quiescent.
func (c *Machine) applyMode(m Mode) {
	k := len(c.procs)
	c.mode, c.pending = m, m
	c.lease = [MaxCores]uint8{}
	switch m {
	case ModeMerged:
		c.lease[0] = allSlots
		master := c.fabrics[0]
		master.SetExternalMasks(0, 0)
		master.SetExternalBusLoad(nil)
		// Repairs, salvage and steering rewrites on the shared fabric
		// wait for every core's in-flight execution to drain, not just
		// the master's.
		master.SetExternalSlotBusy(c.mirrorBusy)
		unavail, dead := master.HealthMasks()
		for j := 1; j < k; j++ {
			f := c.fabrics[j]
			f.SetMirror(true)
			f.SetExternalBusLoad(nil)
			f.SetExternalSlotBusy(nil)
			f.MirrorFrom(master)
			f.SetExternalMasks(unavail, dead)
		}
	case ModeSplit:
		// Contiguous partition: NumRFUSlots/K slots each, the first
		// NumRFUSlots%K cores one more. Foreign slots are leased out as
		// both unavailable and dead — the steering manager then treats
		// the missing capacity as permanent, exactly like retired
		// slots, and discounts basis units crossing the boundary.
		share, rem := arch.NumRFUSlots/k, arch.NumRFUSlots%k
		lo := 0
		for j := 0; j < k; j++ {
			n := share
			if j < rem {
				n++
			}
			mask := uint8((1<<n - 1) << lo)
			lo += n
			c.lease[j] = mask
			f := c.fabrics[j]
			f.SetMirror(false)
			f.SetExternalSlotBusy(nil)
			f.SetExternalBusLoad(c.busLoadExcept(j))
			foreign := allSlots &^ mask
			f.SetExternalMasks(foreign, foreign)
		}
	}
}

// mirrorBusy reports whether any non-master core is executing on slot
// s — the master fabric's external drain check in merged mode.
func (c *Machine) mirrorBusy(s int) bool {
	for j := 1; j < len(c.fabrics); j++ {
		if c.fabrics[j].SpanBusy(s) {
			return true
		}
	}
	return false
}

// busLoadExcept returns the shared-bus occupancy contributed by every
// fabric except core j's — split mode's cross-core bus extension.
func (c *Machine) busLoadExcept(j int) func() int {
	return func() int {
		n := 0
		for i := range c.fabrics {
			if i != j {
				n += c.fabrics[i].ActiveSpans()
			}
		}
		return n
	}
}

// RequestMode asks the cluster to switch fabric-sharing modes at the
// next phase boundary — the first cycle where every fabric is
// quiescent, so configurations never change under an executing span.
// Requesting the current mode cancels a pending switch.
func (c *Machine) RequestMode(m Mode) { c.pending = m }

// SetSwitchEvery toggles merged/split every n cluster cycles (0, the
// default, never auto-switches). Each toggle still waits for the next
// quiescent boundary, so the effective phase lengths stretch with
// fabric activity.
func (c *Machine) SetSwitchEvery(n int) {
	if n < 0 {
		panic("cluster: negative switch period")
	}
	c.switchEvery = n
}

// fabricsIdle reports whether every core's fabric is quiescent (no RFU
// execution, no reconfiguration in flight). FFUs may keep executing —
// they are never reconfigured or shared.
func (c *Machine) fabricsIdle() bool {
	for _, f := range c.fabrics {
		if !f.Idle() {
			return false
		}
	}
	return true
}

// Step advances the cluster one cycle: pending mode switches apply at
// quiescent boundaries, then the cores step in arbiter order — master
// first in merged mode (mirrors refresh from its post-cycle state), or
// the rotation/demand order in split mode, where earlier cores see
// less configuration-bus contention.
func (c *Machine) Step() {
	if c.switchEvery > 0 && c.cycle > 0 && c.cycle%c.switchEvery == 0 && c.pending == c.mode {
		if c.mode == ModeMerged {
			c.pending = ModeSplit
		} else {
			c.pending = ModeMerged
		}
	}
	if c.pending != c.mode && c.fabricsIdle() {
		c.applyMode(c.pending)
		c.modeSwitches++
	}
	c.cycle++
	if c.mode == ModeMerged {
		// Master first: mirrors then refresh from its post-cycle fabric
		// state, so a sibling can never acquire a span the master is
		// mid-rewrite on. A halted master freezes the shared layout;
		// still-running mirrors execute on the frozen configuration.
		if !c.procs[0].Halted() {
			c.procs[0].Cycle()
		}
		master := c.fabrics[0]
		unavail, dead := master.HealthMasks()
		for j := 1; j < len(c.procs); j++ {
			if c.procs[j].Halted() {
				continue
			}
			c.fabrics[j].MirrorFrom(master)
			c.fabrics[j].SetExternalMasks(unavail, dead)
			c.procs[j].Cycle()
		}
		return
	}
	n := c.stepOrder()
	for _, j := range c.order[:n] {
		if !c.procs[j].Halted() {
			c.procs[j].Cycle()
		}
	}
}

// stepOrder fills c.order with this cycle's split-mode stepping order
// and returns the core count. Allocation-free: fixed scratch plus an
// insertion sort over at most MaxCores entries.
func (c *Machine) stepOrder() int {
	k := len(c.procs)
	if c.arb == ArbiterRoundRobin {
		start := (c.cycle - 1) % k
		for i := 0; i < k; i++ {
			j := start + i
			if j >= k {
				j -= k
			}
			c.order[i] = j
		}
		return k
	}
	// Demand-weighted: descending total demand from the last recorded
	// vectors (uniformly one cycle stale), ties by core index.
	total := func(i int) int {
		t := 0
		for _, v := range c.demand[i] {
			t += v
		}
		return t
	}
	for i := 0; i < k; i++ {
		c.order[i] = i
	}
	for i := 1; i < k; i++ {
		v := c.order[i]
		tv := total(v)
		j := i - 1
		for j >= 0 && total(c.order[j]) < tv {
			c.order[j+1] = c.order[j]
			j--
		}
		c.order[j+1] = v
	}
	return k
}

// Halted reports whether every core's program has retired its HALT.
func (c *Machine) Halted() bool {
	for _, p := range c.procs {
		if !p.Halted() {
			return false
		}
	}
	return true
}

// Run executes until every core halts or maxCycles cluster cycles
// elapse; see RunContext.
func (c *Machine) Run(maxCycles int) (Stats, error) {
	return c.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cancellation, polled every
// cpu.CtxCheckInterval cluster cycles like the scalar machine. On
// budget exhaustion the error wraps cpu.ErrCycleLimit; the statistics
// so far are returned either way, and telemetry probes are flushed.
func (c *Machine) RunContext(ctx context.Context, maxCycles int) (Stats, error) {
	var err error
	for !c.Halted() && c.cycle < maxCycles {
		if err = ctx.Err(); err != nil {
			break
		}
		limit := c.cycle + cpu.CtxCheckInterval
		if limit > maxCycles {
			limit = maxCycles
		}
		for !c.Halted() && c.cycle < limit {
			c.Step()
		}
	}
	for i, m := range c.cores {
		if ferr := m.FlushTelemetry(); err == nil && ferr != nil {
			err = fmt.Errorf("telemetry (core %d): %w", i, ferr)
		}
		if r := c.spans[i]; r != nil && c.procs[i].Halted() {
			r.Finish()
		}
	}
	if err == nil && !c.Halted() {
		err = fmt.Errorf("cluster: not all %d cores halted within %d cycles: %w",
			len(c.procs), maxCycles, cpu.ErrCycleLimit)
	}
	return c.Stats(), err
}

// Cores returns the cluster width.
func (c *Machine) Cores() int { return len(c.cores) }

// Core returns core k's machine, for per-core inspection (registers,
// reports, memory).
func (c *Machine) Core(k int) *repro.Machine { return c.cores[k] }

// Mode returns the current fabric-sharing mode.
func (c *Machine) Mode() Mode { return c.mode }

// ModeSwitches counts mode switches applied since construction.
func (c *Machine) ModeSwitches() int { return c.modeSwitches }

// Leases returns the per-core owned-slot masks: the whole fabric for
// the master in merged mode, the private partitions in split mode.
// Safety invariant (pinned by test): the masks are pairwise disjoint
// every cycle — no slot is ever leased to two cores.
func (c *Machine) Leases() []uint8 {
	out := make([]uint8, len(c.cores))
	copy(out, c.lease[:len(c.cores)])
	return out
}
