package cluster

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/cpu"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Stats aggregates a cluster run: the cluster cycle count, the mode
// history, and each core's full scalar statistics.
type Stats struct {
	Cycles       int         `json:"cycles"`
	Cores        []cpu.Stats `json:"cores"`
	Mode         string      `json:"mode"`
	Arbiter      string      `json:"arbiter"`
	ModeSwitches int         `json:"modeSwitches"`
}

// Stats snapshots the cluster state.
func (c *Machine) Stats() Stats {
	s := Stats{
		Cycles:       c.cycle,
		Mode:         c.mode.String(),
		Arbiter:      c.arb.String(),
		ModeSwitches: c.modeSwitches,
	}
	for _, p := range c.procs {
		s.Cores = append(s.Cores, p.Stats())
	}
	return s
}

// AggregateIPC is the cluster's throughput: total instructions retired
// across every core per cluster cycle.
func (s Stats) AggregateIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	total := 0
	for _, cs := range s.Cores {
		total += cs.Retired
	}
	return float64(total) / float64(s.Cycles)
}

// Fairness is Jain's index over the per-core IPCs: 1.0 when every core
// progresses at the same rate, approaching 1/K when one core starves
// the rest. Degenerate inputs (no cores, all-zero IPC) report 1.0 —
// nothing is being shared unfairly.
func (s Stats) Fairness() float64 {
	if len(s.Cores) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, cs := range s.Cores {
		ipc := cs.IPC()
		sum += ipc
		sumSq += ipc * ipc
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(s.Cores)) * sumSq)
}

// EnableTelemetry streams per-core telemetry into one shared exporter,
// every record labelled with its core index. format is "jsonl" or
// "csv" ("prom" renders one registry snapshot and cannot merge K
// registries into one stream — enable it per core instead). Call
// before Run.
func (c *Machine) EnableTelemetry(w io.Writer, format string, interval int) error {
	var exp telemetry.Exporter
	switch format {
	case "jsonl":
		exp = telemetry.NewJSONL(w)
	case "csv":
		exp = telemetry.NewCSV(w)
	default:
		return fmt.Errorf("cluster: unsupported telemetry format %q (want jsonl or csv)", format)
	}
	for k, m := range c.cores {
		p := m.EnableTelemetryExporter(exp, interval)
		p.SetCore(k)
		c.probes[k] = p
	}
	return nil
}

// EnableSpans attaches one span recorder per core, each labelled with
// its core index; RunContext finishes them for halted cores. Export a
// combined trace afterwards with WriteChromeTrace or the recorders'
// own writers. Call before Run.
func (c *Machine) EnableSpans(cfg repro.SpanConfig) []*span.Recorder {
	out := make([]*span.Recorder, len(c.cores))
	for k, m := range c.cores {
		r := m.EnableSpans(cfg)
		r.SetCore(k)
		c.spans[k] = r
		out[k] = r
	}
	return out
}

// WriteChromeTrace renders every enabled core's span trace into one
// Chrome Trace document, each core under its own process lane.
func (c *Machine) WriteChromeTrace(w io.Writer) error {
	return span.WriteChromeTraceMulti(w, c.spans[:len(c.cores)])
}
