package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunOrderAndCompleteness(t *testing.T) {
	got := Run(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if got := Run(0, 4, func(int) int { return 1 }); got != nil {
		t.Errorf("Run(0) = %v", got)
	}
	got := Run(1, 4, func(int) string { return "x" })
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("Run(1) = %v", got)
	}
}

func TestRunDefaultsWorkers(t *testing.T) {
	got := Run(10, 0, func(i int) int { return i })
	for i, v := range got {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestRunActuallyParallel(t *testing.T) {
	var peak, cur atomic.Int32
	gate := make(chan struct{})
	go func() {
		Run(4, 4, func(i int) int {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-gate // hold all workers until everyone arrived
			cur.Add(-1)
			return i
		})
	}()
	// Wait for all four workers to be inside the job.
	for peak.Load() < 4 {
	}
	close(gate)
	if peak.Load() != 4 {
		t.Errorf("peak concurrency = %d, want 4", peak.Load())
	}
}

func TestGridShape(t *testing.T) {
	got := Grid(3, 4, 2, func(r, c int) int { return 10*r + c })
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	for r := range got {
		if len(got[r]) != 4 {
			t.Fatalf("cols = %d", len(got[r]))
		}
		for c := range got[r] {
			if got[r][c] != 10*r+c {
				t.Errorf("grid[%d][%d] = %d", r, c, got[r][c])
			}
		}
	}
}

func TestGridDeterministicAcrossRuns(t *testing.T) {
	f := func() [][]int {
		return Grid(5, 5, 3, func(r, c int) int { return r*c + r + c })
	}
	a, b := f(), f()
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatal("grid not deterministic")
			}
		}
	}
}

func TestRun2PairsResults(t *testing.T) {
	a, b := Run2(6, 3, func(i int) (int, string) {
		return i * i, string(rune('a' + i))
	})
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != i*i || b[i] != string(rune('a'+i)) {
			t.Errorf("pair %d = (%d, %q)", i, a[i], b[i])
		}
	}
	if a, b := Run2(0, 2, func(int) (int, int) { return 0, 0 }); a != nil || b != nil {
		t.Error("Run2(0) not nil")
	}
}

func TestRunContextCancel(t *testing.T) {
	// The first job cancels the context: the submitter stops handing out
	// work, in-flight jobs are waited for, and the call reports
	// context.Canceled alongside the partial results.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	results, err := RunContext(ctx, 100, 2, func(ctx context.Context, i int) int {
		if calls.Add(1) == 1 {
			cancel()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n == 0 || n == 100 {
		t.Errorf("calls = %d, want partial execution", n)
	}
	for i, v := range results {
		if v != 0 && v != i+1 {
			t.Fatalf("results[%d] = %d, want 0 (skipped) or %d", i, v, i+1)
		}
	}
}

func TestRunContextNoCancelMatchesRun(t *testing.T) {
	results, err := RunContext(context.Background(), 50, 4,
		func(_ context.Context, i int) int { return i * 3 })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, v := range results {
		if v != i*3 {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*3)
		}
	}
}
