// Package sweep is a small parallel parameter-sweep harness for the
// experiment grids: it fans a set of independent simulation jobs out over
// a bounded worker pool and returns their results in submission order, so
// experiment tables stay deterministic while wall-clock time drops by the
// core count. Every simulator object is confined to a single worker
// goroutine; only results cross the channel.
package sweep

import (
	"runtime"
	"sync"
)

// Run executes jobs(i) for i in [0, n) on min(workers, n) goroutines and
// returns the results indexed by i. A non-positive workers count uses
// GOMAXPROCS. The job function must be safe to call concurrently for
// different i (each call builds its own machine).
func Run[T any](n, workers int, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// Run2 is Run for jobs with two outputs — typically a scalar result plus
// a per-run time series (e.g. a telemetry sample collection). Both slices
// are indexed by i in submission order.
func Run2[T, U any](n, workers int, job func(i int) (T, U)) ([]T, []U) {
	if n <= 0 {
		return nil, nil
	}
	type pair struct {
		a T
		b U
	}
	flat := Run(n, workers, func(i int) pair {
		a, b := job(i)
		return pair{a, b}
	})
	as := make([]T, n)
	bs := make([]U, n)
	for i, p := range flat {
		as[i], bs[i] = p.a, p.b
	}
	return as, bs
}

// Grid runs a two-dimensional sweep — rows x cols independent jobs — and
// returns results[row][col], again in deterministic order.
func Grid[T any](rows, cols, workers int, job func(row, col int) T) [][]T {
	flat := Run(rows*cols, workers, func(i int) T {
		return job(i/cols, i%cols)
	})
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
