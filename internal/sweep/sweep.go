// Package sweep is a small parallel parameter-sweep harness for the
// experiment grids: it fans a set of independent simulation jobs out over
// a bounded worker pool and returns their results in submission order, so
// experiment tables stay deterministic while wall-clock time drops by the
// core count. Every simulator object is confined to a single worker
// goroutine; only results cross the channel.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Run executes jobs(i) for i in [0, n) on min(workers, n) goroutines and
// returns the results indexed by i. A non-positive workers count uses
// GOMAXPROCS. The job function must be safe to call concurrently for
// different i (each call builds its own machine).
func Run[T any](n, workers int, job func(i int) T) []T {
	results, _ := RunContext(context.Background(), n, workers,
		func(_ context.Context, i int) T { return job(i) })
	return results
}

// RunContext is Run with cancellation: once ctx is cancelled no further
// jobs start, and the call returns the context's error together with the
// results of the jobs that did complete (unstarted slots hold T's zero
// value). The context is also handed to each job, so long-running jobs
// can cut their own run short (e.g. with Machine.RunContext) — in-flight
// jobs are always waited for, never abandoned, keeping every simulator
// object confined to its worker goroutine.
func RunContext[T any](ctx context.Context, n, workers int, job func(ctx context.Context, i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = job(ctx, i)
			}
		}()
	}
submit:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break submit
		}
	}
	close(next)
	wg.Wait()
	return results, ctx.Err()
}

// RunBatch executes n points in lane-width groups for batch-capable
// backends (the lane-parallel wide machine): consecutive points whose
// key(i) matches are chunked into groups of up to laneWidth indices, and
// each group is dispatched to batch as one unit on the worker pool.
// Points with an empty key are ineligible for batching and form
// single-point groups. batch must return one result per index, in index
// order; results come back indexed by point in submission order, so
// experiment tables are laid out exactly as Run would lay them out.
// Groups a cancelled run never started hold zero values.
//
// The grouping is what makes the wide machine routable from sweeps: a
// homogeneous grid (same Params/Policy, seeds varying) yields n/laneWidth
// groups of laneWidth lanes each, while a heterogeneous grid degrades to
// per-point groups with no behaviour change.
func RunBatch[T any](ctx context.Context, n, workers, laneWidth int,
	key func(i int) string, batch func(ctx context.Context, idxs []int) []T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if laneWidth < 1 {
		laneWidth = 1
	}
	var groups [][]int
	for i := 0; i < n; {
		g := []int{i}
		k := key(i)
		j := i + 1
		for k != "" && j < n && len(g) < laneWidth && key(j) == k {
			g = append(g, j)
			j++
		}
		groups = append(groups, g)
		i = j
	}
	out := make([]T, n)
	_, err := RunContext(ctx, len(groups), workers, func(ctx context.Context, gi int) struct{} {
		idxs := groups[gi]
		res := batch(ctx, idxs)
		for j, idx := range idxs {
			if j < len(res) {
				out[idx] = res[j]
			}
		}
		return struct{}{}
	})
	return out, err
}

// Run2 is Run for jobs with two outputs — typically a scalar result plus
// a per-run time series (e.g. a telemetry sample collection). Both slices
// are indexed by i in submission order.
func Run2[T, U any](n, workers int, job func(i int) (T, U)) ([]T, []U) {
	if n <= 0 {
		return nil, nil
	}
	type pair struct {
		a T
		b U
	}
	flat := Run(n, workers, func(i int) pair {
		a, b := job(i)
		return pair{a, b}
	})
	as := make([]T, n)
	bs := make([]U, n)
	for i, p := range flat {
		as[i], bs[i] = p.a, p.b
	}
	return as, bs
}

// Grid runs a two-dimensional sweep — rows x cols independent jobs — and
// returns results[row][col], again in deterministic order.
func Grid[T any](rows, cols, workers int, job func(row, col int) T) [][]T {
	flat := Run(rows*cols, workers, func(i int) T {
		return job(i/cols, i%cols)
	})
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
