// Package sweep is a small parallel parameter-sweep harness for the
// experiment grids: it fans a set of independent simulation jobs out over
// a bounded worker pool and returns their results in submission order, so
// experiment tables stay deterministic while wall-clock time drops by the
// core count. Every simulator object is confined to a single worker
// goroutine; only results cross the channel.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Run executes jobs(i) for i in [0, n) on min(workers, n) goroutines and
// returns the results indexed by i. A non-positive workers count uses
// GOMAXPROCS. The job function must be safe to call concurrently for
// different i (each call builds its own machine).
func Run[T any](n, workers int, job func(i int) T) []T {
	results, _ := RunContext(context.Background(), n, workers,
		func(_ context.Context, i int) T { return job(i) })
	return results
}

// RunContext is Run with cancellation: once ctx is cancelled no further
// jobs start, and the call returns the context's error together with the
// results of the jobs that did complete (unstarted slots hold T's zero
// value). The context is also handed to each job, so long-running jobs
// can cut their own run short (e.g. with Machine.RunContext) — in-flight
// jobs are always waited for, never abandoned, keeping every simulator
// object confined to its worker goroutine.
func RunContext[T any](ctx context.Context, n, workers int, job func(ctx context.Context, i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = job(ctx, i)
			}
		}()
	}
submit:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break submit
		}
	}
	close(next)
	wg.Wait()
	return results, ctx.Err()
}

// Run2 is Run for jobs with two outputs — typically a scalar result plus
// a per-run time series (e.g. a telemetry sample collection). Both slices
// are indexed by i in submission order.
func Run2[T, U any](n, workers int, job func(i int) (T, U)) ([]T, []U) {
	if n <= 0 {
		return nil, nil
	}
	type pair struct {
		a T
		b U
	}
	flat := Run(n, workers, func(i int) pair {
		a, b := job(i)
		return pair{a, b}
	})
	as := make([]T, n)
	bs := make([]U, n)
	for i, p := range flat {
		as[i], bs[i] = p.a, p.b
	}
	return as, bs
}

// Grid runs a two-dimensional sweep — rows x cols independent jobs — and
// returns results[row][col], again in deterministic order.
func Grid[T any](rows, cols, workers int, job func(row, col int) T) [][]T {
	flat := Run(rows*cols, workers, func(i int) T {
		return job(i/cols, i%cols)
	})
	out := make([][]T, rows)
	for r := 0; r < rows; r++ {
		out[r] = flat[r*cols : (r+1)*cols]
	}
	return out
}
