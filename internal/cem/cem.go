// Package cem implements the configuration error metric of §3.1 and
// Figure 3. The metric scores how well a candidate configuration's unit
// mix matches the unit requirements of the instructions waiting in the
// queue: for each unit type the required count is divided —
// approximately, by a barrel shifter — by the candidate's available count,
// and the five quotients are summed by 3-bit adders. Lower is better.
//
// Three forms are provided:
//
//   - Error: the behavioural shifter-approximate metric the selection
//     unit uses (Fig. 3(a)+(c) semantics),
//   - ErrorExact: the "more accurate divider circuit" the paper mentions
//     as a costlier alternative, used for the ablation study,
//   - CircuitError: the gate-level reconstruction of Fig. 3(b) built from
//     package logic primitives, proven equivalent to Error by exhaustive
//     tests.
package cem

import (
	"repro/internal/arch"
	"repro/internal/logic"
)

// Shift returns the Fig. 3(c) shift amount for an availability count: the
// divisor is 4 when at least four units are available (high-order quantity
// bit set), 2 when two or three are (next bit set), and 1 otherwise. The
// count is taken as a 3-bit quantity, as in the hardware.
func Shift(avail int) uint {
	q := uint(avail) & 0x7
	switch {
	case q>>2&1 == 1:
		return 2
	case q>>1&1 == 1:
		return 1
	default:
		return 0
	}
}

// clamp3 folds a count into the 3-bit range the circuit carries.
func clamp3(v int) int {
	if v < 0 {
		return 0
	}
	if v > 7 {
		return 7
	}
	return v
}

// Contribution returns one unit type's term of the error metric: the
// required count divided by the shifter-approximated available count.
func Contribution(required, available int) int {
	return clamp3(required) >> Shift(available)
}

// Error computes the behavioural configuration error metric: the sum over
// unit types of Contribution(required[t], available[t]). With at most
// seven queued instructions the sum fits in three bits (§3.1); the
// returned value is saturated to 7 to match the hardware's width for
// out-of-spec inputs.
func Error(required, available arch.Counts) int {
	sum := 0
	for t := range required {
		sum += Contribution(required[t], available[t])
	}
	return clamp3(sum)
}

// ErrorExact is the precise-divider variant the paper notes could replace
// the shifters "at the expense of increased complexity and latency": each
// term is floor(required/available), with an unavailable type (zero
// units) contributing the full required count, mirroring the shifter
// path's divide-by-1 behaviour.
func ErrorExact(required, available arch.Counts) int {
	sum := 0
	for t := range required {
		req := clamp3(required[t])
		av := available[t]
		if av <= 1 {
			sum += req
		} else {
			sum += req / av
		}
	}
	return clamp3(sum)
}

// ShiftControl derives the two barrel-shifter control bits from a 3-bit
// availability quantity exactly as Fig. 3(c) wires them: s1 is the
// high-order quantity bit; s0 is the next lower-order bit gated off when
// s1 is set.
func ShiftControl(avail int) logic.Bus {
	ctl := make(logic.Bus, 2)
	ShiftControlInto(ctl, avail)
	return ctl
}

// ShiftControlInto writes the two ShiftControl bits into dst (which must
// have length 2) without allocating.
func ShiftControlInto(dst logic.Bus, avail int) {
	var qBits [arch.CountBits]logic.Bit
	q := logic.Bus(qBits[:])
	q.SetUint(uint64(avail) & 0x7)
	dst[0] = logic.And(logic.Not(q[2]), q[1])
	dst[1] = q[2]
}

// CircuitError is the gate-level CEM generator of Fig. 3(b): five barrel
// shifters (one per unit type) whose control inputs come from
// ShiftControl of the availability quantities, feeding a 3-bit five-
// operand saturating adder tree. For the three predefined configurations
// the control inputs are hard-wired constants; for the current
// configuration they are live — both cases route through the same
// network.
func CircuitError(required, available arch.Counts) int {
	// Fixed-size stacks of bits stand in for the freshly allocated buses
	// of the naive formulation; saturating accumulation applied left to
	// right is equivalent to the balanced tree because min(·,7) over
	// non-negative addends is associative in the total.
	var accBits, termBits [arch.CountBits]logic.Bit
	var ctlBits [2]logic.Bit
	acc := logic.Bus(accBits[:])
	term := logic.Bus(termBits[:])
	ctl := logic.Bus(ctlBits[:])
	for t := range required {
		term.SetUint(uint64(clamp3(required[t])))
		ShiftControlInto(ctl, available[t])
		logic.BarrelShiftRightInto(term, term, ctl)
		if t == 0 {
			copy(acc, term)
		} else {
			logic.SaturatingAdderInto(acc, acc, term)
		}
	}
	return int(acc.Uint())
}
