package cem

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
)

// TestShiftTruthTable pins Fig. 3(c): availability >=4 divides by 4,
// availability 2..3 divides by 2, otherwise by 1.
func TestShiftTruthTable(t *testing.T) {
	want := map[int]uint{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 2, 7: 2}
	for avail, s := range want {
		if got := Shift(avail); got != s {
			t.Errorf("Shift(%d) = %d, want %d", avail, got, s)
		}
	}
}

func TestContribution(t *testing.T) {
	cases := []struct{ req, avail, want int }{
		{0, 0, 0},
		{7, 0, 7}, // nothing available: full requirement is unmet
		{7, 1, 7},
		{7, 2, 3},
		{7, 3, 3},
		{7, 4, 1},
		{7, 7, 1},
		{4, 4, 1},
		{3, 2, 1},
		{1, 4, 0},
	}
	for _, c := range cases {
		if got := Contribution(c.req, c.avail); got != c.want {
			t.Errorf("Contribution(%d,%d) = %d, want %d", c.req, c.avail, got, c.want)
		}
	}
}

func TestContributionClampsOutOfSpecInputs(t *testing.T) {
	if got := Contribution(100, 0); got != 7 {
		t.Errorf("Contribution(100,0) = %d, want clamped 7", got)
	}
	if got := Contribution(-3, 0); got != 0 {
		t.Errorf("Contribution(-3,0) = %d, want 0", got)
	}
}

// TestErrorZeroWhenWellMatched: a configuration offering at least 4x the
// per-type requirement of 1 instruction drives every term to zero... the
// floor division by 4 zeroes requirements up to 3.
func TestErrorSmallRequirementsVanish(t *testing.T) {
	req := arch.Counts{3, 0, 3, 0, 0}
	avail := arch.Counts{4, 4, 4, 4, 4}
	if got := Error(req, avail); got != 0 {
		t.Errorf("Error = %d, want 0", got)
	}
}

func TestErrorFullMismatch(t *testing.T) {
	// Seven FP multiplies against a machine with no FPMDU at all.
	req := arch.Counts{0, 0, 0, 0, 7}
	avail := arch.Counts{7, 7, 7, 7, 0}
	if got := Error(req, avail); got != 7 {
		t.Errorf("Error = %d, want 7", got)
	}
}

// TestErrorRanksConfigurationsSensibly: the steering property — an
// FP-heavy queue must score the floating configuration better than the
// integer configuration.
func TestErrorRanksConfigurationsSensibly(t *testing.T) {
	basis := config.DefaultBasis()
	ffu := config.FFUCounts()
	fpQueue := arch.Counts{1, 0, 1, 3, 2}  // mostly FP
	intQueue := arch.Counts{4, 1, 2, 0, 0} // mostly integer

	intAvail := basis[0].Counts().Add(ffu)
	fpAvail := basis[2].Counts().Add(ffu)

	if Error(fpQueue, fpAvail) >= Error(fpQueue, intAvail) {
		t.Errorf("FP queue: floating config error %d not below integer config error %d",
			Error(fpQueue, fpAvail), Error(fpQueue, intAvail))
	}
	if Error(intQueue, intAvail) >= Error(intQueue, fpAvail) {
		t.Errorf("integer queue: integer config error %d not below floating config error %d",
			Error(intQueue, intAvail), Error(intQueue, fpAvail))
	}
}

// TestErrorBoundedByQueueSize: with a legal queue (total required <= 7)
// the metric never exceeds 7 even before saturation, because each term is
// at most its requirement.
func TestErrorBoundedByQueueSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		var req, avail arch.Counts
		remaining := arch.QueueSize
		for t := range req {
			v := rng.Intn(remaining + 1)
			req[t] = v
			remaining -= v
			avail[t] = rng.Intn(8)
		}
		if got := Error(req, avail); got > arch.QueueSize {
			t.Fatalf("Error(%v,%v) = %d exceeds queue size", req, avail, got)
		}
	}
}

// TestErrorMonotoneInAvailability: adding available units of some type
// never increases the error.
func TestErrorMonotoneInAvailability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		var req, avail arch.Counts
		for i := range req {
			req[i] = rng.Intn(8)
			avail[i] = rng.Intn(7)
		}
		before := Error(req, avail)
		ty := rng.Intn(arch.NumUnitTypes)
		avail[ty]++
		after := Error(req, avail)
		if after > before {
			t.Fatalf("error rose from %d to %d when %v availability grew (req=%v avail=%v)",
				before, after, arch.UnitType(ty), req, avail)
		}
	}
}

// TestExactDividerAtLeastAsStrict: for a single type the exact divider's
// term floor(req/avail) is never larger than the shifter term, because
// the shifter divides by a power of two <= avail. Summed, exact <=
// approximate.
func TestExactNeverAboveApproximate(t *testing.T) {
	for r := 0; r < 8; r++ {
		for a := 0; a < 8; a++ {
			req := arch.Counts{r, 0, 0, 0, 0}
			avail := arch.Counts{a, 7, 7, 7, 7}
			if e, x := Error(req, avail), ErrorExact(req, avail); x > e {
				t.Errorf("req=%d avail=%d: exact %d > approx %d", r, a, x, e)
			}
		}
	}
}

func TestErrorExactSpotValues(t *testing.T) {
	cases := []struct {
		req, avail arch.Counts
		want       int
	}{
		{arch.Counts{6, 0, 0, 0, 0}, arch.Counts{3, 0, 0, 0, 0}, 2}, // 6/3
		{arch.Counts{7, 0, 0, 0, 0}, arch.Counts{5, 0, 0, 0, 0}, 1}, // 7/5
		{arch.Counts{5, 0, 0, 0, 0}, arch.Counts{0, 0, 0, 0, 0}, 5}, // nothing available
		{arch.Counts{5, 0, 0, 0, 0}, arch.Counts{1, 0, 0, 0, 0}, 5}, // one unit: serialized
	}
	for _, c := range cases {
		if got := ErrorExact(c.req, c.avail); got != c.want {
			t.Errorf("ErrorExact(%v,%v) = %d, want %d", c.req, c.avail, got, c.want)
		}
	}
}

// TestShiftControlMatchesShift proves the Fig. 3(c) gate wiring equals
// the behavioural shift amount for all 3-bit quantities.
func TestShiftControlMatchesShift(t *testing.T) {
	for q := 0; q < 8; q++ {
		if got := uint(ShiftControl(q).Uint()); got != Shift(q) {
			t.Errorf("ShiftControl(%d) = %d, want %d", q, got, Shift(q))
		}
	}
}

// TestCEMCircuitEquivalence proves the gate-level Fig. 3(b) network
// equals the behavioural metric. Per-type inputs are only 3 bits each, so
// the per-type path is checked exhaustively; the summed path is checked
// over randomized full count vectors.
func TestCEMCircuitEquivalence(t *testing.T) {
	// Per-type exhaustive: isolate one type.
	for r := 0; r < 8; r++ {
		for a := 0; a < 8; a++ {
			req := arch.Counts{0, 0, r, 0, 0}
			avail := arch.Counts{7, 7, a, 7, 7}
			if got, want := CircuitError(req, avail), Error(req, avail); got != want {
				t.Fatalf("single-type req=%d avail=%d: circuit %d != behaviour %d", r, a, got, want)
			}
		}
	}
	// Randomised full vectors (legal queue totals so no saturation
	// ambiguity, then unrestricted totals to check saturation too).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20000; trial++ {
		var req, avail arch.Counts
		for i := range req {
			req[i] = rng.Intn(8)
			avail[i] = rng.Intn(8)
		}
		got, want := CircuitError(req, avail), Error(req, avail)
		// When the true sum exceeds 7 both sides saturate, but the
		// circuit's tree may saturate earlier at intermediate stages;
		// both then pin to 7, so equality still holds.
		if got != want {
			t.Fatalf("req=%v avail=%v: circuit %d != behaviour %d", req, avail, got, want)
		}
	}
}

// TestHardwiredShiftEqualsLiveShift: the predefined configurations'
// hard-wired divisors must produce the same result as routing their
// static counts through the live Fig. 3(c) control logic — the property
// that lets one CEM design serve both the static and the current
// configuration.
func TestHardwiredShiftEqualsLiveShift(t *testing.T) {
	basis := config.DefaultBasis()
	ffu := config.FFUCounts()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 1000; trial++ {
		var req arch.Counts
		for i := range req {
			req[i] = rng.Intn(8)
		}
		for _, cfg := range basis {
			avail := cfg.Counts().Add(ffu)
			// "Hard-wired": precompute shifts, apply manually.
			sum := 0
			for t := range req {
				v := req[t]
				if v > 7 {
					v = 7
				}
				sum += v >> Shift(avail[t])
			}
			if sum > 7 {
				sum = 7
			}
			if got := Error(req, avail); got != sum {
				t.Fatalf("config %s: live %d != hardwired %d", cfg.Name, got, sum)
			}
		}
	}
}

// TestApproximationGapBounded is the property behind trusting the
// barrel-shifter CEM at all: over the full 3-bit per-term space the
// shifter term is never below the exact quotient (it divides by a power
// of two <= avail) and overshoots it by at most 1 — so a 5-term sum can
// misrank configurations by at most a handful of error units, never
// wildly.
func TestApproximationGapBounded(t *testing.T) {
	for req := 0; req < 8; req++ {
		for avail := 0; avail < 8; avail++ {
			approx := Contribution(req, avail)
			exact := req
			if avail > 1 {
				exact = req / avail
			}
			gap := approx - exact
			if gap < 0 || gap > 1 {
				t.Errorf("req=%d avail=%d: approx %d, exact %d, gap %d outside [0,1]",
					req, avail, approx, exact, gap)
			}
		}
	}
}

// TestErrorExactMatchesReferenceMath pins ErrorExact to independent
// integer math over the full multi-type space of legal demand vectors
// (sum <= QueueSize) against every 3-bit availability pattern on a
// fixed-stride sample — exhaustive in the demand dimension, dense in
// the availability one.
func TestErrorExactMatchesReferenceMath(t *testing.T) {
	ref := func(required, available arch.Counts) int {
		sum := 0
		for ty := range required {
			r, a := required[ty], available[ty]
			if r > 7 {
				r = 7
			}
			if r < 0 {
				r = 0
			}
			switch {
			case a <= 1:
				sum += r
			default:
				sum += r / a
			}
		}
		if sum > 7 {
			sum = 7
		}
		return sum
	}
	var walk func(ty, left int, req arch.Counts)
	walk = func(ty, left int, req arch.Counts) {
		if ty == arch.NumUnitTypes {
			// Availability patterns: all-equal levels plus a mixed ramp,
			// shifted through every rotation.
			for level := 0; level < 8; level++ {
				avail := arch.Counts{level, level, level, level, level}
				if got, want := ErrorExact(req, avail), ref(req, avail); got != want {
					t.Fatalf("ErrorExact(%v,%v) = %d, want %d", req, avail, got, want)
				}
				for rot := 0; rot < arch.NumUnitTypes; rot++ {
					var mixed arch.Counts
					for i := range mixed {
						mixed[i] = (i + rot + level) % 8
					}
					if got, want := ErrorExact(req, mixed), ref(req, mixed); got != want {
						t.Fatalf("ErrorExact(%v,%v) = %d, want %d", req, mixed, got, want)
					}
				}
			}
			return
		}
		for n := 0; n <= left; n++ {
			req[ty] = n
			walk(ty+1, left-n, req)
		}
	}
	walk(0, arch.QueueSize, arch.Counts{})
}
