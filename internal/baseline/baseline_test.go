package baseline

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rfu"
)

func fpDemand() arch.Counts {
	return core.EncodeRequirements([]arch.UnitType{
		arch.FPALU, arch.FPALU, arch.FPMDU, arch.FPMDU, arch.LSU,
	})
}

func intDemand() arch.Counts {
	return core.EncodeRequirements([]arch.UnitType{
		arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntMDU,
	})
}

func TestSteeringLoadsMatchingConfiguration(t *testing.T) {
	f := rfu.New(0)
	s := NewSteering(f)
	s.Manage(fpDemand())
	if f.Allocation().Slots != config.DefaultBasis()[2].Layout {
		t.Errorf("fabric = %v, want floating layout", f.Allocation().Slots)
	}
}

func TestStaticNeverReconfigures(t *testing.T) {
	f := rfu.New(0)
	f.Install(config.DefaultBasis()[0])
	var s Static
	for i := 0; i < 100; i++ {
		s.Manage(fpDemand())
	}
	if f.Reconfigurations() != 0 {
		t.Error("static policy reconfigured")
	}
	if f.Allocation().Slots != config.DefaultBasis()[0].Layout {
		t.Error("static layout changed")
	}
}

func TestFullReconfigSwapsWholeFabricWhenIdle(t *testing.T) {
	f := rfu.New(0)
	p := NewFullReconfig(f)
	p.Manage(intDemand())
	if f.Allocation().Slots != config.DefaultBasis()[0].Layout {
		t.Fatalf("fabric = %v, want integer layout", f.Allocation().Slots)
	}
	if p.Swaps != 1 {
		t.Errorf("Swaps = %d, want 1", p.Swaps)
	}
	p.Manage(fpDemand())
	if f.Allocation().Slots != config.DefaultBasis()[2].Layout {
		t.Errorf("fabric = %v, want floating layout", f.Allocation().Slots)
	}
}

// TestFullReconfigBlocksOnBusyFabric pins the contrast with steering: a
// single busy RFU prevents the whole swap.
func TestFullReconfigBlocksOnBusyFabric(t *testing.T) {
	f := rfu.New(0)
	p := NewFullReconfig(f)
	p.Manage(intDemand()) // load integer layout
	// Busy one RFU IntALU.
	f.Acquire(arch.IntALU, 10) // FFU
	ref, _ := f.Acquire(arch.IntALU, 10)
	if ref.FFU {
		t.Fatal("setup: expected RFU")
	}
	before := f.Allocation().Slots
	p.Manage(fpDemand())
	if f.Allocation().Slots != before {
		t.Error("full-reconfig policy changed a busy fabric")
	}
	if p.Blocked == 0 {
		t.Error("blocked swap not counted")
	}
	if p.Swaps != 1 {
		t.Errorf("Swaps = %d, want still 1", p.Swaps)
	}
}

// TestFullReconfigStreamsOverNarrowBus pins the regression the fuzzer
// caught: with a width-1 configuration bus a whole-fabric swap must
// stream spans across cycles instead of panicking, and must still
// complete exactly once.
func TestFullReconfigStreamsOverNarrowBus(t *testing.T) {
	f := rfu.New(2)
	f.SetConfigBusWidth(1)
	p := NewFullReconfig(f)
	for cycle := 0; cycle < 100 && p.Swaps == 0; cycle++ {
		p.Manage(intDemand())
		f.Tick()
	}
	if f.Allocation().Slots != config.DefaultBasis()[0].Layout {
		t.Fatalf("swap never completed over the narrow bus: %v", f.Allocation().Slots)
	}
	if p.Swaps != 1 {
		t.Errorf("Swaps = %d, want exactly 1 completed swap", p.Swaps)
	}
	// Selection stays frozen mid-swap: switch demand to FP while a new
	// swap is in flight and check the integer target still completes
	// before any floating span appears.
	g := rfu.New(4)
	g.SetConfigBusWidth(1)
	q := NewFullReconfig(g)
	q.Manage(intDemand()) // swap begins
	for cycle := 0; cycle < 200 && q.Swaps == 0; cycle++ {
		q.Manage(fpDemand()) // demand flips mid-swap
		g.Tick()
	}
	if q.Swaps != 1 {
		t.Fatalf("in-flight swap abandoned: swaps=%d", q.Swaps)
	}
	if g.Allocation().Slots != config.DefaultBasis()[0].Layout {
		t.Errorf("mid-swap demand change corrupted the target: %v", g.Allocation().Slots)
	}
}

func TestOracleStepsWithExactMetric(t *testing.T) {
	f := rfu.New(1)
	o := NewOracle(f)
	o.Manage(fpDemand())
	f.Tick()
	if f.Allocation().Slots != config.DefaultBasis()[2].Layout {
		t.Errorf("oracle fabric = %v, want floating layout", f.Allocation().Slots)
	}
}

func TestRandomReconfiguresOnPeriod(t *testing.T) {
	f := rfu.New(0)
	r := NewRandom(f, 7)
	r.Period = 10
	for i := 0; i < 9; i++ {
		r.Manage(arch.Counts{})
	}
	if f.Reconfigurations() != 0 {
		t.Error("random policy reconfigured before its period")
	}
	r.Manage(arch.Counts{})
	if f.Reconfigurations() == 0 {
		t.Error("random policy never reconfigured at its period")
	}
	// The loaded layout is one of the basis configurations.
	slots := f.Allocation().Slots
	found := false
	for _, cfg := range config.DefaultBasis() {
		if slots == cfg.Layout {
			found = true
		}
	}
	if !found {
		t.Errorf("random layout %v matches no basis configuration", slots)
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	run := func(seed int64) [arch.NumRFUSlots]arch.Encoding {
		f := rfu.New(0)
		r := NewRandom(f, seed)
		r.Period = 1
		for i := 0; i < 50; i++ {
			r.Manage(arch.Counts{})
		}
		return f.Allocation().Slots
	}
	if run(3) != run(3) {
		t.Error("same seed produced different fabrics")
	}
}
