// Package baseline provides the configuration-management strategies the
// steering manager is compared against in the experiments:
//
//   - Steering: the paper's manager (package core) adapted to the
//     processor's Policy interface;
//   - Static: never reconfigures — a conventional fixed-unit superscalar
//     whose RFU contents are installed before time starts;
//   - FullReconfig: the predecessor approach of reference [7], which
//     swaps whole configurations and therefore must wait for the entire
//     fabric to drain before reconfiguring;
//   - Oracle: an idealised upper bound that scores candidates with the
//     exact divider and is intended to run on a zero-latency fabric;
//   - Random: a control that loads a random steering configuration at a
//     fixed period.
package baseline

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rfu"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Steering adapts the paper's configuration manager to cpu.Manager.
type Steering struct {
	M *core.Manager
}

// NewSteering builds the paper's steering policy over a fabric with the
// default basis.
func NewSteering(fabric *rfu.Fabric) *Steering {
	return NewSteeringBasis(fabric, config.DefaultBasis())
}

// NewSteeringBasis builds the steering policy with a custom basis.
func NewSteeringBasis(fabric *rfu.Fabric, basis [3]config.Configuration) *Steering {
	return &Steering{M: core.NewManager(fabric, basis)}
}

// Manage runs one selection/load cycle of the steering manager.
func (s *Steering) Manage(required arch.Counts) { s.M.Step(required) }

// SetTelemetry forwards a telemetry probe to the manager.
func (s *Steering) SetTelemetry(p *telemetry.Probe) { s.M.SetTelemetry(p) }

// SetSpans forwards a span recorder to the manager so steering-cache
// flush epochs are recorded.
func (s *Steering) SetSpans(r *span.Recorder) { s.M.SetSpans(r) }

// Static is the no-reconfiguration baseline; the machine keeps whatever
// the fabric was preloaded with (see rfu.Fabric.Install).
type Static struct{}

// Manage does nothing.
func (Static) Manage(arch.Counts) {}

// FullReconfig models the architecture of reference [7] without partial
// reconfiguration: a chosen configuration is loaded in one piece, which
// requires every reconfigurable slot to be idle, and replaces the whole
// fabric.
type FullReconfig struct {
	fabric *rfu.Fabric
	m      *core.Manager
	// pending is the configuration currently being swapped in. A swap
	// begins only on a drained fabric but its spans may stream over
	// several cycles when the configuration bus is narrow; selection is
	// frozen until the swap completes.
	pending *config.Configuration

	// Swaps counts whole-fabric reconfigurations completed.
	Swaps int
	// Blocked counts cycles a wanted swap waited for the fabric to
	// drain.
	Blocked int

	probe *telemetry.Probe

	// unitsScratch is the reusable placement buffer for stream.
	unitsScratch []config.PlacedUnit
}

// NewFullReconfig builds the whole-configuration-swap policy with the
// default basis.
func NewFullReconfig(fabric *rfu.Fabric) *FullReconfig {
	return NewFullReconfigBasis(fabric, config.DefaultBasis())
}

// NewFullReconfigBasis builds the whole-configuration-swap policy with a
// custom basis.
func NewFullReconfigBasis(fabric *rfu.Fabric, basis [3]config.Configuration) *FullReconfig {
	return &FullReconfig{fabric: fabric, m: core.NewManager(fabric, basis)}
}

// Manage selects like the steering manager but loads atomically: a swap
// starts only when a predefined configuration wins and the fabric is
// fully drained, then the whole layout is rewritten — streamed across
// cycles when the configuration bus limits concurrent spans.
func (f *FullReconfig) Manage(required arch.Counts) {
	if f.pending != nil {
		f.stream()
		return
	}
	sel := f.m.Select(required)
	if f.probe != nil {
		f.probe.Selection(sel.Errors, sel.Choice)
	}
	if sel.Current() {
		return
	}
	if !f.fabric.Idle() {
		f.Blocked++
		return
	}
	target := f.m.Basis()[sel.Choice-1]
	if f.fabric.Allocation().Slots == target.Layout {
		return
	}
	if f.probe != nil {
		diff := f.fabric.Allocation().Distance(target)
		f.probe.ConfigSwitch(telemetry.Decision{
			From:            classifyAllocation(f.fabric, f.m.Basis()),
			To:              target.Name,
			Choice:          sel.Choice,
			DiffSlots:       diff,
			SlotsLoading:    diff,
			StallSlotCycles: diff * f.fabric.ReconfigLatency(),
		})
	}
	f.pending = &target
	f.stream()
}

// SetTelemetry installs a telemetry probe: selections and whole-fabric
// swap decisions are logged (nil disables).
func (f *FullReconfig) SetTelemetry(p *telemetry.Probe) { f.probe = p }

// classifyAllocation names the live allocation for decision records: a
// basis configuration's name, "(empty)", or "hybrid".
func classifyAllocation(fabric *rfu.Fabric, basis [3]config.Configuration) string {
	slots := fabric.Allocation().Slots
	empty := true
	for _, e := range slots {
		if e != arch.EncEmpty {
			empty = false
			break
		}
	}
	if empty {
		return "(empty)"
	}
	for _, cfg := range basis {
		if slots == cfg.Layout {
			return cfg.Name
		}
	}
	return "hybrid"
}

// stream pushes the pending swap's remaining spans through the
// configuration bus, completing the swap when the layout matches.
func (f *FullReconfig) stream() {
	target := *f.pending
	f.unitsScratch = target.AppendUnits(f.unitsScratch[:0])
	for _, u := range f.unitsScratch {
		if f.fabric.Allocation().Slots[u.Slot] == arch.Encode(u.Type) {
			continue
		}
		if f.fabric.CanReconfigure(u.Type, u.Slot) {
			f.fabric.Reconfigure(u.Type, u.Slot)
		}
	}
	if f.fabric.Allocation().Slots == target.Layout {
		f.pending = nil
		f.Swaps++
	}
}

// Oracle is the idealised selector: exact-divider error metrics over the
// same basis, intended for a zero-reconfiguration-latency fabric, giving
// an upper bound on what configuration matching can achieve.
type Oracle struct {
	m *core.Manager
}

// NewOracle builds the oracle policy.
func NewOracle(fabric *rfu.Fabric) *Oracle {
	return NewOracleBasis(fabric, config.DefaultBasis())
}

// NewOracleBasis builds the oracle policy with a custom basis.
func NewOracleBasis(fabric *rfu.Fabric, basis [3]config.Configuration) *Oracle {
	m := core.NewManager(fabric, basis)
	m.ExactCEM = true
	return &Oracle{m: m}
}

// Manage runs one exact-metric selection/load cycle.
func (o *Oracle) Manage(required arch.Counts) { o.m.Step(required) }

// SetTelemetry forwards a telemetry probe to the manager.
func (o *Oracle) SetTelemetry(p *telemetry.Probe) { o.m.SetTelemetry(p) }

// SetSpans forwards a span recorder to the manager.
func (o *Oracle) SetSpans(r *span.Recorder) { o.m.SetSpans(r) }

// Random loads a random steering configuration every Period cycles — the
// control showing that steering's wins come from matching, not from
// reconfiguration activity itself.
type Random struct {
	fabric *rfu.Fabric
	basis  [3]config.Configuration
	rng    *rand.Rand
	// Period is the number of cycles between random loads (default 64).
	Period int

	cycle        int
	unitsScratch []config.PlacedUnit
}

// NewRandom builds the random policy with a deterministic seed.
func NewRandom(fabric *rfu.Fabric, seed int64) *Random {
	return &Random{
		fabric: fabric,
		basis:  config.DefaultBasis(),
		rng:    rand.New(rand.NewSource(seed)),
		Period: 64,
	}
}

// Manage loads a random configuration when the period elapses,
// reconfiguring whatever spans are idle (partial, like steering, but
// without looking at the queue).
func (r *Random) Manage(arch.Counts) {
	r.cycle++
	if r.Period <= 0 || r.cycle%r.Period != 0 {
		return
	}
	target := r.basis[r.rng.Intn(len(r.basis))]
	r.unitsScratch = target.AppendUnits(r.unitsScratch[:0])
	for _, u := range r.unitsScratch {
		if r.fabric.Allocation().Slots[u.Slot] == arch.Encode(u.Type) {
			continue
		}
		if r.fabric.CanReconfigure(u.Type, u.Slot) {
			r.fabric.Reconfigure(u.Type, u.Slot)
		}
	}
}
