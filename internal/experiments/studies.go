package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/cem"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/predict"
	"repro/internal/queue"
	"repro/internal/rfu"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// MaxCycles bounds every study run; exceeding it is reported as DNF.
const MaxCycles = 20_000_000

// Policies enumerated by the comparison studies.
var studyPolicies = []cpu.Policy{
	cpu.PolicySteering, cpu.PolicyDemand, cpu.PolicyStaticInteger,
	cpu.PolicyStaticMemory, cpu.PolicyStaticFloating, cpu.PolicyNone,
	cpu.PolicyFullReconfig, cpu.PolicyOracle, cpu.PolicyRandom,
}

// policyColumns renders policies as table column headers.
func policyColumns(ps []cpu.Policy) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

// buildMachine constructs a processor with the given typed policy.
func buildMachine(prog isa.Program, params cpu.Params, policy cpu.Policy) *cpu.Processor {
	p, _ := buildMachinePolicy(prog, params, policy)
	return p
}

// buildMachinePolicy is buildMachine exposing the installed manager
// object (nil for the static policies), so studies can wire telemetry
// into it.
func buildMachinePolicy(prog isa.Program, params cpu.Params, policy cpu.Policy) (*cpu.Processor, cpu.Manager) {
	if policy == cpu.PolicyOracle {
		params.ReconfigLatency = 1
	}
	p := cpu.New(prog, params, nil)
	basis := config.DefaultBasis()
	var obj cpu.Manager
	switch policy {
	case cpu.PolicySteering:
		obj = baseline.NewSteering(p.Fabric())
	case cpu.PolicyStaticInteger:
		p.Fabric().Install(basis[0])
	case cpu.PolicyStaticMemory:
		p.Fabric().Install(basis[1])
	case cpu.PolicyStaticFloating:
		p.Fabric().Install(basis[2])
	case cpu.PolicyNone:
		// empty fabric
	case cpu.PolicyFullReconfig:
		obj = baseline.NewFullReconfig(p.Fabric())
	case cpu.PolicyOracle:
		obj = baseline.NewOracle(p.Fabric())
	case cpu.PolicyRandom:
		obj = baseline.NewRandom(p.Fabric(), 1)
	case cpu.PolicyDemand:
		obj = core.NewDemandManager(p.Fabric())
	case cpu.PolicyPrefetch:
		obj = predict.NewManager(p.Fabric(), predict.Config{})
	default:
		panic("experiments: unknown policy " + policy.String())
	}
	if obj != nil {
		p.SetManager(obj)
	}
	return p, obj
}

// ipcOf runs prog under the policy and returns its IPC, or -1 on DNF.
func ipcOf(prog isa.Program, params cpu.Params, policy cpu.Policy) float64 {
	p := buildMachine(prog, params, policy)
	st, err := p.Run(MaxCycles)
	if err != nil {
		return -1
	}
	return st.IPC()
}

// fmtIPC renders an IPC cell, marking runs that did not finish.
func fmtIPC(v float64) string {
	if v < 0 {
		return "DNF"
	}
	return fmt.Sprintf("%.3f", v)
}

// PhasedWorkload is the standard synthetic program of the studies:
// alternating integer, floating-point, memory and multiply/divide phases.
func PhasedWorkload(seed int64) isa.Program {
	return workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 800},
		{Mix: workload.MixFPHeavy, Instructions: 800},
		{Mix: workload.MixMemHeavy, Instructions: 800},
		{Mix: workload.MixMDUHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 800},
	}, workload.SynthParams{Seed: seed})
}

// X1 compares steering against every baseline across the phased synthetic
// workload, single-mix workloads and the kernel library.
func X1() string {
	var b strings.Builder
	b.WriteString("X1 — IPC: steering vs baselines\n\n")
	params := cpu.DefaultParams()

	// Synthetic workloads.
	synth := stats.NewTable("Synthetic workloads (IPC; higher is better)",
		append([]string{"workload"}, policyColumns(studyPolicies)...)...)
	workloads := []struct {
		name string
		prog isa.Program
	}{
		{"phased (int/fp/mem/mdu/fp)", PhasedWorkload(7)},
		{"int-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixIntHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 8})},
		{"fp-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixFPHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 9})},
		{"mem-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixMemHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 10})},
		{"uniform", workload.Synthesize([]workload.Phase{{Mix: workload.MixUniform, Instructions: 2500}}, workload.SynthParams{Seed: 11})},
	}
	// The grid's cells are independent simulations; sweep them in
	// parallel, rows and columns staying in deterministic order.
	synthGrid := sweep.Grid(len(workloads), len(studyPolicies), 0, func(row, col int) string {
		return fmtIPC(ipcOf(workloads[row].prog, params, studyPolicies[col]))
	})
	for i, w := range workloads {
		cells := []interface{}{w.name}
		for _, cell := range synthGrid[i] {
			cells = append(cells, cell)
		}
		synth.AddRow(cells...)
	}
	b.WriteString(synth.String() + "\n")

	// Kernels.
	kt := stats.NewTable("Kernel library (IPC)", append([]string{"kernel"}, policyColumns(studyPolicies)...)...)
	kernels := workload.Kernels()
	kernelGrid := sweep.Grid(len(kernels), len(studyPolicies), 0, func(row, col int) string {
		k := kernels[row]
		p := buildMachine(k.Program(), params, studyPolicies[col])
		if k.Setup != nil {
			k.Setup(p.Memory(), p.SetReg)
		}
		st, err := p.Run(MaxCycles)
		if err != nil {
			return "DNF"
		}
		if k.Validate != nil {
			if err := k.Validate(p.Reg, p.Memory()); err != nil {
				return "WRONG"
			}
		}
		return fmtIPC(st.IPC())
	})
	for i, k := range kernels {
		cells := []interface{}{k.Name}
		for _, cell := range kernelGrid[i] {
			cells = append(cells, cell)
		}
		kt.AddRow(cells...)
	}
	b.WriteString(kt.String())
	return b.String()
}

// X1Seeds re-runs the phased-workload comparison across many generator
// seeds, reporting the distribution — the robustness check that the X1
// headline is not a single-seed artefact.
func X1Seeds() string {
	var b strings.Builder
	b.WriteString("X1-seeds — steering vs best static across 10 phased-workload seeds\n\n")
	params := cpu.DefaultParams()
	const n = 10

	type row struct {
		steering, bestStatic, ffuOnly float64
	}
	rows := sweep.Run(n, 0, func(i int) row {
		prog := PhasedWorkload(int64(100 + i))
		best := 0.0
		for _, pol := range []cpu.Policy{cpu.PolicyStaticInteger, cpu.PolicyStaticMemory, cpu.PolicyStaticFloating} {
			if v := ipcOf(prog, params, pol); v > best {
				best = v
			}
		}
		return row{
			steering:   ipcOf(prog, params, cpu.PolicySteering),
			bestStatic: best,
			ffuOnly:    ipcOf(prog, params, cpu.PolicyNone),
		}
	})

	t := stats.NewTable("per-seed IPC", "seed", cpu.PolicySteering.String(), "best static", cpu.PolicyNone.String(), "steering/best-static")
	var speedups stats.Series
	wins := 0
	for i, r := range rows {
		t.AddRow(100+i, r.steering, r.bestStatic, r.ffuOnly, stats.Ratio(r.steering, r.bestStatic))
		speedups.Add(r.steering / r.bestStatic)
		if r.steering > r.bestStatic {
			wins++
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nsteering beats the best static configuration on %d/%d seeds;\n", wins, n)
	fmt.Fprintf(&b, "speedup over best static: geomean %.3fx, min %.3fx, max %.3fx\n",
		speedups.GeoMean(), speedups.Min(), speedups.Max())
	return b.String()
}

// X2 sweeps the per-span reconfiguration latency, contrasting partial
// (steering) with whole-fabric (full-reconfig) loading.
func X2() string {
	prog := PhasedWorkload(7)
	t := stats.NewTable("X2 — IPC vs reconfiguration latency (phased workload)",
		"latency (cycles/span)", cpu.PolicySteering.String(), cpu.PolicyFullReconfig.String(), "static-int (ref)")
	staticRef := ipcOf(prog, cpu.DefaultParams(), cpu.PolicyStaticInteger)
	for _, lat := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		params := cpu.DefaultParams()
		params.ReconfigLatency = lat
		t.AddRow(lat,
			fmtIPC(ipcOf(prog, params, cpu.PolicySteering)),
			fmtIPC(ipcOf(prog, params, cpu.PolicyFullReconfig)),
			fmtIPC(staticRef))
	}
	return t.String()
}

// X3 measures how often the shifter-approximate CEM selects differently
// from the exact divider, and what that costs in IPC.
func X3() string {
	var b strings.Builder
	b.WriteString("X3 — approximate (barrel shifter) vs exact divider CEM\n\n")

	// Selection agreement over all demand vectors with <= 7 total.
	agree, total := 0, 0
	basis := config.DefaultBasis()
	ffu := config.FFUCounts()
	var walk func(t int, left int, req arch.Counts)
	var disagreeExamples []string
	walk = func(ti, left int, req arch.Counts) {
		if ti == arch.NumUnitTypes {
			total++
			var errA, errX [arch.NumConfigs]int
			var dist [arch.NumConfigs]int
			// Distances on a fresh fabric are the full layouts.
			fresh := config.NewAllocationVector()
			errA[0] = cem.Error(req, ffu)
			errX[0] = cem.ErrorExact(req, ffu)
			for i, cfg := range basis {
				av := cfg.Counts().Add(ffu)
				errA[i+1] = cem.Error(req, av)
				errX[i+1] = cem.ErrorExact(req, av)
				dist[i+1] = fresh.Distance(cfg)
			}
			a := core.MinimalErrorSelect(errA, dist)
			x := core.MinimalErrorSelect(errX, dist)
			if a == x {
				agree++
			} else if len(disagreeExamples) < 5 {
				disagreeExamples = append(disagreeExamples,
					fmt.Sprintf("  req=%v approx->%d exact->%d", req, a, x))
			}
			return
		}
		for n := 0; n <= left; n++ {
			req[ti] = n
			walk(ti+1, left-n, req)
		}
	}
	walk(0, arch.QueueSize, arch.Counts{})
	fmt.Fprintf(&b, "selection agreement over all %d legal demand vectors: %d (%.1f%%)\n",
		total, agree, 100*float64(agree)/float64(total))
	if len(disagreeExamples) > 0 {
		b.WriteString("example disagreements:\n" + strings.Join(disagreeExamples, "\n") + "\n")
	}

	// End-to-end IPC cost.
	prog := PhasedWorkload(7)
	params := cpu.DefaultParams()
	run := func(exact bool) float64 {
		p := cpu.New(prog, params, nil)
		m := core.NewManager(p.Fabric(), config.DefaultBasis())
		m.ExactCEM = exact
		p.SetManager(&baseline.Steering{M: m})
		st, err := p.Run(MaxCycles)
		if err != nil {
			return -1
		}
		return st.IPC()
	}
	a, x := run(false), run(true)
	fmt.Fprintf(&b, "\nphased workload IPC: approximate %.3f, exact %.3f (delta %.1f%%)\n",
		a, x, 100*(x-a)/a)
	return b.String()
}

// X4 studies the forward-progress role of the FFUs: machines with and
// without fixed units under steering and under no management.
func X4() string {
	prog := PhasedWorkload(7)
	t := stats.NewTable("X4 — FFU ablation (phased workload)",
		"machine", "IPC", "outcome")
	cases := []struct {
		name    string
		disable bool
		policy  cpu.Policy
	}{
		{"FFUs + steering", false, cpu.PolicySteering},
		{"FFUs only (no policy)", false, cpu.PolicyNone},
		{"no FFUs + steering", true, cpu.PolicySteering},
		{"no FFUs, no policy", true, cpu.PolicyNone},
	}
	for _, c := range cases {
		params := cpu.DefaultParams()
		params.DisableFFUs = c.disable
		p := buildMachine(prog, params, c.policy)
		st, err := p.Run(2_000_000)
		if err != nil {
			t.AddRow(c.name, "-", fmt.Sprintf("starved after %d retired", st.Retired))
			continue
		}
		t.AddRow(c.name, st.IPC(), "completed")
	}
	return t.String() + "\nThe paper's guarantee: with FFUs every instruction eventually executes;\nwithout them an unmanaged fabric starves immediately, and even a steered\nfabric depends on the basis covering every unit type in use.\n"
}

// X5 sweeps the wake-up array / window size.
func X5() string {
	prog := PhasedWorkload(7)
	t := stats.NewTable("X5 — IPC vs scheduling window size (steering)",
		"window", "IPC", "reconfigs")
	for _, w := range []int{2, 4, 7, 12, 16, 24, 32} {
		params := cpu.DefaultParams()
		params.WindowSize = w
		p := buildMachine(prog, params, cpu.PolicySteering)
		st, err := p.Run(MaxCycles)
		ipc := -1.0
		if err == nil {
			ipc = st.IPC()
		}
		t.AddRow(w, fmtIPC(ipc), p.Fabric().Reconfigurations())
	}
	return t.String()
}

// X6 compares steering bases — the paper's §5 future-work question of
// choosing an orthogonal basis.
func X6() string {
	prog := PhasedWorkload(7)
	params := cpu.DefaultParams()

	bases := []struct {
		name  string
		basis [3]config.Configuration
	}{
		{"default (int/mem/fp)", config.DefaultBasis()},
		{"all-integer (degenerate)", [3]config.Configuration{
			config.MustNew("int-a", arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU),
			config.MustNew("int-b", arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntMDU, arch.IntMDU),
			config.MustNew("int-c", arch.IntALU, arch.IntALU, arch.LSU, arch.LSU, arch.LSU, arch.LSU, arch.LSU, arch.LSU),
		}},
		{"balanced trio", [3]config.Configuration{
			config.MustNew("bal-a", arch.IntALU, arch.IntALU, arch.LSU, arch.LSU, arch.IntMDU, arch.IntALU, arch.IntALU),
			config.MustNew("bal-b", arch.LSU, arch.LSU, arch.FPALU, arch.IntALU, arch.IntALU),
			config.MustNew("bal-c", arch.FPALU, arch.FPMDU, arch.IntALU, arch.LSU),
		}},
		{"fp-rich", [3]config.Configuration{
			config.MustNew("fp-a", arch.FPALU, arch.FPMDU, arch.IntALU, arch.LSU),
			config.MustNew("fp-b", arch.FPMDU, arch.FPMDU, arch.IntALU, arch.LSU),
			config.MustNew("fp-c", arch.FPALU, arch.FPALU, arch.IntALU, arch.LSU),
		}},
	}
	t := stats.NewTable("X6 — steering basis study (phased workload)",
		"basis", "IPC", "reconfigs", "hybrid cycles")
	for _, bc := range bases {
		p := cpu.New(prog, params, nil)
		m := core.NewManager(p.Fabric(), bc.basis)
		p.SetManager(&baseline.Steering{M: m})
		st, err := p.Run(MaxCycles)
		ipc := -1.0
		if err == nil {
			ipc = st.IPC()
		}
		t.AddRow(bc.name, fmtIPC(ipc), p.Fabric().Reconfigurations(), m.Stats().HybridCycles)
	}
	return t.String()
}

// X7 evaluates the paper's §5 future-work direction implemented in
// core.DemandManager: synthesising configurations directly from demand,
// with no predefined basis, across workloads and hysteresis settings.
func X7() string {
	var b strings.Builder
	b.WriteString("X7 — demand-driven configuration synthesis (no predefined basis, §5 future work)\n\n")
	params := cpu.DefaultParams()

	workloads := []struct {
		name string
		prog isa.Program
	}{
		{"phased", PhasedWorkload(7)},
		{"fp-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixFPHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 9})},
		{"uniform", workload.Synthesize([]workload.Phase{{Mix: workload.MixUniform, Instructions: 2500}}, workload.SynthParams{Seed: 11})},
	}
	t := stats.NewTable("IPC: basis steering vs demand-driven synthesis",
		"workload", cpu.PolicySteering.String(), "demand h=0", "demand h=1", "demand h=2", cpu.PolicyOracle.String())
	for _, w := range workloads {
		row := []interface{}{w.name, fmtIPC(ipcOf(w.prog, params, cpu.PolicySteering))}
		for _, h := range []int{0, 1, 2} {
			p := cpu.New(w.prog, params, nil)
			m := core.NewDemandManager(p.Fabric())
			m.Hysteresis = h
			p.SetManager(m)
			st, err := p.Run(MaxCycles)
			if err != nil {
				row = append(row, "DNF")
				continue
			}
			row = append(row, fmtIPC(st.IPC()))
		}
		row = append(row, fmtIPC(ipcOf(w.prog, params, cpu.PolicyOracle)))
		t.AddRow(row...)
	}
	b.WriteString(t.String())

	// Reconfiguration traffic comparison on the phased workload.
	prog := PhasedWorkload(7)
	ps := cpu.New(prog, params, nil)
	ps.SetManager(baseline.NewSteering(ps.Fabric()))
	ps.Run(MaxCycles)
	pd := cpu.New(prog, params, nil)
	pd.SetManager(core.NewDemandManager(pd.Fabric()))
	pd.Run(MaxCycles)
	fmt.Fprintf(&b, "\nreconfiguration spans on phased workload: steering %d, demand-driven %d\n",
		ps.Fabric().Reconfigurations(), pd.Fabric().Reconfigurations())
	return b.String()
}

// classifySlots names a sampled slot layout: a basis configuration's
// name, "(empty)", or "hybrid".
func classifySlots(slots [arch.NumRFUSlots]arch.Encoding, basis [3]config.Configuration) string {
	for _, cfg := range basis {
		if slots == cfg.Layout {
			return cfg.Name
		}
	}
	for _, e := range slots {
		if e != arch.EncEmpty {
			return "hybrid"
		}
	}
	return "(empty)"
}

// X8 renders the adaptation timeline: windowed IPC, fabric state and
// reconfiguration activity as the steering machine crosses the phase
// boundaries of the phased workload — the paper's steering story made
// visible over time. The windows are the telemetry sampler's: the run is
// instrumented with a 250-cycle probe and the table is rendered from the
// collected sample series.
func X8() string {
	var b strings.Builder
	b.WriteString("X8 — steering adaptation timeline (phased workload: int -> fp -> mem -> mdu -> fp)\n\n")

	prog := PhasedWorkload(7)
	params := cpu.DefaultParams()
	p := cpu.New(prog, params, nil)
	steer := baseline.NewSteering(p.Fabric())
	p.SetManager(steer)

	const window = 250
	probe := telemetry.NewProbe(window)
	col := &telemetry.Collector{}
	probe.SetExporter(col)
	p.SetTelemetry(probe)
	steer.SetTelemetry(probe)

	for !p.Halted() && p.Stats().Cycles < MaxCycles {
		p.Cycle()
	}

	basis := config.DefaultBasis()
	ffu := config.FFUCounts()
	t := stats.NewTable("per-window machine state",
		"cycles", "retired", "window IPC", "fabric state", "reconfigs", "fp units", "lsu units")
	for _, s := range col.Samples {
		t.AddRow(
			fmt.Sprintf("%d-%d", s.Cycle-window, s.Cycle),
			s.Retired,
			s.IntervalIPC,
			classifySlots(s.Slots, basis),
			s.IntervalReconfigs,
			s.RFUUnits[arch.FPALU]+s.RFUUnits[arch.FPMDU]+ffu[arch.FPALU]+ffu[arch.FPMDU],
			s.RFUUnits[arch.LSU]+ffu[arch.LSU],
		)
	}
	b.WriteString(t.String())
	mst := steer.M.Stats()
	fmt.Fprintf(&b, "\nselection totals: current=%d integer=%d memory=%d floating=%d, hybrid cycles=%d\n",
		mst.Selections[0], mst.Selections[1], mst.Selections[2], mst.Selections[3], mst.HybridCycles)
	if n := len(col.Decisions); n > 0 {
		first, last := col.Decisions[0], col.Decisions[n-1]
		fmt.Fprintf(&b, "steering decisions logged: %d (first %s -> %s at cycle %d, last %s -> %s at cycle %d)\n",
			n, first.From, first.To, first.Cycle, last.From, last.To, last.Cycle)
	}
	return b.String()
}

// X9 contrasts the idealised select stage with the literal select-free
// scheduling of the paper's reference [9], where colliding requesters
// pile up, waste their issue slot and replay.
func X9() string {
	var b strings.Builder
	b.WriteString("X9 — select-free scheduling pileups (reference [9]) vs idealised select\n\n")
	workloads := []struct {
		name string
		prog isa.Program
	}{
		{"phased", PhasedWorkload(7)},
		{"int-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixIntHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 8})},
		{"mem-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixMemHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 10})},
	}
	for _, width := range []int{4, 1} {
		t := stats.NewTable(
			fmt.Sprintf("steering machine, issue width %d: IPC and pileup replays", width),
			"workload", "ideal select IPC", "select-free IPC", "slowdown", "pileups", "pileups/1k retired")
		for _, w := range workloads {
			run := func(selectFree bool) cpu.Stats {
				params := cpu.DefaultParams()
				params.IssueWidth = width
				params.SelectFree = selectFree
				p := buildMachine(w.prog, params, cpu.PolicySteering)
				st, err := p.Run(MaxCycles)
				if err != nil {
					return cpu.Stats{}
				}
				return st
			}
			ideal := run(false)
			free := run(true)
			t.AddRow(w.name,
				fmtIPC(ideal.IPC()), fmtIPC(free.IPC()),
				fmt.Sprintf("%.1f%%", 100*(ideal.IPC()-free.IPC())/ideal.IPC()),
				free.Pileups,
				fmt.Sprintf("%.1f", 1000*float64(free.Pileups)/float64(free.Retired)))
		}
		b.WriteString(t.String() + "\n")
	}
	b.WriteString("\nThe paper adopts [9]'s wake-up arrays; this study quantifies the pileup\ncost the select-free design trades for its shorter scheduling critical path.\n")
	return b.String()
}

// X10 compares the two readings of where the configuration manager gets
// its demand vector: §3.1's instruction-queue view (default) vs §2's
// fetch-fed pre-decoder view, which sees fetched-but-undispatched
// instructions too (Params.ManagerLookahead).
func X10() string {
	var b strings.Builder
	b.WriteString("X10 — manager demand source: instruction queue (§3.1) vs fetch pre-decode lookahead (§2)\n\n")
	t := stats.NewTable("steering IPC",
		"workload", "queue view", "lookahead view", "delta")
	row := func(name string, prog isa.Program, setup func(p *cpu.Processor)) {
		run := func(lookahead bool) float64 {
			params := cpu.DefaultParams()
			params.ManagerLookahead = lookahead
			p := buildMachine(prog, params, cpu.PolicySteering)
			if setup != nil {
				setup(p)
			}
			st, err := p.Run(MaxCycles)
			if err != nil {
				return -1
			}
			return st.IPC()
		}
		q, l := run(false), run(true)
		t.AddRow(name, fmtIPC(q), fmtIPC(l), fmt.Sprintf("%+.1f%%", 100*(l-q)/q))
	}
	row("phased", PhasedWorkload(7), nil)
	row("fp-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixFPHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 9}), nil)
	for _, name := range []string{"saxpy", "matmul", "dot"} {
		k := workload.KernelByName(name)
		row(name, k.Program(), func(p *cpu.Processor) {
			if k.Setup != nil {
				k.Setup(p.Memory(), p.SetReg)
			}
		})
	}
	b.WriteString(t.String())
	b.WriteString("\nLookahead widens the demand sample the CEM generators see, smoothing the\nper-cycle oscillation of narrow windows.\n")
	return b.String()
}

// X11 sweeps the residency timer that damps selection thrash — motivated
// by the X1 observation that per-cycle reloading hurts short loops whose
// demand oscillates within one loop body (saxpy).
func X11() string {
	var b strings.Builder
	b.WriteString("X11 — configuration residency timer (thrash damping)\n\n")
	workloads := []struct {
		name  string
		prog  isa.Program
		setup func(p *cpu.Processor)
	}{
		{"saxpy", workload.KernelByName("saxpy").Program(), func(p *cpu.Processor) {
			k := workload.KernelByName("saxpy")
			k.Setup(p.Memory(), p.SetReg)
		}},
		{"phased", PhasedWorkload(7), nil},
	}
	for _, w := range workloads {
		t := stats.NewTable(fmt.Sprintf("%s: IPC vs minimum residency", w.name),
			"min residency (cycles)", "IPC", "reconfigs", "suppressed loads")
		for _, res := range []int{0, 4, 8, 16, 32, 64, 128} {
			p := cpu.New(w.prog, cpu.DefaultParams(), nil)
			m := core.NewManager(p.Fabric(), config.DefaultBasis())
			m.MinResidency = res
			p.SetManager(&baseline.Steering{M: m})
			if w.setup != nil {
				w.setup(p)
			}
			st, err := p.Run(MaxCycles)
			ipc := -1.0
			if err == nil {
				ipc = st.IPC()
			}
			t.AddRow(res, fmtIPC(ipc), p.Fabric().Reconfigurations(), m.Stats().SuppressedLoads)
		}
		b.WriteString(t.String() + "\n")
	}
	return b.String()
}

// X12 sweeps the machine's superscalar widths (fetch/dispatch/issue/
// retire together) at several window sizes, locating where steering's
// benefit saturates.
func X12() string {
	var b strings.Builder
	b.WriteString("X12 — superscalar width and window scaling (phased workload, steering)\n\n")
	prog := PhasedWorkload(7)
	widths := []int{1, 2, 4, 8}
	windows := []int{7, 16, 32}
	t := stats.NewTable("IPC by width x window",
		append([]string{"width \\ window"}, func() []string {
			var h []string
			for _, w := range windows {
				h = append(h, fmt.Sprint(w))
			}
			return h
		}()...)...)
	grid := sweep.Grid(len(widths), len(windows), 0, func(r, c int) string {
		params := cpu.DefaultParams()
		params.DispatchWidth = widths[r]
		params.IssueWidth = widths[r]
		params.RetireWidth = widths[r]
		params.FetchWidthMem = widths[r]
		params.FetchWidthTC = widths[r] * 2
		params.WindowSize = windows[c]
		return fmtIPC(ipcOf(prog, params, cpu.PolicySteering))
	})
	for i, w := range widths {
		cells := []interface{}{fmt.Sprint(w)}
		for _, cell := range grid[i] {
			cells = append(cells, cell)
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	b.WriteString("\nWider machines need deeper windows to feed them; the paper's 7-entry\nqueue pairs naturally with a ~4-wide machine.\n")
	return b.String()
}

// X13 studies the front end: branch predictor size and the trace cache's
// fetch-widening effect, on the branchy kernel set.
func X13() string {
	var b strings.Builder
	b.WriteString("X13 — front-end study: predictor size and trace cache\n\n")

	kernelNames := []string{"sort", "gcdbatch", "mandel", "strsearch"}
	pt := stats.NewTable("IPC vs bimodal predictor entries",
		append([]string{"kernel"}, "16", "64", "256", "1024")...)
	sizes := []int{16, 64, 256, 1024}
	grid := sweep.Grid(len(kernelNames), len(sizes), 0, func(r, c int) string {
		k := workload.KernelByName(kernelNames[r])
		params := cpu.DefaultParams()
		params.PredictorEntries = sizes[c]
		p := buildMachine(k.Program(), params, cpu.PolicySteering)
		if k.Setup != nil {
			k.Setup(p.Memory(), p.SetReg)
		}
		st, err := p.Run(MaxCycles)
		if err != nil {
			return "DNF"
		}
		return fmtIPC(st.IPC())
	})
	for i, name := range kernelNames {
		cells := []interface{}{name}
		for _, cell := range grid[i] {
			cells = append(cells, cell)
		}
		pt.AddRow(cells...)
	}
	b.WriteString(pt.String() + "\n")

	// Trace cache ablation: normal widths vs trace-cache width clamped
	// to the memory width (no fetch widening).
	tt := stats.NewTable("trace cache fetch widening (IPC)",
		"kernel", "with trace cache (2->4)", "without (2->2)", "delta")
	for _, name := range []string{"sort", "matmul", "memcpy", "fib"} {
		k := workload.KernelByName(name)
		run := func(tcWidth int) float64 {
			params := cpu.DefaultParams()
			params.FetchWidthTC = tcWidth
			p := buildMachine(k.Program(), params, cpu.PolicySteering)
			if k.Setup != nil {
				k.Setup(p.Memory(), p.SetReg)
			}
			st, err := p.Run(MaxCycles)
			if err != nil {
				return -1
			}
			return st.IPC()
		}
		with, without := run(4), run(2)
		tt.AddRow(name, fmtIPC(with), fmtIPC(without), fmt.Sprintf("%+.1f%%", 100*(with-without)/without))
	}
	b.WriteString(tt.String())
	return b.String()
}

// X14 breaks every cycle down by bottleneck — issuing, front-end-starved,
// unit-bound, dependency-bound — showing *where* steering's win comes
// from: it converts unit-bound cycles into issuing ones.
func X14() string {
	var b strings.Builder
	b.WriteString("X14 — cycle bottleneck breakdown (phased workload)\n\n")
	prog := PhasedWorkload(7)
	t := stats.NewTable("fraction of cycles by bottleneck",
		"policy", "issuing", "unit-bound", "dep-bound", "frontend", "IPC")
	for _, pol := range []cpu.Policy{cpu.PolicySteering, cpu.PolicyStaticInteger, cpu.PolicyStaticFloating, cpu.PolicyNone, cpu.PolicyOracle} {
		p := buildMachine(prog, cpu.DefaultParams(), pol)
		st, err := p.Run(MaxCycles)
		if err != nil {
			t.AddRow(pol, "DNF", "", "", "", "")
			continue
		}
		frac := func(n int) string { return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(st.Cycles)) }
		t.AddRow(pol, frac(st.CyclesIssued), frac(st.CyclesUnits),
			frac(st.CyclesDeps), frac(st.CyclesFrontend), fmt.Sprintf("%.3f", st.IPC()))
	}
	b.WriteString(t.String())
	b.WriteString("\nSteering's gain over the FFU-only machine comes almost entirely out of\nthe unit-bound bucket — the configuration manager's whole purpose.\n")
	return b.String()
}

// X15 compares scheduler grant-priority policies: oldest-first (the
// default), youngest-first (pathological) and a rotating-priority
// arbiter.
func X15() string {
	var b strings.Builder
	b.WriteString("X15 — scheduler grant priority (steering machine)\n\n")
	orders := []struct {
		name  string
		order cpu.IssueOrder
	}{
		{"oldest-first", cpu.OrderOldest},
		{"rotating", cpu.OrderRotate},
		{"youngest-first", cpu.OrderYoungest},
	}
	workloads := []struct {
		name string
		prog isa.Program
	}{
		{"phased", PhasedWorkload(7)},
		{"mem-heavy", workload.Synthesize([]workload.Phase{{Mix: workload.MixMemHeavy, Instructions: 2500}}, workload.SynthParams{Seed: 10})},
	}
	t := stats.NewTable("IPC by grant priority",
		"workload", "oldest-first", "rotating", "youngest-first")
	for _, w := range workloads {
		cells := []interface{}{w.name}
		for _, o := range orders {
			params := cpu.DefaultParams()
			params.IssueOrder = o.order
			cells = append(cells, fmtIPC(ipcOf(w.prog, params, cpu.PolicySteering)))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	b.WriteString("\nAge priority wins: starving the oldest instructions delays retirement,\nwhich stalls the in-order RUU head and shrinks the effective window.\n")
	return b.String()
}

// X16 compares branch predictors — bimodal vs gshare at several history
// lengths — on the control-flow-heavy kernels.
func X16() string {
	var b strings.Builder
	b.WriteString("X16 — branch prediction: bimodal vs gshare\n\n")
	kernelNames := []string{"branchy-synthetic", "sort", "mandel", "strsearch"}
	configs := []struct {
		name string
		bits uint
	}{
		{"bimodal", 0}, {"gshare-4", 4}, {"gshare-8", 8},
	}
	t := stats.NewTable("IPC (predictor accuracy in parentheses)",
		append([]string{"kernel"}, func() []string {
			var h []string
			for _, c := range configs {
				h = append(h, c.name)
			}
			return h
		}()...)...)
	for _, name := range kernelNames {
		cells := []interface{}{name}
		for _, cfg := range configs {
			params := cpu.DefaultParams()
			params.GshareHistoryBits = cfg.bits
			var p *cpu.Processor
			if name == "branchy-synthetic" {
				prog := workload.SynthesizeBranchy(200, workload.SynthParams{Seed: 5})
				p = buildMachine(prog, params, cpu.PolicySteering)
			} else {
				k := workload.KernelByName(name)
				p = buildMachine(k.Program(), params, cpu.PolicySteering)
				if k.Setup != nil {
					k.Setup(p.Memory(), p.SetReg)
				}
			}
			st, err := p.Run(MaxCycles)
			if err != nil {
				cells = append(cells, "DNF")
				continue
			}
			acc, _ := p.Predictor().Accuracy()
			cells = append(cells, fmt.Sprintf("%.3f (%.1f%%)", st.IPC(), 100*acc))
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// X17 models the configuration bus of Fig. 1: a width-w bus allows at
// most w spans to reconfigure concurrently, so width 1 serialises all
// configuration loading.
func X17() string {
	var b strings.Builder
	b.WriteString("X17 — configuration bus width (Fig. 1 bus model, phased workload)\n\n")
	prog := PhasedWorkload(7)
	t := stats.NewTable("steering IPC vs bus width",
		"bus width (spans)", "IPC", "reconfigs")
	for _, w := range []int{1, 2, 4, 0} {
		params := cpu.DefaultParams()
		params.ConfigBusWidth = w
		p := buildMachine(prog, params, cpu.PolicySteering)
		st, err := p.Run(MaxCycles)
		ipc := -1.0
		if err == nil {
			ipc = st.IPC()
		}
		label := fmt.Sprint(w)
		if w == 0 {
			label = "unlimited"
		}
		t.AddRow(label, fmtIPC(ipc), p.Fabric().Reconfigurations())
	}
	b.WriteString(t.String())
	b.WriteString("\nA single bus (the literal Fig. 1) costs little: steering rarely needs\nmore than one span in flight because deferrals already stagger loads.\n")
	return b.String()
}

// X18 compares policies through the telemetry sampler: every policy runs
// the phased workload with a 200-cycle probe, in parallel via the sweep
// harness, and the table summarises each time series — occupancy,
// in-flight reconfiguration pressure, loading stall cycles from the
// steering-decision log — rather than just end-of-run aggregates.
func X18() string {
	var b strings.Builder
	b.WriteString("X18 — telemetry time-series comparison across policies (phased workload)\n\n")

	prog := PhasedWorkload(7)
	policies := []cpu.Policy{cpu.PolicySteering, cpu.PolicyDemand, cpu.PolicyFullReconfig, cpu.PolicyOracle, cpu.PolicyRandom, cpu.PolicyStaticInteger, cpu.PolicyNone}
	const interval = 200

	type outcome struct {
		st  cpu.Stats
		err error
	}
	results, series := sweep.Run2(len(policies), 0, func(i int) (outcome, *telemetry.Collector) {
		p, policy := buildMachinePolicy(prog, cpu.DefaultParams(), policies[i])
		probe := telemetry.NewProbe(interval)
		col := &telemetry.Collector{}
		probe.SetExporter(col)
		p.SetTelemetry(probe)
		if ts, ok := policy.(interface{ SetTelemetry(*telemetry.Probe) }); ok {
			ts.SetTelemetry(probe)
		}
		st, err := p.Run(MaxCycles)
		return outcome{st, err}, col
	})

	t := stats.NewTable("per-policy time-series summary",
		"policy", "IPC", "samples", "mean occupancy", "mean reconfiguring slots",
		"decisions", "stall slot-cycles", "peak window reconfigs")
	for i, name := range policies {
		r, col := results[i], series[i]
		if r.err != nil {
			t.AddRow(name, "DNF", len(col.Samples), "-", "-", len(col.Decisions), "-", "-")
			continue
		}
		var occ, rslots, peak, stall int
		for _, s := range col.Samples {
			occ += s.Occupancy
			rslots += s.ReconfigSlots
			if s.IntervalReconfigs > peak {
				peak = s.IntervalReconfigs
			}
		}
		for _, d := range col.Decisions {
			stall += d.StallSlotCycles
		}
		n := len(col.Samples)
		meanOcc, meanR := 0.0, 0.0
		if n > 0 {
			meanOcc = float64(occ) / float64(n)
			meanR = float64(rslots) / float64(n)
		}
		t.AddRow(name, fmtIPC(r.st.IPC()), n,
			fmt.Sprintf("%.2f", meanOcc), fmt.Sprintf("%.2f", meanR),
			len(col.Decisions), stall, peak)
	}
	b.WriteString(t.String())
	b.WriteString("\nDecisions come from the steering-decision log (selection-family\npolicies only); stall slot-cycles are the loading overhead those\nswitches started. Random and demand policies reconfigure without\nlogging decisions — their activity shows in the reconfiguring-slot\ncolumns instead.\n")
	return b.String()
}

// X19 sweeps the configuration-upset rate across steering and the
// baseline policies: every (policy, rate) point runs the phased
// workload under a seeded fault campaign, in parallel via the sweep
// harness. The table reports throughput alongside the fault pipeline's
// own accounting — upsets in, repairs out, slots permanently lost, and
// the fraction of slot-cycles the degraded fabric spent masked.
func X19() string {
	var b strings.Builder
	b.WriteString("X19 — policy comparison under a configuration-upset rate sweep (phased workload)\n\n")

	prog := PhasedWorkload(7)
	policies := []cpu.Policy{cpu.PolicySteering, cpu.PolicyDemand, cpu.PolicyFullReconfig, cpu.PolicyStaticInteger}
	rates := []float64{0, 1e-4, 5e-4, 2e-3}

	type point struct {
		policy cpu.Policy
		rate   float64
	}
	points := make([]point, 0, len(policies)*len(rates))
	for _, p := range policies {
		for _, r := range rates {
			points = append(points, point{p, r})
		}
	}

	type outcome struct {
		st  cpu.Stats
		err error
		fs  rfu.FaultStats
	}
	results := sweep.Run(len(points), 0, func(i int) outcome {
		pt := points[i]
		params := cpu.DefaultParams()
		params.FaultTransientRate = pt.rate
		params.FaultPermanentRate = pt.rate / 10
		params.FaultSeed = 55
		p := buildMachine(prog, params, pt.policy)
		st, err := p.Run(MaxCycles)
		return outcome{st, err, p.Fabric().FaultStats()}
	})

	t := stats.NewTable("IPC and fault pipeline vs upset rate",
		"policy", "transient rate", "IPC", "injected", "repaired", "healed by load", "dead slots", "masked slot-cycles %")
	for i, pt := range points {
		r := results[i]
		if r.err != nil {
			t.AddRow(pt.policy, fmt.Sprintf("%.0e", pt.rate), "DNF", "-", "-", "-", "-", "-")
			continue
		}
		masked := 0.0
		if r.st.Cycles > 0 {
			masked = 100 * float64(r.fs.MaskedSlotCycles) / float64(r.st.Cycles*arch.NumRFUSlots)
		}
		rateLabel := "off"
		if pt.rate > 0 {
			rateLabel = fmt.Sprintf("%.0e", pt.rate)
		}
		t.AddRow(pt.policy, rateLabel, fmtIPC(r.st.IPC()),
			r.fs.InjectedTransient+r.fs.InjectedPermanent,
			r.fs.Repaired, r.fs.HealedByLoad, r.fs.DeadSlots,
			fmt.Sprintf("%.2f", masked))
	}
	b.WriteString(t.String())
	b.WriteString("\nEach point pairs a transient rate with a 10x-lower permanent rate on\none fault seed. Steering degrades gracefully: demand clamping and the\nhealth-masked availability keep it scheduling around faulted units, and\nits own configuration loads heal undetected transients for free. Static\nfabrics lean entirely on the scrub-and-repair pipeline, and every slot\nthat dies is IPC lost until the end of the run.\n")
	return b.String()
}

// X20 evaluates the phase-aware prediction and prefetch subsystem
// (internal/predict): a reconfiguration-latency sweep contrasting
// reactive steering with prefetch-augmented steering on a long
// phase-alternating workload, plus the predictor's own accounting.
// Prefetch can only pay when the latency it hides is non-trivial, so
// the interesting rows are the high-latency ones; at low latency the
// predictor's anticipation gate keeps it out of the way and the two
// policies should tie.
func X20() string {
	var b strings.Builder
	b.WriteString("X20 — phase-aware configuration prefetch vs reactive steering\n\n")

	// A long two-mix alternation gives the Markov predictor an
	// unambiguous phase structure and enough boundaries to both learn
	// and exploit: ~12 int<->fp switches over 6000 instructions.
	prog := workload.Synthesize(workload.AlternatingPhases(6000, 500), workload.SynthParams{Seed: 7})
	lats := []int{16, 64, 128, 256}

	type outcome struct {
		steer, pre cpu.Stats
		steerErr   error
		preErr     error
		mgrStats   core.Stats
	}
	results := sweep.Run(len(lats), 0, func(i int) outcome {
		params := cpu.DefaultParams()
		params.ReconfigLatency = lats[i]
		var o outcome
		ps := buildMachine(prog, params, cpu.PolicySteering)
		o.steer, o.steerErr = ps.Run(MaxCycles)
		pp, mgr := buildMachinePolicy(prog, params, cpu.PolicyPrefetch)
		o.pre, o.preErr = pp.Run(MaxCycles)
		o.mgrStats = mgr.(*predict.Manager).Core().Stats()
		return o
	})

	t := stats.NewTable("IPC and predictor accounting vs reconfiguration latency (alternating int/fp workload)",
		"latency (cycles/span)", "steering IPC", "prefetch IPC", "delta",
		"spec spans", "confirmed", "mispredicted", "cancelled", "wasted spans", "held loads")
	for i, lat := range lats {
		r := results[i]
		if r.steerErr != nil || r.preErr != nil {
			t.AddRow(lat, "DNF", "DNF", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		ms := r.mgrStats
		t.AddRow(lat,
			fmtIPC(r.steer.IPC()), fmtIPC(r.pre.IPC()),
			fmt.Sprintf("%+.1f%%", 100*(r.pre.IPC()-r.steer.IPC())/r.steer.IPC()),
			ms.PrefetchIssued, ms.PrefetchConfirmed, ms.PrefetchMispredicted,
			ms.PrefetchCancelled, ms.PrefetchWastedSpans, ms.HeldLoads)
	}
	b.WriteString(t.String())
	b.WriteString("\nThe predictor anticipates each phase boundary from learned per-basis\nphase lengths and converts idle spans just in time, so its win grows\nwith the latency it hides; the anticipation gate keeps it inert when\nreconfiguration is cheap, and the hold-until-resolve commitment plus\nstreak-based mispredict detection bound the cost of a wrong guess.\n")
	return b.String()
}

// x21Scenario is one workload × machine ablation of the model-error
// table: compact stand-ins for the X1–X6 study family.
type x21Scenario struct {
	name   string
	prog   isa.Program
	params cpu.Params
	basis  *[3]config.Configuration
	exact  bool // X3: exact divider CEM inside the simulator's manager
}

func x21Scenarios() []x21Scenario {
	mk := func(phases []workload.Phase, seed int64) isa.Program {
		return workload.Synthesize(phases, workload.SynthParams{Seed: seed})
	}
	phased := mk([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
		{Mix: workload.MixMemHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
	}, 7)
	lat64 := cpu.DefaultParams()
	lat64.ReconfigLatency = 64
	noFFU := cpu.DefaultParams()
	noFFU.DisableFFUs = true
	w16 := cpu.DefaultParams()
	w16.WindowSize = 16
	fpBasis := [3]config.Configuration{
		config.MustNew("fp-a", arch.FPALU, arch.FPMDU, arch.IntALU, arch.LSU),
		config.MustNew("fp-b", arch.FPMDU, arch.FPMDU, arch.IntALU, arch.LSU),
		config.MustNew("fp-c", arch.FPALU, arch.FPALU, arch.IntALU, arch.LSU),
	}
	return []x21Scenario{
		{name: "X1 phased", prog: phased, params: cpu.DefaultParams()},
		{name: "X2 lat=64", prog: mk([]workload.Phase{
			{Mix: workload.MixIntHeavy, Instructions: 400},
			{Mix: workload.MixFPHeavy, Instructions: 400},
		}, 7), params: lat64},
		{name: "X3 exact CEM", prog: phased, params: cpu.DefaultParams(), exact: true},
		{name: "X4 no FFUs", prog: mk([]workload.Phase{
			{Mix: workload.MixFPHeavy, Instructions: 600},
		}, 5), params: noFFU},
		{name: "X5 window=16", prog: mk([]workload.Phase{
			{Mix: workload.MixUniform, Instructions: 800},
		}, 3), params: w16},
		{name: "X6 fp basis", prog: mk([]workload.Phase{
			{Mix: workload.MixFPHeavy, Instructions: 400},
			{Mix: workload.MixIntHeavy, Instructions: 400},
		}, 2), params: cpu.DefaultParams(), basis: &fpBasis},
	}
}

// x21Sim runs one scenario under an adaptive policy in the simulator.
func x21Sim(sc x21Scenario, pol cpu.Policy) float64 {
	p := cpu.New(sc.prog, sc.params, nil)
	basis := config.DefaultBasis()
	if sc.basis != nil {
		basis = *sc.basis
	}
	switch pol {
	case cpu.PolicySteering:
		m := core.NewManager(p.Fabric(), basis)
		m.ExactCEM = sc.exact
		p.SetManager(&baseline.Steering{M: m})
	case cpu.PolicyPrefetch:
		p.SetManager(predict.NewManagerBasis(p.Fabric(), basis, predict.Config{}))
	}
	st, err := p.Run(MaxCycles)
	if err != nil {
		return -1
	}
	return st.IPC()
}

// x21Model solves the analytic model for one scenario.
func x21Model(sc x21Scenario, pol cpu.Policy) float64 {
	m, err := queue.New(pol, sc.params, sc.basis)
	if err != nil {
		return -1
	}
	est, err := m.Estimate(sc.prog)
	if err != nil {
		return -1
	}
	return est.PredictedIPC
}

// X21 validates the analytic queueing model (internal/queue, the engine
// behind /v1/estimate and rssbench -prune-frontier): per-scenario model
// error against the simulator, the model-vs-simulation latency ratio,
// and whether model-guided pruning keeps the true frontier.
func X21() string {
	var b strings.Builder
	b.WriteString("X21 — analytic queueing model vs simulator\n\n")

	// Part 1: model error across the scenario family under the two
	// deterministic adaptive policies the fast path targets.
	scenarios := x21Scenarios()
	pols := []cpu.Policy{cpu.PolicySteering, cpu.PolicyPrefetch}
	t := stats.NewTable("Model IPC error (X1–X6 scenarios × adaptive policies)",
		"scenario", "policy", "sim IPC", "model IPC", "error")
	type cellResult struct{ sim, model float64 }
	grid := sweep.Grid(len(scenarios), len(pols), 0, func(row, col int) cellResult {
		return cellResult{sim: x21Sim(scenarios[row], pols[col]), model: x21Model(scenarios[row], pols[col])}
	})
	var sumAbs, worst float64
	n := 0
	for i, sc := range scenarios {
		for j, pol := range pols {
			r := grid[i][j]
			if r.sim <= 0 || r.model < 0 {
				t.AddRow(sc.name, pol.String(), fmtIPC(r.sim), fmtIPC(r.model), "-")
				continue
			}
			errPct := 100 * (r.model - r.sim) / r.sim
			t.AddRow(sc.name, pol.String(), fmtIPC(r.sim), fmtIPC(r.model),
				fmt.Sprintf("%+.1f%%", errPct))
			sumAbs += math.Abs(errPct)
			if math.Abs(errPct) > worst {
				worst = math.Abs(errPct)
			}
			n++
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nmean |error| %.1f%%, worst |error| %.1f%% (bound: every scenario within 25%%, mean under 10%%;\nthe worst case is the X4 FFU-less ablation, where the model under-predicts saturated stations)\n",
		sumAbs/float64(n), worst)

	// Part 2: latency, at two scales. On the compact X1 both paths are
	// linear in program length, so the ratio is modest; at production
	// scale the model's strided sampling makes its cost roughly constant
	// while simulation stays linear — that is where the /v1/estimate
	// speedup claim lives, so it is measured on a 1M-instruction X1.
	sc1 := scenarios[0]
	measure := func(name string, sc x21Scenario, solves int) {
		simStart := time.Now()
		simIPC := x21Sim(sc, cpu.PolicySteering)
		simElapsed := time.Since(simStart)
		modelStart := time.Now()
		var modelIPC float64
		for i := 0; i < solves; i++ {
			modelIPC = x21Model(sc, cpu.PolicySteering)
		}
		modelElapsed := time.Since(modelStart) / time.Duration(solves)
		fmt.Fprintf(&b, "latency (%s): simulated run %v (IPC %.3f), model solve %v (IPC %.3f) — %.0fx faster\n",
			name, simElapsed.Round(time.Microsecond), simIPC,
			modelElapsed.Round(time.Microsecond), modelIPC,
			float64(simElapsed)/float64(modelElapsed))
	}
	b.WriteString("\n")
	measure("X1, 2k instructions", sc1, 100)
	var bigPhases []workload.Phase
	for i := 0; i < 500; i++ {
		bigPhases = append(bigPhases,
			workload.Phase{Mix: workload.MixIntHeavy, Instructions: 500},
			workload.Phase{Mix: workload.MixFPHeavy, Instructions: 500},
			workload.Phase{Mix: workload.MixMemHeavy, Instructions: 500},
			workload.Phase{Mix: workload.MixFPHeavy, Instructions: 500},
		)
	}
	bigProg := workload.Synthesize(bigPhases, workload.SynthParams{Seed: 7})
	measure("X1 at production scale, 1M instructions", x21Scenario{prog: bigProg, params: cpu.DefaultParams()}, 20)

	// Part 3: model-guided pruning. Rank the rssbench-style grid
	// (policy × latency, seed 7) with the model, submit the top quarter,
	// and check the true top-3 survived — the -prune-frontier contract.
	gridPols := []cpu.Policy{
		cpu.PolicySteering, cpu.PolicyPrefetch, cpu.PolicyDemand,
		cpu.PolicyFullReconfig, cpu.PolicyNone,
	}
	lats := []int{4, 16, 64}
	type point struct {
		pol        cpu.Policy
		lat        int
		sim, model float64
	}
	pts := make([]point, 0, len(gridPols)*len(lats))
	for _, pol := range gridPols {
		for _, lat := range lats {
			pts = append(pts, point{pol: pol, lat: lat})
		}
	}
	ranked := sweep.Run(len(pts), 0, func(i int) point {
		p := pts[i]
		params := cpu.DefaultParams()
		params.ReconfigLatency = p.lat
		proc := buildMachine(sc1.prog, params, p.pol)
		if st, err := proc.Run(MaxCycles); err == nil {
			p.sim = st.IPC()
		} else {
			p.sim = -1
		}
		p.model = x21Model(x21Scenario{prog: sc1.prog, params: params}, p.pol)
		return p
	})
	bySim := append([]point(nil), ranked...)
	sort.SliceStable(bySim, func(i, j int) bool { return bySim[i].sim > bySim[j].sim })
	byModel := append([]point(nil), ranked...)
	sort.SliceStable(byModel, func(i, j int) bool { return byModel[i].model > byModel[j].model })
	const frontier = 0.25
	keep := int(math.Ceil(frontier * float64(len(ranked))))
	inFrontier := map[string]bool{}
	for _, p := range byModel[:keep] {
		inFrontier[fmt.Sprintf("%s/%d", p.pol, p.lat)] = true
	}
	retained := 0
	var top3 []string
	for _, p := range bySim[:3] {
		key := fmt.Sprintf("%s/%d", p.pol, p.lat)
		mark := "dropped"
		if inFrontier[key] {
			retained++
			mark = "retained"
		}
		top3 = append(top3, fmt.Sprintf("  %-22s sim %.3f  model %.3f  %s", key, p.sim, p.model, mark))
	}
	fmt.Fprintf(&b, "\npruning (grid %d points, frontier %.2f -> %d submitted): true top-3 retained %d/3\n%s\n",
		len(ranked), frontier, keep, retained, strings.Join(top3, "\n"))
	return b.String()
}

// x22Cluster builds and runs one cluster point: K cores on
// heterogeneous phased workloads (seed 7+i per core), returning the
// cluster stats or an error on DNF.
func x22Cluster(k int, params cpu.Params, policy cpu.Policy) (cluster.Stats, error) {
	progs := make([]repro.Program, k)
	for i := range progs {
		progs[i] = PhasedWorkload(int64(7 + i))
	}
	params.Cores = k
	c := cluster.NewMulti(progs, repro.Options{Params: params, Policy: policy})
	return c.Run(MaxCycles)
}

// X22 measures cluster scaling: aggregate IPC and Jain fairness as K
// cores share one configuration bus in split mode, across core count ×
// bus width × arbitration policy. Each core runs a different phased
// workload (seed 7+core), so demand is heterogeneous and the arbiter's
// stepping/bus order matters. K=1 rows are the scalar machine and must
// be identical across arbiters — the degeneracy check.
func X22() string {
	var b strings.Builder
	b.WriteString("X22 — cluster scaling: aggregate IPC and fairness vs cores × bus width × arbiter (split mode, steering)\n\n")

	ks := []int{1, 2, 4}
	buses := []int{1, 2, 0}
	arbs := []string{"round-robin", "demand-weighted"}

	type point struct {
		k, bus int
		arb    string
	}
	var pts []point
	for _, k := range ks {
		for _, bus := range buses {
			for _, arb := range arbs {
				pts = append(pts, point{k, bus, arb})
			}
		}
	}
	type outcome struct {
		st  cluster.Stats
		err error
	}
	results := sweep.Run(len(pts), 0, func(i int) outcome {
		pt := pts[i]
		params := cpu.DefaultParams()
		params.ConfigBusWidth = pt.bus
		params.ClusterMode = "split"
		params.ClusterArbiter = pt.arb
		st, err := x22Cluster(pt.k, params, cpu.PolicySteering)
		return outcome{st, err}
	})

	t := stats.NewTable("aggregate IPC (Jain fairness) by cores × bus width × arbiter",
		append([]string{"cores", "bus width"}, arbs...)...)
	for _, k := range ks {
		for _, bus := range buses {
			busLabel := fmt.Sprint(bus)
			if bus == 0 {
				busLabel = "unlimited"
			}
			cells := []interface{}{k, busLabel}
			for _, arb := range arbs {
				var r outcome
				for i, pt := range pts {
					if pt.k == k && pt.bus == bus && pt.arb == arb {
						r = results[i]
						break
					}
				}
				if r.err != nil {
					cells = append(cells, "DNF")
					continue
				}
				cells = append(cells, fmt.Sprintf("%.3f (%.3f)", r.st.AggregateIPC(), r.st.Fairness()))
			}
			t.AddRow(cells...)
		}
	}
	b.WriteString(t.String())
	b.WriteString("\nSplit mode partitions the 8 RFU slots contiguously across cores, so\naggregate IPC grows sub-linearly with K while every core keeps its FFU\nfloor. The shared configuration bus is the coupling: at width 1 all\ncores' span loads serialise, costing the K=4 cluster ~1% aggregate\nIPC vs an unlimited bus. The two arbiters nearly tie on this workload\n— deferrals already stagger most loads — with demand-weighted edging\nahead at K=4 by letting the hungriest core's spans go first.\n")
	return b.String()
}

// X23 contrasts the two fabric-sharing modes under configuration
// upsets: a K=4 cluster on heterogeneous phased workloads, merged vs
// split, across a transient-upset-rate sweep (permanent rate 10x
// lower, one fault campaign seed per core). Fault accounting is summed
// over the fabrics that actually take faults — all four in split mode,
// the master's in merged mode, where the mirrors replay its layout.
func X23() string {
	var b strings.Builder
	b.WriteString("X23 — merged vs split fabric sharing under configuration upsets (K=4, steering)\n\n")

	rates := []float64{0, 1e-4, 5e-4, 2e-3}
	modes := []string{"merged", "split"}

	type point struct {
		mode string
		rate float64
	}
	var pts []point
	for _, m := range modes {
		for _, r := range rates {
			pts = append(pts, point{m, r})
		}
	}
	type outcome struct {
		st       cluster.Stats
		err      error
		injected int
		repaired int
		dead     int
	}
	results := sweep.Run(len(pts), 0, func(i int) outcome {
		pt := pts[i]
		progs := make([]repro.Program, 4)
		for j := range progs {
			progs[j] = PhasedWorkload(int64(7 + j))
		}
		params := cpu.DefaultParams()
		params.Cores = 4
		params.ClusterMode = pt.mode
		params.ClusterArbiter = "demand-weighted"
		params.FaultTransientRate = pt.rate
		params.FaultPermanentRate = pt.rate / 10
		params.FaultSeed = 55
		c := cluster.NewMulti(progs, repro.Options{Params: params, Policy: repro.PolicySteering})
		st, err := c.Run(MaxCycles)
		var o outcome
		o.st, o.err = st, err
		for j := 0; j < c.Cores(); j++ {
			fs := c.Core(j).Processor().Fabric().FaultStats()
			o.injected += fs.InjectedTransient + fs.InjectedPermanent
			o.repaired += fs.Repaired
			o.dead += fs.DeadSlots
		}
		return o
	})

	t := stats.NewTable("aggregate IPC and fault pipeline vs upset rate, by mode",
		"mode", "transient rate", "aggregate IPC", "fairness", "injected", "repaired", "dead slots")
	for i, pt := range pts {
		r := results[i]
		rateLabel := "off"
		if pt.rate > 0 {
			rateLabel = fmt.Sprintf("%.0e", pt.rate)
		}
		if r.err != nil {
			t.AddRow(pt.mode, rateLabel, "DNF", "-", r.injected, r.repaired, r.dead)
			continue
		}
		t.AddRow(pt.mode, rateLabel,
			fmtIPC(r.st.AggregateIPC()), fmt.Sprintf("%.3f", r.st.Fairness()),
			r.injected, r.repaired, r.dead)
	}
	b.WriteString(t.String())
	b.WriteString("\nMerged mode gives every core the full 8-slot fabric, so it leads when\nupsets are rare; each repair it schedules stalls all K cores' shared\nlayout. Split mode pays a standing partition tax but contains each\nupset to the 2-slot share of one core — the degraded-mode masks stay\nlocal, and fairness holds up better as the rate climbs.\n")
	return b.String()
}

// All runs every artefact and study in order.
func All() string {
	sections := []struct {
		name string
		f    func() string
	}{
		{"table1", Table1}, {"fig1", Fig1}, {"fig2", Fig2}, {"fig3", Fig3},
		{"fig5", Fig5}, {"fig7", Fig7}, {"cost", CostTable},
		{"x1", X1}, {"x1seeds", X1Seeds}, {"x2", X2}, {"x3", X3}, {"x4", X4}, {"x5", X5}, {"x6", X6}, {"x7", X7}, {"x8", X8}, {"x9", X9}, {"x10", X10}, {"x11", X11}, {"x12", X12}, {"x13", X13}, {"x14", X14}, {"x15", X15}, {"x16", X16}, {"x17", X17}, {"x18", X18}, {"x19", X19}, {"x20", X20}, {"x21", X21}, {"x22", X22}, {"x23", X23},
	}
	var b strings.Builder
	for i, s := range sections {
		if i > 0 {
			b.WriteString("\n" + strings.Repeat("=", 78) + "\n\n")
		}
		b.WriteString(s.f())
	}
	return b.String()
}

// Artifacts maps CLI artefact names to their generators.
func Artifacts() map[string]func() string {
	return map[string]func() string{
		"table1":  Table1,
		"fig1":    Fig1,
		"fig2":    Fig2,
		"fig3":    Fig3,
		"fig4":    Fig5, // figures 4-6 are one worked example
		"fig5":    Fig5,
		"fig6":    Fig5,
		"fig7":    Fig7,
		"cost":    CostTable,
		"x1":      X1,
		"x1seeds": X1Seeds,
		"x2":      X2,
		"x3":      X3,
		"x4":      X4,
		"x5":      X5,
		"x6":      X6,
		"x7":      X7,
		"x8":      X8,
		"x9":      X9,
		"x10":     X10,
		"x11":     X11,
		"x12":     X12,
		"x13":     X13,
		"x14":     X14,
		"x15":     X15,
		"x16":     X16,
		"x17":     X17,
		"x18":     X18,
		"x19":     X19,
		"x20":     X20,
		"x21":     X21,
		"x22":     X22,
		"x23":     X23,
		"all":     All,
	}
}
