package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

func TestTable1ContainsAllConfigurations(t *testing.T) {
	out := Table1()
	for _, want := range []string{"FFUs", "Config 0 (current)", "Config 1 (integer)",
		"Config 2 (memory)", "Config 3 (floating)", "continuation", "IntMDU"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestFig1ListsModules(t *testing.T) {
	out := Fig1()
	for _, want := range []string{"trace cache", "register update unit", "8 slots", "Config 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
}

func TestFig2TracesAllStages(t *testing.T) {
	out := Fig2()
	for _, want := range []string{"stage 1", "stage 2", "stage 3", "stage 4", "floating", "current"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3ReportsNoMismatches(t *testing.T) {
	out := Fig3()
	if !strings.Contains(out, "0/64 per-type mismatches") {
		t.Errorf("Fig3 circuit equivalence failed:\n%s", out)
	}
	if !strings.Contains(out, "divisor") {
		t.Error("Fig3 missing shifter-control table")
	}
}

func TestFig5SchedulesEveryInstruction(t *testing.T) {
	out := Fig5()
	for _, label := range []string{"Shift", "Sub", "Add", "Mul", "Load", "FPMul", "FPAdd"} {
		if !strings.Contains(out, label) {
			t.Errorf("Fig5 missing instruction %q", label)
		}
	}
	if !strings.Contains(out, "grant") {
		t.Error("Fig5 missing grant schedule")
	}
	// The paper's explicit fact: the Multiply depends on the Subtract.
	if !strings.Contains(out, "Mul    (entry 4, IntMDU): depends on Sub") {
		t.Errorf("Fig5 dependency line wrong:\n%s", out)
	}
}

func TestFig7ReportsNoMismatches(t *testing.T) {
	out := Fig7()
	if !strings.Contains(out, "0/80 mismatches") {
		t.Errorf("Fig7 circuit equivalence failed:\n%s", out)
	}
}

// TestX1ShapeHolds checks the headline comparative claims rather than
// absolute numbers: steering beats the FFU-only machine on every
// synthetic workload and is never worse than the worst static
// configuration on the phased workload.
func TestX1ShapeHolds(t *testing.T) {
	params := cpu.DefaultParams()
	prog := PhasedWorkload(7)
	steering := ipcOf(prog, params, cpu.PolicySteering)
	ffuOnly := ipcOf(prog, params, cpu.PolicyNone)
	if steering <= ffuOnly {
		t.Errorf("steering %.3f <= ffu-only %.3f on phased workload", steering, ffuOnly)
	}
	worstStatic := steering
	for _, pol := range []cpu.Policy{cpu.PolicyStaticInteger, cpu.PolicyStaticMemory, cpu.PolicyStaticFloating} {
		if v := ipcOf(prog, params, pol); v < worstStatic {
			worstStatic = v
		}
	}
	if steering < worstStatic {
		t.Errorf("steering %.3f below worst static %.3f", steering, worstStatic)
	}
	oracle := ipcOf(prog, params, cpu.PolicyOracle)
	if oracle < steering*0.8 {
		t.Errorf("oracle %.3f unexpectedly far below steering %.3f", oracle, steering)
	}
}

// TestX2LatencyMonotoneShape: steering IPC must not improve as
// reconfiguration gets more expensive, and at extreme latency it should
// approach a static machine's behaviour (within noise).
func TestX2LatencyShape(t *testing.T) {
	prog := PhasedWorkload(7)
	var prev float64 = -1
	for _, lat := range []int{1, 8, 64, 256} {
		params := cpu.DefaultParams()
		params.ReconfigLatency = lat
		ipc := ipcOf(prog, params, cpu.PolicySteering)
		if ipc < 0 {
			t.Fatalf("latency %d DNF", lat)
		}
		if prev >= 0 && ipc > prev*1.05 { // allow 5% noise
			t.Errorf("IPC rose from %.3f to %.3f as latency grew to %d", prev, ipc, lat)
		}
		prev = ipc
	}
}

func TestX3AgreementHigh(t *testing.T) {
	out := X3()
	if !strings.Contains(out, "selection agreement") {
		t.Fatalf("X3 output malformed:\n%s", out)
	}
	// The approximation should agree with the exact divider on a large
	// majority of demand vectors (spot value pinned loosely).
	if strings.Contains(out, "(0.0%)") {
		t.Error("approximate CEM never agreed with exact divider")
	}
}

func TestX4StarvationReported(t *testing.T) {
	out := X4()
	if !strings.Contains(out, "starved") {
		t.Errorf("X4 did not show starvation without FFUs:\n%s", out)
	}
	if !strings.Contains(out, "completed") {
		t.Errorf("X4 shows no completing machine:\n%s", out)
	}
}

func TestX5WindowSweepRuns(t *testing.T) {
	out := X5()
	if strings.Contains(out, "DNF") {
		t.Errorf("X5 had DNF rows:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 9 {
		t.Errorf("X5 too short:\n%s", out)
	}
}

func TestX6BasisStudyRuns(t *testing.T) {
	out := X6()
	for _, want := range []string{"default", "all-integer", "balanced", "fp-rich"} {
		if !strings.Contains(out, want) {
			t.Errorf("X6 missing basis %q", want)
		}
	}
	if strings.Contains(out, "DNF") {
		t.Errorf("X6 had DNF rows:\n%s", out)
	}
}

// TestArtifactsDeterministic: every fast artefact renders identically on
// repeated runs — the property EXPERIMENTS.md's "your numbers will match"
// statement relies on.
func TestArtifactsDeterministic(t *testing.T) {
	for _, name := range []string{"table1", "fig1", "fig2", "fig3", "fig5", "fig7", "cost"} {
		f := Artifacts()[name]
		if f == nil {
			t.Fatalf("artifact %q missing", name)
		}
		if f() != f() {
			t.Errorf("artifact %q is not deterministic", name)
		}
	}
}

func TestCostTableListsEveryCircuit(t *testing.T) {
	out := CostTable()
	for _, want := range []string{"CEM generator", "selection unit", "wake-up row",
		"availability circuit", "depth"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost table missing %q", want)
		}
	}
}

func TestArtifactsRegistryComplete(t *testing.T) {
	arts := Artifacts()
	for _, name := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "cost", "x1", "x1seeds", "x2", "x3", "x4", "x5", "x6",
		"x7", "x8", "x9", "x10", "x11", "x12", "x13", "x14", "x15", "x16", "x17",
		"x18", "x19", "x20", "x21", "x22", "x23", "all"} {
		if arts[name] == nil {
			t.Errorf("artifact %q missing", name)
		}
	}
}

// TestX18TelemetryComparison: the telemetry-backed policy comparison
// must produce a row per policy, log steering decisions for the
// selection-family policies, and none for the static ones.
func TestX18TelemetryComparison(t *testing.T) {
	out := X18()
	for _, policy := range []string{"steering", "demand", "full-reconfig", "oracle", "random", "static-int", "ffu-only"} {
		if !strings.Contains(out, policy) {
			t.Errorf("X18 output missing policy row %q", policy)
		}
	}
	if !strings.Contains(out, "stall slot-cycles") {
		t.Error("X18 output missing the decision-log stall column")
	}
}

// TestX19FaultSweep: every (policy, rate) point must complete — faults
// degrade throughput, never deadlock the machine — and the zero-rate
// rows must report a clean fault pipeline.
func TestX19FaultSweep(t *testing.T) {
	out := X19()
	if strings.Contains(out, "DNF") {
		t.Errorf("a fault-sweep point did not finish:\n%s", out)
	}
	for _, policy := range []string{"steering", "demand", "full-reconfig", "static-int"} {
		if !strings.Contains(out, policy) {
			t.Errorf("X19 output missing policy rows for %q", policy)
		}
	}
	for _, col := range []string{"injected", "repaired", "dead slots", "masked slot-cycles %"} {
		if !strings.Contains(out, col) {
			t.Errorf("X19 output missing column %q", col)
		}
	}
}

// TestX8TimelineTracksPhases: during the fp phase of the phased workload
// the fabric must at some point hold the floating configuration, and
// during the mem phase the memory configuration — adaptation in action.
func TestX8TimelineTracksPhases(t *testing.T) {
	out := X8()
	if !strings.Contains(out, "floating") {
		t.Error("timeline never reached the floating configuration during fp phases")
	}
	if !strings.Contains(out, "memory") {
		t.Error("timeline never reached the memory configuration during the mem phase")
	}
	if !strings.Contains(out, "hybrid") {
		t.Error("timeline shows no hybrid states despite partial reconfiguration")
	}
}

// TestX9SelectFreeShape: select-free scheduling must never beat the
// idealised select stage, and pileups must appear on the wide machine.
func TestX9SelectFreeShape(t *testing.T) {
	out := X9()
	if !strings.Contains(out, "pileups") {
		t.Fatalf("X9 malformed:\n%s", out)
	}
	if strings.Contains(out, "-") && strings.Contains(out, "slowdown  -") {
		t.Errorf("X9 has malformed slowdown cells:\n%s", out)
	}
	if !strings.Contains(out, "issue width 4") || !strings.Contains(out, "issue width 1") {
		t.Errorf("X9 missing a width table:\n%s", out)
	}
}

// TestX1FullGridClean runs the entire X1 grid — every workload and
// kernel under every policy — and requires zero DNF (cycle-budget
// exhaustion) and zero WRONG (kernel validation failure) cells. This is
// the broadest single regression gate in the repo.
func TestX1FullGridClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is ~180 simulations")
	}
	out := X1()
	if strings.Contains(out, "DNF") {
		t.Errorf("X1 grid contains DNF cells:\n%s", out)
	}
	if strings.Contains(out, "WRONG") {
		t.Errorf("X1 grid contains WRONG cells:\n%s", out)
	}
	for _, k := range workload.Kernels() {
		if !strings.Contains(out, k.Name) {
			t.Errorf("X1 kernel table missing %q", k.Name)
		}
	}
}

// TestStudyOutputsWellFormed smoke-runs every remaining study end to end
// and checks the rendered tables have their expected rows and no DNFs.
func TestStudyOutputsWellFormed(t *testing.T) {
	cases := []struct {
		name string
		f    func() string
		want []string
	}{
		{"x2", X2, []string{"256", "latency"}},
		{"x12", X12, []string{"width", "32"}},
		{"x13", X13, []string{"trace cache", "1024"}},
		{"x15", X15, []string{"oldest-first", "youngest-first"}},
		{"x16", X16, []string{"bimodal", "gshare-8"}},
		{"x17", X17, []string{"unlimited", "bus width"}},
		{"x1seeds", X1Seeds, []string{"geomean", "10/10"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			out := c.f()
			if strings.Contains(out, "DNF") {
				t.Errorf("%s contains DNF rows:\n%s", c.name, out)
			}
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Errorf("%s missing %q", c.name, w)
				}
			}
		})
	}
}

// TestX14SteeringRemovesUnitBoundCycles pins the mechanism measurement:
// steering must leave a far smaller unit-bound fraction than the
// FFU-only machine, and every cycle must land in exactly one bucket.
func TestX14SteeringRemovesUnitBoundCycles(t *testing.T) {
	prog := PhasedWorkload(7)
	run := func(pol cpu.Policy) cpu.Stats {
		p := buildMachine(prog, cpu.DefaultParams(), pol)
		st, err := p.Run(MaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		total := st.CyclesIssued + st.CyclesFrontend + st.CyclesUnits + st.CyclesDeps
		if total != st.Cycles {
			t.Fatalf("%s: bucket sum %d != cycles %d", pol, total, st.Cycles)
		}
		return st
	}
	steer := run(cpu.PolicySteering)
	ffu := run(cpu.PolicyNone)
	steerUnitFrac := float64(steer.CyclesUnits) / float64(steer.Cycles)
	ffuUnitFrac := float64(ffu.CyclesUnits) / float64(ffu.Cycles)
	if steerUnitFrac > ffuUnitFrac/2 {
		t.Errorf("steering unit-bound fraction %.3f not well below ffu-only %.3f",
			steerUnitFrac, ffuUnitFrac)
	}
}

// TestX12WidthMonotone: IPC must not fall as the machine widens at a
// fixed window, nor as the window deepens at a fixed width.
func TestX12WidthMonotone(t *testing.T) {
	prog := PhasedWorkload(7)
	ipcAt := func(width, window int) float64 {
		params := cpu.DefaultParams()
		params.DispatchWidth = width
		params.IssueWidth = width
		params.RetireWidth = width
		params.FetchWidthMem = width
		params.FetchWidthTC = width * 2
		params.WindowSize = window
		return ipcOf(prog, params, cpu.PolicySteering)
	}
	if a, b := ipcAt(1, 16), ipcAt(4, 16); b < a*0.98 {
		t.Errorf("widening 1->4 lowered IPC: %.3f -> %.3f", a, b)
	}
	if a, b := ipcAt(4, 7), ipcAt(4, 32); b < a*0.98 {
		t.Errorf("deepening 7->32 lowered IPC: %.3f -> %.3f", a, b)
	}
}

// TestX13TraceCacheHelpsTightLoops: the trace cache's fetch widening must
// clearly help the fib kernel (a tiny loop fully resident in a line).
func TestX13TraceCacheHelpsTightLoops(t *testing.T) {
	k := workload.KernelByName("fib")
	run := func(tcWidth int) float64 {
		params := cpu.DefaultParams()
		params.FetchWidthTC = tcWidth
		p := buildMachine(k.Program(), params, cpu.PolicySteering)
		st, err := p.Run(MaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	if with, without := run(4), run(2); with < without*1.1 {
		t.Errorf("trace cache widening did not help fib: %.3f vs %.3f", with, without)
	}
}

// TestX10LookaheadFixesSaxpy pins the headline X10 result: the fetch-fed
// demand view must substantially improve the churn-prone saxpy kernel.
func TestX10LookaheadFixesSaxpy(t *testing.T) {
	k := workload.KernelByName("saxpy")
	run := func(lookahead bool) float64 {
		params := cpu.DefaultParams()
		params.ManagerLookahead = lookahead
		p := buildMachine(k.Program(), params, cpu.PolicySteering)
		k.Setup(p.Memory(), p.SetReg)
		st, err := p.Run(MaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Validate(p.Reg, p.Memory()); err != nil {
			t.Fatal(err)
		}
		return st.IPC()
	}
	queueView, lookahead := run(false), run(true)
	if lookahead < queueView*1.2 {
		t.Errorf("lookahead %.3f did not clearly beat queue view %.3f on saxpy", lookahead, queueView)
	}
}

// TestX11ResidencyFixesSaxpy pins the X11 result: a small residency timer
// recovers the churn loss without hurting correctness.
func TestX11ResidencyFixesSaxpy(t *testing.T) {
	k := workload.KernelByName("saxpy")
	run := func(res int) (float64, int) {
		p := cpu.New(k.Program(), cpu.DefaultParams(), nil)
		m := core.NewManager(p.Fabric(), config.DefaultBasis())
		m.MinResidency = res
		p.SetManager(&baseline.Steering{M: m})
		k.Setup(p.Memory(), p.SetReg)
		st, err := p.Run(MaxCycles)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Validate(p.Reg, p.Memory()); err != nil {
			t.Fatal(err)
		}
		return st.IPC(), p.Fabric().Reconfigurations()
	}
	base, baseReconfigs := run(0)
	damped, dampedReconfigs := run(4)
	if damped < base*1.2 {
		t.Errorf("residency timer IPC %.3f did not clearly beat baseline %.3f", damped, base)
	}
	if dampedReconfigs >= baseReconfigs/5 {
		t.Errorf("residency timer reconfigs %d not well below baseline %d", dampedReconfigs, baseReconfigs)
	}
}

// TestX7DemandDrivenShape: demand-driven synthesis must clearly beat the
// FFU-only machine (it is a working manager) while generating more
// reconfiguration traffic than basis steering (no basis to settle into).
func TestX7DemandDrivenShape(t *testing.T) {
	prog := PhasedWorkload(7)
	params := cpu.DefaultParams()
	demand := ipcOf(prog, params, cpu.PolicyDemand)
	ffuOnly := ipcOf(prog, params, cpu.PolicyNone)
	if demand <= ffuOnly {
		t.Errorf("demand-driven %.3f not above ffu-only %.3f", demand, ffuOnly)
	}
	steering := ipcOf(prog, params, cpu.PolicySteering)
	if demand < steering*0.8 {
		t.Errorf("demand-driven %.3f unexpectedly far below steering %.3f", demand, steering)
	}
}

func TestX21ModelErrorWithinBound(t *testing.T) {
	// The documented accuracy envelope of the analytic queueing model:
	// every X21 scenario within ±25% of the simulator under both
	// adaptive policies, mean absolute error under 12%. This runs the
	// simulator live, so a calibration or profiler regression fails
	// here rather than silently drifting the published table.
	var sum float64
	var n int
	for _, sc := range x21Scenarios() {
		for _, pol := range []cpu.Policy{cpu.PolicySteering, cpu.PolicyPrefetch} {
			sim := x21Sim(sc, pol)
			model := x21Model(sc, pol)
			if sim <= 0 {
				t.Fatalf("%s/%v: simulator IPC %v", sc.name, pol, sim)
			}
			err := math.Abs(model-sim) / sim
			sum += err
			n++
			if err > 0.25 {
				t.Errorf("%s/%v: model IPC %.3f vs sim %.3f — |error| %.1f%% exceeds 25%%",
					sc.name, pol, model, sim, err*100)
			}
		}
	}
	if mean := sum / float64(n); mean > 0.12 {
		t.Errorf("mean |error| %.1f%% over %d points exceeds 12%%", mean*100, n)
	}
}

// TestX22ClusterScalingShape: every cluster point must finish, both
// arbiters and all three bus widths must appear, and the K=1 rows must
// be identical across arbiters — a single core leaves the arbiter
// nothing to decide, so any divergence is a cluster-layer bug.
func TestX22ClusterScalingShape(t *testing.T) {
	out := X22()
	if strings.Contains(out, "DNF") {
		t.Errorf("an X22 cluster point did not finish:\n%s", out)
	}
	for _, want := range []string{"round-robin", "demand-weighted", "unlimited", "bus width"} {
		if !strings.Contains(out, want) {
			t.Errorf("X22 output missing %q", want)
		}
	}
	k1rows := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		// A data row is "<cores> <bus> <ipc> (<fair>) <ipc> (<fair>)".
		if len(f) != 6 || f[0] != "1" {
			continue
		}
		k1rows++
		if f[2] != f[4] || f[3] != f[5] {
			t.Errorf("K=1 row differs across arbiters: %q", line)
		}
	}
	if k1rows != 3 {
		t.Errorf("expected 3 K=1 rows (one per bus width), found %d:\n%s", k1rows, out)
	}
}

// TestX23ModeFaultSweepShape: both modes must finish every fault rate,
// the zero-rate rows must report a clean fault pipeline, and the
// faulted rows must show injections.
func TestX23ModeFaultSweepShape(t *testing.T) {
	out := X23()
	if strings.Contains(out, "DNF") {
		t.Errorf("an X23 point did not finish:\n%s", out)
	}
	for _, want := range []string{"merged", "split", "injected", "repaired", "dead slots", "off"} {
		if !strings.Contains(out, want) {
			t.Errorf("X23 output missing %q", want)
		}
	}
}
