// Package experiments regenerates every artefact of the paper — Table 1
// and Figures 1-7 as structural/behavioural reproductions — plus the
// quantitative extension studies X1-X6 indexed in DESIGN.md. Each
// function returns printable text; cmd/paperrepro is the CLI front end
// and EXPERIMENTS.md records the outputs.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/avail"
	"repro/internal/cem"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/hwcost"
	"repro/internal/rfu"
	"repro/internal/stats"
	"repro/internal/wakeup"
)

// Table1 reproduces the paper's Table 1: the number of each functional
// unit type provided by the fixed units and by each configuration, plus
// the 3-bit resource-type encodings.
func Table1() string {
	t := stats.NewTable("Table 1 — functional units per configuration (counts in the reconfigurable fabric; FFUs add one of each type)",
		"", "IntALU", "IntMDU", "LSU", "FPALU", "FPMDU", "slots")
	ffu := config.FFUCounts()
	t.AddRow("FFUs", ffu[0], ffu[1], ffu[2], ffu[3], ffu[4], "-")
	t.AddRow("Config 0 (current)", "dyn", "dyn", "dyn", "dyn", "dyn", arch.NumRFUSlots)
	for i, cfg := range config.DefaultBasis() {
		c := cfg.Counts()
		t.AddRow(fmt.Sprintf("Config %d (%s)", i+1, cfg.Name), c[0], c[1], c[2], c[3], c[4], c.Slots())
	}

	e := stats.NewTable("Resource type encodings (3-bit, allocation vector)",
		"resource", "encoding")
	e.AddRow("(empty slot)", fmt.Sprintf("%03b", arch.EncEmpty))
	for _, ty := range arch.UnitTypes() {
		e.AddRow(ty.String(), fmt.Sprintf("%03b", arch.Encode(ty)))
	}
	e.AddRow("(continuation)", fmt.Sprintf("%03b", arch.EncCont))

	s := stats.NewTable("Slot costs (§4.2)", "unit type", "slots")
	for _, ty := range arch.UnitTypes() {
		s.AddRow(ty.String(), arch.SlotCost(ty))
	}
	return t.String() + "\n" + e.String() + "\n" + s.String()
}

// Fig1 reproduces Figure 1 as the live module inventory of a constructed
// machine: the fixed modules, the fixed functional units, and the
// reconfigurable slot fabric with the three predefined configurations.
func Fig1() string {
	var b strings.Builder
	b.WriteString("Figure 1 — partially run-time reconfigurable architecture (live inventory)\n\n")
	b.WriteString("Fixed modules: instruction memory, fetch unit, trace cache, instruction decoder,\n")
	b.WriteString("               configuration manager (selection unit + loader), register update unit,\n")
	b.WriteString("               register files (32 int + 32 fp), data memory + cache\n\n")
	b.WriteString("Fixed functional units (one per type):\n")
	for _, ty := range arch.UnitTypes() {
		fmt.Fprintf(&b, "  FFU %-6s  latency class %s\n", ty, ty)
	}
	fmt.Fprintf(&b, "\nReconfigurable fabric: %d slots, partial per-span reconfiguration\n", arch.NumRFUSlots)
	b.WriteString("Predefined steering configurations:\n")
	for i, cfg := range config.DefaultBasis() {
		fmt.Fprintf(&b, "  Config %d %v\n", i+1, cfg)
	}
	b.WriteString("Config 0 (current): the live allocation vector — generally a hybrid of the above\n")
	return b.String()
}

// Fig2 reproduces Figure 2 by tracing the four selection-unit stages on a
// demand scenario: a fresh fabric steered first by FP-heavy demand, then
// by integer demand, then settling.
func Fig2() string {
	var b strings.Builder
	b.WriteString("Figure 2 — configuration selection unit, staged trace\n\n")
	fabric := rfu.New(0)
	m := core.NewManager(fabric, config.DefaultBasis())

	scenario := []struct {
		name  string
		units []arch.UnitType
	}{
		{"FP burst", []arch.UnitType{arch.FPALU, arch.FPALU, arch.FPMDU, arch.FPMDU, arch.LSU}},
		{"same FP burst (settled)", []arch.UnitType{arch.FPALU, arch.FPALU, arch.FPMDU, arch.FPMDU, arch.LSU}},
		{"integer burst", []arch.UnitType{arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntMDU}},
		{"memory burst", []arch.UnitType{arch.LSU, arch.LSU, arch.LSU, arch.LSU, arch.IntALU}},
	}
	for step, sc := range scenario {
		fmt.Fprintf(&b, "cycle %d: queue = %s\n", step, sc.name)
		b.WriteString("  stage 1 (unit decoders, one-hot):\n")
		for _, u := range sc.units {
			oneHot := core.UnitDecoder(u)
			bits := make([]byte, arch.NumUnitTypes)
			for i, set := range oneHot {
				bits[i] = '0'
				if set {
					bits[i] = '1'
				}
			}
			fmt.Fprintf(&b, "    %-7s -> %s\n", u, bits)
		}
		req := core.EncodeRequirements(sc.units)
		fmt.Fprintf(&b, "  stage 2 (requirement encoders): %v\n", req)
		sel := m.Step(req)
		fmt.Fprintf(&b, "  stage 3 (CEM generators):       errors = %v\n", sel.Errors)
		fmt.Fprintf(&b, "  stage 4 (minimal error select): choice = %d (%s), 2-bit output %02b\n",
			sel.Choice, choiceName(m, sel.Choice), sel.Choice)
		fmt.Fprintf(&b, "  fabric after load: %v\n\n", fabric.Allocation().Slots)
	}
	return b.String()
}

func choiceName(m *core.Manager, choice int) string {
	if choice == 0 {
		return "current"
	}
	return m.Basis()[choice-1].Name
}

// Fig3 reproduces Figure 3: the shifter-control truth table of 3(c), a
// sweep of the error metric against the exact divider (the approximation
// study), and the exhaustive circuit-equivalence verdict for 3(b).
func Fig3() string {
	var b strings.Builder
	b.WriteString("Figure 3 — configuration error metric generation\n\n")

	tc := stats.NewTable("Fig. 3(c) — shifter control from availability quantity (upper two bits)",
		"avail (3-bit)", "q2 q1", "shift", "divisor")
	for q := 0; q < 8; q++ {
		s := cem.Shift(q)
		tc.AddRow(q, fmt.Sprintf("%d  %d", q>>2&1, q>>1&1), s, 1<<s)
	}
	b.WriteString(tc.String() + "\n")

	ta := stats.NewTable("Fig. 3(a) — per-type error term: shifter approximation vs exact divider",
		"required", "available", "approx req>>s", "exact floor(req/avail)", "delta")
	for req := 0; req <= 7; req++ {
		for _, av := range []int{0, 1, 2, 3, 4, 7} {
			a := cem.Contribution(req, av)
			var x int
			if av <= 1 {
				x = req
			} else {
				x = req / av
			}
			if req == 0 && av > 0 {
				continue // zero rows add noise
			}
			ta.AddRow(req, av, a, x, a-x)
		}
	}
	b.WriteString(ta.String() + "\n")

	// Circuit equivalence: exhaust the per-type path.
	mismatches := 0
	for r := 0; r < 8; r++ {
		for a := 0; a < 8; a++ {
			req := arch.Counts{r, 0, 0, 0, 0}
			av := arch.Counts{a, 7, 7, 7, 7}
			if cem.CircuitError(req, av) != cem.Error(req, av) {
				mismatches++
			}
		}
	}
	fmt.Fprintf(&b, "Fig. 3(b) gate-level circuit vs behavioural equation: %d/64 per-type mismatches (exhaustive)\n", mismatches)
	return b.String()
}

// Fig5 reproduces Figures 4-6: the paper's seven-instruction example as a
// dependency list, the wake-up array matrix of Fig. 5, and a
// cycle-by-cycle request/grant schedule through the Fig. 6 logic.
func Fig5() string {
	var b strings.Builder
	b.WriteString("Figures 4-6 — wake-up array worked example\n\n")
	a, rows := wakeup.PaperExample()
	labels := wakeup.PaperExampleLabels

	b.WriteString("Fig. 4 — dependency graph:\n")
	for i, r := range rows {
		var deps []string
		for j := 0; j < a.Size(); j++ {
			if a.DependsOn(r, j) {
				for k, rr := range rows {
					if rr == j {
						deps = append(deps, labels[k])
					}
				}
			}
		}
		if len(deps) == 0 {
			fmt.Fprintf(&b, "  %-6s (entry %d, %v): no dependencies\n", labels[i], i+1, a.Unit(r))
		} else {
			fmt.Fprintf(&b, "  %-6s (entry %d, %v): depends on %s\n", labels[i], i+1, a.Unit(r), strings.Join(deps, ", "))
		}
	}

	b.WriteString("\nFig. 5 — wake-up array (unit columns, then result-required-from columns):\n")
	b.WriteString(a.Dump(labels))

	b.WriteString("\nFig. 6 — request/grant schedule with all units available:\n")
	allAvail := [arch.NumUnitTypes]bool{}
	for i := range allAvail {
		allAvail[i] = true
	}
	granted := map[int]bool{}
	for cycle := 0; len(granted) < len(rows) && cycle < 40; cycle++ {
		reqs := a.Requests(allAvail)
		var names []string
		for _, r := range reqs {
			for k, rr := range rows {
				if rr == r {
					names = append(names, labels[k])
				}
			}
			a.Grant(r)
			granted[r] = true
		}
		if len(names) > 0 {
			fmt.Fprintf(&b, "  cycle %2d: grant %s\n", cycle, strings.Join(names, ", "))
		} else {
			fmt.Fprintf(&b, "  cycle %2d: (waiting on results)\n", cycle)
		}
		a.Tick()
	}
	return b.String()
}

// CostTable reports the hardware cost of every paper circuit — the
// quantitative backing for the paper's "fast and efficient" selection
// circuit claim.
func CostTable() string {
	var b strings.Builder
	b.WriteString("Hardware cost of the paper's circuits (netlist model: ripple-carry adders,\n")
	b.WriteString("linear comparator chains; MUX counted as 3 two-input equivalents)\n\n")
	t := stats.NewTable("",
		"circuit", "inputs", "and", "or", "xor", "not", "mux", "2-in equiv", "depth")
	for _, c := range hwcost.All() {
		t.AddRow(c.Name, c.Inputs,
			c.Gates["and"], c.Gates["or"], c.Gates["xor"], c.Gates["not"], c.Gates["mux"],
			c.TwoInputEquivalent(), c.Depth)
	}
	b.WriteString(t.String())
	b.WriteString("\nThe full selection unit (stages 2-4 of Fig. 2) fits in ~1.5k two-input\ngates — small beside a single 32-bit adder-class functional unit —\nsupporting the paper's efficiency claim for per-cycle configuration\nselection.\n")
	return b.String()
}

// Fig7 reproduces Figure 7 / Equation 1: availability scenarios over a
// populated allocation vector, plus the exhaustive circuit-equivalence
// verdict.
func Fig7() string {
	var b strings.Builder
	b.WriteString("Figure 7 / Eq. 1 — resource availability computation\n\n")

	v := config.NewAllocationVector()
	v.Slots = config.DefaultBasis()[2].Layout // floating config
	alloc := v.Entries()
	fmt.Fprintf(&b, "allocation vector: %v\n\n", v)

	scenarios := []struct {
		name string
		busy func(sig []bool)
	}{
		{"everything idle", func(sig []bool) {}},
		{"RFU FPALU busy (head slot 2)", func(sig []bool) { sig[2] = false }},
		{"all FFUs busy", func(sig []bool) {
			for i := arch.NumRFUSlots; i < len(sig); i++ {
				sig[i] = false
			}
		}},
		{"everything busy", func(sig []bool) {
			for i := range sig {
				sig[i] = false
			}
		}},
	}
	t := stats.NewTable("available(t) per scenario", "scenario", "IntALU", "IntMDU", "LSU", "FPALU", "FPMDU")
	for _, sc := range scenarios {
		sig := make([]bool, len(alloc))
		for i := range sig {
			sig[i] = true
		}
		sc.busy(sig)
		got := avail.AllAvailable(alloc, sig)
		t.AddRow(sc.name, got[0], got[1], got[2], got[3], got[4])
	}
	b.WriteString(t.String())

	mismatches, total := 0, 0
	for enc := 0; enc < 8; enc++ {
		for sigBit := 0; sigBit < 2; sigBit++ {
			for _, ty := range arch.UnitTypes() {
				al := []arch.Encoding{arch.Encoding(enc)}
				sg := []bool{sigBit == 1}
				total++
				if avail.CircuitAvailable(ty, al, sg) != avail.Available(ty, al, sg) {
					mismatches++
				}
			}
		}
	}
	fmt.Fprintf(&b, "\nFig. 7 gate-level circuit vs Eq. 1: %d/%d mismatches (exhaustive per-entry)\n", mismatches, total)
	return b.String()
}
