package benchfmt

import (
	"strings"
	"testing"
)

func TestParseLineStandard(t *testing.T) {
	r, ok := ParseLine("BenchmarkFig2SelectionUnit-8   \t 7651778\t       155.0 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "BenchmarkFig2SelectionUnit" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.N != 7651778 || r.NsPerOp != 155.0 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("values = %+v", r)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	r, ok := ParseLine("BenchmarkX1Phased/steering-4     343   3506586 ns/op     0.8123 IPC     3.456 Mcycles/s   1048576 B/op   8089 allocs/op")
	if !ok {
		t.Fatal("line not recognised")
	}
	if r.Name != "BenchmarkX1Phased/steering" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Metrics["IPC"] != 0.8123 || r.Metrics["Mcycles/s"] != 3.456 {
		t.Fatalf("custom metrics = %v", r.Metrics)
	}
	if r.AllocsPerOp != 8089 {
		t.Fatalf("allocs/op = %v", r.AllocsPerOp)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  \trepro\t12.3s",
		"goos: linux",
		"BenchmarkFoo", // no fields
		"Benchmarking is fun 3 ns/op",
		"BenchmarkOdd-8 100 1.0", // dangling value without unit
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("line %q parsed as a result", line)
		}
	}
}

func TestParseStream(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig3CEMBehavioural-8   	246170518	         4.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig3CEMGateLevel-8   	 1000000	      1137 ns/op	     488 B/op	      53 allocs/op
PASS
ok  	repro	3.1s
`
	rs, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	if rs[1].Name != "BenchmarkFig3CEMGateLevel" || rs[1].AllocsPerOp != 53 {
		t.Fatalf("second result = %+v", rs[1])
	}
}
