// Package benchfmt parses the output of `go test -bench` into typed
// results, so the perf-trajectory harness (cmd/benchjson) can commit
// machine-readable benchmark datapoints (BENCH_<date>.json) and future
// sessions can diff them. Only the benchmark result lines are parsed;
// everything else (PASS, ok, warm-up logs) is ignored.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line, e.g.
//
//	BenchmarkFig2SelectionUnit-8  7651778  155.0 ns/op  0 B/op  0 allocs/op
//
// Standard units get typed fields; every unit (including custom
// testing.B.ReportMetric units like "IPC" or "Mcycles/s") also lands in
// Metrics keyed by its unit string.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (sub-benchmarks keep their slash-separated path).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// N is the iteration count of the measured run.
	N int64 `json:"n"`

	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`

	// Metrics holds every reported value keyed by unit, custom units
	// included ("ns/op", "B/op", "allocs/op", "IPC", "Mcycles/s", ...).
	Metrics map[string]float64 `json:"metrics"`
}

// ParseLine parses one line of `go test -bench` output. ok is false for
// lines that are not benchmark results.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// A result line is "BenchmarkName[-P] N value unit [value unit]...".
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	// The rune after "Benchmark" must be uppercase or a digit — this is
	// how `go test` itself distinguishes benchmark identifiers.
	rest := fields[0][len("Benchmark"):]
	if rest == "" || !(rest[0] >= 'A' && rest[0] <= 'Z' || rest[0] >= '0' && rest[0] <= '9') {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil && p > 0 {
			r.Name = r.Name[:i]
			r.Procs = p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.N = n
	// The remainder is value/unit pairs.
	if (len(fields)-2)%2 != 0 {
		return Result{}, false
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		r.Metrics[unit] = v
		switch unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}

// Parse reads benchmark results from r (typically the stdout of
// `go test -bench`), skipping non-result lines.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if res, ok := ParseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("benchfmt: reading output: %w", err)
	}
	return out, nil
}
