package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindFetch: "fetch", KindDispatch: "dispatch", KindIssue: "issue",
		KindRetire: "retire", KindFlush: "flush", KindReconfig: "reconfig",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind format")
	}
}

func TestBufferBounded(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Record(Event{Cycle: i})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !b.Dropped() {
		t.Error("Dropped = false after eviction")
	}
	evs := b.Events()
	for i, e := range evs {
		if e.Cycle != i+2 {
			t.Errorf("event %d cycle = %d, want %d (oldest-first after eviction)", i, e.Cycle, i+2)
		}
	}
}

func TestBufferUnderLimit(t *testing.T) {
	b := NewBuffer(10)
	b.Record(Event{Cycle: 1})
	b.Record(Event{Cycle: 2})
	evs := b.Events()
	if len(evs) != 2 || evs[0].Cycle != 1 || b.Dropped() {
		t.Errorf("events = %v dropped = %v", evs, b.Dropped())
	}
}

func TestBufferPanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewBuffer(0)
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 12, Kind: KindIssue, Seq: 3, PC: 7, Latency: 4, Text: "mul r1, r2, r3"}
	s := e.String()
	for _, want := range []string{"12", "issue", "#3", "lat=4", "mul"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	r := Event{Cycle: 5, Kind: KindReconfig, Text: "2 span(s)"}
	if !strings.Contains(r.String(), "2 span(s)") {
		t.Errorf("reconfig string %q", r.String())
	}
}

func TestLog(t *testing.T) {
	out := Log([]Event{{Cycle: 1, Kind: KindFetch}, {Cycle: 2, Kind: KindRetire}})
	if strings.Count(out, "\n") != 2 {
		t.Errorf("Log output:\n%s", out)
	}
}

func TestPipeviewMarkers(t *testing.T) {
	events := []Event{
		{Cycle: 0, Kind: KindFetch, Seq: 1, PC: 0, Text: "add r1, r2, r3"},
		{Cycle: 1, Kind: KindDispatch, Seq: 1, PC: 0},
		{Cycle: 2, Kind: KindIssue, Seq: 1, PC: 0, Latency: 3},
		{Cycle: 6, Kind: KindRetire, Seq: 1, PC: 0},
		{Cycle: 0, Kind: KindFetch, Seq: 2, PC: 1, Text: "beq r1, r0, 4"},
		{Cycle: 1, Kind: KindDispatch, Seq: 2, PC: 1},
		{Cycle: 3, Kind: KindFlush, Seq: 2, PC: 1},
		{Cycle: 4, Kind: KindReconfig, Text: "to memory"},
	}
	out := Pipeview(events, 0, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 instructions + 1 reconfig row
		t.Fatalf("pipeview lines = %d:\n%s", len(lines), out)
	}
	// Row 1: F D I = = . R
	row1 := lines[1]
	chart1 := row1[strings.LastIndex(row1, " ")+1:]
	if chart1 != "FDI==.R.." {
		t.Errorf("row 1 chart = %q, want FDI==.R..", chart1)
	}
	row2 := lines[2]
	chart2 := row2[strings.LastIndex(row2, " ")+1:]
	if chart2 != "FD.x....." {
		t.Errorf("row 2 chart = %q, want FD.x.....", chart2)
	}
	// The reconfig happened after both fetches, so it renders last: a
	// seq-less row with a C marker at its cycle.
	row3 := lines[3]
	chart3 := row3[strings.LastIndex(row3, " ")+1:]
	if chart3 != "....C...." {
		t.Errorf("reconfig chart = %q, want ....C....", chart3)
	}
	if !strings.HasPrefix(row3, "-") || !strings.Contains(row3, "to memory") {
		t.Errorf("reconfig row = %q, want seq-less row carrying the event text", row3)
	}
}

func TestPipeviewReconfigInterleavesWithFlushes(t *testing.T) {
	events := []Event{
		{Cycle: 0, Kind: KindFetch, Seq: 1, PC: 0, Text: "add r1, r2, r3"},
		{Cycle: 2, Kind: KindRetire, Seq: 1, PC: 0},
		{Cycle: 3, Kind: KindReconfig, Text: "steer int -> fp"},
		{Cycle: 4, Kind: KindFetch, Seq: 2, PC: 1, Text: "beq r1, r0, 8"},
		{Cycle: 5, Kind: KindDispatch, Seq: 2, PC: 1},
		{Cycle: 6, Kind: KindFlush, Seq: 2, PC: 1},
		{Cycle: 7, Kind: KindReconfig, Text: "steer fp -> memory"},
		{Cycle: 8, Kind: KindFetch, Seq: 3, PC: 2, Text: "ld r4, 0(r5)"},
		{Cycle: 9, Kind: KindRetire, Seq: 3, PC: 2},
	}
	out := Pipeview(events, 0, 9)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // header + 3 instructions + 2 reconfigs
		t.Fatalf("pipeview lines = %d:\n%s", len(lines), out)
	}
	// Chronological order top to bottom: inst 1, reconfig@3, flushed
	// inst 2, reconfig@7, inst 3.
	wantOrder := []string{"add r1", "steer int -> fp", "beq r1", "steer fp -> memory", "ld r4"}
	for i, want := range wantOrder {
		if !strings.Contains(lines[i+1], want) {
			t.Errorf("line %d = %q, want it to contain %q", i+1, lines[i+1], want)
		}
	}
	chartOf := func(line string) string { return line[strings.LastIndex(line, " ")+1:] }
	if got := chartOf(lines[2]); got != "...C......" {
		t.Errorf("first reconfig chart = %q, want ...C......", got)
	}
	if got := chartOf(lines[3]); got != "....FDx..." {
		t.Errorf("flushed instruction chart = %q, want ....FDx...", got)
	}
	if got := chartOf(lines[4]); got != ".......C.." {
		t.Errorf("second reconfig chart = %q, want .......C..", got)
	}
}

func TestPipeviewReconfigClippedOutsideRange(t *testing.T) {
	events := []Event{
		{Cycle: 5, Kind: KindDispatch, Seq: 1, Text: "in range"},
		{Cycle: 6, Kind: KindRetire, Seq: 1},
		{Cycle: 50, Kind: KindReconfig, Text: "far future reconfig"},
	}
	out := Pipeview(events, 0, 10)
	if strings.Contains(out, "far future reconfig") {
		t.Error("reconfig outside the cycle range was not clipped")
	}
	if !strings.Contains(out, "in range") {
		t.Error("in-range instruction missing")
	}
}

func TestUntilCutsOffAfterCycle(t *testing.T) {
	b := NewBuffer(100)
	u := Until{R: b, LastCycle: 5}
	for c := 0; c < 10; c++ {
		u.Record(Event{Cycle: c})
	}
	if b.Len() != 6 { // cycles 0..5 inclusive
		t.Errorf("recorded %d events, want 6", b.Len())
	}
	for _, e := range b.Events() {
		if e.Cycle > 5 {
			t.Errorf("event past cutoff recorded: cycle %d", e.Cycle)
		}
	}
}

func TestPipeviewClipsRange(t *testing.T) {
	events := []Event{
		{Cycle: 0, Kind: KindDispatch, Seq: 1, Text: "early"},
		{Cycle: 1, Kind: KindRetire, Seq: 1},
		{Cycle: 50, Kind: KindDispatch, Seq: 2, Text: "late"},
		{Cycle: 51, Kind: KindRetire, Seq: 2},
	}
	out := Pipeview(events, 40, 60)
	if strings.Contains(out, "early") {
		t.Error("instruction entirely before the range not clipped")
	}
	if !strings.Contains(out, "late") {
		t.Error("in-range instruction missing")
	}
	if Pipeview(events, 10, 5) != "" {
		t.Error("inverted range did not produce empty output")
	}
}
