// Package trace records cycle-by-cycle pipeline events from the
// simulator — fetch, dispatch, issue, retire, flush and reconfiguration —
// and renders them as an event log or as a per-instruction pipeline view
// (one row per instruction, one column per cycle), the debugging view
// used to inspect steering behaviour.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a pipeline event.
type Kind int

// Event kinds, in pipeline order.
const (
	KindFetch Kind = iota
	KindDispatch
	KindIssue
	KindRetire
	KindFlush
	KindReconfig
)

var kindNames = map[Kind]string{
	KindFetch:    "fetch",
	KindDispatch: "dispatch",
	KindIssue:    "issue",
	KindRetire:   "retire",
	KindFlush:    "flush",
	KindReconfig: "reconfig",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one pipeline occurrence.
type Event struct {
	Cycle int
	Kind  Kind
	// Seq identifies the dynamic instruction (dispatch order); zero for
	// non-instruction events such as reconfigurations.
	Seq uint32
	PC  uint32
	// Latency is the execution latency recorded at issue (including any
	// cache-miss extension), zero otherwise.
	Latency int
	// Text carries the disassembly or event detail.
	Text string
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case KindReconfig:
		return fmt.Sprintf("cycle %5d: %-8s %s", e.Cycle, e.Kind, e.Text)
	case KindIssue:
		return fmt.Sprintf("cycle %5d: %-8s #%-5d pc=%-5d lat=%-3d %s",
			e.Cycle, e.Kind, e.Seq, e.PC, e.Latency, e.Text)
	default:
		return fmt.Sprintf("cycle %5d: %-8s #%-5d pc=%-5d %s",
			e.Cycle, e.Kind, e.Seq, e.PC, e.Text)
	}
}

// Recorder receives events; implementations must be cheap when disabled.
type Recorder interface {
	Record(Event)
}

// Buffer is a bounded in-memory Recorder: once the limit is reached the
// oldest events are dropped.
type Buffer struct {
	limit  int
	events []Event
	start  int // ring start when full
	full   bool
}

// NewBuffer builds a Recorder holding at most limit events (limit must be
// positive).
func NewBuffer(limit int) *Buffer {
	if limit <= 0 {
		panic("trace: buffer limit must be positive")
	}
	return &Buffer{limit: limit, events: make([]Event, 0, limit)}
}

// Record stores the event, evicting the oldest when full.
func (b *Buffer) Record(e Event) {
	if len(b.events) < b.limit {
		b.events = append(b.events, e)
		return
	}
	b.full = true
	b.events[b.start] = e
	b.start = (b.start + 1) % b.limit
}

// Events returns the recorded events, oldest first.
func (b *Buffer) Events() []Event {
	if !b.full {
		out := make([]Event, len(b.events))
		copy(out, b.events)
		return out
	}
	out := make([]Event, 0, b.limit)
	out = append(out, b.events[b.start:]...)
	out = append(out, b.events[:b.start]...)
	return out
}

// Len returns the number of events held.
func (b *Buffer) Len() int { return len(b.events) }

// Dropped reports whether the buffer ever evicted events.
func (b *Buffer) Dropped() bool { return b.full }

// Until wraps a Recorder and drops events after a cycle cutoff — used to
// trace just the start of a long run without the ring buffer evicting the
// early events.
type Until struct {
	R         Recorder
	LastCycle int
}

// Record forwards events at or before the cutoff cycle.
func (u Until) Record(e Event) {
	if e.Cycle <= u.LastCycle {
		u.R.Record(e)
	}
}

// Log renders all events one per line.
func Log(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// instRow collects one dynamic instruction's lifecycle.
type instRow struct {
	seq      uint32
	pc       uint32
	text     string
	fetch    int
	dispatch int
	issue    int
	latency  int
	retire   int
	flushed  int
}

// Pipeview renders the classic pipeline chart: one row per dynamic
// instruction, one column per cycle, with markers
//
//	F fetch   D dispatch   I issue   = executing   R retire   x flushed
//
// Reconfiguration events render as their own rows — marker C at the
// event cycle — interleaved chronologically with the instruction rows,
// so steering activity is visible against the instruction stream.
// Cycles outside [fromCycle, toCycle] are clipped; instructions and
// events entirely outside the range are omitted.
func Pipeview(events []Event, fromCycle, toCycle int) string {
	rows := map[uint32]*instRow{}
	order := []uint32{}
	var reconfigs []Event
	get := func(e Event) *instRow {
		r, ok := rows[e.Seq]
		if !ok {
			r = &instRow{seq: e.Seq, pc: e.PC, fetch: -1, dispatch: -1, issue: -1, retire: -1, flushed: -1}
			rows[e.Seq] = r
			order = append(order, e.Seq)
		}
		return r
	}
	for _, e := range events {
		if e.Kind == KindReconfig {
			if e.Cycle >= fromCycle && e.Cycle <= toCycle {
				reconfigs = append(reconfigs, e)
			}
			continue
		}
		r := get(e)
		if e.Text != "" {
			r.text = e.Text
		}
		switch e.Kind {
		case KindFetch:
			r.fetch = e.Cycle
		case KindDispatch:
			r.dispatch = e.Cycle
		case KindIssue:
			r.issue = e.Cycle
			r.latency = e.Latency
		case KindRetire:
			r.retire = e.Cycle
		case KindFlush:
			r.flushed = e.Cycle
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	sort.SliceStable(reconfigs, func(i, j int) bool { return reconfigs[i].Cycle < reconfigs[j].Cycle })

	width := toCycle - fromCycle + 1
	if width <= 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %-5s %-26s %s\n", "seq", "pc", "instruction", "cycles "+fmt.Sprint(fromCycle)+"..")
	emitReconfig := func(e Event) {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		line[e.Cycle-fromCycle] = 'C'
		text := e.Text
		if len(text) > 26 {
			text = text[:26]
		}
		fmt.Fprintf(&sb, "%-6s %-5s %-26s %s\n", "-", "-", text, line)
	}
	nextRC := 0
	for _, seq := range order {
		r := rows[seq]
		last := r.retire
		if r.flushed >= 0 && r.flushed > last {
			last = r.flushed
		}
		if last < fromCycle && last >= 0 {
			continue
		}
		if r.fetch > toCycle && r.fetch >= 0 {
			continue
		}
		// Flush any reconfigurations that happened before this
		// instruction entered the pipeline, so the chart reads in
		// chronological order top to bottom.
		for nextRC < len(reconfigs) && r.fetch >= 0 && reconfigs[nextRC].Cycle < r.fetch {
			emitReconfig(reconfigs[nextRC])
			nextRC++
		}
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		mark := func(cycle int, c byte) {
			if cycle >= fromCycle && cycle <= toCycle {
				line[cycle-fromCycle] = c
			}
		}
		if r.issue >= 0 {
			end := r.issue + r.latency - 1
			for c := r.issue + 1; c <= end; c++ {
				mark(c, '=')
			}
		}
		mark(r.fetch, 'F')
		mark(r.dispatch, 'D')
		mark(r.issue, 'I')
		mark(r.retire, 'R')
		mark(r.flushed, 'x')
		text := r.text
		if len(text) > 26 {
			text = text[:26]
		}
		fmt.Fprintf(&sb, "%-6d %-5d %-26s %s\n", r.seq, r.pc, text, line)
	}
	for ; nextRC < len(reconfigs); nextRC++ {
		emitReconfig(reconfigs[nextRC])
	}
	return sb.String()
}
