// Package core implements the paper's primary contribution: the
// configuration manager of §3 — the four-stage configuration selection
// unit of Fig. 2 (unit decoders, resource requirement encoders,
// configuration error metric generators, minimal error selection) and the
// configuration loader of §3.2 that steers the reconfigurable fabric
// toward the selected configuration by partially reconfiguring only the
// RFUs that differ and are idle.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cem"
	"repro/internal/config"
	"repro/internal/logic"
	"repro/internal/rfu"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// UnitDecoder is stage 1 of the selection unit: it turns one queued
// instruction's required unit type into the one-hot vector of Fig. 2.
func UnitDecoder(t arch.UnitType) [arch.NumUnitTypes]bool {
	var v [arch.NumUnitTypes]bool
	v[t] = true
	return v
}

// EncodeRequirements is stage 2: it sums the one-hot vectors of all
// queued instructions into the per-type three-bit requirement counts.
// With at most arch.QueueSize instructions the counts cannot overflow.
func EncodeRequirements(units []arch.UnitType) arch.Counts {
	var c arch.Counts
	for _, t := range units {
		oneHot := UnitDecoder(t)
		for ty, set := range oneHot {
			if set {
				c[ty]++
			}
		}
	}
	return c
}

// Selection is the outcome of one pass through the selection unit.
type Selection struct {
	// Choice identifies the winning configuration: 0 is the current
	// configuration, 1..3 the predefined steering configurations — the
	// unit's two-bit output.
	Choice int
	// Errors holds the four configuration error metrics, indexed like
	// Choice.
	Errors [arch.NumConfigs]int
	// Distances holds each candidate's reconfiguration distance from
	// the current allocation (zero for the current configuration).
	Distances [arch.NumConfigs]int
	// Required is the encoded requirement vector the metrics scored.
	Required arch.Counts
}

// Current reports whether the selection kept the current configuration.
func (s Selection) Current() bool { return s.Choice == 0 }

// key builds the lexicographic comparison key the minimal-error selector
// orders candidates by: error first, then reconfiguration distance (the
// paper's tie-break toward least reconfiguration, which also makes the
// current configuration — distance zero — win every tie), then candidate
// index for determinism.
func key(err, distance, index int) int {
	return err<<6 | distance<<2 | index
}

// MinimalErrorSelect is stage 4: it returns the index of the candidate
// with the smallest (error, distance, index) key. Errors must be 3-bit
// values and distances at most arch.NumRFUSlots; out-of-range inputs
// panic, as they indicate a wiring error.
func MinimalErrorSelect(errors, distances [arch.NumConfigs]int) int {
	best := -1
	bestKey := 0
	for i := 0; i < arch.NumConfigs; i++ {
		if errors[i] < 0 || errors[i] > 7 || distances[i] < 0 || distances[i] > arch.NumRFUSlots {
			panic(fmt.Sprintf("core: selection inputs out of range: err=%d dist=%d", errors[i], distances[i]))
		}
		k := key(errors[i], distances[i], i)
		if best < 0 || k < bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

// CircuitMinimalErrorSelect is the gate-level form of stage 4: each
// candidate's 3-bit error, 4-bit distance and 2-bit index are
// concatenated into a 9-bit key (error most significant) and a comparator
// chain keeps the smallest, emitting the winner's two-bit index. Tests
// prove it equivalent to MinimalErrorSelect.
func CircuitMinimalErrorSelect(errors, distances [arch.NumConfigs]int) int {
	// All buses live in fixed-size stack arrays so the comparator chain
	// runs without heap allocation (asserted by alloc_test.go).
	var bestKeyBits, keyBits [9]logic.Bit
	var bestIdxBits, idxBits [2]logic.Bit
	bestKey := logic.Bus(bestKeyBits[:])
	k := logic.Bus(keyBits[:])
	bestIdx := logic.Bus(bestIdxBits[:])
	idx := logic.Bus(idxBits[:])

	packCompareKey(bestKey, errors[0], distances[0], 0)
	for i := 1; i < arch.NumConfigs; i++ {
		packCompareKey(k, errors[i], distances[i], i)
		smaller := logic.LessThan(k, bestKey)
		for b := range bestKey {
			bestKey[b] = logic.Mux2(smaller, bestKey[b], k[b])
		}
		idx.SetUint(uint64(i))
		for b := range bestIdx {
			bestIdx[b] = logic.Mux2(smaller, bestIdx[b], idx[b])
		}
	}
	return int(bestIdx.Uint())
}

// packCompareKey wires one candidate's 9-bit comparison key into dst:
// two index bits (least significant), four distance bits, three error
// bits (most significant) — so LessThan orders by error, then distance,
// then index, matching MinimalErrorSelect's key function.
func packCompareKey(dst logic.Bus, err, dist, idx int) {
	dst[0:2].SetUint(uint64(idx))
	dst[2:6].SetUint(uint64(dist))
	dst[6:9].SetUint(uint64(err))
}

// Stats counts the manager's activity for the experiment harness.
type Stats struct {
	// Selections[i] counts cycles on which candidate i won.
	Selections [arch.NumConfigs]int
	// Reconfigurations counts span rewrites the loader started.
	Reconfigurations int
	// DeferredSlots counts slot rewrites skipped because the span was
	// busy — the partial-reconfiguration deferrals of §3.2.
	DeferredSlots int
	// HybridCycles counts selection passes on which the live allocation
	// matched none of the predefined layouts — evidence of the hybrid
	// configurations the paper's approach produces.
	HybridCycles int
	// SuppressedLoads counts selections that wanted a new configuration
	// but were held back by the residency timer.
	SuppressedLoads int
	// HeldLoads counts selections that wanted a new configuration but
	// were held back by an active speculative prefetch (HoldTarget).
	HeldLoads int
	// CacheHits and CacheMisses count steering-cache lookups: a hit
	// replays a previously computed selection for the same packed
	// (demand, allocation) key, a miss runs the CEM generators.
	CacheHits   int
	CacheMisses int
	// PrefetchIssued counts speculative span rewrites the prefetch
	// policy (internal/predict) started on otherwise-unused
	// configuration-bus spans; the remaining Prefetch* fields count how
	// its speculations ended. PrefetchWastedSpans is the bus bandwidth
	// charged to mispredicted or cancelled speculations — spans loaded
	// for a configuration that never served demand.
	PrefetchIssued       int
	PrefetchConfirmed    int
	PrefetchMispredicted int
	PrefetchCancelled    int
	PrefetchWastedSpans  int
	// PhaseChanges counts workload phase boundaries the prefetch
	// policy's demand-history detector flagged.
	PhaseChanges int
}

// Steering-cache geometry: a small direct-mapped table indexed by a
// multiplicative hash of the packed key. 512 entries is comfortably
// larger than the working set of distinct (demand, allocation) pairs a
// phase exhibits (the demand vector alone has ≤ 8^5 values, but steady
// state visits a handful).
const (
	steerCacheBits = 9
	steerCacheSize = 1 << steerCacheBits
	// encodingBits is the width of one slot encoding in the packed key
	// (arch.Encoding values are 0..7).
	encodingBits = 3
)

// steerEntry is one direct-mapped cache line. key holds the packed key
// plus one so that the zero value means "empty"; the payload is the full
// Selection except Required, which the hit path copies from the live
// input.
type steerEntry struct {
	key    uint64
	choice uint8
	errs   [arch.NumConfigs]uint8
	dists  [arch.NumConfigs]uint8
}

// packSteerKey packs everything Select's outputs depend on into one
// 55-bit key: the five demand counts clamped to the 3-bit range the CEM
// actually sees (bits 0–14), the live allocation's slot encodings
// (bits 15–38), and the fabric's fault masks — the non-healthy slots
// (bits 39–46) and the permanently dead slots (bits 47–54). Both masks
// are zero without fault injection, so fault-free keys are unchanged.
// Availability counts, distances and hence the choice are pure
// functions of these, so keying on the allocation vector and masks also
// subsumes invalidation: a reconfiguration, an upset or a repair
// changes the inputs and thereby selects a different key — which is
// what keeps cached steering bit-identical to uncached steering under
// any fault stream.
func packSteerKey(required arch.Counts, slots [arch.NumRFUSlots]arch.Encoding, unavail, dead uint8) uint64 {
	var k uint64
	for t := range required {
		c := required[t]
		if c < 0 {
			c = 0
		} else if c > 7 {
			c = 7
		}
		k |= uint64(c) << (uint(t) * arch.CountBits)
	}
	const demandBits = uint(arch.NumUnitTypes * arch.CountBits)
	for i, e := range slots {
		k |= uint64(e) << (demandBits + uint(i)*encodingBits)
	}
	const slotBits = demandBits + arch.NumRFUSlots*encodingBits
	k |= uint64(unavail) << slotBits
	k |= uint64(dead) << (slotBits + arch.NumRFUSlots)
	return k
}

// steerCacheIndex maps a packed key to a table slot by Fibonacci
// (multiplicative) hashing, which spreads the low-entropy packed bits.
func steerCacheIndex(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - steerCacheBits))
}

// Manager is the configuration manager: selection unit plus loader, bound
// to a fabric and a steering basis.
type Manager struct {
	basis [3]config.Configuration
	// basisAvail caches each basis configuration's availability counts
	// (unit mix + FFUs) — the hard-wired CEM inputs of Fig. 3(b).
	basisAvail [3]arch.Counts
	fabric     *rfu.Fabric
	// ExactCEM switches the error metric generators to the paper's
	// "more accurate divider" variant (the X3 ablation).
	ExactCEM bool
	// MinResidency suppresses loading a new configuration until at
	// least this many cycles have passed since the last load — a
	// residency timer that damps per-cycle selection thrash on short
	// loops whose demand oscillates within one loop body (the X11
	// study). Zero (the paper's design) reloads every cycle the
	// selection changes.
	MinResidency int
	// DisableCache bypasses the steering cache so every Select runs the
	// CEM generators — used by the equivalence tests and ablations.
	DisableCache bool
	// HoldTarget, when non-zero, names the basis configuration (1..3) a
	// speculative prefetch has committed to: loads toward any other
	// configuration are suppressed (and counted in Stats.HeldLoads)
	// until the speculation resolves. Selection, statistics and naming
	// run unchanged, so the reactive selector still exposes what it
	// would have done — that is the evidence speculations are resolved
	// against. Loads toward the held target itself always proceed.
	HoldTarget int

	sinceLoad int
	stats     Stats
	probe     *telemetry.Probe
	spans     *span.Recorder

	// cache is the direct-mapped steering cache; cacheExact records the
	// ExactCEM mode its entries were computed under, so toggling the
	// metric flushes them.
	cache      [steerCacheSize]steerEntry
	cacheExact bool
	// basisUnits holds each basis configuration's placement list,
	// computed once at NewManager so Load never rebuilds it.
	basisUnits [3][]config.PlacedUnit
	// classifyName memoizes classifyAllocation against the fabric's
	// allocation version: the name is recomputed only when the
	// allocation vector actually changed, not every cycle. The empty
	// string marks "not yet computed".
	classifyName    string
	classifyVersion uint64
}

// NewManager binds a configuration manager to a fabric, steering with the
// given predefined configurations. Invalid basis configurations panic.
func NewManager(fabric *rfu.Fabric, basis [3]config.Configuration) *Manager {
	m := &Manager{basis: basis, fabric: fabric}
	for i, c := range basis {
		if err := c.Validate(); err != nil {
			panic(fmt.Sprintf("core: invalid steering configuration: %v", err))
		}
		m.basisAvail[i] = c.Counts().Add(config.FFUCounts())
		m.basisUnits[i] = c.AppendUnits(nil)
	}
	return m
}

// Basis returns the manager's predefined steering configurations.
func (m *Manager) Basis() [3]config.Configuration { return m.basis }

// SetTelemetry installs a telemetry probe receiving every selection pass
// and a steering-decision record per configuration switch (nil disables).
func (m *Manager) SetTelemetry(probe *telemetry.Probe) { m.probe = probe }

// SetSpans installs a span recorder tracking steering-cache flush
// epochs (nil disables).
func (m *Manager) SetSpans(r *span.Recorder) {
	m.spans = r
	r.AttachCacheEpochs()
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// NotePrefetch accumulates speculative-prefetch deltas into the stats.
// The stats live here rather than in the predict package so prefetch
// accounting rides the same Stats value every report path already
// consumes.
func (m *Manager) NotePrefetch(issued, confirmed, mispredicted, cancelled, wastedSpans, phaseChanges int) {
	m.stats.PrefetchIssued += issued
	m.stats.PrefetchConfirmed += confirmed
	m.stats.PrefetchMispredicted += mispredicted
	m.stats.PrefetchCancelled += cancelled
	m.stats.PrefetchWastedSpans += wastedSpans
	m.stats.PhaseChanges += phaseChanges
}

// errorOf runs one CEM generator.
func (m *Manager) errorOf(required, available arch.Counts) int {
	if m.ExactCEM {
		return cem.ErrorExact(required, available)
	}
	return cem.Error(required, available)
}

// Select runs the selection unit over the requirement counts of the
// unscheduled queue instructions and returns the chosen configuration.
// Availability counts include the FFUs for every candidate ("…relative
// to each of the four configurations including the FFUs", §3.1).
func (m *Manager) Select(required arch.Counts) Selection {
	alloc := m.fabric.Allocation()
	unavail, dead := m.fabric.HealthMasks()
	if m.DisableCache {
		return m.selectUncached(required, alloc, dead)
	}
	if m.cacheExact != m.ExactCEM {
		// The error metric changed out from under the cached entries;
		// flush in place (no allocation — the table is an array field).
		m.cache = [steerCacheSize]steerEntry{}
		m.cacheExact = m.ExactCEM
		m.spans.CacheFlush()
	}
	key := packSteerKey(required, alloc.Slots, unavail, dead)
	e := &m.cache[steerCacheIndex(key)]
	if e.key == key+1 {
		m.stats.CacheHits++
		if m.probe != nil {
			m.probe.SteeringCacheLookup(true)
		}
		var sel Selection
		sel.Required = required
		sel.Choice = int(e.choice)
		for i := range sel.Errors {
			sel.Errors[i] = int(e.errs[i])
			sel.Distances[i] = int(e.dists[i])
		}
		return sel
	}
	m.stats.CacheMisses++
	if m.probe != nil {
		m.probe.SteeringCacheLookup(false)
	}
	sel := m.selectUncached(required, alloc, dead)
	e.key = key + 1
	e.choice = uint8(sel.Choice)
	for i := range sel.Errors {
		e.errs[i] = uint8(sel.Errors[i])
		e.dists[i] = uint8(sel.Distances[i])
	}
	return sel
}

// selectUncached runs the four CEM generators and the minimal-error
// selector directly — the cache-miss (and cache-disabled) path. Under
// fault injection the current-configuration candidate scores the
// degraded unit mix (fault-masked units are not available capacity),
// and each basis candidate loses the units it can no longer realise
// because their spans cross permanently dead slots. Transiently faulty
// slots do not discount the basis candidates: loading a configuration
// rewrites their frames, restoring them.
func (m *Manager) selectUncached(required arch.Counts, alloc config.AllocationVector, dead uint8) Selection {
	var sel Selection
	sel.Required = required
	sel.Errors[0] = m.errorOf(required, m.fabric.EffectiveTotalCounts())
	sel.Distances[0] = 0
	for i := range m.basis {
		avail := m.basisAvail[i]
		if dead != 0 {
			avail = m.degradedBasisAvail(i, dead)
		}
		sel.Errors[i+1] = m.errorOf(required, avail)
		sel.Distances[i+1] = alloc.Distance(m.basis[i])
	}
	sel.Choice = MinimalErrorSelect(sel.Errors, sel.Distances)
	return sel
}

// degradedBasisAvail recomputes basis configuration i's availability
// counts with dead slots excluded: a unit whose span covers a dead slot
// cannot be placed there anymore. Allocation-free (runs on the
// selection hot path when slots have died).
func (m *Manager) degradedBasisAvail(i int, dead uint8) arch.Counts {
	var c arch.Counts
	layout := m.basis[i].Layout
	for s := 0; s < arch.NumRFUSlots; s++ {
		t, ok := arch.DecodeUnit(layout[s])
		if !ok {
			continue
		}
		span := arch.SlotCost(t)
		spanMask := uint8((1<<uint(span) - 1) << uint(s))
		if dead&spanMask == 0 {
			c[t]++
		}
	}
	return c.Add(config.FFUCounts())
}

// Load steers the fabric toward the selected configuration: when a
// predefined configuration won, every unit span of its layout that
// differs from the live allocation is rewritten if its slots are idle,
// and deferred otherwise. Keeping the current configuration loads
// nothing. It returns the number of span rewrites started.
func (m *Manager) Load(sel Selection) int {
	if sel.Current() {
		return 0
	}
	target := m.basis[sel.Choice-1]
	from := ""
	diff := 0
	if m.probe != nil {
		// Snapshot the pre-load state for the steering-decision record.
		from = m.classifyAllocation()
		diff = m.fabric.Allocation().Distance(target)
	}
	started, loading, deferred := 0, 0, 0
	alloc := m.fabric.Allocation()
	for _, u := range m.basisUnits[sel.Choice-1] {
		if alloc.Slots[u.Slot] == arch.Encode(u.Type) {
			continue // already implements the specified unit (§3.2)
		}
		if !m.fabric.CanReconfigure(u.Type, u.Slot) {
			deferred += u.Span
			continue
		}
		if m.fabric.Reconfigure(u.Type, u.Slot) {
			started++
			loading += u.Span
		}
	}
	m.stats.Reconfigurations += started
	m.stats.DeferredSlots += deferred
	if m.probe != nil && started > 0 {
		m.probe.ConfigSwitch(telemetry.Decision{
			From:            from,
			To:              target.Name,
			Choice:          sel.Choice,
			DiffSlots:       diff,
			Spans:           started,
			SlotsLoading:    loading,
			DeferredSlots:   deferred,
			StallSlotCycles: loading * m.fabric.ReconfigLatency(),
		})
	}
	return started
}

// classifyAllocation names the live allocation for the decision log: a
// basis configuration's name, "(empty)", or "hybrid". The answer is a
// pure function of the allocation vector, so it is memoized against the
// fabric's allocation version — Step calls this every cycle but the
// vector changes only on reconfiguration installs and salvage.
func (m *Manager) classifyAllocation() string {
	if v := m.fabric.AllocVersion(); v != m.classifyVersion || m.classifyName == "" {
		m.classifyName = m.classifyAllocationSlow()
		m.classifyVersion = v
	}
	return m.classifyName
}

func (m *Manager) classifyAllocationSlow() string {
	slots := m.fabric.Allocation().Slots
	empty := true
	for _, e := range slots {
		if e != arch.EncEmpty {
			empty = false
			break
		}
	}
	if empty {
		return "(empty)"
	}
	for _, cfg := range m.basis {
		if slots == cfg.Layout {
			return cfg.Name
		}
	}
	return "hybrid"
}

// Step performs one cycle of configuration management: encode the queue's
// requirements, select, and load (subject to the residency timer). It
// returns the selection for tracing.
func (m *Manager) Step(required arch.Counts) Selection {
	sel := m.Select(required)
	m.stats.Selections[sel.Choice]++
	if m.probe != nil {
		m.probe.Selection(sel.Errors, sel.Choice)
	}
	if m.isHybrid() {
		m.stats.HybridCycles++
	}
	m.sinceLoad++
	if !sel.Current() && m.sinceLoad <= m.MinResidency {
		m.stats.SuppressedLoads++
		return sel
	}
	if m.HoldTarget != 0 && !sel.Current() && sel.Choice != m.HoldTarget {
		// An active speculative prefetch holds the configuration: a
		// claw-back load here would revert half-converted spans and
		// freeze them for another full reconfiguration latency.
		m.stats.HeldLoads++
		return sel
	}
	if m.Load(sel) > 0 {
		m.sinceLoad = 0
	}
	return sel
}

// isHybrid reports whether the live allocation matches none of the
// predefined layouts (and is not empty).
func (m *Manager) isHybrid() bool { return m.classifyAllocation() == "hybrid" }
