package core

import (
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/rfu"
)

// DemandManager implements the paper's §5 future-work idea: dynamically
// reconfiguring the fabric *without* predefined steering configurations.
// Instead of scoring a fixed basis, every cycle it synthesises a target
// layout directly from the queue's requirement counts — a greedy packing
// that repeatedly adds the unit type with the highest unmet demand per
// already-provided unit until the slots are full — and then loads it with
// the same partial, idle-only discipline as the steering loader.
//
// To avoid thrashing on single-cycle demand noise, the manager only
// replaces an existing unit when the incoming unit's demand benefit
// exceeds the kept unit's by at least Hysteresis demand points.
type DemandManager struct {
	fabric *rfu.Fabric
	// Hysteresis is the minimum per-unit demand advantage a new unit
	// needs before an existing, differently-typed unit is evicted
	// (default 0: pure greedy).
	Hysteresis int

	// Syntheses counts cycles on which a non-trivial target was built.
	Syntheses int
	// Reconfigurations counts span rewrites started.
	Reconfigurations int
	// DeferredSlots counts slot rewrites skipped because spans were
	// busy.
	DeferredSlots int

	// Per-cycle scratch buffers, reused across Steps so the hot path
	// does not allocate: kept marks slots claimed by the synthesis pass,
	// unitsScratch holds placement decodes of the current and target
	// layouts.
	kept         [arch.NumRFUSlots]bool
	unitsScratch []config.PlacedUnit
}

// placeOrder lists unit types largest-span first so multi-slot spans
// find contiguous room during synthesis.
var placeOrder = [arch.NumUnitTypes]arch.UnitType{
	arch.FPMDU, arch.FPALU, arch.IntMDU, arch.LSU, arch.IntALU,
}

// NewDemandManager binds a demand-driven manager to a fabric.
func NewDemandManager(fabric *rfu.Fabric) *DemandManager {
	return &DemandManager{
		fabric:       fabric,
		unitsScratch: make([]config.PlacedUnit, 0, arch.NumRFUSlots),
	}
}

// plan chooses the unit multiset to configure: greedy highest
// demand-per-unit packing into arch.NumRFUSlots slots. FFUs count as one
// pre-provided unit of each type, exactly as the CEM's availability does.
func (m *DemandManager) plan(required arch.Counts) arch.Counts {
	var planned arch.Counts
	provided := config.FFUCounts()
	slotsLeft := arch.NumRFUSlots
	for {
		best := -1
		bestBenefit := 0
		for ti := 0; ti < arch.NumUnitTypes; ti++ {
			t := arch.UnitType(ti)
			if arch.SlotCost(t) > slotsLeft {
				continue
			}
			// Demand still unserved per unit already provided; scaled
			// to keep integer arithmetic exact.
			benefit := required[t] * 8 / (provided[t] + planned[t] + 1) / arch.SlotCost(t)
			if benefit > bestBenefit {
				best, bestBenefit = int(t), benefit
			}
		}
		if best < 0 || bestBenefit == 0 {
			break
		}
		planned[best]++
		slotsLeft -= arch.SlotCost(arch.UnitType(best))
	}
	return planned
}

// synthesize converts the planned multiset into a concrete slot layout,
// keeping existing units that are part of the plan in place so the
// loader's diff — and therefore reconfiguration traffic — is minimal.
func (m *DemandManager) synthesize(planned arch.Counts, required arch.Counts) config.Configuration {
	cur := config.Configuration{Layout: m.fabric.Allocation().Slots}
	target := config.Configuration{Name: "demand"}

	// Keep existing units the plan still wants, at their positions.
	remaining := planned
	m.kept = [arch.NumRFUSlots]bool{}
	kept := m.kept[:]
	m.unitsScratch = cur.AppendUnits(m.unitsScratch[:0])
	for _, u := range m.unitsScratch {
		if remaining[u.Type] > 0 {
			remaining[u.Type]--
			target.Layout[u.Slot] = arch.Encode(u.Type)
			for k := 1; k < u.Span; k++ {
				target.Layout[u.Slot+k] = arch.EncCont
			}
			for k := 0; k < u.Span; k++ {
				kept[u.Slot+k] = true
			}
		}
	}

	// Place the rest, largest units first so multi-slot spans find
	// contiguous room, into leftmost non-kept gaps. With hysteresis, a
	// gap occupied by a live unit is only claimed when the incoming
	// type's demand beats the occupant's by the margin.
	for _, t := range placeOrder {
		for remaining[t] > 0 {
			slot := m.findGap(target.Layout, kept, cur, t, required)
			if slot < 0 {
				break
			}
			target.Layout[slot] = arch.Encode(t)
			for k := 1; k < arch.SlotCost(t); k++ {
				target.Layout[slot+k] = arch.EncCont
			}
			for k := 0; k < arch.SlotCost(t); k++ {
				kept[slot+k] = true
			}
			remaining[t]--
		}
	}
	return target
}

// findGap locates the leftmost span of non-kept slots where a unit of
// type t may be placed, honouring the hysteresis rule against live
// occupants.
func (m *DemandManager) findGap(layout [arch.NumRFUSlots]arch.Encoding, kept []bool,
	cur config.Configuration, t arch.UnitType, required arch.Counts) int {
	span := arch.SlotCost(t)
	for start := 0; start+span <= arch.NumRFUSlots; start++ {
		ok := true
		for k := start; k < start+span; k++ {
			if kept[k] {
				ok = false
				break
			}
			if occ := occupantType(cur, k); occ >= 0 && m.Hysteresis > 0 {
				if required[t]-required[occ] < m.Hysteresis {
					ok = false
					break
				}
			}
		}
		if ok {
			return start
		}
	}
	return -1
}

// occupantType returns the type of the live unit covering slot k, or -1.
// It scans backward from k for the span's head slot instead of decoding
// the whole layout, so it allocates nothing.
func occupantType(cur config.Configuration, k int) int {
	for s := k; s >= 0; s-- {
		e := cur.Layout[s]
		if e == arch.EncEmpty {
			return -1
		}
		if e == arch.EncCont {
			continue
		}
		t, ok := arch.DecodeUnit(e)
		if !ok || k >= s+arch.SlotCost(t) {
			return -1
		}
		return int(t)
	}
	return -1
}

// Target returns the layout the manager would synthesise for the given
// demand — exposed for tests and analysis.
func (m *DemandManager) Target(required arch.Counts) config.Configuration {
	return m.synthesize(m.plan(required), required)
}

// Step performs one cycle of demand-driven management: synthesise a
// target and partially load it (idle spans only).
func (m *DemandManager) Step(required arch.Counts) {
	if required.Total() == 0 {
		return
	}
	target := m.synthesize(m.plan(required), required)
	m.Syntheses++
	m.unitsScratch = target.AppendUnits(m.unitsScratch[:0])
	for _, u := range m.unitsScratch {
		if m.fabric.Allocation().Slots[u.Slot] == arch.Encode(u.Type) {
			continue
		}
		if !m.fabric.CanReconfigure(u.Type, u.Slot) {
			m.DeferredSlots += u.Span
			continue
		}
		if m.fabric.Reconfigure(u.Type, u.Slot) {
			m.Reconfigurations++
		}
	}
}

// Manage adapts the manager to the cpu.Manager interface.
func (m *DemandManager) Manage(required arch.Counts) { m.Step(required) }
