package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/cem"
	"repro/internal/config"
	"repro/internal/rfu"
)

func newManager(latency int) (*Manager, *rfu.Fabric) {
	f := rfu.New(latency)
	return NewManager(f, config.DefaultBasis()), f
}

func TestUnitDecoderOneHot(t *testing.T) {
	for _, ty := range arch.UnitTypes() {
		v := UnitDecoder(ty)
		for i := range v {
			if v[i] != (arch.UnitType(i) == ty) {
				t.Errorf("UnitDecoder(%v)[%d] = %v", ty, i, v[i])
			}
		}
	}
}

func TestEncodeRequirements(t *testing.T) {
	units := []arch.UnitType{arch.IntALU, arch.IntALU, arch.LSU, arch.FPMDU}
	want := arch.Counts{2, 0, 1, 0, 1}
	if got := EncodeRequirements(units); got != want {
		t.Errorf("EncodeRequirements = %v, want %v", got, want)
	}
	if got := EncodeRequirements(nil); got != (arch.Counts{}) {
		t.Errorf("empty queue requirements = %v", got)
	}
}

func TestMinimalErrorSelectPicksLowestError(t *testing.T) {
	got := MinimalErrorSelect([arch.NumConfigs]int{5, 3, 7, 4}, [arch.NumConfigs]int{0, 8, 8, 8})
	if got != 1 {
		t.Errorf("choice = %d, want 1", got)
	}
}

// TestTieFavorsCurrent pins §3.1: "the current configuration is always
// favored over any predefined steering configuration that has the same
// error metric value."
func TestTieFavorsCurrent(t *testing.T) {
	got := MinimalErrorSelect([arch.NumConfigs]int{3, 3, 3, 3}, [arch.NumConfigs]int{0, 0, 0, 0})
	if got != 0 {
		t.Errorf("all-tie choice = %d, want current (0)", got)
	}
	got = MinimalErrorSelect([arch.NumConfigs]int{3, 3, 5, 5}, [arch.NumConfigs]int{0, 0, 0, 0})
	if got != 0 {
		t.Errorf("partial-tie choice = %d, want current (0)", got)
	}
}

// TestTieAmongPredefinedFavorsLeastReconfiguration pins the other §3.1
// tie-break: equal errors resolve toward the configuration needing the
// least reconfiguration.
func TestTieAmongPredefinedFavorsLeastReconfiguration(t *testing.T) {
	got := MinimalErrorSelect([arch.NumConfigs]int{7, 2, 2, 2}, [arch.NumConfigs]int{0, 6, 2, 4})
	if got != 2 {
		t.Errorf("choice = %d, want 2 (distance 2)", got)
	}
	// Full tie on error and distance: lowest index for determinism.
	got = MinimalErrorSelect([arch.NumConfigs]int{7, 2, 2, 2}, [arch.NumConfigs]int{0, 3, 3, 3})
	if got != 1 {
		t.Errorf("choice = %d, want 1", got)
	}
}

func TestMinimalErrorSelectPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range error")
		}
	}()
	MinimalErrorSelect([arch.NumConfigs]int{8, 0, 0, 0}, [arch.NumConfigs]int{0, 0, 0, 0})
}

// TestSelectionCircuitEquivalence proves the comparator-chain circuit
// equals the behavioural selector over randomized legal inputs.
func TestSelectionCircuitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20000; trial++ {
		var errs, dists [arch.NumConfigs]int
		for i := range errs {
			errs[i] = rng.Intn(8)
			dists[i] = rng.Intn(arch.NumRFUSlots + 1)
		}
		dists[0] = 0 // current configuration has distance zero by definition
		want := MinimalErrorSelect(errs, dists)
		got := CircuitMinimalErrorSelect(errs, dists)
		if got != want {
			t.Fatalf("errs=%v dists=%v: circuit %d != behaviour %d", errs, dists, got, want)
		}
	}
}

// TestSteeringTowardFPConfiguration: an FP-heavy queue on a fresh fabric
// must select the floating configuration and begin loading it.
func TestSteeringTowardFPConfiguration(t *testing.T) {
	m, f := newManager(0)
	req := EncodeRequirements([]arch.UnitType{
		arch.FPALU, arch.FPALU, arch.FPMDU, arch.FPMDU, arch.LSU,
	})
	sel := m.Step(req)
	if sel.Choice != 3 {
		t.Fatalf("choice = %d (%v), want 3 (floating)", sel.Choice, sel.Errors)
	}
	// With zero reconfiguration latency the fabric now holds the
	// floating layout.
	if f.Allocation().Slots != m.Basis()[2].Layout {
		t.Errorf("fabric = %v, want floating layout", f.Allocation().Slots)
	}
}

func TestSteeringTowardIntegerConfiguration(t *testing.T) {
	m, f := newManager(0)
	req := EncodeRequirements([]arch.UnitType{
		arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU, arch.IntMDU,
	})
	sel := m.Step(req)
	if sel.Choice != 1 {
		t.Fatalf("choice = %d (%v), want 1 (integer)", sel.Choice, sel.Errors)
	}
	if f.Allocation().Slots != m.Basis()[0].Layout {
		t.Errorf("fabric = %v, want integer layout", f.Allocation().Slots)
	}
}

// TestStableConfigurationIsKept: once the fabric matches the demand, the
// selection unit keeps the current configuration (choice 0) — the
// "settled" state §3.1 calls desirable.
func TestStableConfigurationIsKept(t *testing.T) {
	m, _ := newManager(0)
	req := EncodeRequirements([]arch.UnitType{
		arch.IntALU, arch.IntALU, arch.IntALU, arch.LSU,
	})
	first := m.Step(req)
	if first.Current() {
		t.Fatal("setup: fresh fabric should not already match")
	}
	second := m.Step(req)
	if !second.Current() {
		t.Errorf("second step choice = %d, want current", second.Choice)
	}
	if m.Stats().Selections[0] != 1 {
		t.Errorf("current-selection count = %d, want 1", m.Stats().Selections[0])
	}
}

// TestEmptyQueueKeepsCurrent: with nothing queued every error is zero and
// the tie-break keeps the current configuration — no gratuitous
// reconfiguration.
func TestEmptyQueueKeepsCurrent(t *testing.T) {
	m, f := newManager(0)
	sel := m.Step(arch.Counts{})
	if !sel.Current() {
		t.Errorf("empty queue choice = %d, want current", sel.Choice)
	}
	if f.Reconfigurations() != 0 {
		t.Error("empty queue triggered reconfiguration")
	}
}

// TestLoaderDefersBusySpans: a busy RFU is not reconfigured; the loader
// records the deferral and rewrites only the idle spans — producing a
// hybrid configuration.
func TestLoaderDefersBusySpans(t *testing.T) {
	m, f := newManager(0)
	// Settle into the integer configuration.
	intReq := EncodeRequirements([]arch.UnitType{arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU})
	m.Step(intReq)
	if f.Allocation().Slots != m.Basis()[0].Layout {
		t.Fatal("setup: integer layout not loaded")
	}
	// Busy the IntALU in slot 0 (acquire FFU first, then RFUs).
	f.Acquire(arch.IntALU, 50)
	ref, _ := f.Acquire(arch.IntALU, 50)
	if ref.FFU || ref.Idx != 0 {
		t.Fatalf("setup: expected RFU slot 0, got %v", ref)
	}
	// Now demand FP: the floating layout wants an IntALU at slot 0 too,
	// which matches, but its other spans differ; slot 0's unit stays.
	fpReq := EncodeRequirements([]arch.UnitType{arch.FPALU, arch.FPALU, arch.FPMDU, arch.FPMDU})
	sel := m.Step(fpReq)
	if sel.Choice != 3 {
		t.Fatalf("choice = %d, want floating", sel.Choice)
	}
	got := f.Allocation().Slots
	fl := m.Basis()[2].Layout
	if got[0] != fl[0] { // IntALU at slot 0 is shared between layouts
		t.Errorf("slot 0 = %v, want %v", got[0], fl[0])
	}
	// Slot 1 of the integer layout (IntALU) was idle: the floating
	// layout's LSU must have replaced it.
	if got[1] != fl[1] {
		t.Errorf("slot 1 = %v, want %v", got[1], fl[1])
	}
}

// TestHybridConfigurationArises: reconfiguring with one span pinned busy
// yields an allocation that matches no predefined layout — the hybrid
// state of §2 — and the manager counts it.
func TestHybridConfigurationArises(t *testing.T) {
	m, f := newManager(0)
	m.Step(EncodeRequirements([]arch.UnitType{arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU}))
	// Pin the IntMDU (slots 4-5 of the integer layout) busy.
	f.Acquire(arch.IntMDU, 100)
	ref, _ := f.Acquire(arch.IntMDU, 100)
	if ref.FFU {
		t.Fatal("setup: expected the RFU IntMDU")
	}
	m.Step(EncodeRequirements([]arch.UnitType{arch.FPALU, arch.FPMDU, arch.FPMDU, arch.FPMDU}))
	slots := f.Allocation().Slots
	hybrid := true
	for _, cfg := range m.Basis() {
		if slots == cfg.Layout {
			hybrid = false
		}
	}
	if !hybrid {
		t.Errorf("expected a hybrid allocation, got %v", slots)
	}
	if m.Stats().DeferredSlots == 0 {
		t.Error("deferred slots not counted")
	}
	// Subsequent steps with the fabric still pinned count hybrid cycles.
	m.Step(arch.Counts{})
	if m.Stats().HybridCycles == 0 {
		t.Error("hybrid cycles not counted")
	}
}

// TestLoadReturnsZeroForCurrent: keeping the current configuration must
// not touch the fabric.
func TestLoadReturnsZeroForCurrent(t *testing.T) {
	m, f := newManager(0)
	sel := Selection{Choice: 0}
	if n := m.Load(sel); n != 0 {
		t.Errorf("Load(current) = %d", n)
	}
	if f.Reconfigurations() != 0 {
		t.Error("Load(current) reconfigured the fabric")
	}
}

// TestExactCEMAblation: the exact-divider manager can disagree with the
// shifter manager on selection for some demand vector, and both remain
// internally consistent with their metric.
func TestExactCEMAblation(t *testing.T) {
	disagreements := 0
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 2000; trial++ {
		var units []arch.UnitType
		n := rng.Intn(arch.QueueSize + 1)
		for i := 0; i < n; i++ {
			units = append(units, arch.UnitType(rng.Intn(arch.NumUnitTypes)))
		}
		req := EncodeRequirements(units)

		mApprox, _ := newManager(0)
		mExact, _ := newManager(0)
		mExact.ExactCEM = true
		a := mApprox.Select(req)
		x := mExact.Select(req)
		if a.Choice != x.Choice {
			disagreements++
		}
		// Internal consistency: reported errors match the metric.
		ffu := config.FFUCounts()
		for i, cfg := range mApprox.Basis() {
			if a.Errors[i+1] != cem.Error(req, cfg.Counts().Add(ffu)) {
				t.Fatalf("approx error mismatch for config %d", i+1)
			}
			if x.Errors[i+1] != cem.ErrorExact(req, cfg.Counts().Add(ffu)) {
				t.Fatalf("exact error mismatch for config %d", i+1)
			}
		}
	}
	t.Logf("approx/exact selection disagreements: %d/2000", disagreements)
}

// TestInvalidBasisPanics: a malformed steering configuration is a
// construction-time error.
func TestInvalidBasisPanics(t *testing.T) {
	bad := config.DefaultBasis()
	bad[1].Layout[0] = arch.EncCont
	defer func() {
		if recover() == nil {
			t.Error("no panic on invalid basis")
		}
	}()
	NewManager(rfu.New(0), bad)
}

// TestSelectionDeterministic: Select is a pure function of demand and
// fabric state.
func TestSelectionDeterministic(t *testing.T) {
	m, _ := newManager(4)
	req := EncodeRequirements([]arch.UnitType{arch.LSU, arch.LSU, arch.LSU, arch.IntALU})
	a := m.Select(req)
	b := m.Select(req)
	if a != b {
		t.Errorf("Select not deterministic: %+v vs %+v", a, b)
	}
}

// TestMinResidencySuppressesReloads: with the residency timer armed,
// selection changes within the window are suppressed and counted.
func TestMinResidencySuppressesReloads(t *testing.T) {
	m, f := newManager(0)
	m.MinResidency = 10
	intReq := EncodeRequirements([]arch.UnitType{arch.IntALU, arch.IntALU, arch.IntALU, arch.IntALU})
	fpReq := EncodeRequirements([]arch.UnitType{arch.FPALU, arch.FPALU, arch.FPMDU, arch.FPMDU})

	// The timer also gates the very first load: it happens once
	// sinceLoad exceeds MinResidency (the 11th step), resetting the
	// timer.
	for i := 0; i < 11; i++ {
		m.Step(intReq)
	}
	if f.Allocation().Slots != m.Basis()[0].Layout {
		t.Fatalf("integer layout never loaded under residency: %v", f.Allocation().Slots)
	}
	loads := f.Reconfigurations()
	// Oscillate demand inside the fresh residency window (sinceLoad
	// stays <= 10 for the next 10 steps): nothing may reload.
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			m.Step(fpReq)
		} else {
			m.Step(intReq)
		}
	}
	if f.Reconfigurations() != loads {
		t.Errorf("reconfigurations grew from %d to %d inside the residency window",
			loads, f.Reconfigurations())
	}
	if m.Stats().SuppressedLoads == 0 {
		t.Error("suppressed loads not counted")
	}
	// After the window expires the manager may move again.
	for i := 0; i < 11; i++ {
		m.Step(fpReq)
	}
	if f.Allocation().Slots == m.Basis()[0].Layout {
		t.Error("manager never escaped the integer layout after residency expired")
	}
}

// TestConvergenceUnderConstantDemand: under an unchanging demand the
// manager reaches a fixed point — eventually every cycle keeps the
// current configuration and the fabric stops changing.
func TestConvergenceUnderConstantDemand(t *testing.T) {
	for lat := 0; lat <= 8; lat += 4 {
		m, f := newManager(lat)
		req := EncodeRequirements([]arch.UnitType{
			arch.LSU, arch.LSU, arch.LSU, arch.LSU, arch.IntALU, arch.IntALU,
		})
		var lastChoice int
		for cycle := 0; cycle < 200; cycle++ {
			sel := m.Step(req)
			lastChoice = sel.Choice
			f.Tick()
		}
		if lastChoice != 0 {
			t.Errorf("latency %d: not converged after 200 cycles (choice %d)", lat, lastChoice)
		}
		if f.Reconfiguring() {
			t.Errorf("latency %d: fabric still reconfiguring at steady state", lat)
		}
	}
}
