package core

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/rfu"
)

func TestDemandPlanCoversDominantType(t *testing.T) {
	m := NewDemandManager(rfu.New(0))
	req := EncodeRequirements([]arch.UnitType{
		arch.FPMDU, arch.FPMDU, arch.FPMDU, arch.FPMDU,
	})
	planned := m.plan(req)
	if planned[arch.FPMDU] == 0 {
		t.Errorf("plan %v ignores the only demanded type", planned)
	}
	if planned.Slots() > arch.NumRFUSlots {
		t.Errorf("plan %v exceeds the fabric", planned)
	}
}

func TestDemandPlanEmptyForNoDemand(t *testing.T) {
	m := NewDemandManager(rfu.New(0))
	if planned := m.plan(arch.Counts{}); planned != (arch.Counts{}) {
		t.Errorf("plan of zero demand = %v", planned)
	}
}

// TestDemandPlanProportional: a mixed demand plans more of the heavier
// type.
func TestDemandPlanProportional(t *testing.T) {
	m := NewDemandManager(rfu.New(0))
	req := arch.Counts{5, 0, 2, 0, 0}
	planned := m.plan(req)
	if planned[arch.IntALU] <= planned[arch.LSU] {
		t.Errorf("plan %v does not favour the dominant type (req %v)", planned, req)
	}
}

// TestDemandTargetStructurallyValid under random demand vectors and
// random live fabrics.
func TestDemandTargetStructurallyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 2000; trial++ {
		f := rfu.New(0)
		// Random live layout via random legal reconfigurations.
		for i := 0; i < 5; i++ {
			ty := arch.UnitType(rng.Intn(arch.NumUnitTypes))
			slot := rng.Intn(arch.NumRFUSlots)
			if f.CanReconfigure(ty, slot) {
				f.Reconfigure(ty, slot)
			}
		}
		m := NewDemandManager(f)
		m.Hysteresis = rng.Intn(3)
		var req arch.Counts
		left := arch.QueueSize
		for ti := range req {
			v := rng.Intn(left + 1)
			req[ti] = v
			left -= v
		}
		target := m.Target(req)
		if err := target.Validate(); err != nil {
			t.Fatalf("trial %d: invalid target %v for req %v: %v", trial, target.Layout, req, err)
		}
	}
}

// TestDemandKeepsUsefulUnits: units already matching the plan stay in
// place, so repeated identical demand converges to zero reconfiguration.
func TestDemandConvergesUnderConstantDemand(t *testing.T) {
	f := rfu.New(0)
	m := NewDemandManager(f)
	req := EncodeRequirements([]arch.UnitType{
		arch.FPALU, arch.FPALU, arch.LSU, arch.IntALU, arch.IntALU,
	})
	m.Step(req)
	after := m.Reconfigurations
	if after == 0 {
		t.Fatal("first step configured nothing")
	}
	layout := f.Allocation().Slots
	for i := 0; i < 20; i++ {
		m.Step(req)
	}
	if m.Reconfigurations != after {
		t.Errorf("reconfigurations grew from %d to %d under constant demand", after, m.Reconfigurations)
	}
	if f.Allocation().Slots != layout {
		t.Error("layout changed under constant demand")
	}
}

// TestDemandServesEveryDemandedType: after a few steps on an idle fabric
// every demanded type with positive count is configured or FFU-covered.
func TestDemandServesEveryDemandedType(t *testing.T) {
	f := rfu.New(0)
	m := NewDemandManager(f)
	req := arch.Counts{2, 1, 2, 1, 1}
	for i := 0; i < 5; i++ {
		m.Step(req)
	}
	for _, ty := range arch.UnitTypes() {
		if req[ty] > 0 && !f.Available(ty) {
			t.Errorf("%v demanded but unavailable", ty)
		}
	}
}

// TestDemandRespectsBusySpans: a busy unit is never destroyed.
func TestDemandRespectsBusySpans(t *testing.T) {
	f := rfu.New(0)
	m := NewDemandManager(f)
	m.Step(arch.Counts{0, 0, 0, 0, 4}) // fill with FPMDUs
	if f.Allocation().Slots[0] != arch.EncFPMDU {
		t.Fatalf("setup: %v", f.Allocation().Slots)
	}
	f.Acquire(arch.FPMDU, 100) // FFU
	ref, _ := f.Acquire(arch.FPMDU, 100)
	if ref.FFU {
		t.Fatal("setup: expected RFU")
	}
	busyHead := ref.Idx
	// Demand flips entirely to integer.
	for i := 0; i < 10; i++ {
		m.Step(arch.Counts{7, 0, 0, 0, 0})
	}
	if f.Allocation().Slots[busyHead] != arch.EncFPMDU {
		t.Error("busy FPMDU was destroyed")
	}
	if m.DeferredSlots == 0 {
		t.Error("deferred slots not counted")
	}
}

// TestDemandHysteresisReducesChurn: alternating demand with hysteresis
// produces no more reconfigurations than without.
func TestDemandHysteresisReducesChurn(t *testing.T) {
	run := func(h int) int {
		f := rfu.New(0)
		m := NewDemandManager(f)
		m.Hysteresis = h
		a := arch.Counts{4, 0, 2, 0, 0}
		b := arch.Counts{3, 0, 2, 1, 0}
		for i := 0; i < 50; i++ {
			if i%2 == 0 {
				m.Step(a)
			} else {
				m.Step(b)
			}
		}
		return m.Reconfigurations
	}
	if h2, h0 := run(2), run(0); h2 > h0 {
		t.Errorf("hysteresis 2 caused more churn (%d) than none (%d)", h2, h0)
	}
}

// TestDemandLayoutUsesWholeFabricUnderPressure: saturated uniform demand
// leaves few slots empty.
func TestDemandLayoutUsesWholeFabricUnderPressure(t *testing.T) {
	f := rfu.New(0)
	m := NewDemandManager(f)
	req := arch.Counts{2, 1, 2, 1, 1}
	for i := 0; i < 5; i++ {
		m.Step(req)
	}
	empty := 0
	for _, e := range f.Allocation().Slots {
		if e == arch.EncEmpty {
			empty++
		}
	}
	if empty > 2 {
		t.Errorf("%d slots left empty under saturated demand: %v", empty, f.Allocation().Slots)
	}
}

func TestOccupantType(t *testing.T) {
	cfg := config.MustNew("t", arch.IntMDU, arch.LSU)
	if occupantType(cfg, 0) != int(arch.IntMDU) || occupantType(cfg, 1) != int(arch.IntMDU) {
		t.Error("IntMDU span occupancy wrong")
	}
	if occupantType(cfg, 2) != int(arch.LSU) {
		t.Error("LSU occupancy wrong")
	}
	if occupantType(cfg, 5) != -1 {
		t.Error("empty slot has an occupant")
	}
}
