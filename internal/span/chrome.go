package span

import (
	"bufio"
	"encoding/json"
	"io"
)

// Chrome Trace Format export. One simulated cycle maps to one
// microsecond, so Perfetto's time axis reads directly in cycles.
// Simulator lanes live under pid 1 ("rsssim"): one thread per RFU slot
// for reconfiguration and repair spans (which never overlap on a
// slot), plus dedicated threads for speculation, phases, cache epochs
// and instant events. Service spans (pid 2) are exported by
// ServiceRecorder.WriteChromeTrace.

const (
	simPID     = 1
	servicePID = 2

	tidSlotBase = 100 // slot k renders on tid 100+k
	tidSpec     = 20
	tidPhase    = 21
	tidCache    = 22
	tidEvents   = 23
)

// chromeEvent is one Chrome Trace event. Args values are static
// strings or small ints.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeWriter streams a {"traceEvents":[...]} document without
// buffering the whole event list.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func newChromeWriter(w io.Writer) *chromeWriter {
	cw := &chromeWriter{w: bufio.NewWriter(w), first: true}
	_, cw.err = cw.w.WriteString(`{"traceEvents":[`)
	return cw
}

func (cw *chromeWriter) event(ev chromeEvent) {
	if cw.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		cw.err = err
		return
	}
	if !cw.first {
		if cw.err = cw.w.WriteByte(','); cw.err != nil {
			return
		}
	}
	cw.first = false
	_, cw.err = cw.w.Write(b)
}

func (cw *chromeWriter) meta(pid, tid int, key, value string) {
	cw.event(chromeEvent{Name: key, Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": value}})
}

func (cw *chromeWriter) close() error {
	if cw.err != nil {
		return cw.err
	}
	if _, err := cw.w.WriteString("]}\n"); err != nil {
		return err
	}
	return cw.w.Flush()
}

// tidOf places an entry on its simulator lane.
func tidOf(e *Entry) int {
	switch e.Kind {
	case KindReconfig, KindRepair:
		return tidSlotBase + int(e.Slot)
	case KindSpec:
		return tidSpec
	case KindPhase:
		return tidPhase
	case KindCacheEpoch:
		return tidCache
	default:
		return tidEvents
	}
}

// args renders the kind-specific argument map for one entry.
func (e *Entry) args() map[string]any {
	switch e.Kind {
	case KindReconfig:
		return map[string]any{"slots": e.A, "latency": e.B}
	case KindRepair:
		return map[string]any{"outcome": e.Aux}
	case KindSpec:
		return map[string]any{"outcome": e.Aux, "spansIssued": e.A, "confidencePct": e.B}
	case KindPhase:
		return map[string]any{"phase": e.A}
	case KindFault:
		return map[string]any{"detail": e.Aux}
	case KindTrigger:
		return map[string]any{"value": e.A, "threshold": e.B}
	default:
		return nil
	}
}

// corePID maps a cluster core to its Chrome process id: core 0 keeps
// the historical simPID, further cores sit above servicePID so the two
// namespaces never collide in a merged trace.
func corePID(core int) int {
	if core == 0 {
		return simPID
	}
	return 10 + core
}

// coreProcName names core's process lane.
func coreProcName(core int) string {
	if core == 0 {
		return "rsssim"
	}
	return "rsssim core " + string(rune('0'+core))
}

func writeEntries(cw *chromeWriter, entries []Entry, slots, core int) {
	pid := corePID(core)
	cw.meta(pid, 0, "process_name", coreProcName(core))
	for k := 0; k < slots; k++ {
		cw.meta(pid, tidSlotBase+k, "thread_name", slotLaneNames[k&7])
	}
	cw.meta(pid, tidSpec, "thread_name", "speculation")
	cw.meta(pid, tidPhase, "thread_name", "phases")
	cw.meta(pid, tidCache, "thread_name", "steer-cache")
	cw.meta(pid, tidEvents, "thread_name", "events")
	for i := range entries {
		e := &entries[i]
		ev := chromeEvent{Name: e.Name, Cat: e.Kind.String(),
			TS: e.Start, PID: pid, TID: tidOf(e), Args: e.args()}
		if e.Kind == KindFault || e.Kind == KindTrigger {
			ev.Ph = "i"
			ev.Scope = "t"
		} else {
			ev.Ph = "X"
			dur := e.Dur
			ev.Dur = &dur
		}
		cw.event(ev)
	}
}

// slotLaneNames gives the per-slot lanes stable human names without
// allocating at export time for the common 8-slot fabric.
var slotLaneNames = [8]string{
	"slot 0", "slot 1", "slot 2", "slot 3",
	"slot 4", "slot 5", "slot 6", "slot 7",
}

// WriteChromeTrace renders the full trace as Chrome Trace Format JSON
// (loadable in Perfetto and chrome://tracing). One cycle = 1 µs.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	cw := newChromeWriter(w)
	slots := 0
	if r != nil {
		slots = len(r.repairStart)
	}
	writeEntries(cw, r.Entries(), slots, r.Core())
	return cw.close()
}

// WriteChromeTraceMulti renders several recorders — one per cluster
// core — into a single Chrome Trace document, each core under its own
// process lane.
func WriteChromeTraceMulti(w io.Writer, recorders []*Recorder) error {
	cw := newChromeWriter(w)
	for _, r := range recorders {
		slots := 0
		if r != nil {
			slots = len(r.repairStart)
		}
		writeEntries(cw, r.Entries(), slots, r.Core())
	}
	return cw.close()
}

// spanRecord / instantRecord are the two JSONL row shapes, tagged with
// a "record" discriminator like the telemetry stream.
type spanRecord struct {
	Record string `json:"record"`
	Core   int    `json:"core"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Detail string `json:"detail"`
	Slot   int    `json:"slot"`
	Start  int64  `json:"start"`
	Dur    int64  `json:"dur"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

type instantRecord struct {
	Record string `json:"record"`
	Core   int    `json:"core"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Detail string `json:"detail"`
	Cycle  int64  `json:"cycle"`
	Slot   int    `json:"slot"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

// jsonRecord renders e in its JSONL row shape, labelled with the
// owning cluster core.
func jsonRecord(e *Entry, core int) any {
	if e.Kind == KindFault || e.Kind == KindTrigger {
		return instantRecord{Record: "instant", Core: core, Kind: e.Kind.String(),
			Name: e.Name, Detail: e.Aux, Cycle: e.Start, Slot: int(e.Slot),
			A: int64(e.A), B: int64(e.B)}
	}
	return spanRecord{Record: "span", Core: core, Kind: e.Kind.String(),
		Name: e.Name, Detail: e.Aux, Slot: int(e.Slot),
		Start: e.Start, Dur: e.Dur, A: int64(e.A), B: int64(e.B)}
}

func writeJSONLEntry(w *bufio.Writer, e *Entry, core int) error {
	b, err := json.Marshal(jsonRecord(e, core))
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// WriteJSONL renders the full trace as JSON lines: span rows carry
// record:"span", instants record:"instant", and every row names its
// cluster core. The field schema is pinned by
// testdata/span_schema.golden.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	entries := r.Entries()
	for i := range entries {
		if err := writeJSONLEntry(bw, &entries[i], r.Core()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// flightDump is the JSON document written when the flight recorder
// fires: the trigger tally plus the ring contents, oldest first, in
// the JSONL row shapes.
type flightDump struct {
	Reason   string            `json:"reason,omitempty"`
	Cycle    int64             `json:"cycle"`
	Triggers int               `json:"triggers"`
	Dropped  int               `json:"dropped"`
	Entries  []json.RawMessage `json:"entries"`
}

// DumpFlight writes the flight ring as one JSON object. reason labels
// the trigger that caused the dump ("" for an end-of-run dump).
func (r *Recorder) DumpFlight(w io.Writer, reason string) error {
	d := flightDump{Reason: reason, Triggers: r.Triggers(), Dropped: r.Dropped()}
	if r != nil {
		d.Cycle = r.now
	}
	flight := r.Flight()
	d.Entries = make([]json.RawMessage, 0, len(flight))
	for i := range flight {
		b, err := json.Marshal(jsonRecord(&flight[i], r.Core()))
		if err != nil {
			return err
		}
		d.Entries = append(d.Entries, b)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
