package span

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ServiceSpan is one completed stage of an rssd request: admission-queue
// wait, worker execution, response encode, or one sweep point.
// Timestamps are microseconds since the recorder was created, so a
// dump loads into Perfetto alongside simulator traces.
type ServiceSpan struct {
	Req     uint64 `json:"req"`              // request ordinal
	Name    string `json:"name"`             // queue-wait | execute | encode | sweep | point
	Kind    string `json:"kind"`             // handler kind: run | sweep | sweep_point
	Point   int    `json:"point"`            // sweep point index; -1 otherwise
	StartUs int64  `json:"startUs"`          // µs since recorder start
	DurUs   int64  `json:"durUs"`            // stage duration in µs
	Detail  string `json:"detail,omitempty"` // e.g. "deadline" on a trigger
}

// ServiceRecorder keeps the last FlightSize service spans in a
// mutex-protected ring — the rssd flight recorder. Unlike the
// simulator Recorder it is called from concurrent request handlers,
// so it locks; the spans it records are request-scale (milliseconds),
// where a mutex is noise.
type ServiceRecorder struct {
	epoch time.Time
	reqID atomic.Uint64

	mu        sync.Mutex
	ring      []ServiceSpan
	pos, n    int
	recorded  uint64
	deadlines uint64
}

// NewService builds a service recorder with a ring of size entries
// (DefaultFlightSize when size <= 0).
func NewService(size int) *ServiceRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &ServiceRecorder{epoch: time.Now(), ring: make([]ServiceSpan, size)}
}

// NextRequest allocates the next request ordinal.
func (r *ServiceRecorder) NextRequest() uint64 {
	if r == nil {
		return 0
	}
	return r.reqID.Add(1)
}

// us converts t to microseconds since the recorder epoch.
func (r *ServiceRecorder) us(t time.Time) int64 {
	return t.Sub(r.epoch).Microseconds()
}

// Record stores one completed stage span.
func (r *ServiceRecorder) Record(req uint64, name, kind string, point int, start, end time.Time) {
	if r == nil {
		return
	}
	r.push(ServiceSpan{Req: req, Name: name, Kind: kind, Point: point,
		StartUs: r.us(start), DurUs: end.Sub(start).Microseconds()})
}

// TriggerDeadline records a request-deadline-exceeded anomaly: the
// service-side flight-recorder trigger.
func (r *ServiceRecorder) TriggerDeadline(req uint64, kind string, point int, start, end time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.deadlines++
	r.mu.Unlock()
	r.push(ServiceSpan{Req: req, Name: "deadline-exceeded", Kind: kind,
		Point: point, StartUs: r.us(start),
		DurUs: end.Sub(start).Microseconds(), Detail: "deadline"})
}

func (r *ServiceRecorder) push(s ServiceSpan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded++
	r.ring[r.pos] = s
	r.pos++
	if r.pos == len(r.ring) {
		r.pos = 0
	}
	if r.n < len(r.ring) {
		r.n++
	}
}

// Snapshot returns the ring contents, oldest first, plus the trigger
// and total-recorded tallies.
func (r *ServiceRecorder) Snapshot() (spans []ServiceSpan, recorded, deadlines uint64) {
	if r == nil {
		return nil, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	spans = make([]ServiceSpan, 0, r.n)
	start := r.pos - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		spans = append(spans, r.ring[(start+i)%len(r.ring)])
	}
	return spans, r.recorded, r.deadlines
}

// serviceDump is the JSON document served by GET /debug/flightrecorder
// and written to the rssd span-trace file on drain.
type serviceDump struct {
	Recorded  uint64        `json:"recorded"`
	Deadlines uint64        `json:"deadlines"`
	Spans     []ServiceSpan `json:"spans"`
}

// WriteJSON dumps the ring as one indented JSON object.
func (r *ServiceRecorder) WriteJSON(w io.Writer) error {
	spans, recorded, deadlines := r.Snapshot()
	if spans == nil {
		spans = []ServiceSpan{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(serviceDump{Recorded: recorded, Deadlines: deadlines, Spans: spans})
}

// WriteChromeTrace renders the ring as Chrome Trace Format JSON under
// pid 2 ("rssd"). Stages of one request share a lane; concurrent
// sweep points get their own lanes so overlapping points don't nest
// incorrectly.
func (r *ServiceRecorder) WriteChromeTrace(w io.Writer) error {
	spans, _, _ := r.Snapshot()
	cw := newChromeWriter(w)
	cw.meta(servicePID, 0, "process_name", "rssd")
	for i := range spans {
		s := &spans[i]
		tid := int(s.Req % 1000 * 64)
		if s.Point >= 0 {
			tid += 1 + s.Point%63
		}
		ev := chromeEvent{Name: s.Name, Cat: s.Kind, TS: s.StartUs,
			PID: servicePID, TID: tid,
			Args: map[string]any{"req": s.Req, "point": s.Point}}
		if s.Detail == "deadline" {
			ev.Ph = "i"
			ev.Scope = "t"
		} else {
			ev.Ph = "X"
			dur := s.DurUs
			ev.Dur = &dur
		}
		cw.event(ev)
	}
	return cw.close()
}
