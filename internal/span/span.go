// Package span records duration-bearing epochs from both layers of the
// system: simulator spans (reconfiguration bus transactions, repair
// windows, prefetch speculation, workload phases, steering-cache flush
// epochs) and service spans (rssd request lifecycle stages). It follows
// the same nil-sink discipline as internal/telemetry: every Recorder
// method is safe on a nil receiver, so instrumented call sites cost one
// predictable branch when tracing is off and the hot loop stays at
// 0 allocs/cycle either way.
//
// The Recorder is single-goroutine (it lives inside the cycle loop) and
// preallocates all storage up front: a bounded trace buffer for full
// exports and a flight-recorder ring that always keeps the last N
// entries. Anomaly triggers — a fault storm inside one window, or IPC
// collapsing below a fraction of the warm-up baseline — fire a callback
// so the ring can be dumped at the moment of the anomaly rather than at
// end of run. Entry names are static strings; recording never allocates.
package span

// Kind discriminates trace entries. Span kinds carry a duration;
// instant kinds mark a single cycle.
type Kind uint8

const (
	// KindReconfig is a reconfiguration bus transaction rewriting one
	// unit span: Slot is the head slot, A the span width in slots, B
	// the bus latency in cycles.
	KindReconfig Kind = iota
	// KindRepair is a repair window on one slot, from repair start to
	// completion. Aux is the outcome ("repaired" or "dead").
	KindRepair
	// KindSpec is a prefetch speculation from open to resolution. Name
	// is the predicted configuration, Aux the outcome ("confirm",
	// "mispredict", "cancel", or "open" if unresolved at end of run),
	// A the number of speculative bus transactions issued, B the
	// predictor confidence in percent.
	KindSpec
	// KindPhase is one detected workload phase; A is the phase ordinal.
	KindPhase
	// KindCacheEpoch is a steering-cache epoch: the interval between
	// two cache flushes (or run start / end of run).
	KindCacheEpoch
	// KindFault is an instant: a fault event on Slot. Name is the
	// event ("inject", "detect", "heal"); Aux qualifies it
	// ("transient", "permanent", "scrub", "load").
	KindFault
	// KindTrigger is an instant: a flight-recorder anomaly trigger.
	// Name is the reason ("fault-storm", "ipc-collapse"); A carries
	// the offending window measurement, B the comparison threshold.
	KindTrigger

	numKinds
)

// kindNames maps Kind to its JSONL / Chrome-Trace category string.
var kindNames = [numKinds]string{
	"reconfig", "repair", "speculation", "phase", "cache-epoch",
	"fault", "trigger",
}

// String returns the category name for k.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Entry is one recorded span or instant event. All strings are static;
// an Entry is recorded by value into preallocated storage, so the hot
// path never allocates.
type Entry struct {
	Kind  Kind
	Slot  int16 // RFU slot, or -1 when not slot-scoped
	A, B  int32 // kind-specific arguments (see Kind docs)
	Start int64 // cycle the span opened (or the instant's cycle)
	Dur   int64 // span length in cycles; 0 for instants
	Name  string
	Aux   string
}

// Trigger reasons and speculation outcomes, exported for tests and
// callers that inspect the stream.
const (
	TriggerFaultStorm  = "fault-storm"
	TriggerIPCCollapse = "ipc-collapse"

	OutcomeConfirm    = "confirm"
	OutcomeMispredict = "mispredict"
	OutcomeCancel     = "cancel"
	OutcomeOpen       = "open"
)

// Config sizes the recorder and its anomaly triggers. The zero value
// is usable: every field falls back to the default below.
type Config struct {
	// MaxTrace bounds the full trace buffer (entries). Recording past
	// the bound drops entries (counted in Dropped) rather than
	// growing, so steady-state recording stays allocation-free.
	MaxTrace int
	// FlightSize bounds the flight-recorder ring (entries).
	FlightSize int
	// Window is the trigger-evaluation window in cycles; rounded up
	// to a power of two.
	Window int
	// FaultStorm fires the fault-storm trigger when more than this
	// many fault injections land inside one window.
	FaultStorm int
	// IPCCollapsePct fires the ipc-collapse trigger when a window
	// retires fewer than this percentage of the warm-up baseline
	// (the mean of trigger windows 2-4; window 1 is pipeline ramp).
	IPCCollapsePct int
	// OnTrigger, when set, runs synchronously after each trigger
	// entry is recorded — the hook used to dump the flight ring at
	// the moment of the anomaly. It must not mutate simulator state.
	OnTrigger func(r *Recorder, reason string)
}

// Defaults for Config fields left zero.
const (
	DefaultMaxTrace       = 1 << 16
	DefaultFlightSize     = 4096
	DefaultWindow         = 1024
	DefaultFaultStorm     = 16
	DefaultIPCCollapsePct = 25
)

func (c Config) withDefaults() Config {
	if c.MaxTrace <= 0 {
		c.MaxTrace = DefaultMaxTrace
	}
	if c.FlightSize <= 0 {
		c.FlightSize = DefaultFlightSize
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	// Round the window up to a power of two so the boundary check in
	// BeginCycle is a mask, not a division.
	w := 1
	for w < c.Window {
		w <<= 1
	}
	c.Window = w
	if c.FaultStorm <= 0 {
		c.FaultStorm = DefaultFaultStorm
	}
	if c.IPCCollapsePct <= 0 {
		c.IPCCollapsePct = DefaultIPCCollapsePct
	}
	return c
}

// baselineWindows is the number of post-ramp windows averaged into the
// IPC baseline (windows 2..1+baselineWindows; window 1 is ramp).
const baselineWindows = 3

// Recorder captures simulator spans. It is a pure observer: its
// methods read the values passed in and mutate only recorder state,
// so a run is bit-identical with the recorder attached or not.
// All methods are nil-receiver safe. Not safe for concurrent use —
// it belongs to the machine's cycle loop.
type Recorder struct {
	cfg Config

	// core labels exported records with the owning cluster core's
	// index (0 for scalar machines — see SetCore). Each cluster core
	// records into its own Recorder; the label keeps merged exports
	// attributable.
	core int

	trace   []Entry // bounded full trace, in record order
	dropped int     // entries dropped after trace hit MaxTrace

	ring    []Entry // flight ring, overwrite-oldest
	ringPos int
	ringLen int

	now int64 // current cycle, set by BeginCycle

	// Trigger-window state.
	winMask     int64
	winIndex    int
	winFaults   int
	lastRetired int
	baseSum     int
	baseline    int // mean retired per warm-up window; 0 until set
	triggers    int

	// Open-span state, all fixed size.
	repairStart []int64 // per-slot repair-window open cycle, -1 idle
	specOpen    bool
	specStart   int64
	specName    string
	specConf    int32
	phaseOpen   bool
	phaseStart  int64
	phaseCount  int32
	cacheUsed   bool // a steering cache is attached; emit epochs
	cacheStart  int64
	finished    bool
}

// NewRecorder builds a recorder with all storage preallocated. slots
// is the reconfigurable-fabric slot count (per-slot repair tracking).
func NewRecorder(cfg Config, slots int) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:         cfg,
		trace:       make([]Entry, 0, cfg.MaxTrace),
		ring:        make([]Entry, cfg.FlightSize),
		winMask:     int64(cfg.Window - 1),
		repairStart: make([]int64, slots),
	}
	for i := range r.repairStart {
		r.repairStart[i] = -1
	}
	return r
}

// SetCore sets the cluster-core index stamped onto exported records
// (JSONL rows carry it as "core"; the Chrome trace maps each core to
// its own process). Scalar machines leave it at 0.
func (r *Recorder) SetCore(core int) {
	if r == nil {
		return
	}
	r.core = core
}

// Core returns the cluster-core label (0 for a nil recorder).
func (r *Recorder) Core() int {
	if r == nil {
		return 0
	}
	return r.core
}

// record appends e to the trace buffer (until full) and the flight
// ring (always). Zero allocations: both stores are preallocated.
func (r *Recorder) record(e Entry) {
	if len(r.trace) < cap(r.trace) {
		r.trace = append(r.trace, e)
	} else {
		r.dropped++
	}
	r.ring[r.ringPos] = e
	r.ringPos++
	if r.ringPos == len(r.ring) {
		r.ringPos = 0
	}
	if r.ringLen < len(r.ring) {
		r.ringLen++
	}
}

// BeginCycle advances the recorder clock and, at window boundaries,
// evaluates the anomaly triggers. cycle is the machine cycle counter
// (1-based), retired the cumulative retired-instruction count.
func (r *Recorder) BeginCycle(cycle, retired int) {
	if r == nil {
		return
	}
	r.now = int64(cycle)
	if int64(cycle)&r.winMask != 0 {
		return
	}
	winRetired := retired - r.lastRetired
	r.lastRetired = retired
	r.winIndex++
	if r.winFaults > r.cfg.FaultStorm {
		r.trigger(TriggerFaultStorm, int32(r.winFaults), int32(r.cfg.FaultStorm))
	}
	r.winFaults = 0
	switch {
	case r.winIndex == 1:
		// Pipeline ramp; not representative.
	case r.winIndex <= 1+baselineWindows:
		r.baseSum += winRetired
		if r.winIndex == 1+baselineWindows {
			r.baseline = r.baseSum / baselineWindows
		}
	default:
		if r.baseline > 0 && winRetired*100 < r.baseline*r.cfg.IPCCollapsePct {
			r.trigger(TriggerIPCCollapse, int32(winRetired), int32(r.baseline))
		}
	}
}

func (r *Recorder) trigger(reason string, got, threshold int32) {
	r.triggers++
	r.record(Entry{Kind: KindTrigger, Slot: -1, A: got, B: threshold,
		Start: r.now, Name: reason})
	if r.cfg.OnTrigger != nil {
		r.cfg.OnTrigger(r, reason)
	}
}

// Reconfig records one reconfiguration bus transaction: a complete
// span on the head slot's lane, since the bus finishes in exactly
// latency cycles. unit is the functional-unit type being installed.
func (r *Recorder) Reconfig(headSlot, width, latency int, unit string) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindReconfig, Slot: int16(headSlot),
		A: int32(width), B: int32(latency),
		Start: r.now, Dur: int64(latency), Name: unit})
}

// FaultInjected records a fault-injection instant on slot and feeds
// the fault-storm window counter.
func (r *Recorder) FaultInjected(slot int, permanent bool) {
	if r == nil {
		return
	}
	r.winFaults++
	aux := "transient"
	if permanent {
		aux = "permanent"
	}
	r.record(Entry{Kind: KindFault, Slot: int16(slot), Start: r.now,
		Name: "inject", Aux: aux})
}

// FaultDetected records a scrub-detection instant on slot.
func (r *Recorder) FaultDetected(slot int) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindFault, Slot: int16(slot), Start: r.now,
		Name: "detect", Aux: "scrub"})
}

// FaultHealed records an incidental heal (a steering reconfiguration
// rewrote a corrupt slot before the scrubber saw it).
func (r *Recorder) FaultHealed(slot int) {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindFault, Slot: int16(slot), Start: r.now,
		Name: "heal", Aux: "load"})
}

// RepairStart opens a repair window on slot.
func (r *Recorder) RepairStart(slot int) {
	if r == nil || slot >= len(r.repairStart) {
		return
	}
	r.repairStart[slot] = r.now
}

// RepairEnd closes the repair window on slot. dead marks a permanent
// fault that survived the rewrite.
func (r *Recorder) RepairEnd(slot int, dead bool) {
	if r == nil || slot >= len(r.repairStart) {
		return
	}
	start := r.repairStart[slot]
	if start < 0 {
		return
	}
	r.repairStart[slot] = -1
	aux := "repaired"
	if dead {
		aux = "dead"
	}
	r.record(Entry{Kind: KindRepair, Slot: int16(slot),
		Start: start, Dur: r.now - start, Name: "repair", Aux: aux})
}

// SpecOpen opens a prefetch-speculation span predicting the named
// configuration with the given confidence (percent). An already-open
// speculation is resolved as cancelled first (defensive; the predictor
// resolves before reopening).
func (r *Recorder) SpecOpen(config string, confidencePct int) {
	if r == nil {
		return
	}
	if r.specOpen {
		r.SpecResolve(OutcomeCancel, 0)
	}
	r.specOpen = true
	r.specStart = r.now
	r.specName = config
	r.specConf = int32(confidencePct)
}

// SpecResolve closes the open speculation span with the given outcome
// (OutcomeConfirm, OutcomeMispredict or OutcomeCancel) and the number
// of speculative bus transactions that were issued.
func (r *Recorder) SpecResolve(outcome string, spansIssued int) {
	if r == nil || !r.specOpen {
		return
	}
	r.specOpen = false
	r.record(Entry{Kind: KindSpec, Slot: -1,
		A: int32(spansIssued), B: r.specConf,
		Start: r.specStart, Dur: r.now - r.specStart,
		Name: r.specName, Aux: outcome})
}

// PhaseBoundary closes the current workload-phase span (if one is
// open) and opens the next. The predictor calls this on each detected
// phase change.
func (r *Recorder) PhaseBoundary() {
	if r == nil {
		return
	}
	if r.phaseOpen {
		r.record(Entry{Kind: KindPhase, Slot: -1, A: r.phaseCount,
			Start: r.phaseStart, Dur: r.now - r.phaseStart, Name: "phase"})
	}
	r.phaseOpen = true
	r.phaseStart = r.now
	r.phaseCount++
}

// AttachCacheEpochs marks that a steering cache is present, so the
// trailing cache epoch is emitted at Finish even if no flush occurs.
func (r *Recorder) AttachCacheEpochs() {
	if r == nil {
		return
	}
	r.cacheUsed = true
}

// CacheFlush closes the current steering-cache epoch and opens the
// next. Called when the steering cache is flushed in place.
func (r *Recorder) CacheFlush() {
	if r == nil {
		return
	}
	r.record(Entry{Kind: KindCacheEpoch, Slot: -1,
		Start: r.cacheStart, Dur: r.now - r.cacheStart, Name: "cache-epoch"})
	r.cacheStart = r.now
}

// Finish closes any open epochs at the current cycle: the trailing
// phase, cache epoch, speculation (resolved as "open") and repair
// windows. Safe to call once at end of run; a second call is a no-op
// until new spans open.
func (r *Recorder) Finish() {
	if r == nil || r.finished {
		return
	}
	r.finished = true
	if r.phaseOpen {
		r.phaseOpen = false
		r.record(Entry{Kind: KindPhase, Slot: -1, A: r.phaseCount,
			Start: r.phaseStart, Dur: r.now - r.phaseStart, Name: "phase"})
	}
	if r.specOpen {
		r.specOpen = false
		r.record(Entry{Kind: KindSpec, Slot: -1, A: 0, B: r.specConf,
			Start: r.specStart, Dur: r.now - r.specStart,
			Name: r.specName, Aux: OutcomeOpen})
	}
	for s, start := range r.repairStart {
		if start >= 0 {
			r.repairStart[s] = -1
			r.record(Entry{Kind: KindRepair, Slot: int16(s),
				Start: start, Dur: r.now - start, Name: "repair", Aux: OutcomeOpen})
		}
	}
	if r.cacheUsed {
		r.record(Entry{Kind: KindCacheEpoch, Slot: -1,
			Start: r.cacheStart, Dur: r.now - r.cacheStart, Name: "cache-epoch"})
	}
}

// Entries returns the recorded trace in record order. The slice is
// the recorder's own storage; callers must not mutate it.
func (r *Recorder) Entries() []Entry {
	if r == nil {
		return nil
	}
	return r.trace
}

// Flight returns a copy of the flight ring, oldest first.
func (r *Recorder) Flight() []Entry {
	if r == nil {
		return nil
	}
	out := make([]Entry, 0, r.ringLen)
	start := r.ringPos - r.ringLen
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.ringLen; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Triggers returns how many anomaly triggers have fired.
func (r *Recorder) Triggers() int {
	if r == nil {
		return 0
	}
	return r.triggers
}

// Dropped returns how many entries the bounded trace buffer dropped.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}
