package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderSafe pins the nil-sink contract: every Recorder method
// must be a no-op on a nil receiver, because instrumented call sites in
// the fabric and predictor call through unguarded.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.BeginCycle(1, 0)
	r.Reconfig(0, 2, 16, "IntAdd")
	r.FaultInjected(1, true)
	r.FaultDetected(1)
	r.FaultHealed(1)
	r.RepairStart(1)
	r.RepairEnd(1, false)
	r.SpecOpen("cfg", 80)
	r.SpecResolve(OutcomeConfirm, 3)
	r.PhaseBoundary()
	r.AttachCacheEpochs()
	r.CacheFlush()
	r.Finish()
	if got := r.Entries(); got != nil {
		t.Errorf("nil recorder Entries() = %v, want nil", got)
	}
	if got := r.Flight(); got != nil {
		t.Errorf("nil recorder Flight() = %v, want nil", got)
	}
	if r.Triggers() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder reported triggers or drops")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
	if err := r.WriteJSONL(&buf); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if err := r.DumpFlight(&buf, ""); err != nil {
		t.Errorf("nil DumpFlight: %v", err)
	}
}

// TestFaultStormTrigger drives injections past the window threshold and
// checks the trigger fires exactly at the window boundary, records a
// trigger entry, and invokes the OnTrigger dump hook.
func TestFaultStormTrigger(t *testing.T) {
	var hookReasons []string
	r := NewRecorder(Config{
		Window:     64,
		FaultStorm: 2,
		OnTrigger: func(rec *Recorder, reason string) {
			hookReasons = append(hookReasons, reason)
			if rec.Triggers() == 0 {
				t.Error("hook ran before the trigger entry was recorded")
			}
		},
	}, 4)

	for c := 1; c < 64; c++ {
		r.BeginCycle(c, c)
	}
	// Three injections in the window, threshold 2: one over.
	r.FaultInjected(0, false)
	r.FaultInjected(1, false)
	r.FaultInjected(2, true)
	if r.Triggers() != 0 {
		t.Fatal("trigger fired before the window boundary")
	}
	r.BeginCycle(64, 64)
	if r.Triggers() != 1 {
		t.Fatalf("Triggers() = %d, want 1", r.Triggers())
	}
	if len(hookReasons) != 1 || hookReasons[0] != TriggerFaultStorm {
		t.Fatalf("hook reasons = %v, want [%s]", hookReasons, TriggerFaultStorm)
	}

	var trig *Entry
	for i, e := range r.Entries() {
		if e.Kind == KindTrigger {
			trig = &r.Entries()[i]
		}
	}
	if trig == nil {
		t.Fatal("no trigger entry recorded")
	}
	if trig.Name != TriggerFaultStorm || trig.A != 3 || trig.B != 2 {
		t.Errorf("trigger entry = %+v, want fault-storm value 3 threshold 2", trig)
	}

	// The counter resets per window: two more injections stay under.
	r.FaultInjected(0, false)
	r.FaultInjected(0, false)
	r.BeginCycle(128, 128)
	if r.Triggers() != 1 {
		t.Errorf("Triggers() = %d after an under-threshold window, want 1", r.Triggers())
	}
}

// TestIPCCollapseTrigger feeds three healthy baseline windows and then a
// collapsed one; the trigger must fire only on the collapsed window.
func TestIPCCollapseTrigger(t *testing.T) {
	r := NewRecorder(Config{Window: 16, IPCCollapsePct: 50}, 4)

	retired := 0
	window := func(delta int) {
		retired += delta
		r.BeginCycle(16*(r.winIndex+1), retired)
	}
	window(5)   // window 1: pipeline ramp, ignored
	window(100) // windows 2-4: baseline
	window(100)
	window(100)
	if r.Triggers() != 0 {
		t.Fatal("trigger fired during baseline windows")
	}
	window(80) // 80% of baseline: healthy
	if r.Triggers() != 0 {
		t.Fatal("trigger fired on a healthy window")
	}
	window(10) // 10% of baseline, threshold 50%: collapse
	if r.Triggers() != 1 {
		t.Fatalf("Triggers() = %d after collapsed window, want 1", r.Triggers())
	}
	var trig Entry
	for _, e := range r.Entries() {
		if e.Kind == KindTrigger {
			trig = e
		}
	}
	if trig.Name != TriggerIPCCollapse || trig.A != 10 || trig.B != 100 {
		t.Errorf("trigger entry = %+v, want ipc-collapse value 10 baseline 100", trig)
	}
}

// TestFlightRingBounds checks the ring keeps only the newest FlightSize
// entries, oldest first, and the trace buffer counts drops past MaxTrace.
func TestFlightRingBounds(t *testing.T) {
	r := NewRecorder(Config{MaxTrace: 6, FlightSize: 4}, 4)
	for i := 1; i <= 10; i++ {
		r.BeginCycle(i, i)
		r.Reconfig(i%4, 1, int(i), "IntAdd")
	}
	if got := len(r.Entries()); got != 6 {
		t.Errorf("trace length = %d, want MaxTrace 6", got)
	}
	if got := r.Dropped(); got != 4 {
		t.Errorf("Dropped() = %d, want 4", got)
	}
	flight := r.Flight()
	if len(flight) != 4 {
		t.Fatalf("flight length = %d, want 4", len(flight))
	}
	for i, e := range flight {
		if want := int64(7 + i); e.Start != want {
			t.Errorf("flight[%d].Start = %d, want %d (oldest first)", i, e.Start, want)
		}
	}
}

// TestOpenSpanLifecycles exercises repair, speculation, phase and cache
// epochs through open → close, including Finish closing trailing spans.
func TestOpenSpanLifecycles(t *testing.T) {
	r := NewRecorder(Config{}, 4)
	r.AttachCacheEpochs()

	r.BeginCycle(10, 10)
	r.RepairStart(2)
	r.SpecOpen("2xIntAdd", 75)
	r.PhaseBoundary()

	r.BeginCycle(50, 50)
	r.RepairEnd(2, false)
	r.SpecResolve(OutcomeMispredict, 2)
	r.CacheFlush()
	r.PhaseBoundary()

	r.BeginCycle(90, 90)
	r.SpecOpen("4xFPMul", 60) // left open: Finish resolves it as "open"
	r.RepairStart(1)          // left open: Finish closes it
	r.Finish()
	r.Finish() // idempotent

	byKind := map[Kind][]Entry{}
	for _, e := range r.Entries() {
		byKind[e.Kind] = append(byKind[e.Kind], e)
	}

	repairs := byKind[KindRepair]
	if len(repairs) != 2 {
		t.Fatalf("repair spans = %d, want 2", len(repairs))
	}
	if repairs[0].Slot != 2 || repairs[0].Start != 10 || repairs[0].Dur != 40 || repairs[0].Aux != "repaired" {
		t.Errorf("closed repair span = %+v", repairs[0])
	}
	if repairs[1].Slot != 1 || repairs[1].Aux != OutcomeOpen {
		t.Errorf("trailing repair span = %+v", repairs[1])
	}

	specs := byKind[KindSpec]
	if len(specs) != 2 {
		t.Fatalf("speculation spans = %d, want 2", len(specs))
	}
	if specs[0].Name != "2xIntAdd" || specs[0].Aux != OutcomeMispredict ||
		specs[0].A != 2 || specs[0].B != 75 || specs[0].Dur != 40 {
		t.Errorf("resolved speculation = %+v", specs[0])
	}
	if specs[1].Name != "4xFPMul" || specs[1].Aux != OutcomeOpen {
		t.Errorf("trailing speculation = %+v", specs[1])
	}

	phases := byKind[KindPhase]
	if len(phases) != 2 {
		t.Fatalf("phase spans = %d, want 2", len(phases))
	}
	if phases[0].Start != 10 || phases[0].Dur != 40 || phases[0].A != 1 {
		t.Errorf("first phase = %+v", phases[0])
	}
	if phases[1].Start != 50 || phases[1].Dur != 40 || phases[1].A != 2 {
		t.Errorf("second phase = %+v", phases[1])
	}

	epochs := byKind[KindCacheEpoch]
	if len(epochs) != 2 {
		t.Fatalf("cache epochs = %d, want 2 (flush + trailing)", len(epochs))
	}
	if epochs[0].Start != 0 || epochs[0].Dur != 50 {
		t.Errorf("flush epoch = %+v", epochs[0])
	}
	if epochs[1].Start != 50 || epochs[1].Dur != 40 {
		t.Errorf("trailing epoch = %+v", epochs[1])
	}
}

// TestWriteChromeTrace checks the export is one valid JSON document with
// the lanes and event phases Perfetto expects.
func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(Config{Window: 64, FaultStorm: 1}, 4)
	r.BeginCycle(5, 5)
	r.Reconfig(2, 2, 16, "FPMul")
	r.FaultInjected(1, false)
	r.FaultInjected(1, false)
	r.BeginCycle(64, 64) // fault storm → trigger instant
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Ph    string `json:"ph"`
			TS    int64  `json:"ts"`
			Dur   *int64 `json:"dur"`
			PID   int    `json:"pid"`
			TID   int    `json:"tid"`
			Scope string `json:"s"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var sawReconfig, sawTrigger, sawProcessName bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			sawProcessName = true
		case ev.Cat == "reconfig":
			sawReconfig = true
			if ev.Ph != "X" || ev.Dur == nil || *ev.Dur != 16 {
				t.Errorf("reconfig event = %+v, want complete span dur 16", ev)
			}
			if ev.TID != tidSlotBase+2 || ev.TS != 5 {
				t.Errorf("reconfig lane/ts = tid %d ts %d, want tid %d ts 5", ev.TID, ev.TS, tidSlotBase+2)
			}
		case ev.Cat == "trigger":
			sawTrigger = true
			if ev.Ph != "i" || ev.Scope != "t" {
				t.Errorf("trigger event = %+v, want thread-scoped instant", ev)
			}
		}
	}
	if !sawProcessName || !sawReconfig || !sawTrigger {
		t.Errorf("missing events: process_name=%v reconfig=%v trigger=%v",
			sawProcessName, sawReconfig, sawTrigger)
	}
}

// TestWriteJSONL checks every exported line parses and carries the
// record discriminator.
func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(Config{}, 4)
	r.BeginCycle(3, 3)
	r.Reconfig(0, 1, 8, "IntAdd")
	r.FaultInjected(0, true)
	r.Finish()

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	wantRecords := []string{"span", "instant"}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if rec["record"] != wantRecords[i] {
			t.Errorf("line %d record = %v, want %q", i, rec["record"], wantRecords[i])
		}
	}
}

// TestDumpFlight checks the anomaly dump document shape.
func TestDumpFlight(t *testing.T) {
	r := NewRecorder(Config{FlightSize: 2}, 4)
	for i := 1; i <= 5; i++ {
		r.BeginCycle(i, i)
		r.Reconfig(0, 1, 4, "IntAdd")
	}
	var buf bytes.Buffer
	if err := r.DumpFlight(&buf, TriggerFaultStorm); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Reason  string           `json:"reason"`
		Cycle   int64            `json:"cycle"`
		Entries []map[string]any `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("flight dump is not JSON: %v", err)
	}
	if dump.Reason != TriggerFaultStorm || dump.Cycle != 5 {
		t.Errorf("dump header = %+v, want reason %s cycle 5", dump, TriggerFaultStorm)
	}
	if len(dump.Entries) != 2 {
		t.Errorf("dump entries = %d, want ring size 2", len(dump.Entries))
	}
}

// TestServiceRecorder exercises the rssd-side flight ring: ordinals,
// ring bounding, deadline triggers and both export formats.
func TestServiceRecorder(t *testing.T) {
	var nilRec *ServiceRecorder
	if nilRec.NextRequest() != 0 {
		t.Error("nil ServiceRecorder allocated a request ordinal")
	}
	nilRec.Record(1, "execute", "run", -1, time.Now(), time.Now())
	nilRec.TriggerDeadline(1, "run", -1, time.Now(), time.Now())
	if spans, rec, dl := nilRec.Snapshot(); spans != nil || rec != 0 || dl != 0 {
		t.Error("nil ServiceRecorder snapshot not empty")
	}
	var nilBuf bytes.Buffer
	if err := nilRec.WriteJSON(&nilBuf); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}

	r := NewService(3)
	if got := r.NextRequest(); got != 1 {
		t.Fatalf("first request ordinal = %d, want 1", got)
	}
	base := time.Now()
	for i := 0; i < 5; i++ {
		r.Record(uint64(i+1), "execute", "run", -1,
			base.Add(time.Duration(i)*time.Millisecond),
			base.Add(time.Duration(i+1)*time.Millisecond))
	}
	r.TriggerDeadline(6, "sweep_point", 2, base, base.Add(time.Second))

	spans, recorded, deadlines := r.Snapshot()
	if recorded != 6 || deadlines != 1 {
		t.Errorf("recorded=%d deadlines=%d, want 6 and 1", recorded, deadlines)
	}
	if len(spans) != 3 {
		t.Fatalf("ring snapshot = %d spans, want 3", len(spans))
	}
	last := spans[len(spans)-1]
	if last.Name != "deadline-exceeded" || last.Detail != "deadline" || last.Point != 2 {
		t.Errorf("newest span = %+v, want the deadline trigger", last)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Recorded  uint64        `json:"recorded"`
		Deadlines uint64        `json:"deadlines"`
		Spans     []ServiceSpan `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("service dump is not JSON: %v", err)
	}
	if dump.Recorded != 6 || dump.Deadlines != 1 || len(dump.Spans) != 3 {
		t.Errorf("dump = recorded %d deadlines %d spans %d", dump.Recorded, dump.Deadlines, len(dump.Spans))
	}

	buf.Reset()
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("service chrome trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 1+3 { // process_name + 3 ring spans
		t.Errorf("chrome events = %d, want 4", len(doc.TraceEvents))
	}
}
