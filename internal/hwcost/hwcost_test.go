package hwcost

import (
	"testing"

	"repro/internal/logic"
)

// TestFullAdderCellCost pins the netlist primitives: a full adder is
// 2 XOR + 2 AND + 1 OR at depth 3.
func TestFullAdderCellCost(t *testing.T) {
	n := logic.NewNetlist("fa")
	a, b, cin := n.Input(), n.Input(), n.Input()
	n.FullAdder(a, b, cin)
	c := n.Cost()
	if c.Gates["xor"] != 2 || c.Gates["and"] != 2 || c.Gates["or"] != 1 {
		t.Errorf("full adder gates = %v", c.Gates)
	}
	if c.Depth != 3 {
		t.Errorf("full adder depth = %d, want 3", c.Depth)
	}
}

func TestShiftControlCost(t *testing.T) {
	c := ShiftControl()
	// One inverter and one AND (s1 is a plain wire).
	if c.Gates["and"] != 1 || c.Gates["not"] != 1 {
		t.Errorf("shift control gates = %v", c.Gates)
	}
	if c.Depth != 2 {
		t.Errorf("shift control depth = %d, want 2", c.Depth)
	}
}

// TestCEMGeneratorCost sanity-bounds the Fig. 3(b) circuit: five 3-bit
// 2-stage barrel shifters are 30 muxes; four 3-bit saturating adders add
// the rest. Depth must stay within a small combinational budget.
func TestCEMGeneratorCost(t *testing.T) {
	c := CEMGenerator()
	if c.Gates["mux"] != 30 {
		t.Errorf("CEM muxes = %d, want 30 (5 types x 3 bits x 2 stages)", c.Gates["mux"])
	}
	if c.Inputs != 25 { // 5 x (3 req + 2 shift)
		t.Errorf("CEM inputs = %d, want 25", c.Inputs)
	}
	if c.Depth == 0 || c.Depth > 40 {
		t.Errorf("CEM depth = %d out of sane range", c.Depth)
	}
	if c.TwoInputEquivalent() == 0 {
		t.Error("CEM two-input equivalent is zero")
	}
}

// TestWakeupRowCost pins Fig. 6: one OR and one NOT per needed/available
// column pair, plus the AND reduction and the scheduled-bit inverter.
func TestWakeupRowCost(t *testing.T) {
	c := WakeupRow()
	wantOr := 5 + 7 // resource + entry columns
	if c.Gates["or"] != wantOr {
		t.Errorf("row ORs = %d, want %d", c.Gates["or"], wantOr)
	}
	if c.Gates["not"] != wantOr+1 { // per column + scheduled bit
		t.Errorf("row NOTs = %d, want %d", c.Gates["not"], wantOr+1)
	}
	// AND reduction of 13 terms = 12 two-input ANDs.
	if c.Gates["and"] != 12 {
		t.Errorf("row ANDs = %d, want 12", c.Gates["and"])
	}
	if c.Inputs != 25 { // 2x12 columns + scheduled
		t.Errorf("row inputs = %d, want 25", c.Inputs)
	}
}

// TestWakeupArrayIsSevenRows: whole-array cost is exactly seven times the
// row cost in every gate class.
func TestWakeupArrayIsSevenRows(t *testing.T) {
	row := WakeupRow()
	array := WakeupArray()
	for kind, n := range row.Gates {
		if array.Gates[kind] != 7*n {
			t.Errorf("array %s = %d, want 7x%d", kind, array.Gates[kind], n)
		}
	}
	if array.Depth != row.Depth {
		t.Errorf("array depth %d != row depth %d (rows are parallel)", array.Depth, row.Depth)
	}
}

// TestAvailabilityCost: 13 entries, each a 3-bit comparator (3 XOR +
// 3 NOT + 2 AND) plus the availability AND, then a 13-input OR tree.
func TestAvailabilityCost(t *testing.T) {
	c := Availability()
	if c.Gates["xor"] != 13*3 {
		t.Errorf("availability XORs = %d, want 39", c.Gates["xor"])
	}
	if c.Gates["or"] != 12 { // 13-input OR tree
		t.Errorf("availability ORs = %d, want 12", c.Gates["or"])
	}
	if c.Inputs != 3+13*(3+1) {
		t.Errorf("availability inputs = %d", c.Inputs)
	}
}

// TestSelectionUnitBudget: the full stages-2-4 selection unit must fit a
// modest combinational budget — the paper's efficiency claim. The bound
// is generous but catches structural blowups.
func TestSelectionUnitBudget(t *testing.T) {
	c := SelectionUnit()
	eq := c.TwoInputEquivalent()
	if eq == 0 || eq > 4000 {
		t.Errorf("selection unit 2-input equivalent = %d, out of budget", eq)
	}
	// The netlist uses ripple-carry adders and linear comparator chains;
	// a real implementation would retime with carry-lookahead trees. The
	// bound reflects the naive construction.
	if c.Depth == 0 || c.Depth > 160 {
		t.Errorf("selection unit depth = %d, out of budget", c.Depth)
	}
	t.Logf("selection unit: %d two-input-equivalent gates, depth %d", eq, c.Depth)
}

// TestCostsDeterministic: building the same circuit twice yields the same
// summary.
func TestCostsDeterministic(t *testing.T) {
	a, b := All(), All()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Depth != b[i].Depth || a[i].Inputs != b[i].Inputs {
			t.Errorf("circuit %d differs between builds", i)
		}
		for k, v := range a[i].Gates {
			if b[i].Gates[k] != v {
				t.Errorf("circuit %s gate %s differs", a[i].Name, k)
			}
		}
	}
}

// TestAllCircuitsNonTrivial: every reported circuit has inputs, gates and
// depth.
func TestAllCircuitsNonTrivial(t *testing.T) {
	for _, c := range All() {
		if c.Inputs == 0 || c.Depth == 0 || c.TwoInputEquivalent() == 0 {
			t.Errorf("%s: trivial cost %+v", c.Name, c)
		}
	}
}
