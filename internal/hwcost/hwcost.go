// Package hwcost builds gate-level netlists of every circuit the paper
// presents — the CEM generator of Fig. 3(b), the full four-stage
// selection unit of Fig. 2, the wake-up row logic of Fig. 6 and the
// availability circuit of Fig. 7 — and reports their hardware cost:
// gate counts and critical-path depth. This quantifies the paper's
// "fast and efficient configuration selection circuit" claim.
package hwcost

import (
	"repro/internal/arch"
	"repro/internal/logic"
)

// CEMGenerator builds one configuration error metric generator: five
// 3-bit barrel shifters (2 control bits each) feeding a 3-bit five-
// operand saturating adder tree (Fig. 3(b)).
func CEMGenerator() logic.Cost {
	n := logic.NewNetlist("CEM generator (Fig. 3b)")
	operands := make([][]logic.Signal, arch.NumUnitTypes)
	for t := 0; t < arch.NumUnitTypes; t++ {
		req := n.Inputs(arch.CountBits)
		shift := n.Inputs(2)
		operands[t] = n.BarrelShiftRight(req, shift)
	}
	sum := operands[0]
	for t := 1; t < arch.NumUnitTypes; t++ {
		sum = n.SaturatingAdder(sum, operands[t])
	}
	_ = sum
	return n.Cost()
}

// ShiftControl builds the Fig. 3(c) control derivation for one type:
// s1 = q2, s0 = NOT(q2) AND q1.
func ShiftControl() logic.Cost {
	n := logic.NewNetlist("shift control (Fig. 3c)")
	q := n.Inputs(arch.CountBits)
	_ = q[2]                      // s1 is a wire
	_ = n.And2(n.Not(q[2]), q[1]) // s0
	return n.Cost()
}

// RequirementEncoder builds stage 2 of the selection unit for one unit
// type: a population count over the seven one-hot decoder lines,
// producing the 3-bit requirement count.
func RequirementEncoder() logic.Cost {
	n := logic.NewNetlist("requirement encoder (one type)")
	lines := n.Inputs(arch.QueueSize)
	// Adder tree over 1-bit operands widened to 3 bits.
	zero := n.Constant()
	widen := func(b logic.Signal) []logic.Signal { return []logic.Signal{b, zero, zero} }
	sum := widen(lines[0])
	for _, l := range lines[1:] {
		sum = n.SaturatingAdder(sum, widen(l))
	}
	_ = sum
	return n.Cost()
}

// MinimalErrorSelector builds stage 4: a comparator chain over four
// 9-bit keys (3-bit error, 4-bit distance, 2-bit index) keeping the
// minimum and its 2-bit index.
func MinimalErrorSelector() logic.Cost {
	n := logic.NewNetlist("minimal error selector (stage 4)")
	const keyBits = 9
	makeKey := func() []logic.Signal { return n.Inputs(keyBits) }
	bestKey := makeKey()
	bestIdx := n.Inputs(2)
	for i := 1; i < arch.NumConfigs; i++ {
		k := makeKey()
		idx := n.Inputs(2)
		smaller := n.LessThan(k, bestKey)
		nextKey := make([]logic.Signal, keyBits)
		for b := range nextKey {
			nextKey[b] = n.Mux2(smaller, bestKey[b], k[b])
		}
		nextIdx := make([]logic.Signal, 2)
		for b := range nextIdx {
			nextIdx[b] = n.Mux2(smaller, bestIdx[b], idx[b])
		}
		bestKey, bestIdx = nextKey, nextIdx
	}
	_ = bestIdx
	return n.Cost()
}

// SelectionUnit builds the whole Fig. 2 pipeline as one combinational
// netlist: five requirement encoders, four CEM generators (the current
// configuration's with live shift-control logic, the predefined ones
// hard-wired) and the minimal-error selector.
func SelectionUnit() logic.Cost {
	n := logic.NewNetlist("selection unit (Fig. 2, stages 2-4)")

	// Stage 2: per-type popcounts of the unit decoders' one-hot lines.
	zero := n.Constant()
	widen := func(b logic.Signal) []logic.Signal { return []logic.Signal{b, zero, zero} }
	required := make([][]logic.Signal, arch.NumUnitTypes)
	for t := 0; t < arch.NumUnitTypes; t++ {
		lines := n.Inputs(arch.QueueSize)
		sum := widen(lines[0])
		for _, l := range lines[1:] {
			sum = n.SaturatingAdder(sum, widen(l))
		}
		required[t] = sum
	}

	// Stage 3: four CEM generators over the shared requirement counts.
	cem := func(shiftOf func(t int) []logic.Signal) []logic.Signal {
		var sum []logic.Signal
		for t := 0; t < arch.NumUnitTypes; t++ {
			term := n.BarrelShiftRight(required[t], shiftOf(t))
			if sum == nil {
				sum = term
			} else {
				sum = n.SaturatingAdder(sum, term)
			}
		}
		return sum
	}
	keys := make([][]logic.Signal, arch.NumConfigs)
	// Current configuration: live quantity inputs drive Fig. 3(c) logic.
	curErr := cem(func(t int) []logic.Signal {
		q := n.Inputs(arch.CountBits)
		s1 := q[2]
		s0 := n.And2(n.Not(q[2]), q[1])
		return []logic.Signal{s0, s1}
	})
	// Predefined configurations: hard-wired divisors (constant control).
	for i := 0; i < arch.NumConfigs; i++ {
		var err []logic.Signal
		if i == 0 {
			err = curErr
		} else {
			err = cem(func(t int) []logic.Signal {
				return []logic.Signal{n.Constant(), n.Constant()}
			})
		}
		dist := n.Inputs(4) // reconfiguration distance (from the loader)
		idx := n.Inputs(2)
		key := append(append(append([]logic.Signal{}, idx...), dist...), err...)
		keys[i] = key
	}

	// Stage 4: comparator chain.
	bestKey := keys[0]
	bestIdx := n.Inputs(2)
	for i := 1; i < arch.NumConfigs; i++ {
		smaller := n.LessThan(keys[i], bestKey)
		nextKey := make([]logic.Signal, len(bestKey))
		for b := range nextKey {
			nextKey[b] = n.Mux2(smaller, bestKey[b], keys[i][b])
		}
		idx := n.Inputs(2)
		nextIdx := make([]logic.Signal, 2)
		for b := range nextIdx {
			nextIdx[b] = n.Mux2(smaller, bestIdx[b], idx[b])
		}
		bestKey, bestIdx = nextKey, nextIdx
	}
	_ = bestIdx
	return n.Cost()
}

// WakeupRow builds the Fig. 6 request logic for one wake-up array row:
// resource columns, entry columns, and the scheduled-bit gate.
func WakeupRow() logic.Cost {
	n := logic.NewNetlist("wake-up row (Fig. 6)")
	terms := make([]logic.Signal, 0, arch.NumUnitTypes+arch.QueueSize+1)
	for t := 0; t < arch.NumUnitTypes; t++ {
		needed := n.Input()
		available := n.Input()
		terms = append(terms, n.Or2(n.Not(needed), available))
	}
	for e := 0; e < arch.QueueSize; e++ {
		needed := n.Input()
		resultOK := n.Input()
		terms = append(terms, n.Or2(n.Not(needed), resultOK))
	}
	scheduled := n.Input()
	terms = append(terms, n.Not(scheduled))
	_ = n.And(terms...)
	return n.Cost()
}

// WakeupArray builds the full seven-row array's request logic.
func WakeupArray() logic.Cost {
	n := logic.NewNetlist("wake-up array request logic (7 rows)")
	for row := 0; row < arch.QueueSize; row++ {
		terms := make([]logic.Signal, 0, arch.NumUnitTypes+arch.QueueSize+1)
		for t := 0; t < arch.NumUnitTypes; t++ {
			terms = append(terms, n.Or2(n.Not(n.Input()), n.Input()))
		}
		for e := 0; e < arch.QueueSize; e++ {
			terms = append(terms, n.Or2(n.Not(n.Input()), n.Input()))
		}
		terms = append(terms, n.Not(n.Input()))
		_ = n.And(terms...)
	}
	return n.Cost()
}

// Availability builds the Fig. 7 circuit for one unit type over the full
// 13-entry allocation vector (8 slots + 5 FFUs): per entry a 3-bit
// equality comparator ANDed with the availability signal, OR-reduced.
func Availability() logic.Cost {
	n := logic.NewNetlist("availability circuit (Fig. 7, one type)")
	want := n.Inputs(arch.EncodingBits)
	entries := arch.NumRFUSlots + arch.NumFFUs
	products := make([]logic.Signal, entries)
	for i := 0; i < entries; i++ {
		enc := n.Inputs(arch.EncodingBits)
		eq := n.Equal(enc, want)
		products[i] = n.And2(eq, n.Input())
	}
	_ = n.Or(products...)
	return n.Cost()
}

// All returns the cost of every paper circuit, in presentation order.
func All() []logic.Cost {
	return []logic.Cost{
		ShiftControl(),
		CEMGenerator(),
		RequirementEncoder(),
		MinimalErrorSelector(),
		SelectionUnit(),
		WakeupRow(),
		WakeupArray(),
		Availability(),
	}
}
