// Package client is the typed Go client of the rssd service. It speaks
// the internal/api wire schema, plumbs contexts into every call,
// retries 503 admission rejections (draining, queue full) with bounded
// exponential backoff — a 503 envelope means the server did not start
// the work, so retrying a POST is safe — and decodes the chunked-JSONL
// events stream of the jobs surface. The coordinator's HTTP worker
// transport (internal/job), the cmd tools (rssbench) and the server's
// own test suites all drive rssd through this one client.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/api"
)

// Client talks to one rssd base URL.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry sets the 503 retry budget: up to retries re-sends with
// exponential backoff starting at base (capped at 32x base). retries 0
// disables retrying; a negative base keeps the default.
func WithRetry(retries int, base time.Duration) Option {
	return func(c *Client) {
		c.retries = retries
		if base >= 0 {
			c.backoff = base
		}
	}
}

// New builds a client for the rssd at base (e.g. "http://127.0.0.1:8080").
// The default retry budget is 3 attempts with 100ms initial backoff.
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:    base,
		hc:      http.DefaultClient,
		retries: 3,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the base URL the client was built with.
func (c *Client) Base() string { return c.base }

// retryable reports whether the envelope is a 503 admission rejection
// worth retrying: the server refused the work before starting it.
func retryable(e *api.Error) bool {
	if e.Status != http.StatusServiceUnavailable {
		return false
	}
	return e.Code == api.CodeDraining || e.Code == api.CodeQueueFull || e.Code == api.CodeCanceled
}

// do runs one JSON round trip: marshal in (nil for body-less requests),
// send, decode a 2xx into out (nil to discard) or a non-2xx envelope
// into an *api.Error. 503 envelopes are retried within the budget.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("encoding request: %w", err)
		}
	}
	delay := c.backoff
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		apiErr, ok := err.(*api.Error)
		if !ok || !retryable(apiErr) || attempt >= c.retries {
			return err
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		if delay < 32*c.backoff {
			delay *= 2
		}
	}
}

// once is a single request/response exchange.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *api.Error, synthesizing
// an envelope when the body is not one (proxies, panics).
func decodeError(resp *http.Response) error {
	var env api.Envelope
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
		return &api.Error{
			Code:    api.CodeInternal,
			Message: fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw)),
			Status:  resp.StatusCode,
		}
	}
	env.Error.Status = resp.StatusCode
	return env.Error
}

// Assemble assembles source on the server.
func (c *Client) Assemble(ctx context.Context, req api.AssembleRequest) (api.AssembleResponse, error) {
	var out api.AssembleResponse
	err := c.do(ctx, http.MethodPost, "/v1/assemble", req, &out)
	return out, err
}

// Run executes one simulation synchronously.
func (c *Client) Run(ctx context.Context, req api.RunRequest) (api.RunResponse, error) {
	var out api.RunResponse
	err := c.do(ctx, http.MethodPost, "/v1/run", req, &out)
	return out, err
}

// Estimate asks the analytic queueing model for a predicted IPC —
// microseconds instead of a simulated run. Rank configurations with
// Estimate, certify the survivors with Run.
func (c *Client) Estimate(ctx context.Context, req api.EstimateRequest) (api.EstimateResponse, error) {
	var out api.EstimateResponse
	err := c.do(ctx, http.MethodPost, "/v1/estimate", req, &out)
	return out, err
}

// Sweep executes a synchronous sweep (the legacy surface; prefer
// SubmitJob + StreamEvents for anything that should survive a restart).
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (api.SweepResponse, error) {
	var out api.SweepResponse
	err := c.do(ctx, http.MethodPost, "/v1/sweep", req, &out)
	return out, err
}

// Health fetches /v1/healthz. A draining server answers 503, returned
// as an *api.Error with the decoded envelope-free body discarded.
func (c *Client) Health(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return out, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("decoding healthz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return out, &api.Error{Code: api.CodeDraining, Message: "server is " + out.Status, Status: resp.StatusCode}
	}
	return out, nil
}

// SubmitJob creates an asynchronous sweep job.
func (c *Client) SubmitJob(ctx context.Context, req api.JobRequest) (api.JobCreated, error) {
	var out api.JobCreated
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out)
	return out, err
}

// Job fetches one job's status; withResults adds the completed
// per-point results.
func (c *Client) Job(ctx context.Context, id string, withResults bool) (api.JobStatus, error) {
	var out api.JobStatus
	path := "/v1/jobs/" + url.PathEscape(id)
	if withResults {
		path += "?results=1"
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Jobs lists all jobs the coordinator knows.
func (c *Client) Jobs(ctx context.Context) (api.JobList, error) {
	var out api.JobList
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// CancelJob cancels a job; completed points keep their results.
func (c *Client) CancelJob(ctx context.Context, id string) (api.JobStatus, error) {
	var out api.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}
