// events.go decodes the chunked-JSONL stream of GET /v1/jobs/{id}/events
// and builds the wait-for-completion loop on top of it: reconnect on a
// dropped stream, deduplicate the replayed prefix, finish on a terminal
// state line.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/api"
)

// EventStream is one open events connection. Next returns events in
// stream order and io.EOF when the server ends the stream (after a
// terminal state event). Close aborts early.
type EventStream struct {
	body io.ReadCloser
	dec  *json.Decoder
}

// StreamEvents opens the events stream of a job: completed points are
// replayed first, then results arrive as they land.
func (c *Client) StreamEvents(ctx context.Context, id string) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("opening events stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return &EventStream{body: resp.Body, dec: json.NewDecoder(resp.Body)}, nil
}

// Next decodes the next event line; io.EOF means the stream completed.
func (s *EventStream) Next() (api.JobEvent, error) {
	var ev api.JobEvent
	err := s.dec.Decode(&ev)
	return ev, err
}

// Close aborts the stream.
func (s *EventStream) Close() error { return s.body.Close() }

// WaitJob follows a job to a terminal state through its events stream,
// invoking onEvent (if non-nil) for each fresh event — replayed point
// events already seen on a previous connection are suppressed. A
// dropped stream (coordinator restart, proxy timeout) is reconnected
// with backoff as long as ctx allows. It returns the job's final
// status including per-point results.
func (c *Client) WaitJob(ctx context.Context, id string, onEvent func(api.JobEvent)) (api.JobStatus, error) {
	seen := make(map[int]bool)
	delay := c.backoff
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	for {
		stream, err := c.StreamEvents(ctx, id)
		if err != nil {
			var apiErr *api.Error
			if errors.As(err, &apiErr) && !retryable(apiErr) {
				return api.JobStatus{}, err
			}
			if ctx.Err() != nil {
				return api.JobStatus{}, ctx.Err()
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return api.JobStatus{}, ctx.Err()
			}
			continue
		}
		terminal, err := c.consume(stream, seen, onEvent)
		stream.Close()
		if terminal {
			return c.Job(ctx, id, true)
		}
		if ctx.Err() != nil {
			return api.JobStatus{}, ctx.Err()
		}
		// The stream dropped without a terminal event — reconnect and
		// resume from the replay.
		_ = err
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return api.JobStatus{}, ctx.Err()
		}
	}
}

// consume drains one stream connection, reporting whether a terminal
// state event arrived before it ended.
func (c *Client) consume(stream *EventStream, seen map[int]bool, onEvent func(api.JobEvent)) (bool, error) {
	for {
		ev, err := stream.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return false, nil
			}
			return false, err
		}
		switch ev.Type {
		case api.EventPoint:
			if ev.Point == nil || seen[ev.Point.Index] {
				continue
			}
			seen[ev.Point.Index] = true
		case api.EventState:
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.State.Terminal() {
				return true, nil
			}
			continue
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
}
