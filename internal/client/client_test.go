package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// TestRetryOn503 pins the retry contract: 503 admission envelopes
// (draining, queue_full) are retried within the budget, and the call
// succeeds once the server admits the request.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"draining","message":"server is draining"}}`)
			return
		}
		fmt.Fprint(w, `{"report":{"ipc":1.5},"elapsedMs":1}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(3, time.Millisecond))
	resp, err := c.Run(context.Background(), api.RunRequest{Source: "halt\n"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 rejected + 1 admitted)", got)
	}
	if len(resp.Report) == 0 {
		t.Error("no report decoded after retry")
	}
}

// TestRetryBudgetExhausted: a permanently draining server surfaces the
// final 503 envelope after the budget runs out.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"queue_full","message":"queue full"}}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(2, time.Millisecond))
	_, err := c.Run(context.Background(), api.RunRequest{Source: "halt\n"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *api.Error", err)
	}
	if apiErr.Code != api.CodeQueueFull || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("envelope = %s/%d, want queue_full/503", apiErr.Code, apiErr.Status)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestNoRetryOn4xx: client errors are authoritative, never retried, and
// the envelope decodes with position info intact.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":{"code":"assemble_error","message":"unknown mnemonic","line":3}}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(5, time.Millisecond))
	_, err := c.Run(context.Background(), api.RunRequest{Source: "bogus\n"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *api.Error", err)
	}
	if apiErr.Code != api.CodeAssembleError || apiErr.Line != 3 || apiErr.Status != http.StatusUnprocessableEntity {
		t.Errorf("envelope = %+v, want assemble_error at line 3, status 422", apiErr)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want exactly 1", got)
	}
}

// TestNonEnvelopeError: a non-JSON error body (proxy, panic page) is
// synthesized into an internal envelope instead of a decode failure.
func TestNonEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Run(context.Background(), api.RunRequest{Source: "halt\n"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *api.Error", err)
	}
	if apiErr.Code != api.CodeInternal || apiErr.Status != http.StatusBadGateway {
		t.Errorf("envelope = %+v, want internal/502", apiErr)
	}
}

// TestRetryRespectsContext: a cancelled context stops the backoff loop
// promptly instead of sleeping through the remaining budget.
func TestRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"draining","message":"draining"}}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL, WithRetry(100, 10*time.Millisecond)).Run(ctx, api.RunRequest{Source: "halt\n"})
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop ran %v after cancellation", elapsed)
	}
}

// TestEventStreamDecode: the JSONL decoder yields each line as an event
// and ends with io.EOF, tolerating blank lines between records.
func TestEventStreamDecode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"type":"state","state":"running","total":2}`+"\n")
		io.WriteString(w, "\n") // blank keep-alive line
		io.WriteString(w, `{"type":"point","point":{"index":0,"report":{"ipc":1.0}}}`+"\n")
		io.WriteString(w, `{"type":"state","state":"done","done":2,"total":2}`+"\n")
	}))
	defer ts.Close()

	stream, err := New(ts.URL).StreamEvents(context.Background(), "j-1")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer stream.Close()
	var types []string
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		types = append(types, ev.Type)
	}
	want := []string{"state", "point", "state"}
	if len(types) != len(want) {
		t.Fatalf("events = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events = %v, want %v", types, want)
		}
	}
}
