package wakeup

import "repro/internal/arch"

// PaperExampleLabels names the seven instructions of the paper's worked
// example (Figs. 4–5), in entry order.
var PaperExampleLabels = []string{"Shift", "Sub", "Add", "Mul", "Load", "FPMul", "FPAdd"}

// PaperExample builds the wake-up array of the paper's Figs. 4–5: seven
// instructions — Shift, Sub, Add, Mul, Load, FPMul, FPAdd — with the
// dependency graph of Fig. 4. The text states two rows explicitly (the
// Load, entry 5, depends on nothing and needs only the LSU; the Multiply,
// entry 4, needs the IntMDU and depends only on the Subtract, entry 2);
// the remaining edges are reconstructed from the dependency graph: the
// Add consumes the Shift and Sub results, the FPMul consumes the Load,
// and the FPAdd consumes the FPMul.
//
// It returns the populated array and the row index of each entry, in the
// paper's entry order (entry N is rows[N-1]).
func PaperExample() (*Array, []int) {
	a := New(arch.QueueSize)
	rows := make([]int, 7)
	alloc := func(i int, unit arch.UnitType, latency int, deps ...int) {
		row, ok := a.Allocate(unit, deps, latency, uint64(i))
		if !ok {
			panic("wakeup: paper example does not fit the array")
		}
		rows[i] = row
	}
	alloc(0, arch.IntALU, 1)                   // entry 1: Shift
	alloc(1, arch.IntALU, 1)                   // entry 2: Sub
	alloc(2, arch.IntALU, 1, rows[0], rows[1]) // entry 3: Add <- Shift, Sub
	alloc(3, arch.IntMDU, 4, rows[1])          // entry 4: Mul <- Sub (explicit in §4.1)
	alloc(4, arch.LSU, 2)                      // entry 5: Load, no dependencies (explicit)
	alloc(5, arch.FPMDU, 5, rows[4])           // entry 6: FPMul <- Load
	alloc(6, arch.FPALU, 3, rows[5])           // entry 7: FPAdd <- FPMul
	return a, rows
}
