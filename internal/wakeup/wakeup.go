// Package wakeup implements the select-free wake-up array of §4.1
// (Figures 4–6, after Brown, Stark and Patt, "Select-Free Instruction
// Scheduling Logic", MICRO-34). Each array entry holds a one-hot
// required-unit vector and one dependency bit per array entry; an entry
// requests execution when it is unscheduled, its unit type is available,
// and every entry it depends on has asserted its result-available line.
// Countdown timers assert result-available lines at the moment a granted
// instruction's result will be ready; retirement clears the entry's
// column everywhere so later instructions never wait on a retired
// producer.
//
// The array is select-free: it only raises execution *requests*.
// Contention between requesters for the same unit type is resolved by the
// scheduler (package cpu), as in the paper.
//
// The hot state is stored as bitboards: one uint64 mask per array-wide
// signal (used, scheduled, result-available) with bit i carrying row i,
// one dependency mask per row with bit j carrying "row i waits on row j",
// and one row mask per unit type. The Fig. 6 request logic then
// evaluates in a handful of boolean word operations instead of a loop
// over the dependency matrix, and the board accessors (UsedMask,
// ReadyMask, RequestMask, ...) expose the packed signals directly to the
// scheduler and to the lane-parallel wide machine.
package wakeup

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/arch"
	"repro/internal/logic"
)

// MaxSize is the largest supported array: one row per bit of the
// bitboard words. The paper's machine uses arch.QueueSize = 7.
const MaxSize = 64

// Array is the wake-up array. The zero value is unusable; use New.
type Array struct {
	size int
	full uint64 // mask with one bit per row

	used      uint64 // row holds an instruction
	scheduled uint64 // row has been granted execution
	resultOK  uint64 // row's result-available line

	deps     []uint64 // deps[i] bit j: result required from row j
	typeMask [arch.NumUnitTypes]uint64

	unit    []arch.UnitType
	timer   []int32 // countdown until the result-available line asserts
	latency []int32
	tag     []uint64 // caller-supplied identity (e.g. RUU id)
}

// New returns an empty wake-up array with the given number of entries
// (the paper's machine uses arch.QueueSize = 7). Sizes above MaxSize —
// the bitboard word width — panic.
func New(size int) *Array {
	if size <= 0 {
		panic("wakeup: array size must be positive")
	}
	if size > MaxSize {
		panic(fmt.Sprintf("wakeup: array size %d exceeds %d rows", size, MaxSize))
	}
	return &Array{
		size:    size,
		full:    (uint64(1) << uint(size)) - 1,
		deps:    make([]uint64, size),
		unit:    make([]arch.UnitType, size),
		timer:   make([]int32, size),
		latency: make([]int32, size),
		tag:     make([]uint64, size),
	}
}

// Size returns the number of rows.
func (a *Array) Size() int { return a.size }

// Free returns the number of unused rows.
func (a *Array) Free() int { return a.size - bits.OnesCount64(a.used) }

// Allocate inserts an instruction needing the given unit type, dependent
// on the listed producer rows, with the given execution latency. tag is
// an opaque caller identity returned by accessors. It returns the row
// index, or ok=false when the array is full. Dependencies must name used
// rows other than the allocated one; violations panic, as they indicate a
// dispatcher bug.
func (a *Array) Allocate(unit arch.UnitType, deps []int, latency int, tag uint64) (int, bool) {
	if latency < 1 {
		panic("wakeup: latency must be at least 1")
	}
	free := ^a.used & a.full
	if free == 0 {
		return 0, false
	}
	row := bits.TrailingZeros64(free)
	var depMask uint64
	for _, d := range deps {
		if d < 0 || d >= a.size || d == row || a.used>>uint(d)&1 == 0 {
			panic(fmt.Sprintf("wakeup: bad dependency %d for row %d", d, row))
		}
		// A producer whose result-available line is already asserted
		// imposes no wait; recording the bit anyway is harmless and
		// matches the hardware, where the line stays high until
		// retirement.
		depMask |= 1 << uint(d)
	}
	bit := uint64(1) << uint(row)
	a.used |= bit
	a.scheduled &^= bit
	a.resultOK &^= bit
	a.deps[row] = depMask
	a.typeMask[unit] |= bit
	a.unit[row] = unit
	a.timer[row] = 0
	a.latency[row] = int32(latency)
	a.tag[row] = tag
	return row, true
}

// Request reports whether row i requests execution given the per-type
// unit availability lines — the Fig. 6 logic: not yet scheduled, and for
// every column either not needed or available.
func (a *Array) Request(i int, unitAvail [arch.NumUnitTypes]bool) bool {
	bit := uint64(1) << uint(i)
	if a.used&bit == 0 || a.scheduled&bit != 0 {
		return false
	}
	if !unitAvail[a.unit[i]] {
		return false
	}
	return a.deps[i]&^a.resultOK == 0
}

// RequestMask evaluates the Fig. 6 request logic for every row at once
// against a packed unit-availability bitset (bit t = a unit of type t can
// accept work) and returns the requesting rows as a bitboard. It is the
// board form of Request: RequestMask(s)>>i&1 == Request(i, unpack(s))
// for every row i.
func (a *Array) RequestMask(availSet uint8) uint64 {
	var eligible uint64
	for t := 0; availSet != 0; t++ {
		if availSet&1 != 0 {
			eligible |= a.typeMask[t]
		}
		availSet >>= 1
	}
	req := a.used &^ a.scheduled & eligible
	for m := req; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if a.deps[i]&^a.resultOK != 0 {
			req &^= 1 << uint(i)
		}
	}
	return req
}

// Requests returns the rows requesting execution, in row order.
func (a *Array) Requests(unitAvail [arch.NumUnitTypes]bool) []int {
	var out []int
	for i := 0; i < a.size; i++ {
		if a.Request(i, unitAvail) {
			out = append(out, i)
		}
	}
	return out
}

// Ready reports whether row i's data dependencies are satisfied,
// regardless of unit availability — the condition the configuration
// manager's "ready to be executed" queue view uses.
func (a *Array) Ready(i int) bool {
	bit := uint64(1) << uint(i)
	if a.used&bit == 0 || a.scheduled&bit != 0 {
		return false
	}
	return a.deps[i]&^a.resultOK == 0
}

// ReadyMask returns the rows whose data dependencies are satisfied and
// that have not been granted execution, as a bitboard — the board form
// of Ready.
func (a *Array) ReadyMask() uint64 {
	ready := a.used &^ a.scheduled
	for m := ready; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if a.deps[i]&^a.resultOK != 0 {
			ready &^= 1 << uint(i)
		}
	}
	return ready
}

// UsedMask returns the rows holding instructions as a bitboard.
func (a *Array) UsedMask() uint64 { return a.used }

// ScheduledMask returns the granted rows as a bitboard.
func (a *Array) ScheduledMask() uint64 { return a.scheduled }

// ResultMask returns the asserted result-available lines as a bitboard.
func (a *Array) ResultMask() uint64 { return a.resultOK }

// PendingMask returns the rows holding unscheduled instructions — the
// requirement-encoder input set — as a bitboard.
func (a *Array) PendingMask() uint64 { return a.used &^ a.scheduled }

// DepMask returns row i's dependency columns as a bitboard.
func (a *Array) DepMask(i int) uint64 { return a.deps[i] }

// TypeMask returns the rows whose instructions require unit type t.
func (a *Array) TypeMask(t arch.UnitType) uint64 { return a.typeMask[t] }

// Grant marks row i scheduled and starts its countdown timer: an
// instruction of latency N sets the timer to N-1, asserting the
// result-available line N-1 cycles later; a single-cycle instruction
// asserts it immediately (§4.1).
func (a *Array) Grant(i int) {
	bit := uint64(1) << uint(i)
	if a.used&bit == 0 || a.scheduled&bit != 0 {
		panic(fmt.Sprintf("wakeup: grant of row %d in invalid state", i))
	}
	a.scheduled |= bit
	a.timer[i] = a.latency[i] - 1
	if a.timer[i] == 0 {
		a.resultOK |= bit
	}
}

// Reschedule de-asserts row i's scheduled bit so it will request
// execution again — the replay path used when a granted instruction must
// be re-executed (§4.1).
func (a *Array) Reschedule(i int) {
	bit := uint64(1) << uint(i)
	if a.used&bit == 0 {
		panic(fmt.Sprintf("wakeup: reschedule of unused row %d", i))
	}
	a.scheduled &^= bit
	a.resultOK &^= bit
	a.timer[i] = 0
}

// ExtendTimer adds extra cycles to a running countdown — the mechanism
// the processor uses when an instruction's true latency is discovered in
// flight (e.g. a cache miss lengthening a load).
func (a *Array) ExtendTimer(i, extra int) {
	bit := uint64(1) << uint(i)
	if a.used&bit == 0 || a.scheduled&bit == 0 || extra < 0 {
		panic(fmt.Sprintf("wakeup: bad ExtendTimer(%d, %d)", i, extra))
	}
	a.resultOK &^= bit
	a.timer[i] += int32(extra)
}

// Tick advances every countdown timer one cycle, asserting
// result-available lines that reach zero. Only the rows that are
// granted and still counting — used & scheduled &^ resultOK — carry
// live timers, so the pass walks exactly those board bits.
func (a *Array) Tick() {
	for m := a.used & a.scheduled &^ a.resultOK; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if a.timer[i] > 0 {
			a.timer[i]--
		}
		if a.timer[i] == 0 {
			a.resultOK |= 1 << uint(i)
		}
	}
}

// Release retires row i: the entry is cleared and its column is cleared
// in every other row, so instructions that depended on it no longer wait
// (§4.1: "every wake-up array entry associated with the instruction is
// cleared").
func (a *Array) Release(i int) {
	bit := uint64(1) << uint(i)
	if a.used&bit == 0 {
		panic(fmt.Sprintf("wakeup: release of unused row %d", i))
	}
	a.used &^= bit
	a.scheduled &^= bit
	a.resultOK &^= bit
	a.typeMask[a.unit[i]] &^= bit
	a.deps[i] = 0
	a.timer[i] = 0
	a.latency[i] = 0
	a.tag[i] = 0
	a.unit[i] = 0
	col := ^bit
	for j := 0; j < a.size; j++ {
		a.deps[j] &= col
	}
}

// Row state accessors.

// Used reports whether row i holds an instruction.
func (a *Array) Used(i int) bool { return a.used>>uint(i)&1 != 0 }

// Scheduled reports whether row i has been granted execution.
func (a *Array) Scheduled(i int) bool { return a.scheduled>>uint(i)&1 != 0 }

// ResultAvailable reports row i's result-available line.
func (a *Array) ResultAvailable(i int) bool { return a.resultOK>>uint(i)&1 != 0 }

// Unit returns row i's required unit type.
func (a *Array) Unit(i int) arch.UnitType { return a.unit[i] }

// Tag returns the caller identity stored at allocation.
func (a *Array) Tag(i int) uint64 { return a.tag[i] }

// DependsOn reports whether row i waits on row j.
func (a *Array) DependsOn(i, j int) bool { return a.deps[i]>>uint(j)&1 != 0 }

// RequiredCounts returns how many units of each type the *unscheduled*
// instructions in the array require — the requirement-encoder input of
// the configuration selection unit (§3.1). Scheduled instructions already
// hold units and are excluded.
func (a *Array) RequiredCounts() arch.Counts {
	var c arch.Counts
	pending := a.used &^ a.scheduled
	for t := range a.typeMask {
		c[t] = bits.OnesCount64(a.typeMask[t] & pending)
	}
	return c
}

// ReadyCounts is RequiredCounts restricted to rows whose dependencies are
// already satisfied.
func (a *Array) ReadyCounts() arch.Counts {
	var c arch.Counts
	ready := a.ReadyMask()
	for t := range a.typeMask {
		c[t] = bits.OnesCount64(a.typeMask[t] & ready)
	}
	return c
}

// Dump renders the array in the matrix form of Fig. 5: one row per entry
// with its one-hot execution-unit columns followed by the
// result-required-from columns. labels, when non-nil, names each row.
func (a *Array) Dump(labels []string) string {
	var b strings.Builder
	b.WriteString("entry")
	for _, t := range arch.UnitTypes() {
		fmt.Fprintf(&b, "%8s", t)
	}
	for j := 0; j < a.size; j++ {
		fmt.Fprintf(&b, "  E%d", j+1)
	}
	b.WriteString("\n")
	for i := 0; i < a.size; i++ {
		name := fmt.Sprintf("E%d", i+1)
		if labels != nil && i < len(labels) && labels[i] != "" {
			name = labels[i]
		}
		fmt.Fprintf(&b, "%-5s", name)
		for _, t := range arch.UnitTypes() {
			mark := 0
			if a.Used(i) && a.unit[i] == t {
				mark = 1
			}
			fmt.Fprintf(&b, "%8d", mark)
		}
		for j := 0; j < a.size; j++ {
			mark := 0
			if a.DependsOn(i, j) {
				mark = 1
			}
			fmt.Fprintf(&b, "%4d", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CircuitRequest is the gate-level reconstruction of Fig. 6 for one
// resource vector: for each resource column an OR of "not needed" with
// the availability line, for each entry column an OR of "not needed" with
// the result-available line, all ANDed together with the complement of
// the scheduled bit. Inputs are the row's raw vectors so tests can drive
// it exhaustively.
func CircuitRequest(unitNeeded [arch.NumUnitTypes]bool, unitAvail [arch.NumUnitTypes]bool,
	depNeeded, depResultOK []bool, scheduled bool) bool {
	if len(depNeeded) != len(depResultOK) {
		panic("wakeup: dependency vector length mismatch")
	}
	terms := make([]logic.Bit, 0, arch.NumUnitTypes+len(depNeeded)+1)
	for t := 0; t < arch.NumUnitTypes; t++ {
		terms = append(terms, logic.Or(logic.Not(logic.Bit(unitNeeded[t])), logic.Bit(unitAvail[t])))
	}
	for j := range depNeeded {
		terms = append(terms, logic.Or(logic.Not(logic.Bit(depNeeded[j])), logic.Bit(depResultOK[j])))
	}
	terms = append(terms, logic.Not(logic.Bit(scheduled)))
	return bool(logic.And(terms...))
}
