// Package wakeup implements the select-free wake-up array of §4.1
// (Figures 4–6, after Brown, Stark and Patt, "Select-Free Instruction
// Scheduling Logic", MICRO-34). Each array entry holds a one-hot
// required-unit vector and one dependency bit per array entry; an entry
// requests execution when it is unscheduled, its unit type is available,
// and every entry it depends on has asserted its result-available line.
// Countdown timers assert result-available lines at the moment a granted
// instruction's result will be ready; retirement clears the entry's
// column everywhere so later instructions never wait on a retired
// producer.
//
// The array is select-free: it only raises execution *requests*.
// Contention between requesters for the same unit type is resolved by the
// scheduler (package cpu), as in the paper.
package wakeup

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/logic"
)

// Entry is one row of the wake-up array.
type Entry struct {
	used      bool
	unit      arch.UnitType
	deps      []bool // deps[j]: result required from entry j
	scheduled bool
	timer     int  // countdown until the result-available line asserts
	resultOK  bool // the entry's result-available line
	latency   int
	tag       uint64 // caller-supplied identity (e.g. RUU id)
}

// Array is the wake-up array. The zero value is unusable; use New.
type Array struct {
	entries []Entry
	size    int
}

// New returns an empty wake-up array with the given number of entries
// (the paper's machine uses arch.QueueSize = 7).
func New(size int) *Array {
	if size <= 0 {
		panic("wakeup: array size must be positive")
	}
	a := &Array{entries: make([]Entry, size), size: size}
	for i := range a.entries {
		a.entries[i].deps = make([]bool, size)
	}
	return a
}

// Size returns the number of rows.
func (a *Array) Size() int { return a.size }

// Free returns the number of unused rows.
func (a *Array) Free() int {
	n := 0
	for i := range a.entries {
		if !a.entries[i].used {
			n++
		}
	}
	return n
}

// Allocate inserts an instruction needing the given unit type, dependent
// on the listed producer rows, with the given execution latency. tag is
// an opaque caller identity returned by accessors. It returns the row
// index, or ok=false when the array is full. Dependencies must name used
// rows other than the allocated one; violations panic, as they indicate a
// dispatcher bug.
func (a *Array) Allocate(unit arch.UnitType, deps []int, latency int, tag uint64) (int, bool) {
	if latency < 1 {
		panic("wakeup: latency must be at least 1")
	}
	row := -1
	for i := range a.entries {
		if !a.entries[i].used {
			row = i
			break
		}
	}
	if row < 0 {
		return 0, false
	}
	for _, d := range deps {
		if d < 0 || d >= a.size || d == row || !a.entries[d].used {
			panic(fmt.Sprintf("wakeup: bad dependency %d for row %d", d, row))
		}
	}
	e := &a.entries[row]
	e.used = true
	e.unit = unit
	e.scheduled = false
	e.timer = 0
	e.resultOK = false
	e.latency = latency
	e.tag = tag
	for j := range e.deps {
		e.deps[j] = false
	}
	// A producer whose result-available line is already asserted imposes
	// no wait; recording the bit anyway is harmless and matches the
	// hardware, where the line stays high until retirement.
	for _, d := range deps {
		e.deps[d] = true
	}
	return row, true
}

// Request reports whether row i requests execution given the per-type
// unit availability lines — the Fig. 6 logic: not yet scheduled, and for
// every column either not needed or available.
func (a *Array) Request(i int, unitAvail [arch.NumUnitTypes]bool) bool {
	e := &a.entries[i]
	if !e.used || e.scheduled {
		return false
	}
	if !unitAvail[e.unit] {
		return false
	}
	for j, need := range e.deps {
		if need && !a.entries[j].resultOK {
			return false
		}
	}
	return true
}

// Requests returns the rows requesting execution, in row order.
func (a *Array) Requests(unitAvail [arch.NumUnitTypes]bool) []int {
	var out []int
	for i := range a.entries {
		if a.Request(i, unitAvail) {
			out = append(out, i)
		}
	}
	return out
}

// Ready reports whether row i's data dependencies are satisfied,
// regardless of unit availability — the condition the configuration
// manager's "ready to be executed" queue view uses.
func (a *Array) Ready(i int) bool {
	e := &a.entries[i]
	if !e.used || e.scheduled {
		return false
	}
	for j, need := range e.deps {
		if need && !a.entries[j].resultOK {
			return false
		}
	}
	return true
}

// Grant marks row i scheduled and starts its countdown timer: an
// instruction of latency N sets the timer to N-1, asserting the
// result-available line N-1 cycles later; a single-cycle instruction
// asserts it immediately (§4.1).
func (a *Array) Grant(i int) {
	e := &a.entries[i]
	if !e.used || e.scheduled {
		panic(fmt.Sprintf("wakeup: grant of row %d in invalid state", i))
	}
	e.scheduled = true
	e.timer = e.latency - 1
	if e.timer == 0 {
		e.resultOK = true
	}
}

// Reschedule de-asserts row i's scheduled bit so it will request
// execution again — the replay path used when a granted instruction must
// be re-executed (§4.1).
func (a *Array) Reschedule(i int) {
	e := &a.entries[i]
	if !e.used {
		panic(fmt.Sprintf("wakeup: reschedule of unused row %d", i))
	}
	e.scheduled = false
	e.timer = 0
	e.resultOK = false
}

// ExtendTimer adds extra cycles to a running countdown — the mechanism
// the processor uses when an instruction's true latency is discovered in
// flight (e.g. a cache miss lengthening a load).
func (a *Array) ExtendTimer(i, extra int) {
	e := &a.entries[i]
	if !e.used || !e.scheduled || extra < 0 {
		panic(fmt.Sprintf("wakeup: bad ExtendTimer(%d, %d)", i, extra))
	}
	if e.resultOK {
		e.resultOK = false
	}
	e.timer += extra
}

// Tick advances every countdown timer one cycle, asserting
// result-available lines that reach zero.
func (a *Array) Tick() {
	for i := range a.entries {
		e := &a.entries[i]
		if e.used && e.scheduled && !e.resultOK {
			if e.timer > 0 {
				e.timer--
			}
			if e.timer == 0 {
				e.resultOK = true
			}
		}
	}
}

// Release retires row i: the entry is cleared and its column is cleared
// in every other row, so instructions that depended on it no longer wait
// (§4.1: "every wake-up array entry associated with the instruction is
// cleared").
func (a *Array) Release(i int) {
	e := &a.entries[i]
	if !e.used {
		panic(fmt.Sprintf("wakeup: release of unused row %d", i))
	}
	*e = Entry{deps: e.deps}
	for j := range e.deps {
		e.deps[j] = false
	}
	for j := range a.entries {
		a.entries[j].deps[i] = false
	}
}

// Row state accessors.

// Used reports whether row i holds an instruction.
func (a *Array) Used(i int) bool { return a.entries[i].used }

// Scheduled reports whether row i has been granted execution.
func (a *Array) Scheduled(i int) bool { return a.entries[i].scheduled }

// ResultAvailable reports row i's result-available line.
func (a *Array) ResultAvailable(i int) bool { return a.entries[i].resultOK }

// Unit returns row i's required unit type.
func (a *Array) Unit(i int) arch.UnitType { return a.entries[i].unit }

// Tag returns the caller identity stored at allocation.
func (a *Array) Tag(i int) uint64 { return a.entries[i].tag }

// DependsOn reports whether row i waits on row j.
func (a *Array) DependsOn(i, j int) bool { return a.entries[i].deps[j] }

// RequiredCounts returns how many units of each type the *unscheduled*
// instructions in the array require — the requirement-encoder input of
// the configuration selection unit (§3.1). Scheduled instructions already
// hold units and are excluded.
func (a *Array) RequiredCounts() arch.Counts {
	var c arch.Counts
	for i := range a.entries {
		e := &a.entries[i]
		if e.used && !e.scheduled {
			c[e.unit]++
		}
	}
	return c
}

// ReadyCounts is RequiredCounts restricted to rows whose dependencies are
// already satisfied.
func (a *Array) ReadyCounts() arch.Counts {
	var c arch.Counts
	for i := range a.entries {
		if a.Ready(i) {
			c[a.entries[i].unit]++
		}
	}
	return c
}

// Dump renders the array in the matrix form of Fig. 5: one row per entry
// with its one-hot execution-unit columns followed by the
// result-required-from columns. labels, when non-nil, names each row.
func (a *Array) Dump(labels []string) string {
	var b strings.Builder
	b.WriteString("entry")
	for _, t := range arch.UnitTypes() {
		fmt.Fprintf(&b, "%8s", t)
	}
	for j := 0; j < a.size; j++ {
		fmt.Fprintf(&b, "  E%d", j+1)
	}
	b.WriteString("\n")
	for i := range a.entries {
		e := &a.entries[i]
		name := fmt.Sprintf("E%d", i+1)
		if labels != nil && i < len(labels) && labels[i] != "" {
			name = labels[i]
		}
		fmt.Fprintf(&b, "%-5s", name)
		for _, t := range arch.UnitTypes() {
			mark := 0
			if e.used && e.unit == t {
				mark = 1
			}
			fmt.Fprintf(&b, "%8d", mark)
		}
		for j := 0; j < a.size; j++ {
			mark := 0
			if e.deps[j] {
				mark = 1
			}
			fmt.Fprintf(&b, "%4d", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CircuitRequest is the gate-level reconstruction of Fig. 6 for one
// resource vector: for each resource column an OR of "not needed" with
// the availability line, for each entry column an OR of "not needed" with
// the result-available line, all ANDed together with the complement of
// the scheduled bit. Inputs are the row's raw vectors so tests can drive
// it exhaustively.
func CircuitRequest(unitNeeded [arch.NumUnitTypes]bool, unitAvail [arch.NumUnitTypes]bool,
	depNeeded, depResultOK []bool, scheduled bool) bool {
	if len(depNeeded) != len(depResultOK) {
		panic("wakeup: dependency vector length mismatch")
	}
	terms := make([]logic.Bit, 0, arch.NumUnitTypes+len(depNeeded)+1)
	for t := 0; t < arch.NumUnitTypes; t++ {
		terms = append(terms, logic.Or(logic.Not(logic.Bit(unitNeeded[t])), logic.Bit(unitAvail[t])))
	}
	for j := range depNeeded {
		terms = append(terms, logic.Or(logic.Not(logic.Bit(depNeeded[j])), logic.Bit(depResultOK[j])))
	}
	terms = append(terms, logic.Not(logic.Bit(scheduled)))
	return bool(logic.And(terms...))
}
