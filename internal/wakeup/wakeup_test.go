package wakeup

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
)

// allAvail asserts every unit-availability line.
func allAvail() [arch.NumUnitTypes]bool {
	var a [arch.NumUnitTypes]bool
	for i := range a {
		a[i] = true
	}
	return a
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAllocateUntilFull(t *testing.T) {
	a := New(arch.QueueSize)
	for i := 0; i < arch.QueueSize; i++ {
		if a.Free() != arch.QueueSize-i {
			t.Fatalf("Free = %d before allocation %d", a.Free(), i)
		}
		row, ok := a.Allocate(arch.IntALU, nil, 1, uint64(i))
		if !ok {
			t.Fatalf("allocation %d failed", i)
		}
		if row != i {
			t.Fatalf("allocation %d landed on row %d", i, row)
		}
	}
	if _, ok := a.Allocate(arch.IntALU, nil, 1, 99); ok {
		t.Error("allocation succeeded on a full array")
	}
	if a.Free() != 0 {
		t.Errorf("Free = %d on full array", a.Free())
	}
}

func TestAllocateReusesReleasedRows(t *testing.T) {
	a := New(3)
	r0, _ := a.Allocate(arch.IntALU, nil, 1, 0)
	a.Allocate(arch.LSU, nil, 2, 1)
	a.Release(r0)
	r2, ok := a.Allocate(arch.FPALU, nil, 3, 2)
	if !ok || r2 != r0 {
		t.Errorf("released row not reused: got %d, want %d", r2, r0)
	}
	if a.Unit(r2) != arch.FPALU || a.Tag(r2) != 2 {
		t.Error("reused row carries stale state")
	}
}

func TestAllocateRejectsBadDeps(t *testing.T) {
	a := New(3)
	r0, _ := a.Allocate(arch.IntALU, nil, 1, 0)
	for _, deps := range [][]int{{-1}, {2}, {5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("deps %v accepted", deps)
				}
			}()
			a.Allocate(arch.IntALU, deps, 1, 1)
		}()
	}
	_ = r0
	// Self-dependency: the next free row is 1, so deps{1} must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self dependency accepted")
			}
		}()
		a.Allocate(arch.IntALU, []int{1}, 1, 1)
	}()
}

// TestRequestGatedOnDependency: a consumer must not request execution
// until its producer's result-available line asserts.
func TestRequestGatedOnDependency(t *testing.T) {
	a := New(4)
	prod, _ := a.Allocate(arch.IntMDU, nil, 4, 0)
	cons, _ := a.Allocate(arch.IntALU, []int{prod}, 1, 1)

	av := allAvail()
	reqs := a.Requests(av)
	if len(reqs) != 1 || reqs[0] != prod {
		t.Fatalf("initial requests = %v, want [%d]", reqs, prod)
	}

	a.Grant(prod) // latency 4: timer = 3
	for cycle := 0; cycle < 2; cycle++ {
		a.Tick()
		if a.Request(cons, av) {
			t.Fatalf("consumer requested at cycle %d, before producer result", cycle)
		}
	}
	a.Tick() // timer hits zero: result available
	if !a.ResultAvailable(prod) {
		t.Fatal("producer result not available after latency-1 ticks")
	}
	if !a.Request(cons, av) {
		t.Fatal("consumer not requesting after producer result available")
	}
}

// TestRequestGatedOnUnitAvailability: with the needed unit type
// unavailable the row must stay silent (Fig. 6's resource columns).
func TestRequestGatedOnUnitAvailability(t *testing.T) {
	a := New(2)
	row, _ := a.Allocate(arch.FPMDU, nil, 5, 0)
	av := allAvail()
	av[arch.FPMDU] = false
	if a.Request(row, av) {
		t.Error("row requests with its unit unavailable")
	}
	av[arch.FPMDU] = true
	if !a.Request(row, av) {
		t.Error("row silent with its unit available")
	}
}

func TestGrantSingleCycleAssertsImmediately(t *testing.T) {
	a := New(2)
	row, _ := a.Allocate(arch.IntALU, nil, 1, 0)
	a.Grant(row)
	if !a.ResultAvailable(row) {
		t.Error("latency-1 instruction did not assert result at grant (§4.1)")
	}
	if a.Request(row, allAvail()) {
		t.Error("scheduled row still requests execution")
	}
}

func TestGrantTimerCountdown(t *testing.T) {
	a := New(2)
	row, _ := a.Allocate(arch.FPALU, nil, 3, 0)
	a.Grant(row) // timer = 2
	if a.ResultAvailable(row) {
		t.Fatal("result available immediately for latency 3")
	}
	a.Tick()
	if a.ResultAvailable(row) {
		t.Fatal("result available one cycle early")
	}
	a.Tick()
	if !a.ResultAvailable(row) {
		t.Fatal("result not available after latency-1 ticks")
	}
}

func TestGrantPanicsOnInvalidState(t *testing.T) {
	a := New(2)
	row, _ := a.Allocate(arch.IntALU, nil, 1, 0)
	a.Grant(row)
	for name, f := range map[string]func(){
		"double grant":   func() { a.Grant(row) },
		"grant unused":   func() { a.Grant(1) },
		"release unused": func() { a.Release(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReschedule(t *testing.T) {
	a := New(2)
	row, _ := a.Allocate(arch.LSU, nil, 2, 0)
	a.Grant(row)
	a.Tick()
	if !a.ResultAvailable(row) {
		t.Fatal("setup: result should be available")
	}
	a.Reschedule(row)
	if a.Scheduled(row) || a.ResultAvailable(row) {
		t.Error("reschedule did not reset scheduled/result state")
	}
	if !a.Request(row, allAvail()) {
		t.Error("rescheduled row does not request execution again")
	}
}

// TestExtendTimer models a load discovering a cache miss: the countdown
// grows and the result line stays down until the extended time elapses.
func TestExtendTimer(t *testing.T) {
	a := New(2)
	row, _ := a.Allocate(arch.LSU, nil, 2, 0)
	a.Grant(row) // timer = 1
	a.ExtendTimer(row, 3)
	for i := 0; i < 3; i++ {
		a.Tick()
		if a.ResultAvailable(row) && i < 3 {
			t.Fatalf("result asserted %d cycles early", 3-i)
		}
	}
	a.Tick()
	if !a.ResultAvailable(row) {
		t.Error("result not asserted after extended latency")
	}
}

func TestExtendTimerAfterResultRearms(t *testing.T) {
	a := New(2)
	row, _ := a.Allocate(arch.IntALU, nil, 1, 0)
	a.Grant(row) // immediate result
	a.ExtendTimer(row, 2)
	if a.ResultAvailable(row) {
		t.Fatal("ExtendTimer did not de-assert the result line")
	}
	a.Tick()
	a.Tick()
	if !a.ResultAvailable(row) {
		t.Error("result not re-asserted after extension")
	}
}

// TestReleaseClearsColumns pins §4.1: retiring an instruction clears its
// column in every row, so dependents stop waiting, and newly allocated
// instructions in the freed row are not spuriously depended upon.
func TestReleaseClearsColumns(t *testing.T) {
	a := New(4)
	prod, _ := a.Allocate(arch.IntALU, nil, 1, 0)
	cons, _ := a.Allocate(arch.IntALU, []int{prod}, 1, 1)
	a.Grant(prod)
	a.Release(prod)
	if a.DependsOn(cons, prod) {
		t.Error("consumer still depends on a retired producer")
	}
	if !a.Request(cons, allAvail()) {
		t.Error("consumer blocked by a retired producer")
	}
	// A new instruction in the freed row must not look like the old
	// producer.
	again, _ := a.Allocate(arch.FPMDU, nil, 5, 2)
	if again != prod {
		t.Fatalf("expected row reuse, got %d", again)
	}
	if a.DependsOn(cons, again) {
		t.Error("consumer depends on an unrelated instruction reusing the row")
	}
}

func TestCountsViews(t *testing.T) {
	a := New(arch.QueueSize)
	alu1, _ := a.Allocate(arch.IntALU, nil, 1, 0)
	a.Allocate(arch.IntALU, []int{alu1}, 1, 1) // dependent: unscheduled but not ready
	a.Allocate(arch.LSU, nil, 2, 2)
	fp, _ := a.Allocate(arch.FPMDU, nil, 5, 3)
	a.Grant(fp) // scheduled: excluded from both views

	req := a.RequiredCounts()
	if req != (arch.Counts{2, 0, 1, 0, 0}) {
		t.Errorf("RequiredCounts = %v", req)
	}
	ready := a.ReadyCounts()
	if ready != (arch.Counts{1, 0, 1, 0, 0}) {
		t.Errorf("ReadyCounts = %v", ready)
	}
}

// TestPaperExampleArray reproduces the Fig. 4/5 worked example. The two
// facts the text states explicitly are pinned exactly: the Load (entry 5)
// requires only the LSU and depends on nothing; the Multiply (entry 4)
// requires the IntMDU and depends only on the Subtract (entry 2).
func TestPaperExampleArray(t *testing.T) {
	a, rows := PaperExample()
	if len(rows) != 7 {
		t.Fatalf("paper example has %d rows, want 7", len(rows))
	}
	load := rows[4] // entry 5 (1-based in the paper)
	if a.Unit(load) != arch.LSU {
		t.Errorf("Load unit = %v, want LSU", a.Unit(load))
	}
	for j := 0; j < a.Size(); j++ {
		if a.DependsOn(load, j) {
			t.Errorf("Load depends on row %d; the paper says it depends on nothing", j)
		}
	}
	mul := rows[3] // entry 4
	sub := rows[1] // entry 2
	if a.Unit(mul) != arch.IntMDU {
		t.Errorf("Multiply unit = %v, want IntMDU", a.Unit(mul))
	}
	for j := 0; j < a.Size(); j++ {
		want := j == sub
		if a.DependsOn(mul, j) != want {
			t.Errorf("Multiply dependency on row %d = %v, want %v", j, a.DependsOn(mul, j), want)
		}
	}
	// Unit columns of all seven entries.
	wantUnits := []arch.UnitType{arch.IntALU, arch.IntALU, arch.IntALU,
		arch.IntMDU, arch.LSU, arch.FPMDU, arch.FPALU}
	for i, r := range rows {
		if a.Unit(r) != wantUnits[i] {
			t.Errorf("entry %d unit = %v, want %v", i+1, a.Unit(r), wantUnits[i])
		}
	}
}

// TestPaperExampleSchedules drives the example to completion with all
// units available and checks every instruction eventually executes in
// dependency order.
func TestPaperExampleSchedules(t *testing.T) {
	a, rows := PaperExample()
	granted := make(map[int]int) // row -> grant cycle
	av := allAvail()
	for cycle := 0; cycle < 100 && len(granted) < len(rows); cycle++ {
		for _, r := range a.Requests(av) {
			a.Grant(r)
			granted[r] = cycle
		}
		a.Tick()
	}
	if len(granted) != len(rows) {
		t.Fatalf("only %d of %d instructions granted", len(granted), len(rows))
	}
	for _, r := range rows {
		for j := 0; j < a.Size(); j++ {
			if a.DependsOn(r, j) && granted[j] >= granted[r] {
				t.Errorf("row %d granted at %d, not after its producer %d at %d",
					r, granted[r], j, granted[j])
			}
		}
	}
}

func TestDumpShape(t *testing.T) {
	a, _ := PaperExample()
	out := a.Dump([]string{"Shift", "Sub", "Add", "Mul", "Load", "FPMul", "FPAdd"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 { // header + 7 rows
		t.Fatalf("Dump has %d lines, want 8:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "IntMDU") || !strings.Contains(lines[0], "E7") {
		t.Errorf("Dump header missing columns: %q", lines[0])
	}
	if !strings.HasPrefix(lines[5], "Load") {
		t.Errorf("row labels not applied: %q", lines[5])
	}
}

// TestRowCircuitEquivalence proves the Fig. 6 gate network equals the
// behavioural request predicate over randomized row states.
func TestRowCircuitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20000; trial++ {
		var needUnit, availUnit [arch.NumUnitTypes]bool
		needUnit[rng.Intn(arch.NumUnitTypes)] = true // one-hot, as in the array
		for i := range availUnit {
			availUnit[i] = rng.Intn(2) == 1
		}
		n := arch.QueueSize
		depNeed := make([]bool, n)
		depOK := make([]bool, n)
		for i := 0; i < n; i++ {
			depNeed[i] = rng.Intn(3) == 0
			depOK[i] = rng.Intn(2) == 1
		}
		scheduled := rng.Intn(2) == 1

		want := !scheduled
		for t := range needUnit {
			if needUnit[t] && !availUnit[t] {
				want = false
			}
		}
		for i := range depNeed {
			if depNeed[i] && !depOK[i] {
				want = false
			}
		}
		got := CircuitRequest(needUnit, availUnit, depNeed, depOK, scheduled)
		if got != want {
			t.Fatalf("circuit %v != behaviour %v (unit=%v avail=%v need=%v ok=%v sched=%v)",
				got, want, needUnit, availUnit, depNeed, depOK, scheduled)
		}
	}
}

// TestNoRequestEverViolatesDependencies is a liveness/safety property
// under random operation sequences: whenever a row requests execution all
// of its recorded dependencies have asserted results.
func TestNoRequestEverViolatesDependencies(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := New(arch.QueueSize)
	live := map[int]bool{}
	for step := 0; step < 5000; step++ {
		switch rng.Intn(4) {
		case 0: // allocate with random deps on live rows
			var deps []int
			for r := range live {
				if rng.Intn(3) == 0 {
					deps = append(deps, r)
				}
			}
			unit := arch.UnitType(rng.Intn(arch.NumUnitTypes))
			if row, ok := a.Allocate(unit, deps, 1+rng.Intn(6), uint64(step)); ok {
				live[row] = true
			}
		case 1: // grant a random requester
			av := allAvail()
			reqs := a.Requests(av)
			if len(reqs) > 0 {
				a.Grant(reqs[rng.Intn(len(reqs))])
			}
		case 2: // retire a random completed row
			for r := range live {
				if a.Scheduled(r) && a.ResultAvailable(r) {
					a.Release(r)
					delete(live, r)
					break
				}
			}
		case 3:
			a.Tick()
		}
		// Invariant check.
		for _, r := range a.Requests(allAvail()) {
			for j := 0; j < a.Size(); j++ {
				if a.DependsOn(r, j) && !a.ResultAvailable(j) {
					t.Fatalf("step %d: row %d requests with unsatisfied dependency on %d", step, r, j)
				}
			}
		}
	}
}
