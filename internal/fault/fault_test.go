package fault

import (
	"errors"
	"testing"
)

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{},
		{TransientRate: 1},
		{PermanentRate: 1},
		{TransientRate: 0.5, PermanentRate: 0.5, Seed: 42, ScrubInterval: 10},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []Plan{
		{TransientRate: -0.1},
		{TransientRate: 1.5},
		{PermanentRate: -1},
		{TransientRate: 0.7, PermanentRate: 0.7}, // sum > 1
		{ScrubInterval: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("bad[%d]: err = %v, want ErrInvalidPlan", i, err)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	if !(Plan{TransientRate: 1e-6}).Enabled() {
		t.Error("transient-only plan reports disabled")
	}
	if !(Plan{PermanentRate: 1e-6}).Enabled() {
		t.Error("permanent-only plan reports disabled")
	}
}

func TestDrawDeterministic(t *testing.T) {
	p := Plan{Seed: 7, TransientRate: 0.01, PermanentRate: 0.001}
	a, b := NewInjector(p), NewInjector(p)
	for i := 0; i < 100_000; i++ {
		if ka, kb := a.Draw(), b.Draw(); ka != kb {
			t.Fatalf("draw %d diverges: %v vs %v", i, ka, kb)
		}
	}
}

func TestDrawSeedsDiffer(t *testing.T) {
	a := NewInjector(Plan{Seed: 1, TransientRate: 0.5})
	b := NewInjector(Plan{Seed: 2, TransientRate: 0.5})
	same := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if a.Draw() == b.Draw() {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical streams")
	}
}

// TestDrawRates checks the empirical fault rates land near the plan's
// probabilities (law of large numbers; generous 20% tolerance).
func TestDrawRates(t *testing.T) {
	const n = 2_000_000
	p := Plan{Seed: 11, TransientRate: 0.01, PermanentRate: 0.002}
	in := NewInjector(p)
	var trans, perm int
	for i := 0; i < n; i++ {
		switch in.Draw() {
		case Transient:
			trans++
		case Permanent:
			perm++
		}
	}
	checkRate := func(name string, got int, want float64) {
		rate := float64(got) / n
		if rate < want*0.8 || rate > want*1.2 {
			t.Errorf("%s rate = %v, want about %v", name, rate, want)
		}
	}
	checkRate("transient", trans, p.TransientRate)
	checkRate("permanent", perm, p.PermanentRate)
}

func TestDrawExtremes(t *testing.T) {
	never := NewInjector(Plan{Seed: 3})
	for i := 0; i < 10_000; i++ {
		if k := never.Draw(); k != None {
			t.Fatalf("zero-rate injector fired: %v", k)
		}
	}
	always := NewInjector(Plan{Seed: 3, TransientRate: 1})
	for i := 0; i < 10_000; i++ {
		if k := always.Draw(); k != Transient {
			t.Fatalf("rate-1 injector missed: %v", k)
		}
	}
}

func TestScrubIntervalDefault(t *testing.T) {
	if got := NewInjector(Plan{TransientRate: 0.1}).ScrubInterval(); got != DefaultScrubInterval {
		t.Errorf("default scrub interval = %d, want %d", got, DefaultScrubInterval)
	}
	if got := NewInjector(Plan{TransientRate: 0.1, ScrubInterval: 7}).ScrubInterval(); got != 7 {
		t.Errorf("scrub interval = %d, want 7", got)
	}
}

func TestNewInjectorPanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewInjector accepted an invalid plan")
		}
	}()
	NewInjector(Plan{TransientRate: 2})
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", Transient: "transient", Permanent: "permanent"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
