// Package fault models configuration-memory upsets in the
// reconfigurable fabric: a deterministic, seeded injector that decides,
// per slot per cycle, whether the slot's configuration frames take a
// transient upset (corrupted until scrubbed and repaired) or a permanent
// stuck fault (the slot is dead for the rest of the run).
//
// The injector is deliberately self-contained: its stream depends only
// on the seed and the number of draws consumed, so two runs with the
// same plan and workload observe byte-identical fault histories — the
// property the determinism golden test pins. It allocates nothing after
// construction and draws with a splitmix64 step plus a threshold
// compare, so the enabled path stays on the simulator's zero-allocation
// cycle loop.
package fault

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidPlan reports an out-of-range fault plan. Validate wraps it;
// match with errors.Is.
var ErrInvalidPlan = errors.New("fault: invalid plan")

// DefaultScrubInterval is the readback-scrubbing period used when a plan
// enables faults without choosing one.
const DefaultScrubInterval = 64

// Plan describes a fault campaign. The zero value disables injection.
type Plan struct {
	// Seed initialises the injector's pseudo-random stream. Two plans
	// with equal seeds and rates produce identical fault histories.
	Seed int64
	// TransientRate is the per-slot per-cycle probability of a
	// transient configuration upset (repairable by rewriting the
	// slot's frames). Must lie in [0, 1].
	TransientRate float64
	// PermanentRate is the per-slot per-cycle probability of a
	// permanent stuck fault (the slot never recovers). Must lie in
	// [0, 1], and TransientRate+PermanentRate must not exceed 1.
	PermanentRate float64
	// ScrubInterval is the period, in cycles, of the readback scrub
	// scan that detects corrupted slots. Zero selects
	// DefaultScrubInterval; negative is invalid.
	ScrubInterval int
}

// Enabled reports whether the plan injects any faults.
func (p Plan) Enabled() bool { return p.TransientRate > 0 || p.PermanentRate > 0 }

// Validate checks the plan's ranges. Errors wrap ErrInvalidPlan.
func (p Plan) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("%w: %s must be a probability in [0, 1], got %v", ErrInvalidPlan, name, v)
		}
		return nil
	}
	if err := check("TransientRate", p.TransientRate); err != nil {
		return err
	}
	if err := check("PermanentRate", p.PermanentRate); err != nil {
		return err
	}
	if p.TransientRate+p.PermanentRate > 1 {
		return fmt.Errorf("%w: TransientRate+PermanentRate must not exceed 1, got %v",
			ErrInvalidPlan, p.TransientRate+p.PermanentRate)
	}
	if p.ScrubInterval < 0 {
		return fmt.Errorf("%w: ScrubInterval must be non-negative, got %d", ErrInvalidPlan, p.ScrubInterval)
	}
	return nil
}

// scrubInterval returns the effective scrub period.
func (p Plan) scrubInterval() int {
	if p.ScrubInterval == 0 {
		return DefaultScrubInterval
	}
	return p.ScrubInterval
}

// Kind classifies one injector draw.
type Kind uint8

const (
	// None: the slot-cycle passed without an upset.
	None Kind = iota
	// Transient: the slot's configuration frames flipped; a rewrite
	// restores them.
	Transient
	// Permanent: the slot is stuck; no rewrite recovers it.
	Permanent
)

// String names the kind for logs and fault-event records.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injector is a deterministic per-slot-cycle fault source. Build one
// with NewInjector; the zero value draws nothing.
type Injector struct {
	state uint64
	// Thresholds on the top 63 bits of each draw: u < permThresh is a
	// permanent fault, permThresh <= u < cumThresh a transient one.
	permThresh uint64
	cumThresh  uint64
	scrub      int
}

// NewInjector builds an injector for the plan. Invalid plans panic —
// validate request-supplied plans with Plan.Validate first.
func NewInjector(p Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	// Scale rates to 63-bit thresholds so rate 1.0 is exactly 1<<63
	// without overflowing, and compare against the draw's top 63 bits.
	const scale = 1 << 63
	perm := uint64(p.PermanentRate * scale)
	trans := uint64(p.TransientRate * scale)
	return &Injector{
		// Mix the seed once so small seeds still start far apart in
		// the splitmix64 sequence.
		state:      mix(uint64(p.Seed) ^ 0x5851F42D4C957F2D),
		permThresh: perm,
		cumThresh:  perm + trans,
		scrub:      p.scrubInterval(),
	}
}

// ScrubInterval returns the plan's effective scrub period.
func (in *Injector) ScrubInterval() int { return in.scrub }

// Draw consumes one slot-cycle of the stream and reports whether a
// fault strikes. Callers must draw exactly once per slot per cycle,
// in slot order, regardless of slot eligibility — that keeps the stream
// a pure function of (seed, cycle, slot), so fault histories are
// reproducible across runs and cache configurations.
func (in *Injector) Draw() Kind {
	in.state += 0x9E3779B97F4A7C15
	u := mix(in.state) >> 1
	if u < in.permThresh {
		return Permanent
	}
	if u < in.cumThresh {
		return Transient
	}
	return None
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
