// api.go defines the wire schema of the rssd batch-simulation service:
// the request/response documents of each endpoint, the structured error
// envelope every non-2xx response carries, and the mapping from the
// facade's sentinel errors to HTTP status codes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro"
)

// AssembleRequest is the body of POST /v1/assemble.
type AssembleRequest struct {
	// Source is the assembly text, which may include .data sections.
	Source string `json:"source"`
}

// AssembleResponse reports the assembled program.
type AssembleResponse struct {
	// Instructions is the number of decoded instructions.
	Instructions int `json:"instructions"`
	// Words is the 32-bit binary encoding of the program.
	Words []uint32 `json:"words"`
	// Disassembly is the canonical one-instruction-per-line rendering.
	Disassembly string `json:"disassembly"`
	// Cached reports whether the program came from the assembly cache.
	Cached bool `json:"cached"`
}

// RunSpec describes one simulation: the machine sizing, the
// configuration-management policy, and the run budget. The zero value
// selects the paper's reference machine under the steering policy. It is
// both the core of RunRequest and the per-point element of a sweep.
type RunSpec struct {
	// Policy is the configuration-management policy name; omitted or
	// empty selects "steering". Unknown names fail decoding.
	Policy repro.Policy `json:"policy"`
	// Params sizes the machine; zero fields take the reference values.
	Params repro.Params `json:"params"`
	// MaxCycles bounds the run; 0 takes the server default, and values
	// above the server cap are clamped to it.
	MaxCycles int `json:"maxCycles,omitempty"`
	// Seed feeds the random policy.
	Seed int64 `json:"seed,omitempty"`
	// MinResidency dampens configuration thrash for the steering and
	// oracle policies (cycles to hold a loaded configuration).
	MinResidency int `json:"minResidency,omitempty"`
}

// RunRequest is the body of POST /v1/run. Exactly one of Source or
// Words must be set.
type RunRequest struct {
	// Source is assembly text (assembled through the program cache).
	Source string `json:"source,omitempty"`
	// Words is the binary program form, for pre-assembled jobs.
	Words []uint32 `json:"words,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline,
	// capped at the server maximum.
	TimeoutMs int `json:"timeoutMs,omitempty"`

	RunSpec
}

// RunResponse reports one completed simulation.
type RunResponse struct {
	// Report is the machine's JSON run report (stats, IPC, cache and
	// predictor rates, reconfiguration counts).
	Report json.RawMessage `json:"report"`
	// ElapsedMs is the wall-clock simulation time in milliseconds.
	ElapsedMs float64 `json:"elapsedMs"`
	// Cached reports whether the program came from the assembly cache.
	Cached bool `json:"cached"`
}

// SweepRequest is the body of POST /v1/sweep: one program fanned out
// over a grid of run specifications. Exactly one of Source or Words
// must be set.
type SweepRequest struct {
	Source string   `json:"source,omitempty"`
	Words  []uint32 `json:"words,omitempty"`
	// Points is the grid, one RunSpec per simulation.
	Points []RunSpec `json:"points"`
	// TimeoutMs bounds the whole sweep, not each point.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// SweepResponse reports a completed sweep. Point failures (say, one
// point exhausting its cycle budget) are data, not request failures:
// they ride in the point's Error field while the sweep returns 200.
type SweepResponse struct {
	Points    []SweepPointResult `json:"points"`
	ElapsedMs float64            `json:"elapsedMs"`
	Cached    bool               `json:"cached"`
}

// SweepPointResult is one grid point's outcome: a report or an error.
type SweepPointResult struct {
	Index  int             `json:"index"`
	Policy string          `json:"policy"`
	Report json.RawMessage `json:"report,omitempty"`
	Error  *APIError       `json:"error,omitempty"`
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	// Status is "ok", or "draining" once shutdown has begun.
	Status string `json:"status"`
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// Running is the number of simulations currently executing.
	Running int `json:"running"`
	// Admitted is the number of jobs admitted and not yet finished
	// (running plus waiting for a worker slot).
	Admitted int `json:"admitted"`
}

// APIError is the structured error every non-2xx response carries,
// wrapped as {"error": {...}}. Code is a stable machine-readable
// identifier; Line/Col pin assembly errors to their source position.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
}

// Error makes APIError usable as a Go error inside the handlers.
func (e *APIError) Error() string { return e.Message }

// Stable error codes.
const (
	CodeInvalidRequest   = "invalid_request"
	CodeAssembleError    = "assemble_error"
	CodeUnknownPolicy    = "unknown_policy"
	CodeInvalidParams    = "invalid_params"
	CodeCycleLimit       = "cycle_limit"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeCanceled         = "canceled"
	CodeQueueFull        = "queue_full"
	CodeDraining         = "draining"
	CodeBodyTooLarge     = "body_too_large"
	CodeInternal         = "internal"
)

// Admission sentinels, mapped to 503 by classify.
var (
	errQueueFull = errors.New("job queue is full")
	errDraining  = errors.New("server is draining")
)

// errInvalidRequest marks request-shape failures (missing program,
// negative timeout, too many points) for classification as 400s.
var errInvalidRequest = errors.New("invalid request")

// invalidRequestf builds a 400-classified error.
func invalidRequestf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errInvalidRequest)...)
}

// classify maps an error from the load/validate/simulate path to its
// HTTP status and structured form. The mapping leans entirely on the
// facade's sentinel errors and errors.Is/As — no message parsing.
func classify(err error) (int, *APIError) {
	var asmErr *repro.AsmError
	var maxBytes *http.MaxBytesError
	switch {
	case errors.As(err, &asmErr):
		return http.StatusBadRequest, &APIError{
			Code: CodeAssembleError, Message: err.Error(),
			Line: asmErr.Line, Col: asmErr.Col,
		}
	case errors.As(err, &maxBytes):
		return http.StatusRequestEntityTooLarge, &APIError{
			Code: CodeBodyTooLarge, Message: err.Error(),
		}
	case errors.Is(err, repro.ErrUnknownPolicy):
		return http.StatusBadRequest, &APIError{Code: CodeUnknownPolicy, Message: err.Error()}
	case errors.Is(err, repro.ErrInvalidParams):
		return http.StatusBadRequest, &APIError{Code: CodeInvalidParams, Message: err.Error()}
	case errors.Is(err, errInvalidRequest):
		return http.StatusBadRequest, &APIError{Code: CodeInvalidRequest, Message: err.Error()}
	case errors.Is(err, repro.ErrCycleLimit):
		return http.StatusUnprocessableEntity, &APIError{Code: CodeCycleLimit, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, &APIError{Code: CodeDeadlineExceeded, Message: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, &APIError{Code: CodeCanceled, Message: "request canceled"}
	case errors.Is(err, errQueueFull):
		return http.StatusServiceUnavailable, &APIError{Code: CodeQueueFull, Message: err.Error()}
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, &APIError{Code: CodeDraining, Message: err.Error()}
	default:
		return http.StatusInternalServerError, &APIError{Code: CodeInternal, Message: err.Error()}
	}
}
