// cache.go is the server's assembled-program cache: a small LRU keyed
// by the SHA-256 of the source text, so repeated jobs over the same
// program (the normal sweep workflow) assemble once. Units are immutable
// after assembly — Apply writes the data image into a machine's own
// memory — so one cached Unit is safely shared across concurrent jobs.
package server

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro"
)

// programCache is a mutex-guarded LRU of assembled units.
type programCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[[sha256.Size]byte]*list.Element
}

// cacheEntry is one resident program.
type cacheEntry struct {
	key  [sha256.Size]byte
	unit *repro.Unit
}

// newProgramCache builds a cache holding up to capacity programs; a
// non-positive capacity disables caching.
func newProgramCache(capacity int) *programCache {
	return &programCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[[sha256.Size]byte]*list.Element),
	}
}

// get returns the cached unit for the source, marking it most recently
// used, or (nil, false) on a miss.
func (c *programCache) get(source string) (*repro.Unit, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	key := sha256.Sum256([]byte(source))
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).unit, true
}

// put inserts an assembled unit, evicting the least recently used entry
// when the cache is full.
func (c *programCache) put(source string, unit *repro.Unit) {
	if c.cap <= 0 {
		return
	}
	key := sha256.Sum256([]byte(source))
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).unit = unit
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, unit: unit})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of resident programs.
func (c *programCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
