package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestEstimateResponseSchemaGolden pins the /v1/estimate wire schema:
// every field path and JSON type of a real response must match
// testdata/estimate_schema.golden. The pruning path in cmd/rssbench and
// any dashboard reading predicted IPC parse this document, so adding or
// renaming a field means regenerating the golden deliberately (delete
// it and re-run with -run EstimateResponseSchemaGolden to print the new
// schema).
func TestEstimateResponseSchemaGolden(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, doc := postJSON(t, ts, "/v1/estimate", fmt.Sprintf(`{"source": %q}`, haltingSource))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}

	var sb strings.Builder
	sb.WriteString("# /v1/estimate response schema: field path -> JSON type.\n")
	sb.WriteString("# Regenerate: delete this file, run go test -run EstimateResponseSchemaGolden,\n")
	sb.WriteString("# and copy the schema the failure prints.\n")
	renderSchema(&sb, "", doc)
	got := sb.String()

	goldenPath := filepath.Join("testdata", "estimate_schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (current schema below, save it there if this is a new checkout):\n%s\n%v",
			goldenPath, got, err)
	}
	if got != string(want) {
		t.Errorf("/v1/estimate response schema drifted from %s.\ngot:\n%s\nwant:\n%s",
			goldenPath, got, want)
	}
}

// renderSchema walks a decoded JSON document and writes sorted
// "path: type" lines; array elements are rendered once under path[].
func renderSchema(sb *strings.Builder, prefix string, v any) {
	switch vv := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(vv))
		for k := range vv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			path := k
			if prefix != "" {
				path = prefix + "." + k
			}
			renderSchema(sb, path, vv[k])
		}
	case []any:
		if len(vv) == 0 {
			fmt.Fprintf(sb, "%s: empty array\n", prefix)
			return
		}
		renderSchema(sb, prefix+"[]", vv[0])
	case nil:
		fmt.Fprintf(sb, "%s: null\n", prefix)
	case bool:
		fmt.Fprintf(sb, "%s: bool\n", prefix)
	case string:
		fmt.Fprintf(sb, "%s: string\n", prefix)
	case float64:
		fmt.Fprintf(sb, "%s: number\n", prefix)
	default:
		fmt.Fprintf(sb, "%s: %T\n", prefix, v)
	}
}
