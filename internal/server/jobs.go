// jobs.go is the server half of the distributed sweep fabric: the
// asynchronous jobs API handlers, the in-process executor that runs
// points through the same bounded worker pool as /v1/run, and the
// coordinator observer that lands fabric progress on the telemetry
// registry and the span flight recorder.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/job"
	"repro/internal/wide"
)

// localExecutor runs job points in-process. Each point competes for the
// same worker-slot semaphore as synchronous requests, so a background
// job cannot starve interactive traffic beyond the pool's fairness.
type localExecutor struct {
	s *Server
}

// Name implements job.Executor.
func (e *localExecutor) Name() string { return "local" }

// Slots implements job.Executor: one dispatch loop per pool worker —
// more would only queue on the semaphore inside Execute.
func (e *localExecutor) Slots() int { return e.s.cfg.Workers }

// Execute implements job.Executor. Simulation failures (cycle limit,
// point deadline) are point-level data; a cancellation — job cancelled
// or server shutting down — is a worker-level error so the coordinator
// leaves the point pending instead of recording a bogus result.
func (e *localExecutor) Execute(ctx context.Context, p job.ExecPoint) (*api.PointResult, error) {
	s := e.s
	kind := p.Job.Spec.Kind + "_point" // "sweep_point" | "job_point"
	res := &api.PointResult{Index: p.Index, Policy: p.Spec.Policy.String(), Worker: "local"}
	lp, err := s.load(p.Job.Spec.Program.Source, p.Job.Spec.Program.Words)
	if err != nil {
		// Programs are validated at submit; hitting this means the cache
		// entry aged out and reassembly failed, which is deterministic —
		// record it as the point's result rather than requeuing forever.
		_, res.Error = api.Classify(err)
		return res, nil
	}
	if err := s.pool.acquire(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// The point's own timeout expired while waiting for a slot.
			_, res.Error = api.Classify(err)
			return res, nil
		}
		return nil, err
	}
	defer s.pool.release()
	acquired := time.Now()
	s.observeQueueWait(kind, acquired.Sub(p.Enqueued))
	s.spans.Record(p.Job.SpanReq, "queue-wait", kind, p.Index, p.Enqueued, acquired)
	report, elapsedMs, err := s.simulate(ctx, lp, p.Spec, kind, p.Job.SpanReq, p.Index)
	res.ElapsedMs = elapsedMs
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return nil, err
		}
		_, res.Error = api.Classify(err)
		return res, nil
	}
	res.Report = report
	return res, nil
}

// BatchKey implements job.BatchExecutor: two points are lane-compatible
// when their resolved specs agree on everything but seed and cycle
// budget — the wide machine's eligibility rule (identical Params,
// Policy, MinResidency select identical code paths; seed, workload and
// budget may diverge per lane). The key is the spec JSON with the
// per-lane fields zeroed. Batching off (BatchLanes 1) keys everything
// to the scalar path.
func (e *localExecutor) BatchKey(p job.ExecPoint) string {
	if e.s.cfg.BatchLanes <= 1 {
		return ""
	}
	// Cluster points (Cores > 1) run K full machines against one shared
	// fabric; they cannot fold into wide-machine lanes.
	if p.Spec.Params.Cores > 1 {
		return ""
	}
	spec := p.Spec
	spec.Seed = 0
	spec.MaxCycles = 0
	b, err := json.Marshal(spec)
	if err != nil {
		return ""
	}
	return string(b)
}

// MaxBatch implements job.BatchExecutor: the configured lane width.
func (e *localExecutor) MaxBatch() int { return e.s.cfg.BatchLanes }

// ExecuteBatch implements job.BatchExecutor: the point group runs as
// lanes of one wide machine under a single worker slot, and results are
// demuxed per lane — each point gets exactly the report the scalar
// Execute path would have produced (lanes are full scalar machines over
// the same bitboard substrates, so stats are bit-identical by
// construction). The error contract matches Execute lane-wise: a cycle
// limit or point deadline is point data; a cancellation fails the whole
// batch so the coordinator requeues every lane together.
func (e *localExecutor) ExecuteBatch(ctx context.Context, ps []job.ExecPoint) ([]*api.PointResult, error) {
	s := e.s
	if len(ps) == 1 {
		res, err := e.Execute(ctx, ps[0])
		if err != nil {
			return nil, err
		}
		return []*api.PointResult{res}, nil
	}
	first := ps[0]
	kind := first.Job.Spec.Kind + "_point"
	out := make([]*api.PointResult, len(ps))
	for i, p := range ps {
		out[i] = &api.PointResult{Index: p.Index, Policy: p.Spec.Policy.String(), Worker: "local"}
	}
	lp, err := s.load(first.Job.Spec.Program.Source, first.Job.Spec.Program.Words)
	if err != nil {
		// Deterministic reassembly failure: point-level data for every
		// lane, exactly like the scalar path.
		for _, res := range out {
			_, res.Error = api.Classify(err)
		}
		return out, nil
	}
	if err := s.pool.acquire(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			for _, res := range out {
				_, res.Error = api.Classify(err)
			}
			return out, nil
		}
		return nil, err
	}
	defer s.pool.release()
	acquired := time.Now()
	for _, p := range ps {
		s.observeQueueWait(kind, acquired.Sub(p.Enqueued))
		s.spans.Record(p.Job.SpanReq, "queue-wait", kind, p.Index, p.Enqueued, acquired)
	}

	lanes := make([]wide.Lane, len(ps))
	for i, p := range ps {
		lanes[i] = wide.Lane{
			M: lp.newMachine(repro.Options{
				Params:       p.Spec.Params,
				Policy:       p.Spec.Policy,
				Seed:         p.Spec.Seed,
				MinResidency: p.Spec.MinResidency,
			}),
			MaxCycles: p.Spec.MaxCycles,
		}
	}
	w := wide.New(lanes)
	start := time.Now()
	results, ctxErr := w.RunContext(ctx)
	elapsed := time.Since(start)
	if ctxErr != nil && errors.Is(ctxErr, context.Canceled) {
		// Job cancelled or server shutting down: worker-level failure of
		// the whole batch; completed lanes re-run after resume (results
		// are deterministic, so the replay is byte-identical).
		return nil, ctxErr
	}
	elapsedMs := float64(elapsed) / float64(time.Millisecond)
	for i, p := range ps {
		res := out[i]
		res.ElapsedMs = elapsedMs
		s.observeJob(kind, elapsed)
		s.spans.Record(p.Job.SpanReq, "point", kind, p.Index, start, start.Add(elapsed))
		lerr := results[i].Err
		if errors.Is(lerr, context.DeadlineExceeded) {
			s.spans.TriggerDeadline(p.Job.SpanReq, kind, p.Index, start, start.Add(elapsed))
		}
		s.accountMachine(w.Lane(i))
		if lerr != nil {
			_, res.Error = api.Classify(lerr)
			continue
		}
		report, rerr := w.Lane(i).ReportJSON()
		if rerr != nil {
			_, res.Error = api.Classify(fmt.Errorf("rendering report: %w", rerr))
			continue
		}
		res.Report = report
	}
	return out, nil
}

// coordObserver lands fabric lifecycle on the server's metrics and the
// span flight recorder.
type coordObserver struct {
	s *Server
}

func (o *coordObserver) JobSubmitted(j *job.Job) {
	o.s.mmu.Lock()
	o.s.jobsSubmitted.Inc()
	o.s.mmu.Unlock()
}

func (o *coordObserver) JobFinished(j *job.Job) {
	state := string(j.State())
	o.s.mmu.Lock()
	if c, ok := o.s.jobsFinished[state]; ok {
		c.Inc()
	}
	o.s.mmu.Unlock()
	// One fabric-level span per job lifetime, under the job's request
	// ordinal, so a flight-recorder dump shows the whole sweep next to
	// its per-point children.
	o.s.spans.Record(j.SpanReq, "job", j.Spec.Kind, -1, j.Started(), time.Now())
}

func (o *coordObserver) PointDone(j *job.Job, res *api.PointResult) {
	outcome := "done"
	if res.Error != nil {
		outcome = "failed"
	}
	o.s.mmu.Lock()
	o.s.jobPoints[outcome].Inc()
	o.s.mmu.Unlock()
}

func (o *coordObserver) PointRequeued(j *job.Job, index int) {
	o.s.mmu.Lock()
	o.s.jobPoints["requeued"].Inc()
	o.s.mmu.Unlock()
}

func (o *coordObserver) QueueDepth(depth int) {
	o.s.mmu.Lock()
	o.s.gaugeJobQueue.Set(int64(depth))
	o.s.mmu.Unlock()
}

// --- handlers ---

// handleJobSubmit accepts a sweep as a durable asynchronous job:
// validate everything up front (program, every point's spec, the point
// budget), persist, enqueue, answer 202 with the job ID.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.countRequest("jobs")
	var req api.JobRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, "jobs", err)
		return
	}
	if s.draining.Load() {
		s.countRejected(api.CodeDraining)
		s.fail(w, "jobs", api.ErrDraining)
		return
	}
	if len(req.Points) == 0 {
		s.fail(w, "jobs", api.InvalidRequestf("points must not be empty"))
		return
	}
	if len(req.Points) > s.cfg.MaxJobPoints {
		s.fail(w, "jobs", api.InvalidRequestf("%d points exceed the job cap of %d",
			len(req.Points), s.cfg.MaxJobPoints))
		return
	}
	if req.PointTimeoutMs < 0 {
		s.fail(w, "jobs", api.InvalidRequestf("pointTimeoutMs must be non-negative, got %d", req.PointTimeoutMs))
		return
	}
	pointTimeout := time.Duration(req.PointTimeoutMs) * time.Millisecond
	if pointTimeout > s.cfg.MaxTimeout {
		pointTimeout = s.cfg.MaxTimeout
	}
	// Validate the program now so a typo is a 400 at submit, not a
	// failed point an hour later. Remote workers re-assemble from the
	// same source, so the check holds for them too.
	if _, err := s.load(req.Source, req.Words); err != nil {
		s.fail(w, "jobs", err)
		return
	}
	specs := make([]api.RunSpec, len(req.Points))
	for i := range req.Points {
		specs[i] = req.Points[i]
		if err := s.resolveSpec(&specs[i]); err != nil {
			s.fail(w, "jobs", api.InvalidRequestf("point %d: %v", i, err))
			return
		}
	}
	if s.coord.Active() >= s.cfg.MaxActiveJobs {
		s.countRejected(api.CodeQueueFull)
		s.fail(w, "jobs", api.ErrQueueFull)
		return
	}
	j, err := s.coord.Submit(job.Spec{
		Label:          req.Label,
		Kind:           "job",
		Program:        api.Program{Source: req.Source, Words: req.Words},
		Points:         specs,
		PointTimeoutMs: int(pointTimeout / time.Millisecond),
	}, s.spans.NextRequest())
	if err != nil {
		s.fail(w, "jobs", err)
		return
	}
	writeJSON(w, http.StatusAccepted, api.JobCreated{
		ID:    j.ID,
		State: j.State(),
		Total: len(specs),
	})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.countRequest("jobs_list")
	jobs := s.coord.Store().Jobs()
	out := api.JobList{Jobs: make([]api.JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status(false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.countRequest("job")
	j, ok := s.coord.Store().Get(r.PathValue("id"))
	if !ok {
		s.fail(w, "job", api.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.Status(r.URL.Query().Get("results") == "1"))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.countRequest("job_cancel")
	j, err := s.coord.Cancel(r.PathValue("id"))
	if err != nil {
		s.fail(w, "job_cancel", err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status(false))
}

// handleJobEvents streams a job's per-point results as chunked JSONL
// (application/x-ndjson): first a replay of every already-completed
// point, then live events as points land, ending with a terminal state
// event. The stream also ends when the client disconnects or the
// server starts draining, so it never blocks shutdown.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.countRequest("job_events")
	j, ok := s.coord.Store().Get(r.PathValue("id"))
	if !ok {
		s.fail(w, "job_events", api.ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	enc := json.NewEncoder(w)
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}
	replay, ch := j.Subscribe()
	for _, ev := range replay {
		if enc.Encode(ev) != nil {
			return
		}
	}
	flush()
	// Poll the draining flag with a coarse ticker; shutdown does not
	// wait on event streams, it just stops feeding them.
	drainTick := time.NewTicker(250 * time.Millisecond)
	defer drainTick.Stop()
	for {
		select {
		case ev, chOpen := <-ch:
			if !chOpen {
				return
			}
			if enc.Encode(ev) != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		case <-drainTick.C:
			if s.draining.Load() {
				return
			}
		}
	}
}
