// Tests for the rssd observability surface added with the span
// recorder: the /debug/flightrecorder endpoint, per-endpoint latency
// histograms, optional pprof mounting, deadline triggers and the
// drain-time span flush.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/span"
)

func metricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return buf.String()
}

// flightDoc fetches and decodes /debug/flightrecorder.
func flightDoc(t *testing.T, url string) (doc struct {
	Recorded  uint64             `json:"recorded"`
	Deadlines uint64             `json:"deadlines"`
	Spans     []span.ServiceSpan `json:"spans"`
}) {
	t.Helper()
	resp, err := http.Get(url + "/debug/flightrecorder")
	if err != nil {
		t.Fatalf("GET /debug/flightrecorder: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flightrecorder: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("flightrecorder content type = %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("flightrecorder is not JSON: %v", err)
	}
	return doc
}

// TestFlightRecorderEndpoint runs one job and checks its lifecycle
// stages — queue-wait, execute, encode — land in the flight ring.
func TestFlightRecorderEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	doc := flightDoc(t, ts.URL)
	if doc.Recorded != 0 || len(doc.Spans) != 0 {
		t.Fatalf("fresh server has %d spans recorded", doc.Recorded)
	}

	if code, _ := postJSON(t, ts, "/v1/run", fmt.Sprintf(`{"source": %q}`, haltingSource)); code != http.StatusOK {
		t.Fatalf("run status = %d", code)
	}
	doc = flightDoc(t, ts.URL)
	stages := map[string]int{}
	for _, s := range doc.Spans {
		stages[s.Name]++
		if s.Kind != "run" || s.Point != -1 {
			t.Errorf("run span = %+v, want kind run, point -1", s)
		}
		if s.DurUs < 0 || s.StartUs < 0 {
			t.Errorf("span %+v has negative timing", s)
		}
	}
	for _, want := range []string{"queue-wait", "execute", "encode"} {
		if stages[want] != 1 {
			t.Errorf("stage %q recorded %d times, want 1 (stages %v)", want, stages[want], stages)
		}
	}
	if doc.Deadlines != 0 {
		t.Errorf("deadlines = %d on a healthy run", doc.Deadlines)
	}
}

// TestSweepSpans checks a sweep records per-point children plus the
// request-level sweep and encode spans, all under one request ordinal.
func TestSweepSpans(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 2})
	body := fmt.Sprintf(`{"source": %q, "points": [{"policy": "steering"}, {"policy": "demand"}]}`, haltingSource)
	if code, _ := postJSON(t, ts, "/v1/sweep", body); code != http.StatusOK {
		t.Fatalf("sweep status = %d", code)
	}
	doc := flightDoc(t, ts.URL)
	var points, sweeps, encodes int
	reqs := map[uint64]bool{}
	for _, s := range doc.Spans {
		reqs[s.Req] = true
		switch {
		case s.Name == "point" && s.Kind == "sweep_point":
			points++
		case s.Name == "queue-wait" && s.Kind == "sweep_point":
			if s.Point < 0 || s.Point > 1 {
				t.Errorf("point queue-wait has index %d", s.Point)
			}
		case s.Name == "sweep":
			sweeps++
		case s.Name == "encode":
			encodes++
		}
	}
	if points != 2 || sweeps != 1 || encodes != 1 {
		t.Errorf("spans = %d points, %d sweeps, %d encodes; want 2/1/1 (all: %+v)",
			points, sweeps, encodes, doc.Spans)
	}
	if len(reqs) != 1 {
		t.Errorf("sweep spans cover %d request ordinals, want 1", len(reqs))
	}
}

// TestDeadlineTriggerRecorded pins the service-side anomaly trigger: a
// run that exceeds its deadline must bump the deadline tally and leave
// a deadline-exceeded span in the ring.
func TestDeadlineTriggerRecorded(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	code, _ := postJSON(t, ts, "/v1/run",
		fmt.Sprintf(`{"source": %q, "maxCycles": 500000000, "timeoutMs": 50}`, spinSource))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline run status = %d, want 504", code)
	}
	doc := flightDoc(t, ts.URL)
	if doc.Deadlines != 1 {
		t.Errorf("deadlines = %d, want 1", doc.Deadlines)
	}
	var sawTrigger bool
	for _, s := range doc.Spans {
		if s.Name == "deadline-exceeded" && s.Detail == "deadline" {
			sawTrigger = true
		}
	}
	if !sawTrigger {
		t.Errorf("no deadline-exceeded span in ring: %+v", doc.Spans)
	}
}

// TestLatencyHistograms checks the queue-wait and handler-duration
// histograms appear in /metrics with observations after traffic.
func TestLatencyHistograms(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 2})
	postJSON(t, ts, "/v1/run", fmt.Sprintf(`{"source": %q}`, haltingSource))
	postJSON(t, ts, "/v1/sweep",
		fmt.Sprintf(`{"source": %q, "points": [{"policy": "steering"}, {"policy": "demand"}]}`, haltingSource))

	text := metricsText(t, ts.URL)
	for _, want := range []string{
		`rssd_queue_wait_us_count{kind="run"} 1`,
		`rssd_queue_wait_us_count{kind="sweep_point"} 2`,
		`rssd_handler_duration_us_count{handler="run"} 1`,
		`rssd_handler_duration_us_count{handler="sweep"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPprofGated checks net/http/pprof is absent by default and mounted
// with EnablePprof, and that profiling traffic stays out of the request
// metrics.
func TestPprofGated(t *testing.T) {
	_, off, _ := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag: status %d, want 404", resp.StatusCode)
	}

	_, on, _ := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with flag: status %d, want 200", resp.StatusCode)
	}
	if text := metricsText(t, on.URL); strings.Contains(text, "pprof") {
		t.Error("pprof traffic leaked into service metrics")
	}
}

// TestDrainFlushesSpans mirrors the rssd shutdown path: after draining,
// the span sink must export everything recorded during the session in
// both formats.
func TestDrainFlushesSpans(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	postJSON(t, ts, "/v1/run", fmt.Sprintf(`{"source": %q}`, haltingSource))
	s.StartDrain()

	var buf bytes.Buffer
	if err := s.Spans().WriteJSON(&buf); err != nil {
		t.Fatalf("drain span flush (json): %v", err)
	}
	var doc struct {
		Recorded uint64             `json:"recorded"`
		Spans    []span.ServiceSpan `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("drained span dump is not JSON: %v", err)
	}
	if doc.Recorded == 0 || len(doc.Spans) == 0 {
		t.Errorf("drained dump empty: recorded=%d spans=%d", doc.Recorded, len(doc.Spans))
	}

	buf.Reset()
	if err := s.Spans().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("drain span flush (chrome): %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("drained chrome trace is not JSON: %v", err)
	}
	if len(trace.TraceEvents) < 2 {
		t.Errorf("drained chrome trace has %d events", len(trace.TraceEvents))
	}
}
