package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// haltingSource is a tiny program that retires a HALT quickly.
const haltingSource = `
	li r1, 10
	li r2, 32
	mul r3, r1, r2
	halt
`

// spinSource never halts; runs against it end only by budget or deadline.
const spinSource = "loop: j loop\n"

// newTestServer builds a server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON sends body to path and returns the status plus decoded body.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("POST %s: decoding response: %v", path, err)
	}
	return resp.StatusCode, doc
}

// getJSON fetches path and returns the status plus decoded body.
func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("GET %s: decoding response: %v", path, err)
	}
	return resp.StatusCode, doc
}

// errCode digs the structured code out of an error envelope.
func errCode(t *testing.T, doc map[string]any) string {
	t.Helper()
	env, ok := doc["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", doc)
	}
	code, _ := env["code"].(string)
	return code
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestAssemble(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, doc := postJSON(t, ts, "/v1/assemble", marshal(t, AssembleRequest{Source: haltingSource}))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	if n := doc["instructions"].(float64); n != 4 {
		t.Errorf("instructions = %v, want 4", n)
	}
	if words := doc["words"].([]any); len(words) != 4 {
		t.Errorf("len(words) = %d, want 4", len(words))
	}
	if dis := doc["disassembly"].(string); !strings.Contains(dis, "halt") {
		t.Errorf("disassembly missing halt:\n%s", dis)
	}
	if doc["cached"].(bool) {
		t.Errorf("first assembly reported cached")
	}

	// The identical source must come from the cache the second time.
	status, doc = postJSON(t, ts, "/v1/assemble", marshal(t, AssembleRequest{Source: haltingSource}))
	if status != http.StatusOK || !doc["cached"].(bool) {
		t.Errorf("second assembly: status %d cached %v, want 200 true", status, doc["cached"])
	}
}

func TestAssembleError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, doc := postJSON(t, ts, "/v1/assemble", marshal(t, AssembleRequest{Source: "li r1, 1\nbogus r2\nhalt\n"}))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%v)", status, doc)
	}
	env := doc["error"].(map[string]any)
	if env["code"] != CodeAssembleError {
		t.Errorf("code = %v, want %s", env["code"], CodeAssembleError)
	}
	if line := env["line"].(float64); line != 2 {
		t.Errorf("line = %v, want 2", line)
	}
}

func TestRunHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, doc := postJSON(t, ts, "/v1/run",
		fmt.Sprintf(`{"source": %q, "policy": "steering"}`, haltingSource))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	report := doc["report"].(map[string]any)
	if report["policy"] != "steering" {
		t.Errorf("report policy = %v, want steering", report["policy"])
	}
	stats := report["stats"].(map[string]any)
	if stats["Retired"].(float64) < 4 {
		t.Errorf("retired = %v, want >= 4", stats["Retired"])
	}
}

func TestRunFromWords(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Assemble first, then run the binary form.
	status, doc := postJSON(t, ts, "/v1/assemble", marshal(t, AssembleRequest{Source: haltingSource}))
	if status != http.StatusOK {
		t.Fatalf("assemble status = %d", status)
	}
	var words []uint32
	for _, w := range doc["words"].([]any) {
		words = append(words, uint32(w.(float64)))
	}
	status, doc = postJSON(t, ts, "/v1/run", marshal(t, RunRequest{Words: words}))
	if status != http.StatusOK {
		t.Fatalf("run status = %d, want 200 (%v)", status, doc)
	}
}

// faultySource loops long enough for a high-rate fault campaign to
// land upsets during the run.
const faultySource = `
	li r1, 200
loop:	addi r1, r1, -1
	mul r2, r1, r1
	bne r1, r0, loop
	halt
`

func TestRunWithFaults(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"source": %q, "policy": "steering", "params": {"FaultTransientRate": 0.002, "FaultPermanentRate": 0.0002, "FaultSeed": 11}}`, faultySource)
	status, doc := postJSON(t, ts, "/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	report := doc["report"].(map[string]any)
	faults, ok := report["faults"].(map[string]any)
	if !ok {
		t.Fatalf("report has no faults block: %v", report)
	}
	if faults["scrubScans"].(float64) == 0 {
		t.Errorf("no scrub scans recorded in %v", faults)
	}
}

func TestSweepWithFaultRates(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := fmt.Sprintf(`{"source": %q, "points": [
		{"policy": "steering"},
		{"policy": "steering", "params": {"FaultTransientRate": 0.002, "FaultSeed": 11}},
		{"policy": "steering", "params": {"FaultTransientRate": 0.01, "FaultSeed": 11}}
	]}`, faultySource)
	status, doc := postJSON(t, ts, "/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	points := doc["points"].([]any)
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for i, raw := range points {
		p := raw.(map[string]any)
		if p["error"] != nil {
			t.Fatalf("point %d: unexpected error %v", i, p["error"])
		}
		report := p["report"].(map[string]any)
		_, hasFaults := report["faults"]
		if wantFaults := i > 0; hasFaults != wantFaults {
			t.Errorf("point %d: faults block present = %v, want %v", i, hasFaults, wantFaults)
		}
	}
}

func TestRunBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"malformed JSON", `{"source": `, CodeInvalidRequest},
		{"unknown field", `{"sauce": "halt"}`, CodeInvalidRequest},
		{"trailing data", fmt.Sprintf(`{"source": %q} junk`, haltingSource), CodeInvalidRequest},
		{"no program", `{}`, CodeInvalidRequest},
		{"source and words", fmt.Sprintf(`{"source": %q, "words": [1]}`, haltingSource), CodeInvalidRequest},
		{"unknown policy", fmt.Sprintf(`{"source": %q, "policy": "bogus"}`, haltingSource), CodeUnknownPolicy},
		{"negative timeout", fmt.Sprintf(`{"source": %q, "timeoutMs": -1}`, haltingSource), CodeInvalidRequest},
		{"negative cycles", fmt.Sprintf(`{"source": %q, "maxCycles": -1}`, haltingSource), CodeInvalidParams},
		{"bad params", fmt.Sprintf(`{"source": %q, "params": {"WindowSize": -3}}`, haltingSource), CodeInvalidParams},
		{"fault rate above 1", fmt.Sprintf(`{"source": %q, "params": {"FaultTransientRate": 1.5}}`, haltingSource), CodeInvalidParams},
		{"negative fault rate", fmt.Sprintf(`{"source": %q, "params": {"FaultPermanentRate": -0.1}}`, haltingSource), CodeInvalidParams},
		{"fault rates sum above 1", fmt.Sprintf(`{"source": %q, "params": {"FaultTransientRate": 0.6, "FaultPermanentRate": 0.6}}`, haltingSource), CodeInvalidParams},
		{"negative scrub interval", fmt.Sprintf(`{"source": %q, "params": {"FaultScrubInterval": -1}}`, haltingSource), CodeInvalidParams},
		{"negative config bus width", fmt.Sprintf(`{"source": %q, "params": {"ConfigBusWidth": -2}}`, haltingSource), CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, doc := postJSON(t, ts, "/v1/run", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%v)", status, doc)
			}
			if code := errCode(t, doc); code != tc.wantCode {
				t.Errorf("code = %s, want %s", code, tc.wantCode)
			}
		})
	}
}

func TestRunPrefetchPolicy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, doc := postJSON(t, ts, "/v1/run",
		fmt.Sprintf(`{"source": %q, "policy": "prefetch"}`, haltingSource))
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	report := doc["report"].(map[string]any)
	if report["policy"] != "prefetch" {
		t.Errorf("report policy = %v, want prefetch", report["policy"])
	}
	if _, ok := report["prefetch"].(map[string]any); !ok {
		t.Errorf("report has no prefetch block: %v", report)
	}

	// The run's prefetch accounting aggregates into the service metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	text := buf.String()
	for _, name := range prefetchCounterNames {
		if !strings.Contains(text, fmt.Sprintf("rssd_prefetch_total{counter=%q}", name)) {
			t.Errorf("metrics missing rssd_prefetch_total counter %q\n%s", name, text)
		}
	}
}

// TestUnknownPolicyEnvelopeListsAll pins the error envelope to the
// canonical policy table: the 400 for a bogus policy name must
// enumerate every parseable policy, so the API surface and
// rsssim -list-policies can never drift apart.
func TestUnknownPolicyEnvelopeListsAll(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, doc := postJSON(t, ts, "/v1/run",
		fmt.Sprintf(`{"source": %q, "policy": "bogus"}`, haltingSource))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%v)", status, doc)
	}
	env := doc["error"].(map[string]any)
	msg, _ := env["message"].(string)
	for _, p := range repro.Policies() {
		if !strings.Contains(msg, p.String()) {
			t.Errorf("unknown-policy message does not list %q: %s", p, msg)
		}
	}
}

func TestRunBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := strings.Repeat("# padding line\n", 200) + haltingSource
	status, doc := postJSON(t, ts, "/v1/run", fmt.Sprintf(`{"source": %q}`, big))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%v)", status, doc)
	}
	if code := errCode(t, doc); code != CodeBodyTooLarge {
		t.Errorf("code = %s, want %s", code, CodeBodyTooLarge)
	}
}

func TestRunCycleLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, doc := postJSON(t, ts, "/v1/run",
		fmt.Sprintf(`{"source": %q, "maxCycles": 1000}`, spinSource))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (%v)", status, doc)
	}
	if code := errCode(t, doc); code != CodeCycleLimit {
		t.Errorf("code = %s, want %s", code, CodeCycleLimit)
	}
}

func TestRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A program that never halts, a cycle budget far beyond what 100ms
	// can simulate, and a short request deadline: the deadline wins.
	status, doc := postJSON(t, ts, "/v1/run",
		fmt.Sprintf(`{"source": %q, "maxCycles": 500000000, "timeoutMs": 100}`, spinSource))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", status, doc)
	}
	if code := errCode(t, doc); code != CodeDeadlineExceeded {
		t.Errorf("code = %s, want %s", code, CodeDeadlineExceeded)
	}
}

func TestSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Source: haltingSource,
		Points: []RunSpec{},
	}
	policies := []string{"steering", "static-integer", "static-memory", "static-floating", "ffu-only", "full-reconfig", "oracle", "random", "demand"}
	body := `{"source": ` + marshal(t, req.Source) + `, "points": [`
	for i, p := range policies {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf(`{"policy": %q}`, p)
	}
	body += `]}`
	status, doc := postJSON(t, ts, "/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	points := doc["points"].([]any)
	if len(points) != len(policies) {
		t.Fatalf("got %d points, want %d", len(points), len(policies))
	}
	for i, raw := range points {
		p := raw.(map[string]any)
		if p["index"].(float64) != float64(i) {
			t.Errorf("point %d: index = %v", i, p["index"])
		}
		if p["policy"] != policies[i] {
			t.Errorf("point %d: policy = %v, want %s", i, p["policy"], policies[i])
		}
		if p["error"] != nil {
			t.Errorf("point %d: unexpected error %v", i, p["error"])
		}
		if _, ok := p["report"].(map[string]any); !ok {
			t.Errorf("point %d: missing report", i)
		}
	}
}

func TestSweepConcurrent(t *testing.T) {
	// Several sweeps in flight at once over a 2-worker pool: results must
	// stay complete and ordered while jobs from different requests
	// interleave on the shared slots (the -race run is the real check).
	_, ts := newTestServer(t, Config{Workers: 2, Backlog: 16})
	body := fmt.Sprintf(`{"source": %q, "points": [{"policy": "steering"}, {"policy": "ffu-only"}, {"policy": "demand"}]}`, haltingSource)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, doc := postJSON(t, ts, "/v1/sweep", body)
			if status != http.StatusOK {
				t.Errorf("status = %d, want 200 (%v)", status, doc)
				return
			}
			if n := len(doc["points"].([]any)); n != 3 {
				t.Errorf("got %d points, want 3", n)
			}
		}()
	}
	wg.Wait()
}

func TestSweepPointErrorIsData(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One good point, one that exhausts its cycle budget: the sweep
	// succeeds and the failure rides in the point's error field.
	body := fmt.Sprintf(`{"source": %q, "points": [{"policy": "steering"}, {"policy": "steering", "maxCycles": 2}]}`, haltingSource)
	status, doc := postJSON(t, ts, "/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	points := doc["points"].([]any)
	if e := points[0].(map[string]any)["error"]; e != nil {
		t.Errorf("point 0: unexpected error %v", e)
	}
	env, ok := points[1].(map[string]any)["error"].(map[string]any)
	if !ok || env["code"] != CodeCycleLimit {
		t.Errorf("point 1: error = %v, want code %s", points[1], CodeCycleLimit)
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepPoints: 2})
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"no points", fmt.Sprintf(`{"source": %q, "points": []}`, haltingSource), CodeInvalidRequest},
		{"too many points", fmt.Sprintf(`{"source": %q, "points": [{}, {}, {}]}`, haltingSource), CodeInvalidRequest},
		{"bad point params", fmt.Sprintf(`{"source": %q, "points": [{"maxCycles": -1}]}`, haltingSource), CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, doc := postJSON(t, ts, "/v1/sweep", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%v)", status, doc)
			}
			if code := errCode(t, doc); code != tc.wantCode {
				t.Errorf("code = %s, want %s", code, tc.wantCode)
			}
		})
	}
}

func TestSweepDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := fmt.Sprintf(`{"source": %q, "timeoutMs": 100, "points": [{"maxCycles": 500000000}, {"maxCycles": 500000000}]}`, spinSource)
	status, doc := postJSON(t, ts, "/v1/sweep", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", status, doc)
	}
	if code := errCode(t, doc); code != CodeDeadlineExceeded {
		t.Errorf("code = %s, want %s", code, CodeDeadlineExceeded)
	}
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 3})
	status, doc := getJSON(t, ts, "/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	if doc["status"] != "ok" || doc["workers"].(float64) != 3 {
		t.Errorf("healthz = %v, want ok/3 workers", doc)
	}
	if s.Draining() {
		t.Errorf("fresh server reports draining")
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.StartDrain()

	status, doc := getJSON(t, ts, "/v1/healthz")
	if status != http.StatusServiceUnavailable || doc["status"] != "draining" {
		t.Errorf("healthz while draining = %d %v, want 503 draining", status, doc)
	}
	status, doc = postJSON(t, ts, "/v1/run", fmt.Sprintf(`{"source": %q}`, haltingSource))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("run while draining: status = %d, want 503 (%v)", status, doc)
	}
	if code := errCode(t, doc); code != CodeDraining {
		t.Errorf("code = %s, want %s", code, CodeDraining)
	}
	status, doc = postJSON(t, ts, "/v1/sweep", fmt.Sprintf(`{"source": %q, "points": [{}]}`, haltingSource))
	if status != http.StatusServiceUnavailable {
		t.Errorf("sweep while draining: status = %d, want 503 (%v)", status, doc)
	}
}

func TestQueueFull(t *testing.T) {
	// One worker, one backlog slot: two endless jobs fill the queue, the
	// third is rejected immediately with 503/queue_full.
	_, ts := newTestServer(t, Config{Workers: 1, Backlog: 1})
	body := fmt.Sprintf(`{"source": %q, "maxCycles": 500000000, "timeoutMs": 30000}`, spinSource)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run",
				bytes.NewReader([]byte(body)))
			if err != nil {
				t.Errorf("building request: %v", err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close() // cancelled below; outcome is irrelevant
			}
		}()
	}
	defer func() { cancel(); wg.Wait() }()

	// Wait for both jobs to be admitted (one running, one queued).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, doc := getJSON(t, ts, "/v1/healthz")
		if doc["admitted"].(float64) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never filled the queue: %v", doc)
		}
		time.Sleep(5 * time.Millisecond)
	}

	status, doc := postJSON(t, ts, "/v1/run", body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%v)", status, doc)
	}
	if code := errCode(t, doc); code != CodeQueueFull {
		t.Errorf("code = %s, want %s", code, CodeQueueFull)
	}
}

func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts, "/v1/run", fmt.Sprintf(`{"source": %q}`, haltingSource))
	postJSON(t, ts, "/v1/run", fmt.Sprintf(`{"source": %q}`, haltingSource))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		`rssd_requests_total{handler="run"} 2`,
		`rssd_job_duration_ms_count{kind="run"} 2`,
		`rssd_program_cache_hits_total 1`,
		`rssd_program_cache_misses_total 1`,
		`rssd_jobs_running 0`,
		`rssd_jobs_admitted 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestProgramCacheEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 2})
	srcs := []string{
		"li r1, 1\nhalt\n",
		"li r1, 2\nhalt\n",
		"li r1, 3\nhalt\n",
	}
	for _, src := range srcs {
		postJSON(t, ts, "/v1/assemble", marshal(t, AssembleRequest{Source: src}))
	}
	// The first source was evicted by the third; re-assembling it must
	// miss, while the third is still resident.
	if _, doc := postJSON(t, ts, "/v1/assemble", marshal(t, AssembleRequest{Source: srcs[0]})); doc["cached"].(bool) {
		t.Errorf("evicted program reported cached")
	}
	if _, doc := postJSON(t, ts, "/v1/assemble", marshal(t, AssembleRequest{Source: srcs[2]})); !doc["cached"].(bool) {
		t.Errorf("resident program reported uncached")
	}
}

func TestProgramCacheDisabled(t *testing.T) {
	c := newProgramCache(-1)
	c.put("halt\n", nil)
	if _, ok := c.get("halt\n"); ok || c.len() != 0 {
		t.Errorf("disabled cache stored an entry (len %d)", c.len())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatalf("GET /v1/run: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
}
