package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/client"
)

// haltingSource is a tiny program that retires a HALT quickly.
const haltingSource = `
	li r1, 10
	li r2, 32
	mul r3, r1, r2
	halt
`

// spinSource never halts; runs against it end only by budget or deadline.
const spinSource = "loop: j loop\n"

// newTestServer builds a server plus an httptest front end and a typed
// client pointed at it. The suites drive the server through the client
// wherever the test is about behavior; tests about the wire format
// itself (malformed bodies, raw envelopes) post raw JSON instead.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	// No retries by default: tests asserting 503s want the first answer.
	return s, ts, client.New(ts.URL, client.WithRetry(0, -1))
}

// postJSON sends body to path and returns the status plus decoded body.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("POST %s: decoding response: %v", path, err)
	}
	return resp.StatusCode, doc
}

// getJSON fetches path and returns the status plus decoded body.
func getJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("GET %s: decoding response: %v", path, err)
	}
	return resp.StatusCode, doc
}

// errCode digs the structured code out of an error envelope.
func errCode(t *testing.T, doc map[string]any) string {
	t.Helper()
	env, ok := doc["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", doc)
	}
	code, _ := env["code"].(string)
	return code
}

// apiError asserts err is a typed envelope and returns it.
func apiError(t *testing.T, err error) *api.Error {
	t.Helper()
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T) is not an *api.Error", err, err)
	}
	return apiErr
}

// report decodes a raw run report into a map for assertions.
func report(t *testing.T, raw json.RawMessage) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	return doc
}

func policy(t *testing.T, name string) repro.Policy {
	t.Helper()
	p, err := repro.ParsePolicy(name)
	if err != nil {
		t.Fatalf("parsing policy %q: %v", name, err)
	}
	return p
}

func TestAssemble(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()

	resp, err := c.Assemble(ctx, api.AssembleRequest{Source: haltingSource})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if resp.Instructions != 4 {
		t.Errorf("instructions = %d, want 4", resp.Instructions)
	}
	if len(resp.Words) != 4 {
		t.Errorf("len(words) = %d, want 4", len(resp.Words))
	}
	if !strings.Contains(resp.Disassembly, "halt") {
		t.Errorf("disassembly missing halt:\n%s", resp.Disassembly)
	}
	if resp.Cached {
		t.Errorf("first assembly reported cached")
	}

	// The identical source must come from the cache the second time.
	resp, err = c.Assemble(ctx, api.AssembleRequest{Source: haltingSource})
	if err != nil || !resp.Cached {
		t.Errorf("second assembly: err %v cached %v, want nil true", err, resp.Cached)
	}
}

func TestAssembleError(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	_, err := c.Assemble(context.Background(), api.AssembleRequest{Source: "li r1, 1\nbogus r2\nhalt\n"})
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%v)", apiErr.Status, apiErr)
	}
	if apiErr.Code != api.CodeAssembleError {
		t.Errorf("code = %v, want %s", apiErr.Code, api.CodeAssembleError)
	}
	if apiErr.Line != 2 {
		t.Errorf("line = %d, want 2", apiErr.Line)
	}
}

func TestRunHappyPath(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	resp, err := c.Run(context.Background(), api.RunRequest{
		Source:  haltingSource,
		RunSpec: api.RunSpec{Policy: policy(t, "steering")},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep := report(t, resp.Report)
	if rep["policy"] != "steering" {
		t.Errorf("report policy = %v, want steering", rep["policy"])
	}
	stats := rep["stats"].(map[string]any)
	if stats["Retired"].(float64) < 4 {
		t.Errorf("retired = %v, want >= 4", stats["Retired"])
	}
}

func TestRunFromWords(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	// Assemble first, then run the binary form.
	asm, err := c.Assemble(ctx, api.AssembleRequest{Source: haltingSource})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, err := c.Run(ctx, api.RunRequest{Words: asm.Words}); err != nil {
		t.Fatalf("run from words: %v", err)
	}
}

// faultySource loops long enough for a high-rate fault campaign to
// land upsets during the run.
const faultySource = `
	li r1, 200
loop:	addi r1, r1, -1
	mul r2, r1, r1
	bne r1, r0, loop
	halt
`

func TestRunWithFaults(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"source": %q, "policy": "steering", "params": {"FaultTransientRate": 0.002, "FaultPermanentRate": 0.0002, "FaultSeed": 11, "FaultScrubInterval": 64}}`, faultySource)
	status, doc := postJSON(t, ts, "/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	rep := doc["report"].(map[string]any)
	faults, ok := rep["faults"].(map[string]any)
	if !ok {
		t.Fatalf("report has no faults block: %v", rep)
	}
	if faults["scrubScans"].(float64) == 0 {
		t.Errorf("no scrub scans recorded in %v", faults)
	}
}

func TestRunCluster(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"source": %q, "policy": "steering", "params": {"Cores": 2, "ClusterMode": "split", "ClusterArbiter": "demand-weighted"}}`, faultySource)
	status, doc := postJSON(t, ts, "/v1/run", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	rep := doc["report"].(map[string]any)
	summary, ok := rep["cluster"].(map[string]any)
	if !ok {
		t.Fatalf("report has no cluster block: %v", rep)
	}
	if summary["cores"].(float64) != 2 || summary["mode"] != "split" || summary["arbiter"] != "demand-weighted" {
		t.Errorf("cluster summary = %v", summary)
	}
	if summary["aggregateIPC"].(float64) <= 0 {
		t.Errorf("aggregate IPC = %v, want > 0", summary["aggregateIPC"])
	}
	cores, ok := rep["cores"].([]any)
	if !ok || len(cores) != 2 {
		t.Fatalf("report cores = %v, want 2 scalar reports", rep["cores"])
	}
	for k, cr := range cores {
		stats := cr.(map[string]any)["stats"].(map[string]any)
		if stats["Retired"].(float64) == 0 {
			t.Errorf("core %d retired nothing", k)
		}
	}
}

func TestRunClusterBadMode(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"source": %q, "params": {"Cores": 2, "ClusterMode": "sideways"}}`, faultySource)
	status, doc := postJSON(t, ts, "/v1/run", body)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%v)", status, doc)
	}
}

func TestSweepWithFaultRates(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 2})
	body := fmt.Sprintf(`{"source": %q, "points": [
		{"policy": "steering"},
		{"policy": "steering", "params": {"FaultTransientRate": 0.002, "FaultSeed": 11, "FaultScrubInterval": 64}},
		{"policy": "steering", "params": {"FaultTransientRate": 0.01, "FaultSeed": 11, "FaultScrubInterval": 64}}
	]}`, faultySource)
	status, doc := postJSON(t, ts, "/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (%v)", status, doc)
	}
	points := doc["points"].([]any)
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	for i, raw := range points {
		p := raw.(map[string]any)
		if p["error"] != nil {
			t.Fatalf("point %d: unexpected error %v", i, p["error"])
		}
		rep := p["report"].(map[string]any)
		_, hasFaults := rep["faults"]
		if wantFaults := i > 0; hasFaults != wantFaults {
			t.Errorf("point %d: faults block present = %v, want %v", i, hasFaults, wantFaults)
		}
	}
}

func TestRunBadRequests(t *testing.T) {
	// Raw bodies on purpose: these pin the wire format (malformed JSON,
	// unknown fields) the typed client cannot produce.
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"malformed JSON", `{"source": `, api.CodeInvalidRequest},
		{"unknown field", `{"sauce": "halt"}`, api.CodeInvalidRequest},
		{"trailing data", fmt.Sprintf(`{"source": %q} junk`, haltingSource), api.CodeInvalidRequest},
		{"no program", `{}`, api.CodeInvalidRequest},
		{"source and words", fmt.Sprintf(`{"source": %q, "words": [1]}`, haltingSource), api.CodeInvalidRequest},
		{"unknown policy", fmt.Sprintf(`{"source": %q, "policy": "bogus"}`, haltingSource), api.CodeUnknownPolicy},
		{"negative timeout", fmt.Sprintf(`{"source": %q, "timeoutMs": -1}`, haltingSource), api.CodeInvalidRequest},
		{"negative cycles", fmt.Sprintf(`{"source": %q, "maxCycles": -1}`, haltingSource), api.CodeInvalidParams},
		{"bad params", fmt.Sprintf(`{"source": %q, "params": {"WindowSize": -3}}`, haltingSource), api.CodeInvalidParams},
		{"fault rate above 1", fmt.Sprintf(`{"source": %q, "params": {"FaultTransientRate": 1.5}}`, haltingSource), api.CodeInvalidParams},
		{"negative fault rate", fmt.Sprintf(`{"source": %q, "params": {"FaultPermanentRate": -0.1}}`, haltingSource), api.CodeInvalidParams},
		{"fault rates sum above 1", fmt.Sprintf(`{"source": %q, "params": {"FaultTransientRate": 0.6, "FaultPermanentRate": 0.6}}`, haltingSource), api.CodeInvalidParams},
		{"negative scrub interval", fmt.Sprintf(`{"source": %q, "params": {"FaultScrubInterval": -1}}`, haltingSource), api.CodeInvalidParams},
		{"fault rates without scrub interval", fmt.Sprintf(`{"source": %q, "params": {"FaultTransientRate": 0.002}}`, haltingSource), api.CodeInvalidParams},
		{"negative config bus width", fmt.Sprintf(`{"source": %q, "params": {"ConfigBusWidth": -2}}`, haltingSource), api.CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, doc := postJSON(t, ts, "/v1/run", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%v)", status, doc)
			}
			if code := errCode(t, doc); code != tc.wantCode {
				t.Errorf("code = %s, want %s", code, tc.wantCode)
			}
		})
	}
}

func TestEstimateHappyPath(t *testing.T) {
	_, ts, c := newTestServer(t, Config{})
	resp, err := c.Estimate(context.Background(), api.EstimateRequest{
		Source:  haltingSource,
		RunSpec: api.RunSpec{Policy: policy(t, "steering")},
	})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	if resp.Estimate.PredictedIPC <= 0 {
		t.Errorf("PredictedIPC = %v, want > 0", resp.Estimate.PredictedIPC)
	}
	if resp.Estimate.Instructions != 3 { // halt excluded
		t.Errorf("Instructions = %d, want 3", resp.Estimate.Instructions)
	}
	if resp.Estimate.Envelope == "" || resp.Estimate.ModelVersion == 0 || resp.Estimate.Bottleneck == "" {
		t.Errorf("incomplete estimate: %+v", resp.Estimate)
	}
	if resp.ElapsedUs < 0 {
		t.Errorf("ElapsedUs = %v, want >= 0", resp.ElapsedUs)
	}
	// Second request: same source comes from the program cache, and the
	// estimate metrics have landed.
	resp, err = c.Estimate(context.Background(), api.EstimateRequest{Source: haltingSource})
	if err != nil {
		t.Fatalf("estimate (cached): %v", err)
	}
	if !resp.Cached {
		t.Error("second estimate not served from the program cache")
	}
	body, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer body.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body.Body); err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"rssd_estimate_total", "rssd_estimate_solve_us"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestEstimateBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"no program", `{}`, api.CodeInvalidRequest},
		{"unknown policy", fmt.Sprintf(`{"source": %q, "policy": "bogus"}`, haltingSource), api.CodeUnknownPolicy},
		{"bad params", fmt.Sprintf(`{"source": %q, "params": {"WindowSize": -3}}`, haltingSource), api.CodeInvalidParams},
		{"fault rates without scrub interval", fmt.Sprintf(`{"source": %q, "params": {"FaultTransientRate": 0.002}}`, haltingSource), api.CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, doc := postJSON(t, ts, "/v1/estimate", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%v)", status, doc)
			}
			if code := errCode(t, doc); code != tc.wantCode {
				t.Errorf("code = %s, want %s", code, tc.wantCode)
			}
		})
	}
}

// TestEstimateNeedsNoWorkerSlot pins the admission contract: estimates
// pass backlog admission but never wait for a worker slot, so the fast
// path stays available while every worker is busy simulating.
func TestEstimateNeedsNoWorkerSlot(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 1})
	if err := s.pool.acquire(context.Background()); err != nil {
		t.Fatalf("occupying the only worker slot: %v", err)
	}
	defer s.pool.release()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Estimate(ctx, api.EstimateRequest{Source: haltingSource})
	if err != nil {
		t.Fatalf("estimate with all workers busy: %v", err)
	}
	if resp.Estimate.PredictedIPC <= 0 {
		t.Errorf("PredictedIPC = %v, want > 0", resp.Estimate.PredictedIPC)
	}
}

func TestRunPrefetchPolicy(t *testing.T) {
	_, ts, c := newTestServer(t, Config{})
	resp, err := c.Run(context.Background(), api.RunRequest{
		Source:  haltingSource,
		RunSpec: api.RunSpec{Policy: policy(t, "prefetch")},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep := report(t, resp.Report)
	if rep["policy"] != "prefetch" {
		t.Errorf("report policy = %v, want prefetch", rep["policy"])
	}
	if _, ok := rep["prefetch"].(map[string]any); !ok {
		t.Errorf("report has no prefetch block: %v", rep)
	}

	// The run's prefetch accounting aggregates into the service metrics.
	text := metricsText(t, ts.URL)
	for _, name := range prefetchCounterNames {
		if !strings.Contains(text, fmt.Sprintf("rssd_prefetch_total{counter=%q}", name)) {
			t.Errorf("metrics missing rssd_prefetch_total counter %q\n%s", name, text)
		}
	}
}

// TestUnknownPolicyEnvelopeListsAll pins the error envelope to the
// canonical policy table: the 400 for a bogus policy name must
// enumerate every parseable policy, so the API surface and
// rsssim -list-policies can never drift apart.
func TestUnknownPolicyEnvelopeListsAll(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, doc := postJSON(t, ts, "/v1/run",
		fmt.Sprintf(`{"source": %q, "policy": "bogus"}`, haltingSource))
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%v)", status, doc)
	}
	env := doc["error"].(map[string]any)
	msg, _ := env["message"].(string)
	for _, p := range repro.Policies() {
		if !strings.Contains(msg, p.String()) {
			t.Errorf("unknown-policy message does not list %q: %s", p, msg)
		}
	}
}

func TestRunBodyTooLarge(t *testing.T) {
	_, _, c := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := strings.Repeat("# padding line\n", 200) + haltingSource
	_, err := c.Run(context.Background(), api.RunRequest{Source: big})
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%v)", apiErr.Status, apiErr)
	}
	if apiErr.Code != api.CodeBodyTooLarge {
		t.Errorf("code = %s, want %s", apiErr.Code, api.CodeBodyTooLarge)
	}
}

func TestRunCycleLimit(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	_, err := c.Run(context.Background(), api.RunRequest{
		Source:  spinSource,
		RunSpec: api.RunSpec{MaxCycles: 1000},
	})
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (%v)", apiErr.Status, apiErr)
	}
	if apiErr.Code != api.CodeCycleLimit {
		t.Errorf("code = %s, want %s", apiErr.Code, api.CodeCycleLimit)
	}
}

func TestRunDeadline(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	// A program that never halts, a cycle budget far beyond what 100ms
	// can simulate, and a short request deadline: the deadline wins.
	_, err := c.Run(context.Background(), api.RunRequest{
		Source:    spinSource,
		TimeoutMs: 100,
		RunSpec:   api.RunSpec{MaxCycles: 500_000_000},
	})
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", apiErr.Status, apiErr)
	}
	if apiErr.Code != api.CodeDeadlineExceeded {
		t.Errorf("code = %s, want %s", apiErr.Code, api.CodeDeadlineExceeded)
	}
}

func TestSweep(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 4})
	policies := []string{"steering", "static-integer", "static-memory", "static-floating", "ffu-only", "full-reconfig", "oracle", "random", "demand"}
	req := api.SweepRequest{Source: haltingSource}
	for _, p := range policies {
		req.Points = append(req.Points, api.RunSpec{Policy: policy(t, p)})
	}
	resp, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(resp.Points) != len(policies) {
		t.Fatalf("got %d points, want %d", len(resp.Points), len(policies))
	}
	for i, p := range resp.Points {
		if p.Index != i {
			t.Errorf("point %d: index = %d", i, p.Index)
		}
		if p.Policy != policies[i] {
			t.Errorf("point %d: policy = %v, want %s", i, p.Policy, policies[i])
		}
		if p.Error != nil {
			t.Errorf("point %d: unexpected error %v", i, p.Error)
		}
		if len(p.Report) == 0 {
			t.Errorf("point %d: missing report", i)
		}
	}
}

func TestSweepConcurrent(t *testing.T) {
	// Several sweeps in flight at once over a 2-worker pool: results must
	// stay complete and ordered while jobs from different requests
	// interleave on the shared slots (the -race run is the real check).
	_, _, c := newTestServer(t, Config{Workers: 2, Backlog: 16})
	req := api.SweepRequest{
		Source: haltingSource,
		Points: []api.RunSpec{
			{Policy: policy(t, "steering")},
			{Policy: policy(t, "ffu-only")},
			{Policy: policy(t, "demand")},
		},
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Sweep(context.Background(), req)
			if err != nil {
				t.Errorf("sweep: %v", err)
				return
			}
			if n := len(resp.Points); n != 3 {
				t.Errorf("got %d points, want 3", n)
			}
		}()
	}
	wg.Wait()
}

func TestSweepPointErrorIsData(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	// One good point, one that exhausts its cycle budget: the sweep
	// succeeds and the failure rides in the point's error field.
	resp, err := c.Sweep(context.Background(), api.SweepRequest{
		Source: haltingSource,
		Points: []api.RunSpec{{}, {MaxCycles: 2}},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if e := resp.Points[0].Error; e != nil {
		t.Errorf("point 0: unexpected error %v", e)
	}
	if e := resp.Points[1].Error; e == nil || e.Code != api.CodeCycleLimit {
		t.Errorf("point 1: error = %v, want code %s", resp.Points[1].Error, api.CodeCycleLimit)
	}
}

func TestSweepBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxSweepPoints: 2})
	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"no points", fmt.Sprintf(`{"source": %q, "points": []}`, haltingSource), api.CodeInvalidRequest},
		{"too many points", fmt.Sprintf(`{"source": %q, "points": [{}, {}, {}]}`, haltingSource), api.CodeInvalidRequest},
		{"bad point params", fmt.Sprintf(`{"source": %q, "points": [{"maxCycles": -1}]}`, haltingSource), api.CodeInvalidParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, doc := postJSON(t, ts, "/v1/sweep", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%v)", status, doc)
			}
			if code := errCode(t, doc); code != tc.wantCode {
				t.Errorf("code = %s, want %s", code, tc.wantCode)
			}
		})
	}
}

func TestSweepDeadline(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 2})
	_, err := c.Sweep(context.Background(), api.SweepRequest{
		Source:    spinSource,
		TimeoutMs: 100,
		Points:    []api.RunSpec{{MaxCycles: 500_000_000}, {MaxCycles: 500_000_000}},
	})
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%v)", apiErr.Status, apiErr)
	}
	if apiErr.Code != api.CodeDeadlineExceeded {
		t.Errorf("code = %s, want %s", apiErr.Code, api.CodeDeadlineExceeded)
	}
}

func TestHealthz(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 3})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Status != "ok" || h.Workers != 3 {
		t.Errorf("healthz = %+v, want ok/3 workers", h)
	}
	if s.Draining() {
		t.Errorf("fresh server reports draining")
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	s, _, c := newTestServer(t, Config{})
	s.StartDrain()
	ctx := context.Background()

	if _, err := c.Health(ctx); err == nil {
		t.Errorf("healthz while draining returned no error")
	}
	_, err := c.Run(ctx, api.RunRequest{Source: haltingSource})
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("run while draining: status = %d, want 503 (%v)", apiErr.Status, apiErr)
	}
	if apiErr.Code != api.CodeDraining {
		t.Errorf("code = %s, want %s", apiErr.Code, api.CodeDraining)
	}
	_, err = c.Sweep(ctx, api.SweepRequest{Source: haltingSource, Points: []api.RunSpec{{}}})
	if apiErr := apiError(t, err); apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("sweep while draining: status = %d, want 503 (%v)", apiErr.Status, apiErr)
	}
	_, err = c.SubmitJob(ctx, api.JobRequest{Source: haltingSource, Points: []api.RunSpec{{}}})
	if apiErr := apiError(t, err); apiErr.Code != api.CodeDraining {
		t.Errorf("job submit while draining: code = %s, want %s", apiErr.Code, api.CodeDraining)
	}
}

// TestClientRetriesDraining pins the client's bounded 503 retry: a
// server that stops draining between attempts sees the retried request
// succeed without the caller noticing.
func TestClientRetriesDraining(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	s.StartDrain()
	c := client.New(ts.URL, client.WithRetry(5, time.Millisecond))
	go func() {
		// Un-drain shortly after the first rejection.
		time.Sleep(10 * time.Millisecond)
		s.draining.Store(false)
	}()
	if _, err := c.Run(context.Background(), api.RunRequest{Source: haltingSource}); err != nil {
		t.Fatalf("retried run failed: %v", err)
	}
}

func TestQueueFull(t *testing.T) {
	// One worker, one backlog slot: two endless jobs fill the queue, the
	// third is rejected immediately with 503/queue_full.
	_, _, c := newTestServer(t, Config{Workers: 1, Backlog: 1})
	req := api.RunRequest{
		Source:    spinSource,
		TimeoutMs: 30_000,
		RunSpec:   api.RunSpec{MaxCycles: 500_000_000},
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Run(ctx, req) //nolint:errcheck // cancelled below; outcome is irrelevant
		}()
	}
	defer func() { cancel(); wg.Wait() }()

	// Wait for both jobs to be admitted (one running, one queued).
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.Health(context.Background())
		if err != nil {
			t.Fatalf("health: %v", err)
		}
		if h.Admitted >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never filled the queue: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err := c.Run(context.Background(), req)
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%v)", apiErr.Status, apiErr)
	}
	if apiErr.Code != api.CodeQueueFull {
		t.Errorf("code = %s, want %s", apiErr.Code, api.CodeQueueFull)
	}
}

func TestMetrics(t *testing.T) {
	_, ts, c := newTestServer(t, Config{})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Run(ctx, api.RunRequest{Source: haltingSource}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		`rssd_requests_total{handler="run"} 2`,
		`rssd_job_duration_ms_count{kind="run"} 2`,
		`rssd_program_cache_hits_total 1`,
		`rssd_program_cache_misses_total 1`,
		`rssd_jobs_running 0`,
		`rssd_jobs_admitted 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestProgramCacheEviction(t *testing.T) {
	_, _, c := newTestServer(t, Config{CacheSize: 2})
	ctx := context.Background()
	srcs := []string{
		"li r1, 1\nhalt\n",
		"li r1, 2\nhalt\n",
		"li r1, 3\nhalt\n",
	}
	for _, src := range srcs {
		if _, err := c.Assemble(ctx, api.AssembleRequest{Source: src}); err != nil {
			t.Fatalf("assemble: %v", err)
		}
	}
	// The first source was evicted by the third; re-assembling it must
	// miss, while the third is still resident.
	if resp, err := c.Assemble(ctx, api.AssembleRequest{Source: srcs[0]}); err != nil || resp.Cached {
		t.Errorf("evicted program reported cached (err %v)", err)
	}
	if resp, err := c.Assemble(ctx, api.AssembleRequest{Source: srcs[2]}); err != nil || !resp.Cached {
		t.Errorf("resident program reported uncached (err %v)", err)
	}
}

func TestProgramCacheDisabled(t *testing.T) {
	c := newProgramCache(-1)
	c.put("halt\n", nil)
	if _, ok := c.get("halt\n"); ok || c.len() != 0 {
		t.Errorf("disabled cache stored an entry (len %d)", c.len())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatalf("GET /v1/run: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
}
