// Tests for the jobs surface of the server: submit/status/events/cancel
// over the typed client, the jobs metrics, and the crash-resume
// guarantee at the HTTP level — a server restarted over the same job
// directory completes an interrupted job with a byte-identical result
// set.
package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/client"
)

// busySource loops long enough per point (~at the default machine) that
// a multi-point job is reliably still in flight when a test interrupts
// it, but short enough that suites stay fast.
const busySource = `
	li r1, 60000
loop:	addi r1, r1, -1
	mul r2, r1, r1
	bne r1, r0, loop
	halt
`

// jobPoints builds an n-point grid varying the seed (the program is
// deterministic; distinct seeds keep the points distinguishable).
func jobPoints(n int) []api.RunSpec {
	pts := make([]api.RunSpec, n)
	for i := range pts {
		pts[i] = api.RunSpec{Seed: int64(i), MaxCycles: 2_000_000}
	}
	return pts
}

func TestJobSubmitAndWait(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	created, err := c.SubmitJob(ctx, api.JobRequest{
		Source: haltingSource,
		Points: jobPoints(4),
		Label:  "suite",
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if created.ID == "" || created.Total != 4 {
		t.Fatalf("created = %+v, want id and total 4", created)
	}

	status, err := c.WaitJob(ctx, created.ID, nil)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if status.State != api.JobDone || status.Done != 4 || status.Failed != 0 {
		t.Fatalf("status = %+v, want done 4/0 failed", status)
	}
	if status.Label != "suite" {
		t.Errorf("label = %q, want suite", status.Label)
	}
	for i, p := range status.Points {
		if p.Index != i || p.Worker != "local" || len(p.Report) == 0 {
			t.Errorf("point %d = %+v, want local worker with report", i, p)
		}
	}

	// The fabric's lifecycle landed on the metrics registry.
	text := metricsText(t, ts.URL)
	for _, want := range []string{
		`rssd_sweep_jobs_submitted_total 1`,
		`rssd_sweep_jobs_finished_total{state="done"} 1`,
		`rssd_job_points_total{outcome="done"} 4`,
		`rssd_sweep_jobs_active 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobBatchMatchesScalar pins the wide-machine routing invariant at
// the service level: a job run through lane batching returns
// byte-identical per-point reports to the same job run point by point.
func TestJobBatchMatchesScalar(t *testing.T) {
	ctx := context.Background()
	run := func(lanes int) []api.PointResult {
		_, _, c := newTestServer(t, Config{Workers: 2, BatchLanes: lanes})
		created, err := c.SubmitJob(ctx, api.JobRequest{
			Source: haltingSource,
			Points: jobPoints(5), // ragged: not a multiple of the lane width
		})
		if err != nil {
			t.Fatalf("submit (lanes=%d): %v", lanes, err)
		}
		status, err := c.WaitJob(ctx, created.ID, nil)
		if err != nil {
			t.Fatalf("wait (lanes=%d): %v", lanes, err)
		}
		if status.State != api.JobDone || status.Failed != 0 {
			t.Fatalf("status (lanes=%d) = %+v, want done with 0 failed", lanes, status)
		}
		return status.Points
	}
	scalar := run(1)
	batched := run(4)
	for i := range scalar {
		if !bytes.Equal(scalar[i].Report, batched[i].Report) {
			t.Errorf("point %d: batched report diverges from scalar:\n  scalar:  %s\n  batched: %s",
				i, scalar[i].Report, batched[i].Report)
		}
	}
}

// TestJobEventsBeforeFinish pins the streaming guarantee: with one
// worker slot and a deliberately slow final point, the events stream
// delivers earlier per-point results while the job is still running.
// Lane batching is off — batched points land together by design, which
// would let the job finish before the first event is read.
func TestJobEventsBeforeFinish(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, BatchLanes: 1})
	ctx := context.Background()

	points := jobPoints(2)
	points = append(points, api.RunSpec{Seed: 99, MaxCycles: 30_000_000}) // the slow tail
	created, err := c.SubmitJob(ctx, api.JobRequest{Source: busySource, Points: points})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	stream, err := c.StreamEvents(ctx, created.ID)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer stream.Close()

	// Read the first per-point result off the live stream, then ask for
	// status: the slow tail point guarantees the job has not finished.
	var first api.JobEvent
	for {
		ev, err := stream.Next()
		if err != nil {
			t.Fatalf("stream next: %v", err)
		}
		if ev.Type == api.EventPoint {
			first = ev
			break
		}
	}
	if first.Point == nil || len(first.Point.Report) == 0 {
		t.Fatalf("first point event carries no report: %+v", first)
	}
	status, err := c.Job(ctx, created.ID, false)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if status.State.Terminal() {
		t.Errorf("job already %s when the first event arrived; stream did not beat completion", status.State)
	}

	// Drain to the end: the stream must finish with a terminal state event.
	sawState := false
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream next: %v", err)
		}
		if ev.Type == api.EventState && ev.State.Terminal() {
			sawState = true
		}
	}
	if !sawState {
		t.Error("stream ended without a terminal state event")
	}
}

func TestJobCancel(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	created, err := c.SubmitJob(ctx, api.JobRequest{
		Source: spinSource,
		Points: []api.RunSpec{{MaxCycles: 500_000_000}, {MaxCycles: 500_000_000}},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	status, err := c.CancelJob(ctx, created.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if status.State != api.JobCancelled {
		t.Fatalf("state = %s, want cancelled", status.State)
	}
	// Idempotent: cancelling again answers the same terminal status.
	if again, err := c.CancelJob(ctx, created.ID); err != nil || again.State != api.JobCancelled {
		t.Errorf("second cancel = %+v, %v", again, err)
	}
	// The events stream of a cancelled job replays and closes.
	stream, err := c.StreamEvents(ctx, created.ID)
	if err != nil {
		t.Fatalf("events after cancel: %v", err)
	}
	defer stream.Close()
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream next: %v", err)
		}
		if ev.Type == api.EventState && ev.State != api.JobCancelled {
			t.Errorf("state event = %+v, want cancelled", ev)
		}
	}
}

func TestJobNotFound(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()
	for name, call := range map[string]func() error{
		"status": func() error { _, err := c.Job(ctx, "j-nope", false); return err },
		"cancel": func() error { _, err := c.CancelJob(ctx, "j-nope"); return err },
		"events": func() error { _, err := c.StreamEvents(ctx, "j-nope"); return err },
	} {
		apiErr := apiError(t, call())
		if apiErr.Status != http.StatusNotFound || apiErr.Code != api.CodeNotFound {
			t.Errorf("%s: got %d/%s, want 404/%s", name, apiErr.Status, apiErr.Code, api.CodeNotFound)
		}
	}
}

func TestJobSubmitValidation(t *testing.T) {
	_, _, c := newTestServer(t, Config{MaxJobPoints: 2})
	ctx := context.Background()
	cases := []struct {
		name     string
		req      api.JobRequest
		wantCode string
	}{
		{"no points", api.JobRequest{Source: haltingSource}, api.CodeInvalidRequest},
		{"too many points", api.JobRequest{Source: haltingSource, Points: jobPoints(3)}, api.CodeInvalidRequest},
		{"bad program", api.JobRequest{Source: "bogus r1\n", Points: jobPoints(1)}, api.CodeAssembleError},
		{"no program", api.JobRequest{Points: jobPoints(1)}, api.CodeInvalidRequest},
		{"negative point timeout", api.JobRequest{Source: haltingSource, Points: jobPoints(1), PointTimeoutMs: -1}, api.CodeInvalidRequest},
		{"bad point", api.JobRequest{Source: haltingSource, Points: []api.RunSpec{{MaxCycles: -1}}}, api.CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.SubmitJob(ctx, tc.req)
			apiErr := apiError(t, err)
			if apiErr.Code != tc.wantCode {
				t.Errorf("code = %s, want %s (%v)", apiErr.Code, tc.wantCode, apiErr)
			}
		})
	}
}

func TestJobListAndActiveCap(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, MaxActiveJobs: 1})
	ctx := context.Background()

	created, err := c.SubmitJob(ctx, api.JobRequest{
		Source: spinSource,
		Points: []api.RunSpec{{MaxCycles: 500_000_000}},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// The cap counts non-terminal jobs: a second submission is rejected
	// with 503 queue_full until the first finishes.
	_, err = c.SubmitJob(ctx, api.JobRequest{Source: haltingSource, Points: jobPoints(1)})
	apiErr := apiError(t, err)
	if apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != api.CodeQueueFull {
		t.Fatalf("over-cap submit = %d/%s, want 503/%s", apiErr.Status, apiErr.Code, api.CodeQueueFull)
	}

	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != created.ID {
		t.Fatalf("list = %+v, want exactly job %s", list.Jobs, created.ID)
	}
	if _, err := c.CancelJob(ctx, created.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	// Terminal now — the cap frees up.
	if _, err := c.SubmitJob(ctx, api.JobRequest{Source: haltingSource, Points: jobPoints(1)}); err != nil {
		t.Errorf("submit after cancel: %v", err)
	}
}

// TestJobCrashResumeByteIdentical is the tentpole acceptance test at
// the HTTP level: interrupt a server mid-job, bring a new server up on
// the same job directory, and the resumed job's full result set must be
// byte-identical to an uninterrupted run of the same grid.
func TestJobCrashResumeByteIdentical(t *testing.T) {
	spec := api.JobRequest{Source: busySource, Points: jobPoints(6), Label: "resume-me"}
	ctx := context.Background()

	// Baseline: the same grid, uninterrupted, on a volatile server.
	_, _, base := newTestServer(t, Config{Workers: 1})
	baseCreated, err := base.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatalf("baseline submit: %v", err)
	}
	baseline, err := base.WaitJob(ctx, baseCreated.ID, nil)
	if err != nil || baseline.State != api.JobDone {
		t.Fatalf("baseline: %+v, %v", baseline, err)
	}

	// Interrupted run: durable store, one worker; stop the server after
	// the first point lands.
	dir := t.TempDir()
	s1, err := New(Config{Workers: 1, JobDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := newHTTPServer(t, s1)
	c1 := client.New(ts1, client.WithRetry(0, -1))
	created, err := c1.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	stream, err := c1.StreamEvents(ctx, created.ID)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	for {
		ev, err := stream.Next()
		if err != nil {
			t.Fatalf("stream next: %v", err)
		}
		if ev.Type == api.EventPoint {
			break
		}
	}
	stream.Close()
	s1.Close() // the "crash": in-flight point dropped, store released

	// Restart over the same directory: New resumes incomplete jobs.
	s2, err := New(Config{Workers: 1, JobDir: dir})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	t.Cleanup(func() { s2.Close() })
	ts2 := newHTTPServer(t, s2)
	c2 := client.New(ts2, client.WithRetry(0, -1))
	resumed, err := c2.WaitJob(ctx, created.ID, nil)
	if err != nil {
		t.Fatalf("wait after restart: %v", err)
	}
	if resumed.State != api.JobDone || resumed.Done != len(spec.Points) {
		t.Fatalf("resumed job = %+v, want done %d points", resumed, len(spec.Points))
	}
	if resumed.Label != "resume-me" {
		t.Errorf("label lost across restart: %q", resumed.Label)
	}

	if len(resumed.Points) != len(baseline.Points) {
		t.Fatalf("resumed has %d results, baseline %d", len(resumed.Points), len(baseline.Points))
	}
	for i := range resumed.Points {
		got, want := resumed.Points[i], baseline.Points[i]
		if got.Index != want.Index {
			t.Fatalf("result order diverged at %d: %d vs %d", i, got.Index, want.Index)
		}
		if !bytes.Equal(got.Report, want.Report) {
			t.Errorf("point %d: resumed report differs from uninterrupted run\nresumed:  %s\nbaseline: %s",
				got.Index, got.Report, want.Report)
		}
		if got.Error != nil || want.Error != nil {
			t.Errorf("point %d: unexpected errors (resumed %v, baseline %v)", got.Index, got.Error, want.Error)
		}
	}
}

// TestJobSurvivesRestartWhenComplete checks a finished job is served
// (with results) by a later server over the same directory.
func TestJobDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1, err := New(Config{Workers: 1, JobDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c1 := client.New(newHTTPServer(t, s1), client.WithRetry(0, -1))
	created, err := c1.SubmitJob(ctx, api.JobRequest{Source: haltingSource, Points: jobPoints(2)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	finished, err := c1.WaitJob(ctx, created.ID, nil)
	if err != nil || finished.State != api.JobDone {
		t.Fatalf("first run: %+v, %v", finished, err)
	}
	s1.Close()

	s2, err := New(Config{Workers: 1, JobDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	t.Cleanup(func() { s2.Close() })
	c2 := client.New(newHTTPServer(t, s2), client.WithRetry(0, -1))
	reloaded, err := c2.Job(ctx, created.ID, true)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if reloaded.State != api.JobDone || len(reloaded.Points) != 2 {
		t.Fatalf("reloaded = %+v, want done with 2 results", reloaded)
	}
	for i := range reloaded.Points {
		if !bytes.Equal(reloaded.Points[i].Report, finished.Points[i].Report) {
			t.Errorf("point %d report changed across restart", i)
		}
	}
}

// TestSweepShimRecordsJobInStore pins the satellite rewiring: the
// legacy synchronous sweep now runs through the jobs fabric, so its
// grid shows up as a completed job of kind "sweep".
func TestSweepShimRecordsJobInStore(t *testing.T) {
	s, _, c := newTestServer(t, Config{Workers: 2})
	resp, err := c.Sweep(context.Background(), api.SweepRequest{
		Source: haltingSource,
		Points: []api.RunSpec{{}, {}},
	})
	if err != nil || len(resp.Points) != 2 {
		t.Fatalf("sweep: %v (%d points)", err, len(resp.Points))
	}
	jobs := s.Coordinator().Store().Jobs()
	if len(jobs) != 1 {
		t.Fatalf("store holds %d jobs after a sweep, want 1", len(jobs))
	}
	if jobs[0].Spec.Kind != "sweep" || jobs[0].State() != api.JobDone {
		t.Errorf("sweep job = kind %q state %s, want sweep/done", jobs[0].Spec.Kind, jobs[0].State())
	}
}

// newHTTPServer mounts a prebuilt Server on an httptest listener and
// returns its base URL; used by the restart tests that manage the
// Server lifecycle themselves.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
