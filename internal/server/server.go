// Package server is the rssd batch-simulation service: an HTTP/JSON API
// over the repro facade that assembles programs, runs single
// simulations, and fans parameter sweeps out — synchronously over a
// bounded worker pool, or asynchronously as durable jobs sharded across
// a worker fleet by the internal/job coordinator. The package owns
// everything between the socket and the simulator — request validation
// and size limits, the structured error envelope (internal/api),
// per-request deadlines wired into Machine.RunContext, the
// assembled-program LRU, service metrics, and the draining flag the
// graceful-shutdown path sets — while cmd/rssd adds only flags, signal
// handling, worker spawning and the http.Server lifecycle.
//
// Endpoints:
//
//	POST   /v1/assemble        source → encoded words + disassembly
//	POST   /v1/run             source or words + RunSpec → run report
//	POST   /v1/sweep           synchronous sweep (legacy shim over the jobs path)
//	POST   /v1/jobs            submit a sweep as a durable asynchronous job
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}       job status (?results=1 adds per-point results)
//	GET    /v1/jobs/{id}/events  chunked-JSONL per-point results as they land
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /v1/healthz         liveness + pool occupancy
//	GET    /metrics            Prometheus text exposition of service metrics
//	GET    /debug/flightrecorder   last-N request spans + deadline triggers
//	GET    /debug/pprof/       net/http/pprof (only with Config.EnablePprof)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/wide"
)

// Config sizes the service; zero fields take the listed defaults.
type Config struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// Backlog bounds jobs waiting for a worker beyond the running ones;
	// past it new jobs get 503 (default 4×Workers).
	Backlog int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request deadline when the request names
	// none (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines (default 2m).
	MaxTimeout time.Duration
	// DefaultMaxCycles is the cycle budget when a RunSpec names none
	// (default 50M).
	DefaultMaxCycles int
	// MaxCyclesCap clamps request cycle budgets (default 500M).
	MaxCyclesCap int
	// CacheSize is the assembled-program LRU capacity (default 64;
	// negative disables caching).
	CacheSize int
	// MaxSweepPoints caps the grid size of one synchronous sweep
	// (default 256).
	MaxSweepPoints int
	// MaxJobPoints caps the grid size of one asynchronous job
	// (default 4096).
	MaxJobPoints int
	// MaxActiveJobs caps concurrently non-terminal jobs; past it new
	// submissions get 503 (default 64).
	MaxActiveJobs int
	// JobDir is the durable job-store directory; empty keeps jobs in
	// memory only (working fabric, not restart-safe).
	JobDir string
	// WorkerURLs names remote rssd workers the coordinator shards job
	// points over. Empty runs points in-process through the worker
	// pool. /v1/run and /v1/assemble always execute locally.
	WorkerURLs []string
	// WorkerSlots is the per-remote-worker point concurrency
	// (default 4).
	WorkerSlots int
	// BatchLanes is the lane width of the in-process wide machine: how
	// many lane-compatible job points one executor slot advances in
	// lockstep as a single batch (default 8, capped at wide.MaxLanes;
	// 1 disables batching). Widths near the worker count keep sweeps
	// parallel across slots while each slot amortises scheduling over
	// its lanes. Batched points complete together, so the events stream
	// delivers their results in batch-sized bursts rather than one by
	// one — set 1 when per-point streaming latency matters more than
	// throughput.
	BatchLanes int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. The pprof
	// endpoints bypass the request-counting and latency middleware —
	// profiling traffic must not pollute service metrics.
	EnablePprof bool
	// SpanFlightSize bounds the service span flight-recorder ring
	// served by GET /debug/flightrecorder (default 4096).
	SpanFlightSize int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Backlog <= 0 {
		c.Backlog = 4 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DefaultMaxCycles <= 0 {
		c.DefaultMaxCycles = 50_000_000
	}
	if c.MaxCyclesCap <= 0 {
		c.MaxCyclesCap = 500_000_000
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 256
	}
	if c.MaxJobPoints <= 0 {
		c.MaxJobPoints = 4096
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 64
	}
	if c.WorkerSlots <= 0 {
		c.WorkerSlots = 4
	}
	if c.BatchLanes == 0 {
		c.BatchLanes = 8
	}
	if c.BatchLanes < 1 {
		c.BatchLanes = 1
	}
	if c.BatchLanes > wide.MaxLanes {
		c.BatchLanes = wide.MaxLanes
	}
	return c
}

// Server is one service instance. Create it with New and mount
// Handler() on an http.Server.
type Server struct {
	cfg      Config
	pool     *pool
	cache    *programCache
	mux      *http.ServeMux
	draining atomic.Bool
	coord    *job.Coordinator

	// Service metrics. The telemetry registry is single-goroutine by
	// design (it belongs to the simulator's hot path), so every access
	// here — updates from handler goroutines and Render on /metrics —
	// holds mmu.
	mmu           sync.Mutex
	registry      *telemetry.Registry
	requests      map[string]*telemetry.Counter   // by handler
	failures      map[string]*telemetry.Counter   // by handler
	rejected      map[string]*telemetry.Counter   // by reason
	jobs          map[string]*telemetry.Histogram // latency ms by kind
	queueWait     map[string]*telemetry.Histogram // admission-to-slot µs by kind
	handlerDur    map[string]*telemetry.Histogram // handler wall µs by handler
	gaugeRun      *telemetry.Gauge
	gaugeQueued   *telemetry.Gauge
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter
	steerHits     *telemetry.Counter
	steerMisses   *telemetry.Counter
	prefetch      map[string]*telemetry.Counter // by prefetch counter name
	jobsSubmitted *telemetry.Counter
	jobsFinished  map[string]*telemetry.Counter // by terminal state
	jobPoints     map[string]*telemetry.Counter // by outcome
	gaugeJobsAct  *telemetry.Gauge
	gaugeJobQueue *telemetry.Gauge
	estimates     map[string]*telemetry.Counter // by predicted bottleneck
	estimateUs    *telemetry.Histogram          // model solve µs

	// spans is the service flight recorder: request lifecycle spans
	// (queue-wait → execute → encode, one child per sweep/job point)
	// and deadline-exceeded triggers, served by GET /debug/flightrecorder.
	spans *span.ServiceRecorder
}

// prefetchCounterNames are the label values of rssd_prefetch_total —
// one per field of repro.PrefetchStats.
var prefetchCounterNames = []string{
	"spans_issued", "confirmed", "mispredicted", "cancelled",
	"wasted_spans", "phase_changes",
}

// handler and job-kind names used as metric label values.
var handlerNames = []string{
	"assemble", "run", "estimate", "sweep", "healthz", "metrics",
	"flightrecorder", "jobs", "jobs_list", "job", "job_events", "job_cancel",
}

// estimateBottleneckNames enumerates every bottleneck label the
// analytic model can emit, so the per-bottleneck estimate counters can
// be registered up front (the telemetry registry is fixed after New).
func estimateBottleneckNames() []string {
	names := []string{"empty", "dependencies", "frontend", "issue-width", "queueing", "reconfig"}
	for k := 0; k < arch.NumUnitTypes; k++ {
		u := arch.UnitType(k).String()
		names = append(names, "units:"+u, "capacity:"+u)
	}
	return names
}

// jobKindNames label the simulation-latency and queue-wait histograms.
var jobKindNames = []string{"run", "sweep_point", "job_point"}

// jobStateNames label rssd_jobs_finished_total.
var jobStateNames = []string{string(api.JobDone), string(api.JobCancelled)}

// pointOutcomeNames label rssd_job_points_total.
var pointOutcomeNames = []string{"done", "failed", "requeued"}

// New builds a server from the config: metrics, the bounded pool, the
// job store (opened from cfg.JobDir, resuming any incomplete jobs) and
// the coordinator over the configured worker set.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		pool:       newPool(cfg.Workers, cfg.Backlog),
		cache:      newProgramCache(cfg.CacheSize),
		registry:   telemetry.NewRegistry(),
		requests:   map[string]*telemetry.Counter{},
		failures:   map[string]*telemetry.Counter{},
		rejected:   map[string]*telemetry.Counter{},
		jobs:       map[string]*telemetry.Histogram{},
		queueWait:  map[string]*telemetry.Histogram{},
		handlerDur: map[string]*telemetry.Histogram{},
		spans:      span.NewService(cfg.SpanFlightSize),
	}
	for _, h := range handlerNames {
		s.requests[h] = s.registry.NewCounter("rssd_requests_total",
			"HTTP requests received, by handler.", telemetry.Label{Key: "handler", Value: h})
		s.failures[h] = s.registry.NewCounter("rssd_failures_total",
			"Requests answered with a non-2xx status, by handler.", telemetry.Label{Key: "handler", Value: h})
	}
	for _, reason := range []string{api.CodeQueueFull, api.CodeDraining} {
		s.rejected[reason] = s.registry.NewCounter("rssd_rejected_total",
			"Jobs rejected at admission, by reason.", telemetry.Label{Key: "reason", Value: reason})
	}
	bounds := []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
	// Queue waits and handler latencies are often sub-millisecond, so
	// those histograms bucket in microseconds.
	usBounds := []int64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
		50000, 100000, 250000, 500000, 1000000, 5000000, 30000000}
	for _, kind := range jobKindNames {
		s.jobs[kind] = s.registry.NewHistogram("rssd_job_duration_ms",
			"Simulation wall-clock latency in milliseconds, by job kind.", bounds,
			telemetry.Label{Key: "kind", Value: kind})
		s.queueWait[kind] = s.registry.NewHistogram("rssd_queue_wait_us",
			"Admission-to-worker-slot wait in microseconds, by job kind.", usBounds,
			telemetry.Label{Key: "kind", Value: kind})
	}
	for _, h := range handlerNames {
		s.handlerDur[h] = s.registry.NewHistogram("rssd_handler_duration_us",
			"Handler wall-clock latency in microseconds, by handler.", usBounds,
			telemetry.Label{Key: "handler", Value: h})
	}
	s.gaugeRun = s.registry.NewGauge("rssd_jobs_running",
		"Simulations currently holding a worker slot.")
	s.gaugeQueued = s.registry.NewGauge("rssd_jobs_admitted",
		"Jobs admitted and not yet finished (running plus waiting).")
	s.cacheHits = s.registry.NewCounter("rssd_program_cache_hits_total",
		"Assembly requests served from the program cache.")
	s.cacheMisses = s.registry.NewCounter("rssd_program_cache_misses_total",
		"Assembly requests that had to assemble from source.")
	s.steerHits = s.registry.NewCounter("rssd_steering_cache_hits_total",
		"Steering-cache hits aggregated over simulations run by this server.")
	s.steerMisses = s.registry.NewCounter("rssd_steering_cache_misses_total",
		"Steering-cache misses aggregated over simulations run by this server.")
	s.prefetch = map[string]*telemetry.Counter{}
	for _, name := range prefetchCounterNames {
		s.prefetch[name] = s.registry.NewCounter("rssd_prefetch_total",
			"Speculative-prefetch accounting aggregated over prefetch-policy simulations, by counter.",
			telemetry.Label{Key: "counter", Value: name})
	}
	s.estimates = map[string]*telemetry.Counter{}
	for _, b := range estimateBottleneckNames() {
		s.estimates[b] = s.registry.NewCounter("rssd_estimate_total",
			"Analytic estimates served, by the model's predicted bottleneck.",
			telemetry.Label{Key: "bottleneck", Value: b})
	}
	s.estimateUs = s.registry.NewHistogram("rssd_estimate_solve_us",
		"Analytic model solve time in microseconds (profile plus fixed point, excluding assembly).",
		usBounds)
	s.jobsSubmitted = s.registry.NewCounter("rssd_sweep_jobs_submitted_total",
		"Sweep jobs accepted by the coordinator (both surfaces: /v1/jobs and the /v1/sweep shim).")
	s.jobsFinished = map[string]*telemetry.Counter{}
	for _, state := range jobStateNames {
		s.jobsFinished[state] = s.registry.NewCounter("rssd_sweep_jobs_finished_total",
			"Sweep jobs reaching a terminal state, by state.", telemetry.Label{Key: "state", Value: state})
	}
	s.jobPoints = map[string]*telemetry.Counter{}
	for _, outcome := range pointOutcomeNames {
		s.jobPoints[outcome] = s.registry.NewCounter("rssd_job_points_total",
			"Grid points scheduled by the coordinator, by outcome (requeued counts re-dispatches after worker failures).",
			telemetry.Label{Key: "outcome", Value: outcome})
	}
	s.gaugeJobsAct = s.registry.NewGauge("rssd_sweep_jobs_active",
		"Jobs in a non-terminal state.")
	s.gaugeJobQueue = s.registry.NewGauge("rssd_job_queue_depth",
		"Grid points waiting for an executor slot.")

	// The sweep fabric: the durable store plus the coordinator over the
	// configured worker set. No worker URLs means points execute
	// in-process through the same bounded pool /v1/run uses.
	store, err := job.Open(cfg.JobDir)
	if err != nil {
		return nil, err
	}
	var execs []job.Executor
	if len(cfg.WorkerURLs) > 0 {
		for i, u := range cfg.WorkerURLs {
			execs = append(execs, job.NewHTTPExecutor(fmt.Sprintf("worker-%d", i+1), u, cfg.WorkerSlots))
		}
	} else {
		execs = append(execs, &localExecutor{s: s})
	}
	s.coord = job.NewCoordinator(store, execs, job.Config{Observer: &coordObserver{s: s}})
	s.coord.Resume()

	s.mux = http.NewServeMux()
	// timed wraps each service handler with its per-endpoint latency
	// histogram; the handlers count their own requests (so rejection
	// reasons stay close to the rejection logic).
	timed := func(pattern, name string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			s.observeHandler(name, time.Since(start))
		})
	}
	timed("POST /v1/assemble", "assemble", s.handleAssemble)
	timed("POST /v1/run", "run", s.handleRun)
	timed("POST /v1/estimate", "estimate", s.handleEstimate)
	timed("POST /v1/sweep", "sweep", s.handleSweep)
	timed("POST /v1/jobs", "jobs", s.handleJobSubmit)
	timed("GET /v1/jobs", "jobs_list", s.handleJobList)
	timed("GET /v1/jobs/{id}", "job", s.handleJobGet)
	timed("GET /v1/jobs/{id}/events", "job_events", s.handleJobEvents)
	timed("DELETE /v1/jobs/{id}", "job_cancel", s.handleJobCancel)
	timed("GET /v1/healthz", "healthz", s.handleHealthz)
	timed("GET /metrics", "metrics", s.handleMetrics)
	timed("GET /debug/flightrecorder", "flightrecorder", s.handleFlightRecorder)
	if cfg.EnablePprof {
		// Deliberately mounted raw: profiling traffic bypasses the
		// request-counting and latency instrumentation above.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Spans exposes the service span flight recorder, for the drain path
// in cmd/rssd to dump before exit.
func (s *Server) Spans() *span.ServiceRecorder { return s.spans }

// Coordinator exposes the sweep-fabric coordinator (cmd/rssd logs
// resume counts; tests drive crash-resume through it).
func (s *Server) Coordinator() *job.Coordinator { return s.coord }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain flips the server into draining mode: job endpoints answer
// 503 from now on while in-flight requests finish undisturbed. Call it
// right before http.Server.Shutdown, which handles the actual waiting.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the sweep fabric: the coordinator cancels in-flight
// points (they stay pending in the store for the next boot's resume)
// and the store releases its file handles. Call it after the HTTP
// server has shut down.
func (s *Server) Close() error {
	s.coord.Close()
	return s.coord.Store().Close()
}

// --- metric update helpers (all take mmu) ---

func (s *Server) countRequest(handler string) {
	s.mmu.Lock()
	s.requests[handler].Inc()
	s.mmu.Unlock()
}

func (s *Server) countFailure(handler string) {
	s.mmu.Lock()
	s.failures[handler].Inc()
	s.mmu.Unlock()
}

func (s *Server) countRejected(reason string) {
	s.mmu.Lock()
	if c, ok := s.rejected[reason]; ok {
		c.Inc()
	}
	s.mmu.Unlock()
}

func (s *Server) observeJob(kind string, elapsed time.Duration) {
	s.mmu.Lock()
	s.jobs[kind].Observe(elapsed.Milliseconds())
	s.mmu.Unlock()
}

func (s *Server) observeQueueWait(kind string, elapsed time.Duration) {
	s.mmu.Lock()
	s.queueWait[kind].Observe(elapsed.Microseconds())
	s.mmu.Unlock()
}

func (s *Server) observeHandler(name string, elapsed time.Duration) {
	s.mmu.Lock()
	s.handlerDur[name].Observe(elapsed.Microseconds())
	s.mmu.Unlock()
}

func (s *Server) countCache(hit bool) {
	s.mmu.Lock()
	if hit {
		s.cacheHits.Inc()
	} else {
		s.cacheMisses.Inc()
	}
	s.mmu.Unlock()
}

// --- request plumbing ---

// decode reads a size-limited JSON body into v. Unknown fields and
// trailing data are errors, so typos in request schemas surface as 400s
// instead of silently selecting defaults.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxBytes *http.MaxBytesError
		if errors.As(err, &maxBytes) || errors.Is(err, repro.ErrUnknownPolicy) {
			return err
		}
		return api.InvalidRequestf("decoding body: %v", err)
	}
	if dec.More() {
		return api.InvalidRequestf("trailing data after JSON body")
	}
	return nil
}

// writeJSON writes a 2xx JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing left to tell the client
}

// fail classifies err, counts it, and writes the error envelope.
func (s *Server) fail(w http.ResponseWriter, handler string, err error) {
	status, apiErr := api.Classify(err)
	s.countFailure(handler)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(api.Envelope{Error: apiErr}) //nolint:errcheck
}

// timeout resolves a request's deadline from its TimeoutMs field.
func (s *Server) timeout(ms int) (time.Duration, error) {
	if ms < 0 {
		return 0, api.InvalidRequestf("timeoutMs must be non-negative, got %d", ms)
	}
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// loadedProgram is a program ready to run: an assembled unit (source
// path, shared via the cache) or a bare program (binary words path).
type loadedProgram struct {
	unit   *repro.Unit
	prog   repro.Program
	cached bool
}

// newMachine builds a fresh machine for one job. Units and programs are
// read-only at run time, so concurrent jobs share them safely — each
// machine gets its own memory image.
func (lp loadedProgram) newMachine(opt repro.Options) *repro.Machine {
	if lp.unit != nil {
		return repro.NewMachineFromUnit(lp.unit, opt)
	}
	return repro.NewMachine(lp.prog, opt)
}

// load resolves the request's program: source is assembled through the
// cache, words are decoded directly (already cheap and canonical).
func (s *Server) load(source string, words []uint32) (loadedProgram, error) {
	switch {
	case source != "" && len(words) > 0:
		return loadedProgram{}, api.InvalidRequestf("source and words are mutually exclusive")
	case source != "":
		if unit, ok := s.cache.get(source); ok {
			s.countCache(true)
			return loadedProgram{unit: unit, cached: true}, nil
		}
		unit, err := repro.AssembleUnit(source)
		if err != nil {
			return loadedProgram{}, err
		}
		s.countCache(false)
		s.cache.put(source, unit)
		return loadedProgram{unit: unit}, nil
	case len(words) > 0:
		prog, err := repro.DecodeProgram(words)
		if err != nil {
			return loadedProgram{}, api.InvalidRequestf("decoding words: %v", err)
		}
		return loadedProgram{prog: prog}, nil
	default:
		return loadedProgram{}, api.InvalidRequestf("one of source or words is required")
	}
}

// resolveSpec validates a RunSpec and fills budget defaults in place.
func (s *Server) resolveSpec(spec *api.RunSpec) error {
	if !spec.Policy.Valid() {
		return fmt.Errorf("policy %d out of range: %w", int(spec.Policy), repro.ErrUnknownPolicy)
	}
	if err := spec.Params.Validate(); err != nil {
		return err
	}
	if spec.MinResidency < 0 {
		return fmt.Errorf("minResidency must be non-negative, got %d: %w",
			spec.MinResidency, repro.ErrInvalidParams)
	}
	switch {
	case spec.MaxCycles < 0:
		return fmt.Errorf("maxCycles must be non-negative, got %d: %w",
			spec.MaxCycles, repro.ErrInvalidParams)
	case spec.MaxCycles == 0:
		spec.MaxCycles = s.cfg.DefaultMaxCycles
	case spec.MaxCycles > s.cfg.MaxCyclesCap:
		spec.MaxCycles = s.cfg.MaxCyclesCap
	}
	return nil
}

// simulate runs one job to completion under ctx and renders its report.
// The caller must already hold a worker slot. req and point feed the
// worker-execution span of the service flight recorder (point is -1
// for non-sweep jobs).
func (s *Server) simulate(ctx context.Context, lp loadedProgram, spec api.RunSpec, kind string, req uint64, point int) (json.RawMessage, float64, error) {
	if spec.Params.Cores > 1 {
		return s.simulateCluster(ctx, lp, spec, kind, req, point)
	}
	m := lp.newMachine(repro.Options{
		Params:       spec.Params,
		Policy:       spec.Policy,
		Seed:         spec.Seed,
		MinResidency: spec.MinResidency,
	})
	start := time.Now()
	_, err := m.RunContext(ctx, spec.MaxCycles)
	elapsed := time.Since(start)
	s.observeJob(kind, elapsed)
	name := "execute"
	if point >= 0 {
		name = "point"
	}
	s.spans.Record(req, name, kind, point, start, start.Add(elapsed))
	if errors.Is(err, context.DeadlineExceeded) {
		// The service-side flight-recorder anomaly trigger.
		s.spans.TriggerDeadline(req, kind, point, start, start.Add(elapsed))
	}
	s.accountMachine(m)
	elapsedMs := float64(elapsed) / float64(time.Millisecond)
	if err != nil {
		return nil, elapsedMs, err
	}
	report, err := m.ReportJSON()
	if err != nil {
		return nil, elapsedMs, fmt.Errorf("rendering report: %w", err)
	}
	return report, elapsedMs, nil
}

// simulateCluster runs one multi-core cluster job (spec.Params.Cores >
// 1): every core executes the same program against the shared
// reconfigurable fabric, and the report is the api.ClusterReport
// document — cluster aggregates plus one scalar report per core.
func (s *Server) simulateCluster(ctx context.Context, lp loadedProgram, spec api.RunSpec, kind string, req uint64, point int) (json.RawMessage, float64, error) {
	prog := lp.prog
	if lp.unit != nil {
		prog = lp.unit.Program
	}
	c := cluster.New(prog, repro.Options{
		Params:       spec.Params,
		Policy:       spec.Policy,
		Seed:         spec.Seed,
		MinResidency: spec.MinResidency,
	})
	if lp.unit != nil {
		for k := 0; k < c.Cores(); k++ {
			lp.unit.Apply(c.Core(k).Processor().Memory())
		}
	}
	start := time.Now()
	stats, err := c.RunContext(ctx, spec.MaxCycles)
	elapsed := time.Since(start)
	s.observeJob(kind, elapsed)
	name := "execute"
	if point >= 0 {
		name = "point"
	}
	s.spans.Record(req, name, kind, point, start, start.Add(elapsed))
	if errors.Is(err, context.DeadlineExceeded) {
		s.spans.TriggerDeadline(req, kind, point, start, start.Add(elapsed))
	}
	for k := 0; k < c.Cores(); k++ {
		s.accountMachine(c.Core(k))
	}
	elapsedMs := float64(elapsed) / float64(time.Millisecond)
	if err != nil {
		return nil, elapsedMs, err
	}
	rep := api.ClusterReport{
		Cluster: api.ClusterSummary{
			Cores:        c.Cores(),
			Mode:         stats.Mode,
			Arbiter:      stats.Arbiter,
			ModeSwitches: stats.ModeSwitches,
			Cycles:       stats.Cycles,
			AggregateIPC: stats.AggregateIPC(),
			Fairness:     stats.Fairness(),
		},
	}
	for k := 0; k < c.Cores(); k++ {
		coreReport, rerr := c.Core(k).ReportJSON()
		if rerr != nil {
			return nil, elapsedMs, fmt.Errorf("rendering core %d report: %w", k, rerr)
		}
		rep.Cores = append(rep.Cores, coreReport)
	}
	report, err := json.Marshal(rep)
	if err != nil {
		return nil, elapsedMs, fmt.Errorf("rendering cluster report: %w", err)
	}
	return report, elapsedMs, nil
}

// accountMachine lands one finished machine's steering-cache and
// prefetch counters on the service metrics — shared by the scalar
// simulate path and the wide-machine batch executor's per-lane demux.
func (s *Server) accountMachine(m *repro.Machine) {
	if hits, misses, ok := m.SteeringCacheStats(); ok {
		s.mmu.Lock()
		s.steerHits.Add(uint64(hits))
		s.steerMisses.Add(uint64(misses))
		s.mmu.Unlock()
	}
	if ps, ok := m.PrefetchStats(); ok {
		s.mmu.Lock()
		s.prefetch["spans_issued"].Add(uint64(ps.Issued))
		s.prefetch["confirmed"].Add(uint64(ps.Confirmed))
		s.prefetch["mispredicted"].Add(uint64(ps.Mispredicted))
		s.prefetch["cancelled"].Add(uint64(ps.Cancelled))
		s.prefetch["wasted_spans"].Add(uint64(ps.WastedSpans))
		s.prefetch["phase_changes"].Add(uint64(ps.PhaseChanges))
		s.mmu.Unlock()
	}
}

// admitJob performs queue admission for a synchronous job endpoint:
// draining check first, then a non-blocking backlog reservation. The
// returned release func is non-nil exactly when err is nil.
func (s *Server) admitJob() (func(), error) {
	if s.draining.Load() {
		s.countRejected(api.CodeDraining)
		return nil, api.ErrDraining
	}
	if !s.pool.admit() {
		s.countRejected(api.CodeQueueFull)
		return nil, api.ErrQueueFull
	}
	return s.pool.leave, nil
}

// --- handlers ---

func (s *Server) handleAssemble(w http.ResponseWriter, r *http.Request) {
	s.countRequest("assemble")
	var req api.AssembleRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, "assemble", err)
		return
	}
	if req.Source == "" {
		s.fail(w, "assemble", api.InvalidRequestf("source is required"))
		return
	}
	lp, err := s.load(req.Source, nil)
	if err != nil {
		s.fail(w, "assemble", err)
		return
	}
	words, err := repro.EncodeProgram(lp.unit.Program)
	if err != nil {
		s.fail(w, "assemble", fmt.Errorf("encoding program: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, api.AssembleResponse{
		Instructions: len(lp.unit.Program),
		Words:        words,
		Disassembly:  repro.Disassemble(lp.unit.Program),
		Cached:       lp.cached,
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.countRequest("run")
	var req api.RunRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, "run", err)
		return
	}
	d, err := s.timeout(req.TimeoutMs)
	if err != nil {
		s.fail(w, "run", err)
		return
	}
	lp, err := s.load(req.Source, req.Words)
	if err != nil {
		s.fail(w, "run", err)
		return
	}
	spec := req.RunSpec
	if err := s.resolveSpec(&spec); err != nil {
		s.fail(w, "run", err)
		return
	}
	leave, err := s.admitJob()
	if err != nil {
		s.fail(w, "run", err)
		return
	}
	defer leave()

	reqID := s.spans.NextRequest()
	admitted := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	if err := s.pool.acquire(ctx); err != nil {
		s.fail(w, "run", err)
		return
	}
	acquired := time.Now()
	s.observeQueueWait("run", acquired.Sub(admitted))
	s.spans.Record(reqID, "queue-wait", "run", -1, admitted, acquired)
	report, elapsedMs, err := func() (json.RawMessage, float64, error) {
		defer s.pool.release()
		return s.simulate(ctx, lp, spec, "run", reqID, -1)
	}()
	if err != nil {
		s.fail(w, "run", err)
		return
	}
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, api.RunResponse{Report: report, ElapsedMs: elapsedMs, Cached: lp.cached})
	s.spans.Record(reqID, "encode", "run", -1, encodeStart, time.Now())
}

// handleEstimate answers POST /v1/estimate from the analytic queueing
// model instead of the simulator. A solve costs microseconds, so the
// handler passes admission control (draining and backlog checks apply
// as everywhere) but never takes a worker slot — estimates stay cheap
// and available while every worker is busy simulating.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.countRequest("estimate")
	var req api.EstimateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, "estimate", err)
		return
	}
	lp, err := s.load(req.Source, req.Words)
	if err != nil {
		s.fail(w, "estimate", err)
		return
	}
	spec := req.RunSpec
	if err := s.resolveSpec(&spec); err != nil {
		s.fail(w, "estimate", err)
		return
	}
	leave, err := s.admitJob()
	if err != nil {
		s.fail(w, "estimate", err)
		return
	}
	defer leave()

	prog := lp.prog
	if lp.unit != nil {
		prog = lp.unit.Program
	}
	start := time.Now()
	est, err := repro.EstimateIPC(prog, repro.Options{Params: spec.Params, Policy: spec.Policy})
	solve := time.Since(start)
	if err != nil {
		s.fail(w, "estimate", err)
		return
	}
	s.countEstimate(est.Bottleneck, solve)
	writeJSON(w, http.StatusOK, api.EstimateResponse{
		Estimate:  est,
		ElapsedUs: float64(solve) / float64(time.Microsecond),
		Cached:    lp.cached,
	})
}

// countEstimate lands one served estimate on the metrics: the
// per-bottleneck counter and the solve-time histogram.
func (s *Server) countEstimate(bottleneck string, solve time.Duration) {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	if c, ok := s.estimates[bottleneck]; ok {
		c.Add(1)
	}
	s.estimateUs.Observe(solve.Microseconds())
}

// handleSweep is the legacy synchronous sweep, reimplemented as a thin
// create-job-and-wait wrapper over the jobs path: the grid becomes a
// coordinator job (kind "sweep"), the handler blocks on its events
// until completion, and the response shape is unchanged — point
// failures are data, a sweep-wide deadline or disconnect cancels the
// job and fails the request, exactly as before.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.countRequest("sweep")
	var req api.SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, "sweep", err)
		return
	}
	d, err := s.timeout(req.TimeoutMs)
	if err != nil {
		s.fail(w, "sweep", err)
		return
	}
	if len(req.Points) == 0 {
		s.fail(w, "sweep", api.InvalidRequestf("points must not be empty"))
		return
	}
	if len(req.Points) > s.cfg.MaxSweepPoints {
		s.fail(w, "sweep", api.InvalidRequestf("%d points exceed the sweep cap of %d",
			len(req.Points), s.cfg.MaxSweepPoints))
		return
	}
	lp, err := s.load(req.Source, req.Words)
	if err != nil {
		s.fail(w, "sweep", err)
		return
	}
	specs := make([]api.RunSpec, len(req.Points))
	for i := range req.Points {
		specs[i] = req.Points[i]
		if err := s.resolveSpec(&specs[i]); err != nil {
			s.fail(w, "sweep", fmt.Errorf("point %d: %w", i, err))
			return
		}
	}
	leave, err := s.admitJob()
	if err != nil {
		s.fail(w, "sweep", err)
		return
	}
	defer leave()

	reqID := s.spans.NextRequest()
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	start := time.Now()
	j, err := s.coord.Submit(job.Spec{
		Label:   "sweep",
		Kind:    "sweep",
		Program: api.Program{Source: req.Source, Words: req.Words},
		Points:  specs,
	}, reqID)
	if err != nil {
		s.fail(w, "sweep", err)
		return
	}
	runErr := s.waitJob(ctx, j)
	// The request-level sweep span covers the whole grid; its per-point
	// children carry their own queue-wait and execution stages.
	s.spans.Record(reqID, "sweep", "sweep", -1, start, time.Now())
	// A sweep-wide context error makes the whole response an error: a
	// sweep that hit its deadline or lost its client has incomplete
	// results, so partial reports are not served as if they were the
	// full grid. The job is cancelled — its completed points stay in
	// the store, the rest never run.
	if runErr != nil {
		s.coord.Cancel(j.ID) //nolint:errcheck // the job is known to exist
		if errors.Is(runErr, context.DeadlineExceeded) {
			s.spans.TriggerDeadline(reqID, "sweep", -1, start, time.Now())
		}
		s.fail(w, "sweep", runErr)
		return
	}
	points := make([]api.SweepPointResult, 0, len(specs))
	for _, res := range j.Results() {
		points = append(points, api.SweepPointResult{
			Index:  res.Index,
			Policy: res.Policy,
			Report: res.Report,
			Error:  res.Error,
		})
	}
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, api.SweepResponse{
		Points:    points,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		Cached:    lp.cached,
	})
	s.spans.Record(reqID, "encode", "sweep", -1, encodeStart, time.Now())
}

// waitJob blocks until j reaches a terminal state or ctx ends.
func (s *Server) waitJob(ctx context.Context, j *job.Job) error {
	_, ch := j.Subscribe()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return nil
			}
			if ev.Type == api.EventState && ev.State.Terminal() {
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.countRequest("healthz")
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
		s.countFailure("healthz")
	}
	writeJSON(w, code, api.HealthResponse{
		Status:   status,
		Workers:  s.pool.workers(),
		Running:  s.pool.running(),
		Admitted: s.pool.admitted(),
	})
}

// handleFlightRecorder serves the service-span flight ring as JSON: the
// last N request lifecycle spans (queue-wait, execute, encode, sweep
// points) plus deadline-trigger counters. It reads a snapshot under the
// recorder's own lock, so it is safe to hit while requests are in flight.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	s.countRequest("flightrecorder")
	w.Header().Set("Content-Type", "application/json")
	s.spans.WriteJSON(w) //nolint:errcheck // client went away; nothing to do
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.countRequest("metrics")
	s.mmu.Lock()
	defer s.mmu.Unlock()
	s.gaugeRun.Set(int64(s.pool.running()))
	s.gaugeQueued.Set(int64(s.pool.admitted()))
	s.gaugeJobsAct.Set(int64(s.coord.Active()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry.Render(w) //nolint:errcheck // client went away; nothing to do
}
