// pool.go bounds the server's simulation concurrency with two nested
// semaphores: a queue semaphore capping how many jobs may be admitted at
// once (running plus waiting — beyond it requests are rejected with 503
// rather than piling up), and a slot semaphore capping how many admitted
// jobs actually simulate concurrently. /v1/run holds one admission token
// and one slot per request; /v1/sweep holds one admission token for the
// whole grid while each point competes for a slot, so a wide sweep never
// exceeds the worker budget and never deadlocks (the sweep itself owns
// no slot while its points wait).
package server

import "context"

// pool is the bounded admission queue plus worker slots.
type pool struct {
	slots chan struct{} // one token per running simulation
	queue chan struct{} // one token per admitted (running or waiting) job
}

// newPool sizes the pool: workers concurrent simulations, and up to
// workers+backlog admitted jobs in total.
func newPool(workers, backlog int) *pool {
	return &pool{
		slots: make(chan struct{}, workers),
		queue: make(chan struct{}, workers+backlog),
	}
}

// admit reserves an admission token without blocking; false means the
// backlog is full and the request should be rejected with 503.
func (p *pool) admit() bool {
	select {
	case p.queue <- struct{}{}:
		return true
	default:
		return false
	}
}

// leave returns an admission token.
func (p *pool) leave() { <-p.queue }

// acquire blocks until a worker slot frees or the context ends.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot.
func (p *pool) release() { <-p.slots }

// running returns the number of occupied worker slots.
func (p *pool) running() int { return len(p.slots) }

// admitted returns the number of admitted (running or waiting) jobs.
func (p *pool) admitted() int { return len(p.queue) }

// workers returns the worker-slot capacity.
func (p *pool) workers() int { return cap(p.slots) }
