package queue

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/workload"
)

func synth(t *testing.T, phases []workload.Phase, seed int64) isa.Program {
	t.Helper()
	return workload.Synthesize(phases, workload.SynthParams{Seed: seed})
}

func estimateIPC(t *testing.T, pol cpu.Policy, params cpu.Params, basis *[3]config.Configuration, prog isa.Program) Estimate {
	t.Helper()
	m, err := New(pol, params, basis)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	est, err := m.Estimate(prog)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	return est
}

func TestNewRejectsInvalidParams(t *testing.T) {
	if _, err := New(cpu.PolicySteering, cpu.Params{WindowSize: -1}, nil); err == nil {
		t.Fatal("negative WindowSize accepted")
	}
	if _, err := New(cpu.PolicySteering, cpu.Params{FaultTransientRate: 0.01}, nil); err == nil {
		t.Fatal("fault rate without scrub interval accepted")
	}
	if _, err := New(cpu.Policy(99), cpu.Params{}, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestEstimateBasics(t *testing.T) {
	prog := synth(t, []workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 300},
		{Mix: workload.MixFPHeavy, Instructions: 300},
	}, 7)
	est := estimateIPC(t, cpu.PolicySteering, cpu.DefaultParams(), nil, prog)
	if est.PredictedIPC <= 0 || est.PredictedIPC > 4 {
		t.Fatalf("PredictedIPC = %v, want in (0, 4]", est.PredictedIPC)
	}
	if est.Instructions != 607 { // 7 preamble + 600 body, HALT excluded
		t.Errorf("Instructions = %d, want 607", est.Instructions)
	}
	if est.Segments == 0 || est.Bottleneck == "" || est.ModelVersion != ModelVersion {
		t.Errorf("incomplete estimate: %+v", est)
	}
	if len(est.Classes) == 0 {
		t.Error("no per-class estimates")
	}
	for _, c := range est.Classes {
		if c.Utilization < 0 || c.Utilization > 1 {
			t.Errorf("%s utilization %v out of [0,1]", c.Unit, c.Utilization)
		}
		if c.QueueDelay < 0 {
			t.Errorf("%s negative queue delay %v", c.Unit, c.QueueDelay)
		}
	}
}

func TestEstimateEmptyProgram(t *testing.T) {
	est := estimateIPC(t, cpu.PolicySteering, cpu.Params{}, nil, isa.Program{isa.New(isa.HALT, 0, 0, 0, 0)})
	if est.PredictedIPC != 0 || est.Segments != 0 {
		t.Fatalf("empty program: %+v", est)
	}
}

// TestMonotoneSlots checks the property the simulator has by
// construction: adding units of a demanded class never lowers predicted
// IPC. Capacity is grown through a basis whose three entries are
// identical, so policy selection cannot mask the change.
func TestMonotoneSlots(t *testing.T) {
	progs := map[string]isa.Program{
		"int":   synth(t, []workload.Phase{{Mix: workload.MixIntHeavy, Instructions: 400}}, 3),
		"mixed": synth(t, []workload.Phase{{Mix: workload.MixUniform, Instructions: 400}}, 5),
	}
	for _, pol := range []cpu.Policy{cpu.PolicySteering, cpu.PolicyStaticInteger, cpu.PolicyPrefetch} {
		for name, prog := range progs {
			prev := -1.0
			for n := 1; n <= 6; n++ {
				units := make([]arch.UnitType, 0, n+1)
				for i := 0; i < n; i++ {
					units = append(units, arch.IntALU)
				}
				units = append(units, arch.LSU)
				cfg := config.MustNew("grow", units...)
				basis := [3]config.Configuration{cfg, cfg, cfg}
				est := estimateIPC(t, pol, cpu.Params{}, &basis, prog)
				if est.PredictedIPC+1e-9 < prev {
					t.Errorf("%v/%s: IPC dropped from %v to %v when IntALU slots grew to %d",
						pol, name, prev, est.PredictedIPC, n)
				}
				prev = est.PredictedIPC
			}
		}
	}
}

// TestMonotoneReconfigLatency checks that raising the reconfiguration
// latency never raises predicted IPC, for every policy that pays for
// reconfigurations.
func TestMonotoneReconfigLatency(t *testing.T) {
	prog := synth(t, []workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 300},
		{Mix: workload.MixFPHeavy, Instructions: 300},
		{Mix: workload.MixMemHeavy, Instructions: 300},
	}, 7)
	for _, pol := range []cpu.Policy{
		cpu.PolicySteering, cpu.PolicyPrefetch, cpu.PolicyFullReconfig,
		cpu.PolicyDemand, cpu.PolicyNone, cpu.PolicyStaticInteger,
	} {
		prev := math.Inf(1)
		for _, lat := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
			p := cpu.Params{ReconfigLatency: lat}
			est := estimateIPC(t, pol, p, nil, prog)
			if est.PredictedIPC > prev+1e-9 {
				t.Errorf("%v: IPC rose from %v to %v when latency grew to %d",
					pol, prev, est.PredictedIPC, lat)
			}
			prev = est.PredictedIPC
		}
	}
}

// TestStarvedCapacity pins the infeasible case: a demanded class with
// no servers anywhere must produce a zero-IPC estimate with a capacity
// bottleneck, not a divide-by-zero.
func TestStarvedCapacity(t *testing.T) {
	prog := synth(t, []workload.Phase{{Mix: workload.MixFPHeavy, Instructions: 200}}, 5)
	p := cpu.Params{DisableFFUs: true}
	basis := [3]config.Configuration{
		config.MustNew("int-only", arch.IntALU, arch.LSU),
		config.MustNew("int-only2", arch.IntALU, arch.LSU),
		config.MustNew("int-only3", arch.IntALU, arch.LSU),
	}
	est := estimateIPC(t, cpu.PolicySteering, p, &basis, prog)
	if est.PredictedIPC != 0 {
		t.Fatalf("PredictedIPC = %v, want 0 for starved FP work", est.PredictedIPC)
	}
	if est.Bottleneck != "capacity:FPALU" && est.Bottleneck != "capacity:FPMDU" {
		t.Fatalf("Bottleneck = %q, want capacity:FP*", est.Bottleneck)
	}
}

func TestErlangC(t *testing.T) {
	// M/M/1 waiting probability is exactly the utilisation.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := erlangCInt(1, rho); math.Abs(got-rho) > 1e-9 {
			t.Errorf("erlangCInt(1, %v) = %v, want %v", rho, got, rho)
		}
	}
	// Known table value: C(2, 1) = 1/3.
	if got := erlangCInt(2, 1); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("erlangCInt(2, 1) = %v, want 1/3", got)
	}
	// Saturated stations always wait; empty ones never do.
	if got := erlangCInt(2, 2.5); got != 1 {
		t.Errorf("erlangCInt(2, 2.5) = %v, want 1", got)
	}
	if got := erlangC(3, 0); got != 0 {
		t.Errorf("erlangC(3, 0) = %v, want 0", got)
	}
	// Fractional servers interpolate between the neighbours.
	lo, hi, mid := erlangC(2, 1), erlangC(3, 1), erlangC(2.5, 1)
	if !(hi <= mid && mid <= lo) {
		t.Errorf("erlangC interpolation out of order: C(2)=%v C(2.5)=%v C(3)=%v", lo, mid, hi)
	}
}

func TestProfileCriticalPathChain(t *testing.T) {
	// A pure dependence chain: critical path equals summed latencies,
	// ILP approaches 1.
	var prog isa.Program
	n := 100
	for i := 0; i < n; i++ {
		prog = append(prog, isa.New(isa.ADD, 1, 1, 1, 0))
	}
	prog = append(prog, isa.New(isa.HALT, 0, 0, 0, 0))
	segs := profileProgram(prog, profileOptions{lat: isa.DefaultLatencies(), segSize: 64, window: 7})
	total := 0.0
	for _, s := range segs {
		total += s.CritPath
	}
	if total != float64(n) {
		t.Fatalf("chain critical path = %v, want %d", total, n)
	}
	// Independent instructions: critical path is one op's latency.
	var flat isa.Program
	for i := 0; i < 64; i++ {
		flat = append(flat, isa.New(isa.ADD, uint8(1+i%15), 0, 0, 0))
	}
	segs = profileProgram(flat, profileOptions{lat: isa.DefaultLatencies(), segSize: 64, window: 7})
	if len(segs) != 1 || segs[0].CritPath != 1 {
		t.Fatalf("flat critical path = %+v, want 1", segs)
	}
}

func TestSampledEstimateMatchesExact(t *testing.T) {
	// A long stationary program is profiled by strided sampling; a short
	// program with the identical phase structure is profiled exactly.
	// The sampled estimate must land near the exact one — the property
	// that lets /v1/estimate stay cheap at production scale.
	pattern := []workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
		{Mix: workload.MixMemHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
	}
	var long []workload.Phase
	for i := 0; i < 120; i++ {
		long = append(long, pattern...)
	}
	short := synth(t, pattern, 7)
	big := synth(t, long, 7)
	if win, _ := sampleWindows(short, DefaultSegmentSize); win != nil {
		t.Fatalf("short program (%d instr) unexpectedly sampled", len(short))
	}
	if win, weights := sampleWindows(big, DefaultSegmentSize); win == nil {
		t.Fatalf("long program (%d instr) not sampled", len(big))
	} else {
		sum := 0
		for _, w := range weights {
			sum += w
		}
		wantSegs := (len(big) + DefaultSegmentSize - 1) / DefaultSegmentSize
		if sum != wantSegs {
			t.Fatalf("sample weights sum to %d windows, program has %d", sum, wantSegs)
		}
		if len(win) > 2*sampleTargetSegs*DefaultSegmentSize {
			t.Fatalf("sample kept %d instructions, want bounded near %d", len(win), sampleTargetSegs*DefaultSegmentSize)
		}
	}
	exact := estimateIPC(t, cpu.PolicySteering, cpu.DefaultParams(), nil, short)
	sampled := estimateIPC(t, cpu.PolicySteering, cpu.DefaultParams(), nil, big)
	// On the sampled path Instructions is itself a weighted estimate
	// (the true final window may be partial); it must still land within
	// one stride of the full program length.
	if diff := sampled.Instructions - len(big); diff < -2*DefaultSegmentSize || diff > 40*DefaultSegmentSize {
		t.Errorf("sampled Instructions = %d, want near full program length %d", sampled.Instructions, len(big))
	}
	rel := math.Abs(sampled.PredictedIPC-exact.PredictedIPC) / exact.PredictedIPC
	if rel > 0.10 {
		t.Errorf("sampled IPC %.3f vs exact IPC %.3f: %.1f%% apart, want within 10%%",
			sampled.PredictedIPC, exact.PredictedIPC, rel*100)
	}
}
