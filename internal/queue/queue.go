// Package queue is the analytic fast path beside the cycle simulator:
// an M/M/c-style queueing model of the FFU/RFU pool that answers
// configuration-exploration questions in microseconds instead of
// simulated milliseconds (Carroll & Lin, arXiv:1807.08586, applied to
// the paper's reconfigurable superscalar).
//
// The model is parameterized by the exact same cpu.Params as the
// simulator. Each unit class is a c-server queueing station whose
// service time comes from the ISA latency table (plus an amortised
// cache-miss share for loads), whose server count comes from the
// configuration the modeled policy would choose for the segment's 3-bit
// demand vector, and whose waiting time comes from the Erlang-C delay
// formula. A damped fixed point couples the stations to the frontend
// width and the register-dataflow critical path, and reconfiguration
// overhead is charged at segment boundaries where the chosen
// configuration changes.
//
// Validity envelope — the model is trustworthy when:
//   - the program is straight-line (everything workload.Synthesize and
//     the assembler produce today; speculative control flow is not
//     modeled),
//   - fault injection is off (a degrading fabric violates the
//     stationary-capacity assumption; Estimate still answers but notes
//     the exclusion),
//   - the policy is deterministic (PolicyRandom is modeled as the mean
//     basis capacity, which tracks the simulator only in expectation).
//
// Within the envelope the mean absolute IPC error across the X1–X6
// reference workloads under the steering and prefetch policies is
// under 10%, and every workload is within ±25% — the worst case is the
// X4 FFU-less ablation, where the model's single-server stations
// overstate queueing (study X21 in EXPERIMENTS.md has the full table).
// Use /v1/estimate to rank configurations and /v1/run to certify the
// survivors.
package queue

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/cem"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/isa"
)

// ModelVersion identifies the calibration generation of the analytic
// model. Bump it whenever constants or structure change enough to move
// predictions, so cached estimates can be invalidated.
const ModelVersion = 1

// Calibration constants. These are fit once against the simulator on
// the X1–X6 reference workloads (see TestModelErrorBound) and are not
// per-workload knobs.
const (
	// pipeFill approximates the fetch/dispatch fill and drain of the
	// pipeline, charged once per run.
	pipeFill = 6.0
	// queueShare scales the Erlang-C waiting time actually exposed as
	// extra cycles: queueing delays overlap with dataflow stalls, so
	// only part of the raw waiting time lengthens the run.
	queueShare = 0.45
	// queueCap bounds the queueing inflation relative to the segment's
	// binding constraint. The window is a closed system — at most
	// WindowSize instructions can ever wait — so the open-network
	// Erlang-C tail, which grows without bound as a station
	// saturates, must be clipped; beyond the cap the station's delay
	// is already accounted for by its service bound.
	queueCap = 0.40
	// reconfigOverlap is the fraction of a reconfiguration's bus
	// occupancy that steering-family policies fail to hide behind
	// execution on the fixed units.
	reconfigOverlap = 0.45
	// prefetchOverlap is the same fraction for the prefetch policy,
	// which speculatively reconfigures ahead of the phase change.
	prefetchOverlap = 0.40
	// demandChurn and demandChurnFixed charge the demand policy's
	// per-window incremental reconfigurations — it rewrites slots
	// nearly every window, so every segment pays a latency-dependent
	// share plus a fixed arbitration cost.
	demandChurn      = 0.60
	demandChurnFixed = 6.0
	// drainPenalty is the extra full-reconfig cost of waiting for the
	// fabric to drain before a whole-configuration swap.
	drainPenalty = 4.0
)

// Model is an analytic stand-in for one simulated machine
// configuration: a policy, a parameter set, and a steering basis.
type Model struct {
	policy cpu.Policy
	params cpu.Params // defaults applied
	basis  [3]config.Configuration
}

// New builds a model for the given policy and parameters, applying the
// same zero-field defaulting as cpu.New. The params are validated first
// so servers can map a failure straight to a 4xx; the error wraps
// cpu.ErrInvalidParams. A nil basis selects the Table 1 default.
func New(policy cpu.Policy, params cpu.Params, basis *[3]config.Configuration) (*Model, error) {
	if !policy.Valid() {
		return nil, fmt.Errorf("%w: unknown policy %d", cpu.ErrInvalidParams, int(policy))
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	b := config.DefaultBasis()
	if basis != nil {
		b = *basis
	}
	return &Model{policy: policy, params: params.WithDefaults(), basis: b}, nil
}

// ClassEstimate reports one unit class's steady-state station solution,
// averaged over segments weighted by predicted segment cycles.
type ClassEstimate struct {
	Unit        string  `json:"unit"`
	Capacity    float64 `json:"capacity"`    // mean configured servers
	Utilization float64 `json:"utilization"` // busy fraction in [0,1]
	QueueDelay  float64 `json:"queue_delay"` // mean Erlang-C wait per op, cycles
}

// Estimate is the analytic prediction for one program under the model's
// policy and parameters.
type Estimate struct {
	PredictedIPC     float64         `json:"predicted_ipc"`
	PredictedCycles  float64         `json:"predicted_cycles"`
	Instructions     int             `json:"instructions"`
	Segments         int             `json:"segments"`
	ILP              float64         `json:"ilp"` // instructions / critical path
	ReconfigOverhead float64         `json:"reconfig_overhead"`
	Bottleneck       string          `json:"bottleneck"`
	Classes          []ClassEstimate `json:"classes"`
	ModelVersion     int             `json:"model_version"`
	Envelope         string          `json:"envelope"`
}

// Envelope is the one-line validity statement attached to every
// estimate; ARCHITECTURE §17 documents the full contract.
const Envelope = "straight-line programs, healthy fabric, deterministic policy; rank with estimates, certify with runs"

// Estimate solves the model for one program.
func (m *Model) Estimate(prog isa.Program) (Estimate, error) {
	p := m.params
	// Long programs are profiled by strided sampling (see sampleWindows)
	// so the model's cost stays roughly constant in program length; the
	// footprint scan runs over the same sample for the same reason.
	target := prog
	win, weights := sampleWindows(prog, DefaultSegmentSize)
	if win != nil {
		target = win
	}
	penalty := loadFootprintPenalty(target, p.CacheLineBytes, p.CacheSets, p.CacheMissPenalty)
	segs := profileProgram(target, profileOptions{
		lat:         p.Latencies,
		loadPenalty: penalty,
		segSize:     DefaultSegmentSize,
		window:      p.WindowSize,
	})
	for i := range segs {
		if i < len(weights) {
			segs[i].Weight = weights[i]
		}
	}
	est := Estimate{
		Segments:     len(segs),
		ModelVersion: ModelVersion,
		Envelope:     Envelope,
	}
	if len(segs) == 0 {
		est.Bottleneck = "empty"
		return est, nil
	}

	var (
		totalCycles float64
		totalCP     float64
		overhead    float64
		prevCfg     = -2 // sentinel: no previous segment
		agg         [arch.NumUnitTypes]struct{ cap, util, wq, weight float64 }
		bnWeight    = map[string]float64{}
	)
	prevDemand := arch.Counts{}
	for i, seg := range segs {
		// Reactive policies configure for the demand they have seen,
		// not the demand that is coming: the capacity a segment
		// enjoys is chosen from the previous segment's demand vector
		// (the first segment runs on whatever the reset state offers,
		// approximated by its own demand).
		// The one-window lag only makes sense between adjacent windows
		// (Weight 1, the exact profile): across a sampled stride the
		// policy has long since converged on the phase it is in.
		d := seg.Demand
		if i > 0 && m.reactive() && seg.Weight == 1 {
			d = prevDemand
		}
		caps, cfg := m.segmentCapacity(d)
		sol := solveSegment(seg, caps, p)
		// w scales each sampled segment up to the windows it stands
		// for; exact profiles have w == 1 throughout. Reconfiguration
		// cost is charged once per observed boundary, not per window —
		// a phase change is one configuration swap however many
		// unsampled windows sit between the observations.
		w := float64(seg.Weight)
		est.Instructions += seg.Instr * seg.Weight
		totalCycles += sol.cycles * w
		totalCP += seg.CritPath * w
		bnWeight[sol.bottleneck] += sol.cycles * w
		for k := range agg {
			if seg.Counts[k] == 0 {
				continue
			}
			agg[k].cap += caps[k] * sol.cycles * w
			agg[k].util += sol.util[k] * sol.cycles * w
			agg[k].wq += sol.wq[k] * float64(seg.Counts[k]) * w
			agg[k].weight += sol.cycles * w
		}
		overhead += m.reconfigCost(prevCfg, cfg)
		if m.policy == cpu.PolicyDemand && i > 0 {
			overhead += (demandChurn*float64(p.ReconfigLatency) + demandChurnFixed) * w
		}
		prevCfg = cfg
		prevDemand = seg.Demand
	}
	totalCycles += overhead + pipeFill

	est.PredictedCycles = totalCycles
	est.ReconfigOverhead = overhead
	if totalCycles > 0 {
		est.PredictedIPC = float64(est.Instructions) / totalCycles
	}
	if totalCP > 0 {
		est.ILP = float64(est.Instructions) / totalCP
	}
	est.Bottleneck = dominantBottleneck(bnWeight, overhead, totalCycles)
	for k := range agg {
		if agg[k].weight == 0 {
			continue
		}
		var n int
		for _, seg := range segs {
			n += seg.Counts[k] * seg.Weight
		}
		est.Classes = append(est.Classes, ClassEstimate{
			Unit:        arch.UnitType(k).String(),
			Capacity:    agg[k].cap / agg[k].weight,
			Utilization: agg[k].util / agg[k].weight,
			QueueDelay:  agg[k].wq / float64(n),
		})
	}
	return est, nil
}

// segmentCapacity returns the per-class server counts the modeled
// policy would provide for a segment with the given demand vector, plus
// a configuration index used to detect reconfigurations between
// segments (-1 means the capacity never changes).
func (m *Model) segmentCapacity(demand arch.Counts) ([arch.NumUnitTypes]float64, int) {
	var caps [arch.NumUnitTypes]float64
	ffu := config.FFUCounts()
	if m.params.DisableFFUs {
		ffu = arch.Counts{}
	}
	addCounts := func(c arch.Counts) {
		for k, v := range c {
			caps[k] += float64(v)
		}
	}
	addCounts(ffu)

	switch m.policy {
	case cpu.PolicyNone:
		return caps, -1
	case cpu.PolicyStaticInteger:
		addCounts(m.basis[0].Counts())
		return caps, -1
	case cpu.PolicyStaticMemory:
		addCounts(m.basis[1].Counts())
		return caps, -1
	case cpu.PolicyStaticFloating:
		addCounts(m.basis[2].Counts())
		return caps, -1
	case cpu.PolicyRandom:
		// Modeled in expectation: the mean basis capacity.
		for _, cfg := range m.basis {
			for k, v := range cfg.Counts() {
				caps[k] += float64(v) / 3
			}
		}
		return caps, -1
	case cpu.PolicyDemand:
		// The demand manager synthesises a configuration from the
		// requirement vector directly, greedily filling the 8 slots
		// with the scarcest classes first.
		remaining := arch.NumRFUSlots
		deficit := demand
		for k, v := range ffu {
			deficit[k] -= v
		}
		for {
			best, bestGap := -1, 0
			for k, d := range deficit {
				if d <= 0 || arch.SlotCost(arch.UnitType(k)) > remaining {
					continue
				}
				if d > bestGap {
					best, bestGap = k, d
				}
			}
			if best < 0 {
				break
			}
			caps[best]++
			deficit[best]--
			remaining -= arch.SlotCost(arch.UnitType(best))
		}
		return caps, -1
	default:
		// Steering-family policies (steering, oracle, prefetch,
		// full-reconfig) pick the basis configuration with minimal
		// configuration-error metric against the demand vector — the
		// same CEM selection the hardware performs. A segment is many
		// selection windows though, and on mixed demand the manager
		// dithers between near-tied configurations, time-sharing
		// their capacity; the model reproduces that by blending the
		// basis weighted steeply by inverse CEM error (a clear winner
		// gets essentially all the weight, near-ties split it).
		avail := arch.Counts{}
		for k, v := range ffu {
			avail[k] = v
		}
		var (
			weights [3]float64
			total   float64
			bestIdx = 0
			bestKey = math.Inf(1)
		)
		for i, cfg := range m.basis {
			counts := cfg.Counts().Add(avail)
			e := cem.Error(demand, counts)
			w := 1 / math.Pow(1+float64(e), 3)
			// A configuration that leaves a demanded class with zero
			// units cannot hold the fabric: the starved instructions
			// sit in the queue demanding until the manager switches
			// away. Slash its share of the blend (this only bites
			// when the FFUs are disabled — the fixed units otherwise
			// guarantee one server of every class).
			for k, d := range demand {
				if d > 0 && counts[k] == 0 {
					w *= 0.02
					break
				}
			}
			weights[i] = w
			total += w
			// Change-detection winner: minimal error, coverage of the
			// demanded classes as tie-break (the saturated-error tie
			// under DisableFFUs must not pick a config that cannot
			// run the demanded classes at all).
			cover := 0
			for k, d := range demand {
				if c := counts[k]; c < d {
					cover += c
				} else {
					cover += d
				}
			}
			key := float64(e) - float64(cover)/64
			if key < bestKey {
				bestIdx, bestKey = i, key
			}
		}
		for i, cfg := range m.basis {
			for k, v := range cfg.Counts() {
				caps[k] += float64(v) * weights[i] / total
			}
		}
		return caps, bestIdx
	}
}

// reactive reports whether the policy configures from observed (past)
// demand rather than predicted demand: such policies serve each
// segment with the capacity chosen for the previous one. The prefetch
// policy predicts across phase boundaries, and static/none/random never
// react at all.
func (m *Model) reactive() bool {
	switch m.policy {
	case cpu.PolicySteering, cpu.PolicyOracle, cpu.PolicyFullReconfig, cpu.PolicyDemand:
		return true
	}
	return false
}

// reconfigCost charges the bus occupancy of switching from the previous
// segment's configuration to the next one, scaled by how much of it the
// policy hides behind execution on the units that remain live.
func (m *Model) reconfigCost(prev, next int) float64 {
	if next < 0 || prev == next || prev == -2 {
		return 0 // static capacity, no change, or first segment
	}
	spans := len(m.basis[next].Units())
	width := m.params.ConfigBusWidth
	if width <= 0 || width > spans {
		width = spans // unlimited bus: all spans in parallel
	}
	serial := float64(m.params.ReconfigLatency) * math.Ceil(float64(spans)/float64(width))
	switch m.policy {
	case cpu.PolicyPrefetch:
		return prefetchOverlap * serial
	case cpu.PolicyFullReconfig:
		return reconfigOverlap*serial + drainPenalty
	default:
		return reconfigOverlap * serial
	}
}

// segmentSolution is the converged station solution for one segment.
type segmentSolution struct {
	cycles     float64
	bottleneck string
	util       [arch.NumUnitTypes]float64
	wq         [arch.NumUnitTypes]float64
}

// solveSegment couples the per-class Erlang-C stations to the frontend
// and dataflow bounds with a damped fixed point. The lower bound on
// segment time is the max of: the critical path, fetch bandwidth, issue
// bandwidth, and each class's total service divided by its servers. On
// top of that, Erlang-C waiting time — diluted by the window-level
// parallelism that lets waits overlap — stretches the segment.
func solveSegment(seg Segment, caps [arch.NumUnitTypes]float64, p cpu.Params) segmentSolution {
	var sol segmentSolution

	// Infeasible: demanded class with zero capacity never completes.
	for k := range caps {
		if seg.Counts[k] > 0 && caps[k] < 1e-9 {
			sol.cycles = math.Inf(1)
			sol.bottleneck = "capacity:" + arch.UnitType(k).String()
			for j := range sol.util {
				if seg.Counts[j] > 0 && caps[j] >= 1e-9 {
					sol.util[j] = 0
				}
			}
			return sol
		}
	}

	fetch := float64(p.FetchWidthMem) // trace-cache misses dominate cold straight-line fetch
	bounds := []struct {
		name string
		v    float64
	}{
		{"dependencies", seg.CritPath},
		{"frontend", float64(seg.Instr) / fetch},
		{"issue-width", float64(seg.Instr) / float64(p.IssueWidth)},
	}
	base, bn := 0.0, "dependencies"
	for _, b := range bounds {
		if b.v > base {
			base, bn = b.v, b.name
		}
	}
	for k := range caps {
		if seg.Counts[k] == 0 {
			continue
		}
		if v := seg.Service[k] / caps[k]; v > base {
			base, bn = v, "units:"+arch.UnitType(k).String()
		}
	}
	if base < 1 {
		base = 1
	}

	// Window-level parallelism dilutes waiting: with N instructions in
	// flight, N waits overlap. N is capped by the window and by how
	// much parallelism the dataflow offers at all.
	work := 0.0
	for k := range caps {
		work += seg.Service[k]
	}
	ilp := work / math.Max(seg.CritPath, 1)
	neff := math.Max(1, math.Min(float64(p.WindowSize), ilp))

	cyc := base
	var extra float64
	for iter := 0; iter < 64; iter++ {
		extra = 0
		for k := range caps {
			if seg.Counts[k] == 0 {
				continue
			}
			sk := seg.Service[k] / float64(seg.Counts[k])
			a := seg.Service[k] / cyc // offered load in servers
			if limit := 0.999 * caps[k]; a > limit {
				a = limit
			}
			wq := erlangC(caps[k], a) * sk / (caps[k] - a)
			sol.wq[k] = wq
			extra += float64(seg.Counts[k]) * wq
		}
		infl := queueShare * extra / neff
		if limit := queueCap * base; infl > limit {
			infl = limit
		}
		next := base + infl
		if math.Abs(next-cyc) < 0.05 {
			cyc = next
			break
		}
		cyc = 0.5 * (cyc + next)
	}

	sol.cycles = cyc
	sol.bottleneck = bn
	if queueShare*extra/neff > 0.35*base {
		sol.bottleneck = "queueing"
	}
	for k := range caps {
		if seg.Counts[k] == 0 || caps[k] < 1e-9 {
			continue
		}
		sol.util[k] = math.Min(1, seg.Service[k]/(caps[k]*cyc))
	}
	return sol
}

// dominantBottleneck picks the label that explains the most predicted
// cycles, promoting "reconfig" when overhead is the largest single
// contributor.
func dominantBottleneck(weights map[string]float64, overhead, total float64) string {
	best, bestW := "dependencies", 0.0
	for name, w := range weights {
		if w > bestW {
			best, bestW = name, w
		}
	}
	if overhead > bestW || overhead > 0.5*total {
		return "reconfig"
	}
	return best
}

// erlangC returns the M/M/c waiting probability for offered load a
// (in erlangs) at c servers. Fractional server counts — the random
// policy's expected capacity — interpolate linearly between the
// surrounding integer stations.
func erlangC(c, a float64) float64 {
	if a <= 0 {
		return 0
	}
	lo := math.Floor(c)
	if lo == c || lo < 1 {
		return erlangCInt(int(math.Max(1, math.Round(c))), math.Min(a, 0.999*c))
	}
	hi := lo + 1
	f := c - lo
	pl := erlangCInt(int(lo), math.Min(a, 0.999*lo))
	ph := erlangCInt(int(hi), math.Min(a, 0.999*hi))
	return (1-f)*pl + f*ph
}

// erlangCInt is the standard recursive Erlang-B → Erlang-C evaluation,
// numerically stable for the tiny server counts of a 13-unit pool.
func erlangCInt(c int, a float64) float64 {
	if c <= 0 {
		return 1
	}
	if a >= float64(c) {
		return 1
	}
	// Erlang-B by recurrence: B(0) = 1; B(k) = a·B(k-1)/(k + a·B(k-1)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho + rho*b)
}
