// Static program profiling for the analytic model.
//
// The synthesizer's programs (and every assembled workload the service
// accepts today) are straight-line: fetch never branches, so a single
// forward pass over the instruction stream sees exactly the dynamic
// instruction sequence the simulator will execute. That is what makes a
// static profile a faithful substitute for a trace — the profiler
// segments the stream, and per segment collects the three quantities
// the queueing model needs: how much service each unit class must
// deliver, how serialised the work is (register-dataflow critical
// path), and what concurrency the segment asks of each class (the same
// 3-bit demand vector the steering manager computes from queue
// occupancy).
package queue

import (
	"math"

	"repro/internal/arch"
	"repro/internal/isa"
)

// DefaultSegmentSize is the profiling window in instructions. It is
// deliberately close to the reorder horizon the steering manager reacts
// over (a handful of 7-entry windows): small enough to see the phase
// structure that drives reconfiguration, large enough that the M/M/c
// steady-state assumption inside one segment is not absurd.
const DefaultSegmentSize = 64

// Segment is one profiling window of the instruction stream.
type Segment struct {
	Instr    int                        // instructions in the window
	Counts   arch.Counts                // instruction count per unit class
	Service  [arch.NumUnitTypes]float64 // summed service cycles per class
	CritPath float64                    // register-dataflow critical path through the window
	Demand   arch.Counts                // 3-bit clamped concurrency demand (Little's law)
	Weight   int                        // windows this segment stands for (1 when profiled exactly)
}

// profileOptions parameterize the static profile.
type profileOptions struct {
	lat         isa.Latencies
	loadPenalty float64 // extra service cycles charged per load for modeled misses
	segSize     int
	window      int // scheduling-window size, caps the demand encoding
}

// profileProgram slices the program into segments and fills in service
// demand, critical path, and the 3-bit demand vector per segment.
//
// The critical path is computed incrementally over register dataflow:
// depth[r] is the completion time of the latest writer of r on an
// infinitely wide machine. A segment's CritPath is how much the global
// critical path grew while its instructions streamed past — dependence
// chains that cross segment boundaries are charged to the segment that
// extends them, which is also where the simulator stalls on them.
func profileProgram(prog isa.Program, o profileOptions) []Segment {
	if o.segSize <= 0 {
		o.segSize = DefaultSegmentSize
	}
	var (
		segs   []Segment
		cur    Segment
		depth  [256]float64 // completion time per unified register index
		cpMax  float64      // global critical-path watermark
		cpBase float64      // watermark at current segment start
	)
	flush := func() {
		if cur.Instr == 0 {
			return
		}
		cur.CritPath = cpMax - cpBase
		cur.Demand = demandVector(cur, o.window)
		cur.Weight = 1
		segs = append(segs, cur)
		cur = Segment{}
		cpBase = cpMax
	}
	for _, in := range prog {
		if in.Op == isa.HALT {
			break
		}
		unit := in.Unit()
		svc := float64(o.lat.Of(in.Op))
		if in.Op.IsLoad() {
			svc += o.loadPenalty
		}
		cur.Instr++
		cur.Counts[unit]++
		cur.Service[unit] += svc

		start := 0.0
		regs, n := in.SourceRegs()
		for i := 0; i < n; i++ {
			if d := depth[regs[i]]; d > start {
				start = d
			}
		}
		done := start + svc
		if rd, ok := in.Dest(); ok && rd != 0 { // integer r0 is hardwired zero
			depth[rd] = done
		}
		if done > cpMax {
			cpMax = done
		}
		if cur.Instr >= o.segSize {
			flush()
		}
	}
	flush()
	return segs
}

// sampleTargetSegs is how many profiling windows the sampled path keeps.
// Programs short enough to profile exactly (fewer than twice this many
// windows) are; longer ones are strided down to roughly this many, which
// makes the model's cost effectively constant in program length — the
// property that keeps /v1/estimate thousands of times cheaper than a
// simulated run at production scale.
const sampleTargetSegs = 96

// sampleWindows decides whether a program is long enough to profile by
// sampling and, if so, returns the concatenation of every stride-th
// window plus the window count each sampled window stands for. The
// accepted workloads are statistically stationary within a phase, so a
// strided sample sees every phase (stride << phase length in windows)
// and the weighted profile converges on the exact one. Cross-window
// dependence chains between non-adjacent sampled windows are mildly
// overcharged (the chains are short relative to a 64-instruction
// window); that bias is inside the model's documented envelope.
//
// The concatenated sample re-segments on the same window boundaries
// (every sampled window is exactly segSize long except a final partial
// one), so segment i of the profiled sample IS sampled window i and
// weights apply by index. A (nil, nil) return means "profile exactly".
func sampleWindows(prog isa.Program, segSize int) (isa.Program, []int) {
	totalSegs := (len(prog) + segSize - 1) / segSize
	if totalSegs <= 2*sampleTargetSegs {
		return nil, nil
	}
	stride := (totalSegs + sampleTargetSegs - 1) / sampleTargetSegs
	win := make(isa.Program, 0, (sampleTargetSegs+1)*segSize)
	var weights []int
	for s := 0; s < totalSegs; s += stride {
		start := s * segSize
		end := start + segSize
		if end > len(prog) {
			end = len(prog)
		}
		win = append(win, prog[start:end]...)
		w := stride
		if rem := totalSegs - s; rem < stride {
			w = rem
		}
		weights = append(weights, w)
	}
	return win, weights
}

// demandVector derives the segment's per-class concurrency requirement:
// by Little's law the class needs Service_k / T units running at once to
// finish inside the segment's fastest possible completion time T, where
// T is bounded below by the critical path. The result is clamped to the
// window size (the machine can never expose more parallelism than
// in-flight instructions) and then to the manager's 3-bit encoding —
// exactly the saturation the hardware demand vector applies.
func demandVector(s Segment, window int) arch.Counts {
	t := s.CritPath
	if t < 1 {
		t = 1
	}
	var d arch.Counts
	for k := range d {
		if s.Counts[k] == 0 {
			continue
		}
		need := int(math.Ceil(s.Service[k] / t))
		if need < 1 {
			need = 1
		}
		if window > 0 && need > window {
			need = window
		}
		if need > 7 { // 3-bit saturation, as in cem.clamp3
			need = 7
		}
		d[k] = need
	}
	return d
}

// loadFootprintPenalty models the data cache statically. Memory
// operands in the accepted workloads are base+offset with small
// immediate offsets, so the distinct (base register, cache line) pairs
// seen by the profiler bound the program's data footprint. If the
// footprint fits the cache, only compulsory misses remain (one per
// line); if it exceeds the cache, the overflow fraction of accesses
// misses. Either way the penalty is amortised into the per-load service
// time, which is how an M/M/c server has to see it.
func loadFootprintPenalty(prog isa.Program, lineBytes, sets, missPenalty int) float64 {
	if lineBytes <= 0 || sets <= 0 || missPenalty <= 0 {
		return 0
	}
	lines := map[[2]int32]struct{}{}
	loads := 0
	for _, in := range prog {
		if in.Op == isa.HALT {
			break
		}
		if !in.Op.IsLoad() && !in.Op.IsStore() {
			continue
		}
		regs, n := in.SourceRegs()
		base := int32(-1)
		if n > 0 {
			base = int32(regs[0])
		}
		lines[[2]int32{base, in.Imm / int32(lineBytes)}] = struct{}{}
		if in.Op.IsLoad() {
			loads++
		}
	}
	if loads == 0 {
		return 0
	}
	footprint := len(lines)
	cacheLines := sets // direct-mapped: one line per set
	var misses float64
	if footprint <= cacheLines {
		misses = float64(footprint) // compulsory only
	} else {
		misses = float64(footprint) + float64(loads)*(1-float64(cacheLines)/float64(footprint))
	}
	if misses > float64(loads) {
		misses = float64(loads)
	}
	return misses / float64(loads) * float64(missPenalty)
}
