// Package logic provides gate-level combinational building blocks — gates,
// ripple-carry adders, barrel shifters, one-hot coders, comparators and
// population counters — from which the paper's circuits (the configuration
// error metric generator of Fig. 3, the wake-up row logic of Fig. 6 and the
// availability circuit of Fig. 7) are reconstructed bit-for-bit.
//
// Everything in this package is a pure function over Bit and Bus values.
// The simulator proper uses fast behavioural equivalents; the circuit
// models exist so that tests can prove circuit == behaviour exhaustively,
// which is the repo's reproduction of the paper's hardware figures.
package logic

import "fmt"

// Bit is a single logic level.
type Bit bool

// Bus is a little-endian vector of bits: index 0 is the least-significant
// bit.
type Bus []Bit

// Elementary gates.

// Not returns the complement of a.
func Not(a Bit) Bit { return !a }

// And returns the conjunction of its inputs; And() is true (identity).
func And(in ...Bit) Bit {
	for _, b := range in {
		if !b {
			return false
		}
	}
	return true
}

// Or returns the disjunction of its inputs; Or() is false (identity).
func Or(in ...Bit) Bit {
	for _, b := range in {
		if b {
			return true
		}
	}
	return false
}

// Xor returns the exclusive-or (odd parity) of its inputs.
func Xor(in ...Bit) Bit {
	v := Bit(false)
	for _, b := range in {
		v = v != b
	}
	return v
}

// Nand returns NOT(AND(in...)).
func Nand(in ...Bit) Bit { return Not(And(in...)) }

// Nor returns NOT(OR(in...)).
func Nor(in ...Bit) Bit { return Not(Or(in...)) }

// Mux2 returns a when sel is false and b when sel is true, built from
// gates.
func Mux2(sel, a, b Bit) Bit { return Or(And(Not(sel), a), And(sel, b)) }

// MuxBus selects one of the input buses by the binary value of sel. All
// inputs must share a width. It panics if sel addresses a missing input.
func MuxBus(sel Bus, in ...Bus) Bus {
	idx := sel.Uint()
	if int(idx) >= len(in) {
		panic(fmt.Sprintf("logic: MuxBus select %d of %d inputs", idx, len(in)))
	}
	w := len(in[0])
	out := make(Bus, w)
	for bit := 0; bit < w; bit++ {
		v := Bit(false)
		for i, bus := range in {
			if len(bus) != w {
				panic("logic: MuxBus width mismatch")
			}
			v = Or(v, And(selectLine(sel, uint64(i)), bus[bit]))
		}
		out[bit] = v
	}
	return out
}

// selectLine decodes sel == want as a gate network.
func selectLine(sel Bus, want uint64) Bit {
	v := Bit(true)
	for i, b := range sel {
		bitWanted := want>>uint(i)&1 == 1
		if bitWanted {
			v = And(v, b)
		} else {
			v = And(v, Not(b))
		}
	}
	return v
}

// Bus construction and conversion.

// BusFromUint returns the width-bit little-endian bus holding v's low
// bits.
func BusFromUint(v uint64, width int) Bus {
	b := make(Bus, width)
	b.SetUint(v)
	return b
}

// SetUint fills b in place with the low len(b) bits of v — the
// allocation-free form of BusFromUint for callers that own their
// buffers (see the fast-path circuit models in cem and core).
func (b Bus) SetUint(v uint64) {
	for i := range b {
		b[i] = Bit(v>>uint(i)&1 == 1)
	}
}

// Uint returns the unsigned value carried by the bus.
func (b Bus) Uint() uint64 {
	var v uint64
	for i, bit := range b {
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}

// String renders the bus MSB-first, e.g. "0b101".
func (b Bus) String() string {
	s := "0b"
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] {
			s += "1"
		} else {
			s += "0"
		}
	}
	return s
}

// Clone returns an independent copy of the bus.
func (b Bus) Clone() Bus {
	c := make(Bus, len(b))
	copy(c, b)
	return c
}

// Arithmetic blocks.

// HalfAdder returns the sum and carry of two bits.
func HalfAdder(a, b Bit) (sum, carry Bit) {
	return Xor(a, b), And(a, b)
}

// FullAdder returns the sum and carry of two bits and a carry-in.
func FullAdder(a, b, cin Bit) (sum, cout Bit) {
	s1, c1 := HalfAdder(a, b)
	s2, c2 := HalfAdder(s1, cin)
	return s2, Or(c1, c2)
}

// RippleAdder adds two equal-width buses with a carry-in and returns the
// sum bus and the carry-out. It panics on width mismatch.
func RippleAdder(a, b Bus, cin Bit) (sum Bus, cout Bit) {
	if len(a) != len(b) {
		panic("logic: RippleAdder width mismatch")
	}
	sum = make(Bus, len(a))
	cout = RippleAdderInto(sum, a, b, cin)
	return sum, cout
}

// RippleAdderInto writes a+b+cin into dst and returns the carry-out.
// dst may alias a or b: each bit position is read before it is written.
// Panics on width mismatch.
func RippleAdderInto(dst, a, b Bus, cin Bit) (cout Bit) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("logic: RippleAdderInto width mismatch")
	}
	c := cin
	for i := range a {
		dst[i], c = FullAdder(a[i], b[i], c)
	}
	return c
}

// SaturatingAdder adds two equal-width buses and clamps the result to the
// all-ones value on overflow. The paper's CEM generator sums five 3-bit
// contributions whose total provably fits in three bits, but the
// saturating form keeps the circuit safe for out-of-spec inputs.
func SaturatingAdder(a, b Bus) Bus {
	out := make(Bus, len(a))
	SaturatingAdderInto(out, a, b)
	return out
}

// SaturatingAdderInto writes the saturating sum of a and b into dst,
// which may alias either operand. Panics on width mismatch.
func SaturatingAdderInto(dst, a, b Bus) {
	cout := RippleAdderInto(dst, a, b, false)
	for i := range dst {
		dst[i] = Or(dst[i], cout)
	}
}

// AdderTree sums any number of equal-width buses with SaturatingAdder
// stages arranged as a balanced tree, mirroring the paper's "3-bit,
// 5-operand adder" of Fig. 3(b). AdderTree of no inputs panics.
func AdderTree(in ...Bus) Bus {
	switch len(in) {
	case 0:
		panic("logic: AdderTree of zero operands")
	case 1:
		return in[0].Clone()
	}
	mid := len(in) / 2
	return SaturatingAdder(AdderTree(in[:mid]...), AdderTree(in[mid:]...))
}

// ShiftRight returns a >> n with zero fill, as a wiring-only operation.
func ShiftRight(a Bus, n int) Bus {
	out := make(Bus, len(a))
	ShiftRightInto(out, a, n)
	return out
}

// ShiftRightInto writes a >> n (zero fill) into dst. dst may alias a:
// positions are written in ascending order and each reads only from a
// strictly higher index. Panics on width mismatch.
func ShiftRightInto(dst, a Bus, n int) {
	if len(dst) != len(a) {
		panic("logic: ShiftRightInto width mismatch")
	}
	for i := range dst {
		if i+n < len(a) {
			dst[i] = a[i+n]
		} else {
			dst[i] = false
		}
	}
}

// BarrelShiftRight shifts a right by the binary value of the shift bus,
// implemented as the classic logarithmic stack of 2-way multiplexers: one
// mux stage per shift-control bit.
func BarrelShiftRight(a Bus, shift Bus) Bus {
	cur := a.Clone()
	BarrelShiftRightInto(cur, cur, shift)
	return cur
}

// BarrelShiftRightInto writes a >> shift.Uint() into dst through the same
// mux stages as BarrelShiftRight, without allocating. dst may alias a:
// within each stage, position i reads only positions i and i+2^stage, so
// an ascending in-place sweep is safe. Panics on width mismatch.
func BarrelShiftRightInto(dst, a Bus, shift Bus) {
	if len(dst) != len(a) {
		panic("logic: BarrelShiftRightInto width mismatch")
	}
	if len(dst) == 0 {
		return
	}
	if &dst[0] != &a[0] {
		copy(dst, a)
	}
	for stage, sel := range shift {
		n := 1 << uint(stage)
		for i := range dst {
			shifted := Bit(false)
			if i+n < len(dst) {
				shifted = dst[i+n]
			}
			dst[i] = Mux2(sel, dst[i], shifted)
		}
	}
}

// Comparators.

// Equal reports a == b as an XNOR/AND reduction. Panics on width
// mismatch.
func Equal(a, b Bus) Bit {
	if len(a) != len(b) {
		panic("logic: Equal width mismatch")
	}
	v := Bit(true)
	for i := range a {
		v = And(v, Not(Xor(a[i], b[i])))
	}
	return v
}

// LessThan reports a < b (unsigned), built as the standard MSB-first
// borrow chain. Panics on width mismatch.
func LessThan(a, b Bus) Bit {
	if len(a) != len(b) {
		panic("logic: LessThan width mismatch")
	}
	lt := Bit(false)
	eq := Bit(true)
	for i := len(a) - 1; i >= 0; i-- {
		lt = Or(lt, And(eq, Not(a[i]), b[i]))
		eq = And(eq, Not(Xor(a[i], b[i])))
	}
	return lt
}

// IsZero reports that no bit of the bus is set.
func IsZero(a Bus) Bit { return Nor(a...) }

// Coders.

// Decoder returns the 2^len(sel)-line one-hot decode of sel.
func Decoder(sel Bus) Bus {
	out := make(Bus, 1<<uint(len(sel)))
	for i := range out {
		out[i] = selectLine(sel, uint64(i))
	}
	return out
}

// PriorityEncoder returns the index of the lowest set line of in and a
// valid bit that is false when no line is set. The output bus is wide
// enough to index every line.
func PriorityEncoder(in Bus) (idx Bus, valid Bit) {
	width := 0
	for 1<<uint(width) < len(in) {
		width++
	}
	idx = make(Bus, width)
	valid = Or(in...)
	blocked := Bit(false)
	for i, line := range in {
		hit := And(line, Not(blocked))
		for b := 0; b < width; b++ {
			if i>>uint(b)&1 == 1 {
				idx[b] = Or(idx[b], hit)
			}
		}
		blocked = Or(blocked, line)
	}
	return idx, valid
}

// PopCount returns the number of set bits of in as a bus of the minimal
// width that can hold len(in), built from an adder tree over the input
// bits.
func PopCount(in Bus) Bus {
	width := 1
	for 1<<uint(width)-1 < len(in) {
		width++
	}
	if len(in) == 0 {
		return make(Bus, width)
	}
	operands := make([]Bus, len(in))
	for i, b := range in {
		operand := make(Bus, width)
		operand[0] = b
		operands[i] = operand
	}
	// The total cannot overflow width bits by construction, so the
	// saturating tree behaves as an exact adder here.
	return AdderTree(operands...)
}
