package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGateTruthTables(t *testing.T) {
	const T, F = Bit(true), Bit(false)
	if Not(T) != F || Not(F) != T {
		t.Error("Not truth table wrong")
	}
	if And(T, T) != T || And(T, F) != F || And(F, T) != F || And(F, F) != F {
		t.Error("And truth table wrong")
	}
	if Or(T, T) != T || Or(T, F) != T || Or(F, T) != T || Or(F, F) != F {
		t.Error("Or truth table wrong")
	}
	if Xor(T, T) != F || Xor(T, F) != T || Xor(F, T) != T || Xor(F, F) != F {
		t.Error("Xor truth table wrong")
	}
	if Nand(T, T) != F || Nand(F, F) != T {
		t.Error("Nand truth table wrong")
	}
	if Nor(F, F) != T || Nor(T, F) != F {
		t.Error("Nor truth table wrong")
	}
}

func TestGateIdentities(t *testing.T) {
	if And() != Bit(true) {
		t.Error("And() should be true")
	}
	if Or() != Bit(false) {
		t.Error("Or() should be false")
	}
	if Xor() != Bit(false) {
		t.Error("Xor() should be false")
	}
}

func TestXorIsOddParity(t *testing.T) {
	f := func(v uint8, n uint8) bool {
		n = n%8 + 1
		in := make([]Bit, n)
		ones := 0
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
			if in[i] {
				ones++
			}
		}
		return Xor(in...) == Bit(ones%2 == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMux2(t *testing.T) {
	for _, sel := range []Bit{false, true} {
		for _, a := range []Bit{false, true} {
			for _, b := range []Bit{false, true} {
				want := a
				if sel {
					want = b
				}
				if got := Mux2(sel, a, b); got != want {
					t.Errorf("Mux2(%v,%v,%v) = %v, want %v", sel, a, b, got, want)
				}
			}
		}
	}
}

func TestBusRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		return BusFromUint(uint64(v), 16).Uint() == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusTruncates(t *testing.T) {
	if got := BusFromUint(0xff, 3).Uint(); got != 7 {
		t.Errorf("BusFromUint(0xff,3).Uint() = %d, want 7", got)
	}
}

func TestBusString(t *testing.T) {
	if got := BusFromUint(5, 3).String(); got != "0b101" {
		t.Errorf("String = %q, want 0b101", got)
	}
}

func TestBusCloneIndependent(t *testing.T) {
	a := BusFromUint(3, 4)
	b := a.Clone()
	b[0] = false
	if a[0] != Bit(true) {
		t.Error("Clone aliases its receiver")
	}
}

// TestRippleAdderExhaustive checks all 4-bit additions with both carry-in
// values against integer arithmetic.
func TestRippleAdderExhaustive(t *testing.T) {
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			for cin := uint64(0); cin < 2; cin++ {
				sum, cout := RippleAdder(BusFromUint(a, 4), BusFromUint(b, 4), Bit(cin == 1))
				total := a + b + cin
				if sum.Uint() != total&0xf {
					t.Fatalf("%d+%d+%d sum = %d, want %d", a, b, cin, sum.Uint(), total&0xf)
				}
				if cout != Bit(total > 0xf) {
					t.Fatalf("%d+%d+%d cout = %v", a, b, cin, cout)
				}
			}
		}
	}
}

func TestRippleAdderWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on width mismatch")
		}
	}()
	RippleAdder(make(Bus, 3), make(Bus, 4), false)
}

// TestSaturatingAdderExhaustive checks all 3-bit saturating additions,
// the width used throughout the CEM circuit.
func TestSaturatingAdderExhaustive(t *testing.T) {
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			got := SaturatingAdder(BusFromUint(a, 3), BusFromUint(b, 3)).Uint()
			want := a + b
			if want > 7 {
				want = 7
			}
			if got != want {
				t.Fatalf("sat %d+%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAdderTreeMatchesSequentialSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		operands := make([]Bus, n)
		sum := uint64(0)
		for i := range operands {
			v := uint64(rng.Intn(8))
			sum += v
			operands[i] = BusFromUint(v, 3)
		}
		want := sum
		if want > 7 {
			want = 7
		}
		// The tree saturates per stage; when the true sum fits in the
		// width no stage can saturate, so equality must hold. When it
		// does not fit the tree must clamp at 7.
		got := AdderTree(operands...).Uint()
		if sum <= 7 && got != sum {
			t.Fatalf("AdderTree exact sum = %d, want %d", got, sum)
		}
		if sum > 7 && got != 7 {
			t.Fatalf("AdderTree overflow sum = %d, want saturated 7", got)
		}
	}
}

func TestAdderTreePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty AdderTree")
		}
	}()
	AdderTree()
}

func TestShiftRight(t *testing.T) {
	for v := uint64(0); v < 16; v++ {
		for n := 0; n < 5; n++ {
			if got := ShiftRight(BusFromUint(v, 4), n).Uint(); got != v>>uint(n) {
				t.Fatalf("ShiftRight(%d,%d) = %d, want %d", v, n, got, v>>uint(n))
			}
		}
	}
}

// TestBarrelShiftRightExhaustive verifies the mux-stack barrel shifter
// over every 4-bit value and 2-bit shift amount — the configuration used
// by the CEM circuit's divide-by-1/2/4 shifters.
func TestBarrelShiftRightExhaustive(t *testing.T) {
	for v := uint64(0); v < 16; v++ {
		for s := uint64(0); s < 4; s++ {
			got := BarrelShiftRight(BusFromUint(v, 4), BusFromUint(s, 2)).Uint()
			if got != v>>s {
				t.Fatalf("barrel %d>>%d = %d, want %d", v, s, got, v>>s)
			}
		}
	}
}

func TestEqualAndLessThanExhaustive(t *testing.T) {
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			ab, bb := BusFromUint(a, 4), BusFromUint(b, 4)
			if Equal(ab, bb) != Bit(a == b) {
				t.Fatalf("Equal(%d,%d) wrong", a, b)
			}
			if LessThan(ab, bb) != Bit(a < b) {
				t.Fatalf("LessThan(%d,%d) wrong", a, b)
			}
		}
	}
}

func TestIsZero(t *testing.T) {
	if IsZero(BusFromUint(0, 5)) != Bit(true) {
		t.Error("IsZero(0) = false")
	}
	if IsZero(BusFromUint(4, 5)) != Bit(false) {
		t.Error("IsZero(4) = true")
	}
}

func TestDecoderOneHot(t *testing.T) {
	for v := uint64(0); v < 8; v++ {
		out := Decoder(BusFromUint(v, 3))
		if len(out) != 8 {
			t.Fatalf("Decoder width %d, want 8", len(out))
		}
		for i, line := range out {
			if line != Bit(uint64(i) == v) {
				t.Fatalf("Decoder(%d) line %d = %v", v, i, line)
			}
		}
	}
}

func TestPriorityEncoder(t *testing.T) {
	// No line set: invalid.
	if _, valid := PriorityEncoder(make(Bus, 8)); valid {
		t.Error("PriorityEncoder of zero input reported valid")
	}
	// Every single-line case plus every two-line case: lowest index wins.
	for lo := 0; lo < 8; lo++ {
		for hi := lo; hi < 8; hi++ {
			in := make(Bus, 8)
			in[lo] = true
			in[hi] = true
			idx, valid := PriorityEncoder(in)
			if !valid || idx.Uint() != uint64(lo) {
				t.Fatalf("PriorityEncoder lines {%d,%d} = %d valid=%v, want %d", lo, hi, idx.Uint(), valid, lo)
			}
		}
	}
}

func TestMuxBus(t *testing.T) {
	in := []Bus{BusFromUint(1, 3), BusFromUint(3, 3), BusFromUint(5, 3), BusFromUint(7, 3)}
	for s := uint64(0); s < 4; s++ {
		got := MuxBus(BusFromUint(s, 2), in...)
		if got.Uint() != in[s].Uint() {
			t.Fatalf("MuxBus(%d) = %d, want %d", s, got.Uint(), in[s].Uint())
		}
	}
}

func TestMuxBusPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range select")
		}
	}()
	MuxBus(BusFromUint(3, 2), BusFromUint(0, 1), BusFromUint(1, 1))
}

func TestPopCount(t *testing.T) {
	for v := uint64(0); v < 1<<7; v++ {
		in := BusFromUint(v, 7)
		want := uint64(0)
		for i := 0; i < 7; i++ {
			want += v >> uint(i) & 1
		}
		if got := PopCount(in).Uint(); got != want {
			t.Fatalf("PopCount(%07b) = %d, want %d", v, got, want)
		}
	}
}

func TestPopCountEmpty(t *testing.T) {
	if got := PopCount(nil).Uint(); got != 0 {
		t.Errorf("PopCount(nil) = %d, want 0", got)
	}
}
