package logic

import "testing"

func TestNetlistInputsAndConstants(t *testing.T) {
	n := NewNetlist("t")
	in := n.Inputs(3)
	if len(in) != 3 {
		t.Fatalf("Inputs(3) returned %d signals", len(in))
	}
	c := n.Constant()
	cost := n.Cost()
	if cost.Inputs != 3 {
		t.Errorf("inputs = %d", cost.Inputs)
	}
	if cost.Depth != 0 {
		t.Errorf("depth of wiring-only netlist = %d", cost.Depth)
	}
	_ = c
}

func TestNetlistGateDepths(t *testing.T) {
	n := NewNetlist("t")
	a, b := n.Input(), n.Input()
	x := n.And2(a, b) // depth 1
	y := n.Or2(x, a)  // depth 2
	z := n.Not(y)     // depth 3
	_ = n.Xor2(z, b)  // depth 4
	if got := n.Cost().Depth; got != 4 {
		t.Errorf("depth = %d, want 4", got)
	}
}

func TestNetlistReduceTreeDepth(t *testing.T) {
	n := NewNetlist("t")
	in := n.Inputs(8)
	n.And(in...)
	// A balanced 8-input AND tree is 3 levels deep with 7 gates.
	c := n.Cost()
	if c.Depth != 3 {
		t.Errorf("8-input AND depth = %d, want 3", c.Depth)
	}
	if c.Gates["and"] != 7 {
		t.Errorf("8-input AND gates = %d, want 7", c.Gates["and"])
	}
	// Single-signal reduce is a wire.
	m := NewNetlist("t2")
	s := m.Input()
	if m.Or(s) != s {
		t.Error("single-input Or is not the identity")
	}
}

func TestNetlistAdders(t *testing.T) {
	n := NewNetlist("t")
	a := n.Inputs(3)
	b := n.Inputs(3)
	sum, _ := n.RippleAdder(a, b, n.Constant())
	if len(sum) != 3 {
		t.Fatalf("sum width %d", len(sum))
	}
	sat := n.SaturatingAdder(a, b)
	if len(sat) != 3 {
		t.Fatalf("saturating sum width %d", len(sat))
	}
	if n.Cost().Gates["xor"] == 0 {
		t.Error("adders built no XORs")
	}
}

func TestNetlistBarrelShift(t *testing.T) {
	n := NewNetlist("t")
	out := n.BarrelShiftRight(n.Inputs(4), n.Inputs(2))
	if len(out) != 4 {
		t.Fatalf("shift output width %d", len(out))
	}
	if n.Cost().Gates["mux"] != 8 { // 4 bits x 2 stages
		t.Errorf("muxes = %d, want 8", n.Cost().Gates["mux"])
	}
}

func TestNetlistComparators(t *testing.T) {
	n := NewNetlist("t")
	a, b := n.Inputs(4), n.Inputs(4)
	n.Equal(a, b)
	n.LessThan(a, b)
	if n.Cost().Gates["xor"] == 0 || n.Cost().Gates["and"] == 0 {
		t.Error("comparators built no logic")
	}
}

func TestNetlistPanics(t *testing.T) {
	cases := map[string]func(){
		"gate without inputs": func() {
			n := NewNetlist("t")
			n.And()
		},
		"adder width mismatch": func() {
			n := NewNetlist("t")
			n.RippleAdder(n.Inputs(2), n.Inputs(3), n.Constant())
		},
		"equal width mismatch": func() {
			n := NewNetlist("t")
			n.Equal(n.Inputs(2), n.Inputs(3))
		},
		"lessthan width mismatch": func() {
			n := NewNetlist("t")
			n.LessThan(n.Inputs(2), n.Inputs(3))
		},
		"undefined signal": func() {
			n := NewNetlist("t")
			n.Not(Signal(99))
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTwoInputEquivalentWeights(t *testing.T) {
	c := Cost{Gates: map[string]int{"and": 2, "or": 1, "xor": 1, "mux": 2, "not": 3}}
	// 2 + 1 + 1 + 2*3 + ceil(3/2) = 12.
	if got := c.TwoInputEquivalent(); got != 12 {
		t.Errorf("TwoInputEquivalent = %d, want 12", got)
	}
}
