package logic

import "fmt"

// Netlist builds combinational circuits as explicit gate graphs so their
// hardware cost — gate count by kind and critical-path depth — can be
// reported. The paper's pitch for the selection unit is that it is a
// "fast and efficient micro-architectural solution"; the netlist models
// let the repo quantify that claim for every circuit figure.
//
// Signals are identified by opaque handles; inputs have depth 0 and each
// gate's depth is one more than its deepest input. Gates with a single
// input (NOT) and wiring (fan-out, constants) are counted separately from
// 2-input logic, which is the conventional unit of comparison.
type Netlist struct {
	name   string
	inputs int
	gates  []gate
	depth  []int // per signal
	counts map[string]int
}

// Signal is a handle to a named wire in a netlist.
type Signal int

type gate struct {
	kind string
	in   []Signal
}

// NewNetlist starts an empty circuit.
func NewNetlist(name string) *Netlist {
	return &Netlist{name: name, counts: map[string]int{}}
}

// Input declares a primary input and returns its signal.
func (n *Netlist) Input() Signal {
	n.inputs++
	n.depth = append(n.depth, 0)
	n.gates = append(n.gates, gate{kind: "input"})
	return Signal(len(n.gates) - 1)
}

// Inputs declares w primary inputs (a bus).
func (n *Netlist) Inputs(w int) []Signal {
	out := make([]Signal, w)
	for i := range out {
		out[i] = n.Input()
	}
	return out
}

// Constant declares a tied-off signal (no gate cost, depth 0).
func (n *Netlist) Constant() Signal {
	n.depth = append(n.depth, 0)
	n.gates = append(n.gates, gate{kind: "const"})
	return Signal(len(n.gates) - 1)
}

// addGate appends a gate and computes its depth.
func (n *Netlist) addGate(kind string, in ...Signal) Signal {
	if len(in) == 0 {
		panic("logic: netlist gate with no inputs")
	}
	d := 0
	for _, s := range in {
		if int(s) >= len(n.depth) {
			panic(fmt.Sprintf("logic: netlist %s: undefined signal %d", n.name, s))
		}
		if n.depth[s] > d {
			d = n.depth[s]
		}
	}
	n.counts[kind]++
	n.depth = append(n.depth, d+1)
	n.gates = append(n.gates, gate{kind: kind, in: in})
	return Signal(len(n.gates) - 1)
}

// Not adds an inverter.
func (n *Netlist) Not(a Signal) Signal { return n.addGate("not", a) }

// And2 adds a 2-input AND.
func (n *Netlist) And2(a, b Signal) Signal { return n.addGate("and", a, b) }

// Or2 adds a 2-input OR.
func (n *Netlist) Or2(a, b Signal) Signal { return n.addGate("or", a, b) }

// Xor2 adds a 2-input XOR.
func (n *Netlist) Xor2(a, b Signal) Signal { return n.addGate("xor", a, b) }

// And reduces any number of signals with a balanced tree of 2-input ANDs.
func (n *Netlist) And(in ...Signal) Signal { return n.reduce("and", in) }

// Or reduces any number of signals with a balanced tree of 2-input ORs.
func (n *Netlist) Or(in ...Signal) Signal { return n.reduce("or", in) }

func (n *Netlist) reduce(kind string, in []Signal) Signal {
	switch len(in) {
	case 0:
		panic("logic: netlist reduce of nothing")
	case 1:
		return in[0]
	}
	mid := len(in) / 2
	return n.addGate(kind, n.reduce(kind, in[:mid]), n.reduce(kind, in[mid:]))
}

// Mux2 adds a 2:1 multiplexer (counted as one mux; depth 1).
func (n *Netlist) Mux2(sel, a, b Signal) Signal { return n.addGate("mux", sel, a, b) }

// FullAdder adds a full adder cell, returning sum and carry.
func (n *Netlist) FullAdder(a, b, cin Signal) (sum, cout Signal) {
	s1 := n.Xor2(a, b)
	sum = n.Xor2(s1, cin)
	c1 := n.And2(a, b)
	c2 := n.And2(s1, cin)
	cout = n.Or2(c1, c2)
	return sum, cout
}

// RippleAdder adds two equal-width buses, returning the sum bus and
// carry-out.
func (n *Netlist) RippleAdder(a, b []Signal, cin Signal) (sum []Signal, cout Signal) {
	if len(a) != len(b) {
		panic("logic: netlist adder width mismatch")
	}
	sum = make([]Signal, len(a))
	c := cin
	for i := range a {
		sum[i], c = n.FullAdder(a[i], b[i], c)
	}
	return sum, c
}

// SaturatingAdder adds with clamp-to-max on carry out.
func (n *Netlist) SaturatingAdder(a, b []Signal) []Signal {
	sum, cout := n.RippleAdder(a, b, n.Constant())
	out := make([]Signal, len(sum))
	for i := range sum {
		out[i] = n.Or2(sum[i], cout)
	}
	return out
}

// BarrelShiftRight builds the logarithmic mux stack for a right shift.
func (n *Netlist) BarrelShiftRight(a []Signal, shift []Signal) []Signal {
	zero := n.Constant()
	cur := append([]Signal(nil), a...)
	for stage, sel := range shift {
		k := 1 << uint(stage)
		next := make([]Signal, len(cur))
		for i := range cur {
			shifted := zero
			if i+k < len(cur) {
				shifted = cur[i+k]
			}
			next[i] = n.Mux2(sel, cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// Equal builds an equality comparator over two equal-width buses.
func (n *Netlist) Equal(a, b []Signal) Signal {
	if len(a) != len(b) {
		panic("logic: netlist equal width mismatch")
	}
	terms := make([]Signal, len(a))
	for i := range a {
		terms[i] = n.Not(n.Xor2(a[i], b[i]))
	}
	return n.And(terms...)
}

// LessThan builds an unsigned a<b comparator (MSB-first chain).
func (n *Netlist) LessThan(a, b []Signal) Signal {
	if len(a) != len(b) {
		panic("logic: netlist lessthan width mismatch")
	}
	lt := n.Constant()
	eq := n.Not(n.Constant()) // constant 1 via an inverter on constant 0
	for i := len(a) - 1; i >= 0; i-- {
		term := n.And2(n.And2(eq, n.Not(a[i])), b[i])
		lt = n.Or2(lt, term)
		eq = n.And2(eq, n.Not(n.Xor2(a[i], b[i])))
	}
	return lt
}

// Cost summarises a netlist.
type Cost struct {
	Name   string
	Inputs int
	Gates  map[string]int // per kind: and, or, xor, not, mux
	Depth  int            // critical path over all signals
}

// TwoInputEquivalent returns the conventional 2-input-gate count: AND,
// OR, XOR count 1; NOT counts 0.5 rounded up in total; MUX counts 3
// (two ANDs + OR with an inverter amortised).
func (c Cost) TwoInputEquivalent() int {
	total := c.Gates["and"] + c.Gates["or"] + c.Gates["xor"] + c.Gates["mux"]*3
	total += (c.Gates["not"] + 1) / 2
	return total
}

// Cost computes the netlist's summary.
func (n *Netlist) Cost() Cost {
	depth := 0
	for _, d := range n.depth {
		if d > depth {
			depth = d
		}
	}
	gates := make(map[string]int, len(n.counts))
	for k, v := range n.counts {
		gates[k] = v
	}
	return Cost{Name: n.name, Inputs: n.inputs, Gates: gates, Depth: depth}
}
