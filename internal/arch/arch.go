// Package arch defines the architectural constants shared by every other
// package in the simulator: the functional-unit taxonomy, the 3-bit
// resource-type encodings from Table 1 of the paper, per-unit slot costs,
// and the sizing constants of the reference machine (five fixed functional
// units, eight reconfigurable slots, a seven-entry instruction queue).
//
// The package is dependency-free on purpose; it sits at the bottom of the
// import graph.
package arch

import "fmt"

// UnitType identifies one of the five functional-unit classes of the
// architecture. Every instruction of the ISA is serviced by exactly one
// unit type (a stated assumption of the paper, §2).
type UnitType uint8

// The five functional-unit types, in the order the paper lists them.
const (
	IntALU UnitType = iota // integer arithmetic/logic unit
	IntMDU                 // integer multiply/divide unit
	LSU                    // load/store unit
	FPALU                  // floating-point arithmetic/logic unit
	FPMDU                  // floating-point multiply/divide unit

	// NumUnitTypes is the number of functional-unit classes.
	NumUnitTypes = 5
)

var unitNames = [NumUnitTypes]string{"IntALU", "IntMDU", "LSU", "FPALU", "FPMDU"}

// String returns the paper's name for the unit type.
func (t UnitType) String() string {
	if int(t) < len(unitNames) {
		return unitNames[t]
	}
	return fmt.Sprintf("UnitType(%d)", uint8(t))
}

// Valid reports whether t names one of the five unit types.
func (t UnitType) Valid() bool { return t < NumUnitTypes }

// ParseUnit resolves a unit-type name ("IntALU", "FPMDU", ...); ok is
// false for unknown names.
func ParseUnit(name string) (UnitType, bool) {
	for i, n := range unitNames {
		if n == name {
			return UnitType(i), true
		}
	}
	return 0, false
}

// UnitTypes returns all unit types in canonical order. The returned slice
// is freshly allocated; callers may modify it.
func UnitTypes() []UnitType {
	return []UnitType{IntALU, IntMDU, LSU, FPALU, FPMDU}
}

// Encoding is the 3-bit resource-type code stored in the resource
// allocation vector (Table 1, rightmost column). Codes 1-5 name the unit
// types; EncEmpty marks an unconfigured slot and EncCont marks a slot that
// holds the continuation of a multi-slot unit whose first slot carries the
// unit's own encoding (§3.2).
type Encoding uint8

const (
	// EncEmpty marks a reconfigurable slot with no unit configured.
	EncEmpty Encoding = 0
	// EncIntALU .. EncFPMDU are the encodings of the five unit types.
	EncIntALU Encoding = 1
	EncIntMDU Encoding = 2
	EncLSU    Encoding = 3
	EncFPALU  Encoding = 4
	EncFPMDU  Encoding = 5
	// EncCont marks a slot occupied by the continuation of a multi-slot
	// unit. The paper's exact code for this case is garbled in the source
	// text; 0b111 is our documented choice (DESIGN.md §2).
	EncCont Encoding = 7

	// EncodingBits is the width of a resource-type encoding.
	EncodingBits = 3
)

// Encode returns the allocation-vector encoding of a unit type.
func Encode(t UnitType) Encoding { return Encoding(t) + 1 }

// DecodeUnit returns the unit type named by e. ok is false for EncEmpty,
// EncCont and out-of-range codes.
func DecodeUnit(e Encoding) (t UnitType, ok bool) {
	if e >= EncIntALU && e <= EncFPMDU {
		return UnitType(e - 1), true
	}
	return 0, false
}

// String renders the encoding for traces and dumps.
func (e Encoding) String() string {
	switch {
	case e == EncEmpty:
		return "empty"
	case e == EncCont:
		return "cont"
	default:
		if t, ok := DecodeUnit(e); ok {
			return t.String()
		}
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// SlotCost returns the number of reconfigurable slots a unit of type t
// occupies: IntALUs and LSUs fit one slot, IntMDUs span two, FP units span
// three (§4.2 of the paper).
func SlotCost(t UnitType) int {
	switch t {
	case IntALU, LSU:
		return 1
	case IntMDU:
		return 2
	case FPALU, FPMDU:
		return 3
	}
	panic(fmt.Sprintf("arch: SlotCost of invalid unit type %d", uint8(t)))
}

// Reference-machine sizing constants (Fig. 1).
const (
	// NumRFUSlots is the number of reconfigurable slots in the fabric.
	NumRFUSlots = 8
	// NumFFUs is the number of fixed functional units: one per type.
	NumFFUs = NumUnitTypes
	// QueueSize is the number of instruction-queue / wake-up-array
	// entries; the paper assumes seven so that per-type requirement
	// counts fit in three bits.
	QueueSize = 7
	// NumConfigs is the number of candidate configurations scored by the
	// selection unit: the current configuration plus three predefined
	// steering configurations.
	NumConfigs = 4
	// CountBits is the width of a per-type requirement count; with at
	// most QueueSize=7 queued instructions three bits suffice (§3.1).
	CountBits = 3
)

// Counts holds one small integer per unit type, used for both requirement
// counts (how many units of each type the queued instructions need) and
// availability counts (how many are configured). It is a value type;
// copies are independent.
type Counts [NumUnitTypes]int

// Total returns the sum over all unit types.
func (c Counts) Total() int {
	n := 0
	for _, v := range c {
		n += v
	}
	return n
}

// Add returns the elementwise sum c + d.
func (c Counts) Add(d Counts) Counts {
	for t := range c {
		c[t] += d[t]
	}
	return c
}

// String renders the counts as "IntALU:n IntMDU:n LSU:n FPALU:n FPMDU:n".
func (c Counts) String() string {
	s := ""
	for t, v := range c {
		if t > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", UnitType(t), v)
	}
	return s
}

// Slots returns the total number of reconfigurable slots the counted units
// would occupy.
func (c Counts) Slots() int {
	n := 0
	for t, v := range c {
		n += v * SlotCost(UnitType(t))
	}
	return n
}
