package arch

import (
	"testing"
	"testing/quick"
)

func TestUnitTypeString(t *testing.T) {
	want := map[UnitType]string{
		IntALU: "IntALU",
		IntMDU: "IntMDU",
		LSU:    "LSU",
		FPALU:  "FPALU",
		FPMDU:  "FPMDU",
	}
	for u, s := range want {
		if got := u.String(); got != s {
			t.Errorf("UnitType(%d).String() = %q, want %q", u, got, s)
		}
	}
	if got := UnitType(9).String(); got != "UnitType(9)" {
		t.Errorf("invalid type String() = %q", got)
	}
}

func TestUnitTypesOrder(t *testing.T) {
	ts := UnitTypes()
	if len(ts) != NumUnitTypes {
		t.Fatalf("UnitTypes() has %d entries, want %d", len(ts), NumUnitTypes)
	}
	for i, u := range ts {
		if int(u) != i {
			t.Errorf("UnitTypes()[%d] = %v, want ordinal %d", i, u, i)
		}
		if !u.Valid() {
			t.Errorf("UnitTypes()[%d] = %v not Valid", i, u)
		}
	}
	if UnitType(NumUnitTypes).Valid() {
		t.Error("UnitType(NumUnitTypes).Valid() = true, want false")
	}
}

// TestTable1Encodings pins the 3-bit resource-type encodings of Table 1.
func TestTable1Encodings(t *testing.T) {
	cases := []struct {
		t   UnitType
		enc Encoding
	}{
		{IntALU, 1}, {IntMDU, 2}, {LSU, 3}, {FPALU, 4}, {FPMDU, 5},
	}
	for _, c := range cases {
		if got := Encode(c.t); got != c.enc {
			t.Errorf("Encode(%v) = %d, want %d", c.t, got, c.enc)
		}
		u, ok := DecodeUnit(c.enc)
		if !ok || u != c.t {
			t.Errorf("DecodeUnit(%d) = %v, %v; want %v, true", c.enc, u, ok, c.t)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, u := range UnitTypes() {
		got, ok := DecodeUnit(Encode(u))
		if !ok || got != u {
			t.Errorf("DecodeUnit(Encode(%v)) = %v, %v", u, got, ok)
		}
	}
}

func TestDecodeUnitRejectsSpecialCodes(t *testing.T) {
	for _, e := range []Encoding{EncEmpty, EncCont, 6} {
		if _, ok := DecodeUnit(e); ok {
			t.Errorf("DecodeUnit(%d) ok, want rejected", e)
		}
	}
}

func TestEncodingFitsThreeBits(t *testing.T) {
	for _, u := range UnitTypes() {
		if e := Encode(u); e >= 1<<EncodingBits {
			t.Errorf("Encode(%v) = %d does not fit in %d bits", u, e, EncodingBits)
		}
	}
	if EncCont >= 1<<EncodingBits {
		t.Errorf("EncCont = %d does not fit in %d bits", EncCont, EncodingBits)
	}
}

func TestEncodingString(t *testing.T) {
	if got := EncEmpty.String(); got != "empty" {
		t.Errorf("EncEmpty.String() = %q", got)
	}
	if got := EncCont.String(); got != "cont" {
		t.Errorf("EncCont.String() = %q", got)
	}
	if got := EncLSU.String(); got != "LSU" {
		t.Errorf("EncLSU.String() = %q", got)
	}
	if got := Encoding(6).String(); got != "Encoding(6)" {
		t.Errorf("Encoding(6).String() = %q", got)
	}
}

// TestSlotCosts pins the paper's slot costs: 1 for IntALU and LSU, 2 for
// IntMDU, 3 for the FP units.
func TestSlotCosts(t *testing.T) {
	want := map[UnitType]int{IntALU: 1, LSU: 1, IntMDU: 2, FPALU: 3, FPMDU: 3}
	for u, n := range want {
		if got := SlotCost(u); got != n {
			t.Errorf("SlotCost(%v) = %d, want %d", u, got, n)
		}
	}
}

func TestSlotCostPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SlotCost(invalid) did not panic")
		}
	}()
	SlotCost(UnitType(99))
}

func TestCountsTotalAndAdd(t *testing.T) {
	a := Counts{1, 2, 3, 0, 1}
	b := Counts{0, 1, 0, 4, 0}
	if got := a.Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
	sum := a.Add(b)
	want := Counts{1, 3, 3, 4, 1}
	if sum != want {
		t.Errorf("Add = %v, want %v", sum, want)
	}
	// Add must not mutate its receiver (value semantics).
	if a != (Counts{1, 2, 3, 0, 1}) {
		t.Errorf("Add mutated receiver: %v", a)
	}
}

func TestCountsAddCommutative(t *testing.T) {
	f := func(a, b Counts) bool {
		// Bound the values so overflow cannot hide a real failure.
		for i := range a {
			a[i] &= 0xff
			b[i] &= 0xff
		}
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountsSlots(t *testing.T) {
	// 2 IntALU(1) + 1 IntMDU(2) + 1 LSU(1) + 1 FPALU(3) = 8 slots.
	c := Counts{2, 1, 1, 1, 0}
	if got := c.Slots(); got != 8 {
		t.Errorf("Slots = %d, want 8", got)
	}
	if got := (Counts{}).Slots(); got != 0 {
		t.Errorf("zero Counts Slots = %d, want 0", got)
	}
}

func TestCountsString(t *testing.T) {
	c := Counts{1, 0, 2, 0, 0}
	want := "IntALU:1 IntMDU:0 LSU:2 FPALU:0 FPMDU:0"
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestReferenceMachineConstants(t *testing.T) {
	if NumRFUSlots != 8 || NumFFUs != 5 || QueueSize != 7 || NumConfigs != 4 {
		t.Errorf("reference constants changed: slots=%d ffus=%d queue=%d configs=%d",
			NumRFUSlots, NumFFUs, QueueSize, NumConfigs)
	}
	// Three bits must hold any per-type requirement count.
	if QueueSize >= 1<<CountBits {
		t.Errorf("QueueSize %d does not fit in %d bits", QueueSize, CountBits)
	}
}
