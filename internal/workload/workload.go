// Package workload supplies the programs the experiments run: a library
// of real assembly kernels (with input setup and output validation) and a
// synthetic generator that produces phase-structured instruction streams
// with controlled unit-type mixes — the workload shape that motivates
// configuration steering.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Kernel is one benchmark program: assembly source, input setup and
// output validation so runs are checked end to end.
type Kernel struct {
	Name        string
	Description string
	Source      string
	// Setup presets registers and memory before the run.
	Setup func(m *mem.Memory, setReg func(r uint8, v uint32))
	// Validate checks the architectural outcome after the run.
	Validate func(reg func(r uint8) uint32, m *mem.Memory) error

	prog isa.Program
}

// Program returns the assembled kernel, assembling on first use.
func (k *Kernel) Program() isa.Program {
	if k.prog == nil {
		k.prog = isa.MustAssemble(k.Source)
	}
	return k.prog
}

// Kernels returns the benchmark library. The slice is freshly allocated;
// kernels themselves are shared.
func Kernels() []*Kernel {
	base := []*Kernel{dotProduct, saxpy, matmul, memcopy, checksum, vecmax, histogram, newton}
	return append(base, extraKernels...)
}

// KernelByName returns the named kernel or nil.
func KernelByName(name string) *Kernel {
	for _, k := range Kernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

const (
	arrayA   = 0x1000 // input array A base
	arrayB   = 0x2000 // input array B base
	arrayOut = 0x3000 // output base
	arrayN   = 64     // default element count
)

var dotProduct = &Kernel{
	Name:        "dot",
	Description: "integer dot product of two 64-element vectors (IntALU/IntMDU/LSU)",
	Source: `
		li r10, 0x1000
		li r11, 0x2000
		li r12, 64
		li r1, 0      ; i
		li r2, 0      ; acc
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		lw r3, 0(r6)
		add r7, r5, r11
		lw r4, 0(r7)
		mul r8, r3, r4
		add r2, r2, r8
		addi r1, r1, 1
		bne r1, r12, loop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < arrayN; i++ {
			m.StoreWord(arrayA+uint32(4*i), uint32(i+1))
			m.StoreWord(arrayB+uint32(4*i), uint32(2*i+1))
		}
	},
	Validate: func(reg func(uint8) uint32, _ *mem.Memory) error {
		want := uint32(0)
		for i := 0; i < arrayN; i++ {
			want += uint32(i+1) * uint32(2*i+1)
		}
		if got := reg(2); got != want {
			return fmt.Errorf("dot product = %d, want %d", got, want)
		}
		return nil
	},
}

var saxpy = &Kernel{
	Name:        "saxpy",
	Description: "single-precision a*x+y over 64 elements (FPALU/FPMDU/LSU)",
	Source: `
		li r10, 0x1000
		li r11, 0x2000
		li r12, 0x3000
		li r13, 64
		li r1, 0
		li r2, 3
		fcvt.s.w f1, r2   ; a = 3.0
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		flw f2, 0(r6)
		add r7, r5, r11
		flw f3, 0(r7)
		fmul f4, f1, f2
		fadd f5, f4, f3
		add r8, r5, r12
		fsw f5, 0(r8)
		addi r1, r1, 1
		bne r1, r13, loop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < arrayN; i++ {
			m.StoreWord(arrayA+uint32(4*i), math.Float32bits(float32(i)))
			m.StoreWord(arrayB+uint32(4*i), math.Float32bits(float32(i)/2))
		}
	},
	Validate: func(_ func(uint8) uint32, m *mem.Memory) error {
		for i := 0; i < arrayN; i++ {
			want := 3*float32(i) + float32(i)/2
			got := math.Float32frombits(m.LoadWord(arrayOut + uint32(4*i)))
			if got != want {
				return fmt.Errorf("saxpy[%d] = %v, want %v", i, got, want)
			}
		}
		return nil
	},
}

var matmul = &Kernel{
	Name:        "matmul",
	Description: "8x8 single-precision matrix multiply (FP-dominated with memory traffic)",
	Source: `
		li r10, 0x1000   ; A
		li r11, 0x2000   ; B
		li r12, 0x3000   ; C
		li r13, 8        ; n
		li r1, 0         ; i
	iloop:
		li r2, 0         ; j
	jloop:
		li r3, 0         ; k
		li r4, 0
		fcvt.s.w f1, r4  ; acc = 0
	kloop:
		; A[i][k]
		mul r5, r1, r13
		add r5, r5, r3
		slli r5, r5, 2
		add r5, r5, r10
		flw f2, 0(r5)
		; B[k][j]
		mul r6, r3, r13
		add r6, r6, r2
		slli r6, r6, 2
		add r6, r6, r11
		flw f3, 0(r6)
		fmul f4, f2, f3
		fadd f1, f1, f4
		addi r3, r3, 1
		bne r3, r13, kloop
		; C[i][j]
		mul r7, r1, r13
		add r7, r7, r2
		slli r7, r7, 2
		add r7, r7, r12
		fsw f1, 0(r7)
		addi r2, r2, 1
		bne r2, r13, jloop
		addi r1, r1, 1
		bne r1, r13, iloop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 64; i++ {
			m.StoreWord(arrayA+uint32(4*i), math.Float32bits(float32(i%7)))
			m.StoreWord(arrayB+uint32(4*i), math.Float32bits(float32(i%5)))
		}
	},
	Validate: func(_ func(uint8) uint32, m *mem.Memory) error {
		const n = 8
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var want float32
				for k := 0; k < n; k++ {
					a := float32((i*n + k) % 7)
					b := float32((k*n + j) % 5)
					want += a * b
				}
				got := math.Float32frombits(m.LoadWord(arrayOut + uint32(4*(i*n+j))))
				if got != want {
					return fmt.Errorf("C[%d][%d] = %v, want %v", i, j, got, want)
				}
			}
		}
		return nil
	},
}

var memcopy = &Kernel{
	Name:        "memcpy",
	Description: "word copy of 256 words (LSU-dominated)",
	Source: `
		li r10, 0x1000
		li r11, 0x3000
		li r12, 256
		li r1, 0
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		lw r3, 0(r6)
		add r7, r5, r11
		sw r3, 0(r7)
		addi r1, r1, 1
		bne r1, r12, loop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 256; i++ {
			m.StoreWord(arrayA+uint32(4*i), uint32(i*i+7))
		}
	},
	Validate: func(_ func(uint8) uint32, m *mem.Memory) error {
		for i := 0; i < 256; i++ {
			if got, want := m.LoadWord(arrayOut+uint32(4*i)), uint32(i*i+7); got != want {
				return fmt.Errorf("copy[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	},
}

var checksum = &Kernel{
	Name:        "checksum",
	Description: "multiplicative rolling checksum over 128 words (IntALU/IntMDU mix)",
	Source: `
		li r10, 0x1000
		li r11, 128
		li r1, 0
		li r2, 1      ; hash
		li r3, 31
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		lw r4, 0(r6)
		mul r2, r2, r3
		add r2, r2, r4
		addi r1, r1, 1
		bne r1, r11, loop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 128; i++ {
			m.StoreWord(arrayA+uint32(4*i), uint32(i*2654435761))
		}
	},
	Validate: func(reg func(uint8) uint32, _ *mem.Memory) error {
		want := uint32(1)
		for i := 0; i < 128; i++ {
			want = want*31 + uint32(i*2654435761)
		}
		if got := reg(2); got != want {
			return fmt.Errorf("checksum = %#x, want %#x", got, want)
		}
		return nil
	},
}

var vecmax = &Kernel{
	Name:        "vecmax",
	Description: "maximum of a 64-element float vector (FPALU compares)",
	Source: `
		li r10, 0x1000
		li r11, 64
		li r1, 1
		flw f1, 0(r10)   ; max = v[0]
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		flw f2, 0(r6)
		fmax f1, f1, f2
		addi r1, r1, 1
		bne r1, r11, loop
		fcvt.w.s r2, f1
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < arrayN; i++ {
			v := float32((i * 37 % 101)) // max value 100 at i such that i*37%101 == 100
			m.StoreWord(arrayA+uint32(4*i), math.Float32bits(v))
		}
	},
	Validate: func(reg func(uint8) uint32, _ *mem.Memory) error {
		want := int32(0)
		for i := 0; i < arrayN; i++ {
			if v := int32(i * 37 % 101); v > want {
				want = v
			}
		}
		if got := int32(reg(2)); got != want {
			return fmt.Errorf("vecmax = %d, want %d", got, want)
		}
		return nil
	},
}

var histogram = &Kernel{
	Name:        "histogram",
	Description: "16-bucket histogram of 256 values (LSU read-modify-write)",
	Source: `
		li r10, 0x1000
		li r11, 0x3000
		li r12, 256
		li r1, 0
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		lw r3, 0(r6)
		andi r3, r3, 15
		slli r3, r3, 2
		add r7, r3, r11
		lw r4, 0(r7)
		addi r4, r4, 1
		sw r4, 0(r7)
		addi r1, r1, 1
		bne r1, r12, loop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 256; i++ {
			m.StoreWord(arrayA+uint32(4*i), uint32(i*7+3))
		}
	},
	Validate: func(_ func(uint8) uint32, m *mem.Memory) error {
		var want [16]uint32
		for i := 0; i < 256; i++ {
			want[(i*7+3)%16]++
		}
		for b := 0; b < 16; b++ {
			if got := m.LoadWord(arrayOut + uint32(4*b)); got != want[b] {
				return fmt.Errorf("bucket %d = %d, want %d", b, got, want[b])
			}
		}
		return nil
	},
}

var newton = &Kernel{
	Name:        "newton",
	Description: "Newton iteration for sqrt of 64 values (FPMDU divides, serial chains)",
	Source: `
		li r10, 0x1000
		li r11, 0x3000
		li r12, 64
		li r1, 0
		li r2, 2
		fcvt.s.w f9, r2   ; 2.0
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		flw f1, 0(r6)     ; x
		fadd f2, f1, f9   ; guess
		; three Newton steps: g = (g + x/g) / 2
		fdiv f3, f1, f2
		fadd f2, f2, f3
		fdiv f2, f2, f9
		fdiv f3, f1, f2
		fadd f2, f2, f3
		fdiv f2, f2, f9
		fdiv f3, f1, f2
		fadd f2, f2, f3
		fdiv f2, f2, f9
		add r7, r5, r11
		fsw f2, 0(r7)
		addi r1, r1, 1
		bne r1, r12, loop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < arrayN; i++ {
			m.StoreWord(arrayA+uint32(4*i), math.Float32bits(float32(i+1)))
		}
	},
	Validate: func(_ func(uint8) uint32, m *mem.Memory) error {
		for i := 0; i < arrayN; i++ {
			x := float32(i + 1)
			g := x + 2
			for step := 0; step < 3; step++ {
				g = (g + x/g) / 2
			}
			got := math.Float32frombits(m.LoadWord(arrayOut + uint32(4*i)))
			if got != g {
				return fmt.Errorf("newton[%d] = %v, want %v", i, got, g)
			}
		}
		return nil
	},
}

// Mix is a unit-type demand profile: relative weights per unit type.
type Mix [arch.NumUnitTypes]float64

// Standard mixes used throughout the experiments.
var (
	MixIntHeavy = Mix{0.70, 0.10, 0.20, 0, 0}
	MixFPHeavy  = Mix{0.10, 0, 0.20, 0.35, 0.35}
	MixMemHeavy = Mix{0.25, 0, 0.70, 0.05, 0}
	MixMDUHeavy = Mix{0.30, 0.45, 0.15, 0.05, 0.05}
	MixUniform  = Mix{0.20, 0.20, 0.20, 0.20, 0.20}
)

// Phase is one segment of a synthetic workload.
type Phase struct {
	Mix          Mix
	Instructions int
}

// AlternatingPhases builds a phase list that switches between the
// integer-heavy and FP-heavy mixes every period instructions until
// total instructions are covered (the last phase is truncated to fit).
// Feeding the result to Synthesize yields the phase-shifting workloads
// the prefetch policy's predictor is designed to exploit (experiment
// X20). Both arguments must be positive.
func AlternatingPhases(total, period int) []Phase {
	if total <= 0 || period <= 0 {
		panic(fmt.Sprintf("workload: AlternatingPhases needs positive total and period, got %d, %d", total, period))
	}
	mixes := [2]Mix{MixIntHeavy, MixFPHeavy}
	out := make([]Phase, 0, (total+period-1)/period)
	for i := 0; total > 0; i++ {
		n := period
		if n > total {
			n = total
		}
		out = append(out, Phase{Mix: mixes[i%2], Instructions: n})
		total -= n
	}
	return out
}

// SynthParams shapes the synthetic generator.
type SynthParams struct {
	// DepDensity is the probability each source register is drawn from
	// recently produced values, creating dependency chains (0..1,
	// default 0.5).
	DepDensity float64
	// Seed makes generation deterministic.
	Seed int64
}

// dataBase is where synthetic loads and stores land.
const dataBase = 0x4000

// Synthesize generates a straight-line program that walks through the
// given phases, drawing each instruction's unit type from the phase mix
// and its registers so that DepDensity controls how often instructions
// chain on recent results. The program ends with HALT and never branches,
// so its steering behaviour is a pure function of the demand sequence.
func Synthesize(phases []Phase, p SynthParams) isa.Program {
	if p.DepDensity == 0 {
		p.DepDensity = 0.5
	}
	rng := rand.New(rand.NewSource(p.Seed))

	var prog isa.Program
	// Preamble: base register for memory traffic and nonzero seeds in
	// the working registers.
	prog = append(prog,
		isa.New(isa.LUI, 20, 0, 0, dataBase>>isa.LUIShift),
		isa.New(isa.ADDI, 1, 0, 0, 3),
		isa.New(isa.ADDI, 2, 0, 0, 5),
		isa.New(isa.ADDI, 3, 0, 0, 7),
		isa.New(isa.FCVTSW, 1, 1, 0, 0),
		isa.New(isa.FCVTSW, 2, 2, 0, 0),
		isa.New(isa.FCVTSW, 3, 3, 0, 0),
	)

	// recent destination registers per class, for dependency chaining.
	recentInt := []uint8{1, 2, 3}
	recentFP := []uint8{1, 2, 3}

	pickSrc := func(fp bool) uint8 {
		recent := recentInt
		if fp {
			recent = recentFP
		}
		if rng.Float64() < p.DepDensity {
			return recent[rng.Intn(len(recent))]
		}
		if fp {
			return uint8(1 + rng.Intn(15))
		}
		return uint8(1 + rng.Intn(15))
	}
	pickDst := func(fp bool) uint8 {
		d := uint8(1 + rng.Intn(15))
		if fp {
			recentFP = append(recentFP[1:], d)
		} else {
			recentInt = append(recentInt[1:], d)
		}
		return d
	}
	offset := func() int32 { return int32(4 * rng.Intn(512)) }

	for _, phase := range phases {
		for i := 0; i < phase.Instructions; i++ {
			t := sample(rng, phase.Mix)
			var in isa.Inst
			switch t {
			case arch.IntALU:
				ops := []isa.Opcode{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL}
				in = isa.New(ops[rng.Intn(len(ops))], pickDst(false), pickSrc(false), pickSrc(false), 0)
			case arch.IntMDU:
				ops := []isa.Opcode{isa.MUL, isa.MULH, isa.DIV, isa.REM}
				in = isa.New(ops[rng.Intn(len(ops))], pickDst(false), pickSrc(false), pickSrc(false), 0)
			case arch.LSU:
				if rng.Intn(2) == 0 {
					in = isa.New(isa.LW, pickDst(false), 20, 0, offset())
				} else {
					in = isa.New(isa.SW, 0, 20, pickSrc(false), offset())
				}
			case arch.FPALU:
				ops := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMIN, isa.FMAX}
				in = isa.New(ops[rng.Intn(len(ops))], pickDst(true), pickSrc(true), pickSrc(true), 0)
			case arch.FPMDU:
				if rng.Intn(4) == 0 {
					in = isa.New(isa.FDIV, pickDst(true), pickSrc(true), pickSrc(true), 0)
				} else {
					in = isa.New(isa.FMUL, pickDst(true), pickSrc(true), pickSrc(true), 0)
				}
			}
			prog = append(prog, in)
		}
	}
	prog = append(prog, isa.New(isa.HALT, 0, 0, 0, 0))
	return prog
}

// sample draws a unit type from the mix's weights.
func sample(rng *rand.Rand, m Mix) arch.UnitType {
	total := 0.0
	for _, w := range m {
		if w < 0 {
			panic("workload: negative mix weight")
		}
		total += w
	}
	if total == 0 {
		panic("workload: empty mix")
	}
	x := rng.Float64() * total
	for t, w := range m {
		x -= w
		if x < 0 {
			return arch.UnitType(t)
		}
	}
	return arch.FPMDU
}

// MixString names a mix for reports.
func MixString(m Mix) string {
	parts := make([]string, arch.NumUnitTypes)
	for t, w := range m {
		parts[t] = fmt.Sprintf("%s=%.0f%%", arch.UnitType(t), w*100)
	}
	return strings.Join(parts, " ")
}
