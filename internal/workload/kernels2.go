package workload

import (
	"fmt"

	"repro/internal/mem"
)

// Second tranche of benchmark kernels: control-flow-heavy and
// serial-dependency shapes that stress the predictor, the wake-up array
// and the steering manager differently from the streaming kernels.

func init() {
	extraKernels = []*Kernel{bubbleSort, fib, mandel, transpose, strsearch, gcdBatch, recfib}
}

// extraKernels is appended to the base library by Kernels.
var extraKernels []*Kernel

var bubbleSort = &Kernel{
	Name:        "sort",
	Description: "bubble sort of 48 words (branch-heavy, LSU read-modify-write)",
	Source: `
		li r10, 0x1000
		li r11, 48       ; n
		addi r1, r11, -1 ; i = n-1
	outer:
		li r2, 0         ; j
	inner:
		slli r5, r2, 2
		add r6, r5, r10
		lw r3, 0(r6)
		lw r4, 4(r6)
		bge r4, r3, noswap
		sw r4, 0(r6)
		sw r3, 4(r6)
	noswap:
		addi r2, r2, 1
		bne r2, r1, inner
		addi r1, r1, -1
		bne r1, r0, outer
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 48; i++ {
			m.StoreWord(arrayA+uint32(4*i), uint32((i*31+17)%97))
		}
	},
	Validate: func(_ func(uint8) uint32, m *mem.Memory) error {
		prev := int32(-1)
		for i := 0; i < 48; i++ {
			v := int32(m.LoadWord(arrayA + uint32(4*i)))
			if v < prev {
				return fmt.Errorf("not sorted at %d: %d < %d", i, v, prev)
			}
			prev = v
		}
		return nil
	},
}

var fib = &Kernel{
	Name:        "fib",
	Description: "iterative Fibonacci(40) (pure serial IntALU dependency chain)",
	Source: `
		li r1, 40
		li r2, 0    ; a
		li r3, 1    ; b
	loop:
		add r4, r2, r3
		mv r2, r3
		mv r3, r4
		addi r1, r1, -1
		bne r1, r0, loop
		halt
	`,
	Validate: func(reg func(uint8) uint32, _ *mem.Memory) error {
		a, b := uint32(0), uint32(1)
		for i := 0; i < 40; i++ {
			a, b = b, a+b
		}
		if got := reg(2); got != a {
			return fmt.Errorf("fib = %d, want %d", got, a)
		}
		return nil
	},
}

var mandel = &Kernel{
	Name:        "mandel",
	Description: "Mandelbrot membership over an 8x8 grid (FP with data-dependent exits)",
	Source: `
		; for each point c = (cx, cy) in an 8x8 grid over [-2,2)^2:
		;   iterate z = z^2 + c up to 16 times; count points that stay bounded
		li r1, 0         ; py
		li r2, 8
		li r9, 0         ; inside count
		li r12, 4
		fcvt.s.w f10, r12 ; 4.0 (escape radius squared)
	yloop:
		li r3, 0         ; px
	xloop:
		; cx = px/2 - 2, cy = py/2 - 2
		fcvt.s.w f1, r3
		li r4, 2
		fcvt.s.w f9, r4
		fdiv f1, f1, f9
		fsub f1, f1, f9  ; cx
		fcvt.s.w f2, r1
		fdiv f2, f2, f9
		fsub f2, f2, f9  ; cy
		li r5, 0
		fcvt.s.w f3, r5  ; zx = 0
		fcvt.s.w f4, r5  ; zy = 0
		li r6, 16        ; iterations
	iter:
		fmul f5, f3, f3  ; zx^2
		fmul f6, f4, f4  ; zy^2
		fadd f7, f5, f6  ; |z|^2
		flt r7, f10, f7
		bne r7, r0, escaped
		fsub f8, f5, f6
		fadd f8, f8, f1  ; zx' = zx^2 - zy^2 + cx
		fmul f4, f3, f4
		fadd f4, f4, f4
		fadd f4, f4, f2  ; zy' = 2 zx zy + cy
		fmax f3, f8, f8  ; zx = zx' (register move via identity max)
		addi r6, r6, -1
		bne r6, r0, iter
		addi r9, r9, 1   ; stayed bounded
	escaped:
		addi r3, r3, 1
		bne r3, r2, xloop
		addi r1, r1, 1
		bne r1, r2, yloop
		halt
	`,
	Validate: func(reg func(uint8) uint32, _ *mem.Memory) error {
		inside := uint32(0)
		for py := 0; py < 8; py++ {
			for px := 0; px < 8; px++ {
				cx := float32(px)/2 - 2
				cy := float32(py)/2 - 2
				zx, zy := float32(0), float32(0)
				bounded := true
				for i := 0; i < 16; i++ {
					zx2, zy2 := zx*zx, zy*zy
					if zx2+zy2 > 4 {
						bounded = false
						break
					}
					zx, zy = zx2-zy2+cx, 2*zx*zy+cy
				}
				if bounded {
					inside++
				}
			}
		}
		if got := reg(9); got != inside {
			return fmt.Errorf("inside count = %d, want %d", got, inside)
		}
		return nil
	},
}

var transpose = &Kernel{
	Name:        "transpose",
	Description: "16x16 word matrix transpose (strided LSU, cache-conflict prone)",
	Source: `
		li r10, 0x1000
		li r11, 0x3000
		li r12, 16
		li r1, 0        ; i
	iloop:
		li r2, 0        ; j
	jloop:
		mul r5, r1, r12
		add r5, r5, r2
		slli r5, r5, 2
		add r5, r5, r10
		lw r3, 0(r5)
		mul r6, r2, r12
		add r6, r6, r1
		slli r6, r6, 2
		add r6, r6, r11
		sw r3, 0(r6)
		addi r2, r2, 1
		bne r2, r12, jloop
		addi r1, r1, 1
		bne r1, r12, iloop
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 256; i++ {
			m.StoreWord(arrayA+uint32(4*i), uint32(i*13+5))
		}
	},
	Validate: func(_ func(uint8) uint32, m *mem.Memory) error {
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				want := uint32((i*16+j)*13 + 5)
				got := m.LoadWord(arrayOut + uint32(4*(j*16+i)))
				if got != want {
					return fmt.Errorf("T[%d][%d] = %d, want %d", j, i, got, want)
				}
			}
		}
		return nil
	},
}

var strsearch = &Kernel{
	Name:        "strsearch",
	Description: "naive substring search over 512 bytes (byte loads, short branches)",
	Source: `
		li r10, 0x1000  ; haystack
		li r11, 0x2000  ; needle
		li r12, 512     ; haystack length
		li r13, 4       ; needle length
		li r9, 0        ; match count
		sub r14, r12, r13
		li r1, 0        ; i
	outer:
		li r2, 0        ; j
	inner:
		add r5, r1, r2
		add r5, r5, r10
		lbu r3, 0(r5)
		add r6, r2, r11
		lbu r4, 0(r6)
		bne r3, r4, miss
		addi r2, r2, 1
		bne r2, r13, inner
		addi r9, r9, 1  ; full match
	miss:
		addi r1, r1, 1
		bne r1, r14, outer
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 512; i++ {
			m.StoreByte(arrayA+uint32(i), byte('a'+i%4))
		}
		copy := []byte{'a', 'b', 'c', 'd'}
		for i, c := range copy {
			m.StoreByte(arrayB+uint32(i), c)
		}
	},
	Validate: func(reg func(uint8) uint32, m *mem.Memory) error {
		hay := make([]byte, 512)
		for i := range hay {
			hay[i] = byte('a' + i%4)
		}
		needle := []byte{'a', 'b', 'c', 'd'}
		want := uint32(0)
		for i := 0; i < len(hay)-len(needle); i++ {
			match := true
			for j := range needle {
				if hay[i+j] != needle[j] {
					match = false
					break
				}
			}
			if match {
				want++
			}
		}
		if got := reg(9); got != want {
			return fmt.Errorf("matches = %d, want %d", got, want)
		}
		return nil
	},
}

var recfib = &Kernel{
	Name:        "recfib",
	Description: "recursive Fibonacci(12) with a software stack (JAL/JALR call/return stress)",
	Source: `
		; r30 = stack pointer, r31 = link register, r1 = argument,
		; r2 = result. fib(n) = n < 2 ? n : fib(n-1) + fib(n-2).
		li r30, 0x8000
		li r1, 12
		jal r31, fib
		mv r9, r2         ; final result
		halt
	fib:
		li r3, 2
		blt r1, r3, base
		; push link and argument
		addi r30, r30, -8
		sw r31, 0(r30)
		sw r1, 4(r30)
		addi r1, r1, -1
		jal r31, fib      ; fib(n-1)
		; recover n, stash partial result
		lw r1, 4(r30)
		sw r2, 4(r30)     ; overwrite saved n with fib(n-1)
		addi r1, r1, -2
		jal r31, fib      ; fib(n-2)
		lw r3, 4(r30)     ; fib(n-1)
		add r2, r2, r3
		lw r31, 0(r30)
		addi r30, r30, 8
		jalr r0, r31, 0   ; return
	base:
		mv r2, r1
		jalr r0, r31, 0
	`,
	Validate: func(reg func(uint8) uint32, _ *mem.Memory) error {
		fibv := func(n int) uint32 {
			a, b := uint32(0), uint32(1)
			for i := 0; i < n; i++ {
				a, b = b, a+b
			}
			return a
		}
		if got, want := reg(9), fibv(12); got != want {
			return fmt.Errorf("recfib = %d, want %d", got, want)
		}
		return nil
	},
}

var gcdBatch = &Kernel{
	Name:        "gcdbatch",
	Description: "gcd of 32 pairs via remainder chains (IntMDU-bound, unpredictable trip counts)",
	Source: `
		li r10, 0x1000
		li r11, 0x2000
		li r12, 32
		li r9, 0        ; checksum of gcds
		li r1, 0
	pair:
		slli r5, r1, 2
		add r6, r5, r10
		lw r2, 0(r6)
		add r7, r5, r11
		lw r3, 0(r7)
	gcd:
		beq r3, r0, done
		rem r4, r2, r3
		mv r2, r3
		mv r3, r4
		j gcd
	done:
		add r9, r9, r2
		addi r1, r1, 1
		bne r1, r12, pair
		halt
	`,
	Setup: func(m *mem.Memory, _ func(uint8, uint32)) {
		for i := 0; i < 32; i++ {
			m.StoreWord(arrayA+uint32(4*i), uint32(1000+i*317))
			m.StoreWord(arrayB+uint32(4*i), uint32(18+i*41))
		}
	},
	Validate: func(reg func(uint8) uint32, _ *mem.Memory) error {
		gcd := func(a, b uint32) uint32 {
			for b != 0 {
				a, b = b, a%b
			}
			return a
		}
		want := uint32(0)
		for i := 0; i < 32; i++ {
			want += gcd(uint32(1000+i*317), uint32(18+i*41))
		}
		if got := reg(9); got != want {
			return fmt.Errorf("gcd checksum = %d, want %d", got, want)
		}
		return nil
	},
}
