package workload

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestKernelsFunctionallyCorrect runs every kernel on the functional
// interpreter and checks its own validator.
func TestKernelsFunctionallyCorrect(t *testing.T) {
	for _, k := range Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			m := mem.NewMemory(1 << 16)
			s := &isa.State{Mem: m}
			if k.Setup != nil {
				k.Setup(m, s.WriteReg)
			}
			if _, err := isa.Run(k.Program(), s, 10_000_000); err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := k.Validate(s.ReadReg, m); err != nil {
				t.Errorf("validate: %v", err)
			}
		})
	}
}

// TestKernelsOnPipelinedSteeringMachine runs every kernel on the full
// simulator with the steering policy and validates outputs.
func TestKernelsOnPipelinedSteeringMachine(t *testing.T) {
	for _, k := range Kernels() {
		t.Run(k.Name, func(t *testing.T) {
			p := cpu.New(k.Program(), cpu.Params{MemBytes: 1 << 16}, nil)
			p.SetManager(baseline.NewSteering(p.Fabric()))
			if k.Setup != nil {
				k.Setup(p.Memory(), p.SetReg)
			}
			stats, err := p.Run(10_000_000)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := k.Validate(p.Reg, p.Memory()); err != nil {
				t.Errorf("validate: %v", err)
			}
			if stats.IPC() <= 0 {
				t.Errorf("IPC = %v", stats.IPC())
			}
		})
	}
}

func TestKernelByName(t *testing.T) {
	if KernelByName("saxpy") == nil {
		t.Error("saxpy not found")
	}
	if KernelByName("nope") != nil {
		t.Error("unknown kernel found")
	}
}

func TestKernelDescriptionsPresent(t *testing.T) {
	for _, k := range Kernels() {
		if k.Name == "" || k.Description == "" {
			t.Errorf("kernel %q missing metadata", k.Name)
		}
	}
}

// TestSynthesizeDeterministic: same seed, same program.
func TestSynthesizeDeterministic(t *testing.T) {
	phases := []Phase{{MixIntHeavy, 200}, {MixFPHeavy, 200}}
	a := Synthesize(phases, SynthParams{Seed: 42})
	b := Synthesize(phases, SynthParams{Seed: 42})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("programs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Synthesize(phases, SynthParams{Seed: 43})
	same := len(a) == len(c)
	if same {
		identical := true
		for i := range a {
			if a[i] != c[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical programs")
		}
	}
}

// TestSynthesizeMixShape: the generated stream's unit mix tracks the
// requested weights.
func TestSynthesizeMixShape(t *testing.T) {
	const n = 20000
	prog := Synthesize([]Phase{{MixFPHeavy, n}}, SynthParams{Seed: 7})
	var counts arch.Counts
	for _, in := range prog {
		if in.Op == isa.HALT {
			continue
		}
		counts[in.Unit()]++
	}
	total := counts.Total()
	frac := func(t arch.UnitType) float64 { return float64(counts[t]) / float64(total) }
	// FP-heavy: ~70% FP overall, ~20% LSU, ~10% IntALU (preamble noise
	// is a few instructions out of 20000).
	if fp := frac(arch.FPALU) + frac(arch.FPMDU); fp < 0.65 || fp > 0.75 {
		t.Errorf("FP fraction = %.3f, want ~0.70", fp)
	}
	if l := frac(arch.LSU); l < 0.15 || l > 0.25 {
		t.Errorf("LSU fraction = %.3f, want ~0.20", l)
	}
	if counts[arch.IntMDU] != 0 {
		t.Errorf("FP-heavy mix produced %d IntMDU instructions", counts[arch.IntMDU])
	}
}

// TestSynthesizeRunsToCompletion: synthetic programs execute on both the
// interpreter and the simulator, producing identical register state.
func TestSynthesizeRunsToCompletion(t *testing.T) {
	phases := []Phase{{MixIntHeavy, 300}, {MixMemHeavy, 300}, {MixFPHeavy, 300}, {MixMDUHeavy, 300}}
	prog := Synthesize(phases, SynthParams{Seed: 99, DepDensity: 0.6})

	ref := &isa.State{Mem: mem.NewMemory(1 << 16)}
	steps, err := isa.Run(prog, ref, 10_000_000)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if steps != len(prog) {
		t.Errorf("straight-line program executed %d steps, want %d", steps, len(prog))
	}

	p := cpu.New(prog, cpu.Params{MemBytes: 1 << 16}, nil)
	p.SetManager(baseline.NewSteering(p.Fabric()))
	stats, err := p.Run(10_000_000)
	if err != nil {
		t.Fatalf("simulator: %v", err)
	}
	if stats.Retired != steps {
		t.Errorf("retired %d, want %d", stats.Retired, steps)
	}
	for r := uint8(0); r < isa.NumRegs; r++ {
		if p.Reg(r) != ref.ReadReg(r) {
			t.Errorf("register %s = %#x, reference %#x", isa.RegName(r), p.Reg(r), ref.ReadReg(r))
		}
	}
}

// TestSynthesizeEncodable: every generated instruction round-trips
// through the binary encoding (legacy-binary compatibility story).
func TestSynthesizeEncodable(t *testing.T) {
	prog := Synthesize([]Phase{{MixUniform, 2000}}, SynthParams{Seed: 5})
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := isa.DecodeProgram(words)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range prog {
		if prog[i] != back[i] {
			t.Fatalf("instruction %d: %v -> %v", i, prog[i], back[i])
		}
	}
}

func TestSampleRejectsBadMixes(t *testing.T) {
	for _, m := range []Mix{{}, {-1, 1, 0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mix %v accepted", m)
				}
			}()
			Synthesize([]Phase{{m, 1}}, SynthParams{Seed: 1})
		}()
	}
}

func TestMixString(t *testing.T) {
	s := MixString(MixIntHeavy)
	if s == "" || len(s) < 10 {
		t.Errorf("MixString = %q", s)
	}
}
