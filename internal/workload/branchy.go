package workload

import (
	"math/rand"

	"repro/internal/isa"
)

// SynthesizeBranchy generates a random but guaranteed-terminating program
// with real control flow: counted loops (dedicated counter registers the
// loop body never touches) and data-dependent forward skips. It is the
// fuzz driver for the simulator's speculation machinery — wrong-path
// squashing, predictor training, store buffering — whose architectural
// results are differentially checked against the functional interpreter.
//
// Register conventions: r16-r19 are loop counters, r20 is the memory
// base, r1-r15 are general work registers, f1-f15 FP work registers.
func SynthesizeBranchy(blocks int, p SynthParams) isa.Program {
	if p.DepDensity == 0 {
		p.DepDensity = 0.5
	}
	rng := rand.New(rand.NewSource(p.Seed))

	var prog isa.Program
	prog = append(prog,
		isa.New(isa.LUI, 20, 0, 0, dataBase>>isa.LUIShift),
		isa.New(isa.ADDI, 1, 0, 0, 3),
		isa.New(isa.ADDI, 2, 0, 0, 5),
		isa.New(isa.FCVTSW, 1, 1, 0, 0),
		isa.New(isa.FCVTSW, 2, 2, 0, 0),
	)

	workReg := func() uint8 { return uint8(1 + rng.Intn(15)) }
	offset := func() int32 { return int32(4 * rng.Intn(256)) }

	// straightLine appends n random dependency-bearing instructions.
	straightLine := func(n int) {
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				ops := []isa.Opcode{isa.ADD, isa.SUB, isa.XOR, isa.OR, isa.AND}
				prog = append(prog, isa.New(ops[rng.Intn(len(ops))], workReg(), workReg(), workReg(), 0))
			case 1:
				prog = append(prog, isa.New(isa.ADDI, workReg(), workReg(), 0, int32(rng.Intn(64))-32))
			case 2:
				ops := []isa.Opcode{isa.MUL, isa.REM}
				prog = append(prog, isa.New(ops[rng.Intn(len(ops))], workReg(), workReg(), workReg(), 0))
			case 3:
				if rng.Intn(2) == 0 {
					prog = append(prog, isa.New(isa.LW, workReg(), 20, 0, offset()))
				} else {
					prog = append(prog, isa.New(isa.SW, 0, 20, workReg(), offset()))
				}
			case 4:
				ops := []isa.Opcode{isa.FADD, isa.FSUB, isa.FMIN}
				prog = append(prog, isa.New(ops[rng.Intn(len(ops))], workReg(), workReg(), workReg(), 0))
			case 5:
				prog = append(prog, isa.New(isa.FMUL, workReg(), workReg(), workReg(), 0))
			}
		}
	}

	for b := 0; b < blocks; b++ {
		switch rng.Intn(3) {
		case 0: // plain straight-line block
			straightLine(3 + rng.Intn(6))

		case 1: // counted loop: trip count 1..6, body never touches the counter
			counter := uint8(16 + rng.Intn(4))
			trips := int32(1 + rng.Intn(6))
			prog = append(prog, isa.New(isa.ADDI, counter, 0, 0, trips))
			top := len(prog)
			straightLine(2 + rng.Intn(4))
			prog = append(prog, isa.New(isa.ADDI, counter, counter, 0, -1))
			back := int32(top - (len(prog) + 1) + 1)
			prog = append(prog, isa.New(isa.BNE, 0, counter, 0, back))

		case 2: // data-dependent forward skip over 1..4 instructions
			a, c := workReg(), workReg()
			condOps := []isa.Opcode{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}
			op := condOps[rng.Intn(len(condOps))]
			skipLen := 1 + rng.Intn(4)
			prog = append(prog, isa.New(op, 0, a, c, int32(skipLen+1)))
			straightLine(skipLen)
		}
	}
	prog = append(prog, isa.New(isa.HALT, 0, 0, 0, 0))
	return prog
}
