// Fault injection and degraded-mode operation for the fabric: per-slot
// configuration-memory health, periodic readback scrubbing, and
// repair-by-partial-reconfiguration that shares the configuration bus
// with steering-driven loads.
//
// The model keeps the allocation vector as the controller's golden copy
// of what each slot should hold; an upset corrupts the slot's physical
// frames without losing that copy, so repair is a rewrite of the same
// encoding. A corrupted slot stops matching the availability
// comparators of Eq. 1 (its encoding bits are garbage), which is why a
// faulty unit silently disappears from steering and dispatch rather
// than computing wrong results — and why the whole covering unit is
// masked: any slot of a multi-slot unit carries part of its datapath.
package rfu

import (
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// SlotHealth is one slot's position in the fault state machine:
//
//	healthy → corrupt → detected → repairing → healthy
//	                                         ↘ dead (permanent fault)
//
// A steering reconfiguration that rewrites a corrupt slot's frames also
// returns it to healthy (the new configuration data overwrites the
// upset), unless the fault is permanent.
type SlotHealth uint8

const (
	// HealthHealthy: the slot's configuration frames are intact.
	HealthHealthy SlotHealth = iota
	// HealthCorrupt: an upset flipped the slot's frames; the scrub
	// scan has not noticed yet. The covering unit is already unusable.
	HealthCorrupt
	// HealthDetected: the readback scrub found the corruption; the
	// slot awaits a repair rewrite.
	HealthDetected
	// HealthRepairing: a repair reconfiguration is rewriting the
	// slot's frames (it occupies the configuration bus like any span).
	HealthRepairing
	// HealthDead: the slot is permanently stuck; repair failed and the
	// slot is retired from the fabric for the rest of the run.
	HealthDead
)

// String names the state for reports and tests.
func (h SlotHealth) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthCorrupt:
		return "corrupt"
	case HealthDetected:
		return "detected"
	case HealthRepairing:
		return "repairing"
	case HealthDead:
		return "dead"
	default:
		return "unknown"
	}
}

// FaultStats counts the fault subsystem's activity over a run.
type FaultStats struct {
	// InjectedTransient / InjectedPermanent count upsets that struck
	// an eligible (healthy, not mid-rewrite) slot.
	InjectedTransient int `json:"injectedTransient"`
	InjectedPermanent int `json:"injectedPermanent"`
	// Detected counts corrupt slots the scrub scan flagged.
	Detected int `json:"detected"`
	// RepairsStarted counts repair rewrites begun; Repaired the slots
	// restored to healthy by a repair completing.
	RepairsStarted int `json:"repairsStarted"`
	Repaired       int `json:"repaired"`
	// HealedByLoad counts corrupt slots healed as a side effect of a
	// steering reconfiguration rewriting their frames.
	HealedByLoad int `json:"healedByLoad"`
	// DeadSlots counts slots retired after a repair found stuck bits.
	DeadSlots int `json:"deadSlots"`
	// ScrubScans counts readback passes over the fabric.
	ScrubScans int `json:"scrubScans"`
	// MaskedSlotCycles accumulates, per cycle, the number of slots
	// hidden from steering and dispatch by a non-healthy state.
	MaskedSlotCycles int `json:"maskedSlotCycles"`
}

// EnableFaults arms the fabric's fault injector with the plan. Invalid
// plans panic (validate request-supplied plans with fault.Plan.Validate
// first). Call before simulation starts. Arming with a zero-rate plan
// draws no random upsets but still runs the scrub/repair machinery,
// which suits directed InjectFault campaigns.
func (f *Fabric) EnableFaults(p fault.Plan) {
	f.injector = fault.NewInjector(p)
	f.scrubCountdown = f.injector.ScrubInterval()
	f.recomputeHealthOK()
}

// FaultsEnabled reports whether a fault injector is armed.
func (f *Fabric) FaultsEnabled() bool { return f.injector != nil }

// InjectFault strikes slot s with a directed upset — the deterministic
// complement to random injection, for directed fault campaigns and
// tests. It reports whether the upset took: slots that are already
// faulted or whose frames are mid-rewrite are immune, like random
// upsets. Arming happens implicitly (with a draw-nothing plan) so the
// scrub/repair machinery runs even without random injection.
func (f *Fabric) InjectFault(s int, permanent bool) bool {
	if f.injector == nil {
		f.injector = fault.NewInjector(fault.Plan{})
		f.scrubCountdown = f.injector.ScrubInterval()
	}
	if f.health[s] != HealthHealthy || f.reconfig[s] > 0 {
		return false
	}
	f.health[s] = HealthCorrupt
	if permanent {
		f.permanent[s] = true
		f.fstats.InjectedPermanent++
		f.probe.Fault(s, telemetry.FaultInjectedPermanent)
	} else {
		f.fstats.InjectedTransient++
		f.probe.Fault(s, telemetry.FaultInjectedTransient)
	}
	f.spans.FaultInjected(s, permanent)
	f.recomputeHealthOK()
	return true
}

// Health returns slot s's fault state.
func (f *Fabric) Health(s int) SlotHealth { return f.health[s] }

// SlotUsable reports whether slot s may serve work as (part of) a unit:
// every slot of the covering unit's span is healthy. Without faults it
// is always true.
func (f *Fabric) SlotUsable(s int) bool { return f.healthOK[s] }

// HealthMasks returns the packed per-slot fault masks: unavail has a
// bit set for every slot in a non-healthy state, dead for every
// permanently retired slot. Slots leased to sibling cores (see
// SetExternalMasks) are folded in, so steering caches keying on both
// stay pure functions of (demand, allocation, masks) in a cluster too.
func (f *Fabric) HealthMasks() (unavail, dead uint8) { return f.unavailMask, f.deadMask }

// SetExternalMasks overlays slots owned elsewhere onto this fabric's
// health view: an unavail bit hides the slot (and any unit crossing
// it) from steering, dispatch and this core's fault injector, exactly
// like a detected fault; a dead bit additionally tells the steering
// manager the capacity is never coming back, like a retired slot. The
// cluster layer leases slots between cores with these masks, reusing
// the degraded-mode machinery end to end. Zero masks restore the
// scalar view. No-op when nothing changed, so per-cycle refreshes on a
// quiet cluster cost two compares.
func (f *Fabric) SetExternalMasks(unavail, dead uint8) {
	if f.extUnavail == unavail && f.extDead == dead {
		return
	}
	f.extUnavail, f.extDead = unavail, dead
	f.recomputeHealthOK()
}

// ExternalMasks returns the external lease overlay last installed.
func (f *Fabric) ExternalMasks() (unavail, dead uint8) { return f.extUnavail, f.extDead }

// MaskedSlots counts slots currently hidden from steering and dispatch
// by a non-healthy state.
func (f *Fabric) MaskedSlots() int {
	n := 0
	for _, h := range f.health {
		if h != HealthHealthy {
			n++
		}
	}
	return n
}

// FaultStats returns a copy of the fault subsystem's counters.
func (f *Fabric) FaultStats() FaultStats { return f.fstats }

// EffectiveTotalCounts returns the unit mix actually able to serve work
// once fault masking is applied: configured RFU units whose whole span
// is healthy, plus the fixed units. Without faults it equals
// TotalCounts — the CEM demand path sees no difference.
func (f *Fabric) EffectiveTotalCounts() arch.Counts {
	if f.unavailMask == 0 {
		return f.alloc.TotalCounts()
	}
	var c arch.Counts
	for s := 0; s < arch.NumRFUSlots; s++ {
		if !f.healthOK[s] {
			continue
		}
		if t, ok := arch.DecodeUnit(f.alloc.Slots[s]); ok {
			c[t]++
		}
	}
	return c.Add(config.FFUCounts())
}

// recomputeHealthOK rebuilds the derived masks after a health,
// external-lease or allocation change: healthOK[s] is false for any
// slot in a non-healthy state or leased to a sibling core, and for any
// unit head whose span contains one (the unit's datapath crosses the
// bad slot, so the whole unit is masked). Called only on transitions,
// never on the per-cycle hot path.
func (f *Fabric) recomputeHealthOK() {
	unavail, dead := f.extUnavail, f.extDead
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.health[s] != HealthHealthy {
			unavail |= 1 << uint(s)
		}
		if f.health[s] == HealthDead {
			dead |= 1 << uint(s)
		}
	}
	for s := 0; s < arch.NumRFUSlots; s++ {
		f.healthOK[s] = unavail&(1<<uint(s)) == 0
	}
	for s := 0; s < arch.NumRFUSlots; s++ {
		if !f.healthOK[s] {
			continue
		}
		if t, ok := arch.DecodeUnit(f.alloc.Slots[s]); ok {
			_, hi := spanOf(t, s)
			for k := s + 1; k < hi && k < arch.NumRFUSlots; k++ {
				if unavail&(1<<uint(k)) != 0 {
					f.healthOK[s] = false
					break
				}
			}
		}
	}
	var okMask uint16
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.healthOK[s] {
			okMask |= 1 << uint(s)
		}
	}
	f.healthOKMask = okMask
	f.unavailMask, f.deadMask = unavail, dead
}

// installHealth applies the health consequences of slot s's frames
// being rewritten by a completing reconfiguration: a repair resolves
// (healthy, or dead when the bits are stuck), and a steering load over
// a transiently corrupt slot heals it as a side effect — the new
// configuration data overwrites the upset.
func (f *Fabric) installHealth(s int) {
	switch f.health[s] {
	case HealthRepairing:
		f.completeRepair(s)
	case HealthCorrupt, HealthDetected:
		if !f.permanent[s] {
			f.health[s] = HealthHealthy
			f.fstats.HealedByLoad++
			f.probe.Fault(s, telemetry.FaultRepaired)
			f.spans.FaultHealed(s)
		}
	}
}

// completeRepair resolves a finished repair rewrite: transient faults
// heal; permanent stuck bits survive the rewrite and retire the slot.
func (f *Fabric) completeRepair(s int) {
	if f.permanent[s] {
		f.health[s] = HealthDead
		f.fstats.DeadSlots++
		f.probe.Fault(s, telemetry.FaultDead)
		f.spans.RepairEnd(s, true)
		return
	}
	f.health[s] = HealthHealthy
	f.fstats.Repaired++
	f.probe.Fault(s, telemetry.FaultRepaired)
	f.spans.RepairEnd(s, false)
}

// faultTick runs once per cycle, after the timers advanced, when the
// injector is armed: scrub, repair scheduling, dead-unit salvage, new
// upsets, and masked-cycle accounting. It allocates nothing.
func (f *Fabric) faultTick() {
	changed := false

	// Readback scrubbing: every ScrubInterval cycles the controller
	// reads the configuration frames back and flags corrupt slots.
	f.scrubCountdown--
	if f.scrubCountdown <= 0 {
		f.scrubCountdown = f.injector.ScrubInterval()
		f.fstats.ScrubScans++
		f.probe.ScrubScan()
		for s := range f.health {
			if f.health[s] == HealthCorrupt {
				f.health[s] = HealthDetected
				f.fstats.Detected++
				f.probe.Fault(s, telemetry.FaultDetected)
				f.spans.FaultDetected(s)
				changed = true
			}
		}
	}

	// Repair: rewrite detected slots by partial reconfiguration. A
	// repair is a one-slot span on the configuration bus, so it
	// competes with steering loads for bus capacity and must wait for
	// the covering unit to drain, exactly like a steering rewrite.
	for s := range f.health {
		if f.health[s] != HealthDetected || f.reconfig[s] > 0 {
			continue
		}
		if head := f.headOf(s); head >= 0 && f.busy[head] > 0 {
			continue // in-flight execution drains first
		}
		if f.extSlotBusy != nil && f.extSlotBusy(s) {
			continue // a sibling core is executing on the span
		}
		if f.busWidth > 0 && f.latency > 0 && f.busLoad() >= f.busWidth {
			continue // configuration bus fully occupied
		}
		f.fstats.RepairsStarted++
		f.probe.Fault(s, telemetry.FaultRepairStart)
		f.spans.RepairStart(s)
		if f.latency == 0 {
			f.completeRepair(s)
		} else {
			f.health[s] = HealthRepairing
			f.reconfig[s] = f.latency
			f.reconfigMask |= 1 << uint(s)
			f.target[s] = f.alloc.Slots[s] // restore the golden copy
		}
		changed = true
	}

	// Salvage: a dead slot permanently retires its covering unit; once
	// that unit drains, blank the span so the surviving slots return
	// to the steering pool as empty, placeable space.
	allocChanged := false
	for s := range f.health {
		if f.health[s] != HealthDead || f.alloc.Slots[s] == arch.EncEmpty {
			continue
		}
		head := f.headOf(s)
		if head < 0 {
			f.alloc.Slots[s] = arch.EncEmpty
			changed, allocChanged = true, true
			continue
		}
		if f.busy[head] > 0 {
			continue
		}
		if f.extSlotBusy != nil && f.extSlotBusy(head) {
			continue // a sibling core still executes on the dying unit
		}
		t, _ := arch.DecodeUnit(f.alloc.Slots[head])
		lo, hi := spanOf(t, head)
		// An in-flight repair on any slot of the span holds its golden
		// copy as the rewrite target; blanking now would let that repair
		// re-install an orphan continuation when it completes. Wait for
		// the span's bus transactions to drain first.
		pending := false
		for k := lo; k < hi; k++ {
			if f.reconfig[k] > 0 {
				pending = true
				break
			}
		}
		if pending {
			continue
		}
		for k := lo; k < hi; k++ {
			f.alloc.Slots[k] = arch.EncEmpty
		}
		changed, allocChanged = true, true
	}
	if allocChanged {
		f.refreshAlloc()
	}

	// Inject new upsets. One draw per slot per cycle, in slot order,
	// regardless of eligibility — the stream stays a pure function of
	// (seed, cycle, slot), so fault histories are reproducible.
	for s := 0; s < arch.NumRFUSlots; s++ {
		k := f.injector.Draw()
		if k == fault.None {
			continue
		}
		if f.health[s] != HealthHealthy || f.reconfig[s] > 0 {
			continue // already faulted, or frames mid-rewrite
		}
		if f.extUnavail&(1<<uint(s)) != 0 {
			continue // leased to a sibling core; its injector owns the slot
		}
		f.health[s] = HealthCorrupt
		if k == fault.Permanent {
			f.permanent[s] = true
			f.fstats.InjectedPermanent++
			f.probe.Fault(s, telemetry.FaultInjectedPermanent)
		} else {
			f.fstats.InjectedTransient++
			f.probe.Fault(s, telemetry.FaultInjectedTransient)
		}
		f.spans.FaultInjected(s, k == fault.Permanent)
		changed = true
	}

	if changed {
		f.recomputeHealthOK()
	}
	if n := f.MaskedSlots(); n > 0 {
		f.fstats.MaskedSlotCycles += n
		f.probe.MaskedSlotCycles(n)
	}
}
