package rfu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/fault"
)

// tick advances the fabric n cycles.
func tick(f *Fabric, n int) {
	for i := 0; i < n; i++ {
		f.Tick()
	}
}

// TestFaultTransientLifecycle walks one transient upset through the
// whole state machine: corrupt (masked immediately) → detected by the
// scrub → repairing on the bus → healthy again.
func TestFaultTransientLifecycle(t *testing.T) {
	const latency, scrub = 2, 4
	f := New(latency)
	f.EnableFaults(fault.Plan{ScrubInterval: scrub})
	f.Install(config.DefaultBasis()[0]) // integer: IntALU heads at 0 and 1

	if !f.InjectFault(0, false) {
		t.Fatal("injection refused on a healthy idle slot")
	}
	if got := f.Health(0); got != HealthCorrupt {
		t.Fatalf("health after upset = %v, want corrupt", got)
	}
	if f.SlotUsable(0) {
		t.Error("corrupt slot still usable")
	}
	if !f.SlotUsable(1) {
		t.Error("slot 1 unusable — corruption of slot 0 masked an unrelated unit")
	}
	// Slot 0 heads a 1-slot IntALU; exactly that unit must vanish from
	// availability while the rest of the fabric still serves IntALU.
	healthyCount := f.AvailableCount(arch.IntALU)
	f2 := New(2)
	f2.Install(config.DefaultBasis()[0])
	if want := f2.AvailableCount(arch.IntALU) - 1; healthyCount != want {
		t.Errorf("AvailableCount(IntALU) = %d with one corrupt unit, want %d", healthyCount, want)
	}

	// The scrub scan fires on the interval and flags the slot.
	tick(f, scrub)
	if got := f.Health(0); got != HealthDetected && got != HealthRepairing {
		t.Fatalf("health after scrub = %v, want detected or repairing", got)
	}

	// Repair occupies the slot's reconfig timer for latency cycles.
	tick(f, 1)
	if got := f.Health(0); got != HealthRepairing {
		t.Fatalf("health after repair start = %v, want repairing", got)
	}
	tick(f, latency)
	if got := f.Health(0); got != HealthHealthy {
		t.Fatalf("health after repair = %v, want healthy", got)
	}
	if !f.SlotUsable(0) {
		t.Error("repaired slot not usable")
	}
	st := f.FaultStats()
	if st.InjectedTransient != 1 || st.Detected != 1 || st.RepairsStarted != 1 || st.Repaired != 1 {
		t.Errorf("stats = %+v, want one injected/detected/started/repaired", st)
	}
	if st.MaskedSlotCycles == 0 {
		t.Error("no masked slot-cycles accumulated while the slot was faulty")
	}
	// The allocation vector (the controller's golden copy) never
	// changed: repair restored the same encoding.
	if f.Allocation().Slots != config.DefaultBasis()[0].Layout {
		t.Errorf("allocation drifted across repair: %v", f.Allocation().Slots)
	}
}

// TestFaultPermanentRetiresSlot: a permanent fault survives the repair
// rewrite, the slot dies, and the covering unit's span is salvaged back
// to empty space that steering cannot place units over.
func TestFaultPermanentRetiresSlot(t *testing.T) {
	f := New(1)
	f.EnableFaults(fault.Plan{ScrubInterval: 2})
	f.Install(config.DefaultBasis()[2]) // floating: 3-slot FP units

	layout := f.Allocation().Slots
	head := -1
	for s, e := range layout {
		if e != arch.EncEmpty && e != arch.EncCont {
			head = s
			break
		}
	}
	if head < 0 {
		t.Fatal("no unit head in the floating configuration")
	}
	ht, _ := arch.DecodeUnit(layout[head])
	span := arch.SlotCost(ht)
	victim := head + span - 1 // corrupt the unit's last span slot

	if !f.InjectFault(victim, true) {
		t.Fatal("injection refused")
	}
	if f.SlotUsable(head) {
		t.Error("unit head usable while a span slot is corrupt")
	}

	// Scrub → repair attempt → stuck bits found → dead → salvage.
	tick(f, 16)
	if got := f.Health(victim); got != HealthDead {
		t.Fatalf("health = %v, want dead", got)
	}
	for s := head; s < head+span; s++ {
		if got := f.Allocation().Slots[s]; got != arch.EncEmpty {
			t.Errorf("slot %d not salvaged: %v", s, got)
		}
	}
	_, dead := f.HealthMasks()
	if dead != 1<<uint(victim) {
		t.Errorf("dead mask = %08b, want bit %d", dead, victim)
	}
	// Steering may reuse the salvaged slots but never the dead one.
	if f.CanReconfigure(ht, victim-span+1) {
		t.Error("CanReconfigure allowed a span over a dead slot")
	}
	if st := f.FaultStats(); st.DeadSlots != 1 || st.Repaired != 0 {
		t.Errorf("stats = %+v, want one dead slot and no repairs", st)
	}
}

// TestFaultRepairCompetesForBus: with a width-1 configuration bus, a
// repair must wait for an in-flight steering rewrite to finish.
func TestFaultRepairCompetesForBus(t *testing.T) {
	const latency = 6
	f := New(latency)
	f.SetConfigBusWidth(1)
	f.EnableFaults(fault.Plan{ScrubInterval: 1})
	f.Install(config.DefaultBasis()[0])

	// A steering rewrite grabs the single-width bus first...
	if !f.CanReconfigure(arch.FPALU, 5) {
		t.Fatal("steering rewrite refused")
	}
	f.Reconfigure(arch.FPALU, 5)
	// ...so when the scrub flags the upset, its repair must queue.
	f.InjectFault(0, false)
	f.Tick()
	if got := f.Health(0); got != HealthDetected {
		t.Fatalf("health while bus busy = %v, want detected (repair queued)", got)
	}
	tick(f, latency-2)
	if got := f.Health(0); got != HealthDetected {
		t.Fatalf("repair started while the bus was still busy: %v", got)
	}
	// Once the steering span completes, the repair goes through.
	tick(f, 2)
	if got := f.Health(0); got != HealthRepairing {
		t.Fatalf("repair never started after the bus freed: %v", got)
	}
	tick(f, latency)
	if got := f.Health(0); got != HealthHealthy {
		t.Fatalf("repair never completed: %v", got)
	}
}

// TestFaultHealedBySteeringLoad: rewriting a span over an undetected
// transient upset overwrites the corruption.
func TestFaultHealedBySteeringLoad(t *testing.T) {
	f := New(0) // free reconfiguration: installs are immediate
	f.EnableFaults(fault.Plan{ScrubInterval: 1 << 20})
	f.Install(config.DefaultBasis()[0])

	f.InjectFault(0, false)
	if f.SlotUsable(0) {
		t.Fatal("corrupt slot usable")
	}
	if !f.CanReconfigure(arch.LSU, 0) {
		t.Fatal("steering blocked by undetected corruption — the controller cannot know")
	}
	f.Reconfigure(arch.LSU, 0)
	if got := f.Health(0); got != HealthHealthy {
		t.Fatalf("health after rewrite = %v, want healthy", got)
	}
	if st := f.FaultStats(); st.HealedByLoad != 1 {
		t.Errorf("HealedByLoad = %d, want 1", st.HealedByLoad)
	}
}

// TestFaultAcquireNeverReturnsFaultySlot hammers a randomly faulted
// fabric and asserts Acquire only ever hands out units whose whole span
// is healthy.
func TestFaultAcquireNeverReturnsFaultySlot(t *testing.T) {
	f := New(2)
	f.EnableFaults(fault.Plan{Seed: 99, TransientRate: 0.02, PermanentRate: 0.002, ScrubInterval: 8})
	f.Install(config.DefaultBasis()[1])

	types := []arch.UnitType{arch.IntALU, arch.IntMDU, arch.LSU, arch.FPALU, arch.FPMDU}
	for cycle := 0; cycle < 20_000; cycle++ {
		f.Tick()
		tt := types[cycle%len(types)]
		if ref, ok := f.Acquire(tt, 1+cycle%3); ok && !ref.FFU {
			cost := arch.SlotCost(tt)
			for s := ref.Idx; s < ref.Idx+cost; s++ {
				if got := f.Health(s); got != HealthHealthy {
					t.Fatalf("cycle %d: acquired %v whose slot %d is %v", cycle, ref, s, got)
				}
			}
		}
		// Occasionally steer, like the manager would.
		if cycle%97 == 0 && f.CanReconfigure(tt, int(cycle)%4) {
			f.Reconfigure(tt, int(cycle)%4)
		}
	}
	st := f.FaultStats()
	if st.InjectedTransient == 0 {
		t.Error("no transient faults injected over 20k cycles at rate 0.02")
	}
	if st.Repaired == 0 && st.HealedByLoad == 0 {
		t.Error("nothing ever recovered")
	}
}

// TestFaultDisabledPathUntouched: without EnableFaults the fabric
// behaves exactly as before — no masks, no stats, healthy everywhere.
func TestFaultDisabledPathUntouched(t *testing.T) {
	f := New(4)
	f.Install(config.DefaultBasis()[0])
	tick(f, 1000)
	if f.FaultsEnabled() {
		t.Error("injector armed without EnableFaults")
	}
	unavail, dead := f.HealthMasks()
	if unavail != 0 || dead != 0 {
		t.Errorf("masks = %08b/%08b, want zero", unavail, dead)
	}
	if st := f.FaultStats(); st != (FaultStats{}) {
		t.Errorf("stats accumulated without faults: %+v", st)
	}
	if got, want := f.EffectiveTotalCounts(), f.TotalCounts(); got != want {
		t.Errorf("EffectiveTotalCounts = %v, want %v", got, want)
	}
}

// TestEffectiveTotalCountsMasksFaultyUnits: the CEM demand path sees
// the degraded unit mix, not the configured one.
func TestEffectiveTotalCountsMasksFaultyUnits(t *testing.T) {
	f := New(1)
	f.EnableFaults(fault.Plan{ScrubInterval: 1 << 20})
	f.Install(config.DefaultBasis()[0])

	full := f.EffectiveTotalCounts()
	if full != f.TotalCounts() {
		t.Fatalf("healthy fabric: effective %v != total %v", full, f.TotalCounts())
	}
	// Corrupt the head of the first unit; its type count must drop.
	layout := f.Allocation().Slots
	ht, _ := arch.DecodeUnit(layout[0])
	f.InjectFault(0, false)
	degraded := f.EffectiveTotalCounts()
	if degraded[ht] != full[ht]-1 {
		t.Errorf("effective[%v] = %d, want %d", ht, degraded[ht], full[ht]-1)
	}
}
