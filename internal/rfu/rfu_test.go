package rfu

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/avail"
	"repro/internal/config"
)

func TestNewFabricIsEmptyButFFUsServeAllTypes(t *testing.T) {
	f := New(4)
	if got := f.Allocation().RFUCounts(); got != (arch.Counts{}) {
		t.Errorf("fresh fabric RFU counts = %v", got)
	}
	for _, ty := range arch.UnitTypes() {
		if !f.Available(ty) {
			t.Errorf("%v unavailable on fresh fabric despite its FFU", ty)
		}
		if f.AvailableCount(ty) != 1 {
			t.Errorf("AvailableCount(%v) = %d, want 1 (the FFU)", ty, f.AvailableCount(ty))
		}
	}
}

func TestNewPanicsOnNegativeLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(-1)
}

func TestAcquirePrefersFFU(t *testing.T) {
	f := New(0)
	f.Reconfigure(arch.IntALU, 0)
	ref, ok := f.Acquire(arch.IntALU, 3)
	if !ok || !ref.FFU {
		t.Fatalf("first acquire = %v, want the FFU", ref)
	}
	ref2, ok := f.Acquire(arch.IntALU, 3)
	if !ok || ref2.FFU || ref2.Idx != 0 {
		t.Fatalf("second acquire = %v, want RFU slot 0", ref2)
	}
	if _, ok := f.Acquire(arch.IntALU, 3); ok {
		t.Error("third acquire succeeded with both units busy")
	}
}

func TestAcquireBusyCountdown(t *testing.T) {
	f := New(0)
	ref, _ := f.Acquire(arch.FPMDU, 2)
	if !f.Busy(ref) {
		t.Fatal("unit not busy after acquire")
	}
	if f.Available(arch.FPMDU) {
		t.Fatal("type available while its only unit is busy")
	}
	f.Tick()
	if !f.Busy(ref) {
		t.Fatal("unit freed one cycle early")
	}
	f.Tick()
	if f.Busy(ref) {
		t.Fatal("unit still busy after its time")
	}
	if !f.Available(arch.FPMDU) {
		t.Fatal("type unavailable after unit freed")
	}
}

func TestExtendBusy(t *testing.T) {
	f := New(0)
	ref, _ := f.Acquire(arch.LSU, 1)
	f.ExtendBusy(ref, 2)
	f.Tick()
	f.Tick()
	if !f.Busy(ref) {
		t.Fatal("extension not applied")
	}
	f.Tick()
	if f.Busy(ref) {
		t.Fatal("unit busy past extended time")
	}
}

func TestExtendBusyPanicsOnIdle(t *testing.T) {
	f := New(0)
	defer func() {
		if recover() == nil {
			t.Error("no panic on idle extension")
		}
	}()
	f.ExtendBusy(UnitRef{FFU: true, Idx: 0}, 1)
}

func TestReconfigureInstallsAfterLatency(t *testing.T) {
	const lat = 3
	f := New(lat)
	if !f.Reconfigure(arch.IntMDU, 2) {
		t.Fatal("reconfiguration refused on empty fabric")
	}
	if !f.Reconfiguring() {
		t.Fatal("fabric not reconfiguring")
	}
	for i := 0; i < lat; i++ {
		if f.AvailableCount(arch.IntMDU) != 1 { // only the FFU
			t.Fatalf("cycle %d: RFU IntMDU visible before reconfiguration completes", i)
		}
		f.Tick()
	}
	if f.Reconfiguring() {
		t.Fatal("still reconfiguring after latency elapsed")
	}
	v := f.Allocation()
	if v.Slots[2] != arch.EncIntMDU || v.Slots[3] != arch.EncCont {
		t.Fatalf("allocation after reconfig = %v", v)
	}
	if f.AvailableCount(arch.IntMDU) != 2 {
		t.Errorf("AvailableCount = %d, want FFU + new RFU", f.AvailableCount(arch.IntMDU))
	}
}

func TestReconfigureZeroLatencyIsImmediate(t *testing.T) {
	f := New(0)
	f.Reconfigure(arch.FPALU, 5)
	if f.Allocation().Slots[5] != arch.EncFPALU {
		t.Fatal("zero-latency reconfiguration not immediate")
	}
	if f.AvailableCount(arch.FPALU) != 2 {
		t.Fatal("new unit not available immediately")
	}
}

// TestReconfigureSkipsMatchingUnit pins §3.2: an RFU already implementing
// the specified unit is not rewritten.
func TestReconfigureSkipsMatchingUnit(t *testing.T) {
	f := New(0)
	if !f.Reconfigure(arch.LSU, 4) {
		t.Fatal("first reconfiguration refused")
	}
	n := f.Reconfigurations()
	if f.Reconfigure(arch.LSU, 4) {
		t.Error("matching unit was rewritten")
	}
	if f.Reconfigurations() != n {
		t.Error("skip still counted as a reconfiguration")
	}
}

// TestBusyUnitCannotBeReconfigured pins the paper's core rule: an RFU
// executing a multicycle instruction is not reconfigured until it
// retires.
func TestBusyUnitCannotBeReconfigured(t *testing.T) {
	f := New(0)
	f.Reconfigure(arch.IntALU, 0)
	// Occupy the FFU first, then the RFU.
	f.Acquire(arch.IntALU, 5)
	ref, _ := f.Acquire(arch.IntALU, 5)
	if ref.FFU {
		t.Fatal("setup: expected the RFU instance")
	}
	if f.CanReconfigure(arch.LSU, 0) {
		t.Fatal("busy slot reported reconfigurable")
	}
	// After the instruction drains the slot becomes eligible again.
	for i := 0; i < 5; i++ {
		f.Tick()
	}
	if !f.CanReconfigure(arch.LSU, 0) {
		t.Fatal("idle slot not reconfigurable")
	}
}

func TestCanReconfigureChecksWholeOverlappedUnit(t *testing.T) {
	f := New(0)
	f.Reconfigure(arch.FPALU, 0) // spans slots 0-2
	f.Acquire(arch.FPALU, 4)     // FFU
	ref, _ := f.Acquire(arch.FPALU, 4)
	if ref.FFU {
		t.Fatal("setup: expected the RFU FPALU")
	}
	// Slot 2 is a continuation of the busy FPALU: replacing it must be
	// refused even though slot 2 itself carries no busy counter.
	if f.CanReconfigure(arch.IntALU, 2) {
		t.Error("continuation slot of a busy unit reported reconfigurable")
	}
}

func TestCanReconfigureBounds(t *testing.T) {
	f := New(0)
	if f.CanReconfigure(arch.FPMDU, arch.NumRFUSlots-2) {
		t.Error("span overrunning the fabric accepted")
	}
	if f.CanReconfigure(arch.IntALU, arch.NumRFUSlots) {
		t.Error("slot index beyond fabric accepted")
	}
	if !f.CanReconfigure(arch.FPMDU, arch.NumRFUSlots-3) {
		t.Error("legal edge span refused")
	}
}

func TestReconfigureDestroysOverlappedUnitWhole(t *testing.T) {
	f := New(0)
	f.Reconfigure(arch.FPMDU, 0) // spans 0-2
	f.Reconfigure(arch.IntALU, 1)
	v := f.Allocation()
	if v.Slots[0] != arch.EncEmpty {
		t.Errorf("slot 0 = %v, want empty (old unit removed whole)", v.Slots[0])
	}
	if v.Slots[1] != arch.EncIntALU {
		t.Errorf("slot 1 = %v, want IntALU", v.Slots[1])
	}
	if v.Slots[2] != arch.EncEmpty {
		t.Errorf("slot 2 = %v, want empty", v.Slots[2])
	}
	if err := (config.Configuration{Layout: v.Slots}).Validate(); err != nil {
		t.Errorf("allocation vector structurally invalid: %v", err)
	}
}

func TestReconfigurePanicsWhenIllegal(t *testing.T) {
	f := New(0)
	f.Reconfigure(arch.IntALU, 0)
	f.Acquire(arch.IntALU, 5)
	f.Acquire(arch.IntALU, 5) // RFU busy
	defer func() {
		if recover() == nil {
			t.Error("no panic on illegal reconfiguration")
		}
	}()
	f.Reconfigure(arch.LSU, 0)
}

func TestMidReconfigSlotBlocksNewReconfig(t *testing.T) {
	f := New(5)
	f.Reconfigure(arch.IntMDU, 0) // slots 0-1 reconfiguring
	if f.CanReconfigure(arch.IntALU, 1) {
		t.Error("mid-reconfiguration slot reported reconfigurable")
	}
	if !f.CanReconfigure(arch.IntALU, 2) {
		t.Error("unrelated slot blocked")
	}
}

func TestLoadFullConfiguration(t *testing.T) {
	f := New(0)
	cfg := config.DefaultBasis()[0]
	for _, u := range cfg.Units() {
		if !f.CanReconfigure(u.Type, u.Slot) {
			t.Fatalf("cannot place %v at slot %d", u.Type, u.Slot)
		}
		f.Reconfigure(u.Type, u.Slot)
	}
	if f.Allocation().Slots != cfg.Layout {
		t.Errorf("loaded layout %v != configuration %v", f.Allocation().Slots, cfg.Layout)
	}
	want := cfg.Counts().Add(config.FFUCounts())
	if got := f.TotalCounts(); got != want {
		t.Errorf("TotalCounts = %v, want %v", got, want)
	}
}

func TestStatisticsCounters(t *testing.T) {
	f := New(2)
	f.Reconfigure(arch.IntMDU, 0) // 2 slots * 2 cycles
	if f.Reconfigurations() != 1 {
		t.Errorf("Reconfigurations = %d", f.Reconfigurations())
	}
	if f.ReconfigurationCycles() != 4 {
		t.Errorf("ReconfigurationCycles = %d, want 4", f.ReconfigurationCycles())
	}
	f.Tick()
	f.Tick()
	f.Acquire(arch.IntALU, 3)
	f.Tick()
	f.Tick()
	f.Tick()
	if f.BusyCycles() != 3 {
		t.Errorf("BusyCycles = %d, want 3", f.BusyCycles())
	}
}

// TestAllocationAlwaysStructurallyValid is a property test: under random
// legal operations the allocation vector never becomes malformed
// (orphan continuations, overrunning spans).
func TestAllocationAlwaysStructurallyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := New(rng.Intn(4))
	for step := 0; step < 20000; step++ {
		switch rng.Intn(3) {
		case 0:
			ty := arch.UnitType(rng.Intn(arch.NumUnitTypes))
			slot := rng.Intn(arch.NumRFUSlots)
			if f.CanReconfigure(ty, slot) {
				f.Reconfigure(ty, slot)
			}
		case 1:
			ty := arch.UnitType(rng.Intn(arch.NumUnitTypes))
			f.Acquire(ty, 1+rng.Intn(5))
		case 2:
			f.Tick()
		}
		layout := config.Configuration{Layout: f.Allocation().Slots}
		if err := layout.Validate(); err != nil {
			t.Fatalf("step %d: allocation vector invalid: %v", step, err)
		}
	}
}

// TestForwardProgressGuarantee pins §3.2's closing argument: because the
// FFUs implement every unit type, every type is eventually available no
// matter what the reconfigurable fabric is doing.
func TestForwardProgressGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := New(3)
	for step := 0; step < 2000; step++ {
		ty := arch.UnitType(rng.Intn(arch.NumUnitTypes))
		slot := rng.Intn(arch.NumRFUSlots)
		if f.CanReconfigure(ty, slot) {
			f.Reconfigure(ty, slot)
		}
		f.Acquire(arch.UnitType(rng.Intn(arch.NumUnitTypes)), 1+rng.Intn(3))
		f.Tick()
	}
	// Drain all execution, leave reconfigurations running: every type
	// must become available within a bounded number of cycles.
	for i := 0; i < 50; i++ {
		f.Tick()
	}
	for _, ty := range arch.UnitTypes() {
		if !f.Available(ty) {
			t.Errorf("%v not available after drain: FFU guarantee violated", ty)
		}
	}
}

// TestConfigBusWidthSerialisesReconfiguration: with a width-1 bus only
// one span may reconfigure at a time.
func TestConfigBusWidthSerialisesReconfiguration(t *testing.T) {
	f := New(4)
	f.SetConfigBusWidth(1)
	if !f.CanReconfigure(arch.IntALU, 0) {
		t.Fatal("idle fabric refused first reconfiguration")
	}
	f.Reconfigure(arch.IntALU, 0)
	if f.CanReconfigure(arch.IntALU, 1) {
		t.Error("second span accepted while the bus is busy")
	}
	// The bus frees when the first span completes.
	for i := 0; i < 4; i++ {
		f.Tick()
	}
	if !f.CanReconfigure(arch.IntALU, 1) {
		t.Error("bus still busy after the span completed")
	}
	// Width 2 allows two concurrent spans but not three.
	g := New(4)
	g.SetConfigBusWidth(2)
	g.Reconfigure(arch.IntALU, 0)
	g.Reconfigure(arch.IntALU, 1)
	if g.CanReconfigure(arch.IntALU, 2) {
		t.Error("third span accepted on a width-2 bus")
	}
}

func TestConfigBusWidthZeroIsUnlimited(t *testing.T) {
	f := New(4)
	for s := 0; s < 4; s++ {
		if !f.CanReconfigure(arch.IntALU, s) {
			t.Fatalf("span %d refused with unlimited bus", s)
		}
		f.Reconfigure(arch.IntALU, s)
	}
}

func TestSetConfigBusWidthPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(0).SetConfigBusWidth(-1)
}

// TestFabricAvailabilityMatchesEquation1 proves the fabric's
// allocation-free fast paths equal the reference Eq. 1 implementation in
// package avail over randomized live fabrics.
func TestFabricAvailabilityMatchesEquation1(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 3000; trial++ {
		f := New(rng.Intn(3))
		if rng.Intn(4) == 0 {
			f.SetFFUsEnabled(false)
		}
		for step := 0; step < 10; step++ {
			switch rng.Intn(3) {
			case 0:
				ty := arch.UnitType(rng.Intn(arch.NumUnitTypes))
				slot := rng.Intn(arch.NumRFUSlots)
				if f.CanReconfigure(ty, slot) {
					f.Reconfigure(ty, slot)
				}
			case 1:
				f.Acquire(arch.UnitType(rng.Intn(arch.NumUnitTypes)), 1+rng.Intn(4))
			case 2:
				f.Tick()
			}
		}
		alloc := f.Allocation().Entries()
		sigs := f.AvailabilitySignals()
		wantAll := avail.AllAvailable(alloc, sigs)
		if got := f.AllAvailable(); got != wantAll {
			t.Fatalf("AllAvailable fast path %v != reference %v", got, wantAll)
		}
		for _, ty := range arch.UnitTypes() {
			if got, want := f.Available(ty), avail.Available(ty, alloc, sigs); got != want {
				t.Fatalf("Available(%v) fast path %v != reference %v", ty, got, want)
			}
			if got, want := f.AvailableCount(ty), avail.Count(ty, alloc, sigs); got != want {
				t.Fatalf("AvailableCount(%v) fast path %d != reference %d", ty, got, want)
			}
		}
	}
}

func TestUnitRefString(t *testing.T) {
	if got := (UnitRef{FFU: true, Idx: 2}).String(); got != "FFU(LSU)" {
		t.Errorf("FFU ref String = %q", got)
	}
	if got := (UnitRef{Idx: 5}).String(); got != "RFU(slot 5)" {
		t.Errorf("RFU ref String = %q", got)
	}
}
