// Package rfu models the execution fabric of Fig. 1: five fixed
// functional units (one per type) plus eight reconfigurable slots that
// partial reconfiguration rewrites at unit granularity. The fabric tracks,
// per slot, what is configured (the resource allocation vector of §3.2),
// whether the unit headed there is busy executing, and whether the slot is
// mid-reconfiguration; it exposes the per-entry availability signals the
// availability circuit of Fig. 7 consumes and enforces the paper's rule
// that only idle RFUs are ever reconfigured.
package rfu

import (
	"fmt"
	"math/bits"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/fault"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// UnitRef identifies one functional-unit instance: a fixed unit (by type)
// or a reconfigurable unit (by head slot).
type UnitRef struct {
	FFU bool
	Idx int // unit type ordinal for FFUs, head slot index for RFUs
}

// String renders the reference for traces.
func (r UnitRef) String() string {
	if r.FFU {
		return fmt.Sprintf("FFU(%v)", arch.UnitType(r.Idx))
	}
	return fmt.Sprintf("RFU(slot %d)", r.Idx)
}

// Fabric is the execution fabric. The zero value is unusable; use New.
type Fabric struct {
	alloc config.AllocationVector

	// Per reconfigurable slot.
	busy     [arch.NumRFUSlots]int           // cycles of execution left, tracked at head slots
	reconfig [arch.NumRFUSlots]int           // cycles of reconfiguration left
	target   [arch.NumRFUSlots]arch.Encoding // encoding installed when reconfiguration finishes
	// Per fixed unit.
	ffuBusy [arch.NumFFUs]int

	latency     int  // cycles to reconfigure one span
	ffuDisabled bool // X4 ablation: hide the fixed units
	// busWidth caps how many spans may reconfigure concurrently,
	// modelling the configuration bus of Fig. 1 (0 = unlimited).
	busWidth int

	// Statistics.
	reconfigurations int // spans rewritten
	reconfigCycles   int // slot-cycles spent reconfiguring
	busyCycles       int // slot+FFU cycles spent executing

	// Packed hot-path masks, maintained incrementally at the (rare)
	// mutation sites so the per-cycle availability and timer scans walk
	// only live bits instead of every slot: busyMask/reconfigMask carry
	// the slots with running execution/reconfiguration timers,
	// ffuBusyMask the busy fixed units, unitMask the head slots whose
	// encoding names a unit, and healthOKMask the packed healthOK
	// signals. allocVersion counts allocation-vector rewrites so
	// downstream consumers (the steering manager's layout classifier)
	// can memoize derived views.
	busyMask     uint16
	reconfigMask uint16
	ffuBusyMask  uint8
	unitMask     uint16
	healthOKMask uint16
	allocVersion uint64

	probe *telemetry.Probe
	spans *span.Recorder

	// Fault injection & degraded mode (see health.go). injector is nil
	// unless EnableFaults armed it; healthOK starts all-true so the
	// hot-path masks cost one array load when faults are off.
	injector       *fault.Injector
	health         [arch.NumRFUSlots]SlotHealth
	permanent      [arch.NumRFUSlots]bool // stuck fault underneath the corruption
	healthOK       [arch.NumRFUSlots]bool // span-aware usable mask (derived)
	unavailMask    uint8                  // packed non-healthy slots (incl. external leases)
	deadMask       uint8                  // packed permanently retired slots (incl. external)
	scrubCountdown int
	fstats         FaultStats

	// Cluster hooks (see internal/cluster). External masks overlay
	// slots leased to sibling cores onto the health view; the bus-load
	// and slot-busy callbacks extend the configuration-bus occupancy
	// and span-drain checks across sibling fabrics sharing the physical
	// resources. A mirror fabric reflects a master's configuration
	// (merged-mode gang sharing) while keeping private execution ports.
	// All are zero/nil by default, so a scalar fabric pays nothing.
	extUnavail  uint8
	extDead     uint8
	extBusLoad  func() int
	extSlotBusy func(int) bool
	mirror      bool
}

// New returns an empty fabric (no RFU units configured) whose span
// reconfigurations take latency cycles. A zero latency models free
// reconfiguration; negative latencies panic.
func New(latency int) *Fabric {
	if latency < 0 {
		panic("rfu: negative reconfiguration latency")
	}
	f := &Fabric{alloc: config.NewAllocationVector(), latency: latency}
	for s := range f.healthOK {
		f.healthOK[s] = true
	}
	f.healthOKMask = 1<<arch.NumRFUSlots - 1
	return f
}

// refreshAlloc rebuilds the allocation-derived mask and bumps the
// version counter. Call after any alloc.Slots mutation.
func (f *Fabric) refreshAlloc() {
	var m uint16
	for s := 0; s < arch.NumRFUSlots; s++ {
		if _, ok := arch.DecodeUnit(f.alloc.Slots[s]); ok {
			m |= 1 << uint(s)
		}
	}
	f.unitMask = m
	f.allocVersion++
}

// AllocVersion returns a counter that changes whenever the allocation
// vector does — the memoization key for derived views of the layout.
func (f *Fabric) AllocVersion() uint64 { return f.allocVersion }

// ReconfigLatency returns the per-span reconfiguration latency.
func (f *Fabric) ReconfigLatency() int { return f.latency }

// Allocation returns the current resource allocation vector.
func (f *Fabric) Allocation() config.AllocationVector { return f.alloc }

// TotalCounts returns the unit mix of the whole processor (RFUs + FFUs).
func (f *Fabric) TotalCounts() arch.Counts { return f.alloc.TotalCounts() }

// headOf returns the head slot of the unit covering slot i, or -1 when
// the slot is empty or mid-reconfiguration.
func (f *Fabric) headOf(i int) int {
	for s := i; s >= 0; s-- {
		switch e := f.alloc.Slots[s]; {
		case e == arch.EncCont:
			continue
		case e == arch.EncEmpty:
			return -1
		default:
			// A head covers slot i only if its span reaches it.
			if t, ok := arch.DecodeUnit(e); ok && s+arch.SlotCost(t) > i {
				return s
			}
			return -1
		}
	}
	return -1
}

// AvailabilitySignals returns the per-entry availability lines in
// allocation-vector order (slots then FFUs): a head slot is available
// when its unit is configured, idle and not reconfiguring; continuation
// and empty slots are never available (their encodings never match in
// Eq. 1 anyway); a fixed unit is available when idle.
func (f *Fabric) AvailabilitySignals() []bool {
	out := make([]bool, arch.NumRFUSlots+arch.NumFFUs)
	for i := 0; i < arch.NumRFUSlots; i++ {
		_, isUnit := arch.DecodeUnit(f.alloc.Slots[i])
		out[i] = isUnit && f.busy[i] == 0 && f.reconfig[i] == 0 && f.healthOK[i]
	}
	for i := 0; i < arch.NumFFUs; i++ {
		out[arch.NumRFUSlots+i] = f.ffuBusy[i] == 0 && !f.ffuDisabled
	}
	return out
}

// SetConfigBusWidth caps concurrent span reconfigurations, modelling the
// configuration bus of Fig. 1: width 1 serialises all configuration
// loading through one bus; 0 (the default) is unlimited.
func (f *Fabric) SetConfigBusWidth(w int) {
	if w < 0 {
		panic("rfu: negative config bus width")
	}
	f.busWidth = w
}

// activeSpans counts spans currently occupying the configuration bus:
// steering rewrites (the reconfiguring slots whose pending target is a
// unit encoding) and fault repairs, which rewrite one slot each and
// compete for the same bus.
func (f *Fabric) activeSpans() int {
	n := 0
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.reconfig[s] > 0 && (f.target[s] != arch.EncCont || f.health[s] == HealthRepairing) {
			n++
		}
	}
	return n
}

// ActiveSpans exposes the configuration-bus occupancy — the cluster
// layer sums it across sibling fabrics to enforce one shared bus.
func (f *Fabric) ActiveSpans() int { return f.activeSpans() }

// busLoad is the bus occupancy this fabric must respect: its own active
// spans plus whatever a cluster-installed hook reports for siblings
// sharing the physical configuration bus.
func (f *Fabric) busLoad() int {
	n := f.activeSpans()
	if f.extBusLoad != nil {
		n += f.extBusLoad()
	}
	return n
}

// SetExternalBusLoad installs a hook reporting configuration-bus
// occupancy by sibling fabrics; it is added to this fabric's own active
// spans in every bus-capacity check. nil (the default) disables it.
func (f *Fabric) SetExternalBusLoad(fn func() int) { f.extBusLoad = fn }

// SetExternalSlotBusy installs a hook reporting whether a sibling core
// is executing on slot s of the shared fabric. Reconfiguration, repair
// and salvage treat a sibling-busy slot like a locally busy one: its
// frames are not rewritten until the work drains. nil disables it.
func (f *Fabric) SetExternalSlotBusy(fn func(int) bool) { f.extSlotBusy = fn }

// SpanBusy reports whether the unit covering slot s is executing. Busy
// is tracked at head slots, so continuations resolve to their head.
// Cluster siblings consult this before rewriting shared slots.
func (f *Fabric) SpanBusy(s int) bool {
	if f.busy[s] > 0 {
		return true
	}
	head := f.headOf(s)
	return head >= 0 && f.busy[head] > 0
}

// SetMirror marks the fabric as a configuration mirror: Tick still
// advances its private execution (RFU busy, FFU) timers, but the
// reconfiguration countdowns and the fault machinery belong to the
// master fabric it reflects (see MirrorFrom). Merged-mode cluster
// cores run on mirrors of core 0's fabric.
func (f *Fabric) SetMirror(on bool) { f.mirror = on }

// MirrorFrom copies the master fabric's configuration state — the
// allocation vector and in-flight reconfiguration timers — into this
// mirror, so a gang-shared core sees the master's layout while keeping
// its own execution ports. Call once per cycle after the master ticks.
func (f *Fabric) MirrorFrom(src *Fabric) {
	if f.alloc.Slots != src.alloc.Slots {
		f.alloc.Slots = src.alloc.Slots
		f.refreshAlloc()
		if f.injector != nil || f.extUnavail != 0 {
			f.recomputeHealthOK()
		}
	}
	f.reconfig = src.reconfig
	f.target = src.target
	f.reconfigMask = src.reconfigMask
}

// SetFFUsEnabled hides or restores the fixed functional units — the X4
// ablation studying the paper's claim that FFUs guarantee forward
// progress. With FFUs disabled only configured RFUs execute instructions.
func (f *Fabric) SetFFUsEnabled(enabled bool) { f.ffuDisabled = !enabled }

// FFUsEnabled reports whether the fixed units are visible.
func (f *Fabric) FFUsEnabled() bool { return !f.ffuDisabled }

// Install loads a full configuration immediately, bypassing the
// reconfiguration latency — used to preset static-baseline machines
// before time starts. The fabric must be completely idle.
func (f *Fabric) Install(cfg config.Configuration) {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("rfu: install of invalid configuration: %v", err))
	}
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.busy[s] > 0 || f.reconfig[s] > 0 {
			panic("rfu: install on a non-idle fabric")
		}
	}
	f.alloc.Slots = cfg.Layout
	f.refreshAlloc()
	if f.injector != nil || f.extUnavail != 0 {
		f.recomputeHealthOK()
	}
}

// Available reports whether a unit of type t can accept work this cycle
// (Eq. 1 over the live allocation vector and availability signals). This
// is an allocation-free fast path; TestFabricAvailabilityMatchesEquation1
// proves it equivalent to the reference avail.Available over the built
// vectors.
func (f *Fabric) Available(t arch.UnitType) bool {
	want := arch.Encode(t)
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.alloc.Slots[s] == want && f.busy[s] == 0 && f.reconfig[s] == 0 && f.healthOK[s] {
			return true
		}
	}
	return f.ffuBusy[t] == 0 && !f.ffuDisabled
}

// AvailableCount returns how many units of type t can accept work this
// cycle.
func (f *Fabric) AvailableCount(t arch.UnitType) int {
	want := arch.Encode(t)
	n := 0
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.alloc.Slots[s] == want && f.busy[s] == 0 && f.reconfig[s] == 0 && f.healthOK[s] {
			n++
		}
	}
	if f.ffuBusy[t] == 0 && !f.ffuDisabled {
		n++
	}
	return n
}

// AvailableSet returns the per-type availability lines packed into a
// bitset (bit t set when a unit of type t can accept work this cycle).
// It walks only the configured unit heads that survive the busy,
// reconfiguring and health masks, so the per-cycle cost scales with
// live units rather than fabric size.
func (f *Fabric) AvailableSet() uint8 {
	var out uint8
	for m := f.unitMask &^ f.busyMask &^ f.reconfigMask & f.healthOKMask; m != 0; m &= m - 1 {
		s := bits.TrailingZeros16(m)
		t, _ := arch.DecodeUnit(f.alloc.Slots[s])
		out |= 1 << uint(t)
	}
	if !f.ffuDisabled {
		out |= ^f.ffuBusyMask & (1<<arch.NumFFUs - 1)
	}
	return out
}

// AllAvailable returns the per-type availability lines the wake-up array
// consumes, without allocating.
func (f *Fabric) AllAvailable() [arch.NumUnitTypes]bool {
	var out [arch.NumUnitTypes]bool
	for m := f.AvailableSet(); m != 0; m &= m - 1 {
		out[bits.TrailingZeros8(m)] = true
	}
	return out
}

// Acquire claims an idle unit of type t for busyCycles cycles of
// execution, preferring a fixed unit so the reconfigurable fabric stays
// eligible for steering. It returns ok=false when no unit of the type is
// available.
func (f *Fabric) Acquire(t arch.UnitType, busyCycles int) (UnitRef, bool) {
	if busyCycles < 1 {
		panic("rfu: acquire with non-positive busy time")
	}
	if f.ffuBusy[t] == 0 && !f.ffuDisabled {
		f.ffuBusy[t] = busyCycles
		f.ffuBusyMask |= 1 << uint(t)
		return UnitRef{FFU: true, Idx: int(t)}, true
	}
	want := arch.Encode(t)
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.alloc.Slots[s] == want && f.busy[s] == 0 && f.reconfig[s] == 0 && f.healthOK[s] {
			f.busy[s] = busyCycles
			f.busyMask |= 1 << uint(s)
			return UnitRef{Idx: s}, true
		}
	}
	return UnitRef{}, false
}

// ExtendBusy lengthens a claimed unit's remaining execution time — used
// when an instruction's latency grows in flight (e.g. a cache miss).
func (f *Fabric) ExtendBusy(r UnitRef, extra int) {
	if extra < 0 {
		panic("rfu: negative busy extension")
	}
	if r.FFU {
		if f.ffuBusy[r.Idx] == 0 {
			panic(fmt.Sprintf("rfu: ExtendBusy of idle %v", r))
		}
		f.ffuBusy[r.Idx] += extra
		return
	}
	if f.busy[r.Idx] == 0 {
		panic(fmt.Sprintf("rfu: ExtendBusy of idle %v", r))
	}
	f.busy[r.Idx] += extra
}

// Busy reports whether the referenced unit is still executing.
func (f *Fabric) Busy(r UnitRef) bool {
	if r.FFU {
		return f.ffuBusy[r.Idx] > 0
	}
	return f.busy[r.Idx] > 0
}

// SlotBusy reports whether RFU slot s is executing. Busy is tracked at
// unit head slots, so continuation slots of a busy unit report false.
func (f *Fabric) SlotBusy(s int) bool { return f.busy[s] > 0 }

// spanOf returns the slot span [start, start+n) a unit of type t would
// occupy at head slot start.
func spanOf(t arch.UnitType, start int) (int, int) {
	return start, start + arch.SlotCost(t)
}

// CanReconfigure reports whether the span a unit of type t would occupy
// at head slot start is reconfigurable right now: the span lies in the
// fabric and every slot it touches — including all slots of any existing
// unit overlapping the span — is idle and not already reconfiguring.
// This is the paper's "only reconfigure RFUs that are not busy" rule at
// span granularity.
func (f *Fabric) CanReconfigure(t arch.UnitType, start int) bool {
	lo, hi := spanOf(t, start)
	if lo < 0 || hi > arch.NumRFUSlots {
		return false
	}
	if f.busWidth > 0 && f.latency > 0 && f.busLoad() >= f.busWidth {
		return false // configuration bus fully occupied
	}
	for s := lo; s < hi; s++ {
		if f.reconfig[s] > 0 {
			return false
		}
		// Slots leased to a sibling core are that core's property; this
		// core's steering never rewrites them.
		if f.extUnavail&(1<<uint(s)) != 0 {
			return false
		}
		// Slots the controller knows are bad — flagged by the scrub,
		// mid-repair, or permanently dead — are off limits to steering;
		// the repair path owns them. Undetected corruption does not
		// block a rewrite (the controller cannot see it), and the
		// rewrite incidentally heals transient upsets.
		if h := f.health[s]; h == HealthDetected || h == HealthRepairing || h == HealthDead {
			return false
		}
		// A sibling core executing on the slot holds it like local busy
		// execution does: the span drains before any rewrite.
		if f.extSlotBusy != nil && f.extSlotBusy(s) {
			return false
		}
		head := f.headOf(s)
		if head < 0 {
			continue
		}
		// The whole overlapped unit must be idle, and destroying it
		// must not leave a busy remnant — spans are destroyed whole.
		if f.busy[head] > 0 {
			return false
		}
		// Nor may destruction strand an in-flight repair on one of the
		// unit's slots outside the new span: that repair would later
		// re-install its golden-copy continuation encoding into the
		// blanked region, orphaning it. Wait for the unit's bus
		// transactions to drain first.
		ht, _ := arch.DecodeUnit(f.alloc.Slots[head])
		hlo, hhi := spanOf(ht, head)
		for k := hlo; k < hhi; k++ {
			if f.reconfig[k] > 0 {
				return false
			}
		}
	}
	return true
}

// Reconfigure begins rewriting the span at head slot start to hold a unit
// of type t. Any existing unit overlapping the span is removed whole (its
// slots outside the new span become empty). The new unit becomes
// available after the fabric's reconfiguration latency; with a zero
// latency it is available immediately. Callers must check CanReconfigure
// first; violations panic.
//
// Reconfigure is idempotent in effect: if the span already holds exactly
// a unit of type t, it reports false and does nothing ("the RFU will not
// be reconfigured if it already implements the specified functional
// unit", §3.2).
func (f *Fabric) Reconfigure(t arch.UnitType, start int) bool {
	if !f.CanReconfigure(t, start) {
		panic(fmt.Sprintf("rfu: illegal reconfiguration of %v at slot %d", t, start))
	}
	lo, hi := spanOf(t, start)
	if f.alloc.Slots[lo] == arch.Encode(t) {
		return false // already implements the unit
	}
	// Remove overlapped units whole.
	for s := lo; s < hi; s++ {
		head := f.headOf(s)
		if head < 0 {
			continue
		}
		ht, _ := arch.DecodeUnit(f.alloc.Slots[head])
		hlo, hhi := spanOf(ht, head)
		for k := hlo; k < hhi; k++ {
			f.alloc.Slots[k] = arch.EncEmpty
		}
	}
	// Install the new span.
	for s := lo; s < hi; s++ {
		f.alloc.Slots[s] = arch.EncEmpty
		f.reconfig[s] = f.latency
		f.target[s] = arch.EncCont
	}
	if f.latency > 0 {
		f.reconfigMask |= (1<<uint(hi-lo) - 1) << uint(lo)
	}
	f.target[lo] = arch.Encode(t)
	f.reconfigurations++
	f.reconfigCycles += (hi - lo) * f.latency
	if f.probe != nil {
		f.probe.ReconfigStart(t, hi-lo, f.latency)
	}
	// The bus transaction completes in exactly latency cycles, so the
	// span is known in full at start.
	f.spans.Reconfig(lo, hi-lo, f.latency, t.String())
	if f.latency == 0 {
		for s := lo; s < hi; s++ {
			f.alloc.Slots[s] = f.target[s]
			if f.injector != nil {
				f.installHealth(s)
			}
		}
	}
	f.refreshAlloc()
	if f.injector != nil || f.extUnavail != 0 {
		f.recomputeHealthOK()
	}
	return true
}

// Tick advances one cycle: execution busy timers and reconfiguration
// timers count down, spans whose reconfiguration completes install
// their new encodings, and — when a fault injector is armed — the fault
// state machine runs (scrub, repair, salvage, new upsets). The timer
// scans walk the packed masks, so an idle fabric ticks in a few branches.
func (f *Fabric) Tick() {
	for m := f.busyMask; m != 0; m &= m - 1 {
		s := bits.TrailingZeros16(m)
		f.busy[s]--
		f.busyCycles++
		if f.busy[s] == 0 {
			f.busyMask &^= 1 << uint(s)
		}
	}
	if !f.mirror {
		installed := false
		allocChanged := false
		for m := f.reconfigMask; m != 0; m &= m - 1 {
			s := bits.TrailingZeros16(m)
			f.reconfig[s]--
			if f.reconfig[s] == 0 {
				f.reconfigMask &^= 1 << uint(s)
				f.alloc.Slots[s] = f.target[s]
				allocChanged = true
				if f.injector != nil {
					f.installHealth(s)
					installed = true
				}
			}
		}
		if allocChanged {
			f.refreshAlloc()
		}
		if installed || (allocChanged && f.extUnavail != 0) {
			f.recomputeHealthOK()
		}
	}
	for m := f.ffuBusyMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros8(m)
		f.ffuBusy[i]--
		f.busyCycles++
		if f.ffuBusy[i] == 0 {
			f.ffuBusyMask &^= 1 << uint(i)
		}
	}
	if !f.mirror && f.injector != nil {
		f.faultTick()
	}
}

// Idle reports whether the whole reconfigurable fabric is quiescent: no
// slot executing and none reconfiguring. The fixed units do not count —
// they are never reconfigured.
func (f *Fabric) Idle() bool {
	for s := 0; s < arch.NumRFUSlots; s++ {
		if f.busy[s] > 0 || f.reconfig[s] > 0 {
			return false
		}
	}
	return true
}

// Reconfiguring reports whether any slot is mid-reconfiguration.
func (f *Fabric) Reconfiguring() bool {
	for _, r := range f.reconfig {
		if r > 0 {
			return true
		}
	}
	return false
}

// SetTelemetry installs a telemetry probe notified when span rewrites
// start (nil disables; the hook then costs one branch per rewrite).
func (f *Fabric) SetTelemetry(probe *telemetry.Probe) { f.probe = probe }

// SetSpans installs a span recorder capturing reconfiguration bus
// transactions, repair windows and fault instants (nil disables; the
// recorder's methods are nil-receiver safe).
func (f *Fabric) SetSpans(r *span.Recorder) { f.spans = r }

// ReconfiguringSlots counts slots currently mid-reconfiguration — the
// sampler's in-flight reconfiguration gauge.
func (f *Fabric) ReconfiguringSlots() int {
	n := 0
	for _, r := range f.reconfig {
		if r > 0 {
			n++
		}
	}
	return n
}

// UnitStates summarises the fabric for the sampler: per-type counts of
// busy RFU heads, configured RFU heads, and busy FFUs.
func (f *Fabric) UnitStates() (rfuBusy, rfuUnits, ffuBusy arch.Counts) {
	for s := 0; s < arch.NumRFUSlots; s++ {
		if t, ok := arch.DecodeUnit(f.alloc.Slots[s]); ok {
			rfuUnits[t]++
			if f.busy[s] > 0 {
				rfuBusy[t]++
			}
		}
	}
	for t := 0; t < arch.NumFFUs; t++ {
		if f.ffuBusy[t] > 0 {
			ffuBusy[t]++
		}
	}
	return
}

// Statistics accessors.

// Reconfigurations returns the number of span rewrites started.
func (f *Fabric) Reconfigurations() int { return f.reconfigurations }

// ReconfigurationCycles returns total slot-cycles spent reconfiguring.
func (f *Fabric) ReconfigurationCycles() int { return f.reconfigCycles }

// BusyCycles returns total unit-cycles spent executing.
func (f *Fabric) BusyCycles() int { return f.busyCycles }
