// error.go is the one definition of the service error envelope: every
// non-2xx rssd response is {"error": {code, message, line, col}}, and
// Classify is the single mapping from Go errors to that envelope.
package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro"
)

// Error is the structured error every non-2xx response carries, wrapped
// as {"error": {...}}. Code is a stable machine-readable identifier;
// Line/Col pin assembly errors to their source position.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`

	// Status is the HTTP status the envelope arrived with. It is
	// client-side bookkeeping, not part of the wire document.
	Status int `json:"-"`
}

// Error makes *Error usable as a Go error on both sides of the wire.
func (e *Error) Error() string { return e.Message }

// Envelope is the wire wrapper of Error: the whole body of a non-2xx
// response.
type Envelope struct {
	Error *Error `json:"error"`
}

// Stable error codes.
const (
	CodeInvalidRequest    = "invalid_request"
	CodeAssembleError     = "assemble_error"
	CodeUnknownPolicy     = "unknown_policy"
	CodeInvalidParams     = "invalid_params"
	CodeCycleLimit        = "cycle_limit"
	CodeDeadlineExceeded  = "deadline_exceeded"
	CodeCanceled          = "canceled"
	CodeQueueFull         = "queue_full"
	CodeDraining          = "draining"
	CodeBodyTooLarge      = "body_too_large"
	CodeNotFound          = "not_found"
	CodeWorkerUnavailable = "worker_unavailable"
	CodeInternal          = "internal"
)

// Admission sentinels, mapped to 503 by Classify.
var (
	ErrQueueFull = errors.New("job queue is full")
	ErrDraining  = errors.New("server is draining")
)

// ErrNotFound marks lookups of unknown job IDs, mapped to 404.
var ErrNotFound = errors.New("not found")

// errInvalidRequest marks request-shape failures (missing program,
// negative timeout, too many points) for classification as 400s.
var errInvalidRequest = errors.New("invalid request")

// InvalidRequestf builds a 400-classified error.
func InvalidRequestf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errInvalidRequest)...)
}

// IsInvalidRequest reports whether err came from InvalidRequestf.
func IsInvalidRequest(err error) bool { return errors.Is(err, errInvalidRequest) }

// Classify maps an error from the load/validate/simulate path to its
// HTTP status and structured form. The mapping leans entirely on the
// facade's sentinel errors and errors.Is/As — no message parsing.
func Classify(err error) (int, *Error) {
	var asmErr *repro.AsmError
	var maxBytes *http.MaxBytesError
	var apiErr *Error
	switch {
	case errors.As(err, &apiErr):
		// Already classified — e.g. an envelope a worker sent back,
		// relayed verbatim by the coordinator.
		status := apiErr.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		return status, apiErr
	case errors.As(err, &asmErr):
		return http.StatusBadRequest, &Error{
			Code: CodeAssembleError, Message: err.Error(),
			Line: asmErr.Line, Col: asmErr.Col,
			Status: http.StatusBadRequest,
		}
	case errors.As(err, &maxBytes):
		return http.StatusRequestEntityTooLarge, &Error{
			Code: CodeBodyTooLarge, Message: err.Error(),
			Status: http.StatusRequestEntityTooLarge,
		}
	case errors.Is(err, repro.ErrUnknownPolicy):
		return http.StatusBadRequest, &Error{Code: CodeUnknownPolicy, Message: err.Error(), Status: http.StatusBadRequest}
	case errors.Is(err, repro.ErrInvalidParams):
		return http.StatusBadRequest, &Error{Code: CodeInvalidParams, Message: err.Error(), Status: http.StatusBadRequest}
	case errors.Is(err, errInvalidRequest):
		return http.StatusBadRequest, &Error{Code: CodeInvalidRequest, Message: err.Error(), Status: http.StatusBadRequest}
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, &Error{Code: CodeNotFound, Message: err.Error(), Status: http.StatusNotFound}
	case errors.Is(err, repro.ErrCycleLimit):
		return http.StatusUnprocessableEntity, &Error{Code: CodeCycleLimit, Message: err.Error(), Status: http.StatusUnprocessableEntity}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, &Error{Code: CodeDeadlineExceeded, Message: "request deadline exceeded", Status: http.StatusGatewayTimeout}
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, &Error{Code: CodeCanceled, Message: "request canceled", Status: http.StatusServiceUnavailable}
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable, &Error{Code: CodeQueueFull, Message: err.Error(), Status: http.StatusServiceUnavailable}
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, &Error{Code: CodeDraining, Message: err.Error(), Status: http.StatusServiceUnavailable}
	default:
		return http.StatusInternalServerError, &Error{Code: CodeInternal, Message: err.Error(), Status: http.StatusInternalServerError}
	}
}
