// Package api is the wire schema of the rssd service: the
// request/response documents of every /v1 endpoint, the structured
// error envelope each non-2xx response carries, and the mapping from
// the facade's sentinel errors to HTTP statuses. It is the single
// definition shared by the server (internal/server), the typed client
// (internal/client), and the cmd tools — a field added here is the
// field on the wire, everywhere.
package api

import (
	"encoding/json"

	"repro"
)

// AssembleRequest is the body of POST /v1/assemble.
type AssembleRequest struct {
	// Source is the assembly text, which may include .data sections.
	Source string `json:"source"`
}

// AssembleResponse reports the assembled program.
type AssembleResponse struct {
	// Instructions is the number of decoded instructions.
	Instructions int `json:"instructions"`
	// Words is the 32-bit binary encoding of the program.
	Words []uint32 `json:"words"`
	// Disassembly is the canonical one-instruction-per-line rendering.
	Disassembly string `json:"disassembly"`
	// Cached reports whether the program came from the assembly cache.
	Cached bool `json:"cached"`
}

// Program names one simulation program in either form: assembly text or
// its 32-bit binary encoding. Exactly one field is set.
type Program struct {
	Source string   `json:"source,omitempty"`
	Words  []uint32 `json:"words,omitempty"`
}

// Empty reports whether neither form is present.
func (p Program) Empty() bool { return p.Source == "" && len(p.Words) == 0 }

// RunSpec describes one simulation: the machine sizing, the
// configuration-management policy, and the run budget. The zero value
// selects the paper's reference machine under the steering policy. It is
// both the core of RunRequest and the per-point element of sweeps and
// jobs.
type RunSpec struct {
	// Policy is the configuration-management policy name; omitted or
	// empty selects "steering". Unknown names fail decoding.
	Policy repro.Policy `json:"policy"`
	// Params sizes the machine; zero fields take the reference values.
	Params repro.Params `json:"params"`
	// MaxCycles bounds the run; 0 takes the server default, and values
	// above the server cap are clamped to it.
	MaxCycles int `json:"maxCycles,omitempty"`
	// Seed feeds the random policy.
	Seed int64 `json:"seed,omitempty"`
	// MinResidency dampens configuration thrash for the steering and
	// oracle policies (cycles to hold a loaded configuration).
	MinResidency int `json:"minResidency,omitempty"`
}

// EstimateRequest is the body of POST /v1/estimate: the same program
// and spec shape as a run, answered by the analytic queueing model
// instead of the simulator. Exactly one of Source or Words must be set.
// MaxCycles, Seed and MinResidency are accepted for spec compatibility
// with /v1/run but do not influence the model.
type EstimateRequest struct {
	// Source is assembly text (assembled through the program cache).
	Source string `json:"source,omitempty"`
	// Words is the binary program form, for pre-assembled jobs.
	Words []uint32 `json:"words,omitempty"`

	RunSpec
}

// EstimateResponse reports one analytic prediction.
type EstimateResponse struct {
	// Estimate is the model's prediction: IPC, per-class utilisation
	// and queueing delay, bottleneck, and the validity envelope.
	Estimate repro.Estimate `json:"estimate"`
	// ElapsedUs is the wall-clock model solve time in microseconds —
	// the number to compare against RunResponse.ElapsedMs.
	ElapsedUs float64 `json:"elapsedUs"`
	// Cached reports whether the program came from the assembly cache.
	Cached bool `json:"cached"`
}

// RunRequest is the body of POST /v1/run. Exactly one of Source or
// Words must be set.
type RunRequest struct {
	// Source is assembly text (assembled through the program cache).
	Source string `json:"source,omitempty"`
	// Words is the binary program form, for pre-assembled jobs.
	Words []uint32 `json:"words,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline,
	// capped at the server maximum.
	TimeoutMs int `json:"timeoutMs,omitempty"`

	RunSpec
}

// RunResponse reports one completed simulation.
type RunResponse struct {
	// Report is the machine's JSON run report (stats, IPC, cache and
	// predictor rates, reconfiguration counts).
	Report json.RawMessage `json:"report"`
	// ElapsedMs is the wall-clock simulation time in milliseconds.
	ElapsedMs float64 `json:"elapsedMs"`
	// Cached reports whether the program came from the assembly cache.
	Cached bool `json:"cached"`
}

// ClusterReport is the report document a run produces when the spec
// requests a multi-core cluster (params.Cores > 1): the cluster-level
// aggregates plus one full scalar report per core. It rides in the
// same RunResponse.Report / PointResult.Report slot scalar reports
// use; clients discriminate on the "cluster" key.
type ClusterReport struct {
	Cluster ClusterSummary `json:"cluster"`
	// Cores holds each core's scalar run report, index = core id.
	Cores []json.RawMessage `json:"cores"`
}

// ClusterSummary is the cluster-level aggregate block of a
// ClusterReport.
type ClusterSummary struct {
	Cores        int     `json:"cores"`
	Mode         string  `json:"mode"`
	Arbiter      string  `json:"arbiter"`
	ModeSwitches int     `json:"modeSwitches"`
	Cycles       int     `json:"cycles"`
	AggregateIPC float64 `json:"aggregateIPC"`
	Fairness     float64 `json:"fairness"`
}

// SweepRequest is the body of POST /v1/sweep: one program fanned out
// over a grid of run specifications. Exactly one of Source or Words
// must be set.
//
// Deprecated: /v1/sweep is the synchronous legacy surface, kept as a
// thin wrapper over the jobs path (POST /v1/jobs). New callers should
// submit a job and stream /v1/jobs/{id}/events instead — a sweep's
// results die with the connection, a job's survive in the store.
type SweepRequest struct {
	Source string   `json:"source,omitempty"`
	Words  []uint32 `json:"words,omitempty"`
	// Points is the grid, one RunSpec per simulation.
	Points []RunSpec `json:"points"`
	// TimeoutMs bounds the whole sweep, not each point.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// SweepResponse reports a completed sweep. Point failures (say, one
// point exhausting its cycle budget) are data, not request failures:
// they ride in the point's Error field while the sweep returns 200.
type SweepResponse struct {
	Points    []SweepPointResult `json:"points"`
	ElapsedMs float64            `json:"elapsedMs"`
	Cached    bool               `json:"cached"`
}

// SweepPointResult is one grid point's outcome: a report or an error.
type SweepPointResult struct {
	Index  int             `json:"index"`
	Policy string          `json:"policy"`
	Report json.RawMessage `json:"report,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

// HealthResponse is the body of GET /v1/healthz.
type HealthResponse struct {
	// Status is "ok", or "draining" once shutdown has begun.
	Status string `json:"status"`
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// Running is the number of simulations currently executing.
	Running int `json:"running"`
	// Admitted is the number of jobs admitted and not yet finished
	// (running plus waiting for a worker slot).
	Admitted int `json:"admitted"`
}
