// jobs.go is the wire schema of the jobs surface: submit a sweep as a
// durable job, poll its status, stream per-point results as they land,
// cancel it. Jobs survive worker deaths and coordinator restarts —
// see internal/job for the store and scheduling semantics.
package api

import "encoding/json"

// JobState is the lifecycle state of a job.
type JobState string

const (
	// JobPending: accepted and persisted, no point dispatched yet.
	JobPending JobState = "pending"
	// JobRunning: at least one point dispatched, results accumulating.
	JobRunning JobState = "running"
	// JobDone: every point has a result (point-level failures are data,
	// carried in the point's Error field).
	JobDone JobState = "done"
	// JobCancelled: cancelled by DELETE /v1/jobs/{id}; completed points
	// keep their results, the rest never run.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobCancelled }

// JobRequest is the body of POST /v1/jobs: one program fanned out over
// a grid of run specifications, executed asynchronously across the
// worker set. Exactly one of Source or Words must be set.
type JobRequest struct {
	Source string   `json:"source,omitempty"`
	Words  []uint32 `json:"words,omitempty"`
	// Points is the grid, one RunSpec per simulation.
	Points []RunSpec `json:"points"`
	// PointTimeoutMs bounds each point's simulation (0 takes the server
	// default, capped at the server maximum). A point that exceeds it
	// fails as data; the job still completes.
	PointTimeoutMs int `json:"pointTimeoutMs,omitempty"`
	// Label is a free-form tag echoed in status and listings.
	Label string `json:"label,omitempty"`
}

// JobCreated is the 202 body of POST /v1/jobs.
type JobCreated struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Total int      `json:"total"`
}

// PointResult is one grid point's outcome: a report or an error, plus
// scheduling provenance (which worker ran it, after how many requeues).
type PointResult struct {
	Index     int             `json:"index"`
	Policy    string          `json:"policy"`
	Report    json.RawMessage `json:"report,omitempty"`
	Error     *Error          `json:"error,omitempty"`
	ElapsedMs float64         `json:"elapsedMs,omitempty"`
	// Attempts counts dispatches of this point: 1 for a clean run, more
	// when worker deaths requeued it.
	Attempts int `json:"attempts,omitempty"`
	// Worker names the executor that produced the result.
	Worker string `json:"worker,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id} and the elements of
// GET /v1/jobs.
type JobStatus struct {
	ID    string   `json:"id"`
	Label string   `json:"label,omitempty"`
	State JobState `json:"state"`
	// Total, Done, Failed count grid points: Done includes Failed
	// (failed points have a result — an error).
	Total  int `json:"total"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Requeues counts points re-dispatched after a worker failure.
	Requeues int `json:"requeues"`
	// Points carries the per-point results, completed ones only, when
	// the request asked for them (?results=1).
	Points []PointResult `json:"points,omitempty"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// Job event types on the GET /v1/jobs/{id}/events JSONL stream.
const (
	// EventPoint carries one completed point result.
	EventPoint = "point"
	// EventState reports a state transition; a terminal state ends the
	// stream.
	EventState = "state"
)

// JobEvent is one line of the events stream: application/x-ndjson, one
// JSON document per line, flushed as results land. The stream replays
// already-completed points first, then follows the live job; it ends
// after a terminal EventState line.
type JobEvent struct {
	Type string `json:"type"`
	// Point is set on EventPoint lines.
	Point *PointResult `json:"point,omitempty"`
	// State, Done and Total are set on EventState lines.
	State JobState `json:"state,omitempty"`
	Done  int      `json:"done,omitempty"`
	Total int      `json:"total,omitempty"`
}
