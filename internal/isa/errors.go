package isa

import "fmt"

// AsmError is an assembly failure pinned to a source position: the
// 1-based line (and column when known; 0 otherwise) plus the underlying
// cause. Assemble and AssembleUnit return *AsmError for every
// source-level failure, so tools can report positions structurally
// (errors.As) instead of parsing "line N:" prefixes out of messages.
type AsmError struct {
	Line int   // 1-based source line
	Col  int   // 1-based column of the offending token, 0 when unknown
	Err  error // the underlying cause
}

// Error renders the conventional "line N: cause" form.
func (e *AsmError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("line %d:%d: %v", e.Line, e.Col, e.Err)
	}
	return fmt.Sprintf("line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *AsmError) Unwrap() error { return e.Err }

// asmErr wraps err (unless it already is an *AsmError) with the line.
func asmErr(line int, err error) error {
	if _, ok := err.(*AsmError); ok {
		return err
	}
	return &AsmError{Line: line, Err: err}
}

// asmErrf is asmErr over a fresh formatted cause.
func asmErrf(line int, format string, args ...any) error {
	return &AsmError{Line: line, Err: fmt.Errorf(format, args...)}
}
