package isa

import (
	"math"
	"testing"
	"testing/quick"
)

// Property tests pinning each ALU opcode's semantics against direct Go
// computation over random operands, via testing/quick.

// exec1 runs one R-format instruction over two operand values.
func exec1(op Opcode, a, b uint32) uint32 {
	s := newState()
	s.WriteReg(1, a)
	s.WriteReg(2, b)
	if err := Exec(New(op, 3, 1, 2, 0), s); err != nil {
		panic(err)
	}
	return s.ReadReg(3)
}

func TestQuickIntegerALUSemantics(t *testing.T) {
	cases := []struct {
		op Opcode
		f  func(a, b uint32) uint32
	}{
		{ADD, func(a, b uint32) uint32 { return a + b }},
		{SUB, func(a, b uint32) uint32 { return a - b }},
		{AND, func(a, b uint32) uint32 { return a & b }},
		{OR, func(a, b uint32) uint32 { return a | b }},
		{XOR, func(a, b uint32) uint32 { return a ^ b }},
		{SLL, func(a, b uint32) uint32 { return a << (b & 31) }},
		{SRL, func(a, b uint32) uint32 { return a >> (b & 31) }},
		{SRA, func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }},
		{SLT, func(a, b uint32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		}},
		{SLTU, func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		}},
		{MUL, func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) }},
		{MULH, func(a, b uint32) uint32 { return uint32(int64(int32(a)) * int64(int32(b)) >> 32) }},
	}
	for _, c := range cases {
		c := c
		prop := func(a, b uint32) bool { return exec1(c.op, a, b) == c.f(a, b) }
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

func TestQuickDivisionSemantics(t *testing.T) {
	div := func(a, b uint32) bool {
		got := exec1(DIV, a, b)
		var want uint32
		switch {
		case b == 0:
			want = ^uint32(0)
		case int32(a) == math.MinInt32 && int32(b) == -1:
			want = a
		default:
			want = uint32(int32(a) / int32(b))
		}
		return got == want
	}
	if err := quick.Check(div, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("DIV: %v", err)
	}
	remu := func(a, b uint32) bool {
		got := exec1(REMU, a, b)
		if b == 0 {
			return got == a
		}
		return got == a%b
	}
	if err := quick.Check(remu, &quick.Config{MaxCount: 1000}); err != nil {
		t.Errorf("REMU: %v", err)
	}
}

// TestQuickDivRemIdentity: for nonzero divisors without overflow,
// quotient*divisor + remainder == dividend.
func TestQuickDivRemIdentity(t *testing.T) {
	prop := func(a, b uint32) bool {
		if b == 0 || (int32(a) == math.MinInt32 && int32(b) == -1) {
			return true
		}
		q := int32(exec1(DIV, a, b))
		r := int32(exec1(REM, a, b))
		return q*int32(b)+r == int32(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickFPSemantics: FP ops match float32 arithmetic bit-for-bit.
func TestQuickFPSemantics(t *testing.T) {
	execFP := func(op Opcode, a, b float32) float32 {
		s := newState()
		s.WriteFloat(FPBase+1, a)
		s.WriteFloat(FPBase+2, b)
		if err := Exec(Inst{Op: op, Rd: FPBase + 3, Rs1: FPBase + 1, Rs2: FPBase + 2}, s); err != nil {
			panic(err)
		}
		return s.ReadFloat(FPBase + 3)
	}
	sameBits := func(a, b float32) bool { return math.Float32bits(a) == math.Float32bits(b) }
	cases := []struct {
		op Opcode
		f  func(a, b float32) float32
	}{
		{FADD, func(a, b float32) float32 { return a + b }},
		{FSUB, func(a, b float32) float32 { return a - b }},
		{FMUL, func(a, b float32) float32 { return a * b }},
		{FDIV, func(a, b float32) float32 { return a / b }},
	}
	for _, c := range cases {
		c := c
		prop := func(ab, bb uint32) bool {
			a := math.Float32frombits(ab)
			b := math.Float32frombits(bb)
			got := execFP(c.op, a, b)
			want := c.f(a, b)
			if math.IsNaN(float64(want)) {
				return math.IsNaN(float64(got))
			}
			return sameBits(got, want)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

// TestQuickImmediateOps: I-format semantics over random operands and
// in-range immediates.
func TestQuickImmediateOps(t *testing.T) {
	prop := func(a uint32, rawImm int16) bool {
		imm := int32(rawImm) % (MaxImm14 + 1)
		s := newState()
		s.WriteReg(1, a)
		Exec(New(ADDI, 2, 1, 0, imm), s)
		Exec(New(XORI, 3, 1, 0, imm), s)
		Exec(New(ORI, 4, 1, 0, imm), s)
		Exec(New(ANDI, 5, 1, 0, imm), s)
		return s.ReadReg(2) == a+uint32(imm) &&
			s.ReadReg(3) == a^uint32(imm) &&
			s.ReadReg(4) == a|uint32(imm) &&
			s.ReadReg(5) == a&uint32(imm)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickBranchSymmetry: BEQ and BNE are complementary, as are
// BLT/BGE and BLTU/BGEU.
func TestQuickBranchSymmetry(t *testing.T) {
	taken := func(op Opcode, a, b uint32) bool {
		s := newState()
		s.WriteReg(1, a)
		s.WriteReg(2, b)
		s.PC = 10
		Exec(New(op, 0, 1, 2, 5), s)
		return s.PC == 15
	}
	prop := func(a, b uint32) bool {
		return taken(BEQ, a, b) != taken(BNE, a, b) &&
			taken(BLT, a, b) != taken(BGE, a, b) &&
			taken(BLTU, a, b) != taken(BGEU, a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
