package isa

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Unit is a fully assembled translation unit: the instruction stream plus
// the initial data-memory image the source's .data sections declared.
type Unit struct {
	Program Program
	Data    []DataSegment
}

// DataSegment is one initialised span of data memory.
type DataSegment struct {
	Addr  uint32
	Bytes []byte
}

// DataWriter is the subset of the memory interface needed to apply data
// segments (satisfied by mem.Memory).
type DataWriter interface {
	StoreByte(addr uint32, v uint8)
}

// Apply writes every data segment into memory.
func (u *Unit) Apply(m DataWriter) {
	for _, seg := range u.Data {
		for i, b := range seg.Bytes {
			m.StoreByte(seg.Addr+uint32(i), b)
		}
	}
}

// AssembleUnit assembles a source file that may contain data directives
// alongside code. Directives:
//
//	.data 0x1000      switch to data mode at the given byte address
//	.text             switch back to code mode
//	.word 1, -2, 0x3  emit 32-bit little-endian words
//	.half 7, 8        emit 16-bit values
//	.byte 1, 2, 3     emit bytes
//	.float 1.5, -2.0  emit float32 bit patterns
//	.space 64         reserve (zero) bytes
//
// Labels defined in data mode name byte addresses; the two-instruction
// pseudo `la rd, label` (lui+ori) loads such an address — or any code
// label's instruction index — into a register. Plain Assemble rejects
// directives; use it for code-only sources.
func AssembleUnit(src string) (*Unit, error) {
	lines := strings.Split(src, "\n")

	// Pass 1: walk lines tracking both the instruction counter and the
	// data cursor; record every label with the value it names.
	labels := make(map[string]int)
	type pending struct {
		line int
		text string
		pc   int
		data bool // directive handled in pass 2's data walk
	}
	var items []pending
	pc := 0
	dataMode := false
	dataCursor := 0
	for lineNo, raw := range lines {
		text := stripComment(raw)
		for {
			text = strings.TrimSpace(text)
			colon := strings.Index(text, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(text[:colon])
			if !isIdent(label) {
				return nil, asmErrf(lineNo+1, "bad label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, asmErrf(lineNo+1, "duplicate label %q", label)
			}
			if dataMode {
				labels[label] = dataCursor
			} else {
				labels[label] = pc
			}
			text = text[colon+1:]
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ".") {
			size, mode, addr, err := directiveSize(text)
			if err != nil {
				return nil, asmErr(lineNo+1, err)
			}
			switch mode {
			case "data":
				dataMode = true
				dataCursor = addr
			case "text":
				dataMode = false
			default:
				if !dataMode {
					return nil, asmErrf(lineNo+1, "%s outside a .data section", text)
				}
				items = append(items, pending{lineNo + 1, text, dataCursor, true})
				dataCursor += size
			}
			continue
		}
		if dataMode {
			return nil, asmErrf(lineNo+1, "instruction inside a .data section")
		}
		width, err := instWidthUnit(text)
		if err != nil {
			return nil, asmErr(lineNo+1, err)
		}
		items = append(items, pending{lineNo + 1, text, pc, false})
		pc += width
	}

	// Pass 2: emit code and data.
	u := &Unit{}
	var seg *DataSegment
	for _, it := range items {
		if it.data {
			bytes, err := directiveBytes(it.text)
			if err != nil {
				return nil, asmErr(it.line, err)
			}
			if seg == nil || int(seg.Addr)+len(seg.Bytes) != it.pc {
				u.Data = append(u.Data, DataSegment{Addr: uint32(it.pc)})
				seg = &u.Data[len(u.Data)-1]
			}
			seg.Bytes = append(seg.Bytes, bytes...)
			continue
		}
		insts, err := parseInstUnit(it.text, it.pc, labels)
		if err != nil {
			return nil, asmErr(it.line, err)
		}
		u.Program = append(u.Program, insts...)
	}
	return u, nil
}

// MustAssembleUnit is AssembleUnit for known-good sources.
func MustAssembleUnit(src string) *Unit {
	u, err := AssembleUnit(src)
	if err != nil {
		panic(err)
	}
	return u
}

// directiveSize returns the byte size a directive contributes (pass 1),
// or signals the data/text mode switches.
func directiveSize(text string) (size int, mode string, addr int, err error) {
	mnem, rest := splitMnemonic(text)
	ops := splitOperands(rest)
	switch mnem {
	case ".data":
		if len(ops) != 1 {
			return 0, "", 0, fmt.Errorf(".data wants an address")
		}
		v, err := strconv.ParseUint(ops[0], 0, 32)
		if err != nil {
			return 0, "", 0, fmt.Errorf("bad .data address %q", ops[0])
		}
		return 0, "data", int(v), nil
	case ".text":
		return 0, "text", 0, nil
	case ".word", ".float":
		return 4 * len(ops), "", 0, nil
	case ".half":
		return 2 * len(ops), "", 0, nil
	case ".byte":
		return len(ops), "", 0, nil
	case ".space":
		if len(ops) != 1 {
			return 0, "", 0, fmt.Errorf(".space wants a byte count")
		}
		v, err := strconv.ParseUint(ops[0], 0, 24)
		if err != nil {
			return 0, "", 0, fmt.Errorf("bad .space count %q", ops[0])
		}
		return int(v), "", 0, nil
	}
	return 0, "", 0, fmt.Errorf("unknown directive %q", mnem)
}

// directiveBytes renders a data directive's bytes (pass 2).
func directiveBytes(text string) ([]byte, error) {
	mnem, rest := splitMnemonic(text)
	ops := splitOperands(rest)
	var out []byte
	switch mnem {
	case ".word":
		for _, op := range ops {
			v, err := parseConst(op)
			if err != nil {
				return nil, err
			}
			u := uint32(v)
			out = append(out, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
	case ".half":
		for _, op := range ops {
			v, err := parseConst(op)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(v), byte(v>>8))
		}
	case ".byte":
		for _, op := range ops {
			v, err := parseConst(op)
			if err != nil {
				return nil, err
			}
			out = append(out, byte(v))
		}
	case ".float":
		for _, op := range ops {
			f, err := strconv.ParseFloat(op, 32)
			if err != nil {
				return nil, fmt.Errorf("bad float %q", op)
			}
			u := math.Float32bits(float32(f))
			out = append(out, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
	case ".space":
		v, _ := strconv.ParseUint(ops[0], 0, 24)
		out = make([]byte, v)
	default:
		return nil, fmt.Errorf("unknown directive %q", mnem)
	}
	return out, nil
}

// instWidthUnit extends instWidth with the fixed-width la pseudo.
func instWidthUnit(text string) (int, error) {
	mnem, _ := splitMnemonic(text)
	if mnem == "la" {
		return 2, nil
	}
	return instWidth(text)
}

// parseInstUnit extends parseInst with the la pseudo: load a label's
// value (data byte address or code instruction index) via lui+ori.
func parseInstUnit(text string, pc int, labels map[string]int) ([]Inst, error) {
	mnem, rest := splitMnemonic(text)
	if mnem != "la" {
		return parseInst(text, pc, labels)
	}
	ops := splitOperands(rest)
	if len(ops) != 2 {
		return nil, fmt.Errorf("la wants 2 operands")
	}
	rd, fp, err := parseReg(ops[0])
	if err != nil {
		return nil, err
	}
	if fp {
		return nil, fmt.Errorf("la destination must be an integer register")
	}
	target, ok := labels[ops[1]]
	if !ok {
		return nil, fmt.Errorf("unknown label %q", ops[1])
	}
	u := uint32(target)
	return []Inst{
		New(LUI, rd, 0, 0, int32(u>>LUIShift)),
		New(ORI, rd, rd, 0, int32(u&(1<<LUIShift-1))),
	}, nil
}
