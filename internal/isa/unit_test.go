package isa

import (
	"math"
	"testing"
)

func TestAssembleUnitDataSections(t *testing.T) {
	u, err := AssembleUnit(`
		.data 0x1000
	vec:
		.word 1, 2, 3, -4
	tag:
		.byte 0xaa, 0xbb
		.half 0x1234
		.float 1.5
	buf:
		.space 8
		.text
	start:
		la r1, vec
		lw r2, 0(r1)
		la r3, start
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	mem := testMem{}
	u.Apply(mem)

	if got := mem.LoadWord(0x1000); got != 1 {
		t.Errorf("vec[0] = %d", got)
	}
	if got := int32(mem.LoadWord(0x100c)); got != -4 {
		t.Errorf("vec[3] = %d", got)
	}
	if mem.LoadByte(0x1010) != 0xaa || mem.LoadByte(0x1011) != 0xbb {
		t.Error("bytes wrong")
	}
	if mem.LoadHalf(0x1012) != 0x1234 {
		t.Error("half wrong")
	}
	if f := math.Float32frombits(mem.LoadWord(0x1014)); f != 1.5 {
		t.Errorf("float = %v", f)
	}

	// Run it: r1 must hold the vec address, r2 the first word, r3 the
	// index of the first instruction.
	s := &State{Mem: mem}
	if _, err := Run(u.Program, s, 100); err != nil {
		t.Fatal(err)
	}
	if s.ReadReg(1) != 0x1000 {
		t.Errorf("la vec -> %#x", s.ReadReg(1))
	}
	if s.ReadReg(2) != 1 {
		t.Errorf("loaded %d, want 1", s.ReadReg(2))
	}
	if s.ReadReg(3) != 0 {
		t.Errorf("la start -> %d, want 0", s.ReadReg(3))
	}
}

func TestAssembleUnitContiguousSegmentsMerge(t *testing.T) {
	u := MustAssembleUnit(`
		.data 0x2000
		.word 1
		.word 2
		.data 0x3000
		.word 3
		.text
		halt
	`)
	if len(u.Data) != 2 {
		t.Fatalf("segments = %d, want 2 (contiguous words merged)", len(u.Data))
	}
	if u.Data[0].Addr != 0x2000 || len(u.Data[0].Bytes) != 8 {
		t.Errorf("segment 0 = %+v", u.Data[0])
	}
	if u.Data[1].Addr != 0x3000 || len(u.Data[1].Bytes) != 4 {
		t.Errorf("segment 1 = %+v", u.Data[1])
	}
}

func TestAssembleUnitErrors(t *testing.T) {
	cases := []string{
		".bogus 1",
		".word 1",                     // data directive outside .data
		".data 0x100\nadd r1, r2, r3", // instruction inside .data
		".data notanaddr",
		".data 0x100\n.float nope",
		".data 0x100\n.space nope",
		"la r1, nowhere",
		"la f1, x\nx: halt",
	}
	for _, src := range cases {
		if _, err := AssembleUnit(src); err == nil {
			t.Errorf("AssembleUnit(%q) succeeded", src)
		}
	}
}

// TestAssembleRejectsDirectives: the plain code-only assembler refuses
// directive sources rather than mis-assembling them.
func TestAssembleRejectsDirectives(t *testing.T) {
	if _, err := Assemble(".data 0x1000\n.word 5\nhalt"); err == nil {
		t.Error("Assemble accepted directives")
	}
}

// TestAssembleUnitEndToEnd: a self-contained dot product over .data
// arrays, functionally executed.
func TestAssembleUnitEndToEnd(t *testing.T) {
	u := MustAssembleUnit(`
		.data 0x1000
	a:	.word 1, 2, 3, 4
	b:	.word 10, 20, 30, 40
		.text
		la r10, a
		la r11, b
		li r12, 4
		li r1, 0
		li r2, 0
	loop:
		slli r5, r1, 2
		add r6, r5, r10
		lw r3, 0(r6)
		add r7, r5, r11
		lw r4, 0(r7)
		mul r8, r3, r4
		add r2, r2, r8
		addi r1, r1, 1
		bne r1, r12, loop
		halt
	`)
	mem := testMem{}
	u.Apply(mem)
	s := &State{Mem: mem}
	if _, err := Run(u.Program, s, 10000); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadReg(2); got != 300 {
		t.Errorf("dot = %d, want 300", got)
	}
}
