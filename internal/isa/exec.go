package isa

import (
	"fmt"
	"math"
)

// DataMemory is the interface the functional semantics use to touch data
// memory. Package mem provides the canonical implementation.
type DataMemory interface {
	LoadWord(addr uint32) uint32
	StoreWord(addr uint32, v uint32)
	LoadHalf(addr uint32) uint16
	StoreHalf(addr uint32, v uint16)
	LoadByte(addr uint32) uint8
	StoreByte(addr uint32, v uint8)
}

// State is the architectural state of the machine: 32 integer + 32 FP
// registers addressed through the unified index space, a program counter
// expressed as an instruction index, and data memory.
type State struct {
	Reg    [NumRegs]uint32 // FP registers hold float32 bit patterns
	PC     uint32          // instruction index, not a byte address
	Halted bool
	Mem    DataMemory
}

// ReadReg returns the value of unified register r; x0 always reads zero.
func (s *State) ReadReg(r uint8) uint32 {
	if r == RegZero {
		return 0
	}
	return s.Reg[r]
}

// WriteReg sets unified register r; writes to x0 are discarded.
func (s *State) WriteReg(r uint8, v uint32) {
	if r != RegZero {
		s.Reg[r] = v
	}
}

// ReadFloat returns the float32 held in unified register r.
func (s *State) ReadFloat(r uint8) float32 {
	return math.Float32frombits(s.ReadReg(r))
}

// WriteFloat stores a float32 into unified register r.
func (s *State) WriteFloat(r uint8, v float32) {
	s.WriteReg(r, math.Float32bits(v))
}

// boolWord converts a predicate to the 0/1 word the comparison opcodes
// produce.
func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Exec applies one instruction's architectural semantics to s: registers,
// memory and the PC. Branch immediates are word offsets relative to the
// branch's own index. Division by zero follows the RISC-V convention
// (quotient all-ones, remainder = dividend) so no trap path is needed.
func Exec(in Inst, s *State) error {
	nextPC := s.PC + 1
	a := s.ReadReg(in.Rs1)
	b := s.ReadReg(in.Rs2)
	fa := s.ReadFloat(in.Rs1)
	fb := s.ReadFloat(in.Rs2)

	switch in.Op {
	case NOP:
	case HALT:
		s.Halted = true
		nextPC = s.PC

	// Integer ALU.
	case ADD:
		s.WriteReg(in.Rd, a+b)
	case SUB:
		s.WriteReg(in.Rd, a-b)
	case AND:
		s.WriteReg(in.Rd, a&b)
	case OR:
		s.WriteReg(in.Rd, a|b)
	case XOR:
		s.WriteReg(in.Rd, a^b)
	case SLL:
		s.WriteReg(in.Rd, a<<(b&31))
	case SRL:
		s.WriteReg(in.Rd, a>>(b&31))
	case SRA:
		s.WriteReg(in.Rd, uint32(int32(a)>>(b&31)))
	case SLT:
		s.WriteReg(in.Rd, boolWord(int32(a) < int32(b)))
	case SLTU:
		s.WriteReg(in.Rd, boolWord(a < b))
	case ADDI:
		s.WriteReg(in.Rd, a+uint32(in.Imm))
	case ANDI:
		s.WriteReg(in.Rd, a&uint32(in.Imm))
	case ORI:
		s.WriteReg(in.Rd, a|uint32(in.Imm))
	case XORI:
		s.WriteReg(in.Rd, a^uint32(in.Imm))
	case SLTI:
		s.WriteReg(in.Rd, boolWord(int32(a) < in.Imm))
	case SLLI:
		s.WriteReg(in.Rd, a<<(uint32(in.Imm)&31))
	case SRLI:
		s.WriteReg(in.Rd, a>>(uint32(in.Imm)&31))
	case SRAI:
		s.WriteReg(in.Rd, uint32(int32(a)>>(uint32(in.Imm)&31)))
	case LUI:
		s.WriteReg(in.Rd, uint32(in.Imm)<<LUIShift)

	// Control flow.
	case BEQ:
		if a == b {
			nextPC = s.PC + uint32(in.Imm)
		}
	case BNE:
		if a != b {
			nextPC = s.PC + uint32(in.Imm)
		}
	case BLT:
		if int32(a) < int32(b) {
			nextPC = s.PC + uint32(in.Imm)
		}
	case BGE:
		if int32(a) >= int32(b) {
			nextPC = s.PC + uint32(in.Imm)
		}
	case BLTU:
		if a < b {
			nextPC = s.PC + uint32(in.Imm)
		}
	case BGEU:
		if a >= b {
			nextPC = s.PC + uint32(in.Imm)
		}
	case JAL:
		s.WriteReg(in.Rd, s.PC+1)
		nextPC = s.PC + uint32(in.Imm)
	case JALR:
		s.WriteReg(in.Rd, s.PC+1)
		nextPC = a + uint32(in.Imm)

	// Integer multiply/divide.
	case MUL:
		s.WriteReg(in.Rd, uint32(int32(a)*int32(b)))
	case MULH:
		s.WriteReg(in.Rd, uint32(int64(int32(a))*int64(int32(b))>>32))
	case DIV:
		if b == 0 {
			s.WriteReg(in.Rd, ^uint32(0))
		} else if int32(a) == math.MinInt32 && int32(b) == -1 {
			s.WriteReg(in.Rd, a) // overflow case: quotient = dividend
		} else {
			s.WriteReg(in.Rd, uint32(int32(a)/int32(b)))
		}
	case DIVU:
		if b == 0 {
			s.WriteReg(in.Rd, ^uint32(0))
		} else {
			s.WriteReg(in.Rd, a/b)
		}
	case REM:
		if b == 0 {
			s.WriteReg(in.Rd, a)
		} else if int32(a) == math.MinInt32 && int32(b) == -1 {
			s.WriteReg(in.Rd, 0)
		} else {
			s.WriteReg(in.Rd, uint32(int32(a)%int32(b)))
		}
	case REMU:
		if b == 0 {
			s.WriteReg(in.Rd, a)
		} else {
			s.WriteReg(in.Rd, a%b)
		}

	// Loads and stores.
	case LW:
		s.WriteReg(in.Rd, s.Mem.LoadWord(a+uint32(in.Imm)))
	case LH:
		s.WriteReg(in.Rd, uint32(int32(int16(s.Mem.LoadHalf(a+uint32(in.Imm))))))
	case LB:
		s.WriteReg(in.Rd, uint32(int32(int8(s.Mem.LoadByte(a+uint32(in.Imm))))))
	case LBU:
		s.WriteReg(in.Rd, uint32(s.Mem.LoadByte(a+uint32(in.Imm))))
	case SW:
		s.Mem.StoreWord(a+uint32(in.Imm), b)
	case SH:
		s.Mem.StoreHalf(a+uint32(in.Imm), uint16(b))
	case SB:
		s.Mem.StoreByte(a+uint32(in.Imm), uint8(b))
	case FLW:
		s.WriteReg(in.Rd, s.Mem.LoadWord(a+uint32(in.Imm)))
	case FSW:
		s.Mem.StoreWord(a+uint32(in.Imm), b)

	// Floating-point ALU.
	case FADD:
		s.WriteFloat(in.Rd, fa+fb)
	case FSUB:
		s.WriteFloat(in.Rd, fa-fb)
	case FMIN:
		s.WriteFloat(in.Rd, float32(math.Min(float64(fa), float64(fb))))
	case FMAX:
		s.WriteFloat(in.Rd, float32(math.Max(float64(fa), float64(fb))))
	case FABS:
		s.WriteFloat(in.Rd, float32(math.Abs(float64(fa))))
	case FNEG:
		s.WriteFloat(in.Rd, -fa)
	case FEQ:
		s.WriteReg(in.Rd, boolWord(fa == fb))
	case FLT:
		s.WriteReg(in.Rd, boolWord(fa < fb))
	case FLE:
		s.WriteReg(in.Rd, boolWord(fa <= fb))
	case FCVTWS:
		s.WriteReg(in.Rd, uint32(int32(fa)))
	case FCVTSW:
		s.WriteFloat(in.Rd, float32(int32(a)))
	case FMVWX:
		s.WriteReg(in.Rd, a)
	case FMVXW:
		s.WriteReg(in.Rd, s.ReadReg(in.Rs1))

	// Floating-point multiply/divide.
	case FMUL:
		s.WriteFloat(in.Rd, fa*fb)
	case FDIV:
		s.WriteFloat(in.Rd, fa/fb)
	case FSQRT:
		s.WriteFloat(in.Rd, float32(math.Sqrt(float64(fa))))

	default:
		return fmt.Errorf("isa: exec: unimplemented opcode %v", in.Op)
	}

	s.PC = nextPC
	return nil
}

// Run executes the program functionally from the state's current PC until
// HALT, the PC leaves the program, or maxSteps instructions have retired.
// It returns the number of instructions executed. Run is the golden
// reference the pipelined simulator is validated against.
func Run(p Program, s *State, maxSteps int) (int, error) {
	steps := 0
	for !s.Halted && steps < maxSteps {
		if s.PC >= uint32(len(p)) {
			return steps, fmt.Errorf("isa: run: PC %d outside program of %d instructions", s.PC, len(p))
		}
		if err := Exec(p[s.PC], s); err != nil {
			return steps, err
		}
		steps++
	}
	if !s.Halted {
		return steps, fmt.Errorf("isa: run: no HALT within %d steps", maxSteps)
	}
	return steps, nil
}
