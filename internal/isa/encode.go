package isa

import "fmt"

// Binary encoding. Instructions are 32-bit words with the opcode in the
// top byte; the remaining 24 bits are laid out per format:
//
//	FmtNone:  op(8) | 0(24)
//	FmtR:     op(8) | rd(5) | rs1(5) | rs2(5) | 0(9)
//	FmtR2:    op(8) | rd(5) | rs1(5) | 0(14)
//	FmtI/Mem: op(8) | rd(5) | rs1(5) | imm(14, signed)
//	FmtStore: op(8) | rs1(5) | rs2(5) | imm(14, signed)
//	FmtB:     op(8) | rs1(5) | rs2(5) | imm(14, signed word offset)
//	FmtU:     op(8) | rd(5) | imm(19) — signed for JAL, unsigned for LUI
//
// Register fields hold raw 5-bit indices; whether a field addresses the
// integer or FP register file is a static property of the opcode.
const (
	// ImmBits14 is the width of the I/Mem/Store/B immediate field.
	ImmBits14 = 14
	// ImmBits19 is the width of the U-format immediate field.
	ImmBits19 = 19
	// LUIShift is the left shift LUI applies to its immediate.
	LUIShift = 13
)

// Immediate ranges.
const (
	MaxImm14 = 1<<(ImmBits14-1) - 1
	MinImm14 = -(1 << (ImmBits14 - 1))
	MaxImm19 = 1<<(ImmBits19-1) - 1
	MinImm19 = -(1 << (ImmBits19 - 1))
	// MaxLUI is the largest LUI immediate (unsigned 19-bit field).
	MaxLUI = 1<<ImmBits19 - 1
)

// raw5 strips the FP base from a unified register index, returning the
// 5-bit field value.
func raw5(r uint8) uint32 { return uint32(r) & 0x1f }

// Encode serialises the instruction to its 32-bit binary form. It returns
// an error when an immediate does not fit its field or the opcode is
// undefined.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", uint8(in.Op))
	}
	w := uint32(in.Op) << 24
	switch in.Op.Format() {
	case FmtNone:
		return w, nil
	case FmtR:
		return w | raw5(in.Rd)<<19 | raw5(in.Rs1)<<14 | raw5(in.Rs2)<<9, nil
	case FmtR2:
		return w | raw5(in.Rd)<<19 | raw5(in.Rs1)<<14, nil
	case FmtI, FmtMem:
		if in.Imm < MinImm14 || in.Imm > MaxImm14 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 14-bit range", in.Op, in.Imm)
		}
		return w | raw5(in.Rd)<<19 | raw5(in.Rs1)<<14 | uint32(in.Imm)&(1<<ImmBits14-1), nil
	case FmtStore, FmtB:
		if in.Imm < MinImm14 || in.Imm > MaxImm14 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 14-bit range", in.Op, in.Imm)
		}
		return w | raw5(in.Rs1)<<19 | raw5(in.Rs2)<<14 | uint32(in.Imm)&(1<<ImmBits14-1), nil
	case FmtU:
		if in.Op == LUI {
			if in.Imm < 0 || in.Imm > MaxLUI {
				return 0, fmt.Errorf("isa: encode lui: immediate %d out of unsigned 19-bit range", in.Imm)
			}
		} else if in.Imm < MinImm19 || in.Imm > MaxImm19 {
			return 0, fmt.Errorf("isa: encode %s: immediate %d out of 19-bit range", in.Op, in.Imm)
		}
		return w | raw5(in.Rd)<<19 | uint32(in.Imm)&(1<<ImmBits19-1), nil
	}
	return 0, fmt.Errorf("isa: encode %s: unknown format", in.Op)
}

// signExtend interprets the low bits of v as a signed bits-wide integer.
func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode parses a 32-bit binary instruction word. It is the inverse of
// Encode for every encodable instruction.
func Decode(w uint32) (Inst, error) {
	op := Opcode(w >> 24)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode byte %#x", w>>24)
	}
	f1 := uint8(w >> 19 & 0x1f)
	f2 := uint8(w >> 14 & 0x1f)
	f3 := uint8(w >> 9 & 0x1f)
	switch op.Format() {
	case FmtNone:
		return New(op, 0, 0, 0, 0), nil
	case FmtR:
		return New(op, f1, f2, f3, 0), nil
	case FmtR2:
		return New(op, f1, f2, 0, 0), nil
	case FmtI, FmtMem:
		return New(op, f1, f2, 0, signExtend(w&(1<<ImmBits14-1), ImmBits14)), nil
	case FmtStore, FmtB:
		return New(op, 0, f1, f2, signExtend(w&(1<<ImmBits14-1), ImmBits14)), nil
	case FmtU:
		imm := w & (1<<ImmBits19 - 1)
		if op == LUI {
			return New(op, f1, 0, 0, int32(imm)), nil
		}
		return New(op, f1, 0, 0, signExtend(imm, ImmBits19)), nil
	}
	return Inst{}, fmt.Errorf("isa: decode %s: unknown format", op)
}

// EncodeProgram serialises a whole program.
func EncodeProgram(p Program) ([]uint32, error) {
	words := make([]uint32, len(p))
	for i, in := range p {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeProgram parses a sequence of binary instruction words.
func DecodeProgram(words []uint32) (Program, error) {
	p := make(Program, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", i, err)
		}
		p[i] = in
	}
	return p, nil
}
