// Package isa defines the 32-bit RISC instruction set executed by the
// reconfigurable superscalar simulator: opcodes and their functional-unit
// classes, binary encoding, a two-pass assembler and disassembler, and the
// functional (architectural) semantics used both by tests and by the
// simulator's execute stage.
//
// The paper assumes a legacy-compatible RISC ISA in which every
// instruction is serviced by exactly one functional-unit type (§2); this
// package realises that assumption: Opcode.Unit is a total map from
// opcodes to the five unit types of package arch.
package isa

import (
	"fmt"

	"repro/internal/arch"
)

// Opcode identifies an instruction of the ISA.
type Opcode uint8

// Opcodes, grouped by the functional unit that executes them.
const (
	// Integer ALU class.
	NOP Opcode = iota
	HALT
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLLI
	SRLI
	SRAI
	LUI
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL
	JALR

	// Integer multiply/divide class.
	MUL
	MULH
	DIV
	DIVU
	REM
	REMU

	// Load/store class.
	LW
	LH
	LB
	LBU
	SW
	SH
	SB
	FLW
	FSW

	// Floating-point ALU class.
	FADD
	FSUB
	FMIN
	FMAX
	FABS
	FNEG
	FEQ
	FLT
	FLE
	FCVTWS // float -> int word
	FCVTSW // int word -> float
	FMVWX  // move raw bits int -> fp register
	FMVXW  // move raw bits fp -> int register

	// Floating-point multiply/divide class.
	FMUL
	FDIV
	FSQRT

	// NumOpcodes is the number of defined opcodes.
	NumOpcodes
)

// Format describes the operand shape of an instruction.
type Format uint8

const (
	FmtNone  Format = iota // no operands (NOP, HALT)
	FmtR                   // rd, rs1, rs2
	FmtR2                  // rd, rs1 (unary)
	FmtI                   // rd, rs1, imm
	FmtU                   // rd, imm (LUI, JAL)
	FmtMem                 // rd, imm(rs1) — loads
	FmtStore               // rs2, imm(rs1) — stores
	FmtB                   // rs1, rs2, imm — branches
)

// opInfo is the static description of one opcode.
type opInfo struct {
	name   string
	unit   arch.UnitType
	format Format
	// Operand register classes: true means the operand indexes the FP
	// register file. Meaning depends on format.
	rdFP, rs1FP, rs2FP bool
}

var opTable = [NumOpcodes]opInfo{
	NOP:  {"nop", arch.IntALU, FmtNone, false, false, false},
	HALT: {"halt", arch.IntALU, FmtNone, false, false, false},
	ADD:  {"add", arch.IntALU, FmtR, false, false, false},
	SUB:  {"sub", arch.IntALU, FmtR, false, false, false},
	AND:  {"and", arch.IntALU, FmtR, false, false, false},
	OR:   {"or", arch.IntALU, FmtR, false, false, false},
	XOR:  {"xor", arch.IntALU, FmtR, false, false, false},
	SLL:  {"sll", arch.IntALU, FmtR, false, false, false},
	SRL:  {"srl", arch.IntALU, FmtR, false, false, false},
	SRA:  {"sra", arch.IntALU, FmtR, false, false, false},
	SLT:  {"slt", arch.IntALU, FmtR, false, false, false},
	SLTU: {"sltu", arch.IntALU, FmtR, false, false, false},
	ADDI: {"addi", arch.IntALU, FmtI, false, false, false},
	ANDI: {"andi", arch.IntALU, FmtI, false, false, false},
	ORI:  {"ori", arch.IntALU, FmtI, false, false, false},
	XORI: {"xori", arch.IntALU, FmtI, false, false, false},
	SLTI: {"slti", arch.IntALU, FmtI, false, false, false},
	SLLI: {"slli", arch.IntALU, FmtI, false, false, false},
	SRLI: {"srli", arch.IntALU, FmtI, false, false, false},
	SRAI: {"srai", arch.IntALU, FmtI, false, false, false},
	LUI:  {"lui", arch.IntALU, FmtU, false, false, false},
	BEQ:  {"beq", arch.IntALU, FmtB, false, false, false},
	BNE:  {"bne", arch.IntALU, FmtB, false, false, false},
	BLT:  {"blt", arch.IntALU, FmtB, false, false, false},
	BGE:  {"bge", arch.IntALU, FmtB, false, false, false},
	BLTU: {"bltu", arch.IntALU, FmtB, false, false, false},
	BGEU: {"bgeu", arch.IntALU, FmtB, false, false, false},
	JAL:  {"jal", arch.IntALU, FmtU, false, false, false},
	JALR: {"jalr", arch.IntALU, FmtI, false, false, false},

	MUL:  {"mul", arch.IntMDU, FmtR, false, false, false},
	MULH: {"mulh", arch.IntMDU, FmtR, false, false, false},
	DIV:  {"div", arch.IntMDU, FmtR, false, false, false},
	DIVU: {"divu", arch.IntMDU, FmtR, false, false, false},
	REM:  {"rem", arch.IntMDU, FmtR, false, false, false},
	REMU: {"remu", arch.IntMDU, FmtR, false, false, false},

	LW:  {"lw", arch.LSU, FmtMem, false, false, false},
	LH:  {"lh", arch.LSU, FmtMem, false, false, false},
	LB:  {"lb", arch.LSU, FmtMem, false, false, false},
	LBU: {"lbu", arch.LSU, FmtMem, false, false, false},
	SW:  {"sw", arch.LSU, FmtStore, false, false, false},
	SH:  {"sh", arch.LSU, FmtStore, false, false, false},
	SB:  {"sb", arch.LSU, FmtStore, false, false, false},
	FLW: {"flw", arch.LSU, FmtMem, true, false, false},
	FSW: {"fsw", arch.LSU, FmtStore, false, false, true},

	FADD:   {"fadd", arch.FPALU, FmtR, true, true, true},
	FSUB:   {"fsub", arch.FPALU, FmtR, true, true, true},
	FMIN:   {"fmin", arch.FPALU, FmtR, true, true, true},
	FMAX:   {"fmax", arch.FPALU, FmtR, true, true, true},
	FABS:   {"fabs", arch.FPALU, FmtR2, true, true, false},
	FNEG:   {"fneg", arch.FPALU, FmtR2, true, true, false},
	FEQ:    {"feq", arch.FPALU, FmtR, false, true, true},
	FLT:    {"flt", arch.FPALU, FmtR, false, true, true},
	FLE:    {"fle", arch.FPALU, FmtR, false, true, true},
	FCVTWS: {"fcvt.w.s", arch.FPALU, FmtR2, false, true, false},
	FCVTSW: {"fcvt.s.w", arch.FPALU, FmtR2, true, false, false},
	FMVWX:  {"fmv.w.x", arch.FPALU, FmtR2, true, false, false},
	FMVXW:  {"fmv.x.w", arch.FPALU, FmtR2, false, true, false},

	FMUL:  {"fmul", arch.FPMDU, FmtR, true, true, true},
	FDIV:  {"fdiv", arch.FPMDU, FmtR, true, true, true},
	FSQRT: {"fsqrt", arch.FPMDU, FmtR2, true, true, false},
}

// String returns the assembler mnemonic of the opcode.
func (op Opcode) String() string {
	if op < NumOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < NumOpcodes }

// Unit returns the functional-unit type that executes op. Every opcode
// maps to exactly one unit type (the paper's single-unit assumption).
func (op Opcode) Unit() arch.UnitType { return opTable[op].unit }

// Format returns the operand shape of op.
func (op Opcode) Format() Format { return opTable[op].format }

// IsBranch reports whether op can redirect control flow.
func (op Opcode) IsBranch() bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR:
		return true
	}
	return false
}

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool {
	switch op {
	case LW, LH, LB, LBU, FLW:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool {
	switch op {
	case SW, SH, SB, FSW:
		return true
	}
	return false
}

// Register file addressing: registers are identified by a unified 6-bit
// index — integer registers x0..x31 occupy 0..31 and floating-point
// registers f0..f31 occupy 32..63. x0 is hard-wired to zero.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs
	// RegZero is the unified index of the hard-wired zero register x0.
	RegZero = 0
	// FPBase is the unified index of f0.
	FPBase = NumIntRegs
)

// RegName renders a unified register index as "rN" or "fN".
func RegName(r uint8) string {
	if r < FPBase {
		return fmt.Sprintf("r%d", r)
	}
	return fmt.Sprintf("f%d", r-FPBase)
}

// Inst is one decoded instruction. Register fields hold unified indices
// (see RegName); fields that the opcode's format does not use are zero.
type Inst struct {
	Op  Opcode
	Rd  uint8 // destination register (unified index)
	Rs1 uint8 // first source register
	Rs2 uint8 // second source register
	Imm int32 // immediate: memory offset, branch word offset, or constant
}

// unify maps a 5-bit register field to the unified index space using the
// opcode's operand register classes.
func unify(idx uint8, fp bool) uint8 {
	if fp {
		return idx + FPBase
	}
	return idx
}

// New builds a decoded instruction from raw 5-bit register fields,
// applying the opcode's integer/FP register classes. It is the
// constructor the assembler and workload generators use.
func New(op Opcode, rd, rs1, rs2 uint8, imm int32) Inst {
	info := opTable[op]
	return Inst{
		Op:  op,
		Rd:  unify(rd, info.rdFP),
		Rs1: unify(rs1, info.rs1FP),
		Rs2: unify(rs2, info.rs2FP),
		Imm: imm,
	}
}

// Unit returns the functional-unit type that executes the instruction.
func (in Inst) Unit() arch.UnitType { return in.Op.Unit() }

// Sources returns the unified indices of the registers the instruction
// reads, in operand order. The zero register is included when named; it
// is always ready.
func (in Inst) Sources() []uint8 {
	regs, n := in.SourceRegs()
	return regs[:n]
}

// SourceRegs is the allocation-free form of Sources: it returns the
// source registers in a fixed-size array plus the count of valid
// entries. The dispatch path uses it so dependence collection never
// heap-allocates.
func (in Inst) SourceRegs() (regs [2]uint8, n int) {
	switch in.Op.Format() {
	case FmtR, FmtB, FmtStore:
		return [2]uint8{in.Rs1, in.Rs2}, 2
	case FmtR2, FmtI, FmtMem:
		return [2]uint8{in.Rs1}, 1
	}
	return [2]uint8{}, 0
}

// Dest returns the unified index of the register the instruction writes
// and ok=false when it writes none (stores, branches other than JAL/JALR,
// NOP, HALT).
func (in Inst) Dest() (uint8, bool) {
	switch in.Op.Format() {
	case FmtR, FmtR2, FmtI, FmtMem, FmtU:
		if in.Op == NOP || in.Op == HALT {
			return 0, false
		}
		if in.Rd == RegZero {
			return 0, false // writes to x0 are discarded
		}
		return in.Rd, true
	}
	return 0, false
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FmtNone:
		return in.Op.String()
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case FmtR2:
		return fmt.Sprintf("%s %s, %s", in.Op, RegName(in.Rd), RegName(in.Rs1))
	case FmtI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rd), RegName(in.Rs1), in.Imm)
	case FmtU:
		return fmt.Sprintf("%s %s, %d", in.Op, RegName(in.Rd), in.Imm)
	case FmtMem:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rd), in.Imm, RegName(in.Rs1))
	case FmtStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, RegName(in.Rs2), in.Imm, RegName(in.Rs1))
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	}
	return fmt.Sprintf("%s <bad format>", in.Op)
}

// Program is a sequence of decoded instructions; the PC is an index into
// the slice.
type Program []Inst

// Latencies maps each opcode class to an execution latency in cycles.
// The zero value is unusable; use DefaultLatencies.
type Latencies struct {
	IntALU int // simple integer and branch operations
	IntMul int // MUL, MULH
	IntDiv int // DIV, DIVU, REM, REMU
	Load   int // cache-hit load latency
	Store  int // store address/data computation
	FPALU  int // FP add/sub/compare/convert/move
	FPMul  int // FMUL
	FPDiv  int // FDIV
	FPSqrt int // FSQRT
}

// DefaultLatencies returns the latency model used throughout the
// experiments: single-cycle integer ALU, 4-cycle multiply, 12-cycle
// divide, 2-cycle cache-hit loads, 3-cycle FP ALU, 5-cycle FP multiply,
// 16-cycle FP divide and 20-cycle square root.
func DefaultLatencies() Latencies {
	return Latencies{
		IntALU: 1,
		IntMul: 4,
		IntDiv: 12,
		Load:   2,
		Store:  1,
		FPALU:  3,
		FPMul:  5,
		FPDiv:  16,
		FPSqrt: 20,
	}
}

// Of returns the execution latency of op under the model.
func (l Latencies) Of(op Opcode) int {
	switch {
	case op == MUL || op == MULH:
		return l.IntMul
	case op == DIV || op == DIVU || op == REM || op == REMU:
		return l.IntDiv
	case op.IsLoad():
		return l.Load
	case op.IsStore():
		return l.Store
	case op == FMUL:
		return l.FPMul
	case op == FDIV:
		return l.FPDiv
	case op == FSQRT:
		return l.FPSqrt
	case op.Unit() == arch.FPALU:
		return l.FPALU
	default:
		return l.IntALU
	}
}
