package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly source into a Program. The syntax is one
// instruction or label per line; ';' and '#' start comments. Operands
// follow the disassembly forms produced by Inst.String:
//
//	add r1, r2, r3        fadd f1, f2, f3       fabs f1, f2
//	addi r1, r2, -5       lui r1, 100           jal r31, loop
//	lw r1, 8(r2)          sw r3, 4(r2)          flw f1, 0(r5)
//	beq r1, r2, done      nop                   halt
//
// Branch and jump targets may be labels or numeric word offsets. The
// pseudo-instructions are:
//
//	li rd, const   — addi (small constants) or lui+ori (large)
//	mv rd, rs      — addi rd, rs, 0
//	j label        — jal r0, label
//	ret            — jalr r0, r31, 0
func Assemble(src string) (Program, error) {
	lines := strings.Split(src, "\n")

	// Pass 1: assign an instruction index to every label. Pseudo-ops
	// may expand to more than one instruction, so widths are computed
	// here too.
	labels := make(map[string]int)
	type pending struct {
		line int // 1-based source line, for errors
		text string
		pc   int
	}
	var insts []pending
	pc := 0
	for lineNo, raw := range lines {
		text := stripComment(raw)
		for {
			text = strings.TrimSpace(text)
			colon := strings.Index(text, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(text[:colon])
			if !isIdent(label) {
				return nil, asmErrf(lineNo+1, "bad label %q", label)
			}
			if _, dup := labels[label]; dup {
				return nil, asmErrf(lineNo+1, "duplicate label %q", label)
			}
			labels[label] = pc
			text = text[colon+1:]
		}
		if text == "" {
			continue
		}
		width, err := instWidth(text)
		if err != nil {
			return nil, asmErr(lineNo+1, err)
		}
		insts = append(insts, pending{lineNo + 1, text, pc})
		pc += width
	}

	// Pass 2: parse each instruction with labels resolved.
	prog := make(Program, 0, pc)
	for _, p := range insts {
		expanded, err := parseInst(p.text, p.pc, labels)
		if err != nil {
			return nil, asmErr(p.line, err)
		}
		prog = append(prog, expanded...)
	}
	return prog, nil
}

// MustAssemble is Assemble for known-good sources (tests, examples,
// built-in kernels); it panics on error.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders a program one instruction per line with indices.
func Disassemble(p Program) string {
	var b strings.Builder
	for i, in := range p {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// mnemonics maps assembler names to opcodes.
var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); op < NumOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

// liWidth reports how many instructions "li rd, const" expands to.
func liWidth(c int32) int {
	if c >= MinImm14 && c <= MaxImm14 {
		return 1
	}
	return 2
}

// instWidth returns the number of instructions a source line expands to.
func instWidth(text string) (int, error) {
	mnem, rest := splitMnemonic(text)
	switch mnem {
	case "li":
		ops := splitOperands(rest)
		if len(ops) != 2 {
			return 0, fmt.Errorf("li wants 2 operands, got %d", len(ops))
		}
		c, err := parseConst(ops[1])
		if err != nil {
			return 0, err
		}
		return liWidth(c), nil
	case "mv", "j", "ret":
		return 1, nil
	}
	if _, ok := mnemonics[mnem]; !ok {
		return 0, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return 1, nil
}

func splitMnemonic(text string) (mnem, rest string) {
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		return strings.ToLower(text[:i]), strings.TrimSpace(text[i+1:])
	}
	return strings.ToLower(text), ""
}

func splitOperands(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseReg parses "rN"/"xN" or "fN" into a raw 5-bit index plus an FP
// flag.
func parseReg(s string) (idx uint8, fp bool, err error) {
	if len(s) < 2 {
		return 0, false, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r', 'x', 'R', 'X':
	case 'f', 'F':
		fp = true
	default:
		return 0, false, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumIntRegs {
		return 0, false, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), fp, nil
}

func parseConst(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad constant %q", s)
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, fmt.Errorf("constant %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseTarget resolves a branch/jump target: a label (PC-relative word
// offset is computed) or a numeric offset used as-is.
func parseTarget(s string, pc int, labels map[string]int) (int32, error) {
	if target, ok := labels[s]; ok {
		return int32(target - pc), nil
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("unknown label or bad offset %q", s)
	}
	return int32(v), nil
}

// parseMemOperand parses "imm(rN)".
func parseMemOperand(s string) (imm int32, base string, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, "", fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	imm, err = parseConst(immStr)
	if err != nil {
		return 0, "", err
	}
	return imm, strings.TrimSpace(s[open+1 : len(s)-1]), nil
}

// checkClass verifies that a register operand is from the file the opcode
// expects.
func checkClass(op Opcode, operand string, fp, wantFP bool) error {
	if fp != wantFP {
		want := "integer"
		if wantFP {
			want = "floating-point"
		}
		return fmt.Errorf("%s: operand %q must be a %s register", op, operand, want)
	}
	return nil
}

// parseInst parses a single source line (already label-free) into one or
// more instructions.
func parseInst(text string, pc int, labels map[string]int) ([]Inst, error) {
	mnem, rest := splitMnemonic(text)
	ops := splitOperands(rest)

	// Pseudo-instructions first.
	switch mnem {
	case "li":
		if len(ops) != 2 {
			return nil, fmt.Errorf("li wants 2 operands")
		}
		rd, fp, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		if fp {
			return nil, fmt.Errorf("li destination must be an integer register")
		}
		c, err := parseConst(ops[1])
		if err != nil {
			return nil, err
		}
		if liWidth(c) == 1 {
			return []Inst{New(ADDI, rd, 0, 0, c)}, nil
		}
		u := uint32(c)
		return []Inst{
			New(LUI, rd, 0, 0, int32(u>>LUIShift)),
			New(ORI, rd, rd, 0, int32(u&(1<<LUIShift-1))),
		}, nil
	case "mv":
		if len(ops) != 2 {
			return nil, fmt.Errorf("mv wants 2 operands")
		}
		rd, fpd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs, fps, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		if fpd || fps {
			return nil, fmt.Errorf("mv works on integer registers")
		}
		return []Inst{New(ADDI, rd, rs, 0, 0)}, nil
	case "j":
		if len(ops) != 1 {
			return nil, fmt.Errorf("j wants 1 operand")
		}
		off, err := parseTarget(ops[0], pc, labels)
		if err != nil {
			return nil, err
		}
		return []Inst{New(JAL, 0, 0, 0, off)}, nil
	case "ret":
		if len(ops) != 0 {
			return nil, fmt.Errorf("ret wants no operands")
		}
		return []Inst{New(JALR, 0, 31, 0, 0)}, nil
	}

	op, ok := mnemonics[mnem]
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	info := opTable[op]

	need := map[Format]int{
		FmtNone: 0, FmtR: 3, FmtR2: 2, FmtI: 3, FmtU: 2, FmtMem: 2, FmtStore: 2, FmtB: 3,
	}[info.format]
	if len(ops) != need {
		return nil, fmt.Errorf("%s wants %d operands, got %d", op, need, len(ops))
	}

	switch info.format {
	case FmtNone:
		return []Inst{New(op, 0, 0, 0, 0)}, nil

	case FmtR:
		rd, fpd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, fp1, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		rs2, fp2, err := parseReg(ops[2])
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[0], fpd, info.rdFP); err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[1], fp1, info.rs1FP); err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[2], fp2, info.rs2FP); err != nil {
			return nil, err
		}
		return []Inst{New(op, rd, rs1, rs2, 0)}, nil

	case FmtR2:
		rd, fpd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, fp1, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[0], fpd, info.rdFP); err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[1], fp1, info.rs1FP); err != nil {
			return nil, err
		}
		return []Inst{New(op, rd, rs1, 0, 0)}, nil

	case FmtI:
		rd, fpd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, fp1, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[0], fpd, info.rdFP); err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[1], fp1, info.rs1FP); err != nil {
			return nil, err
		}
		imm, err := parseConst(ops[2])
		if err != nil {
			return nil, err
		}
		return []Inst{New(op, rd, rs1, 0, imm)}, nil

	case FmtU:
		rd, fpd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[0], fpd, info.rdFP); err != nil {
			return nil, err
		}
		var imm int32
		if op == JAL {
			imm, err = parseTarget(ops[1], pc, labels)
		} else {
			imm, err = parseConst(ops[1])
		}
		if err != nil {
			return nil, err
		}
		return []Inst{New(op, rd, 0, 0, imm)}, nil

	case FmtMem:
		rd, fpd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[0], fpd, info.rdFP); err != nil {
			return nil, err
		}
		imm, base, err := parseMemOperand(ops[1])
		if err != nil {
			return nil, err
		}
		rs1, fp1, err := parseReg(base)
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, base, fp1, false); err != nil {
			return nil, err
		}
		return []Inst{New(op, rd, rs1, 0, imm)}, nil

	case FmtStore:
		rs2, fp2, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, ops[0], fp2, info.rs2FP); err != nil {
			return nil, err
		}
		imm, base, err := parseMemOperand(ops[1])
		if err != nil {
			return nil, err
		}
		rs1, fp1, err := parseReg(base)
		if err != nil {
			return nil, err
		}
		if err := checkClass(op, base, fp1, false); err != nil {
			return nil, err
		}
		return []Inst{New(op, 0, rs1, rs2, imm)}, nil

	case FmtB:
		rs1, fp1, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs2, fp2, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		if fp1 || fp2 {
			return nil, fmt.Errorf("%s compares integer registers", op)
		}
		off, err := parseTarget(ops[2], pc, labels)
		if err != nil {
			return nil, err
		}
		return []Inst{New(op, 0, rs1, rs2, off)}, nil
	}
	return nil, fmt.Errorf("%s: unknown format", op)
}
