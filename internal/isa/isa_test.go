package isa

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// testMem is a sparse byte-addressable memory for functional tests.
type testMem map[uint32]uint8

func (m testMem) LoadByte(a uint32) uint8      { return m[a] }
func (m testMem) StoreByte(a uint32, v uint8)  { m[a] = v }
func (m testMem) LoadHalf(a uint32) uint16     { return uint16(m[a]) | uint16(m[a+1])<<8 }
func (m testMem) StoreHalf(a uint32, v uint16) { m[a], m[a+1] = uint8(v), uint8(v>>8) }
func (m testMem) LoadWord(a uint32) uint32 {
	return uint32(m.LoadHalf(a)) | uint32(m.LoadHalf(a+2))<<16
}
func (m testMem) StoreWord(a uint32, v uint32) {
	m.StoreHalf(a, uint16(v))
	m.StoreHalf(a+2, uint16(v>>16))
}

func newState() *State { return &State{Mem: testMem{}} }

func TestEveryOpcodeHasTableEntry(t *testing.T) {
	for op := Opcode(0); op < NumOpcodes; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if !op.Unit().Valid() {
			t.Errorf("opcode %v has invalid unit type", op)
		}
	}
}

// TestSingleUnitAssumption pins the paper's assumption that each
// instruction is supported by exactly one functional-unit type, and spot
// checks the class assignment.
func TestSingleUnitAssumption(t *testing.T) {
	want := map[Opcode]arch.UnitType{
		ADD: arch.IntALU, BEQ: arch.IntALU, JAL: arch.IntALU, HALT: arch.IntALU,
		MUL: arch.IntMDU, DIV: arch.IntMDU, REM: arch.IntMDU,
		LW: arch.LSU, SW: arch.LSU, FLW: arch.LSU, FSW: arch.LSU,
		FADD: arch.FPALU, FEQ: arch.FPALU, FCVTWS: arch.FPALU,
		FMUL: arch.FPMDU, FDIV: arch.FPMDU, FSQRT: arch.FPMDU,
	}
	for op, u := range want {
		if got := op.Unit(); got != u {
			t.Errorf("%v.Unit() = %v, want %v", op, got, u)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	for _, op := range []Opcode{BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR} {
		if !op.IsBranch() {
			t.Errorf("%v.IsBranch() = false", op)
		}
	}
	for _, op := range []Opcode{ADD, LW, SW, HALT} {
		if op.IsBranch() {
			t.Errorf("%v.IsBranch() = true", op)
		}
	}
	for _, op := range []Opcode{LW, LH, LB, LBU, FLW} {
		if !op.IsLoad() || op.IsStore() {
			t.Errorf("%v load/store predicates wrong", op)
		}
	}
	for _, op := range []Opcode{SW, SH, SB, FSW} {
		if !op.IsStore() || op.IsLoad() {
			t.Errorf("%v load/store predicates wrong", op)
		}
	}
}

func TestRegName(t *testing.T) {
	if RegName(0) != "r0" || RegName(31) != "r31" || RegName(32) != "f0" || RegName(63) != "f31" {
		t.Error("RegName mapping wrong")
	}
}

func TestNewUnifiesFPOperands(t *testing.T) {
	in := New(FADD, 1, 2, 3, 0)
	if in.Rd != FPBase+1 || in.Rs1 != FPBase+2 || in.Rs2 != FPBase+3 {
		t.Errorf("FADD operands not unified to FP space: %+v", in)
	}
	// FEQ writes an integer register but reads FP sources.
	in = New(FEQ, 4, 2, 3, 0)
	if in.Rd != 4 || in.Rs1 != FPBase+2 || in.Rs2 != FPBase+3 {
		t.Errorf("FEQ operand classes wrong: %+v", in)
	}
	// FSW: base register integer, stored value FP.
	in = New(FSW, 0, 5, 6, 8)
	if in.Rs1 != 5 || in.Rs2 != FPBase+6 {
		t.Errorf("FSW operand classes wrong: %+v", in)
	}
}

func TestDestAndSources(t *testing.T) {
	cases := []struct {
		in      Inst
		dest    uint8
		hasDest bool
		sources []uint8
	}{
		{New(ADD, 1, 2, 3, 0), 1, true, []uint8{2, 3}},
		{New(ADD, 0, 2, 3, 0), 0, false, []uint8{2, 3}}, // x0 destination discarded
		{New(ADDI, 4, 5, 0, 7), 4, true, []uint8{5}},
		{New(LW, 6, 7, 0, 4), 6, true, []uint8{7}},
		{New(SW, 0, 8, 9, 0), 0, false, []uint8{8, 9}},
		{New(BEQ, 0, 1, 2, -3), 0, false, []uint8{1, 2}},
		{New(JAL, 31, 0, 0, 5), 31, true, nil},
		{New(NOP, 0, 0, 0, 0), 0, false, nil},
		{New(HALT, 0, 0, 0, 0), 0, false, nil},
		{New(FSQRT, 1, 2, 0, 0), FPBase + 1, true, []uint8{FPBase + 2}},
	}
	for _, c := range cases {
		d, ok := c.in.Dest()
		if ok != c.hasDest || (ok && d != c.dest) {
			t.Errorf("%v.Dest() = %d,%v want %d,%v", c.in, d, ok, c.dest, c.hasDest)
		}
		src := c.in.Sources()
		if len(src) != len(c.sources) {
			t.Errorf("%v.Sources() = %v want %v", c.in, src, c.sources)
			continue
		}
		for i := range src {
			if src[i] != c.sources[i] {
				t.Errorf("%v.Sources() = %v want %v", c.in, src, c.sources)
			}
		}
	}
}

// randomInst builds a random but encodable instruction for round-trip
// property tests.
func randomInst(rng *rand.Rand) Inst {
	op := Opcode(rng.Intn(int(NumOpcodes)))
	rd := uint8(rng.Intn(32))
	rs1 := uint8(rng.Intn(32))
	rs2 := uint8(rng.Intn(32))
	var imm int32
	switch op.Format() {
	case FmtI, FmtMem, FmtStore, FmtB:
		imm = int32(rng.Intn(MaxImm14-MinImm14+1)) + MinImm14
	case FmtU:
		if op == LUI {
			imm = int32(rng.Intn(MaxLUI + 1))
		} else {
			imm = int32(rng.Intn(MaxImm19-MinImm19+1)) + MinImm19
		}
	}
	return New(op, rd, rs1, rs2, imm)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := randomInst(rng)
		// Normalise fields the format does not carry, as Decode will.
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", in, err)
		}
		want := normalise(in)
		if got != want {
			t.Fatalf("round trip %v -> %#08x -> %v", want, w, got)
		}
	}
}

// normalise zeroes the operand fields an instruction's format does not
// encode, matching Decode's output shape.
func normalise(in Inst) Inst {
	out := Inst{Op: in.Op}
	switch in.Op.Format() {
	case FmtR:
		out.Rd, out.Rs1, out.Rs2 = in.Rd, in.Rs1, in.Rs2
	case FmtR2:
		out.Rd, out.Rs1 = in.Rd, in.Rs1
	case FmtI, FmtMem:
		out.Rd, out.Rs1, out.Imm = in.Rd, in.Rs1, in.Imm
	case FmtStore, FmtB:
		out.Rs1, out.Rs2, out.Imm = in.Rs1, in.Rs2, in.Imm
	case FmtU:
		out.Rd, out.Imm = in.Rd, in.Imm
	}
	// Restore FP bases stripped by the zeroing above.
	return out
}

func TestEncodeRejectsOutOfRangeImmediates(t *testing.T) {
	cases := []Inst{
		New(ADDI, 1, 2, 0, MaxImm14+1),
		New(ADDI, 1, 2, 0, MinImm14-1),
		New(LUI, 1, 0, 0, -1),
		New(LUI, 1, 0, 0, MaxLUI+1),
		New(JAL, 1, 0, 0, MaxImm19+1),
		New(SW, 0, 1, 2, MinImm14-1),
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) accepted out-of-range immediate", in)
		}
	}
	if _, err := Encode(Inst{Op: NumOpcodes}); err == nil {
		t.Error("Encode accepted invalid opcode")
	}
	if _, err := Decode(uint32(NumOpcodes) << 24); err == nil {
		t.Error("Decode accepted invalid opcode byte")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	p := MustAssemble(`
		li r1, 10
		li r2, 123456
		add r3, r1, r2
		halt
	`)
	words, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != len(p) {
		t.Fatalf("program length changed: %d -> %d", len(p), len(q))
	}
	for i := range p {
		if p[i] != q[i] {
			t.Errorf("inst %d: %v -> %v", i, p[i], q[i])
		}
	}
}

func TestExecIntegerOps(t *testing.T) {
	s := newState()
	s.WriteReg(1, 7)
	s.WriteReg(2, 3)
	cases := []struct {
		in   Inst
		want uint32
	}{
		{New(ADD, 3, 1, 2, 0), 10},
		{New(SUB, 3, 1, 2, 0), 4},
		{New(AND, 3, 1, 2, 0), 3},
		{New(OR, 3, 1, 2, 0), 7},
		{New(XOR, 3, 1, 2, 0), 4},
		{New(SLL, 3, 1, 2, 0), 56},
		{New(SRL, 3, 1, 2, 0), 0},
		{New(SLT, 3, 1, 2, 0), 0},
		{New(SLT, 3, 2, 1, 0), 1},
		{New(ADDI, 3, 1, 0, -2), 5},
		{New(SLLI, 3, 1, 0, 4), 112},
		{New(MUL, 3, 1, 2, 0), 21},
		{New(DIV, 3, 1, 2, 0), 2},
		{New(REM, 3, 1, 2, 0), 1},
	}
	for _, c := range cases {
		s.PC = 0
		if err := Exec(c.in, s); err != nil {
			t.Fatalf("Exec(%v): %v", c.in, err)
		}
		if got := s.ReadReg(3); got != c.want {
			t.Errorf("%v -> r3 = %d, want %d", c.in, got, c.want)
		}
		if s.PC != 1 {
			t.Errorf("%v advanced PC to %d, want 1", c.in, s.PC)
		}
	}
}

func TestExecSignedOps(t *testing.T) {
	s := newState()
	s.WriteReg(1, uint32(0xfffffff8)) // -8
	s.WriteReg(2, 3)
	Exec(New(SRA, 3, 1, 2, 0), s)
	if got := int32(s.ReadReg(3)); got != -1 {
		t.Errorf("SRA(-8,3) = %d, want -1", got)
	}
	Exec(New(DIV, 3, 1, 2, 0), s)
	if got := int32(s.ReadReg(3)); got != -2 {
		t.Errorf("DIV(-8,3) = %d, want -2", got)
	}
	Exec(New(REM, 3, 1, 2, 0), s)
	if got := int32(s.ReadReg(3)); got != -2 {
		t.Errorf("REM(-8,3) = %d, want -2", got)
	}
}

func TestExecDivideByZeroConventions(t *testing.T) {
	s := newState()
	s.WriteReg(1, 42)
	Exec(New(DIV, 3, 1, 0, 0), s)
	if s.ReadReg(3) != ^uint32(0) {
		t.Error("DIV by zero should produce all ones")
	}
	Exec(New(REM, 3, 1, 0, 0), s)
	if s.ReadReg(3) != 42 {
		t.Error("REM by zero should produce the dividend")
	}
	Exec(New(DIVU, 3, 1, 0, 0), s)
	if s.ReadReg(3) != ^uint32(0) {
		t.Error("DIVU by zero should produce all ones")
	}
	Exec(New(REMU, 3, 1, 0, 0), s)
	if s.ReadReg(3) != 42 {
		t.Error("REMU by zero should produce the dividend")
	}
	// Signed overflow case.
	s.WriteReg(1, 1<<31)
	s.WriteReg(2, ^uint32(0)) // -1
	Exec(New(DIV, 3, 1, 2, 0), s)
	if s.ReadReg(3) != 1<<31 {
		t.Error("DIV overflow should return the dividend")
	}
	Exec(New(REM, 3, 1, 2, 0), s)
	if s.ReadReg(3) != 0 {
		t.Error("REM overflow should return zero")
	}
}

func TestExecZeroRegisterIsImmutable(t *testing.T) {
	s := newState()
	s.WriteReg(1, 5)
	Exec(New(ADD, 0, 1, 1, 0), s)
	if s.ReadReg(0) != 0 {
		t.Error("write to x0 stuck")
	}
}

func TestExecMemoryOps(t *testing.T) {
	s := newState()
	s.WriteReg(1, 100) // base
	s.WriteReg(2, 0xdeadbeef)
	Exec(New(SW, 0, 1, 2, 8), s)
	Exec(New(LW, 3, 1, 0, 8), s)
	if s.ReadReg(3) != 0xdeadbeef {
		t.Errorf("LW after SW = %#x", s.ReadReg(3))
	}
	Exec(New(LBU, 3, 1, 0, 8), s)
	if s.ReadReg(3) != 0xef {
		t.Errorf("LBU = %#x, want 0xef", s.ReadReg(3))
	}
	Exec(New(LB, 3, 1, 0, 8), s)
	if int32(s.ReadReg(3)) != -17 { // 0xef sign-extended
		t.Errorf("LB = %d, want -17", int32(s.ReadReg(3)))
	}
	Exec(New(LH, 3, 1, 0, 8), s)
	half := uint16(0xbeef)
	if int32(s.ReadReg(3)) != int32(int16(half)) {
		t.Errorf("LH = %d", int32(s.ReadReg(3)))
	}
	s.WriteFloat(FPBase+1, 2.5)
	Exec(Inst{Op: FSW, Rs1: 1, Rs2: FPBase + 1, Imm: 16}, s)
	Exec(Inst{Op: FLW, Rd: FPBase + 2, Rs1: 1, Imm: 16}, s)
	if s.ReadFloat(FPBase+2) != 2.5 {
		t.Errorf("FLW after FSW = %v", s.ReadFloat(FPBase+2))
	}
}

func TestExecFloatOps(t *testing.T) {
	s := newState()
	f1, f2 := uint8(FPBase+1), uint8(FPBase+2)
	f3 := uint8(FPBase + 3)
	s.WriteFloat(f1, 6.0)
	s.WriteFloat(f2, 1.5)
	check := func(in Inst, want float32) {
		t.Helper()
		if err := Exec(in, s); err != nil {
			t.Fatalf("Exec(%v): %v", in, err)
		}
		if got := s.ReadFloat(f3); got != want {
			t.Errorf("%v -> %v, want %v", in, got, want)
		}
	}
	check(Inst{Op: FADD, Rd: f3, Rs1: f1, Rs2: f2}, 7.5)
	check(Inst{Op: FSUB, Rd: f3, Rs1: f1, Rs2: f2}, 4.5)
	check(Inst{Op: FMUL, Rd: f3, Rs1: f1, Rs2: f2}, 9.0)
	check(Inst{Op: FDIV, Rd: f3, Rs1: f1, Rs2: f2}, 4.0)
	check(Inst{Op: FMIN, Rd: f3, Rs1: f1, Rs2: f2}, 1.5)
	check(Inst{Op: FMAX, Rd: f3, Rs1: f1, Rs2: f2}, 6.0)
	check(Inst{Op: FNEG, Rd: f3, Rs1: f1}, -6.0)
	check(Inst{Op: FABS, Rd: f3, Rs1: f3}, 6.0)

	s.WriteFloat(f1, 9.0)
	check(Inst{Op: FSQRT, Rd: f3, Rs1: f1}, 3.0)

	Exec(Inst{Op: FLT, Rd: 5, Rs1: f2, Rs2: f1}, s)
	if s.ReadReg(5) != 1 {
		t.Error("FLT(1.5, 9.0) != 1")
	}
	Exec(Inst{Op: FCVTWS, Rd: 5, Rs1: f1}, s)
	if s.ReadReg(5) != 9 {
		t.Error("FCVTWS(9.0) != 9")
	}
	s.WriteReg(6, 4)
	Exec(Inst{Op: FCVTSW, Rd: f3, Rs1: 6}, s)
	if s.ReadFloat(f3) != 4.0 {
		t.Error("FCVTSW(4) != 4.0")
	}
	s.WriteReg(6, math.Float32bits(1.25))
	Exec(Inst{Op: FMVWX, Rd: f3, Rs1: 6}, s)
	if s.ReadFloat(f3) != 1.25 {
		t.Error("FMVWX bit move wrong")
	}
	Exec(Inst{Op: FMVXW, Rd: 7, Rs1: f3}, s)
	if s.ReadReg(7) != math.Float32bits(1.25) {
		t.Error("FMVXW bit move wrong")
	}
}

func TestExecBranches(t *testing.T) {
	s := newState()
	s.WriteReg(1, 5)
	s.WriteReg(2, 5)
	s.PC = 10
	Exec(New(BEQ, 0, 1, 2, 4), s)
	if s.PC != 14 {
		t.Errorf("taken BEQ: PC = %d, want 14", s.PC)
	}
	Exec(New(BNE, 0, 1, 2, 4), s)
	if s.PC != 15 {
		t.Errorf("not-taken BNE: PC = %d, want 15", s.PC)
	}
	Exec(New(JAL, 31, 0, 0, -5), s)
	if s.PC != 10 || s.ReadReg(31) != 16 {
		t.Errorf("JAL: PC = %d link = %d", s.PC, s.ReadReg(31))
	}
	s.WriteReg(4, 100)
	Exec(New(JALR, 31, 4, 0, 3), s)
	if s.PC != 103 || s.ReadReg(31) != 11 {
		t.Errorf("JALR: PC = %d link = %d", s.PC, s.ReadReg(31))
	}
}

func TestExecHalt(t *testing.T) {
	s := newState()
	s.PC = 3
	Exec(New(HALT, 0, 0, 0, 0), s)
	if !s.Halted || s.PC != 3 {
		t.Errorf("HALT: halted=%v PC=%d", s.Halted, s.PC)
	}
}

// TestRunSumLoop assembles and functionally runs a summation loop,
// validating assembler + semantics end to end.
func TestRunSumLoop(t *testing.T) {
	p := MustAssemble(`
		; sum 1..100 into r3
		li r1, 100
		li r2, 0       ; i
		li r3, 0       ; sum
	loop:
		addi r2, r2, 1
		add r3, r3, r2
		bne r2, r1, loop
		halt
	`)
	s := newState()
	if _, err := Run(p, s, 10000); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadReg(3); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestRunMemoryKernel(t *testing.T) {
	// Store 10 squares, then load them back and sum.
	p := MustAssemble(`
		li r1, 0      ; i
		li r2, 10
		li r4, 1000   ; base
	store:
		mul r3, r1, r1
		slli r5, r1, 2
		add r5, r5, r4
		sw r3, 0(r5)
		addi r1, r1, 1
		bne r1, r2, store
		li r1, 0
		li r6, 0      ; sum
	load:
		slli r5, r1, 2
		add r5, r5, r4
		lw r3, 0(r5)
		add r6, r6, r3
		addi r1, r1, 1
		bne r1, r2, load
		halt
	`)
	s := newState()
	if _, err := Run(p, s, 10000); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadReg(6); got != 285 { // sum of squares 0..9
		t.Errorf("sum of squares = %d, want 285", got)
	}
}

func TestRunFloatKernel(t *testing.T) {
	p := MustAssemble(`
		li r1, 16
		fcvt.s.w f1, r1
		fsqrt f2, f1      ; 4.0
		li r2, 3
		fcvt.s.w f3, r2
		fmul f4, f2, f3   ; 12.0
		fcvt.w.s r5, f4
		halt
	`)
	s := newState()
	if _, err := Run(p, s, 100); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadReg(5); got != 12 {
		t.Errorf("result = %d, want 12", got)
	}
}

func TestRunDetectsRunaway(t *testing.T) {
	p := MustAssemble(`
	loop:
		j loop
	`)
	if _, err := Run(p, newState(), 100); err == nil {
		t.Error("Run did not report missing HALT")
	}
	if _, err := Run(Program{New(JAL, 0, 0, 0, 100)}, newState(), 100); err == nil {
		t.Error("Run did not report PC escape")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",           // wrong operand count
		"add f1, r2, r3",       // wrong register class
		"fadd r1, f2, f3",      // wrong register class
		"beq r1, r2, nowhere",  // unknown label
		"lw r1, r2",            // bad memory operand
		"li f1, 5",             // li needs integer destination
		"addi r1, r2, notanum", // bad constant
		"x: x: nop",            // duplicate label
		"9bad: nop",            // bad label
		"beq f1, f2, 0",        // FP operands on integer branch
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleLabelsAndOffsets(t *testing.T) {
	p := MustAssemble(`
	start:
		nop
		beq r1, r2, start  ; offset -1
		beq r1, r2, end    ; offset +2
		nop
	end:
		halt
	`)
	if p[1].Imm != -1 {
		t.Errorf("backward branch offset = %d, want -1", p[1].Imm)
	}
	if p[2].Imm != 2 {
		t.Errorf("forward branch offset = %d, want 2", p[2].Imm)
	}
}

func TestLiExpansion(t *testing.T) {
	// Small constant: one ADDI.
	p := MustAssemble("li r1, 42\nhalt")
	if len(p) != 2 || p[0].Op != ADDI {
		t.Fatalf("small li expanded to %v", p)
	}
	// Large and negative constants: LUI+ORI, correct value after Run.
	for _, c := range []int32{123456, -1, -123456, math.MaxInt32, math.MinInt32, 8192} {
		p := MustAssemble("li r1, " + itoa(c) + "\nhalt")
		s := newState()
		if _, err := Run(p, s, 10); err != nil {
			t.Fatal(err)
		}
		if got := int32(s.ReadReg(1)); got != c {
			t.Errorf("li %d produced %d", c, got)
		}
	}
}

func itoa(v int32) string { return strings.TrimSpace(strings.Replace(fmtInt(v), "+", "", 1)) }

func fmtInt(v int32) string {
	if v < 0 {
		return "-" + fmtUint(uint64(-int64(v)))
	}
	return fmtUint(uint64(v))
}

func fmtUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestPseudoInstructions(t *testing.T) {
	p := MustAssemble(`
		li r1, 7
		mv r2, r1
		j over
		halt
	over:
		halt
	`)
	s := newState()
	if _, err := Run(p, s, 100); err != nil {
		t.Fatal(err)
	}
	if s.ReadReg(2) != 7 {
		t.Errorf("mv copied %d, want 7", s.ReadReg(2))
	}
	if s.PC != uint32(len(p)-1) {
		t.Errorf("j landed on PC %d, want %d", s.PC, len(p)-1)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		add r1, r2, r3
		addi r4, r5, -7
		lw r6, 12(r7)
		sw r8, 0(r9)
		beq r1, r2, 2
		jal r31, -4
		lui r1, 100
		fadd f1, f2, f3
		fsqrt f4, f5
		fsw f1, 8(r2)
		nop
		halt
	`
	p := MustAssemble(src)
	// Reassembling the disassembly must reproduce the program.
	dis := Disassemble(p)
	var cleaned []string
	for _, line := range strings.Split(dis, "\n") {
		if i := strings.Index(line, ":"); i >= 0 {
			cleaned = append(cleaned, line[i+1:])
		}
	}
	q, err := Assemble(strings.Join(cleaned, "\n"))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, dis)
	}
	if len(q) != len(p) {
		t.Fatalf("length changed %d -> %d", len(p), len(q))
	}
	for i := range p {
		if p[i] != q[i] {
			t.Errorf("inst %d: %v -> %v", i, p[i], q[i])
		}
	}
}

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	cases := map[Opcode]int{
		ADD: 1, BEQ: 1, MUL: 4, DIV: 12, REM: 12, LW: 2, SW: 1,
		FADD: 3, FEQ: 3, FMUL: 5, FDIV: 16, FSQRT: 20, FLW: 2, FSW: 1,
	}
	for op, want := range cases {
		if got := l.Of(op); got != want {
			t.Errorf("latency of %v = %d, want %d", op, got, want)
		}
	}
}

func TestLatencyPositiveForAllOpcodes(t *testing.T) {
	l := DefaultLatencies()
	f := func(op uint8) bool {
		o := Opcode(op) % NumOpcodes
		return l.Of(o) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
