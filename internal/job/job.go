// Package job is the distributed sweep fabric behind the rssd jobs
// API: a persistent job store (job ID → sweep spec plus per-point
// status/result, durable to a directory of JSON + JSONL files so a
// restart resumes from the last completed point), and a coordinator
// that shards a job's grid points across a set of workers. Workers sit
// behind the small Executor interface — the in-process executor lives
// in internal/server, the HTTP executor (httpexec.go) drives a remote
// rssd through internal/client — so moving from N local processes to a
// multi-host fleet is a configuration change, not a code change.
//
// Failure semantics: a point-level simulation failure (cycle limit,
// point deadline) is data — it lands in the point's Error field and the
// job still completes. A worker-level failure (process death, connection
// refused, 503) requeues the point for another worker and sidelines the
// executor until it answers health checks again. Coordinator death
// loses nothing: completed points are already on disk, and Resume
// re-enqueues exactly the points without a durable result.
package job

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"repro/internal/api"
)

// Spec is the durable description of one job: everything needed to
// (re)run it from scratch. Point budgets are resolved (defaulted and
// clamped) before Create, so a resume after a restart replays exactly
// the same simulations.
type Spec struct {
	// Label is a free-form tag from the submitter.
	Label string `json:"label,omitempty"`
	// Kind tags the submitting surface ("job" for POST /v1/jobs,
	// "sweep" for the legacy synchronous shim); it keys metrics and
	// span lanes.
	Kind string `json:"kind"`
	// Program is the simulation program, source or binary form.
	Program api.Program `json:"program"`
	// Points is the grid, one resolved RunSpec per simulation.
	Points []api.RunSpec `json:"points"`
	// PointTimeoutMs bounds each point's simulation; 0 means none.
	PointTimeoutMs int `json:"pointTimeoutMs,omitempty"`
}

// Job is one submitted sweep: the durable spec plus the runtime state
// the coordinator tracks. All mutable state is guarded by mu; the
// spec fields are immutable after Create/load.
type Job struct {
	ID   string
	Spec Spec

	// SpanReq is the service-span request ordinal the job's point spans
	// are recorded under (0 when span recording is off).
	SpanReq uint64

	mu       sync.Mutex
	state    api.JobState
	results  []*api.PointResult // by point index; nil = no result yet
	done     int                // points with a result (includes failed)
	failed   int                // points whose result is an error
	requeues int                // worker-failure redispatches
	started  time.Time
	ctx      context.Context    // runtime context point runs derive from
	cancel   context.CancelFunc // cancels in-flight point contexts
	subs     []chan api.JobEvent
}

// newJob builds the runtime shell around a spec.
func newJob(id string, spec Spec) *Job {
	return &Job{
		ID:      id,
		Spec:    spec,
		state:   api.JobPending,
		results: make([]*api.PointResult, len(spec.Points)),
		started: time.Now(),
	}
}

// newID returns a fresh random job ID (collision-free across restarts
// without any persisted counter).
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("job: reading random id: " + err.Error())
	}
	return "j-" + hex.EncodeToString(b[:])
}

// State returns the job's current lifecycle state.
func (j *Job) State() api.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Started returns the submission (or load) time.
func (j *Job) Started() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.started
}

// Status snapshots the job as its wire representation; withResults adds
// the completed per-point results in index order.
func (j *Job) Status(withResults bool) api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		ID:       j.ID,
		Label:    j.Spec.Label,
		State:    j.state,
		Total:    len(j.Spec.Points),
		Done:     j.done,
		Failed:   j.failed,
		Requeues: j.requeues,
	}
	if withResults {
		st.Points = make([]api.PointResult, 0, j.done)
		for _, r := range j.results {
			if r != nil {
				st.Points = append(st.Points, *r)
			}
		}
	}
	return st
}

// Results returns the completed per-point results in index order.
func (j *Job) Results() []api.PointResult {
	return j.Status(true).Points
}

// pendingIndexes returns the indexes without a durable result — the
// points a resume must re-enqueue.
func (j *Job) pendingIndexes() []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	var idx []int
	for i, r := range j.results {
		if r == nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// Subscribe registers an events listener. It returns the replay (the
// events a late subscriber already missed: one EventPoint per completed
// point) and a live channel the job publishes subsequent events to. The
// channel is buffered to hold every event the job can still emit, so
// publishers never block on a slow consumer. A terminal EventState
// closes the channel.
func (j *Job) Subscribe() (replay []api.JobEvent, ch <-chan api.JobEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, r := range j.results {
		if r != nil {
			replay = append(replay, api.JobEvent{Type: api.EventPoint, Point: r})
		}
	}
	c := make(chan api.JobEvent, len(j.Spec.Points)-len(replay)+2)
	if j.state.Terminal() {
		c <- api.JobEvent{Type: api.EventState, State: j.state, Done: j.done, Total: len(j.Spec.Points)}
		close(c)
		return replay, c
	}
	j.subs = append(j.subs, c)
	return replay, c
}

// publish sends ev to every subscriber; callers hold mu.
func (j *Job) publishLocked(ev api.JobEvent) {
	for _, c := range j.subs {
		select {
		case c <- ev:
		default:
			// The channel is sized to never fill; dropping rather than
			// blocking keeps a bookkeeping bug from wedging the fabric.
		}
	}
}

// setStateLocked moves the job to state, notifying and (on a terminal
// state) closing subscribers. Callers hold mu.
func (j *Job) setStateLocked(state api.JobState) {
	if j.state == state || j.state.Terminal() {
		return
	}
	j.state = state
	ev := api.JobEvent{Type: api.EventState, State: state, Done: j.done, Total: len(j.Spec.Points)}
	j.publishLocked(ev)
	if state.Terminal() {
		for _, c := range j.subs {
			close(c)
		}
		j.subs = nil
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// recordResult stores one completed point and publishes its event; it
// reports whether this was the job's last pending point. Duplicate
// results for an index (a requeued point whose first worker turned out
// to have finished) keep the first — the durable one.
func (j *Job) recordResult(res *api.PointResult) (last bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if res.Index < 0 || res.Index >= len(j.results) || j.results[res.Index] != nil {
		return false
	}
	j.results[res.Index] = res
	j.done++
	if res.Error != nil {
		j.failed++
	}
	j.publishLocked(api.JobEvent{Type: api.EventPoint, Point: res})
	return j.done == len(j.results)
}

// noteRequeue counts a worker-failure redispatch.
func (j *Job) noteRequeue() {
	j.mu.Lock()
	j.requeues++
	j.mu.Unlock()
}
