// store.go is the durable half of the fabric: one JSON spec file plus
// one append-only JSONL results file per job, under a single directory.
// Every completed point is appended and fsynced before it is
// acknowledged anywhere else, so the store is always a prefix of the
// truth — a crash loses at most the in-flight points, never a completed
// one. Loading tolerates torn and corrupted records (the classic
// crash-mid-append artifact): bad lines are counted and skipped, and
// the points they would have covered simply run again.
package job

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/api"
)

// Store is the job registry: an in-memory index over an optional
// directory of durable job files. An empty dir keeps jobs in memory
// only (still a working fabric, just not restart-safe).
type Store struct {
	dir string

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string            // creation order, for stable listings
	files   map[string]*os.File // open append handles, by job ID
	skipped int                 // corrupted records tolerated at load
}

// specDoc is the durable form of a job's immutable half.
type specDoc struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
}

// resultRecord is one line of a job's results JSONL file.
type resultRecord struct {
	Record string           `json:"record"` // "point" | "state"
	Point  *api.PointResult `json:"point,omitempty"`
	State  api.JobState     `json:"state,omitempty"`
}

// Open builds a store over dir, loading every job already there. A
// job whose results cover every point is finalized as done; the rest
// come back incomplete, ready for Coordinator.Resume. An empty dir
// yields a volatile in-memory store.
func Open(dir string) (*Store, error) {
	st := &Store{
		dir:   dir,
		jobs:  map[string]*Job{},
		files: map[string]*os.File{},
	}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("job store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := st.loadJob(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Dir returns the backing directory ("" for a volatile store).
func (st *Store) Dir() string { return st.dir }

// Skipped returns the number of corrupted result records tolerated
// while loading — torn writes from a crash, stray garbage.
func (st *Store) Skipped() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.skipped
}

// loadJob reads one spec file and replays its results log.
func (st *Store) loadJob(specPath string) error {
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return fmt.Errorf("job store: %w", err)
	}
	var doc specDoc
	if err := json.Unmarshal(raw, &doc); err != nil || doc.ID == "" || len(doc.Spec.Points) == 0 {
		// A corrupted spec is unrecoverable for that job; tolerate and
		// move on rather than refusing to boot the whole fabric.
		st.skipped++
		return nil
	}
	j := newJob(doc.ID, doc.Spec)

	var state api.JobState
	data, err := os.ReadFile(st.resultsPath(doc.ID))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("job store: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec resultRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			st.skipped++
			continue
		}
		switch rec.Record {
		case "point":
			if rec.Point == nil || rec.Point.Index < 0 || rec.Point.Index >= len(j.results) {
				st.skipped++
				continue
			}
			j.recordResult(rec.Point)
		case "state":
			state = rec.State
		default:
			st.skipped++
		}
	}
	switch {
	case state == api.JobCancelled:
		j.state = api.JobCancelled
	case j.done == len(j.results):
		j.state = api.JobDone
	default:
		// Incomplete: stays pending until Resume re-enqueues it.
		j.state = api.JobPending
	}
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	return nil
}

func (st *Store) specPath(id string) string    { return filepath.Join(st.dir, id+".json") }
func (st *Store) resultsPath(id string) string { return filepath.Join(st.dir, id+".results.jsonl") }

// Create persists a new job and registers it.
func (st *Store) Create(spec Spec) (*Job, error) {
	j := newJob(newID(), spec)
	if st.dir != "" {
		raw, err := json.MarshalIndent(specDoc{ID: j.ID, Spec: spec}, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("job store: encoding spec: %w", err)
		}
		if err := writeFileSync(st.specPath(j.ID), raw); err != nil {
			return nil, fmt.Errorf("job store: %w", err)
		}
	}
	st.mu.Lock()
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	st.mu.Unlock()
	return j, nil
}

// Get looks a job up by ID.
func (st *Store) Get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// Jobs returns every job in creation order.
func (st *Store) Jobs() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id])
	}
	return out
}

// AppendPoint makes one completed point durable. It must be called
// before the result is surfaced anywhere (events, status), so the
// store never lags what clients have seen.
func (st *Store) AppendPoint(j *Job, res *api.PointResult) error {
	return st.append(j.ID, resultRecord{Record: "point", Point: res})
}

// MarkState appends a state marker (done, cancelled) and, on a
// terminal state, closes the job's results file.
func (st *Store) MarkState(j *Job, state api.JobState) error {
	err := st.append(j.ID, resultRecord{Record: "state", State: state})
	if state.Terminal() {
		st.mu.Lock()
		if f, ok := st.files[j.ID]; ok {
			f.Close()
			delete(st.files, j.ID)
		}
		st.mu.Unlock()
	}
	return err
}

// append writes one record line to the job's results log and syncs it.
func (st *Store) append(id string, rec resultRecord) error {
	if st.dir == "" {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("job store: encoding record: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.files[id]
	if !ok {
		f, err = os.OpenFile(st.resultsPath(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("job store: %w", err)
		}
		st.files[id] = f
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("job store: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("job store: %w", err)
	}
	return nil
}

// Close releases every open results handle.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for id, f := range st.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(st.files, id)
	}
	return first
}

// writeFileSync writes data and fsyncs before closing, so a spec file
// survives a crash right after Create.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
