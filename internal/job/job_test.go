package job

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// testSpec builds an n-point spec (policy left zero: the job layer
// never interprets specs, it just schedules them).
func testSpec(n int) Spec {
	spec := Spec{Kind: "job", Program: api.Program{Source: "halt\n"}}
	for i := 0; i < n; i++ {
		spec.Points = append(spec.Points, api.RunSpec{Seed: int64(i)})
	}
	return spec
}

// fakeExec is a scriptable executor: exec runs each point, health (when
// set) serves Ping.
type fakeExec struct {
	name   string
	slots  int
	exec   func(ctx context.Context, p ExecPoint) (*api.PointResult, error)
	health func(ctx context.Context) error
}

func (f *fakeExec) Name() string { return f.name }
func (f *fakeExec) Slots() int   { return f.slots }
func (f *fakeExec) Execute(ctx context.Context, p ExecPoint) (*api.PointResult, error) {
	return f.exec(ctx, p)
}
func (f *fakeExec) Ping(ctx context.Context) error {
	if f.health == nil {
		return nil
	}
	return f.health(ctx)
}

// okResult fabricates a deterministic result for a point: the report
// depends only on the spec, like the real deterministic simulator.
func okResult(p ExecPoint) *api.PointResult {
	return &api.PointResult{
		Index:  p.Index,
		Report: []byte(fmt.Sprintf(`{"seed":%d}`, p.Spec.Seed)),
	}
}

// waitState polls until j reaches state or the deadline passes.
func waitState(t *testing.T, j *Job, state api.JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for j.State() != state {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestCoordinatorCompletesJob(t *testing.T) {
	st := openStore(t, "")
	exec := &fakeExec{name: "w1", slots: 2, exec: func(_ context.Context, p ExecPoint) (*api.PointResult, error) {
		return okResult(p), nil
	}}
	c := NewCoordinator(st, []Executor{exec}, Config{})
	defer c.Close()

	j, err := c.Submit(testSpec(5), 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, j, api.JobDone)
	results := j.Results()
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	for i, r := range results {
		if r.Index != i || r.Worker != "w1" || r.Attempts != 1 {
			t.Errorf("result %d = %+v, want index %d worker w1 attempts 1", i, r, i)
		}
		if want := fmt.Sprintf(`{"seed":%d}`, i); string(r.Report) != want {
			t.Errorf("result %d report = %s, want %s", i, r.Report, want)
		}
	}
}

func TestCoordinatorShardsAcrossExecutors(t *testing.T) {
	st := openStore(t, "")
	var mu sync.Mutex
	byWorker := map[string]int{}
	mk := func(name string) *fakeExec {
		return &fakeExec{name: name, slots: 1, exec: func(_ context.Context, p ExecPoint) (*api.PointResult, error) {
			mu.Lock()
			byWorker[name]++
			mu.Unlock()
			time.Sleep(time.Millisecond) // let the other worker pull too
			return okResult(p), nil
		}}
	}
	c := NewCoordinator(st, []Executor{mk("a"), mk("b")}, Config{})
	defer c.Close()

	j, _ := c.Submit(testSpec(12), 0)
	waitState(t, j, api.JobDone)
	mu.Lock()
	defer mu.Unlock()
	if byWorker["a"] == 0 || byWorker["b"] == 0 {
		t.Errorf("points not sharded: %v", byWorker)
	}
	if byWorker["a"]+byWorker["b"] != 12 {
		t.Errorf("executed %d points, want 12 (%v)", byWorker["a"]+byWorker["b"], byWorker)
	}
}

// TestWorkerDeathRequeuesOnSurvivor kills one executor mid-job: its
// in-flight point must requeue and the survivor must drain everything.
func TestWorkerDeathRequeuesOnSurvivor(t *testing.T) {
	st := openStore(t, "")
	var dead sync.Once
	died := make(chan struct{})
	dying := &fakeExec{name: "dying", slots: 1}
	dying.exec = func(_ context.Context, p ExecPoint) (*api.PointResult, error) {
		select {
		case <-died:
			return nil, errors.New("connection refused")
		default:
		}
		// First point: run it, then die.
		dead.Do(func() { close(died) })
		return okResult(p), nil
	}
	dying.health = func(context.Context) error {
		select {
		case <-died:
			return errors.New("dead")
		default:
			return nil
		}
	}
	survivor := &fakeExec{name: "survivor", slots: 1, exec: func(_ context.Context, p ExecPoint) (*api.PointResult, error) {
		time.Sleep(time.Millisecond)
		return okResult(p), nil
	}}
	c := NewCoordinator(st, []Executor{dying, survivor}, Config{})
	defer c.Close()

	j, _ := c.Submit(testSpec(8), 0)
	waitState(t, j, api.JobDone)
	st8 := j.Status(true)
	if st8.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (%+v)", st8.Failed, st8)
	}
	var bySurvivor int
	for _, r := range st8.Points {
		if r.Worker == "survivor" {
			bySurvivor++
		}
	}
	// The dying executor ran at most one point before its death; the
	// survivor must have drained the rest.
	if bySurvivor < 7 {
		t.Errorf("survivor ran %d points, want >= 7 (%+v)", bySurvivor, st8.Points)
	}
}

// TestMaxAttemptsFailsPointAsData pins the requeue backstop: a point no
// worker can run becomes a worker_unavailable result, not an infinite
// requeue loop.
func TestMaxAttemptsFailsPointAsData(t *testing.T) {
	st := openStore(t, "")
	broken := &fakeExec{name: "broken", slots: 1,
		exec:   func(context.Context, ExecPoint) (*api.PointResult, error) { return nil, errors.New("boom") },
		health: func(context.Context) error { return nil }, // pings fine, still fails
	}
	c := NewCoordinator(st, []Executor{broken}, Config{MaxAttempts: 2})
	defer c.Close()

	j, _ := c.Submit(testSpec(1), 0)
	waitState(t, j, api.JobDone)
	res := j.Results()
	if len(res) != 1 || res[0].Error == nil || res[0].Error.Code != api.CodeWorkerUnavailable {
		t.Fatalf("results = %+v, want one worker_unavailable error", res)
	}
	if res[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res[0].Attempts)
	}
}

func TestCancelStopsScheduling(t *testing.T) {
	st := openStore(t, "")
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	slow := &fakeExec{name: "slow", slots: 1, exec: func(ctx context.Context, p ExecPoint) (*api.PointResult, error) {
		started <- struct{}{}
		select {
		case <-release:
			return okResult(p), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	c := NewCoordinator(st, []Executor{slow}, Config{})
	defer c.Close()

	j, _ := c.Submit(testSpec(6), 0)
	<-started // one point in flight
	cancelled, err := c.Cancel(j.ID)
	if err != nil || cancelled.State() != api.JobCancelled {
		t.Fatalf("Cancel: %v, state %s", err, cancelled.State())
	}
	close(release)
	// The in-flight point was cancelled through its context and queued
	// points were purged: no further executions may start.
	select {
	case <-started:
		t.Error("a point started after cancel")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := c.Cancel("j-nope"); !errors.Is(err, api.ErrNotFound) {
		t.Errorf("cancelling unknown job: err = %v, want ErrNotFound", err)
	}
}

// TestEventsStreamBeforeFinish subscribes mid-job and checks per-point
// events arrive while the job is still running, then a terminal state
// event closes the channel.
func TestEventsStreamBeforeFinish(t *testing.T) {
	st := openStore(t, "")
	release := make(chan struct{}, 16)
	gated := &fakeExec{name: "gated", slots: 1, exec: func(ctx context.Context, p ExecPoint) (*api.PointResult, error) {
		select {
		case <-release:
			return okResult(p), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	c := NewCoordinator(st, []Executor{gated}, Config{})
	defer c.Close()

	j, _ := c.Submit(testSpec(3), 0)
	_, ch := j.Subscribe()
	release <- struct{}{}

	var sawPointWhileRunning bool
	var events []api.JobEvent
	for ev := range ch {
		events = append(events, ev)
		if ev.Type == api.EventPoint && !j.State().Terminal() {
			sawPointWhileRunning = true
		}
		if ev.Type == api.EventPoint {
			release <- struct{}{} // let the next point go
		}
	}
	if !sawPointWhileRunning {
		t.Errorf("no per-point event arrived before the job finished: %+v", events)
	}
	last := events[len(events)-1]
	if last.Type != api.EventState || last.State != api.JobDone {
		t.Errorf("stream did not end with a done state event: %+v", events)
	}
	points := 0
	for _, ev := range events {
		if ev.Type == api.EventPoint {
			points++
		}
	}
	if points != 3 {
		t.Errorf("stream carried %d point events, want 3", points)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	spec := testSpec(3)
	j, err := st.Create(spec)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 3; i++ {
		res := &api.PointResult{Index: i, Report: []byte(fmt.Sprintf(`{"seed":%d}`, i)), Worker: "w"}
		if err := st.AppendPoint(j, res); err != nil {
			t.Fatalf("AppendPoint: %v", err)
		}
		j.recordResult(res)
	}
	if err := st.MarkState(j, api.JobDone); err != nil {
		t.Fatalf("MarkState: %v", err)
	}

	st2 := openStore(t, dir)
	if st2.Skipped() != 0 {
		t.Errorf("clean store reports %d skipped records", st2.Skipped())
	}
	j2, ok := st2.Get(j.ID)
	if !ok {
		t.Fatalf("job %s not reloaded", j.ID)
	}
	if j2.State() != api.JobDone {
		t.Errorf("reloaded state = %s, want done", j2.State())
	}
	got, want := j2.Results(), j.Results()
	if len(got) != len(want) {
		t.Fatalf("reloaded %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Report, want[i].Report) || got[i].Worker != want[i].Worker {
			t.Errorf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if j2.Spec.Program.Source != spec.Program.Source || len(j2.Spec.Points) != 3 {
		t.Errorf("reloaded spec = %+v, want %+v", j2.Spec, spec)
	}
}

// TestStoreToleratesCorruptedRecords simulates the crash-mid-append
// artifact: torn and garbage lines in the results log are skipped and
// counted, valid records around them still load, and the job comes back
// incomplete (the damaged points will simply re-run).
func TestStoreToleratesCorruptedRecords(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	j, err := st.Create(testSpec(3))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	good0 := &api.PointResult{Index: 0, Report: []byte(`{"seed":0}`)}
	good2 := &api.PointResult{Index: 2, Report: []byte(`{"seed":2}`)}
	if err := st.AppendPoint(j, good0); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendPoint(j, good2); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt the log: garbage line, a torn (truncated) record, and an
	// out-of-range index between the two valid ones.
	path := filepath.Join(dir, j.ID+".results.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	var b strings.Builder
	b.WriteString(lines[0])
	b.WriteString("not json at all\n")
	b.WriteString(`{"record":"point","point":{"index":99}}` + "\n")
	b.WriteString(lines[1])
	b.WriteString(`{"record":"point","point":{"ind`) // torn write, no newline
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	if st2.Skipped() != 3 {
		t.Errorf("skipped = %d, want 3", st2.Skipped())
	}
	j2, ok := st2.Get(j.ID)
	if !ok {
		t.Fatalf("job %s not reloaded", j.ID)
	}
	if j2.State() != api.JobPending {
		t.Errorf("state = %s, want pending (incomplete)", j2.State())
	}
	if pending := j2.pendingIndexes(); len(pending) != 1 || pending[0] != 1 {
		t.Errorf("pending = %v, want [1]", pending)
	}
}

// TestResumeAfterCoordinatorCrash pins the tentpole guarantee: stop the
// coordinator mid-job (in-flight points dropped), reopen the store with
// a fresh coordinator, Resume, and the completed job's full result set
// is byte-identical to an uninterrupted run of the same spec.
func TestResumeAfterCoordinatorCrash(t *testing.T) {
	spec := testSpec(6)

	// Baseline: the same spec run uninterrupted.
	baseSt := openStore(t, "")
	baseExec := &fakeExec{name: "w", slots: 1, exec: func(_ context.Context, p ExecPoint) (*api.PointResult, error) {
		return okResult(p), nil
	}}
	baseC := NewCoordinator(baseSt, []Executor{baseExec}, Config{})
	defer baseC.Close()
	baseJob, _ := baseC.Submit(spec, 0)
	waitState(t, baseJob, api.JobDone)

	// Interrupted run: complete two points, then "crash" (Close drops
	// the in-flight point and stops scheduling).
	dir := t.TempDir()
	st1 := openStore(t, dir)
	ran := make(chan struct{}, 16)
	release := make(chan struct{}, 16)
	gated := &fakeExec{name: "w", slots: 1, exec: func(ctx context.Context, p ExecPoint) (*api.PointResult, error) {
		select {
		case <-release:
			ran <- struct{}{}
			return okResult(p), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}}
	c1 := NewCoordinator(st1, []Executor{gated}, Config{})
	j1, err := c1.Submit(spec, 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	release <- struct{}{}
	release <- struct{}{}
	<-ran
	<-ran
	c1.Close()
	st1.Close()
	if j1.State() == api.JobDone {
		t.Fatal("job finished before the crash; test needs an interrupted run")
	}

	// Restart: fresh store over the same dir, fresh coordinator, Resume.
	st2 := openStore(t, dir)
	plain := &fakeExec{name: "w", slots: 1, exec: func(_ context.Context, p ExecPoint) (*api.PointResult, error) {
		return okResult(p), nil
	}}
	c2 := NewCoordinator(st2, []Executor{plain}, Config{})
	defer c2.Close()
	if resumed := c2.Resume(); resumed != 1 {
		t.Fatalf("Resume = %d jobs, want 1", resumed)
	}
	j2, ok := st2.Get(j1.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", j1.ID)
	}
	waitState(t, j2, api.JobDone)

	got, want := j2.Results(), baseJob.Results()
	if len(got) != len(want) {
		t.Fatalf("resumed run has %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Report, want[i].Report) {
			t.Errorf("point %d: resumed report %s != uninterrupted %s", i, got[i].Report, want[i].Report)
		}
		if got[i].Error != nil {
			t.Errorf("point %d: unexpected error %v", i, got[i].Error)
		}
	}
}

func TestSubmitOnVolatileStore(t *testing.T) {
	st := openStore(t, "")
	exec := &fakeExec{name: "w", slots: 1, exec: func(_ context.Context, p ExecPoint) (*api.PointResult, error) {
		return okResult(p), nil
	}}
	c := NewCoordinator(st, []Executor{exec}, Config{})
	defer c.Close()
	j, err := c.Submit(testSpec(2), 0)
	if err != nil {
		t.Fatalf("Submit on volatile store: %v", err)
	}
	waitState(t, j, api.JobDone)
	if st.Dir() != "" {
		t.Errorf("volatile store has dir %q", st.Dir())
	}
}
