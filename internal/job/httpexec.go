// httpexec.go is the remote worker transport: an Executor that drives
// one rssd worker process over HTTP through the typed client. Workers
// are plain rssd servers — a point is just POST /v1/run — so a worker
// fleet needs no special build, and "multi-host" is nothing more than
// different base URLs in the coordinator's configuration.
package job

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/client"
)

// HTTPExecutor runs points on a remote rssd worker.
type HTTPExecutor struct {
	name  string
	c     *client.Client
	slots int
}

// NewHTTPExecutor builds an executor for the worker at baseURL running
// up to slots concurrent points (minimum 1).
func NewHTTPExecutor(name, baseURL string, slots int) *HTTPExecutor {
	if slots < 1 {
		slots = 1
	}
	return &HTTPExecutor{
		name: name,
		// The executor does not retry 503s itself: a draining or
		// saturated worker is a worker-level failure the coordinator
		// answers by requeuing elsewhere and health-checking this one.
		c:     client.New(baseURL, client.WithRetry(0, -1)),
		slots: slots,
	}
}

// Name implements Executor.
func (e *HTTPExecutor) Name() string { return e.name }

// Slots implements Executor.
func (e *HTTPExecutor) Slots() int { return e.slots }

// URL returns the worker's base URL.
func (e *HTTPExecutor) URL() string { return e.c.Base() }

// Execute implements Executor: one point, one POST /v1/run. Worker
// deaths (transport errors) and admission rejections surface as
// worker-level errors for the coordinator to requeue; anything the
// worker actually simulated — including point-level failures like a
// cycle-limit 422 — comes back as data.
func (e *HTTPExecutor) Execute(ctx context.Context, p ExecPoint) (*api.PointResult, error) {
	req := api.RunRequest{
		Source:  p.Job.Spec.Program.Source,
		Words:   p.Job.Spec.Program.Words,
		RunSpec: p.Spec,
	}
	if ms := p.Job.Spec.PointTimeoutMs; ms > 0 {
		// Let the worker own the point deadline too, so a network
		// partition can't leave it simulating forever.
		req.TimeoutMs = ms
	}
	start := time.Now()
	resp, err := e.c.Run(ctx, req)
	res := &api.PointResult{
		Index:     p.Index,
		Policy:    p.Spec.Policy.String(),
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
		Worker:    e.name,
	}
	if err == nil {
		res.Report = resp.Report
		res.ElapsedMs = resp.ElapsedMs
		return res, nil
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		if p.Job.Spec.PointTimeoutMs > 0 && errors.Is(err, context.DeadlineExceeded) {
			// The point deadline expired while the request was in flight —
			// a race between the worker's own 504 and our transport
			// context. The simulation is deterministic, so re-running it
			// elsewhere would time out again: record the deadline as the
			// point's result instead of requeuing.
			_, res.Error = api.Classify(context.DeadlineExceeded)
			return res, nil
		}
		// No envelope at all: the worker is gone mid-request. The point
		// may or may not have simulated, but simulation is stateless and
		// deterministic, so re-running it elsewhere is always safe.
		return nil, err
	}
	switch apiErr.Status {
	case http.StatusServiceUnavailable:
		// Draining or queue-full: the worker refused the point.
		return nil, apiErr
	default:
		// The worker executed (or authoritatively rejected) the point:
		// its envelope is the point's result.
		res.Error = apiErr
		return res, nil
	}
}

// Ping implements Pinger: the worker is healthy when /v1/healthz
// answers ok (a draining worker is deliberately unhealthy here — it
// must not be handed new points).
func (e *HTTPExecutor) Ping(ctx context.Context) error {
	_, err := e.c.Health(ctx)
	return err
}
