// coordinator.go shards job points across workers. The coordinator
// owns one FIFO of pending points and a goroutine per executor slot;
// each slot pulls the next point, runs it through its executor, and
// either persists the result or — on a worker-level failure — requeues
// the point and sidelines the executor until it answers health checks
// again. Scheduling is pull-based, so a dead worker simply stops
// pulling and the survivors drain its share; nothing is partitioned up
// front.
package job

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
)

// ExecPoint is one dispatched grid point: the job it belongs to, which
// point, and the resolved spec to simulate.
type ExecPoint struct {
	Job      *Job
	Index    int
	Spec     api.RunSpec
	Attempt  int // prior dispatches of this point
	Enqueued time.Time
}

// Executor runs points — the worker transport. Implementations must be
// safe for Slots() concurrent Execute calls.
//
// The error contract splits failures in two:
//   - result with a non-nil Error field, err == nil: a point-level
//     failure (cycle limit, point deadline). It is data; the job
//     completes with it.
//   - err != nil: a worker-level failure (process death, connection
//     refused, draining). The coordinator requeues the point and
//     health-checks the executor before handing it more work.
type Executor interface {
	// Name labels results and logs (e.g. "local", "worker-2").
	Name() string
	// Slots is the number of points the executor runs concurrently.
	Slots() int
	// Execute runs one point. Cancellation of ctx (job cancelled or
	// coordinator shutting down) must surface as err, not as a result.
	Execute(ctx context.Context, p ExecPoint) (*api.PointResult, error)
}

// Pinger is an optional Executor health probe: a sidelined executor
// rejoins scheduling when Ping succeeds again.
type Pinger interface {
	Ping(ctx context.Context) error
}

// BatchExecutor is an optional Executor extension for backends that can
// run several points of one job as a single batch — the lane-parallel
// wide machine. When a slot pulls a point whose BatchKey is non-empty,
// it opportunistically grabs up to MaxBatch-1 further queued points of
// the same job with the same key (no waiting: whatever is ready now)
// and hands the group to ExecuteBatch.
//
// The error contract extends Executor's: ExecuteBatch returns one
// result per point, in point order, with per-point failures (cycle
// limit, deadline) as result data; a non-nil err is a worker-level
// failure of the whole batch, and every point is requeued together.
type BatchExecutor interface {
	Executor
	// BatchKey returns a non-empty grouping key when p may run in a
	// batch: points with equal keys are lane-compatible (identical
	// machine shape — Params, Policy, MinResidency — with only seed
	// and cycle budget varying). An empty key keeps p on the scalar
	// Execute path.
	BatchKey(p ExecPoint) string
	// MaxBatch is the executor's lane capacity per batch.
	MaxBatch() int
	// ExecuteBatch runs the points as one batch. len(results) ==
	// len(ps) on success, results[i] for ps[i].
	ExecuteBatch(ctx context.Context, ps []ExecPoint) ([]*api.PointResult, error)
}

// Observer receives fabric lifecycle callbacks — the hook the server
// uses to land job progress on the telemetry registry and the span
// flight recorder. Implementations must be cheap and non-blocking; a
// nil Observer is replaced by a no-op.
type Observer interface {
	JobSubmitted(j *Job)
	JobFinished(j *Job)
	PointDone(j *Job, res *api.PointResult)
	PointRequeued(j *Job, index int)
	QueueDepth(depth int)
}

type nopObserver struct{}

func (nopObserver) JobSubmitted(*Job)                {}
func (nopObserver) JobFinished(*Job)                 {}
func (nopObserver) PointDone(*Job, *api.PointResult) {}
func (nopObserver) PointRequeued(*Job, int)          {}
func (nopObserver) QueueDepth(int)                   {}

// Config tunes a Coordinator.
type Config struct {
	// MaxAttempts bounds dispatches per point; past it the point fails
	// as data with code worker_unavailable (default 8).
	MaxAttempts int
	// Observer receives lifecycle callbacks (nil for none).
	Observer Observer
}

// Coordinator schedules jobs over a fixed executor set.
type Coordinator struct {
	store       *Store
	execs       []Executor
	obs         Observer
	maxAttempts int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []ExecPoint
	closed bool
}

// NewCoordinator starts a coordinator over store and execs: one
// dispatch goroutine per executor slot. Incomplete jobs already in the
// store are NOT scheduled automatically — call Resume for that, so the
// caller controls when (and whether) recovery work begins.
func NewCoordinator(store *Store, execs []Executor, cfg Config) *Coordinator {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.Observer == nil {
		cfg.Observer = nopObserver{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		store:       store,
		execs:       execs,
		obs:         cfg.Observer,
		maxAttempts: cfg.MaxAttempts,
		ctx:         ctx,
		cancel:      cancel,
	}
	c.cond = sync.NewCond(&c.mu)
	for _, e := range execs {
		for s := 0; s < e.Slots(); s++ {
			c.wg.Add(1)
			go c.slotLoop(e)
		}
	}
	return c
}

// Store exposes the backing store (status endpoints read through it).
func (c *Coordinator) Store() *Store { return c.store }

// Executors returns the executor set (for health listings).
func (c *Coordinator) Executors() []Executor { return c.execs }

// Active counts non-terminal jobs.
func (c *Coordinator) Active() int {
	n := 0
	for _, j := range c.store.Jobs() {
		if !j.State().Terminal() {
			n++
		}
	}
	return n
}

// Submit persists a new job and enqueues every point. spanReq is the
// service-span request ordinal its point spans are recorded under (0
// when spans are off).
func (c *Coordinator) Submit(spec Spec, spanReq uint64) (*Job, error) {
	j, err := c.store.Create(spec)
	if err != nil {
		return nil, err
	}
	j.SpanReq = spanReq
	c.obs.JobSubmitted(j)
	c.enqueue(j, allIndexes(len(spec.Points)))
	return j, nil
}

// Resume re-enqueues every incomplete job in the store — the crash
// recovery path. Jobs whose results already cover every point are
// finalized instead of re-run. It returns the number of jobs that
// went back into scheduling.
func (c *Coordinator) Resume() int {
	resumed := 0
	for _, j := range c.store.Jobs() {
		if j.State().Terminal() {
			continue
		}
		pending := j.pendingIndexes()
		if len(pending) == 0 {
			c.finalize(j)
			continue
		}
		c.enqueue(j, pending)
		resumed++
	}
	return resumed
}

// Cancel stops a job: queued points are dropped, in-flight points are
// cancelled through their contexts, completed results stay durable.
func (c *Coordinator) Cancel(id string) (*Job, error) {
	j, ok := c.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("job %s: %w", id, api.ErrNotFound)
	}
	j.mu.Lock()
	already := j.state.Terminal()
	if !already {
		j.setStateLocked(api.JobCancelled)
	}
	j.mu.Unlock()
	if already {
		return j, nil
	}
	c.store.MarkState(j, api.JobCancelled) //nolint:errcheck // marker loss only costs a re-cancel after restart
	c.purge(j)
	c.obs.JobFinished(j)
	return j, nil
}

// Close stops scheduling: in-flight points are cancelled and left
// pending in the store (Resume after a restart picks them up), slot
// goroutines drain, the store stays open for reads.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	c.cond.Broadcast()
	c.wg.Wait()
}

// --- scheduling internals ---

func allIndexes(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// enqueue marks the job running and pushes its points, attaching the
// job's runtime cancellation context on first scheduling.
func (c *Coordinator) enqueue(j *Job, indexes []int) {
	jctx, jcancel := context.WithCancel(c.ctx)
	j.mu.Lock()
	if j.cancel == nil {
		j.ctx, j.cancel = jctx, jcancel
	} else {
		jcancel()
	}
	j.setStateLocked(api.JobRunning)
	j.mu.Unlock()

	now := time.Now()
	c.mu.Lock()
	for _, i := range indexes {
		c.queue = append(c.queue, ExecPoint{
			Job: j, Index: i, Spec: j.Spec.Points[i], Enqueued: now,
		})
	}
	depth := len(c.queue)
	c.mu.Unlock()
	c.obs.QueueDepth(depth)
	c.cond.Broadcast()
}

// push requeues one point (after a worker failure).
func (c *Coordinator) push(t ExecPoint) {
	c.mu.Lock()
	c.queue = append(c.queue, t)
	depth := len(c.queue)
	c.mu.Unlock()
	c.obs.QueueDepth(depth)
	c.cond.Broadcast()
}

// pop blocks for the next schedulable point; ok is false when the
// coordinator is closed. Points of jobs that left the running state
// while queued are dropped here.
func (c *Coordinator) pop() (ExecPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for len(c.queue) > 0 {
			t := c.queue[0]
			c.queue = c.queue[1:]
			if t.Job.State() != api.JobRunning {
				continue
			}
			c.obs.QueueDepth(len(c.queue))
			return t, true
		}
		if c.closed {
			return ExecPoint{}, false
		}
		c.cond.Wait()
	}
}

// popCompatible grabs up to max additional queued points of job j whose
// batch key matches key, without blocking — the opportunistic fill of a
// wide-machine batch. Points of other jobs, other keys, or non-running
// jobs stay queued (the usual pop path drops stale ones later).
func (c *Coordinator) popCompatible(j *Job, key string, max int, keyOf func(ExecPoint) string) []ExecPoint {
	if max <= 0 {
		return nil
	}
	c.mu.Lock()
	var out []ExecPoint
	kept := c.queue[:0]
	for _, t := range c.queue {
		if len(out) < max && t.Job == j && t.Job.State() == api.JobRunning && keyOf(t) == key {
			out = append(out, t)
		} else {
			kept = append(kept, t)
		}
	}
	c.queue = kept
	depth := len(c.queue)
	c.mu.Unlock()
	if len(out) > 0 {
		c.obs.QueueDepth(depth)
	}
	return out
}

// purge drops queued points of j after a cancel.
func (c *Coordinator) purge(j *Job) {
	c.mu.Lock()
	kept := c.queue[:0]
	for _, t := range c.queue {
		if t.Job != j {
			kept = append(kept, t)
		}
	}
	c.queue = kept
	depth := len(c.queue)
	c.mu.Unlock()
	c.obs.QueueDepth(depth)
}

// slotLoop is one executor slot: pull, execute, persist or requeue.
func (c *Coordinator) slotLoop(e Executor) {
	defer c.wg.Done()
	for {
		t, ok := c.pop()
		if !ok {
			return
		}
		j := t.Job
		j.mu.Lock()
		pctx := j.ctx
		j.mu.Unlock()
		if pctx == nil {
			// Never scheduled — cannot happen for queued points, but a
			// nil context must not reach an executor.
			continue
		}
		cancel := func() {}
		if ms := j.Spec.PointTimeoutMs; ms > 0 {
			pctx, cancel = context.WithTimeout(pctx, time.Duration(ms)*time.Millisecond)
		}
		if be, ok := e.(BatchExecutor); ok {
			if key := be.BatchKey(t); key != "" {
				batch := append([]ExecPoint{t}, c.popCompatible(j, key, be.MaxBatch()-1, be.BatchKey)...)
				c.runBatch(be, j, batch, pctx)
				cancel()
				continue
			}
		}
		res, err := e.Execute(pctx, t)
		cancel()
		if err != nil {
			c.handleWorkerFailure(e, t, err)
			continue
		}
		c.complete(j, finishResult(e, t, res))
	}
}

// runBatch executes a lane-compatible point group on a batch-capable
// executor and lands the outcomes: per-point results complete
// individually; a worker-level batch failure requeues every point (one
// health wait for the whole group, not one per point).
func (c *Coordinator) runBatch(be BatchExecutor, j *Job, batch []ExecPoint, ctx context.Context) {
	results, err := be.ExecuteBatch(ctx, batch)
	if err != nil {
		wait := false
		for _, t := range batch {
			wait = c.requeue(be, t, err) || wait
		}
		if wait {
			c.waitHealthy(be)
		}
		return
	}
	for i, t := range batch {
		var res *api.PointResult
		if i < len(results) {
			res = results[i]
		}
		c.complete(j, finishResult(be, t, res))
	}
}

// finishResult normalises an executor's point result: a nil result gets
// a stub, and attempt/worker attribution is filled in.
func finishResult(e Executor, t ExecPoint, res *api.PointResult) *api.PointResult {
	if res == nil {
		res = &api.PointResult{Index: t.Index, Policy: t.Spec.Policy.String()}
	}
	res.Attempts = t.Attempt + 1
	if res.Worker == "" {
		res.Worker = e.Name()
	}
	return res
}

// handleWorkerFailure requeues a point whose worker died under it and
// sidelines the executor until it pings healthy again.
func (c *Coordinator) handleWorkerFailure(e Executor, t ExecPoint, err error) {
	if c.requeue(e, t, err) {
		c.waitHealthy(e)
	}
}

// requeue is handleWorkerFailure without the health wait — the batch
// failure path requeues every lane first and waits once. It reports
// whether the point went back on the queue (so the caller health-checks
// the executor before it pulls again).
func (c *Coordinator) requeue(e Executor, t ExecPoint, err error) bool {
	j := t.Job
	if c.ctx.Err() != nil || j.State() != api.JobRunning {
		// Shutdown or cancel: the point stays pending; a Resume after
		// restart re-runs it. Nothing to requeue now.
		return false
	}
	t.Attempt++
	j.noteRequeue()
	c.obs.PointRequeued(j, t.Index)
	if t.Attempt >= c.maxAttempts {
		c.complete(j, &api.PointResult{
			Index:  t.Index,
			Policy: t.Spec.Policy.String(),
			Error: &api.Error{
				Code:    api.CodeWorkerUnavailable,
				Message: fmt.Sprintf("point %d failed after %d dispatches, last on %s: %v", t.Index, t.Attempt, e.Name(), err),
			},
			Attempts: t.Attempt,
		})
		return false
	}
	c.push(t)
	return true
}

// waitHealthy blocks this slot until its executor answers a health
// probe (or the coordinator closes). Executors without a Ping get a
// fixed cool-down instead, so a crashed worker's slots don't spin.
func (c *Coordinator) waitHealthy(e Executor) {
	p, ok := e.(Pinger)
	delay := 100 * time.Millisecond
	for {
		select {
		case <-time.After(delay):
		case <-c.ctx.Done():
			return
		}
		if !ok {
			return
		}
		pingCtx, cancel := context.WithTimeout(c.ctx, 2*time.Second)
		err := p.Ping(pingCtx)
		cancel()
		if err == nil {
			return
		}
		if delay < 2*time.Second {
			delay *= 2
		}
	}
}

// complete persists one finished point, updates the job, and finalizes
// it when that was the last pending point.
func (c *Coordinator) complete(j *Job, res *api.PointResult) {
	if err := c.store.AppendPoint(j, res); err != nil {
		// The result still lands in memory — failing the append must
		// not wedge the job — but it will re-run after a restart.
		res.Error = joinStoreError(res.Error, err)
	}
	last := j.recordResult(res)
	c.obs.PointDone(j, res)
	if last {
		c.finalize(j)
	}
}

// finalize marks a fully-covered job done.
func (c *Coordinator) finalize(j *Job) {
	c.store.MarkState(j, api.JobDone) //nolint:errcheck // marker loss only re-finalizes after restart
	j.mu.Lock()
	j.setStateLocked(api.JobDone)
	j.mu.Unlock()
	c.obs.JobFinished(j)
}

// joinStoreError annotates a point result whose persistence failed.
func joinStoreError(orig *api.Error, err error) *api.Error {
	if orig != nil {
		return orig
	}
	return &api.Error{Code: api.CodeInternal, Message: "persisting result: " + err.Error()}
}
